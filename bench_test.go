// Benchmarks regenerating every table and figure of the paper's evaluation
// (run `go test -bench=. -benchmem`), plus real-compute benchmarks of the
// functional kernels and ablation benchmarks for the design choices called
// out in DESIGN.md. The virtual-time benchmarks report the simulated
// GFLOPS/efficiency as custom metrics; wall time measures the simulator,
// not the modelled machine.
package phihpl

import (
	"testing"

	"phihpl/internal/blas"
	"phihpl/internal/hpl"
	"phihpl/internal/kernels"
	"phihpl/internal/lu"
	"phihpl/internal/matrix"
	"phihpl/internal/offload"
	"phihpl/internal/pack"
	"phihpl/internal/perfmodel"
	"phihpl/internal/simlu"
	"phihpl/internal/stream"
)

// --- paper experiments ---------------------------------------------------

// BenchmarkTable2 regenerates Table II (DGEMM/SGEMM efficiency vs k).
func BenchmarkTable2(b *testing.B) {
	m := perfmodel.NewKNC()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, k := range []int{120, 180, 240, 300, 340, 400} {
			last = m.DgemmGFLOPS(28000, 28000, k)
			m.SgemmGFLOPS(28000, 28000, k)
		}
	}
	b.ReportMetric(last, "dgemm_k400_GFLOPS")
	b.ReportMetric(m.DgemmGFLOPS(28000, 28000, 300), "dgemm_k300_GFLOPS")
}

// BenchmarkFig4 regenerates Figure 4 (DGEMM vs size, packing overhead).
func BenchmarkFig4(b *testing.B) {
	m := perfmodel.NewKNC()
	for i := 0; i < b.N; i++ {
		for n := 1000; n <= 28000; n += 1000 {
			m.DgemmEff(n, n, 300)
			m.DgemmKernelEff(n, n, 300)
		}
	}
	b.ReportMetric(m.DgemmGFLOPS(28000, 28000, 300), "GFLOPS_28K")
	b.ReportMetric(perfmodel.PackOverhead(1000)*100, "packov_1K_pct")
}

// BenchmarkFig6 regenerates Figure 6 (native Linpack, static vs dynamic).
func BenchmarkFig6(b *testing.B) {
	var dyn, sta simlu.Result
	for i := 0; i < b.N; i++ {
		for _, n := range []int{5000, 15000, 30000} {
			dyn = simlu.Dynamic(simlu.Config{N: n})
			sta = simlu.Static(simlu.Config{N: n})
		}
	}
	b.ReportMetric(dyn.GFLOPS, "dynamic_30K_GFLOPS")
	b.ReportMetric(sta.GFLOPS, "static_30K_GFLOPS")
	b.ReportMetric(dyn.Eff*100, "dynamic_30K_eff_pct")
}

// BenchmarkFig7 regenerates Figure 7 (5K Gantt traces).
func BenchmarkFig7(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Fig7()
	}
	b.ReportMetric(float64(len(out)), "chars")
}

// BenchmarkFig9 regenerates Figure 9 (hybrid iteration profile, 2x2).
func BenchmarkFig9(b *testing.B) {
	var basic, pipe hpl.SimResult
	for i := 0; i < b.N; i++ {
		basic = hpl.Simulate(hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 2, Lookahead: hpl.BasicLookahead})
		pipe = hpl.Simulate(hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 2, Lookahead: hpl.PipelinedLookahead})
	}
	b.ReportMetric(basic.CardIdleFrac*100, "basic_idle_pct")
	b.ReportMetric(pipe.CardIdleFrac*100, "pipelined_idle_pct")
}

// BenchmarkFig11 regenerates Figure 11 (offload DGEMM, 1 and 2 cards).
func BenchmarkFig11(b *testing.B) {
	var r1, r2 offload.SimResult
	for i := 0; i < b.N; i++ {
		r1 = offload.Simulate(82000, 82000, offload.SimConfig{Cards: 1})
		r2 = offload.Simulate(82000, 82000, offload.SimConfig{Cards: 2})
	}
	b.ReportMetric(r1.GFLOPS, "1card_GFLOPS")
	b.ReportMetric(r2.GFLOPS, "2card_GFLOPS")
}

// BenchmarkTable3 regenerates Table III (all 15 rows).
func BenchmarkTable3(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table3()
	}
	b.ReportMetric(float64(len(out)), "chars")
	r := hpl.Simulate(hpl.SimConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: hpl.PipelinedLookahead})
	b.ReportMetric(r.TFLOPS, "cluster_TFLOPS")
	b.ReportMetric(r.Eff*100, "cluster_eff_pct")
}

// --- real-compute kernels -------------------------------------------------

// BenchmarkRealDGEMM measures the pure-Go blocked DGEMM.
func BenchmarkRealDGEMM(b *testing.B) {
	n := 256
	a := matrix.RandomGeneral(n, n, 1)
	bb := matrix.RandomGeneral(n, n, 2)
	c := matrix.NewDense(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.Dgemm(false, false, 1, a, bb, 0, c)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkRealDGEMMParallel measures the goroutine-parallel DGEMM.
func BenchmarkRealDGEMMParallel(b *testing.B) {
	n := 256
	a := matrix.RandomGeneral(n, n, 1)
	bb := matrix.RandomGeneral(n, n, 2)
	c := matrix.NewDense(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.DgemmParallel(false, false, 1, a, bb, 0, c, 8)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkRealDGEMMPackedPath measures the packed-tile fast path at the
// size where it must beat DgemmParallel (n = 512): panels of A and B are
// packed once per call into the Knights Corner tile layout and the 30×8
// micro-kernel runs on the persistent worker pool.
func BenchmarkRealDGEMMPackedPath(b *testing.B) {
	n := 512
	a := matrix.RandomGeneral(n, n, 1)
	bb := matrix.RandomGeneral(n, n, 2)
	c := matrix.NewDense(n, n)
	blas.DgemmPacked(false, false, 1, a, bb, 0, c, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.DgemmPacked(false, false, 1, a, bb, 0, c, 8)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkRealPackedGemm measures the Knights Corner-layout micro-kernel
// path (pack + tiled multiply), the data path of the offload engine.
func BenchmarkRealPackedGemm(b *testing.B) {
	m, k, n := 240, 240, 240
	a := matrix.RandomGeneral(m, k, 1)
	bb := matrix.RandomGeneral(k, n, 2)
	c := matrix.NewDense(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pack.Gemm(pack.PackA(a, pack.DefaultTileM), pack.PackB(bb), c, 4)
	}
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkRealLU benchmarks the three real LU drivers.
func BenchmarkRealLU(b *testing.B) {
	for _, d := range []struct {
		name string
		f    func(*matrix.Dense, []int, lu.Options) error
	}{
		{"sequential", lu.Sequential},
		{"static", lu.StaticLookahead},
		{"dynamic", lu.Dynamic},
	} {
		b.Run(d.name, func(b *testing.B) {
			n := 300
			src := matrix.RandomGeneral(n, n, 3)
			piv := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := src.Clone()
				b.StartTimer()
				if err := d.f(a, piv, lu.Options{NB: 48, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(perfmodel.LUFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkOffloadCompute measures the real work-stealing offload engine.
func BenchmarkOffloadCompute(b *testing.B) {
	m, k, n := 384, 128, 384
	a := matrix.RandomGeneral(m, k, 1)
	bb := matrix.RandomGeneral(k, n, 2)
	c := matrix.NewDense(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offload.Compute(a, bb, c, offload.RealConfig{Mt: 64, Nt: 64, CardWorkers: 2, HostWorkers: 2})
	}
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkDistributedSolve measures the functional distributed Linpack.
func BenchmarkDistributedSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hpl.SolveDistributed(300, 32, 4, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations -------------------------------------------------------------

// BenchmarkAblationKernels compares Basic Kernel 1 (port-conflict stalls)
// against Basic Kernel 2 (swizzle holes) on the pipeline simulator.
func BenchmarkAblationKernels(b *testing.B) {
	var e1, e2 float64
	for i := 0; i < b.N; i++ {
		e1 = kernels.LoopEfficiency(kernels.Kernel1)
		e2 = kernels.LoopEfficiency(kernels.Kernel2)
	}
	b.ReportMetric(e1*100, "kernel1_eff_pct")
	b.ReportMetric(e2*100, "kernel2_eff_pct")
}

// BenchmarkAblationRegroup quantifies super-stage thread regrouping.
func BenchmarkAblationRegroup(b *testing.B) {
	var on, off simlu.Result
	for i := 0; i < b.N; i++ {
		on = simlu.Dynamic(simlu.Config{N: 5000, MaxGroups: 8})
		off = simlu.Dynamic(simlu.Config{N: 5000, MaxGroups: 8, DisableRegroup: true})
	}
	b.ReportMetric(on.GFLOPS, "regroup_on_GFLOPS")
	b.ReportMetric(off.GFLOPS, "regroup_off_GFLOPS")
}

// BenchmarkAblationContention quantifies master-thread-only scheduler
// access vs. all threads entering the critical section.
func BenchmarkAblationContention(b *testing.B) {
	var master, all simlu.Result
	for i := 0; i < b.N; i++ {
		master = simlu.Dynamic(simlu.Config{N: 10000, MaxGroups: 8})
		all = simlu.Dynamic(simlu.Config{N: 10000, MaxGroups: 8, AllThreadsContend: true})
	}
	b.ReportMetric(master.GFLOPS, "master_only_GFLOPS")
	b.ReportMetric(all.GFLOPS, "all_threads_GFLOPS")
}

// BenchmarkAblationTileSelection quantifies run-time tile-size selection
// against a fixed minimal tile.
func BenchmarkAblationTileSelection(b *testing.B) {
	var auto, forced offload.SimResult
	for i := 0; i < b.N; i++ {
		auto = offload.Simulate(40000, 40000, offload.SimConfig{Cards: 1})
		forced = offload.Simulate(40000, 40000, offload.SimConfig{Cards: 1, ForceTile: 1200})
	}
	b.ReportMetric(auto.GFLOPS, "auto_tile_GFLOPS")
	b.ReportMetric(forced.GFLOPS, "forced_1200_GFLOPS")
}

// BenchmarkAblationLookahead compares the three hybrid look-ahead schemes.
func BenchmarkAblationLookahead(b *testing.B) {
	var none, basic, pipe hpl.SimResult
	for i := 0; i < b.N; i++ {
		none = hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.NoLookahead})
		basic = hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.BasicLookahead})
		pipe = hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.PipelinedLookahead})
	}
	b.ReportMetric(none.Eff*100, "none_eff_pct")
	b.ReportMetric(basic.Eff*100, "basic_eff_pct")
	b.ReportMetric(pipe.Eff*100, "pipelined_eff_pct")
}

// BenchmarkStreamTriad measures this host's achievable Go memory bandwidth
// with the STREAM triad — the runnable counterpart of Table I's published
// 150/76 GB/s figures.
func BenchmarkStreamTriad(b *testing.B) {
	n := 1 << 22
	a := make([]float64, n)
	bb := make([]float64, n)
	c := make([]float64, n)
	for i := range bb {
		bb[i] = float64(i)
		c[i] = float64(n - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.TriadParallel(a, bb, c, 3.0, 8)
	}
	gb := stream.BytesMoved(stream.TriadOp, n) * float64(b.N) / 1e9
	b.ReportMetric(gb/b.Elapsed().Seconds(), "GB/s")
}

// BenchmarkDistributed2D measures the full HPL-structure solver (P×Q grid,
// distributed swaps and broadcasts) on in-process nodes.
func BenchmarkDistributed2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hpl.SolveDistributed2D(240, 24, 2, 2, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perfmodel.LUFlops(240)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkHybrid2D measures the same solver with trailing updates routed
// through the real offload work-stealing engine.
func BenchmarkHybrid2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hpl.SolveDistributed2DHybrid(240, 24, 2, 2, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perfmodel.LUFlops(240)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkRecursivePanel compares the unblocked and recursive panel
// factorizations on a tall panel.
func BenchmarkRecursivePanel(b *testing.B) {
	for _, variant := range []struct {
		name string
		f    func(*matrix.Dense, []int) error
	}{
		{"unblocked", blas.Dgetf2},
		{"recursive", blas.Dgetf2Recursive},
	} {
		b.Run(variant.name, func(b *testing.B) {
			src := matrix.RandomGeneral(2000, 64, 5)
			piv := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := src.Clone()
				b.StartTimer()
				if err := variant.f(a, piv); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(perfmodel.PanelFlops(2000, 64)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkFig8 regenerates the Figure 8 timelines via the event-driven
// pipeline simulator.
func BenchmarkFig8(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Fig8()
	}
	b.ReportMetric(float64(len(out)), "chars")
}
