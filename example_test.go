package phihpl_test

import (
	"fmt"

	"phihpl"
)

// Solve a random system with the paper's dynamically scheduled LU and
// check it against the HPL acceptance threshold.
func ExampleSolve() {
	res, err := phihpl.Solve(400, phihpl.DynamicDAG, 48, 4, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("passed:", res.Passed)
	// Output: passed: true
}

// Run the distributed Linpack on four in-process nodes.
func ExampleSolveDistributed() {
	res, err := phihpl.SolveDistributed(300, 32, 4, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("passed:", res.Passed)
	// Output: passed: true
}

// Project the paper's 30K native Linpack run (Figure 6's right edge).
func ExampleNativeLinpackSim() {
	gflops, eff := phihpl.NativeLinpackSim(30000)
	fmt.Printf("%.0f GFLOPS at %.0f%% efficiency\n", gflops, eff*100)
	// Output: 832 GFLOPS at 79% efficiency
}

// Project the paper's single-node hybrid HPL with pipelined look-ahead
// (Table III, fourth row).
func ExampleHybridHPLSim() {
	r := phihpl.HybridHPLSim(phihpl.HybridConfig{
		N: 84000, Cards: 1, Lookahead: phihpl.PipelinedLookahead,
	})
	fmt.Printf("%.2f TFLOPS\n", r.TFLOPS)
	// Output: 1.13 TFLOPS
}

// Table III's problem sizes follow from node memory.
func ExampleMaxProblemSize() {
	fmt.Println(phihpl.MaxProblemSize(1, 64, 1200))
	// Output: 85200
}
