// Package phihpl is a Go reproduction of "Design and Implementation of the
// Linpack Benchmark for Single and Multi-Node Systems Based on Intel Xeon
// Phi Coprocessor" (Heinecke et al., IPDPS 2013).
//
// The package exposes three layers:
//
//   - Real numerics: pure-Go BLAS, LU factorization with the paper's DAG
//     dynamic scheduler, offload DGEMM with work stealing, and a
//     distributed block-cyclic Linpack on an in-process cluster fabric —
//     all residual-checked against the HPL acceptance test.
//   - A simulated Knights Corner machine: a cycle-level model of the
//     paper's DGEMM micro-kernels and calibrated cost models, on which
//     the same schedulers are replayed in virtual time.
//   - Experiment runners that regenerate every table and figure of the
//     paper's evaluation (Table I–III, Figures 4, 6, 7, 9, 11).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package phihpl

import (
	"math"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/fault"
	"phihpl/internal/hpl"
	"phihpl/internal/lu"
	"phihpl/internal/matrix"
	"phihpl/internal/offload"
	"phihpl/internal/simlu"
	"phihpl/internal/trace"
)

// ResidualThreshold is the HPL pass/fail bound on the scaled residual.
const ResidualThreshold = matrix.ResidualThreshold

// Typed failure modes, re-exported so callers can errors.Is/As against
// them without importing the internal layers.
var (
	// ErrSingular: factorization hit an exactly zero or subnormal pivot.
	// errors.As against *SingularError yields the offending global column.
	ErrSingular = blas.ErrSingular
	// ErrTimeout: a collective or point-to-point op exceeded the deadline.
	ErrTimeout = cluster.ErrTimeout
	// ErrRankFailed: a peer rank crashed or was declared dead.
	ErrRankFailed = cluster.ErrRankFailed
	// ErrChecksum: an ABFT super-step found corruption it could not repair.
	ErrChecksum = hpl.ErrChecksum
)

// SingularError reports the first column whose pivot was zero/subnormal.
type SingularError = blas.SingularError

// FaultError is the structured report of an unrecoverable fault-tolerant
// run: the iteration reached, restarts consumed, per-stage profile, and
// the underlying cause.
type FaultError = hpl.FaultError

// FaultPlan is a deterministic fault-injection schedule (see ParseFaultPlan).
type FaultPlan = fault.Plan

// FTConfig configures the fault-tolerant solver.
type FTConfig = hpl.FTConfig

// FTStats reports recovery activity of a fault-tolerant run.
type FTStats = hpl.FTStats

// SolveResult reports a real (bit-exact) Linpack solve.
type SolveResult struct {
	X        []float64
	Residual float64
	Passed   bool
	N        int
	// Seconds is the wall-clock of the timed phase (factorization through
	// back-substitution, entered through a barrier), the figure HPL itself
	// reports. Set by the 2D distributed drivers; zero elsewhere.
	Seconds float64
	// FT carries recovery statistics when the fault-tolerant driver ran.
	FT *FTStats
	// Refine reports the mixed-precision path (iteration count, typed
	// fallback) when SolveMixedPrecision ran; nil for pure-FP64 solves.
	Refine *RefineReport
}

// passed applies the HPL verdict: a non-finite residual (NaN from a
// poisoned solve, Inf from overflow) is always FAILED, never a silent
// false comparison.
func passed(res float64) bool {
	return !math.IsNaN(res) && !math.IsInf(res, 0) && res < ResidualThreshold
}

// Scheduler selects the native LU driver.
type Scheduler int

const (
	// Sequential is the blocked reference algorithm.
	Sequential Scheduler = iota
	// StaticLookahead is the barrier-per-stage baseline of Section IV-B.
	StaticLookahead
	// DynamicDAG is the paper's dynamic DAG scheduler.
	DynamicDAG
)

// Solve generates the seeded random system A·x = b of order n, factors it
// with the selected scheduler (NB block size, `workers` goroutine thread
// groups) and returns the solution with its HPL residual.
func Solve(n int, sched Scheduler, nb, workers int, seed uint64) (SolveResult, error) {
	return SolveTraced(n, sched, nb, workers, seed, nil)
}

// SolveTraced is Solve with a span recorder attached to the native LU
// driver: the dynamic DAG scheduler emits one wall-clock span per
// executed task (worker = thread group, name = PanelFact/Update), the
// real-execution counterpart of the paper's Figure 7 Gantt chart. Export
// the recorder with trace.Recorder.Gantt or WriteChromeTrace. A nil
// recorder makes this identical to Solve.
func SolveTraced(n int, sched Scheduler, nb, workers int, seed uint64, rec *trace.Recorder) (SolveResult, error) {
	a, b := matrix.RandomSystem(n, seed)
	driver := lu.Sequential
	switch sched {
	case StaticLookahead:
		driver = lu.StaticLookahead
	case DynamicDAG:
		driver = lu.Dynamic
	}
	x, res, err := lu.Solve(a, b, lu.Options{NB: nb, Workers: workers, Trace: rec}, driver)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: x, Residual: res, Passed: passed(res), N: n}, nil
}

// PrecisionMode selects the arithmetic of the shared-memory solve:
// PrecisionFP64 is the classical all-double path, PrecisionMixed is the
// HPL-MxP scheme — FP32 factorization through the packed SGEMM fast path,
// then FP64 iterative refinement, with automatic fallback to FP64 when
// the matrix is beyond single precision's reach.
type PrecisionMode = lu.PrecisionMode

// Precision modes for SolveMixedPrecision.
const (
	PrecisionFP64  = lu.PrecisionFP64
	PrecisionMixed = lu.PrecisionMixed
)

// ParsePrecisionMode parses "fp64" or "mixed".
func ParsePrecisionMode(s string) (PrecisionMode, error) { return lu.ParsePrecisionMode(s) }

// RefineReport describes a mixed-precision solve: refinement iterations,
// final scaled residual, and the typed reason when the solver abandoned
// the FP32 factors for the FP64 path.
type RefineReport = lu.MixedReport

// FallbackReason says why a mixed solve fell back to FP64.
type FallbackReason = lu.FallbackReason

// Fallback reasons carried in RefineReport.Reason.
const (
	FallbackNone      = lu.FallbackNone
	FallbackSingular  = lu.FallbackSingular
	FallbackStalled   = lu.FallbackStalled
	FallbackNonFinite = lu.FallbackNonFinite
)

// SolveMixedPrecision generates the seeded random system of order n and
// solves it in the selected precision: PrecisionFP64 routes to the
// blocked FP64 driver, PrecisionMixed factors in FP32 and refines in FP64
// (Result.Refine carries the iteration count and any fallback). Either
// way the result is held to the same HPL residual verdict — a mixed solve
// never trades accuracy for its speed.
func SolveMixedPrecision(n int, mode PrecisionMode, nb, workers int, seed uint64) (SolveResult, error) {
	return SolveMixedPrecisionTraced(n, mode, nb, workers, seed, nil)
}

// SolveMixedPrecisionTraced is SolveMixedPrecision with a span recorder:
// the mixed path emits "SFactor" for the FP32 factorization, one "Refine"
// span per correction solve, and "FP64Fallback" when it re-solves in
// double precision.
func SolveMixedPrecisionTraced(n int, mode PrecisionMode, nb, workers int, seed uint64, rec *trace.Recorder) (SolveResult, error) {
	if mode != PrecisionMixed {
		return SolveTraced(n, Sequential, nb, workers, seed, rec)
	}
	a, b := matrix.RandomSystem(n, seed)
	x, res, rep, err := lu.SolveMixed(a, b, lu.Options{NB: nb, Workers: workers, Trace: rec})
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: x, Residual: res, Passed: passed(res), N: n, Refine: &rep}, nil
}

// SolveDistributed runs the functional distributed Linpack on `ranks`
// in-process nodes (1D block-cyclic columns, per-stage panel broadcasts
// over a real message fabric) and returns the solution and residual.
func SolveDistributed(n, nb, ranks int, seed uint64) (SolveResult, error) {
	r, err := hpl.SolveDistributed(n, nb, ranks, seed)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds}, nil
}

// SolveDistributed2D runs the full HPL structure — a P×Q process grid
// with 2D block-cyclic blocks, distributed pivot swaps, and row/column
// broadcasts — on in-process nodes, bitwise identical to the sequential
// algorithm. It uses the pipelined look-ahead schedule; see
// SolveDistributed2DMode to pick another.
func SolveDistributed2D(n, nb, p, q int, seed uint64) (SolveResult, error) {
	r, err := hpl.SolveDistributed2D(n, nb, p, q, seed)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds}, nil
}

// LookaheadMode selects the stage schedule of the real 2D distributed
// driver: LookaheadNone is the synchronous baseline, LookaheadBasic
// factors panel k+1 as soon as its block column is updated, and
// LookaheadPipelined (the default) additionally splits the trailing
// update into per-block-column slices whose GEMMs overlap the next
// column's swaps and broadcasts. All three produce bitwise-identical
// factorizations.
type LookaheadMode = hpl.LookaheadMode

// Look-ahead schedules for the real 2D drivers (distinct from the
// simulator's NoLookahead/BasicLookahead/PipelinedLookahead, which price
// a modeled machine rather than schedule a real solve).
const (
	LookaheadNone      = hpl.LookaheadNone
	LookaheadBasic     = hpl.LookaheadBasic
	LookaheadPipelined = hpl.LookaheadPipelined
)

// ParseLookaheadMode parses "none", "basic" or "pipelined".
func ParseLookaheadMode(s string) (LookaheadMode, error) { return hpl.ParseLookaheadMode(s) }

// SolveDistributed2DMode is SolveDistributed2D with an explicit
// look-ahead schedule.
func SolveDistributed2DMode(n, nb, p, q int, seed uint64, mode LookaheadMode) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DMode(n, nb, p, q, seed, mode)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds}, nil
}

// SolveHybrid2D is SolveDistributed2D with every trailing update executed
// by the real offload engine (host/card work stealing over packed tiles) —
// the functional composition of the paper's Sections III and V.
func SolveHybrid2D(n, nb, p, q int, seed uint64) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DHybrid(n, nb, p, q, seed)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds}, nil
}

// SolveHybrid2DMode is SolveHybrid2D with an explicit look-ahead
// schedule.
func SolveHybrid2DMode(n, nb, p, q int, seed uint64, mode LookaheadMode) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DHybridMode(n, nb, p, q, seed, mode)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds}, nil
}

// SolveDistributed2DPrecision is SolveDistributed2DMode with an explicit
// precision: PrecisionFP64 is the plain driver, PrecisionMixed runs the
// distributed HPL-MxP scheme — FP32 panel factorization, broadcasts,
// swaps and packed trailing updates across the grid, then FP64 iterative
// refinement on the root (Result.Refine carries the iteration count).
// When the matrix is beyond single precision's reach the driver re-runs
// the FP64 path automatically and Refine records the typed reason; the
// verdict is the same HPL residual bar either way.
func SolveDistributed2DPrecision(n, nb, p, q int, seed uint64, mode LookaheadMode, prec PrecisionMode) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DPrecision(n, nb, p, q, seed, mode, prec)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds, Refine: r.Refine}, nil
}

// SolveHybrid2DPrecision is SolveHybrid2DMode with an explicit precision.
// The offload engine computes in FP64 only, so a mixed hybrid solve
// routes its trailing updates through the FP32 packed host path — bitwise
// identical to the plain mixed driver — and keeps the offload engine for
// the FP64 fallback re-run.
func SolveHybrid2DPrecision(n, nb, p, q int, seed uint64, mode LookaheadMode, prec PrecisionMode) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DHybridPrecision(n, nb, p, q, seed, mode, prec)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds, Refine: r.Refine}, nil
}

// ParseFaultPlan parses a fault-injection spec like
//
//	"seed=7;drop=0.02;delay=0.01:2ms;corrupt=0.01;crash=3@2;stall=1@4:300ms;scrub=2@3"
//
// into a deterministic plan: the same spec always injects the same faults.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// SolveFaultTolerant2D is SolveDistributed2D hardened against the faults
// scheduled in cfg.Plan: messages are retried over a lossy fabric, silent
// data corruption is repaired from ABFT checksum columns carried through
// the factorization, and rank crashes roll back to the last super-step
// checkpoint. With an empty plan the result is bitwise identical to
// SolveDistributed2D. On unrecoverable faults the error is a *FaultError
// carrying the iteration reached and the per-stage profile.
func SolveFaultTolerant2D(n, nb, p, q int, seed uint64, cfg FTConfig) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DFT(n, nb, p, q, seed, cfg)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds, FT: r.FT}, nil
}

// NativeLinpackSim prices a native Linpack run of order n on the simulated
// Knights Corner with the dynamic DAG scheduler and returns (GFLOPS,
// efficiency vs. 60-core peak).
func NativeLinpackSim(n int) (gflops, eff float64) {
	r := simlu.Dynamic(simlu.Config{N: n})
	return r.GFLOPS, r.Eff
}

// NativeLinpackStaticSim prices the static look-ahead baseline.
func NativeLinpackStaticSim(n int) (gflops, eff float64) {
	r := simlu.Static(simlu.Config{N: n})
	return r.GFLOPS, r.Eff
}

// OffloadDGEMMSim prices an offload DGEMM of an m×n trailing update
// (depth 1200) on the given number of cards and returns (GFLOPS,
// efficiency vs. the cards' full peak).
func OffloadDGEMMSim(m, n, cards int) (gflops, eff float64) {
	r := offload.Simulate(m, n, offload.SimConfig{Cards: cards})
	return r.GFLOPS, r.Eff
}

// HybridConfig configures a hybrid HPL simulation (a Table III row).
type HybridConfig = hpl.SimConfig

// Lookahead modes for HybridConfig.
const (
	NoLookahead        = hpl.NoLookahead
	BasicLookahead     = hpl.BasicLookahead
	PipelinedLookahead = hpl.PipelinedLookahead
)

// HybridResult is the outcome of a hybrid HPL simulation.
type HybridResult = hpl.SimResult

// HybridHPLSim prices a hybrid (host + coprocessor) HPL run.
func HybridHPLSim(cfg HybridConfig) HybridResult { return hpl.Simulate(cfg) }

// MaxProblemSize returns the largest NB-multiple problem size whose matrix
// fits in the cluster's host memory — how Table III's N values follow from
// the 64/128 GB node configurations.
func MaxProblemSize(nodes, memGiB, nb int) int { return hpl.MaxProblemSize(nodes, memGiB, nb) }
