#!/bin/sh
# End-to-end smoke for cmd/hplserver, in two phases:
#
#  1. Serve: submit a small FP64 solve, a native mixed-precision solve,
#     and a 2D-distributed mixed solve over HTTP, wait for all to PASS,
#     then SIGTERM and require a clean drain (exit 0).
#  2. Durability: restart with -journal, complete a small job, SIGKILL
#     the server while a big job is mid-solve, restart on the same
#     journal, and require (a) the completed result to survive as an
#     instant cache hit, (b) the interrupted job to surface as ABORTED
#     with a typed "interrupted" error, (c) a clean SIGTERM exit 0.
#
# Run from the repo root; CI runs it on every push.
set -eu

ADDR="${HPLSERVER_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/hplserver"
LOG="$(mktemp)"

fail() {
    echo "smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2
    exit 1
}

go build -o "$BIN" ./cmd/hplserver

"$BIN" -addr "$ADDR" -queue 8 -concurrency 2 -drain-timeout 30s >"$LOG" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

# Wait for readiness.
i=0
until curl -sf "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "server never became ready"
    kill -0 "$SRV" 2>/dev/null || fail "server died during startup"
    sleep 0.2
done

# submit <json-body> -> job id on stdout
submit() {
    out=$(curl -sf -X POST "$BASE/v1/solve" -H 'X-Tenant: smoke' -d "$1") \
        || fail "submit rejected: $1"
    id=$(printf '%s' "$out" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
    [ -n "$id" ] || fail "no job id in response: $out"
    printf '%s' "$id"
}

# await <id>: poll until terminal, require PASSED
await() {
    i=0
    while :; do
        view=$(curl -sf "$BASE/v1/jobs/$1") || fail "poll $1 failed"
        if printf '%s' "$view" | grep -q '"state": *"PASSED"'; then
            return 0
        fi
        if printf '%s' "$view" | grep -Eq '"state": *"(FAILED|ABORTED)"'; then
            fail "job $1 not PASSED: $view"
        fi
        i=$((i + 1))
        [ "$i" -le 300 ] || fail "job $1 never finished: $view"
        sleep 0.2
    done
}

J1=$(submit '{"mode":"native","n":96,"nb":32,"workers":2,"seed":42}')
J2=$(submit '{"mode":"native","n":96,"nb":32,"workers":2,"seed":7,"precision":"mixed"}')
J3=$(submit '{"mode":"dist2d","n":96,"nb":16,"p":2,"q":2,"seed":7,"precision":"mixed"}')
await "$J1"
await "$J2"
await "$J3"

# The mixed jobs must report their refinement route.
curl -sf "$BASE/v1/jobs/$J2" | grep -q '"refine"' \
    || fail "native mixed job carries no refinement report"
curl -sf "$BASE/v1/jobs/$J3" | grep -q '"refine"' \
    || fail "dist2d mixed job carries no refinement report"

# Counters are visible.
curl -sf "$BASE/metrics" | grep -q 'server.jobs_passed' \
    || fail "/metrics missing server counters"

# Graceful drain: SIGTERM, clean exit 0.
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
trap - EXIT
[ "$rc" -eq 0 ] || fail "server exited $rc after SIGTERM"

echo "smoke: phase 1 PASS ($J1 fp64, $J2 mixed, $J3 dist2d-mixed, clean drain)"

# ----- Phase 2: crash durability ---------------------------------------
# A journal-backed server is SIGKILLed mid-job; the restart must recover
# the completed result and abort the interrupted one with a typed error.

JOURNAL="$(mktemp -d)/wal.journal"

wait_ready() {
    i=0
    until curl -sf "$BASE/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 50 ] || fail "server never became ready"
        kill -0 "$1" 2>/dev/null || fail "server died during startup"
        sleep 0.2
    done
}

# await_running <id>: poll until the job is RUNNING (and not yet terminal)
await_running() {
    i=0
    while :; do
        view=$(curl -sf "$BASE/v1/jobs/$1") || fail "poll $1 failed"
        if printf '%s' "$view" | grep -q '"state": *"RUNNING"'; then
            return 0
        fi
        if printf '%s' "$view" | grep -Eq '"state": *"(FAILED|ABORTED|PASSED)"'; then
            fail "job $1 went terminal before the crash: $view"
        fi
        i=$((i + 1))
        [ "$i" -le 300 ] || fail "job $1 never started running: $view"
        sleep 0.1
    done
}

"$BIN" -addr "$ADDR" -queue 8 -concurrency 1 -journal "$JOURNAL" >"$LOG" 2>&1 &
SRV=$!
trap 'kill -9 "$SRV" 2>/dev/null || true' EXIT
wait_ready "$SRV"

# A small job completes and enters the durable result cache...
JC=$(submit '{"mode":"native","n":96,"nb":32,"workers":2,"seed":42}')
await "$JC"
# ...then a big job is mid-solve when the server is SIGKILLed.
JBIG=$(submit '{"mode":"native","n":1536,"nb":64,"workers":2,"seed":9}')
await_running "$JBIG"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true

"$BIN" -addr "$ADDR" -queue 8 -concurrency 1 -journal "$JOURNAL" >"$LOG" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT
wait_ready "$SRV"

grep -q "journal replay done" "$LOG" \
    || fail "restart printed no recovery banner"

# (a) The pre-crash completed result survived; an identical submission is
# an instant cache hit served from the recovered cache.
curl -sf "$BASE/v1/jobs/$JC" | grep -q '"state": *"PASSED"' \
    || fail "completed job $JC did not survive the crash"
hit=$(curl -sf -X POST "$BASE/v1/solve" -H 'X-Tenant: smoke' \
    -d '{"mode":"native","n":96,"nb":32,"workers":2,"seed":42}') \
    || fail "post-crash resubmission rejected"
printf '%s' "$hit" | grep -q '"state": *"PASSED"' \
    || fail "post-crash resubmission not an instant hit: $hit"
printf '%s' "$hit" | grep -q '"cached": *true' \
    || fail "post-crash resubmission not served from the recovered cache: $hit"

# (b) The interrupted job is ABORTED with the typed reason.
ib=$(curl -sf "$BASE/v1/jobs/$JBIG") || fail "interrupted job $JBIG lost"
printf '%s' "$ib" | grep -q '"state": *"ABORTED"' \
    || fail "interrupted job $JBIG not ABORTED: $ib"
printf '%s' "$ib" | grep -q '"kind": *"interrupted"' \
    || fail "interrupted job $JBIG missing typed interrupted error: $ib"

# (c) Clean drain again, journal intact.
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
trap - EXIT
[ "$rc" -eq 0 ] || fail "server exited $rc after SIGTERM post-recovery"

echo "smoke: PASS (phase 1 + crash recovery: $JC cached across SIGKILL, $JBIG interrupted, clean drain)"
