package phihpl

import (
	"fmt"
	"strings"

	"phihpl/internal/hpl"
	"phihpl/internal/kernels"
	"phihpl/internal/offload"
	"phihpl/internal/simlu"
)

// Ablations regenerates the design-choice ablations DESIGN.md calls out:
// each row isolates one mechanism of the paper and reports the modelled
// cost of removing it.
func Ablations() string {
	var b strings.Builder

	e1 := kernels.LoopEfficiency(kernels.Kernel1)
	e2 := kernels.LoopEfficiency(kernels.Kernel2)
	fmt.Fprintf(&b, "micro-kernel:     Basic Kernel 1 %.2f%% (L1 port-conflict stalls)  vs  Basic Kernel 2 %.2f%% (swizzle holes)\n",
		e1*100, e2*100)

	on := simlu.Dynamic(simlu.Config{N: 5000, MaxGroups: 8})
	off := simlu.Dynamic(simlu.Config{N: 5000, MaxGroups: 8, DisableRegroup: true})
	fmt.Fprintf(&b, "super-stages:     regrouping on %.1f GF  vs  off %.1f GF  (N=5K, -%.0f%%)\n",
		on.GFLOPS, off.GFLOPS, (1-off.GFLOPS/on.GFLOPS)*100)

	master := simlu.Dynamic(simlu.Config{N: 10000, MaxGroups: 8})
	all := simlu.Dynamic(simlu.Config{N: 10000, MaxGroups: 8, AllThreadsContend: true})
	fmt.Fprintf(&b, "scheduler access: master-only %.1f GF  vs  all-threads contend %.1f GF  (N=10K)\n",
		master.GFLOPS, all.GFLOPS)

	auto := offload.Simulate(40000, 40000, offload.SimConfig{Cards: 1})
	forced := offload.Simulate(40000, 40000, offload.SimConfig{Cards: 1, ForceTile: 1200})
	fmt.Fprintf(&b, "tile selection:   run-time (tile %d) %.1f GF  vs  forced 1200 %.1f GF  (M=40K)\n",
		auto.Mt, auto.GFLOPS, forced.GFLOPS)

	none := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.NoLookahead})
	basic := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.BasicLookahead})
	pipe := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.PipelinedLookahead})
	fmt.Fprintf(&b, "look-ahead:       none %.1f%%  basic %.1f%%  pipelined %.1f%%  (hybrid, N=84K)\n",
		none.Eff*100, basic.Eff*100, pipe.Eff*100)

	ftOff := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.PipelinedLookahead})
	ftOn := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.PipelinedLookahead,
		FTLossRate: 1e-3, FTCheckpointEvery: 8})
	fmt.Fprintf(&b, "fault tolerance:  off %.1f%%  vs  ABFT+ckpt(8)+loss 1e-3 %.1f%%  (FT overhead %.1f%% of run time)\n",
		ftOff.Eff*100, ftOn.Eff*100, ftOn.FTOverheadFrac*100)

	nat := hpl.SimulateNativeCluster(hpl.NativeClusterConfig{
		N: hpl.MaxNativeProblemSize(2, 2, 300), P: 2, Q: 2})
	hyb := hpl.Simulate(hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: hpl.PipelinedLookahead})
	fmt.Fprintf(&b, "future work:      native 2x2 cards %.2f TF (%.1f%% of card peak)  vs  hybrid 2x2 %.2f TF (%.1f%% of node peak)\n",
		nat.TFLOPS, nat.Eff*100, hyb.TFLOPS, hyb.Eff*100)

	return b.String()
}
