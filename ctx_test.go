package phihpl

import (
	"context"
	"errors"
	"testing"

	"phihpl/internal/testutil"
)

// The facade's cancellation contract: an already-cancelled context returns
// promptly with context.Canceled from every ctx entry point, leaking no
// goroutines and doing no work.
func TestFacadeCtxAlreadyCancelled(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name  string
		solve func() (SolveResult, error)
	}{
		{"SolveContext", func() (SolveResult, error) {
			return SolveContext(ctx, 96, DynamicDAG, 16, 2, 1)
		}},
		{"SolveDistributedCtx", func() (SolveResult, error) {
			return SolveDistributedCtx(ctx, 64, 16, 2, 1)
		}},
		{"SolveDistributed2DCtx", func() (SolveResult, error) {
			return SolveDistributed2DCtx(ctx, 64, 16, 2, 2, 1)
		}},
		{"SolveHybrid2DCtx", func() (SolveResult, error) {
			return SolveHybrid2DCtx(ctx, 64, 16, 2, 2, 1)
		}},
		{"SolveFaultTolerant2DCtx", func() (SolveResult, error) {
			return SolveFaultTolerant2DCtx(ctx, 64, 16, 2, 2, 1, FTConfig{})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.solve(); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// A completed SolveContext run matches Solve bitwise for every scheduler.
func TestSolveContextMatchesSolve(t *testing.T) {
	defer testutil.NoLeaks(t)()
	for _, s := range []Scheduler{Sequential, StaticLookahead, DynamicDAG} {
		want, err := Solve(96, s, 16, 3, 7)
		if err != nil {
			t.Fatalf("scheduler %v: %v", s, err)
		}
		got, err := SolveContext(context.Background(), 96, s, 16, 3, 7)
		if err != nil {
			t.Fatalf("scheduler %v: %v", s, err)
		}
		if !got.Passed {
			t.Errorf("scheduler %v: residual %g", s, got.Residual)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("scheduler %v: solution differs at %d", s, i)
			}
		}
	}
}
