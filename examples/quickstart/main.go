// Quickstart: solve a random dense system with the paper's dynamically
// scheduled LU factorization and verify the HPL residual — the minimal
// end-to-end use of the library.
package main

import (
	"fmt"
	"os"

	"phihpl"
)

func main() {
	const n = 1500

	fmt.Printf("Solving a %dx%d random system with DAG-scheduled LU...\n", n, n)
	res, err := phihpl.Solve(n, phihpl.DynamicDAG, 96, 8, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, "factorization failed:", err)
		os.Exit(1)
	}

	status := "PASSED"
	if !res.Passed {
		status = "FAILED"
	}
	fmt.Printf("scaled residual = %.6f (threshold %.1f) ...... %s\n",
		res.Residual, phihpl.ResidualThreshold, status)
	fmt.Printf("x[0..4] = %.6f %.6f %.6f %.6f\n", res.X[0], res.X[1], res.X[2], res.X[3])

	// The three schedulers reorder only independent work, so they agree
	// bit for bit.
	seq, _ := phihpl.Solve(n, phihpl.Sequential, 96, 1, 42)
	identical := true
	for i := range res.X {
		if res.X[i] != seq.X[i] {
			identical = false
			break
		}
	}
	fmt.Printf("dynamic vs sequential solution bitwise identical: %v\n", identical)
	if !res.Passed || !identical {
		os.Exit(1)
	}
}
