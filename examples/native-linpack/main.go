// Native Linpack: reproduce the Figure 6 experiment — static look-ahead
// vs. dynamic DAG scheduling on the simulated Knights Corner — and render
// the Figure 7 Gantt chart for the 5K problem.
package main

import (
	"fmt"

	"phihpl"
	"phihpl/internal/simlu"
	"phihpl/internal/trace"
)

func main() {
	fmt.Println("Native Linpack on simulated Knights Corner (Figure 6):")
	fmt.Printf("%8s %14s %14s\n", "N", "static GF", "dynamic GF")
	for _, n := range []int{1000, 2000, 5000, 8000, 15000, 30000} {
		sg, _ := phihpl.NativeLinpackStaticSim(n)
		dg, de := phihpl.NativeLinpackSim(n)
		fmt.Printf("%8d %14.1f %14.1f   (dynamic: %.1f%% efficiency)\n", n, sg, dg, de*100)
	}

	fmt.Println("\nExecution profile for N=5120 with dynamic scheduling (Figure 7b):")
	var rec trace.Recorder
	r := simlu.Dynamic(simlu.Config{N: 5120, NB: 256, Trace: &rec})
	fmt.Print(rec.Gantt(96))
	fmt.Printf("achieved: %.1f GFLOPS (%.1f%%)\n", r.GFLOPS, r.Eff*100)
}
