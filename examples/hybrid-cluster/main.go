// Hybrid cluster: run the real distributed Linpack on in-process "nodes"
// (block-cyclic panels, per-stage broadcasts over the message fabric) and
// verify its residual; then project the paper's 100-node hybrid cluster
// with each look-ahead scheme (Table III's headline rows).
package main

import (
	"fmt"
	"os"

	"phihpl"
)

func main() {
	// Real distributed solve over 6 goroutine nodes.
	const n, nb, ranks = 1200, 48, 6
	fmt.Printf("distributed Linpack: N=%d, NB=%d over %d nodes...\n", n, nb, ranks)
	res, err := phihpl.SolveDistributed(n, nb, ranks, 2026)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	status := "PASSED"
	if !res.Passed {
		status = "FAILED"
	}
	fmt.Printf("scaled residual = %.6f ...... %s\n\n", res.Residual, status)

	// Project the paper's 100-node cluster.
	nMax := phihpl.MaxProblemSize(100, 64, 1200)
	fmt.Printf("projected 100-node Knights Corner cluster (N=%d fits 64 GiB/node):\n", nMax)
	for _, mode := range []struct {
		name string
		la   phihpl.HybridConfig
	}{
		{"no look-ahead", phihpl.HybridConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: phihpl.NoLookahead}},
		{"basic look-ahead", phihpl.HybridConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: phihpl.BasicLookahead}},
		{"pipelined look-ahead", phihpl.HybridConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: phihpl.PipelinedLookahead}},
	} {
		r := phihpl.HybridHPLSim(mode.la)
		fmt.Printf("  %-22s %7.1f TFLOPS  (%.1f%% efficiency, card idle %.1f%%)\n",
			mode.name, r.TFLOPS, r.Eff*100, r.CardIdleFrac*100)
	}
	if !res.Passed {
		os.Exit(1)
	}
}
