// HPL.dat workflow: drive the library the way the reference HPL
// distribution is driven — a parameter file whose cross-product of problem
// sizes, block sizes, grids and look-ahead depths is run and reported in
// HPL.out format. Small problems execute the real 2D block-cyclic solver
// (with measured residuals); large ones are priced on the simulated
// Knights Corner cluster.
package main

import (
	"fmt"
	"os"
	"strings"

	"phihpl"
)

const dat = `HPLinpack benchmark input file (example)
2              # of problems sizes (N)
480 84000      Ns
1              # of NBs
48             NBs
2              # of process grids (P x Q)
1 2            Ps
1 2            Qs
3              # of lookahead depth
0 1 2          DEPTHs
`

func main() {
	fmt.Println("input HPL.dat:")
	fmt.Print(dat)
	fmt.Println()
	fmt.Println("output report (N<=2000 rows run the real distributed solver):")
	if err := phihpl.RunDat(strings.NewReader(dat), os.Stdout, 2000); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
