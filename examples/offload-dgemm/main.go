// Offload DGEMM: run the real work-stealing offload engine (host and
// "card" goroutines meeting in the middle of the tile grid) and check the
// result against plain DGEMM; then project Figure 11's offload performance
// for one and two coprocessors on the machine model.
package main

import (
	"fmt"
	"os"

	"phihpl"
	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/offload"
)

func main() {
	// Real computation with work stealing.
	m, k, n := 600, 200, 480
	a := matrix.RandomGeneral(m, k, 7)
	b := matrix.RandomGeneral(k, n, 8)
	c := matrix.NewDense(m, n)
	stats := offload.Compute(a, b, c, offload.RealConfig{
		Mt: 96, Nt: 96, CardWorkers: 2, HostWorkers: 2,
	})
	want := matrix.NewDense(m, n)
	blas.Dgemm(false, false, 1, a, b, 0, want)
	diff := matrix.MaxDiff(c, want)
	fmt.Printf("real offload DGEMM %dx%dx%d: card %d tiles, host %d tiles, maxdiff %.2g\n",
		m, n, k, stats.CardTiles, stats.HostTiles, diff)
	if diff > 1e-10 {
		fmt.Println("MISMATCH")
		os.Exit(1)
	}

	// Figure 11 projection.
	fmt.Println("\noffload DGEMM projection (trailing updates, Kt=1200):")
	for _, size := range []int{20000, 40000, 82000} {
		g1, e1 := phihpl.OffloadDGEMMSim(size, size, 1)
		g2, e2 := phihpl.OffloadDGEMMSim(size, size, 2)
		fmt.Printf("  M=N=%-6d 1 card: %7.1f GFLOPS (%.1f%%)   2 cards: %7.1f GFLOPS (%.1f%%)\n",
			size, g1, e1*100, g2, e2*100)
	}
}
