package trace

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: the recorded spans as complete ("X") events
// in the Trace Event Format understood by chrome://tracing and Perfetto
// (ui.perfetto.dev). Workers map to thread ids, so each worker gets its
// own timeline track; the iteration travels in args.iter.

// chromeEvent is one entry of the traceEvents array. Field order matters
// for the golden test; timestamps and durations are microseconds per the
// format specification.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON object format (the array format is also legal,
// but the object form lets viewers know the time unit).
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the spans as Chrome trace-event JSON. Negative
// durations are clamped to zero (the viewer rejects them); spans are
// emitted in insertion order. The output opens directly in
// chrome://tracing or Perfetto. Writing a nil or empty recorder produces
// a valid file with no events.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.snapshot()
	events := make([]chromeEvent, 0, len(spans)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "phihpl"},
	})
	for _, s := range spans {
		dur := s.Duration() * 1e6
		if dur < 0 {
			dur = 0
		}
		d := dur
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", Ts: s.Start * 1e6, Dur: &d,
			Pid: 0, Tid: s.Worker,
			Args: map[string]any{"iter": s.Iter},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
