package trace

import (
	"math"
	"strings"
	"testing"
)

func TestTotalsAndMakespan(t *testing.T) {
	var r Recorder
	r.Add(0, "dgemm", 0, 0, 2)
	r.Add(1, "dgemm", 0, 1, 4)
	r.Add(0, "panel", 1, 2, 3)
	if got := r.Makespan(); got != 4 {
		t.Errorf("makespan = %v, want 4", got)
	}
	tot := r.Totals()
	if tot["dgemm"] != 5 || tot["panel"] != 1 {
		t.Errorf("totals = %v", tot)
	}
	if n := len(r.Spans()); n != 3 {
		t.Errorf("spans = %d", n)
	}
	r.Reset()
	if r.Makespan() != 0 || len(r.Spans()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestIterTotals(t *testing.T) {
	var r Recorder
	r.Add(0, "dgemm", 0, 0, 1)
	r.Add(0, "swap", 2, 1, 1.5)
	r.Add(0, "swap", 2, 2, 2.25)
	it := r.IterTotals()
	if len(it) != 3 {
		t.Fatalf("iters = %d, want 3", len(it))
	}
	if it[0]["dgemm"] != 1 {
		t.Errorf("iter0 = %v", it[0])
	}
	if len(it[1]) != 0 {
		t.Errorf("iter1 should be empty: %v", it[1])
	}
	if math.Abs(it[2]["swap"]-0.75) > 1e-12 {
		t.Errorf("iter2 swap = %v, want 0.75", it[2]["swap"])
	}
}

func TestGanttRendering(t *testing.T) {
	var r Recorder
	r.Add(0, "dgemm", 0, 0, 5)
	r.Add(1, "panel", 0, 0, 2.5)
	r.Add(1, "swap", 0, 2.5, 5)
	out := r.Gantt(10)
	if !strings.Contains(out, "D=dgemm") {
		t.Errorf("legend missing dgemm glyph:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "DDDDDDDDDD") {
		t.Errorf("worker 0 row should be all D:\n%s", out)
	}
	if !strings.Contains(lines[1], "PPPPP") || !strings.Contains(lines[1], "SSSSS") {
		t.Errorf("worker 1 row should split P/S:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var r Recorder
	if got := r.Gantt(40); got != "(empty trace)\n" {
		t.Errorf("got %q", got)
	}
}

func TestGanttGlyphCollision(t *testing.T) {
	var r Recorder
	r.Add(0, "dgemm", 0, 0, 1)
	r.Add(0, "dtrsm", 0, 1, 2)
	r.Add(0, "dlaswp", 0, 2, 3)
	out := r.Gantt(30)
	// Distinct glyphs: D for dgemm, T for dtrsm, L for dlaswp.
	for _, want := range []string{"D=dgemm", "T=dtrsm", "L=dlaswp"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in legend:\n%s", want, out)
		}
	}
}

func TestGanttTinySpanStillVisible(t *testing.T) {
	var r Recorder
	r.Add(0, "big", 0, 0, 100)
	r.Add(1, "tiny", 0, 50, 50.0001)
	out := r.Gantt(20)
	if !strings.Contains(out, "T") {
		t.Errorf("tiny span should occupy at least one cell:\n%s", out)
	}
}

func TestProfileTable(t *testing.T) {
	var r Recorder
	r.Add(0, "dgemm", 0, 0, 3)
	r.Add(0, "swap", 0, 3, 4)
	out := r.ProfileTable(0) // total = sum = 4
	if !strings.Contains(out, "dgemm") || !strings.Contains(out, "75.00%") {
		t.Errorf("profile:\n%s", out)
	}
	out = r.ProfileTable(8)
	if !strings.Contains(out, "37.50%") {
		t.Errorf("profile with explicit total:\n%s", out)
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	var r Recorder
	r.Add(0, "x", 0, 0, 1)
	out := r.Gantt(0)
	if !strings.Contains(out, strings.Repeat("X", 80)) {
		t.Errorf("default width should be 80:\n%s", out)
	}
}

func TestZeroLengthSpanIgnoredInRender(t *testing.T) {
	var r Recorder
	r.Add(0, "a", 0, 1, 1)
	r.Add(0, "b", 0, 0, 2)
	tot := r.Totals()
	if _, ok := tot["a"]; ok {
		t.Error("zero-length span should not contribute time")
	}
	if tot["b"] != 2 {
		t.Errorf("b = %v", tot["b"])
	}
}

func TestGlyphFallbacks(t *testing.T) {
	var r Recorder
	// Names exhausting letters force digit glyphs.
	r.Add(0, "a", 0, 0, 1)
	r.Add(0, "aa", 0, 1, 2)
	r.Add(0, "", 0, 2, 3) // no letters at all -> digit
	out := r.Gantt(30)
	if !strings.Contains(out, "legend:") {
		t.Fatalf("gantt failed:\n%s", out)
	}
	// All three names must have distinct glyphs.
	g := glyphs([]string{"a", "aa", ""})
	seen := map[rune]bool{}
	for _, v := range g {
		if seen[v] {
			t.Fatalf("glyph collision: %v", g)
		}
		seen[v] = true
	}
}

func TestWorkerUtilization(t *testing.T) {
	var r Recorder
	if r.WorkerUtilization() != nil {
		t.Error("empty trace utilization")
	}
	r.Add(0, "x", 0, 0, 10)
	r.Add(1, "y", 0, 0, 4)
	u := r.WorkerUtilization()
	if len(u) != 2 || u[0] != 1.0 || u[1] != 0.4 {
		t.Errorf("utilization = %v", u)
	}
	// Overlapping spans clamp at 1.
	r.Add(1, "z", 0, 0, 10)
	if u := r.WorkerUtilization(); u[1] != 1.0 {
		t.Errorf("clamp failed: %v", u)
	}
}
