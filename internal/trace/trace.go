// Package trace records execution spans from real or simulated runs and
// renders them as ASCII Gantt charts, region profiles, and Chrome
// trace-event JSON (see chrome.go).
//
// It backs two artefacts of the paper: Figure 7 (Gantt chart of the native
// LU execution profile, where the colours DLASWP/DTRSM/DGETRF/DGEMM/barrier
// become letters), and Figure 9 (per-iteration breakdown of hybrid HPL time
// into DGEMM vs. exposed U-broadcast / swap / DTRSM / panel regions).
//
// The recorder is safe for concurrent producers: the real DAG scheduler,
// the worker pool and the packed DGEMM all Add spans from many goroutines
// at once. All methods are nil-receiver safe no-ops, so instrumented code
// can hold a possibly-nil *Recorder and call it unconditionally — the
// uninstrumented path costs one nil check and allocates nothing.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one interval of named work on one worker (thread group, core,
// node — the meaning of Worker is up to the producer).
type Span struct {
	Worker int
	Name   string
	Iter   int
	Start  float64
	End    float64
}

// Duration returns End-Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Recorder accumulates spans. The zero value is ready to use; a nil
// *Recorder is a valid no-op sink.
type Recorder struct {
	mu    sync.Mutex
	epoch time.Time // set on the first clock use
	spans []Span
}

// Add records a span. Zero- or negative-length spans are kept (they can
// carry ordering information) but render as nothing. Safe for concurrent
// use; a no-op on a nil receiver.
func (r *Recorder) Add(worker int, name string, iter int, start, end float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Worker: worker, Name: name, Iter: iter, Start: start, End: end})
	r.mu.Unlock()
}

// Start returns the current recorder-relative timestamp in seconds (the
// epoch is pinned at the recorder's first clock use). Pair it with Since
// to produce wall-clock spans from real runs:
//
//	t0 := rec.Start()
//	work()
//	rec.Since(worker, "work", iter, t0)
//
// On a nil receiver it returns 0 without reading the clock.
func (r *Recorder) Start() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	now := r.nowLocked()
	r.mu.Unlock()
	return now
}

// Since records a span that began at start (a Start timestamp) and ends
// now. A no-op on a nil receiver.
func (r *Recorder) Since(worker int, name string, iter int, start float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	end := r.nowLocked()
	r.spans = append(r.spans, Span{Worker: worker, Name: name, Iter: iter, Start: start, End: end})
	r.mu.Unlock()
}

// nowLocked returns seconds since the epoch, pinning the epoch on first use.
func (r *Recorder) nowLocked() float64 {
	if r.epoch.IsZero() {
		r.epoch = time.Now()
	}
	return time.Since(r.epoch).Seconds()
}

// Spans returns a copy of the recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// snapshot is the internal, copy-making read used by every renderer, so
// rendering never races with concurrent producers.
func (r *Recorder) snapshot() []Span { return r.Spans() }

// Reset discards all spans (the epoch is kept).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

// Makespan returns the latest End over all spans (0 when empty).
func (r *Recorder) Makespan() float64 {
	return makespanOf(r.snapshot())
}

func makespanOf(spans []Span) float64 {
	m := 0.0
	for _, s := range spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// Totals sums span durations by name.
func (r *Recorder) Totals() map[string]float64 {
	t := make(map[string]float64)
	for _, s := range r.snapshot() {
		if d := s.Duration(); d > 0 {
			t[s.Name] += d
		}
	}
	return t
}

// IterTotals sums span durations by (iteration, name). The returned slice is
// indexed by iteration; iterations never seen produce empty maps.
func (r *Recorder) IterTotals() []map[string]float64 {
	spans := r.snapshot()
	maxIter := -1
	for _, s := range spans {
		if s.Iter > maxIter {
			maxIter = s.Iter
		}
	}
	out := make([]map[string]float64, maxIter+1)
	for i := range out {
		out[i] = make(map[string]float64)
	}
	for _, s := range spans {
		if s.Iter >= 0 {
			if d := s.Duration(); d > 0 {
				out[s.Iter][s.Name] += d
			}
		}
	}
	return out
}

// namesOf returns the distinct span names in first-appearance order.
func namesOf(spans []Span) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range spans {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	return out
}

// glyphFallback is the symbol pool used once a name's own letters are
// taken: digits first, then a wide set of printable ASCII marks. Only
// after the whole pool is exhausted does a name get '?', and '?' is
// handed out at most once — beyond that, glyphs escalate into successive
// non-ASCII runes so every name stays uniquely identifiable in the legend.
const glyphFallback = "0123456789*#@+=%&$!^~<>/\\{}[]()"

// glyphs assigns a stable one-rune code to each span name: the first
// unused letter of the name, upper-cased, then the fallback pool, then a
// guaranteed-unique escalation. No two names ever share a glyph.
func glyphs(names []string) map[string]rune {
	g := make(map[string]rune, len(names))
	used := make(map[rune]bool)
	for _, n := range names {
		var r rune
		for _, c := range strings.ToUpper(n) {
			if c >= 'A' && c <= 'Z' && !used[c] {
				r = c
				break
			}
		}
		if r == 0 {
			for _, c := range glyphFallback {
				if !used[c] {
					r = c
					break
				}
			}
		}
		if r == 0 && !used['?'] {
			r = '?'
		}
		if r == 0 {
			// Pool exhausted: walk the Latin-1 supplement and beyond for
			// the first unused rune. Unbounded, so uniqueness is total.
			for c := rune(0xC0); ; c++ {
				if !used[c] {
					r = c
					break
				}
			}
		}
		used[r] = true
		g[n] = r
	}
	return g
}

// Gantt renders the spans as an ASCII chart: one row per worker, width
// columns across [0, Makespan]. Each cell shows the glyph of the span
// covering the cell's midpoint (later spans win ties); '.' is idle.
// A legend follows the chart.
//
// Malformed spans cannot panic the renderer: column indexes are clamped
// to [0, width) and spans on negative workers (used by producers for
// "off-timeline" bookkeeping regions) are skipped entirely.
func (r *Recorder) Gantt(width int) string {
	if width < 1 {
		width = 80
	}
	spans := r.snapshot()
	makespan := makespanOf(spans)
	if makespan <= 0 || len(spans) == 0 {
		return "(empty trace)\n"
	}
	// Renderable spans only: positive duration, on a non-negative worker,
	// ending after t=0. The legend is built from the same set, so it never
	// lists glyphs that cannot appear in the chart.
	vis := spans[:0:0]
	maxWorker := 0
	for _, s := range spans {
		if s.Duration() <= 0 || s.Worker < 0 || s.End <= 0 {
			continue
		}
		vis = append(vis, s)
		if s.Worker > maxWorker {
			maxWorker = s.Worker
		}
	}
	if len(vis) == 0 {
		return "(empty trace)\n"
	}
	names := namesOf(vis)
	g := glyphs(names)

	rows := make([][]rune, maxWorker+1)
	for i := range rows {
		rows[i] = []rune(strings.Repeat(".", width))
	}
	for _, s := range vis {
		lo := int(s.Start / makespan * float64(width))
		hi := int(s.End / makespan * float64(width))
		if lo < 0 {
			lo = 0
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		if lo >= width {
			lo = width - 1
		}
		for c := lo; c < hi; c++ {
			rows[s.Worker][c] = g[s.Name]
		}
	}

	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "%3d |%s|\n", i, string(row))
	}
	fmt.Fprintf(&b, "    t=0 .. t=%.4g s\n", makespan)
	b.WriteString("legend:")
	for _, n := range names {
		fmt.Fprintf(&b, " %c=%s", g[n], n)
	}
	b.WriteString("\n")
	return b.String()
}

// WorkerUtilization returns, per worker index, the fraction of the
// makespan the worker spent inside spans — the per-lane utilization the
// hybrid timelines report (card busy vs. idle). Spans on negative workers
// are ignored.
func (r *Recorder) WorkerUtilization() []float64 {
	spans := r.snapshot()
	makespan := makespanOf(spans)
	if makespan <= 0 {
		return nil
	}
	maxWorker := -1
	for _, s := range spans {
		if s.Worker > maxWorker {
			maxWorker = s.Worker
		}
	}
	if maxWorker < 0 {
		return nil
	}
	busy := make([]float64, maxWorker+1)
	for _, s := range spans {
		if s.Worker < 0 {
			continue
		}
		if d := s.Duration(); d > 0 {
			busy[s.Worker] += d
		}
	}
	for i := range busy {
		busy[i] /= makespan
		if busy[i] > 1 {
			busy[i] = 1 // overlapping spans on one worker clamp
		}
	}
	return busy
}

// ProfileTable renders per-name totals as aligned "name seconds percent"
// rows sorted by descending time, with the given total as 100% (use
// Makespan()*workers for utilization-style tables, or the sum itself).
func (r *Recorder) ProfileTable(total float64) string {
	t := r.Totals()
	type kv struct {
		name string
		sec  float64
	}
	var rows []kv
	for n, s := range t {
		rows = append(rows, kv{n, s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sec > rows[j].sec })
	if total <= 0 {
		for _, row := range rows {
			total += row.sec
		}
	}
	var b strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %12.6f s %6.2f%%\n", row.name, row.sec, row.sec/total*100)
	}
	return b.String()
}
