// Package trace records execution spans from real or simulated runs and
// renders them as ASCII Gantt charts and region profiles.
//
// It backs two artefacts of the paper: Figure 7 (Gantt chart of the native
// LU execution profile, where the colours DLASWP/DTRSM/DGETRF/DGEMM/barrier
// become letters), and Figure 9 (per-iteration breakdown of hybrid HPL time
// into DGEMM vs. exposed U-broadcast / swap / DTRSM / panel regions).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one interval of named work on one worker (thread group, core,
// node — the meaning of Worker is up to the producer).
type Span struct {
	Worker int
	Name   string
	Iter   int
	Start  float64
	End    float64
}

// Duration returns End-Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Recorder accumulates spans. The zero value is ready to use.
type Recorder struct {
	spans []Span
}

// Add records a span. Zero- or negative-length spans are kept (they can
// carry ordering information) but render as nothing.
func (r *Recorder) Add(worker int, name string, iter int, start, end float64) {
	r.spans = append(r.spans, Span{Worker: worker, Name: name, Iter: iter, Start: start, End: end})
}

// Spans returns the recorded spans in insertion order.
func (r *Recorder) Spans() []Span { return r.spans }

// Reset discards all spans.
func (r *Recorder) Reset() { r.spans = r.spans[:0] }

// Makespan returns the latest End over all spans (0 when empty).
func (r *Recorder) Makespan() float64 {
	m := 0.0
	for _, s := range r.spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// Totals sums span durations by name.
func (r *Recorder) Totals() map[string]float64 {
	t := make(map[string]float64)
	for _, s := range r.spans {
		if d := s.Duration(); d > 0 {
			t[s.Name] += d
		}
	}
	return t
}

// IterTotals sums span durations by (iteration, name). The returned slice is
// indexed by iteration; iterations never seen produce empty maps.
func (r *Recorder) IterTotals() []map[string]float64 {
	maxIter := -1
	for _, s := range r.spans {
		if s.Iter > maxIter {
			maxIter = s.Iter
		}
	}
	out := make([]map[string]float64, maxIter+1)
	for i := range out {
		out[i] = make(map[string]float64)
	}
	for _, s := range r.spans {
		if s.Iter >= 0 {
			if d := s.Duration(); d > 0 {
				out[s.Iter][s.Name] += d
			}
		}
	}
	return out
}

// names returns the distinct span names in first-appearance order.
func (r *Recorder) names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range r.spans {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	return out
}

// glyphFor assigns a stable one-rune code to each span name: the first
// letter of the name, upper-cased, disambiguated by subsequent letters or
// digits when names collide.
func glyphs(names []string) map[string]rune {
	g := make(map[string]rune, len(names))
	used := make(map[rune]bool)
	for _, n := range names {
		var r rune = '?'
		for _, c := range strings.ToUpper(n) {
			if c >= 'A' && c <= 'Z' && !used[c] {
				r = c
				break
			}
		}
		if r == '?' {
			for c := '0'; c <= '9'; c++ {
				if !used[c] {
					r = c
					break
				}
			}
		}
		used[r] = true
		g[n] = r
	}
	return g
}

// Gantt renders the spans as an ASCII chart: one row per worker, width
// columns across [0, Makespan]. Each cell shows the glyph of the span
// covering the cell's midpoint (later spans win ties); '.' is idle.
// A legend follows the chart.
func (r *Recorder) Gantt(width int) string {
	if width < 1 {
		width = 80
	}
	makespan := r.Makespan()
	if makespan <= 0 || len(r.spans) == 0 {
		return "(empty trace)\n"
	}
	maxWorker := 0
	for _, s := range r.spans {
		if s.Worker > maxWorker {
			maxWorker = s.Worker
		}
	}
	names := r.names()
	g := glyphs(names)

	rows := make([][]rune, maxWorker+1)
	for i := range rows {
		rows[i] = []rune(strings.Repeat(".", width))
	}
	for _, s := range r.spans {
		if s.Duration() <= 0 {
			continue
		}
		lo := int(s.Start / makespan * float64(width))
		hi := int(s.End / makespan * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for c := lo; c < hi; c++ {
			rows[s.Worker][c] = g[s.Name]
		}
	}

	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "%3d |%s|\n", i, string(row))
	}
	fmt.Fprintf(&b, "    t=0 .. t=%.4g s\n", makespan)
	b.WriteString("legend:")
	for _, n := range names {
		fmt.Fprintf(&b, " %c=%s", g[n], n)
	}
	b.WriteString("\n")
	return b.String()
}

// WorkerUtilization returns, per worker index, the fraction of the
// makespan the worker spent inside spans — the per-lane utilization the
// hybrid timelines report (card busy vs. idle).
func (r *Recorder) WorkerUtilization() []float64 {
	makespan := r.Makespan()
	if makespan <= 0 {
		return nil
	}
	maxWorker := 0
	for _, s := range r.spans {
		if s.Worker > maxWorker {
			maxWorker = s.Worker
		}
	}
	busy := make([]float64, maxWorker+1)
	for _, s := range r.spans {
		if d := s.Duration(); d > 0 {
			busy[s.Worker] += d
		}
	}
	for i := range busy {
		busy[i] /= makespan
		if busy[i] > 1 {
			busy[i] = 1 // overlapping spans on one worker clamp
		}
	}
	return busy
}

// ProfileTable renders per-name totals as aligned "name seconds percent"
// rows sorted by descending time, with the given total as 100% (use
// Makespan()*workers for utilization-style tables, or the sum itself).
func (r *Recorder) ProfileTable(total float64) string {
	t := r.Totals()
	type kv struct {
		name string
		sec  float64
	}
	var rows []kv
	for n, s := range t {
		rows = append(rows, kv{n, s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sec > rows[j].sec })
	if total <= 0 {
		for _, row := range rows {
			total += row.sec
		}
	}
	var b strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %12.6f s %6.2f%%\n", row.name, row.sec, row.sec/total*100)
	}
	return b.String()
}
