package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Regression: Gantt used to index rows[-1] for spans on negative workers
// and compute negative column indexes for spans starting before t=0. Both
// must render without panicking, with out-of-range columns clamped and
// negative-worker spans skipped (including their legend entry).
func TestGanttOutOfRangeSpans(t *testing.T) {
	var r Recorder
	r.Add(0, "ok", 0, 0, 1)
	r.Add(0, "early", 0, -5, 0.5) // negative start -> clamp to column 0
	r.Add(-1, "meta", 0, 0, 1)    // negative worker -> skipped entirely
	r.Add(-3, "meta2", 0, 0.2, 0.8)
	out := r.Gantt(10)
	if !strings.Contains(out, "O=ok") || !strings.Contains(out, "E=early") {
		t.Errorf("renderable spans missing from legend:\n%s", out)
	}
	if strings.Contains(out, "meta") {
		t.Errorf("negative-worker span leaked into output:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "  0 |") {
		t.Errorf("first row should be worker 0:\n%s", out)
	}
	if !strings.Contains(lines[0], "E") {
		t.Errorf("clamped early span should still paint column 0:\n%s", out)
	}
}

func TestGanttOnlyUnrenderableSpans(t *testing.T) {
	var r Recorder
	r.Add(-1, "meta", 0, 0, 1)
	r.Add(0, "backwards", 0, 2, 1)
	if got := r.Gantt(20); got != "(empty trace)\n" {
		t.Errorf("got %q", got)
	}
}

// Regression: glyphs used to hand '?' to every name once the fallback pool
// ran out, so distinct regions became indistinguishable in the chart. Now
// '?' is assigned at most once and every name past it gets a unique rune.
func TestGlyphsNeverCollide(t *testing.T) {
	// Letterless names exhaust the fallback pool (the letter pass finds
	// nothing to claim), then '?', then the Unicode escalation.
	n := 26 + len(glyphFallback) + 20
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("__%d__", i)
	}
	g := glyphs(names)
	if len(g) != n {
		t.Fatalf("assigned %d glyphs, want %d", len(g), n)
	}
	seen := make(map[rune]string)
	questions := 0
	for name, r := range g {
		if prev, dup := seen[r]; dup {
			t.Fatalf("glyph %q shared by %q and %q", r, prev, name)
		}
		seen[r] = name
		if r == '?' {
			questions++
		}
	}
	if questions > 1 {
		t.Fatalf("'?' assigned %d times", questions)
	}
}

// The recorder must be safe under concurrent producers and concurrent
// renderers (run with -race).
func TestConcurrentAddAndRender(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				t0 := r.Start()
				r.Since(w, "work", i%4, t0)
				r.Add(w, "fixed", i%4, float64(i), float64(i+1))
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Gantt(40)
			_ = r.Makespan()
			_ = r.Totals()
			_ = r.WriteChromeTrace(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := len(r.Spans()); got != 8*200*2 {
		t.Fatalf("spans = %d, want %d", got, 8*200*2)
	}
}

// The uninstrumented path — a nil recorder held by instrumented code —
// must not allocate.
func TestNilRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(100, func() {
		t0 := r.Start()
		r.Since(0, "x", 0, t0)
		r.Add(0, "x", 0, 0, 1)
		r.Reset()
	}); n != 0 {
		t.Errorf("nil recorder allocated %.1f per op", n)
	}
}

// Chrome export golden: exact bytes, so the file format stays stable for
// external viewers. Start/End values are binary-exact so ts/dur are too.
func TestWriteChromeTraceGolden(t *testing.T) {
	var r Recorder
	r.Add(0, "PanelFact", 0, 0, 0.25)
	r.Add(1, "Update", 3, 0.25, 0.5)
	r.Add(2, "bogus", 1, 0.5, 0.25) // negative duration -> clamped to 0
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"phihpl"}},` +
		`{"name":"PanelFact","ph":"X","ts":0,"dur":250000,"pid":0,"tid":0,"args":{"iter":0}},` +
		`{"name":"Update","ph":"X","ts":250000,"dur":250000,"pid":0,"tid":1,"args":{"iter":3}},` +
		`{"name":"bogus","ph":"X","ts":500000,"dur":0,"pid":0,"tid":2,"args":{"iter":1}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

// The export must be well-formed trace-event JSON even for nil/empty
// recorders, and always parseable back.
func TestWriteChromeTraceWellFormed(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  *Recorder
	}{
		{"nil", nil},
		{"empty", new(Recorder)},
	} {
		var buf bytes.Buffer
		if err := tc.rec.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var f struct {
			TraceEvents []map[string]any `json:"traceEvents"`
			Unit        string           `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
			t.Fatalf("%s: invalid JSON: %v\n%s", tc.name, err, buf.String())
		}
		if f.Unit != "ms" || len(f.TraceEvents) != 1 {
			t.Errorf("%s: unexpected file: %+v", tc.name, f)
		}
	}
}

// Start/Since produce spans on a single monotonically advancing timeline.
func TestClockHelpers(t *testing.T) {
	var r Recorder
	t0 := r.Start()
	if t0 < 0 {
		t.Fatalf("t0 = %v", t0)
	}
	r.Since(2, "tick", 7, t0)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Worker != 2 || s.Name != "tick" || s.Iter != 7 {
		t.Errorf("span = %+v", s)
	}
	if s.End < s.Start {
		t.Errorf("clock ran backwards: %+v", s)
	}
	if t1 := r.Start(); t1 < s.End {
		t.Errorf("Start not monotone: %v < %v", t1, s.End)
	}
}
