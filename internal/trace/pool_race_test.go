// The concurrency regression test for the recorder lives in an external
// test package: pool imports trace for its own instrumentation, so a test
// that drives trace.Recorder.Add from inside pool.Do regions — the exact
// producer that used to race — cannot live in package trace itself.
package trace_test

import (
	"sync"
	"testing"

	"phihpl/internal/metrics"
	"phihpl/internal/pool"
	"phihpl/internal/trace"
)

// Regression: Recorder.Add appended to a plain slice, so concurrent pool
// workers corrupted it (lost spans, torn appends, -race reports). Hammer
// Add/Since from many overlapping pool.Do regions — with the pool's own
// instrumentation attached and feeding the same recorder — while a reader
// renders, and verify no span is lost.
func TestAddFromPoolDoIsRaceFree(t *testing.T) {
	rec := new(trace.Recorder)
	reg := metrics.NewRegistry()
	pool.SetObservability(rec, reg)
	defer pool.SetObservability(nil, nil)

	const (
		regions    = 32
		perRegion  = 64
		concurrent = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < concurrent; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < regions; it++ {
				pool.Do(perRegion, 4, func(i int) {
					t0 := rec.Start()
					rec.Since(i%8, "job", it, t0)
					rec.Add(i%8, "mark", it, 0, 1e-9)
				})
			}
		}()
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = rec.Gantt(60)
			_ = rec.Spans()
		}
	}()
	wg.Wait()
	close(stop)
	reader.Wait()

	// Every fn invocation added exactly two spans; the pool's own
	// instrumentation added more on top. None may be lost.
	want := concurrent * regions * perRegion * 2
	spans := rec.Spans()
	if got := countNames(spans, "job") + countNames(spans, "mark"); got != want {
		t.Fatalf("explicit spans = %d, want %d", got, want)
	}
	size := pool.Size()
	for _, s := range spans {
		if s.Name != "pool.Do" {
			continue
		}
		if s.Worker < 0 || s.Worker > size {
			t.Fatalf("pool span on worker %d, want [0,%d]", s.Worker, size)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["pool.regions"] == 0 {
		t.Error("pool.regions counter never incremented")
	}
}

func countNames(spans []trace.Span, name string) int {
	n := 0
	for _, s := range spans {
		if s.Name == name {
			n++
		}
	}
	return n
}
