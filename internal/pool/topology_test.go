package pool

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeCPU creates cpuN under a fake sysfs root. pkg and l3 are written
// verbatim when non-empty (garbled-input tests pass non-numeric text);
// an empty pkg leaves physical_package_id absent entirely.
func fakeCPU(t *testing.T, root string, cpu int, pkg, l3 string) {
	t.Helper()
	base := filepath.Join(root, "devices", "system", "cpu", fmt.Sprintf("cpu%d", cpu))
	if err := os.MkdirAll(filepath.Join(base, "topology"), 0o755); err != nil {
		t.Fatal(err)
	}
	if pkg != "" {
		if err := os.WriteFile(filepath.Join(base, "topology", "physical_package_id"), []byte(pkg), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if l3 != "" {
		if err := os.MkdirAll(filepath.Join(base, "cache", "index3"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(base, "cache", "index3", "id"), []byte(l3), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDetectTopologySingleSocket(t *testing.T) {
	root := t.TempDir()
	for c := 0; c < 4; c++ {
		fakeCPU(t, root, c, "0\n", "0\n")
	}
	topo := detectTopology(root, 4)
	if topo.FallbackReason != "" {
		t.Fatalf("unexpected fallback: %q", topo.FallbackReason)
	}
	if topo.NumSockets() != 1 {
		t.Fatalf("sockets = %d, want 1", topo.NumSockets())
	}
	s := topo.Sockets[0]
	if s.ID != 0 || s.L3ID != 0 || len(s.CPUs) != 4 {
		t.Fatalf("socket = %+v", s)
	}
	for i, c := range s.CPUs {
		if c != i {
			t.Fatalf("CPUs = %v, want ascending 0..3", s.CPUs)
		}
	}
}

func TestDetectTopologyDualSocket(t *testing.T) {
	root := t.TempDir()
	// Interleaved enumeration (even CPUs on package 0, odd on package 1),
	// the layout the kernel reports on round-robin-numbered machines:
	// discovery must still hand back sorted per-socket CPU lists.
	for c := 0; c < 8; c++ {
		fakeCPU(t, root, c, fmt.Sprintf("%d\n", c%2), fmt.Sprintf("%d\n", c%2))
	}
	topo := detectTopology(root, 8)
	if topo.FallbackReason != "" {
		t.Fatalf("unexpected fallback: %q", topo.FallbackReason)
	}
	if topo.NumSockets() != 2 {
		t.Fatalf("sockets = %d, want 2", topo.NumSockets())
	}
	want := [][]int{{0, 2, 4, 6}, {1, 3, 5, 7}}
	for si, s := range topo.Sockets {
		if s.ID != si || s.L3ID != si {
			t.Errorf("socket %d: ID=%d L3ID=%d", si, s.ID, s.L3ID)
		}
		if fmt.Sprint(s.CPUs) != fmt.Sprint(want[si]) {
			t.Errorf("socket %d CPUs = %v, want %v", si, s.CPUs, want[si])
		}
	}
	if got := topo.String(); !strings.Contains(got, "socket0:4cpus") || !strings.Contains(got, "socket1:4cpus") {
		t.Errorf("String() = %q", got)
	}
}

func TestDetectTopologyMissingPackageFile(t *testing.T) {
	root := t.TempDir()
	fakeCPU(t, root, 0, "0\n", "")
	fakeCPU(t, root, 1, "", "") // no physical_package_id at all
	topo := detectTopology(root, 2)
	if topo.FallbackReason == "" {
		t.Fatal("expected flat fallback for missing physical_package_id")
	}
	assertFlat(t, topo, 2)
}

func TestDetectTopologyGarbledPackageFile(t *testing.T) {
	for _, garbage := range []string{"banana\n", "-3\n", ""} {
		root := t.TempDir()
		fakeCPU(t, root, 0, garbage, "")
		topo := detectTopology(root, 4)
		if topo.FallbackReason == "" {
			t.Fatalf("garbage %q: expected flat fallback", garbage)
		}
		assertFlat(t, topo, 4)
	}
}

func TestDetectTopologyMissingTree(t *testing.T) {
	topo := detectTopology(filepath.Join(t.TempDir(), "nonexistent"), 3)
	if topo.FallbackReason == "" {
		t.Fatal("expected flat fallback for missing sysfs tree")
	}
	assertFlat(t, topo, 3)

	// An existing tree with no cpuN entries is equally flat.
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "devices", "system", "cpu"), 0o755); err != nil {
		t.Fatal(err)
	}
	topo = detectTopology(root, 2)
	if topo.FallbackReason == "" {
		t.Fatal("expected flat fallback for empty cpu directory")
	}
	assertFlat(t, topo, 2)
}

func TestDetectTopologyMissingL3IsBestEffort(t *testing.T) {
	root := t.TempDir()
	fakeCPU(t, root, 0, "0\n", "") // package id present, no cache tree
	topo := detectTopology(root, 1)
	if topo.FallbackReason != "" {
		t.Fatalf("missing L3 must not force fallback: %q", topo.FallbackReason)
	}
	if topo.Sockets[0].L3ID != -1 {
		t.Fatalf("L3ID = %d, want -1 sentinel", topo.Sockets[0].L3ID)
	}
}

// assertFlat checks the flat-fallback shape: one socket covering ncpu
// consecutive CPUs, which makes every grouped code path collapse to the
// old flat-pool behaviour.
func assertFlat(t *testing.T, topo *Topology, ncpu int) {
	t.Helper()
	if topo.NumSockets() != 1 {
		t.Fatalf("fallback sockets = %d, want 1", topo.NumSockets())
	}
	if len(topo.Sockets[0].CPUs) != ncpu {
		t.Fatalf("fallback CPUs = %v, want %d entries", topo.Sockets[0].CPUs, ncpu)
	}
	if !strings.Contains(topo.String(), "flat") {
		t.Errorf("fallback String() = %q", topo.String())
	}
}

func TestFlatTopologyClampsNCPU(t *testing.T) {
	topo := flatTopology(0, "test")
	if len(topo.Sockets[0].CPUs) != 1 {
		t.Fatalf("ncpu=0 must clamp to one CPU, got %v", topo.Sockets[0].CPUs)
	}
}
