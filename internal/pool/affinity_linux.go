//go:build linux

package pool

import (
	"syscall"
	"unsafe"
)

// pinToCPUs binds the calling OS thread to the given logical CPUs via
// sched_setaffinity(2). Best-effort: an error (container cpuset
// restrictions, seccomp) leaves the thread where the kernel put it — the
// socket grouping still partitions the B-panel replicas correctly, the
// placement is just no longer enforced. The caller must hold
// runtime.LockOSThread so the binding stays with the goroutine.
func pinToCPUs(cpus []int) error {
	var mask [16]uint64 // 1024 CPUs, the kernel's historical cpu_set_t width
	any := false
	for _, c := range cpus {
		if c >= 0 && c < len(mask)*64 {
			mask[c/64] |= 1 << (uint(c) % 64)
			any = true
		}
	}
	if !any {
		return nil
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return errno
	}
	return nil
}
