package pool

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Cache/NUMA topology discovery. The paper's dual-socket runs (Fig.
// 10/11) split the node into two symmetric halves — each socket's threads
// stream their own copy of the broadcast panel instead of pulling it
// across the interconnect. The software analogue needs to know where the
// sockets are: on Linux the kernel exports the package and cache topology
// under /sys/devices/system/cpu; everywhere else (and whenever the tree
// is missing or garbled) discovery degrades to a single flat socket,
// which makes the grouped execution paths collapse to the old flat-pool
// behaviour exactly.

// Socket is one physical package and the logical CPUs it carries.
type Socket struct {
	// ID is the kernel's physical_package_id (dense re-numbering is NOT
	// applied; IDs are only used for grouping and display).
	ID int
	// CPUs are the logical CPU numbers of the package, ascending.
	CPUs []int
	// L3ID is the id of the last-level cache shared by the package's
	// CPUs, or -1 when the cache tree is absent. It is informational:
	// grouping is by package, which on every machine we target coincides
	// with the L3/NUMA domain.
	L3ID int
}

// Topology is the discovered socket layout.
type Topology struct {
	// Sockets, ascending by ID. Never empty: fallback produces one
	// socket spanning every CPU.
	Sockets []Socket
	// FallbackReason is empty when real sysfs discovery succeeded and
	// otherwise names why the flat single-socket fallback was used
	// ("unsupported platform", "no cpu directories", a parse error…).
	FallbackReason string
}

// NumSockets returns the number of discovered packages.
func (t *Topology) NumSockets() int { return len(t.Sockets) }

// String renders a one-line summary for logs and banners.
func (t *Topology) String() string {
	if t.FallbackReason != "" {
		return fmt.Sprintf("flat (%s, %d cpus)", t.FallbackReason, len(t.Sockets[0].CPUs))
	}
	parts := make([]string, len(t.Sockets))
	for i, s := range t.Sockets {
		parts[i] = fmt.Sprintf("socket%d:%dcpus", s.ID, len(s.CPUs))
	}
	return strings.Join(parts, " ")
}

var (
	topoOnce sync.Once
	topoVal  *Topology
)

// DetectTopology probes the machine's socket layout once and caches the
// result. On Linux it reads /sys/devices/system/cpu; on other platforms,
// or when the tree is missing or unparsable, it returns the flat
// single-socket fallback (never an error — a misread topology must not
// stop a solve, only forgo the placement optimisation).
func DetectTopology() *Topology {
	topoOnce.Do(func() {
		if runtime.GOOS != "linux" {
			topoVal = flatTopology(runtime.NumCPU(), "unsupported platform")
			return
		}
		topoVal = detectTopology("/sys", runtime.NumCPU())
	})
	return topoVal
}

// flatTopology is the graceful fallback: one socket spanning ncpu CPUs.
func flatTopology(ncpu int, reason string) *Topology {
	if ncpu < 1 {
		ncpu = 1
	}
	cpus := make([]int, ncpu)
	for i := range cpus {
		cpus[i] = i
	}
	return &Topology{
		Sockets:        []Socket{{ID: 0, CPUs: cpus, L3ID: -1}},
		FallbackReason: reason,
	}
}

var cpuDirRe = regexp.MustCompile(`^cpu([0-9]+)$`)

// detectTopology reads the socket layout from a sysfs-shaped tree rooted
// at root. Any inconsistency — no cpu directories, an unreadable or
// garbled physical_package_id — abandons grouping and returns the flat
// fallback with the reason recorded: a topology half-read is worse than
// none, because worker placement built on it would be wrong, not merely
// absent. Factored out of DetectTopology so tests can aim it at fake
// trees.
func detectTopology(root string, ncpu int) *Topology {
	entries, err := os.ReadDir(filepath.Join(root, "devices", "system", "cpu"))
	if err != nil {
		return flatTopology(ncpu, "no sysfs cpu tree")
	}
	byPkg := map[int][]int{}
	l3ByPkg := map[int]int{}
	found := 0
	for _, e := range entries {
		m := cpuDirRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		cpu, _ := strconv.Atoi(m[1])
		pkgPath := filepath.Join(root, "devices", "system", "cpu", e.Name(), "topology", "physical_package_id")
		raw, err := os.ReadFile(pkgPath)
		if err != nil {
			return flatTopology(ncpu, fmt.Sprintf("cpu%d: missing physical_package_id", cpu))
		}
		pkg, err := strconv.Atoi(strings.TrimSpace(string(raw)))
		if err != nil || pkg < 0 {
			return flatTopology(ncpu, fmt.Sprintf("cpu%d: garbled physical_package_id", cpu))
		}
		byPkg[pkg] = append(byPkg[pkg], cpu)
		found++
		// L3 id is best-effort: absence is normal (VMs, old kernels).
		if _, seen := l3ByPkg[pkg]; !seen {
			l3ByPkg[pkg] = -1
			idPath := filepath.Join(root, "devices", "system", "cpu", e.Name(), "cache", "index3", "id")
			if b, err := os.ReadFile(idPath); err == nil {
				if id, err := strconv.Atoi(strings.TrimSpace(string(b))); err == nil {
					l3ByPkg[pkg] = id
				}
			}
		}
	}
	if found == 0 {
		return flatTopology(ncpu, "no cpu directories")
	}
	ids := make([]int, 0, len(byPkg))
	for id := range byPkg {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	t := &Topology{Sockets: make([]Socket, 0, len(ids))}
	for _, id := range ids {
		cpus := byPkg[id]
		sort.Ints(cpus)
		t.Sockets = append(t.Sockets, Socket{ID: id, CPUs: cpus, L3ID: l3ByPkg[id]})
	}
	return t
}
