// Package pool provides a persistent, package-level worker pool for the
// compute kernels. The paper's DGEMM keeps its thread team alive across
// calls (threads are pinned once at startup and park between outer
// products); spawning fresh goroutines per DGEMM invocation — as the
// original DgemmParallel did — costs a scheduler round-trip on every
// trailing update. Here the workers are started once, on first use, and
// every parallel region afterwards is a channel send plus an atomic
// work-stealing counter: zero goroutine creation in the steady state.
//
// Callers always participate in their own region (the calling goroutine
// executes jobs alongside the pool), so a saturated pool degrades to
// serial execution instead of deadlocking, and nested or concurrent
// regions from independent callers interleave safely: pool workers never
// block on the pool themselves.
//
// Robustness: every job runs behind a recover barrier. A panic inside fn
// never crashes a pool worker goroutine (which would kill the process);
// it is converted into a typed *PanicError — returned by DoCtx, re-raised
// on the caller by Do — and the region stops handing out further indices.
// DoCtx additionally observes a context: once the context is done, no new
// index is issued and the region unwinds with ctx.Err().
//
// Observability: SetObservability attaches a span recorder (one span per
// helper/caller participation in a region, on the helper's stable worker
// id; callers share lane Size()) and a metrics registry (region count,
// queue-full helper drops). Both default to off; the uninstrumented hot
// path costs two atomic pointer loads and allocates nothing.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"phihpl/internal/metrics"
	"phihpl/internal/trace"
)

var (
	once   sync.Once
	submit chan func(worker int)
	nproc  int

	obsTrace   atomic.Pointer[trace.Recorder]
	mRegions   atomic.Pointer[metrics.Counter]
	mDrops     atomic.Pointer[metrics.Counter]
	mSerialCnt atomic.Pointer[metrics.Counter]
	mCancelled atomic.Pointer[metrics.Counter]
	mPanicsCnt atomic.Pointer[metrics.Counter]
)

// PanicError is a panic recovered from a region job by the pool's recover
// barrier, mirroring cluster.RankPanicError: the worker lane that ran the
// job (Size() for the region caller, -1 for a serial region), the
// recovered value and the stack at the panic site. DoCtx returns it; Do
// re-panics with it on the caller so a library panic can never take down
// an unrelated pool worker goroutine.
type PanicError struct {
	Worker int
	Value  any
	Stack  string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job panicked on worker %d: %v", e.Worker, e.Value)
}

// SetObservability attaches a span recorder and a metrics registry to the
// pool. Either may be nil to disable that side; calling with (nil, nil)
// detaches everything. Counters registered: pool.regions (parallel
// regions entered), pool.serial_regions (regions degraded to the serial
// caller-only path), pool.queue_full_drops (regions that dropped their
// remaining helper slots because the submit queue was full),
// pool.cancelled_regions (regions cut short by context cancellation),
// pool.contained_panics (job panics converted to PanicError). Safe to
// call at any time; producers observe the new sinks on their next region.
func SetObservability(rec *trace.Recorder, reg *metrics.Registry) {
	obsTrace.Store(rec)
	mRegions.Store(reg.Counter("pool.regions"))
	mSerialCnt.Store(reg.Counter("pool.serial_regions"))
	mDrops.Store(reg.Counter("pool.queue_full_drops"))
	mCancelled.Store(reg.Counter("pool.cancelled_regions"))
	mPanicsCnt.Store(reg.Counter("pool.contained_panics"))
}

// ensure starts the long-lived workers exactly once.
func ensure() {
	once.Do(func() {
		nproc = runtime.GOMAXPROCS(0)
		submit = make(chan func(worker int), 4*nproc)
		for i := 0; i < nproc; i++ {
			go func(id int) {
				for f := range submit {
					f(id)
				}
			}(i)
		}
	})
}

// Size returns the number of persistent workers (GOMAXPROCS at first use).
func Size() int {
	ensure()
	return nproc
}

// Do runs fn(i) for every i in [0,n), distributing the indices across the
// calling goroutine plus up to workers-1 pool workers via an atomic
// work-stealing counter. It returns when every index has been processed.
//
// workers <= 1 (or n <= 1) runs serially on the caller with no
// synchronization at all. If the pool's submit queue is full — only
// possible when many independent regions are in flight — the remaining
// helper slots are dropped rather than blocked on: the caller still
// drains the whole index space itself, so progress is guaranteed.
//
// A panic inside fn is contained by the recover barrier and re-raised
// here, on the caller, as a *PanicError; pool worker goroutines survive.
func Do(n, workers int, fn func(i int)) {
	if err := run(nil, n, workers, fn); err != nil {
		panic(err)
	}
}

// DoCtx is Do under a context: the region stops handing out work-stealing
// indices once ctx is done and returns ctx.Err() (already-running jobs
// finish; indices are never abandoned half-executed). A job panic is
// contained and returned as a *PanicError instead of crashing the
// process. DoCtx returns nil exactly when fn ran to completion for every
// index in [0,n).
func DoCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		mCancelled.Load().Inc()
		return err
	}
	return run(ctx, n, workers, fn)
}

// region is the shared state of one parallel Do/DoCtx invocation.
type region struct {
	n    int64
	fn   func(i int)
	next atomic.Int64 // work-stealing index counter
	done atomic.Int64 // indices that completed normally
	stop atomic.Bool  // no further indices: panic or cancellation

	mu   sync.Mutex
	perr *PanicError
}

// protect runs fn(i) behind the recover barrier. A nil return means the
// job completed; non-nil carries the contained panic. It allocates only
// on the panic path.
func protect(fn func(i int), worker, i int) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = &PanicError{Worker: worker, Value: v, Stack: string(debug.Stack())}
		}
	}()
	fn(i)
	return nil
}

// panicked records the first contained panic and stops the region.
func (r *region) panicked(pe *PanicError) {
	r.stop.Store(true)
	mPanicsCnt.Load().Inc()
	r.mu.Lock()
	if r.perr == nil {
		r.perr = pe
	}
	r.mu.Unlock()
}

// loop drains indices until the space is exhausted or the region stopped.
func (r *region) loop(worker int) {
	for !r.stop.Load() {
		i := r.next.Add(1) - 1
		if i >= r.n {
			return
		}
		if pe := protect(r.fn, worker, int(i)); pe != nil {
			r.panicked(pe)
			return
		}
		r.done.Add(1)
	}
}

// run is the shared driver behind Do (ctx == nil) and DoCtx.
func run(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		mSerialCnt.Load().Inc()
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					mCancelled.Load().Inc()
					return err
				}
			}
			if pe := protect(fn, -1, i); pe != nil {
				mPanicsCnt.Load().Inc()
				return pe
			}
		}
		return nil
	}
	ensure()
	mRegions.Load().Inc()
	rec := obsTrace.Load()
	r := &region{n: int64(n), fn: fn}
	if ctx != nil {
		unwatch := context.AfterFunc(ctx, func() { r.stop.Store(true) })
		defer unwatch()
	}
	var wg sync.WaitGroup
	for h := 0; h < workers-1; h++ {
		wg.Add(1)
		task := func(worker int) {
			defer wg.Done()
			if rec != nil {
				t0 := rec.Start()
				r.loop(worker)
				rec.Since(worker, "pool.Do", -1, t0)
				return
			}
			r.loop(worker)
		}
		select {
		case submit <- task:
		default:
			// Queue full: run with fewer helpers instead of blocking.
			mDrops.Load().Inc()
			wg.Done()
			h = workers // stop submitting
		}
	}
	if rec != nil {
		// The caller's own participation, on the shared caller lane.
		t0 := rec.Start()
		r.loop(nproc)
		rec.Since(nproc, "pool.Do", -1, t0)
	} else {
		r.loop(nproc)
	}
	wg.Wait()

	r.mu.Lock()
	perr := r.perr
	r.mu.Unlock()
	if perr != nil {
		return perr
	}
	if r.done.Load() == r.n {
		return nil
	}
	// Cut short without a panic: only cancellation can have stopped us.
	mCancelled.Load().Inc()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return context.Canceled
}
