// Package pool provides a persistent, package-level worker pool for the
// compute kernels. The paper's DGEMM keeps its thread team alive across
// calls (threads are pinned once at startup and park between outer
// products); spawning fresh goroutines per DGEMM invocation — as the
// original DgemmParallel did — costs a scheduler round-trip on every
// trailing update. Here the workers are started once, on first use, and
// every parallel region afterwards is a channel send plus an atomic
// work-stealing counter: zero goroutine creation in the steady state.
//
// Callers always participate in their own region (the calling goroutine
// executes jobs alongside the pool), so a saturated pool degrades to
// serial execution instead of deadlocking, and nested or concurrent
// regions from independent callers interleave safely: pool workers never
// block on the pool themselves.
//
// Topology: at startup the pool probes the machine's socket layout
// (DetectTopology) and partitions its workers into socket groups — the
// software analogue of the paper's dual-socket interleaving (Fig. 10/11).
// On multi-socket Linux machines each worker's OS thread is additionally
// pinned to its socket's CPUs (best-effort, sched_setaffinity), so a
// group's workers really do share a last-level cache. DoGrouped hands
// each job its executing worker's group id, which the packed BLAS
// drivers use to stream a socket-local replica of the B panel instead of
// pulling one shared copy across the interconnect. Single-socket
// machines (and platforms without sysfs) collapse to one group and the
// flat behaviour of old.
//
// Robustness: every job runs behind a recover barrier. A panic inside fn
// never crashes a pool worker goroutine (which would kill the process);
// it is converted into a typed *PanicError — returned by DoCtx, re-raised
// on the caller by Do — and the region stops handing out further indices.
// DoCtx additionally observes a context: once the context is done, no new
// index is issued and the region unwinds with ctx.Err().
//
// Observability: SetObservability attaches a span recorder (one span per
// helper/caller participation in a region, on the helper's stable worker
// id; callers share lane Size()) and a metrics registry (region count,
// queue-full helper drops). Both default to off; the uninstrumented hot
// path costs two atomic pointer loads and allocates nothing.
package pool

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"phihpl/internal/metrics"
	"phihpl/internal/trace"
)

var (
	once   sync.Once
	submit chan func(worker int)
	nproc  int

	// workerGroup maps a worker lane to its socket group; index nproc is
	// the caller lane (group 0: the region caller is not pinned, so it is
	// charged to the first socket). Written by ensure and ForceGroups
	// only; ForceGroups is a test/benchmark hook and, like the other
	// kernel-mode toggles, is not safe to call concurrently with running
	// regions.
	workerGroup []int
	groupCount  int

	obsTrace   atomic.Pointer[trace.Recorder]
	mRegions   atomic.Pointer[metrics.Counter]
	mDrops     atomic.Pointer[metrics.Counter]
	mSerialCnt atomic.Pointer[metrics.Counter]
	mCancelled atomic.Pointer[metrics.Counter]
	mPanicsCnt atomic.Pointer[metrics.Counter]
)

// PanicError is a panic recovered from a region job by the pool's recover
// barrier, mirroring cluster.RankPanicError: the worker lane that ran the
// job (Size() for the region caller, -1 for a serial region), the
// recovered value and the stack at the panic site. DoCtx returns it; Do
// re-panics with it on the caller so a library panic can never take down
// an unrelated pool worker goroutine.
type PanicError struct {
	Worker int
	Value  any
	Stack  string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job panicked on worker %d: %v", e.Worker, e.Value)
}

// SetObservability attaches a span recorder and a metrics registry to the
// pool. Either may be nil to disable that side; calling with (nil, nil)
// detaches everything. Counters registered: pool.regions (parallel
// regions entered), pool.serial_regions (regions degraded to the serial
// caller-only path), pool.queue_full_drops (regions that dropped their
// remaining helper slots because the submit queue was full),
// pool.cancelled_regions (regions cut short by context cancellation),
// pool.contained_panics (job panics converted to PanicError). Safe to
// call at any time; producers observe the new sinks on their next region.
func SetObservability(rec *trace.Recorder, reg *metrics.Registry) {
	obsTrace.Store(rec)
	mRegions.Store(reg.Counter("pool.regions"))
	mSerialCnt.Store(reg.Counter("pool.serial_regions"))
	mDrops.Store(reg.Counter("pool.queue_full_drops"))
	mCancelled.Store(reg.Counter("pool.cancelled_regions"))
	mPanicsCnt.Store(reg.Counter("pool.contained_panics"))
}

// ensure starts the long-lived workers exactly once, partitioned (and on
// multi-socket Linux, pinned) according to the detected topology.
func ensure() {
	once.Do(func() {
		nproc = runtime.GOMAXPROCS(0)
		topo := DetectTopology()
		workerGroup, groupCount = buildGroups(topo, nproc)
		pin := groupCount > 1 && os.Getenv("PHIHPL_DISABLE_PIN") == ""
		submit = make(chan func(worker int), 4*nproc)
		for i := 0; i < nproc; i++ {
			var cpus []int
			if pin {
				cpus = topo.Sockets[workerGroup[i]].CPUs
			}
			go func(id int, cpus []int) {
				if cpus != nil {
					// The binding must stay with this goroutine for the
					// worker's lifetime, so the thread is locked first.
					runtime.LockOSThread()
					_ = pinToCPUs(cpus) // best-effort; see pinToCPUs
				}
				for f := range submit {
					f(id)
				}
			}(i, cpus)
		}
	})
}

// buildGroups assigns each of the n worker lanes (plus the caller lane at
// index n) to a socket group: worker w serves the socket that owns CPU
// ⌊w·ncpu/n⌋, which splits the lanes proportionally to socket sizes and,
// in the common n == ncpu case, maps worker w to the socket of CPU w.
// The caller lane is group 0 (the caller is never pinned).
func buildGroups(topo *Topology, n int) ([]int, int) {
	ncpu := 0
	for _, s := range topo.Sockets {
		ncpu += len(s.CPUs)
	}
	cpuSocket := make([]int, 0, ncpu)
	for si, s := range topo.Sockets {
		for range s.CPUs {
			cpuSocket = append(cpuSocket, si)
		}
	}
	wg := make([]int, n+1)
	for w := 0; w < n; w++ {
		if ncpu > 0 {
			wg[w] = cpuSocket[w*ncpu/n%ncpu]
		}
	}
	wg[n] = 0
	return wg, len(topo.Sockets)
}

// Size returns the number of persistent workers (GOMAXPROCS at first use).
func Size() int {
	ensure()
	return nproc
}

// Groups returns the number of socket groups the pool's workers are
// partitioned into: the detected socket count, or the ForceGroups
// override. Callers that replicate per-group state (the packed drivers'
// B panels) size it by this value and select a replica with the group id
// DoGrouped passes to each job. 1 on single-socket machines and wherever
// topology discovery fell back — per-group state then collapses to one
// shared copy.
func Groups() int {
	ensure()
	return groupCount
}

// ForceGroups overrides the socket-group count: g >= 1 partitions the
// worker lanes arithmetically into g groups (lane w → w·g/nproc), g <= 0
// restores the detected topology. It exists for benchmarks (measuring
// replication overhead on single-socket machines) and the bitwise-
// invariance tests; it does not re-pin worker threads and, like the
// kernel-mode toggles, is not safe to call concurrently with running
// regions.
func ForceGroups(g int) {
	ensure()
	if g <= 0 {
		workerGroup, groupCount = buildGroups(DetectTopology(), nproc)
		return
	}
	wg := make([]int, nproc+1)
	for w := 0; w < nproc; w++ {
		wg[w] = w * g / nproc
		if wg[w] >= g {
			wg[w] = g - 1
		}
	}
	wg[nproc] = 0
	workerGroup, groupCount = wg, g
}

// groupOf maps a worker lane to its socket group. Out-of-range lanes
// (the -1 serial marker) land in group 0.
func groupOf(worker int) int {
	if worker < 0 || worker >= len(workerGroup) {
		return 0
	}
	return workerGroup[worker]
}

// Do runs fn(i) for every i in [0,n), distributing the indices across the
// calling goroutine plus up to workers-1 pool workers via an atomic
// work-stealing counter. It returns when every index has been processed.
//
// workers <= 1 (or n <= 1) runs serially on the caller with no
// synchronization at all. If the pool's submit queue is full — only
// possible when many independent regions are in flight — the remaining
// helper slots are dropped rather than blocked on: the caller still
// drains the whole index space itself, so progress is guaranteed.
//
// A panic inside fn is contained by the recover barrier and re-raised
// here, on the caller, as a *PanicError; pool worker goroutines survive.
func Do(n, workers int, fn func(i int)) {
	if err := run(nil, n, workers, fn, nil); err != nil {
		panic(err)
	}
}

// DoGrouped is Do with socket awareness: fn additionally receives the
// executing worker's socket group in [0, Groups()), so the job can read
// group-local state (a socket's B-panel replica). Work stealing is
// unchanged — any worker may claim any index — which is safe precisely
// because per-group state must hold identical bytes in every replica;
// results are therefore bitwise independent of the grouping, worker
// count, and steal order. The region caller participates as group 0.
func DoGrouped(n, workers int, fn func(i, group int)) {
	if err := run(nil, n, workers, nil, fn); err != nil {
		panic(err)
	}
}

// DoCtx is Do under a context: the region stops handing out work-stealing
// indices once ctx is done and returns ctx.Err() (already-running jobs
// finish; indices are never abandoned half-executed). A job panic is
// contained and returned as a *PanicError instead of crashing the
// process. DoCtx returns nil exactly when fn ran to completion for every
// index in [0,n).
func DoCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		mCancelled.Load().Inc()
		return err
	}
	return run(ctx, n, workers, fn, nil)
}

// region is the shared state of one parallel Do/DoCtx/DoGrouped
// invocation. Regions are recycled through a sync.Pool: together with the
// single hoisted helper closure in run, a steady-state parallel region
// allocates one closure, not one region + one closure per helper — the
// fix for the per-K-block allocation growth the benchmark file showed at
// n=512 (allocs_per_op doubling with the K-block count).
type region struct {
	n    int64
	fn   func(i int)
	fng  func(i, group int)
	rec  *trace.Recorder
	task func(worker int) // created once per region object, reused forever
	next atomic.Int64     // work-stealing index counter
	done atomic.Int64     // indices that completed normally
	stop atomic.Bool      // no further indices: panic or cancellation
	wg   sync.WaitGroup

	mu   sync.Mutex
	perr *PanicError
}

var regionPool = sync.Pool{New: func() any {
	r := new(region)
	// The helper task is bound to the region object, not the invocation:
	// recycling the region recycles the closure, so a steady-state
	// parallel region performs zero heap allocations.
	r.task = func(worker int) {
		defer r.wg.Done()
		if rec := r.rec; rec != nil {
			t0 := rec.Start()
			r.loop(worker)
			rec.Since(worker, "pool.Do", -1, t0)
			return
		}
		r.loop(worker)
	}
	return r
}}

// protect runs fn(i) behind the recover barrier. A nil return means the
// job completed; non-nil carries the contained panic. It allocates only
// on the panic path.
func protect(fn func(i int), worker, i int) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = &PanicError{Worker: worker, Value: v, Stack: string(debug.Stack())}
		}
	}()
	fn(i)
	return nil
}

// protectG is protect for group-aware jobs.
func protectG(fn func(i, group int), worker, i, group int) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = &PanicError{Worker: worker, Value: v, Stack: string(debug.Stack())}
		}
	}()
	fn(i, group)
	return nil
}

// panicked records the first contained panic and stops the region.
func (r *region) panicked(pe *PanicError) {
	r.stop.Store(true)
	mPanicsCnt.Load().Inc()
	r.mu.Lock()
	if r.perr == nil {
		r.perr = pe
	}
	r.mu.Unlock()
}

// loop drains indices until the space is exhausted or the region stopped.
func (r *region) loop(worker int) {
	fng := r.fng
	group := 0
	if fng != nil {
		group = groupOf(worker)
	}
	for !r.stop.Load() {
		i := r.next.Add(1) - 1
		if i >= r.n {
			return
		}
		var pe *PanicError
		if fng != nil {
			pe = protectG(fng, worker, int(i), group)
		} else {
			pe = protect(r.fn, worker, int(i))
		}
		if pe != nil {
			r.panicked(pe)
			return
		}
		r.done.Add(1)
	}
}

// run is the shared driver behind Do/DoGrouped (ctx == nil) and DoCtx.
// Exactly one of fn and fng is non-nil.
func run(ctx context.Context, n, workers int, fn func(i int), fng func(i, group int)) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		mSerialCnt.Load().Inc()
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					mCancelled.Load().Inc()
					return err
				}
			}
			var pe *PanicError
			if fng != nil {
				pe = protectG(fng, -1, i, 0)
			} else {
				pe = protect(fn, -1, i)
			}
			if pe != nil {
				mPanicsCnt.Load().Inc()
				return pe
			}
		}
		return nil
	}
	ensure()
	mRegions.Load().Inc()
	rec := obsTrace.Load()
	r := regionPool.Get().(*region)
	r.n, r.fn, r.fng, r.rec = int64(n), fn, fng, rec
	r.next.Store(0)
	r.done.Store(0)
	r.stop.Store(false)
	r.perr = nil
	if ctx != nil {
		unwatch := context.AfterFunc(ctx, func() { r.stop.Store(true) })
		defer unwatch()
	}
	for h := 0; h < workers-1; h++ {
		r.wg.Add(1)
		select {
		case submit <- r.task:
		default:
			// Queue full: run with fewer helpers instead of blocking.
			mDrops.Load().Inc()
			r.wg.Done()
			h = workers // stop submitting
		}
	}
	if rec != nil {
		// The caller's own participation, on the shared caller lane.
		t0 := rec.Start()
		r.loop(nproc)
		rec.Since(nproc, "pool.Do", -1, t0)
	} else {
		r.loop(nproc)
	}
	r.wg.Wait()

	perr := r.perr
	completed := r.done.Load() == r.n
	r.fn, r.fng, r.rec, r.perr = nil, nil, nil, nil
	regionPool.Put(r)
	if perr != nil {
		return perr
	}
	if completed {
		return nil
	}
	// Cut short without a panic: only cancellation can have stopped us.
	mCancelled.Load().Inc()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return context.Canceled
}
