// Package pool provides a persistent, package-level worker pool for the
// compute kernels. The paper's DGEMM keeps its thread team alive across
// calls (threads are pinned once at startup and park between outer
// products); spawning fresh goroutines per DGEMM invocation — as the
// original DgemmParallel did — costs a scheduler round-trip on every
// trailing update. Here the workers are started once, on first use, and
// every parallel region afterwards is a channel send plus an atomic
// work-stealing counter: zero goroutine creation in the steady state.
//
// Callers always participate in their own region (the calling goroutine
// executes jobs alongside the pool), so a saturated pool degrades to
// serial execution instead of deadlocking, and nested or concurrent
// regions from independent callers interleave safely: pool workers never
// block on the pool themselves.
//
// Observability: SetObservability attaches a span recorder (one span per
// helper/caller participation in a region, on the helper's stable worker
// id; callers share lane Size()) and a metrics registry (region count,
// queue-full helper drops). Both default to off; the uninstrumented hot
// path costs two atomic pointer loads and allocates nothing.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"phihpl/internal/metrics"
	"phihpl/internal/trace"
)

var (
	once   sync.Once
	submit chan func(worker int)
	nproc  int

	obsTrace   atomic.Pointer[trace.Recorder]
	mRegions   atomic.Pointer[metrics.Counter]
	mDrops     atomic.Pointer[metrics.Counter]
	mSerialCnt atomic.Pointer[metrics.Counter]
)

// SetObservability attaches a span recorder and a metrics registry to the
// pool. Either may be nil to disable that side; calling with (nil, nil)
// detaches everything. Counters registered: pool.regions (parallel
// regions entered), pool.serial_regions (regions degraded to the serial
// caller-only path), pool.queue_full_drops (regions that dropped their
// remaining helper slots because the submit queue was full). Safe to call
// at any time; producers observe
// the new sinks on their next region.
func SetObservability(rec *trace.Recorder, reg *metrics.Registry) {
	obsTrace.Store(rec)
	mRegions.Store(reg.Counter("pool.regions"))
	mSerialCnt.Store(reg.Counter("pool.serial_regions"))
	mDrops.Store(reg.Counter("pool.queue_full_drops"))
}

// ensure starts the long-lived workers exactly once.
func ensure() {
	once.Do(func() {
		nproc = runtime.GOMAXPROCS(0)
		submit = make(chan func(worker int), 4*nproc)
		for i := 0; i < nproc; i++ {
			go func(id int) {
				for f := range submit {
					f(id)
				}
			}(i)
		}
	})
}

// Size returns the number of persistent workers (GOMAXPROCS at first use).
func Size() int {
	ensure()
	return nproc
}

// Do runs fn(i) for every i in [0,n), distributing the indices across the
// calling goroutine plus up to workers-1 pool workers via an atomic
// work-stealing counter. It returns when every index has been processed.
//
// workers <= 1 (or n <= 1) runs serially on the caller with no
// synchronization at all. If the pool's submit queue is full — only
// possible when many independent regions are in flight — the remaining
// helper slots are dropped rather than blocked on: the caller still
// drains the whole index space itself, so progress is guaranteed.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		mSerialCnt.Load().Inc()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ensure()
	mRegions.Load().Inc()
	rec := obsTrace.Load()
	var next atomic.Int64
	loop := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < workers-1; h++ {
		wg.Add(1)
		task := func(worker int) {
			defer wg.Done()
			if rec != nil {
				t0 := rec.Start()
				loop()
				rec.Since(worker, "pool.Do", -1, t0)
				return
			}
			loop()
		}
		select {
		case submit <- task:
		default:
			// Queue full: run with fewer helpers instead of blocking.
			mDrops.Load().Inc()
			wg.Done()
			h = workers // stop submitting
		}
	}
	if rec != nil {
		// The caller's own participation, on the shared caller lane.
		t0 := rec.Start()
		loop()
		rec.Since(nproc, "pool.Do", -1, t0)
	} else {
		loop()
	}
	wg.Wait()
}
