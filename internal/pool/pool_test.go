package pool

import (
	"runtime"
	"sync/atomic"
	"testing"

	"phihpl/internal/testutil"
)

func TestDoCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		for _, workers := range []int{0, 1, 2, 4, 16, 2 * n} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, n+1)
			Do(n, workers, func(i int) {
				if i < 0 || i >= n {
					t.Errorf("index %d out of [0,%d)", i, n)
				}
				if seen[i].Swap(true) {
					t.Errorf("index %d executed twice", i)
				}
				hits.Add(1)
			})
			if int(hits.Load()) != n {
				t.Fatalf("n=%d workers=%d: %d executions", n, workers, hits.Load())
			}
		}
	}
}

func TestDoSerialOrderWhenSingleWorker(t *testing.T) {
	// workers<=1 must run in index order on the caller — the property the
	// serial fallback of the BLAS layer relies on.
	var got []int
	Do(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestDoConcurrentRegions(t *testing.T) {
	defer testutil.NoLeaks(t)()
	// Many regions in flight at once: every one must still complete (the
	// saturated-queue path drops helpers, never work).
	done := make(chan int64)
	for r := 0; r < 8; r++ {
		go func() {
			var sum atomic.Int64
			Do(200, 4, func(i int) { sum.Add(int64(i)) })
			done <- sum.Load()
		}()
	}
	want := int64(199 * 200 / 2)
	for r := 0; r < 8; r++ {
		if got := <-done; got != want {
			t.Fatalf("region sum = %d, want %d", got, want)
		}
	}
}

func TestSteadyStateSpawnsNoGoroutines(t *testing.T) {
	// Warm the pool, then verify repeated regions do not grow the
	// goroutine count: the workers are persistent, not per-call.
	Do(64, 8, func(int) {})
	runtime.Gosched()
	base := runtime.NumGoroutine()
	for iter := 0; iter < 200; iter++ {
		Do(64, 8, func(int) {})
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Errorf("goroutines grew from %d to %d across 200 regions", base, got)
	}
}

func TestSize(t *testing.T) {
	if Size() < 1 {
		t.Errorf("Size() = %d", Size())
	}
}
