package pool

import (
	"sync/atomic"
	"testing"

	"phihpl/internal/metrics"
	"phihpl/internal/trace"
)

func TestObservabilityWiring(t *testing.T) {
	rec := new(trace.Recorder)
	reg := metrics.NewRegistry()
	SetObservability(rec, reg)
	defer SetObservability(nil, nil)

	var sum atomic.Int64
	Do(100, 4, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 99*100/2 {
		t.Fatalf("sum = %d", got)
	}
	Do(5, 1, func(int) {}) // serial path

	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded for an instrumented region")
	}
	for _, s := range spans {
		if s.Name != "pool.Do" {
			t.Errorf("unexpected span name %q", s.Name)
		}
		if s.Worker < 0 || s.Worker > nproc {
			t.Errorf("span worker %d out of [0,%d]", s.Worker, nproc)
		}
		if s.End < s.Start {
			t.Errorf("backwards span %+v", s)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["pool.regions"] != 1 {
		t.Errorf("pool.regions = %d, want 1", snap.Counters["pool.regions"])
	}
	if snap.Counters["pool.serial_regions"] != 1 {
		t.Errorf("pool.serial_regions = %d, want 1", snap.Counters["pool.serial_regions"])
	}

	// Detached: no further spans or counts.
	SetObservability(nil, nil)
	before := len(rec.Spans())
	Do(100, 4, func(int) {})
	if got := len(rec.Spans()); got != before {
		t.Errorf("detached pool still recorded %d spans", got-before)
	}
	if snap := reg.Snapshot(); snap.Counters["pool.regions"] != 1 {
		t.Errorf("detached pool still counted regions: %d", snap.Counters["pool.regions"])
	}
}

// The uninstrumented region path must not allocate beyond the pool's own
// fixed task closure (measured against the detached baseline).
func TestDoUninstrumentedAllocations(t *testing.T) {
	SetObservability(nil, nil)
	// Serial path: truly zero allocations.
	if n := testing.AllocsPerRun(100, func() {
		Do(8, 1, func(int) {})
	}); n != 0 {
		t.Errorf("serial Do allocated %.1f per op", n)
	}
}
