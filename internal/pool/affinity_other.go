//go:build !linux

package pool

// pinToCPUs is a no-op where sched_setaffinity is unavailable; socket
// grouping still partitions B-panel replicas, it is just not enforced by
// the scheduler.
func pinToCPUs(cpus []int) error { return nil }
