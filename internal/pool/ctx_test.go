package pool

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"phihpl/internal/testutil"
)

func TestDoCtxCompletesLikeDo(t *testing.T) {
	defer testutil.NoLeaks(t)()
	for _, workers := range []int{1, 2, 8} {
		var sum atomic.Int64
		if err := DoCtx(context.Background(), 200, workers, func(i int) {
			sum.Add(int64(i))
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := sum.Load(); got != 199*200/2 {
			t.Fatalf("workers=%d: sum = %d", workers, got)
		}
	}
}

func TestDoCtxAlreadyCancelled(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := DoCtx(ctx, 1000, workers, func(int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d jobs ran under a cancelled context", workers, ran.Load())
		}
	}
}

func TestDoCtxCancelMidRegion(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := DoCtx(ctx, 10000, 4, func(i int) {
		if ran.Add(1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 0 || got >= 10000 {
		t.Errorf("cancelled region ran %d of 10000 jobs", got)
	}
}

func TestDoCtxDeadline(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := DoCtx(ctx, 1<<30, 4, func(int) { time.Sleep(50 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestDoCtxPanicContained(t *testing.T) {
	defer testutil.NoLeaks(t)()
	for _, workers := range []int{1, 4} {
		err := DoCtx(context.Background(), 100, workers, func(i int) {
			if i == 3 {
				panic("kernel blew up")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "kernel blew up" {
			t.Errorf("workers=%d: recovered value = %v", workers, pe.Value)
		}
		if !strings.Contains(pe.Stack, "pool") {
			t.Errorf("workers=%d: PanicError carries no stack", workers)
		}
	}
}

// A panic must stop the region: later indices are not issued once the
// barrier trips (modulo jobs already in flight).
func TestDoCtxPanicStopsIssuing(t *testing.T) {
	defer testutil.NoLeaks(t)()
	var ran atomic.Int64
	err := DoCtx(context.Background(), 100000, 4, func(i int) {
		if ran.Add(1) == 5 {
			panic("boom")
		}
		time.Sleep(20 * time.Microsecond)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got >= 100000 {
		t.Errorf("panicking region still ran all %d jobs", got)
	}
}

// Do re-raises a contained panic on the caller as *PanicError, and the
// pool workers survive to serve the next region.
func TestDoRepanicsOnCaller(t *testing.T) {
	defer testutil.NoLeaks(t)()
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("Do swallowed the panic")
			}
			pe, ok := v.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T, want *PanicError", v)
			}
			if pe.Value != "job panic" {
				t.Errorf("value = %v", pe.Value)
			}
		}()
		Do(64, 4, func(i int) {
			if i == 0 {
				panic("job panic")
			}
		})
	}()
	// The pool must still work after a contained panic.
	var sum atomic.Int64
	Do(100, 4, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 99*100/2 {
		t.Errorf("pool broken after contained panic: sum = %d", sum.Load())
	}
}

func TestDoSerialPanicTyped(t *testing.T) {
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok || pe.Worker != -1 {
			t.Errorf("serial panic not converted: %v", pe)
		}
	}()
	Do(3, 1, func(int) { panic("serial") })
}
