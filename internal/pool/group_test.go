package pool

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestBuildGroups(t *testing.T) {
	dual := &Topology{Sockets: []Socket{
		{ID: 0, CPUs: []int{0, 1}},
		{ID: 1, CPUs: []int{2, 3}},
	}}
	cases := []struct {
		workers int
		want    []int // per-lane groups, caller lane last
	}{
		{4, []int{0, 0, 1, 1, 0}},             // one lane per CPU
		{2, []int{0, 1, 0}},                   // undersubscribed: one lane per socket
		{8, []int{0, 0, 0, 0, 1, 1, 1, 1, 0}}, // oversubscribed: split evenly
		{3, []int{0, 0, 1, 0}},                // uneven split leans on socket sizes
	}
	for _, tc := range cases {
		got, g := buildGroups(dual, tc.workers)
		if g != 2 {
			t.Errorf("workers=%d: groups=%d, want 2", tc.workers, g)
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("workers=%d: lanes=%v, want %v", tc.workers, got, tc.want)
		}
	}

	flat := flatTopology(4, "test")
	got, g := buildGroups(flat, 4)
	if g != 1 {
		t.Fatalf("flat groups=%d, want 1", g)
	}
	for lane, grp := range got {
		if grp != 0 {
			t.Fatalf("flat lane %d in group %d", lane, grp)
		}
	}
}

func TestForceGroups(t *testing.T) {
	t.Cleanup(func() { ForceGroups(0) })
	ForceGroups(3)
	if Groups() != 3 {
		t.Fatalf("Groups()=%d after ForceGroups(3)", Groups())
	}
	// Every worker lane lands in a valid group; the caller lane is 0.
	for w := 0; w < Size(); w++ {
		if g := groupOf(w); g < 0 || g >= 3 {
			t.Fatalf("worker %d in group %d", w, g)
		}
	}
	if groupOf(Size()) != 0 {
		t.Fatal("caller lane not in group 0")
	}
	if groupOf(-1) != 0 {
		t.Fatal("serial marker not in group 0")
	}
	ForceGroups(0)
	if Groups() != DetectTopology().NumSockets() {
		t.Fatalf("Groups()=%d after reset, want detected %d", Groups(), DetectTopology().NumSockets())
	}
}

func TestDoGroupedCoversIndexSpace(t *testing.T) {
	t.Cleanup(func() { ForceGroups(0) })
	ForceGroups(2)
	const n = 1000
	var hits [n]atomic.Int32
	var outOfRange atomic.Int32
	DoGrouped(n, 8, func(i, group int) {
		hits[i].Add(1)
		if group < 0 || group >= 2 {
			outOfRange.Add(1)
		}
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times", i, got)
		}
	}
	if outOfRange.Load() != 0 {
		t.Fatal("job observed a group outside [0, Groups())")
	}
}

func TestDoGroupedSerialIsGroupZero(t *testing.T) {
	t.Cleanup(func() { ForceGroups(0) })
	ForceGroups(4)
	DoGrouped(16, 1, func(i, group int) {
		if group != 0 {
			t.Fatalf("serial job at index %d saw group %d", i, group)
		}
	})
}

func TestDoGroupedPanicContained(t *testing.T) {
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatalf("expected *PanicError, got %v", pe)
		}
		if pe.Value != "boom" {
			t.Fatalf("panic value = %v", pe.Value)
		}
	}()
	DoGrouped(64, 4, func(i, group int) {
		if i == 11 {
			panic("boom")
		}
	})
	t.Fatal("panic did not propagate")
}

// TestDoSteadyStateAllocs pins the pool's own per-region allocation cost:
// regions and their helper-task closures are recycled through a
// sync.Pool, so a steady-state Do costs zero heap allocations beyond
// whatever the caller's fn closure captures. This is the pool half of the
// DgemmPacked allocs-per-op regression (the count used to grow with the
// number of regions per call).
func TestDoSteadyStateAllocs(t *testing.T) {
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	Do(64, 4, fn) // warm the region pool
	allocs := testing.AllocsPerRun(20, func() {
		Do(64, 4, fn)
	})
	if allocs > 1 {
		t.Errorf("steady-state Do allocates %.0f objects per region, want <= 1", allocs)
	}
}
