package offload

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/fault"
	"phihpl/internal/matrix"
	"phihpl/internal/metrics"
	"phihpl/internal/pool"
	"phihpl/internal/testutil"
	"phihpl/internal/trace"
)

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("bad plan %q: %v", spec, err)
	}
	return p
}

// hostOnlyReference computes the same update with a single host worker and
// no cards: the path a fully degraded run must match bitwise.
func hostOnlyReference(a, b, c0 *matrix.Dense, cfg RealConfig) *matrix.Dense {
	ref := c0.Clone()
	Compute(a, b, ref, RealConfig{Mt: cfg.Mt, Nt: cfg.Nt, HostWorkers: 1})
	return ref
}

// --- straggler recovery / degradation ----------------------------------

// The chaos table: each case disturbs the card side of a run and the
// engine must still produce, bit for bit, the host-path result — because
// a lost card worker never commits a tile, every tile is recomputed by
// the host path, which is exactly what the undisturbed host-only run
// executes.
func TestChaosDegradedRuns(t *testing.T) {
	defer testutil.NoLeaks(t)()
	m, k, n := 90, 24, 75
	a := matrix.RandomGeneral(m, k, 11)
	b := matrix.RandomGeneral(k, n, 12)
	c0 := matrix.RandomGeneral(m, n, 13)

	// All cases are card-worker-only: with no host goroutine racing the
	// card for its first claim, the injected fault fires on every
	// scheduler (including single-CPU -race runs), and recovery is the
	// caller's own host-path drain — the ultimate degraded mode.
	cases := []struct {
		name      string
		cfg       RealConfig
		plan      string
		wantLost  int
		hostTotal bool // every tile must land on the host path
	}{
		{
			name: "card stall -> host-only",
			cfg:  RealConfig{Mt: 16, Nt: 16, CardWorkers: 1, StallTimeout: 20 * time.Millisecond},
			// The only card worker wedges on its first claim for far longer
			// than the stall timeout: the monitor must declare it lost,
			// reclaim its tile, and the caller finishes everything host-side.
			plan:      "stall=0@0:400ms",
			wantLost:  1,
			hostTotal: true,
		},
		{
			name:      "card crash -> host-only",
			cfg:       RealConfig{Mt: 16, Nt: 16, CardWorkers: 1, StallTimeout: 20 * time.Millisecond},
			plan:      "crash=0@0",
			wantLost:  1,
			hostTotal: true,
		},
		{
			name: "all cards lost -> caller drains",
			cfg:  RealConfig{Mt: 16, Nt: 16, CardWorkers: 2, StallTimeout: 20 * time.Millisecond},
			plan: "crash=0@0;crash=1@0",
			// Every worker goroutine dies; the calling goroutine itself must
			// degrade to host-only execution and finish the grid.
			wantLost:  2,
			hostTotal: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := hostOnlyReference(a, b, c0, tc.cfg)
			got := c0.Clone()
			cfg := tc.cfg
			cfg.Fault = mustPlan(t, tc.plan)
			stats, err := ComputeCtx(context.Background(), a, b, got, cfg)
			if err != nil {
				t.Fatalf("degraded run failed: %v", err)
			}
			if !stats.Degraded {
				t.Errorf("Stats.Degraded = false after losing %d workers", tc.wantLost)
			}
			if stats.LostWorkers != tc.wantLost {
				t.Errorf("LostWorkers = %d, want %d", stats.LostWorkers, tc.wantLost)
			}
			if stats.ReclaimedTiles < 1 {
				t.Errorf("ReclaimedTiles = %d, want >= 1", stats.ReclaimedTiles)
			}
			plan := PlanTiles(m, n, cfg.Mt, cfg.Nt)
			nt := plan.NumTiles()
			if stats.CardTiles+stats.HostTiles != nt {
				t.Errorf("tile accounting broken: %+v over %d tiles", stats, nt)
			}
			if tc.hostTotal && stats.CardTiles != 0 {
				t.Errorf("expected a fully host-side run, got %+v", stats)
			}
			if !matrix.Equal(got, ref) {
				t.Errorf("degraded result differs from undisturbed host-only run (maxdiff %g)",
					matrix.MaxDiff(got, ref))
			}
		})
	}
}

// A stalled card among several survivors degrades the run without
// corrupting it: the result still matches plain DGEMM. Whether the stall
// fires at all is a scheduler race (on a loaded single-CPU box the other
// workers can drain the grid before the target's first claim), so the
// disturbance is retried; the numeric check holds on every attempt.
func TestChaosPartialDegradationStillCorrect(t *testing.T) {
	defer testutil.NoLeaks(t)()
	m, k, n := 192, 32, 192
	a := matrix.RandomGeneral(m, k, 21)
	b := matrix.RandomGeneral(k, n, 22)
	c0 := matrix.RandomGeneral(m, n, 23)
	want := c0.Clone()
	blas.Dgemm(false, false, 1, a, b, 1, want)

	for attempt := 0; attempt < 10; attempt++ {
		got := c0.Clone()
		stats, err := ComputeCtx(context.Background(), a, b, got, RealConfig{
			Mt: 32, Nt: 32, CardWorkers: 2, HostWorkers: 2,
			StallTimeout: 20 * time.Millisecond,
			Fault:        mustPlan(t, "stall=0@0:400ms"),
		})
		if err != nil {
			t.Fatalf("attempt %d failed: %v", attempt, err)
		}
		if d := matrix.MaxDiff(got, want); d > 1e-11 {
			t.Fatalf("attempt %d (stats %+v) off by %g", attempt, stats, d)
		}
		if stats.Degraded {
			if stats.LostWorkers != 1 || stats.ReclaimedTiles < 1 {
				t.Errorf("stats = %+v, want one lost worker with reclaimed tiles", stats)
			}
			return
		}
	}
	// The deterministic host-only degradation path is covered by
	// TestChaosDegradedRuns; here the scheduler simply never let the
	// target worker claim a tile.
	t.Skip("stall target starved of claims on this scheduler")
}

// Scheduling faults on card workers implies a default StallTimeout, so a
// planned crash cannot hang a run that forgot to arm the monitor.
func TestChaosFaultPlanImpliesMonitor(t *testing.T) {
	defer testutil.NoLeaks(t)()
	cfg := RealConfig{Fault: mustPlan(t, "crash=0@0")}.withDefaults(100, 100)
	if cfg.StallTimeout == 0 {
		t.Fatal("withDefaults left StallTimeout unarmed with a crash plan")
	}
	a := matrix.RandomGeneral(40, 8, 31)
	b := matrix.RandomGeneral(8, 40, 32)
	c := matrix.NewDense(40, 40)
	stats, err := ComputeCtx(context.Background(), a, b, c,
		RealConfig{Mt: 20, Nt: 20, CardWorkers: 1, Fault: mustPlan(t, "crash=0@0")})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !stats.Degraded {
		t.Errorf("stats = %+v, want degraded", stats)
	}
}

// --- cancellation -------------------------------------------------------

func TestComputeCtxAlreadyCancelled(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := matrix.RandomGeneral(50, 10, 41)
	b := matrix.RandomGeneral(10, 50, 42)
	c := matrix.RandomGeneral(50, 50, 43)
	before := c.Clone()
	stats, err := ComputeCtx(ctx, a, b, c, RealConfig{Mt: 16, Nt: 16, CardWorkers: 1, HostWorkers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats != (Stats{}) {
		t.Errorf("cancelled-before-start run reported work: %+v", stats)
	}
	if !matrix.Equal(c, before) {
		t.Error("cancelled-before-start run wrote into C")
	}
}

func TestComputeCtxCancelMidRun(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	a := matrix.RandomGeneral(60, 12, 51)
	b := matrix.RandomGeneral(12, 60, 52)
	c := matrix.NewDense(60, 60)
	// The only worker wedges for 150ms with no monitor armed: the deadline
	// fires first, and ComputeCtx must return once the worker drains.
	_, err := ComputeCtx(ctx, a, b, c, RealConfig{
		Mt: 20, Nt: 20, CardWorkers: 1,
		Fault:        mustPlan(t, "stall=0@0:150ms"),
		StallTimeout: time.Minute, // monitor armed but far too slow to fire
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// --- panic containment --------------------------------------------------

func TestComputeCtxPanicContained(t *testing.T) {
	defer testutil.NoLeaks(t)()
	// Card-only configuration: the panic is guaranteed to fire on a
	// worker goroutine regardless of who wins the tile race.
	testHookCardTile = func(worker, tile int) { panic("card kernel blew up") }
	defer func() { testHookCardTile = nil }()
	a := matrix.RandomGeneral(40, 8, 61)
	b := matrix.RandomGeneral(8, 40, 62)
	c := matrix.NewDense(40, 40)
	_, err := ComputeCtx(context.Background(), a, b, c,
		RealConfig{Mt: 20, Nt: 20, CardWorkers: 1, HostWorkers: 0})
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *pool.PanicError", err)
	}
	if pe.Value != "card kernel blew up" {
		t.Errorf("recovered value = %v", pe.Value)
	}
	if !strings.Contains(pe.Stack, "offload") {
		t.Error("PanicError carries no offload stack")
	}
}

func TestComputePanicRepanicsOnCaller(t *testing.T) {
	defer testutil.NoLeaks(t)()
	testHookCardTile = func(worker, tile int) { panic("boom") }
	defer func() { testHookCardTile = nil }()
	defer func() {
		pe, ok := recover().(*pool.PanicError)
		if !ok || pe.Value != "boom" {
			t.Errorf("Compute did not re-raise the contained panic: %v", pe)
		}
	}()
	a := matrix.RandomGeneral(20, 4, 71)
	b := matrix.RandomGeneral(4, 20, 72)
	Compute(a, b, matrix.NewDense(20, 20), RealConfig{Mt: 10, Nt: 10, CardWorkers: 1})
}

// --- withDefaults clamping / empty updates (regression) -----------------

func TestWithDefaultsClampsTileDims(t *testing.T) {
	cfg := RealConfig{Mt: 1000, Nt: 2000}.withDefaults(30, 40)
	if cfg.Mt != 30 || cfg.Nt != 40 {
		t.Errorf("tile dims not clamped to extents: %+v", cfg)
	}
	cfg = RealConfig{}.withDefaults(10, 10)
	if cfg.Mt != 10 || cfg.Nt != 10 {
		t.Errorf("default 64 tile not clamped on a small matrix: %+v", cfg)
	}
	cfg = RealConfig{}.withDefaults(500, 500)
	if cfg.Mt != 64 || cfg.Nt != 64 {
		t.Errorf("defaults wrong on a large matrix: %+v", cfg)
	}
	cfg = RealConfig{CardWorkers: -3, HostWorkers: -1}.withDefaults(10, 10)
	if cfg.CardWorkers != 1 || cfg.HostWorkers != 0 {
		t.Errorf("negative worker counts not normalized: %+v", cfg)
	}
}

func TestComputeEmptyUpdate(t *testing.T) {
	defer testutil.NoLeaks(t)()
	// 0xN, Nx0 and K=0 updates are all no-ops with zeroed stats — not
	// hangs, not panics.
	cases := []struct{ m, k, n int }{{0, 5, 7}, {7, 5, 0}, {7, 0, 5}, {0, 0, 0}}
	for _, tc := range cases {
		a := matrix.NewDense(tc.m, tc.k)
		b := matrix.NewDense(tc.k, tc.n)
		c := matrix.RandomGeneral(tc.m, tc.n, 81)
		before := c.Clone()
		stats := Compute(a, b, c, RealConfig{CardWorkers: 2, HostWorkers: 2})
		if stats != (Stats{}) {
			t.Errorf("%dx%dx%d: empty update reported work: %+v", tc.m, tc.k, tc.n, stats)
		}
		if !matrix.Equal(c, before) {
			t.Errorf("%dx%dx%d: empty update modified C", tc.m, tc.k, tc.n)
		}
	}
}

// --- observability ------------------------------------------------------

func TestOffloadObservability(t *testing.T) {
	defer testutil.NoLeaks(t)()
	rec := new(trace.Recorder)
	reg := metrics.NewRegistry()
	SetObservability(rec, reg)
	defer SetObservability(nil, nil)

	a := matrix.RandomGeneral(60, 12, 91)
	b := matrix.RandomGeneral(12, 60, 92)
	c := matrix.NewDense(60, 60)
	// Card-only so the crash deterministically fires on the first claim;
	// the host-tile spans then come from the caller's recovery drain.
	stats, err := ComputeCtx(context.Background(), a, b, c, RealConfig{
		Mt: 20, Nt: 20, CardWorkers: 1,
		StallTimeout: 20 * time.Millisecond,
		Fault:        mustPlan(t, "crash=0@0"),
	})
	if err != nil || !stats.Degraded {
		t.Fatalf("degraded run failed: stats=%+v err=%v", stats, err)
	}
	if got := reg.Counter("offload.runs").Value(); got != 1 {
		t.Errorf("offload.runs = %d", got)
	}
	if got := reg.Counter("offload.lost_workers").Value(); got != 1 {
		t.Errorf("offload.lost_workers = %d", got)
	}
	if got := reg.Counter("offload.degraded_runs").Value(); got != 1 {
		t.Errorf("offload.degraded_runs = %d", got)
	}
	if got := reg.Counter("offload.reclaimed_tiles").Value(); got < 1 {
		t.Errorf("offload.reclaimed_tiles = %d", got)
	}
	var hostSpans int
	for _, s := range rec.Spans() {
		if s.Name == "offload.host_tile" {
			hostSpans++
		}
	}
	plan := PlanTiles(60, 60, 20, 20)
	if hostSpans != plan.NumTiles() {
		t.Errorf("host tile spans = %d, want one per tile", hostSpans)
	}
}
