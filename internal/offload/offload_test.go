package offload

import (
	"math"
	"testing"
	"testing/quick"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/testutil"
)

func TestPlanTilesMergesPartials(t *testing.T) {
	p := PlanTiles(100, 70, 30, 32)
	// 100/30 = 3 full rows, remainder 10 merged into the last -> sizes 30,30,40.
	if p.Rows() != 3 || p.RowSize[2] != 40 {
		t.Errorf("rows = %d, sizes = %v", p.Rows(), p.RowSize)
	}
	// 70/32 = 2 full cols, remainder 6 merged -> 32, 38.
	if p.Cols() != 2 || p.ColSize[1] != 38 {
		t.Errorf("cols = %d, sizes = %v", p.Cols(), p.ColSize)
	}
	if p.NumTiles() != 6 {
		t.Errorf("tiles = %d", p.NumTiles())
	}
	// Coverage: tiles exactly partition the matrix.
	covered := 0
	for i := 0; i < p.NumTiles(); i++ {
		_, _, r, c := p.Tile(i)
		covered += r * c
	}
	if covered != 100*70 {
		t.Errorf("covered %d cells of %d", covered, 7000)
	}
}

func TestPlanTilesColumnMajorOrder(t *testing.T) {
	p := PlanTiles(60, 60, 30, 30) // 2x2 grid
	r0, c0, _, _ := p.Tile(0)
	r1, c1, _, _ := p.Tile(1)
	r2, c2, _, _ := p.Tile(2)
	if r0 != 0 || c0 != 0 || r1 != 30 || c1 != 0 || r2 != 0 || c2 != 30 {
		t.Errorf("column-major order broken: (%d,%d) (%d,%d) (%d,%d)", r0, c0, r1, c1, r2, c2)
	}
}

func TestPlanTilesEdgeCases(t *testing.T) {
	// Tile larger than the matrix: single tile.
	p := PlanTiles(10, 10, 100, 100)
	if p.NumTiles() != 1 {
		t.Errorf("tiles = %d", p.NumTiles())
	}
	_, _, r, c := p.Tile(0)
	if r != 10 || c != 10 {
		t.Errorf("tile = %dx%d", r, c)
	}
	// Exact division: no merging.
	p = PlanTiles(90, 90, 30, 30)
	if p.NumTiles() != 9 || p.RowSize[2] != 30 {
		t.Errorf("exact division broken")
	}
}

func TestStealQueueMeetsInMiddle(t *testing.T) {
	q := newStealQueue(5)
	var fronts, backs []int
	for {
		i, ok := q.front()
		if !ok {
			break
		}
		fronts = append(fronts, i)
		j, ok := q.back()
		if !ok {
			break
		}
		backs = append(backs, j)
	}
	if len(fronts)+len(backs) != 5 {
		t.Fatalf("claimed %d + %d tiles, want 5", len(fronts), len(backs))
	}
	seen := map[int]bool{}
	for _, i := range append(fronts, backs...) {
		if seen[i] {
			t.Fatalf("tile %d claimed twice", i)
		}
		seen[i] = true
	}
}

func TestComputeMatchesDgemm(t *testing.T) {
	defer testutil.NoLeaks(t)()
	m, k, n := 95, 40, 83
	a := matrix.RandomGeneral(m, k, 1)
	b := matrix.RandomGeneral(k, n, 2)
	c0 := matrix.RandomGeneral(m, n, 3)

	want := c0.Clone()
	blas.Dgemm(false, false, 1, a, b, 1, want)

	for _, cfg := range []RealConfig{
		{Mt: 32, Nt: 32, CardWorkers: 1, HostWorkers: 0},
		{Mt: 32, Nt: 32, CardWorkers: 0, HostWorkers: 1},
		{Mt: 32, Nt: 32, CardWorkers: 2, HostWorkers: 2},
		{Mt: 20, Nt: 50, CardWorkers: 1, HostWorkers: 3},
	} {
		got := c0.Clone()
		stats := Compute(a, b, got, cfg)
		if d := matrix.MaxDiff(got, want); d > 1e-11 {
			t.Errorf("cfg=%+v: maxdiff %g", cfg, d)
		}
		plan := PlanTiles(m, n, cfg.Mt, cfg.Nt)
		if stats.CardTiles+stats.HostTiles != plan.NumTiles() {
			t.Errorf("cfg=%+v: tile accounting wrong: %+v", cfg, stats)
		}
	}
}

func TestComputeWorkerExclusivity(t *testing.T) {
	// Card-only and host-only configurations attribute every tile to the
	// right side. (Which side wins contested tiles in a mixed run is
	// scheduler-dependent; the meet-in-the-middle queue itself is covered
	// by TestStealQueueMeetsInMiddle.)
	a := matrix.RandomGeneral(64, 16, 4)
	b := matrix.RandomGeneral(16, 64, 5)
	c := matrix.NewDense(64, 64)
	stats := Compute(a, b, c, RealConfig{Mt: 16, Nt: 16, CardWorkers: 3, HostWorkers: 0})
	if stats.CardTiles != 16 || stats.HostTiles != 0 {
		t.Errorf("card-only split wrong: %+v", stats)
	}
	c.Zero()
	stats = Compute(a, b, c, RealConfig{Mt: 16, Nt: 16, CardWorkers: 0, HostWorkers: 3})
	if stats.HostTiles != 16 || stats.CardTiles != 0 {
		t.Errorf("host-only split wrong: %+v", stats)
	}
}

func TestComputeDefaultsAndPanics(t *testing.T) {
	a := matrix.RandomGeneral(10, 4, 6)
	b := matrix.RandomGeneral(4, 10, 7)
	c := matrix.NewDense(10, 10)
	// All-zero worker config defaults to one card worker.
	stats := Compute(a, b, c, RealConfig{})
	if stats.CardTiles == 0 {
		t.Errorf("default config should use the card: %+v", stats)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected dimension panic")
		}
	}()
	Compute(a, b, matrix.NewDense(9, 10), RealConfig{})
}

// Property: the offload result equals plain DGEMM for random shapes and
// worker mixes.
func TestComputeEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, mR, nR, kR, wR uint8) bool {
		m := 8 + int(mR)%60
		n := 8 + int(nR)%60
		k := 1 + int(kR)%24
		cw := int(wR) % 3
		hw := int(wR>>4) % 3
		a := matrix.RandomGeneral(m, k, seed)
		b := matrix.RandomGeneral(k, n, seed^7)
		got := matrix.NewDense(m, n)
		Compute(a, b, got, RealConfig{Mt: 16, Nt: 16, CardWorkers: cw, HostWorkers: hw})
		want := matrix.NewDense(m, n)
		blas.Dgemm(false, false, 1, a, b, 1, want)
		return matrix.MaxDiff(got, want) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- Figure 11 ---------------------------------------------------------

func TestFigure11SingleCard(t *testing.T) {
	// "For 82K matrix it achieves ≈917 GFLOPS, resulting in 85.4%
	// efficiency."
	r := Simulate(82000, 82000, SimConfig{Cards: 1})
	if math.Abs(r.GFLOPS-917) > 12 {
		t.Errorf("1-card @82K = %.1f GFLOPS, paper ≈917", r.GFLOPS)
	}
	if math.Abs(r.Eff-0.854) > 0.01 {
		t.Errorf("1-card eff = %.3f, paper 0.854", r.Eff)
	}
}

func TestFigure11DualCard(t *testing.T) {
	// "The achieved peak ofﬂoad DGEMM performance for dual Knights Corner
	// systems is 1785 GFLOPS, resulting in 83% efficiency."
	r := Simulate(82000, 82000, SimConfig{Cards: 2})
	if math.Abs(r.GFLOPS-1785) > 25 {
		t.Errorf("2-card @82K = %.1f GFLOPS, paper 1785", r.GFLOPS)
	}
	if math.Abs(r.Eff-0.83) > 0.012 {
		t.Errorf("2-card eff = %.3f, paper 0.83", r.Eff)
	}
}

func TestFigure11DegradationShape(t *testing.T) {
	// Efficiency degrades slowly for one card and much faster for two
	// (each card solves half the problem, so fixed exposure looms larger).
	sizes := []int{10000, 20000, 40000, 82000}
	prev1, prev2 := 0.0, 0.0
	for _, m := range sizes {
		e1 := Simulate(m, m, SimConfig{Cards: 1}).Eff
		e2 := Simulate(m, m, SimConfig{Cards: 2}).Eff
		if e1 <= prev1 || e2 <= prev2 {
			t.Errorf("efficiency must rise with size at %d", m)
		}
		prev1, prev2 = e1, e2
	}
	drop1 := Simulate(82000, 82000, SimConfig{Cards: 1}).Eff - Simulate(10000, 10000, SimConfig{Cards: 1}).Eff
	drop2 := Simulate(82000, 82000, SimConfig{Cards: 2}).Eff - Simulate(10000, 10000, SimConfig{Cards: 2}).Eff
	if drop2 <= drop1 {
		t.Errorf("dual-card efficiency must degrade faster: Δ1=%.3f Δ2=%.3f", drop1, drop2)
	}
}

func TestTileSelectionAblation(t *testing.T) {
	// Run-time tile selection must beat a deliberately bad fixed tile.
	auto := Simulate(40000, 40000, SimConfig{Cards: 1})
	forced := Simulate(40000, 40000, SimConfig{Cards: 1, ForceTile: 1200})
	if auto.GFLOPS <= forced.GFLOPS {
		t.Errorf("tile selection (%.1f, tile %d) should beat forced 1200 (%.1f)",
			auto.GFLOPS, auto.Mt, forced.GFLOPS)
	}
}

func TestSimulateDeterministicAndDegenerate(t *testing.T) {
	a := Simulate(20000, 20000, SimConfig{Cards: 1})
	b := Simulate(20000, 20000, SimConfig{Cards: 1})
	if a != b {
		t.Error("simulation must be deterministic")
	}
	if r := Simulate(0, 100, SimConfig{}); r.GFLOPS != 0 {
		t.Errorf("degenerate m should give zero result, got %+v", r)
	}
	if SteadyRate(20000, 20000, SimConfig{Cards: 1}) != a.GFLOPS {
		t.Error("SteadyRate should match Simulate")
	}
}

func TestLargerKtHelps(t *testing.T) {
	// Deeper panels amortize transfers: Kt=1200 must not lose to Kt=600
	// in efficiency terms at moderate sizes.
	e600 := Simulate(30000, 30000, SimConfig{Cards: 1, Kt: 600}).Eff
	e1200 := Simulate(30000, 30000, SimConfig{Cards: 1, Kt: 1200}).Eff
	if e1200 < e600 {
		t.Errorf("Kt=1200 eff %.3f should be >= Kt=600 eff %.3f", e1200, e600)
	}
}
