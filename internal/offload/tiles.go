// Package offload implements the offload-DGEMM engine of Section V-B: the
// trailing-matrix update is divided into tiles that a coprocessor consumes
// from the top-left corner in column-major order while the host consumes
// from the bottom-right, both stealing one tile at a time until the grid is
// exhausted (Figure 10a). Input tiles are packed on the host into the
// Knights Corner-friendly layout, shipped over PCIe, multiplied on the
// card, and the result tiles are accumulated back into the original matrix
// (Figure 10b).
//
// The package has two layers: a functional layer (Compute) that really
// performs C += A·B with goroutine "cards" and work stealing, validated
// against plain DGEMM; and a virtual-time layer (Simulate) that prices the
// same schedule on the machine model and regenerates Figure 11.
package offload

// TilePlan is a rectangular tiling of an M×N matrix with partial edge
// tiles merged into their neighbours (Section V-B: "we merge the last two
// tiles at the end of each row or column and process them together"), so
// no tile is smaller than the nominal size.
type TilePlan struct {
	M, N   int
	Mt, Nt int
	// RowStart[i], RowSize[i] for each tile row; likewise columns.
	RowStart, RowSize []int
	ColStart, ColSize []int
}

// PlanTiles builds the tiling. Nominal sizes clamp to the matrix.
func PlanTiles(m, n, mt, nt int) TilePlan {
	if mt < 1 || mt > m {
		mt = m
	}
	if nt < 1 || nt > n {
		nt = n
	}
	p := TilePlan{M: m, N: n, Mt: mt, Nt: nt}
	p.RowStart, p.RowSize = cuts(m, mt)
	p.ColStart, p.ColSize = cuts(n, nt)
	return p
}

// cuts splits extent into blocks of nominal size, merging the remainder
// into the final block.
func cuts(extent, size int) (starts, sizes []int) {
	if extent <= 0 {
		return nil, nil
	}
	nFull := extent / size
	if nFull == 0 {
		return []int{0}, []int{extent}
	}
	rem := extent - nFull*size
	for i := 0; i < nFull; i++ {
		starts = append(starts, i*size)
		sizes = append(sizes, size)
	}
	sizes[nFull-1] += rem // merge the partial tile into the last full one
	return starts, sizes
}

// Rows and Cols return the tile-grid dimensions.
func (p *TilePlan) Rows() int { return len(p.RowStart) }

// Cols returns the number of tile columns.
func (p *TilePlan) Cols() int { return len(p.ColStart) }

// NumTiles returns the total tile count.
func (p *TilePlan) NumTiles() int { return p.Rows() * p.Cols() }

// Tile returns the bounds of tile idx in column-major order — the order in
// which the card steals from the top-left (index 0) while the host steals
// from the bottom-right (index NumTiles-1).
func (p *TilePlan) Tile(idx int) (r0, c0, rows, cols int) {
	nr := p.Rows()
	col := idx / nr
	row := idx % nr
	return p.RowStart[row], p.ColStart[col], p.RowSize[row], p.ColSize[col]
}
