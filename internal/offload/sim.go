package offload

import (
	"phihpl/internal/machine"
	"phihpl/internal/pcie"
	"phihpl/internal/perfmodel"
)

// SimConfig parameterizes the virtual-time offload DGEMM (Figure 11).
type SimConfig struct {
	// Cards is 1 or 2 coprocessors; with two, the matrix columns are
	// split in half and each card solves its half (the paper's scheme).
	Cards int
	// Kt is the offload panel depth (1200 in all the paper's runs —
	// comfortably above the PCIe lower bound of ~950).
	Kt int
	// Model / Host override the machine models (nil -> defaults).
	Model *perfmodel.KNC
	Host  *perfmodel.SNB
	// Link parameters (zero value -> machine.DefaultPCIe()).
	Link machine.PCIe
	// TileCandidates are nominal square tile sizes to search; empty uses
	// the default ladder. The run-time picks the best per matrix size —
	// "for each matrix size we pre-compute the best tile sizes … and
	// dynamically pick the best tile size at run-time".
	TileCandidates []int
	// ForceTile pins the tile size (ablation of run-time selection).
	ForceTile int
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Cards < 1 {
		c.Cards = 1
	}
	if c.Kt < 1 {
		c.Kt = 1200
	}
	if c.Model == nil {
		c.Model = perfmodel.NewKNC()
	}
	if c.Host == nil {
		c.Host = perfmodel.NewSNB()
	}
	if c.Link.RawBW == 0 {
		c.Link = machine.DefaultPCIe()
	}
	if len(c.TileCandidates) == 0 {
		c.TileCandidates = []int{1200, 1800, 2400, 3600, 4800, 6000, 7200}
	}
	return c
}

// SimResult reports a simulated offload DGEMM.
type SimResult struct {
	Seconds float64
	GFLOPS  float64
	Eff     float64 // vs. all cards' full 61-core peak (the paper's hybrid denominator)
	Mt, Nt  int     // chosen tile size
}

// perTileOverhead is the host-side orchestration cost per tile: queue
// insertion, the card's polling latency, result-accumulation setup
// (Figure 10b, steps 1–10). Calibrated against the 85.4% single-card
// efficiency at 82K.
const perTileOverhead = 1.6e-3

// commCores is the number of card cores dedicated to host communication
// during offload (the paper: one of 61, a 1.5% efficiency loss).
const commCores = 1

// cardTime prices one card processing an m×n trailing-update product of
// depth kt with nominal tile size ts, using its own PCIe link with
// bandwidth share `share`.
func cardTime(m, n, kt, ts int, cfg SimConfig, share float64) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	link := pcie.NewLink(cfg.Link)
	link.Contended = true
	link.Share = share
	plan := PlanTiles(m, n, ts, ts)
	// Native runs reserve the last core for the OS; in offload mode all 61
	// cores compute except the one running the communication loop.
	cores := cfg.Model.Arch.Cores() - commCores

	// The card's DGEMM splits kt into k=300 outer products (the best
	// native depth, Section III-B).
	const kInner = 300

	computeFree := 0.0
	prevComputeStart := 0.0
	end := 0.0
	for idx := 0; idx < plan.NumTiles(); idx++ {
		_, _, rows, cols := plan.Tile(idx)
		inBytes := 8 * float64(rows+cols) * float64(kt)
		// Double buffering: the input of tile idx transfers while tile
		// idx-1 computes. The first tile's transfer is exposed — one of
		// the two exposure terms the paper quantifies at 2.5%.
		_, inEnd := link.Enqueue(pcie.HostToDevice, prevComputeStart, inBytes)
		start := inEnd
		if computeFree > start {
			start = computeFree
		}
		prevComputeStart = start
		eff := cfg.Model.DgemmKernelEff(rows, cols, kInner)
		if eff <= 0 {
			eff = 1e-3
		}
		peak := float64(cores) * cfg.Model.Arch.ClockGHz * 1e9 * cfg.Model.Arch.DPFlopsPerCycle()
		compute := 2 * float64(rows) * float64(cols) * float64(kt) / (eff * peak)
		computeFree = start + compute + perTileOverhead
		outBytes := 8 * float64(rows) * float64(cols)
		_, outEnd := link.Enqueue(pcie.DeviceToHost, computeFree, outBytes)
		if outEnd > end {
			end = outEnd
		}
	}
	if computeFree > end {
		end = computeFree
	}
	return end
}

// Simulate prices the offload DGEMM of an m×n trailing-update product
// (depth cfg.Kt) and returns the achieved performance. With two cards the
// column range is split in half and the links share host memory bandwidth.
func Simulate(m, n int, cfg SimConfig) SimResult {
	cfg = cfg.withDefaults()
	share := 1.0
	nPer := n
	if cfg.Cards == 2 {
		share = 0.75 // two DMA streams contend for host memory controllers
		nPer = n / 2
	}

	best := SimResult{}
	cands := cfg.TileCandidates
	if cfg.ForceTile > 0 {
		cands = []int{cfg.ForceTile}
	}
	for _, ts := range cands {
		if ts > m && best.Mt != 0 {
			continue
		}
		t := cardTime(m, nPer, cfg.Kt, ts, cfg, share)
		if cfg.Cards == 2 {
			// Both halves run concurrently; the makespan is the max and
			// the halves are symmetric.
			t2 := cardTime(m, n-nPer, cfg.Kt, ts, cfg, share)
			if t2 > t {
				t = t2
			}
		}
		if t <= 0 {
			continue
		}
		flops := 2 * float64(m) * float64(n) * float64(cfg.Kt)
		g := flops / t / 1e9
		if best.Mt == 0 || g > best.GFLOPS {
			peak := float64(cfg.Cards) * cfg.Model.Arch.PeakDPGFLOPS()
			best = SimResult{Seconds: t, GFLOPS: g, Eff: g / peak, Mt: ts, Nt: ts}
		}
	}
	return best
}

// SteadyRate returns the sustained offload-DGEMM rate (GFLOPS) for
// trailing updates of roughly m×n on the configured cards — the number the
// hybrid HPL simulation uses to price its update phase.
func SteadyRate(m, n int, cfg SimConfig) float64 {
	r := Simulate(m, n, cfg)
	return r.GFLOPS
}
