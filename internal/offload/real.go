package offload

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/fault"
	"phihpl/internal/matrix"
	"phihpl/internal/pack"
	"phihpl/internal/pool"
)

// RealConfig configures the functional offload engine.
type RealConfig struct {
	// Mt, Nt are the nominal tile dimensions (0 -> 64; values larger than
	// the matrix clamp to its extents).
	Mt, Nt int
	// CardWorkers emulate coprocessor cards: goroutines that consume
	// tiles from the top-left, packing operands into the Knights
	// Corner-friendly layout first, exactly like the real offload path.
	CardWorkers int
	// HostWorkers consume tiles from the bottom-right with plain DGEMM.
	HostWorkers int
	// StallTimeout arms the straggler monitor: a card worker whose
	// heartbeat goes silent for longer is declared lost, its
	// unacknowledged tile is reclaimed into the steal queue, and the run
	// degrades toward host-only execution instead of hanging. It must
	// comfortably exceed the compute time of one tile. 0 disables
	// monitoring (a wedged card worker then blocks the run, as a real
	// un-fenced offload would).
	StallTimeout time.Duration
	// Fault injects deterministic card-worker faults for chaos testing,
	// reusing the fault-plan machinery of the distributed layer: a
	// crash=w@t event kills card worker w at its t-th tile claim (before
	// computing), and stall=w@t:dur wedges it for dur at that claim. When
	// the plan schedules card faults and StallTimeout is zero, a default
	// of 50ms is applied so the faults are actually detected.
	Fault *fault.Plan
}

func (c RealConfig) withDefaults(m, n int) RealConfig {
	if c.Mt < 1 {
		c.Mt = 64
	}
	if c.Nt < 1 {
		c.Nt = 64
	}
	// Tile dims larger than the matrix are silently accepted by the tile
	// planner (it clamps), but a config echoing them back misleads; clamp
	// here so cfg always describes the grid actually used.
	if m > 0 && c.Mt > m {
		c.Mt = m
	}
	if n > 0 && c.Nt > n {
		c.Nt = n
	}
	if c.CardWorkers < 0 {
		c.CardWorkers = 0
	}
	if c.HostWorkers < 0 {
		c.HostWorkers = 0
	}
	if c.CardWorkers+c.HostWorkers == 0 {
		c.CardWorkers = 1
	}
	if c.StallTimeout == 0 && c.Fault != nil &&
		(len(c.Fault.Crashes) > 0 || len(c.Fault.Stalls) > 0) {
		c.StallTimeout = 50 * time.Millisecond
	}
	return c
}

// Stats reports how the tile grid was split by the work-stealing loop and
// what the straggler monitor had to do.
type Stats struct {
	CardTiles, HostTiles int
	// ReclaimedTiles counts tiles taken back from lost card workers and
	// re-queued; LostWorkers counts card workers declared dead by the
	// straggler monitor. Degraded is set whenever any card worker was
	// lost — the run completed on the surviving workers (host-only in the
	// worst case).
	ReclaimedTiles int
	LostWorkers    int
	Degraded       bool
}

// stealQueue hands out tile indices from both ends of [0, n), and serves
// tiles reclaimed from lost workers before fresh ones.
type stealQueue struct {
	mu         sync.Mutex
	head, tail int // head = next front index, tail = next back index
	reclaimed  []int
}

func newStealQueue(n int) *stealQueue { return &stealQueue{head: 0, tail: n - 1} }

// take claims the next tile — from the top-left when front is true, from
// the bottom-right otherwise; ok=false when nothing is claimable right now
// (reclaims may still arrive later).
func (q *stealQueue) take(front bool) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if k := len(q.reclaimed); k > 0 {
		i := q.reclaimed[k-1]
		q.reclaimed = q.reclaimed[:k-1]
		return i, true
	}
	if q.head > q.tail {
		return 0, false
	}
	if front {
		i := q.head
		q.head++
		return i, true
	}
	i := q.tail
	q.tail--
	return i, true
}

// front and back keep the historical single-end claim API.
func (q *stealQueue) front() (int, bool) { return q.take(true) }
func (q *stealQueue) back() (int, bool)  { return q.take(false) }

// push returns a reclaimed tile to the queue.
func (q *stealQueue) push(idx int) {
	q.mu.Lock()
	q.reclaimed = append(q.reclaimed, idx)
	q.mu.Unlock()
}

// testHookCardTile, when non-nil, runs on a card worker right before it
// computes a claimed tile. Set only by tests (before workers start) to
// inject panics into the card path.
var testHookCardTile func(worker, tile int)

// tile ownership states (owner[] values outside these are worker ids).
const (
	tileFree int32 = -1 // in the queue, unclaimed
	tileDone int32 = -2 // committed exactly once
)

// synthetic worker ids for the non-card claimants.
const (
	hostIDBase int32 = 1 << 20
	callerID   int32 = 1 << 21
)

// engine is the shared state of one ComputeCtx run.
type engine struct {
	ctx     context.Context
	a, b, c *matrix.Dense
	plan    TilePlan
	cfg     RealConfig
	q       *stealQueue
	nt      int
	in      *fault.Injector

	owner     []atomic.Int32 // per-tile: tileFree | worker id | tileDone
	committed atomic.Int32

	// Per card worker: last heartbeat (ns), declared-dead flag, and a
	// once-guard for releasing the worker's live slot (either the worker
	// exits or the monitor declares it dead — whichever happens first).
	beat     []atomic.Int64
	dead     []atomic.Bool
	released []atomic.Bool

	live    atomic.Int32
	allDone chan struct{}
	drained chan struct{}
	doneO   sync.Once
	drainO  sync.Once

	aborted atomic.Bool // a worker panicked: stop claiming
	perrMu  sync.Mutex
	perr    *pool.PanicError

	cardN, hostN, reclaimedN, lostN atomic.Int32
	degraded                        atomic.Bool
}

// Compute performs C += A·B (A: M×K, B: K×N, C: M×N) using the offload
// work-stealing schedule: card workers take tiles in column-major order
// from the front of the grid, host workers from the back, one tile at a
// time, until the grid is exhausted. Card workers pack their operands into
// the tiled Knights Corner layout before multiplying — the same data path
// as the real offload engine — while host workers run plain DGEMM.
// Tiles are disjoint regions of C and each is computed exactly once, so
// the result is determined entirely by which path executed each tile.
// A contained worker panic is re-raised here on the caller.
func Compute(a, b, c *matrix.Dense, cfg RealConfig) Stats {
	stats, err := ComputeCtx(context.Background(), a, b, c, cfg)
	if err != nil {
		// Background never cancels: only a contained panic arrives here.
		panic(err)
	}
	return stats
}

// ComputeCtx is Compute under a context with straggler recovery. The run
// stops handing out tiles once ctx is done and returns ctx.Err() together
// with the partial Stats (every in-flight tile is finished or discarded
// before return — no goroutine still writes C afterwards, except workers
// wedged with monitoring disabled). A panicking worker is contained into
// a *pool.PanicError instead of crashing the process. With
// cfg.StallTimeout armed, card workers that stall or die have their
// unacknowledged tiles reclaimed and the run completes on the survivors —
// host-only in the worst case — reporting the degradation in Stats.
func ComputeCtx(ctx context.Context, a, b, c *matrix.Dense, cfg RealConfig) (Stats, error) {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows {
		panic("offload: Compute dimension mismatch")
	}
	cfg = cfg.withDefaults(c.Rows, c.Cols)
	if c.Rows == 0 || c.Cols == 0 || a.Cols == 0 {
		// Empty update: nothing to do, and PlanTiles would degenerate to a
		// 0x0 grid (or tiles of a 0-deep product). Report it explicitly.
		return Stats{}, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	mRuns.Load().Inc()
	plan := PlanTiles(c.Rows, c.Cols, cfg.Mt, cfg.Nt)
	e := &engine{
		ctx: ctx, a: a, b: b, c: c, plan: plan, cfg: cfg,
		q:  newStealQueue(plan.NumTiles()),
		nt: plan.NumTiles(),
		in: fault.NewInjector(cfg.Fault),
	}
	e.owner = make([]atomic.Int32, e.nt)
	for i := range e.owner {
		e.owner[i].Store(tileFree)
	}
	e.beat = make([]atomic.Int64, cfg.CardWorkers)
	e.dead = make([]atomic.Bool, cfg.CardWorkers)
	e.released = make([]atomic.Bool, cfg.CardWorkers)
	e.allDone = make(chan struct{})
	e.drained = make(chan struct{})
	e.live.Store(int32(cfg.CardWorkers + cfg.HostWorkers))

	now := time.Now().UnixNano()
	for w := 0; w < cfg.CardWorkers; w++ {
		e.beat[w].Store(now)
		go e.runCard(w)
	}
	for h := 0; h < cfg.HostWorkers; h++ {
		go e.runHost(hostIDBase + int32(h))
	}
	monStop := make(chan struct{})
	var monWg sync.WaitGroup
	if cfg.StallTimeout > 0 && cfg.CardWorkers > 0 {
		monWg.Add(1)
		go func() {
			defer monWg.Done()
			e.monitor(monStop)
		}()
	}

	select {
	case <-e.allDone:
		<-e.drained // survivors exit promptly once every tile is committed
	case <-ctx.Done():
		<-e.drained // live workers finish their in-flight tile, then leave
	case <-e.drained:
		// Every worker exited or was declared dead before the grid was
		// done: the caller itself finishes host-side (host-only
		// degradation when all cards are lost and no host workers exist).
		e.callerDrain()
	}
	close(monStop)
	monWg.Wait()

	stats := Stats{
		CardTiles:      int(e.cardN.Load()),
		HostTiles:      int(e.hostN.Load()),
		ReclaimedTiles: int(e.reclaimedN.Load()),
		LostWorkers:    int(e.lostN.Load()),
		Degraded:       e.degraded.Load(),
	}
	e.perrMu.Lock()
	perr := e.perr
	e.perrMu.Unlock()
	if perr != nil {
		return stats, perr
	}
	if int(e.committed.Load()) != e.nt {
		return stats, ctx.Err()
	}
	return stats, nil
}

// stopNow reports whether claiming must stop (cancellation or contained
// panic elsewhere).
func (e *engine) stopNow() bool {
	return e.aborted.Load() || e.ctx.Err() != nil
}

// panicked contains a worker panic: record it, stop the region.
func (e *engine) panicked(worker int, v any) {
	e.aborted.Store(true)
	e.perrMu.Lock()
	if e.perr == nil {
		e.perr = &pool.PanicError{Worker: worker, Value: v, Stack: string(debug.Stack())}
	}
	e.perrMu.Unlock()
}

// tileCommitted advances the done count, closing allDone on the last tile.
func (e *engine) tileCommitted() {
	if int(e.committed.Add(1)) == e.nt {
		e.doneO.Do(func() { close(e.allDone) })
	}
}

// releaseCard releases card worker w's live slot exactly once (self-exit
// or monitor declaration, whichever comes first).
func (e *engine) releaseCard(w int) {
	if e.released[w].Swap(true) {
		return
	}
	e.releaseLive()
}

func (e *engine) releaseLive() {
	if e.live.Add(-1) == 0 {
		e.drainO.Do(func() { close(e.drained) })
	}
}

// runCard is one coprocessor card worker: steal from the front, pack,
// multiply into a private scratch tile, and commit the result under the
// tile's ownership CAS so a reclaimed tile is never written twice.
func (e *engine) runCard(w int) {
	defer e.releaseCard(w)
	defer func() {
		if v := recover(); v != nil {
			e.panicked(w, v)
		}
	}()
	rec := obsTrace.Load()
	claims := 0
	for {
		if e.stopNow() || e.dead[w].Load() {
			return
		}
		idx, ok := e.q.take(true)
		if !ok {
			if int(e.committed.Load()) == e.nt {
				return
			}
			e.beat[w].Store(time.Now().UnixNano())
			time.Sleep(200 * time.Microsecond)
			continue
		}
		e.owner[idx].Store(int32(w))
		r0, c0, rows, cols := e.plan.Tile(idx)
		// Snapshot the destination before any stall point; after this,
		// the worker touches only private data until the commit CAS, so a
		// zombie never races a peer that recomputed its reclaimed tile.
		cv := e.c.View(r0, c0, rows, cols)
		scratch := cv.Clone()
		// Post-snapshot heartbeat: the monitor's staleness read of this
		// store is what orders the snapshot before any reclaim.
		e.beat[w].Store(time.Now().UnixNano())
		if e.in.CrashAt(w, claims) {
			return // injected card death: the tile is reclaimed by the monitor
		}
		if d, ok := e.in.StallAt(w, claims); ok {
			time.Sleep(d)
		}
		claims++
		if e.dead[w].Load() {
			return // declared lost while wedged: discard, never commit
		}
		if h := testHookCardTile; h != nil {
			h(w, idx)
		}
		var t0 float64
		if rec != nil {
			t0 = rec.Start()
		}
		av := e.a.View(r0, 0, rows, e.a.Cols)
		bv := e.b.View(0, c0, e.b.Rows, cols)
		pa := pack.PackA(av, pack.DefaultTileM)
		pb := pack.PackB(bv)
		pack.Gemm(pa, pb, scratch, 1)
		if e.owner[idx].CompareAndSwap(int32(w), tileDone) {
			cv.CopyFrom(scratch)
			e.cardN.Add(1)
			if rec != nil {
				rec.Since(w, "offload.card_tile", idx, t0)
			}
			e.tileCommitted()
		}
		e.beat[w].Store(time.Now().UnixNano())
	}
}

// runHost is one host worker: steal from the back, plain DGEMM straight
// into C. Host workers are in-process and not monitored.
func (e *engine) runHost(id int32) {
	defer e.releaseLive()
	defer func() {
		if v := recover(); v != nil {
			e.panicked(int(id), v)
		}
	}()
	for {
		if e.stopNow() {
			return
		}
		idx, ok := e.q.take(false)
		if !ok {
			if int(e.committed.Load()) == e.nt {
				return
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		e.runHostTile(id, idx)
	}
}

// runHostTile executes tile idx with the host path and commits it.
func (e *engine) runHostTile(id int32, idx int) {
	rec := obsTrace.Load()
	var t0 float64
	if rec != nil {
		t0 = rec.Start()
	}
	r0, c0, rows, cols := e.plan.Tile(idx)
	e.owner[idx].Store(id)
	av := e.a.View(r0, 0, rows, e.a.Cols)
	bv := e.b.View(0, c0, e.b.Rows, cols)
	cv := e.c.View(r0, c0, rows, cols)
	blas.Dgemm(false, false, 1, av, bv, 1, cv)
	e.owner[idx].Store(tileDone)
	e.hostN.Add(1)
	if rec != nil {
		rec.Since(int(e.cfg.CardWorkers)+int(id-hostIDBase)%64, "offload.host_tile", idx, t0)
	}
	e.tileCommitted()
}

// callerDrain finishes remaining tiles on the calling goroutine with the
// host path, waiting on the monitor to reclaim tiles still owned by lost
// workers. Entered only when every worker goroutine is gone.
func (e *engine) callerDrain() {
	for int(e.committed.Load()) != e.nt {
		if e.stopNow() {
			return
		}
		idx, ok := e.q.take(false)
		if !ok {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		func() {
			defer func() {
				if v := recover(); v != nil {
					e.panicked(int(callerID), v)
				}
			}()
			e.runHostTile(callerID, idx)
		}()
	}
}

// monitor is the straggler watchdog: a card worker silent for longer than
// StallTimeout is declared lost — its live slot is released, its
// unacknowledged tiles go back into the steal queue, and the run is
// marked degraded. Dead workers are re-swept every tick so a tile claimed
// in the instant before death cannot be orphaned.
func (e *engine) monitor(stop chan struct{}) {
	interval := e.cfg.StallTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			now := time.Now().UnixNano()
			for w := range e.beat {
				if e.dead[w].Load() {
					e.reclaimFrom(w)
					continue
				}
				if now-e.beat[w].Load() > int64(e.cfg.StallTimeout) {
					e.declareDead(w)
				}
			}
		}
	}
}

// declareDead marks card worker w lost and reclaims its tiles.
func (e *engine) declareDead(w int) {
	if e.dead[w].Swap(true) {
		return
	}
	if e.lostN.Add(1) == 1 {
		mDegradedRuns.Load().Inc()
	}
	e.degraded.Store(true)
	mLost.Load().Inc()
	e.reclaimFrom(w)
	e.releaseCard(w)
}

// reclaimFrom returns every tile still owned by (dead) worker w to the
// steal queue.
func (e *engine) reclaimFrom(w int) {
	for idx := range e.owner {
		if e.owner[idx].CompareAndSwap(int32(w), tileFree) {
			e.q.push(idx)
			e.reclaimedN.Add(1)
			mReclaimed.Load().Inc()
		}
	}
}
