package offload

import (
	"sync"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/pack"
)

// RealConfig configures the functional offload engine.
type RealConfig struct {
	// Mt, Nt are the nominal tile dimensions (0 -> 64).
	Mt, Nt int
	// CardWorkers emulate coprocessor cards: goroutines that consume
	// tiles from the top-left, packing operands into the Knights
	// Corner-friendly layout first, exactly like the real offload path.
	CardWorkers int
	// HostWorkers consume tiles from the bottom-right with plain DGEMM.
	HostWorkers int
}

func (c RealConfig) withDefaults() RealConfig {
	if c.Mt < 1 {
		c.Mt = 64
	}
	if c.Nt < 1 {
		c.Nt = 64
	}
	if c.CardWorkers < 0 {
		c.CardWorkers = 0
	}
	if c.HostWorkers < 0 {
		c.HostWorkers = 0
	}
	if c.CardWorkers+c.HostWorkers == 0 {
		c.CardWorkers = 1
	}
	return c
}

// Stats reports how the tile grid was split by the work-stealing loop.
type Stats struct {
	CardTiles, HostTiles int
}

// stealQueue hands out tile indices from both ends of [0, n).
type stealQueue struct {
	mu         sync.Mutex
	head, tail int // head = next front index, tail = next back index
}

func newStealQueue(n int) *stealQueue { return &stealQueue{head: 0, tail: n - 1} }

// front claims the next tile from the top-left; ok=false when exhausted.
func (q *stealQueue) front() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head > q.tail {
		return 0, false
	}
	i := q.head
	q.head++
	return i, true
}

// back claims the next tile from the bottom-right.
func (q *stealQueue) back() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head > q.tail {
		return 0, false
	}
	i := q.tail
	q.tail--
	return i, true
}

// Compute performs C += A·B (A: M×K, B: K×N, C: M×N) using the offload
// work-stealing schedule: card workers take tiles in column-major order
// from the front of the grid, host workers from the back, one tile at a
// time, until the grid is exhausted. Card workers pack their operands into
// the tiled Knights Corner layout before multiplying — the same data path
// as the real offload engine — while host workers run plain DGEMM.
// The result is bitwise independent of the worker split because tiles are
// disjoint regions of C.
func Compute(a, b, c *matrix.Dense, cfg RealConfig) Stats {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows {
		panic("offload: Compute dimension mismatch")
	}
	cfg = cfg.withDefaults()
	plan := PlanTiles(c.Rows, c.Cols, cfg.Mt, cfg.Nt)
	q := newStealQueue(plan.NumTiles())

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stats Stats
	)

	runTile := func(idx int, card bool) {
		r0, c0, rows, cols := plan.Tile(idx)
		av := a.View(r0, 0, rows, a.Cols)
		bv := b.View(0, c0, b.Rows, cols)
		cv := c.View(r0, c0, rows, cols)
		if card {
			// Host packs, card multiplies from the packed layout.
			pa := pack.PackA(av, pack.DefaultTileM)
			pb := pack.PackB(bv)
			pack.Gemm(pa, pb, cv, 1)
		} else {
			blas.Dgemm(false, false, 1, av, bv, 1, cv)
		}
		mu.Lock()
		if card {
			stats.CardTiles++
		} else {
			stats.HostTiles++
		}
		mu.Unlock()
	}

	for w := 0; w < cfg.CardWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, ok := q.front()
				if !ok {
					return
				}
				runTile(idx, true)
			}
		}()
	}
	for w := 0; w < cfg.HostWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, ok := q.back()
				if !ok {
					return
				}
				runTile(idx, false)
			}
		}()
	}
	wg.Wait()
	return stats
}
