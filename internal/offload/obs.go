package offload

import (
	"sync/atomic"

	"phihpl/internal/metrics"
	"phihpl/internal/trace"
)

// Observability hooks for the real offload engine. All sinks default to
// nil: an uninstrumented ComputeCtx pays one atomic pointer load per
// worker plus nil-safe counter calls on the (rare) degradation events.
var (
	obsTrace      atomic.Pointer[trace.Recorder]
	mRuns         atomic.Pointer[metrics.Counter]
	mReclaimed    atomic.Pointer[metrics.Counter]
	mLost         atomic.Pointer[metrics.Counter]
	mDegradedRuns atomic.Pointer[metrics.Counter]
)

// SetObservability attaches a span recorder and a metrics registry to the
// offload engine. Either may be nil to disable that side.
//
// Spans (iter = tile index): "offload.card_tile" on the card worker's lane
// covers pack+multiply+commit of one tile on the card path;
// "offload.host_tile" on a lane above the card lanes covers one host-path
// tile — together they redraw the paper's host/card split as a timeline.
//
// Counters: offload.runs (ComputeCtx invocations that scheduled tiles),
// offload.reclaimed_tiles (tiles taken back from lost card workers),
// offload.lost_workers (card workers declared dead by the straggler
// monitor), offload.degraded_runs (runs that lost at least one card
// worker).
func SetObservability(rec *trace.Recorder, reg *metrics.Registry) {
	obsTrace.Store(rec)
	mRuns.Store(reg.Counter("offload.runs"))
	mReclaimed.Store(reg.Counter("offload.reclaimed_tiles"))
	mLost.Store(reg.Counter("offload.lost_workers"))
	mDegradedRuns.Store(reg.Counter("offload.degraded_runs"))
}
