// Package stream implements the STREAM memory-bandwidth kernels (McCalpin)
// referenced in Table I of the paper: Copy, Scale, Add and Triad, in
// serial and goroutine-parallel forms, together with byte-traffic
// accounting and a model hook that converts an architecture's published
// STREAM bandwidth into expected kernel times.
//
// The machine models use the published numbers (150 GB/s Knights Corner,
// 76 GB/s Sandy Bridge EP); the real kernels exist so the repository's
// bandwidth assumptions are runnable and testable on the host.
package stream

import (
	"sync"

	"phihpl/internal/machine"
)

// Op identifies a STREAM kernel.
type Op int

const (
	// CopyOp: c = a.
	CopyOp Op = iota
	// ScaleOp: b = scalar * c.
	ScaleOp
	// AddOp: c = a + b.
	AddOp
	// TriadOp: a = b + scalar * c.
	TriadOp
)

func (o Op) String() string {
	switch o {
	case CopyOp:
		return "copy"
	case ScaleOp:
		return "scale"
	case AddOp:
		return "add"
	default:
		return "triad"
	}
}

// Copy performs dst = src.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("stream: length mismatch")
	}
	copy(dst, src)
}

// Scale performs dst = scalar * src.
func Scale(dst, src []float64, scalar float64) {
	if len(dst) != len(src) {
		panic("stream: length mismatch")
	}
	for i, v := range src {
		dst[i] = scalar * v
	}
}

// Add performs dst = a + b.
func Add(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("stream: length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Triad performs dst = a + scalar * b — the kernel whose bandwidth Table I
// quotes.
func Triad(dst, a, b []float64, scalar float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("stream: length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + scalar*b[i]
	}
}

// TriadParallel runs Triad with the index space split over `workers`
// goroutines.
func TriadParallel(dst, a, b []float64, scalar float64, workers int) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("stream: length mismatch")
	}
	n := len(dst)
	if workers <= 1 || n < 4*workers {
		Triad(dst, a, b, scalar)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			Triad(dst[lo:hi], a[lo:hi], b[lo:hi], scalar)
		}(lo, hi)
	}
	wg.Wait()
}

// BytesMoved returns the memory traffic of one kernel invocation on
// length-n operands, per the STREAM counting rules (each element read or
// written once, 8 bytes each).
func BytesMoved(op Op, n int) float64 {
	switch op {
	case CopyOp, ScaleOp:
		return 16 * float64(n)
	default: // Add, Triad: two reads + one write
		return 24 * float64(n)
	}
}

// ExpectedTime returns the model time of one kernel invocation on an
// architecture with the given published STREAM bandwidth.
func ExpectedTime(arch *machine.Arch, op Op, n int) float64 {
	if arch.StreamBW <= 0 || n <= 0 {
		return 0
	}
	return BytesMoved(op, n) / arch.StreamBW
}
