package stream

import (
	"testing"

	"phihpl/internal/machine"
	"phihpl/internal/matrix"
)

func TestKernelSemantics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	dst := make([]float64, 3)

	Copy(dst, a)
	if dst[2] != 3 {
		t.Error("copy")
	}
	Scale(dst, a, 2)
	if dst[1] != 4 {
		t.Error("scale")
	}
	Add(dst, a, b)
	if dst[0] != 11 {
		t.Error("add")
	}
	Triad(dst, a, b, 0.5)
	if dst[2] != 3+15 {
		t.Error("triad")
	}
}

func TestTriadParallelMatchesSerial(t *testing.T) {
	n := 10007
	a := matrix.RandomVector(n, 1)
	b := matrix.RandomVector(n, 2)
	want := make([]float64, n)
	Triad(want, a, b, 1.5)
	for _, w := range []int{1, 2, 4, 8} {
		got := make([]float64, n)
		TriadParallel(got, a, b, 1.5, w)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: mismatch at %d", w, i)
			}
		}
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"copy":  func() { Copy(make([]float64, 2), make([]float64, 3)) },
		"scale": func() { Scale(make([]float64, 2), make([]float64, 3), 1) },
		"add":   func() { Add(make([]float64, 2), make([]float64, 2), make([]float64, 3)) },
		"triad": func() { Triad(make([]float64, 2), make([]float64, 3), make([]float64, 2), 1) },
		"par":   func() { TriadParallel(make([]float64, 2), make([]float64, 3), make([]float64, 2), 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBytesMoved(t *testing.T) {
	if BytesMoved(CopyOp, 100) != 1600 || BytesMoved(TriadOp, 100) != 2400 {
		t.Error("byte accounting wrong")
	}
}

func TestExpectedTime(t *testing.T) {
	knc := machine.KnightsCorner()
	snb := machine.SandyBridgeEP()
	// Knights Corner has ~2x the host's bandwidth: triad should take
	// proportionally less model time.
	tk := ExpectedTime(knc, TriadOp, 1<<20)
	ts := ExpectedTime(snb, TriadOp, 1<<20)
	if !(tk < ts) {
		t.Errorf("KNC triad %v should beat SNB %v", tk, ts)
	}
	ratio := ts / tk
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("bandwidth ratio = %v, want ~150/76", ratio)
	}
	if ExpectedTime(knc, TriadOp, 0) != 0 {
		t.Error("degenerate")
	}
}

func TestOpString(t *testing.T) {
	if CopyOp.String() != "copy" || ScaleOp.String() != "scale" ||
		AddOp.String() != "add" || TriadOp.String() != "triad" {
		t.Error("op names")
	}
}
