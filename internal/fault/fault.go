// Package fault provides a deterministic, seeded fault plan for chaos
// testing the distributed Linpack stack. A Plan describes which faults to
// inject — message-level faults (drop, delay, duplication, payload
// corruption) decided per transmission by a keyed hash of the plan seed,
// and rank-level one-shot events (crash, stall, silent block scrub) fired
// at a chosen iteration — and an Injector applies it. Because every
// message-level decision is a pure function of (seed, src, dst, seq,
// attempt) and every rank event is an explicit (rank, iteration) pair,
// a chaos run is exactly reproducible regardless of goroutine scheduling.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedCrash marks an error produced by a planned rank crash; the
// fault-tolerant drivers treat it as a restartable fault.
var ErrInjectedCrash = errors.New("fault: injected rank crash")

// CrashError reports which rank crashed at which iteration.
type CrashError struct {
	Rank, Iter int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: rank %d crashed at iteration %d (injected)", e.Rank, e.Iter)
}

// Is makes errors.Is(err, ErrInjectedCrash) succeed.
func (e *CrashError) Is(target error) bool { return target == ErrInjectedCrash }

// RankEvent is a one-shot fault pinned to (rank, iteration).
type RankEvent struct {
	Rank, Iter int
}

// StallEvent pauses a rank at an iteration for Dur before it continues.
type StallEvent struct {
	Rank, Iter int
	Dur        time.Duration
}

// Plan is a complete, serializable description of the faults to inject.
// The zero Plan injects nothing.
type Plan struct {
	// Seed keys every probabilistic decision.
	Seed uint64
	// Drop is the per-transmission probability a data packet is lost.
	Drop float64
	// Dup is the per-transmission probability a packet is delivered twice.
	Dup float64
	// Delay is the per-transmission probability a packet is held for
	// DelayFor before delivery.
	Delay    float64
	DelayFor time.Duration
	// Corrupt is the per-transmission probability the payload is
	// bit-flipped in flight (detected by the transport checksum).
	Corrupt float64
	// Crashes kill the rank's goroutine at the given iteration (one-shot:
	// a respawned rank does not crash again).
	Crashes []RankEvent
	// Stalls pause the rank at the given iteration (one-shot).
	Stalls []StallEvent
	// Scrubs silently corrupt one owned trailing block of the rank at the
	// given iteration — invisible to the transport, caught only by the
	// ABFT checksum verification (one-shot).
	Scrubs []RankEvent
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return p.Drop == 0 && p.Dup == 0 && p.Delay == 0 && p.Corrupt == 0 &&
		len(p.Crashes) == 0 && len(p.Stalls) == 0 && len(p.Scrubs) == 0
}

// String renders the plan in the spec syntax accepted by Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.Drop))
	}
	if p.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", p.Dup))
	}
	if p.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g:%s", p.Delay, p.DelayFor))
	}
	if p.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", p.Corrupt))
	}
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", c.Rank, c.Iter))
	}
	for _, s := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall=%d@%d:%s", s.Rank, s.Iter, s.Dur))
	}
	for _, s := range p.Scrubs {
		parts = append(parts, fmt.Sprintf("scrub=%d@%d", s.Rank, s.Iter))
	}
	return strings.Join(parts, ";")
}

// Parse builds a Plan from a semicolon-separated spec, e.g.
//
//	"seed=7;drop=0.02;delay=0.01:2ms;dup=0.01;corrupt=0.005;crash=3@2;stall=1@4:300ms;scrub=2@3"
//
// Probabilities are in [0,1); crash/stall/scrub take rank@iteration, stall
// and delay take a trailing :duration. An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("fault: malformed field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			p.Drop, err = parseProb(val)
		case "dup":
			p.Dup, err = parseProb(val)
		case "corrupt":
			p.Corrupt, err = parseProb(val)
		case "delay":
			prob, durStr, _ := strings.Cut(val, ":")
			if p.Delay, err = parseProb(prob); err == nil {
				p.DelayFor = time.Millisecond
				if durStr != "" {
					p.DelayFor, err = time.ParseDuration(durStr)
				}
				if err == nil && p.Delay == 0 {
					// A zero-probability delay never fires; drop its
					// duration so String/Parse round-trip exactly.
					p.DelayFor = 0
				}
			}
		case "crash":
			var ev RankEvent
			if ev, err = parseRankAt(val); err == nil {
				p.Crashes = append(p.Crashes, ev)
			}
		case "scrub":
			var ev RankEvent
			if ev, err = parseRankAt(val); err == nil {
				p.Scrubs = append(p.Scrubs, ev)
			}
		case "stall":
			at, durStr, _ := strings.Cut(val, ":")
			var ev RankEvent
			if ev, err = parseRankAt(at); err == nil {
				dur := 500 * time.Millisecond
				if durStr != "" {
					dur, err = time.ParseDuration(durStr)
				}
				p.Stalls = append(p.Stalls, StallEvent{Rank: ev.Rank, Iter: ev.Iter, Dur: dur})
			}
		default:
			return nil, fmt.Errorf("fault: unknown fault kind %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad field %q: %v", field, err)
		}
	}
	// Stable: same-iteration crashes keep their spec order, so
	// Parse(String(p)) round-trips to an identical plan.
	sort.SliceStable(p.Crashes, func(i, j int) bool { return p.Crashes[i].Iter < p.Crashes[j].Iter })
	return p, nil
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("probability %g outside [0,1)", v)
	}
	return v, nil
}

func parseRankAt(s string) (RankEvent, error) {
	rs, is, ok := strings.Cut(s, "@")
	if !ok {
		return RankEvent{}, fmt.Errorf("want rank@iteration, got %q", s)
	}
	r, err := strconv.Atoi(rs)
	if err != nil {
		return RankEvent{}, err
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return RankEvent{}, err
	}
	if r < 0 || i < 0 {
		return RankEvent{}, fmt.Errorf("rank and iteration must be non-negative: %q", s)
	}
	return RankEvent{Rank: r, Iter: i}, nil
}

// Action is the injector's verdict for one transmission attempt.
type Action struct {
	Drop    bool
	Dup     bool
	Corrupt bool
	Delay   time.Duration
}

// Stats counts injected faults (atomically updated, safe to read after a
// run completes).
type Stats struct {
	Drops, Dups, Delays, Corrupts uint64
	Crashes, Stalls, Scrubs       uint64
}

// Injector applies a Plan. One-shot rank events are tracked across world
// respawns, so an Injector must live as long as the whole fault-tolerant
// attempt loop, not a single attempt.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	fired map[string]bool // one-shot events already delivered

	drops, dups, delays, corrupts atomic.Uint64
	crashes, stalls, scrubs       atomic.Uint64
}

// NewInjector returns an injector for the plan; a nil plan injects nothing.
func NewInjector(p *Plan) *Injector {
	in := &Injector{fired: make(map[string]bool)}
	if p != nil {
		in.plan = *p
	}
	return in
}

// Plan returns a copy of the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// OnTransmit decides the fate of transmission `attempt` of packet `seq` on
// link src→dst. The decision is a pure function of the plan seed and the
// identifiers, so the fault sequence is reproducible run to run.
func (in *Injector) OnTransmit(src, dst int, seq uint64, attempt int) Action {
	var a Action
	if in == nil {
		return a
	}
	key := in.plan.Seed ^ 0x9e3779b97f4a7c15 ^
		uint64(src)<<48 ^ uint64(dst)<<32 ^ seq<<8 ^ uint64(attempt)
	if in.plan.Drop > 0 && hash01(key, 1) < in.plan.Drop {
		a.Drop = true
		in.drops.Add(1)
		return a
	}
	if in.plan.Corrupt > 0 && hash01(key, 2) < in.plan.Corrupt {
		a.Corrupt = true
		in.corrupts.Add(1)
	}
	if in.plan.Dup > 0 && hash01(key, 3) < in.plan.Dup {
		a.Dup = true
		in.dups.Add(1)
	}
	if in.plan.Delay > 0 && hash01(key, 4) < in.plan.Delay {
		a.Delay = in.plan.DelayFor
		in.delays.Add(1)
	}
	return a
}

// CrashAt reports whether rank must crash at iter; fires at most once per
// (rank, iter) event across the injector's lifetime.
func (in *Injector) CrashAt(rank, iter int) bool {
	if in == nil {
		return false
	}
	for _, ev := range in.plan.Crashes {
		if ev.Rank == rank && ev.Iter == iter && in.fireOnce("crash", rank, iter) {
			in.crashes.Add(1)
			return true
		}
	}
	return false
}

// StallAt returns the stall duration for (rank, iter), once.
func (in *Injector) StallAt(rank, iter int) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	for _, ev := range in.plan.Stalls {
		if ev.Rank == rank && ev.Iter == iter && in.fireOnce("stall", rank, iter) {
			in.stalls.Add(1)
			return ev.Dur, true
		}
	}
	return 0, false
}

// ScrubAt reports whether rank must silently corrupt an owned block at
// iter, once.
func (in *Injector) ScrubAt(rank, iter int) bool {
	if in == nil {
		return false
	}
	for _, ev := range in.plan.Scrubs {
		if ev.Rank == rank && ev.Iter == iter && in.fireOnce("scrub", rank, iter) {
			in.scrubs.Add(1)
			return true
		}
	}
	return false
}

func (in *Injector) fireOnce(kind string, rank, iter int) bool {
	key := fmt.Sprintf("%s/%d/%d", kind, rank, iter)
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired[key] {
		return false
	}
	in.fired[key] = true
	return true
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Drops: in.drops.Load(), Dups: in.dups.Load(),
		Delays: in.delays.Load(), Corrupts: in.corrupts.Load(),
		Crashes: in.crashes.Load(), Stalls: in.stalls.Load(),
		Scrubs: in.scrubs.Load(),
	}
}

// hash01 maps (key, lane) to [0,1) with a splitmix64 finalizer.
func hash01(key uint64, lane uint64) float64 {
	z := key + lane*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
