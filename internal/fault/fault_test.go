package fault

import (
	"errors"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7;drop=0.02;dup=0.01;delay=0.05:2ms;corrupt=0.005;crash=3@2;stall=1@4:300ms;scrub=2@3"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Drop != 0.02 || p.Dup != 0.01 || p.Corrupt != 0.005 {
		t.Errorf("probabilities wrong: %+v", p)
	}
	if p.Delay != 0.05 || p.DelayFor != 2*time.Millisecond {
		t.Errorf("delay wrong: %+v", p)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (RankEvent{3, 2}) {
		t.Errorf("crash wrong: %+v", p.Crashes)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (StallEvent{1, 4, 300 * time.Millisecond}) {
		t.Errorf("stall wrong: %+v", p.Stalls)
	}
	if len(p.Scrubs) != 1 || p.Scrubs[0] != (RankEvent{2, 3}) {
		t.Errorf("scrub wrong: %+v", p.Scrubs)
	}
	// Re-parse the rendered form: must be equivalent.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Errorf("round trip: %q != %q", p2.String(), p.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"drop", "drop=x", "drop=1.5", "drop=-0.1",
		"crash=3", "crash=a@b", "crash=-1@2",
		"wibble=1", "stall=1@2:zz",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Error("empty spec should give empty plan")
	}
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan is empty")
	}
}

func TestOnTransmitDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, Drop: 0.3, Dup: 0.1, Corrupt: 0.1}
	a, b := NewInjector(p), NewInjector(p)
	for seq := uint64(0); seq < 2000; seq++ {
		if a.OnTransmit(1, 2, seq, 0) != b.OnTransmit(1, 2, seq, 0) {
			t.Fatalf("decision for seq %d not deterministic", seq)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Drops == 0 {
		t.Error("drop rate 0.3 over 2000 transmissions should drop some packets")
	}
}

func TestOnTransmitRatesApproximate(t *testing.T) {
	in := NewInjector(&Plan{Seed: 9, Drop: 0.2})
	n := 20000
	for seq := 0; seq < n; seq++ {
		in.OnTransmit(0, 1, uint64(seq), 0)
	}
	got := float64(in.Stats().Drops) / float64(n)
	if got < 0.17 || got > 0.23 {
		t.Errorf("drop rate %.3f far from 0.2", got)
	}
}

func TestOnTransmitAttemptIndependence(t *testing.T) {
	// A dropped first attempt must not doom every retransmission: the
	// attempt number participates in the hash.
	in := NewInjector(&Plan{Seed: 3, Drop: 0.5})
	for seq := uint64(0); seq < 64; seq++ {
		if !in.OnTransmit(0, 1, seq, 0).Drop {
			continue
		}
		survived := false
		for attempt := 1; attempt < 20; attempt++ {
			if !in.OnTransmit(0, 1, seq, attempt).Drop {
				survived = true
				break
			}
		}
		if !survived {
			t.Fatalf("seq %d dropped on 20 consecutive attempts at p=0.5", seq)
		}
	}
}

func TestOneShotEvents(t *testing.T) {
	p := &Plan{
		Crashes: []RankEvent{{Rank: 2, Iter: 3}},
		Stalls:  []StallEvent{{Rank: 1, Iter: 0, Dur: time.Millisecond}},
		Scrubs:  []RankEvent{{Rank: 0, Iter: 5}},
	}
	in := NewInjector(p)
	if in.CrashAt(2, 2) || in.CrashAt(1, 3) {
		t.Error("crash fired for wrong rank/iter")
	}
	if !in.CrashAt(2, 3) {
		t.Error("crash did not fire")
	}
	if in.CrashAt(2, 3) {
		t.Error("crash fired twice (must be one-shot across respawns)")
	}
	if d, ok := in.StallAt(1, 0); !ok || d != time.Millisecond {
		t.Error("stall did not fire")
	}
	if _, ok := in.StallAt(1, 0); ok {
		t.Error("stall fired twice")
	}
	if !in.ScrubAt(0, 5) || in.ScrubAt(0, 5) {
		t.Error("scrub one-shot broken")
	}
	s := in.Stats()
	if s.Crashes != 1 || s.Stalls != 1 || s.Scrubs != 1 {
		t.Errorf("event stats wrong: %+v", s)
	}
}

func TestCrashErrorIs(t *testing.T) {
	err := error(&CrashError{Rank: 3, Iter: 2})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Error("CrashError must match ErrInjectedCrash")
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Rank != 3 {
		t.Error("errors.As should recover the crash details")
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if a := in.OnTransmit(0, 1, 0, 0); a.Drop || a.Dup || a.Corrupt || a.Delay != 0 {
		t.Error("nil injector must be transparent")
	}
	if in.CrashAt(0, 0) || in.ScrubAt(0, 0) {
		t.Error("nil injector fires events")
	}
	if _, ok := in.StallAt(0, 0); ok {
		t.Error("nil injector stalls")
	}
	if in.Stats() != (Stats{}) {
		t.Error("nil injector stats")
	}
}
