package fault

import (
	"reflect"
	"testing"
)

// FuzzParseFaultPlan drives Parse with arbitrary specs: it must never
// panic, and every spec it accepts must round-trip — Parse(String(p))
// yields a plan identical to p, and String is a fixed point.
func FuzzParseFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=7",
		"seed=7;drop=0.02;dup=0.01;delay=0.05:2ms;corrupt=0.005;crash=3@2;stall=1@4:300ms;scrub=2@3",
		"crash=1@2;crash=0@2;crash=2@0", // same-iteration crashes: stable order
		"stall=0@0:400ms;stall=0@0:1ms",
		"drop=0.999999",
		"delay=0.5",
		"seed=18446744073709551615",
		"crash=1@2;;scrub=0@0",
		"drop=1.0",     // rejected: probability outside [0,1)
		"crash=1",      // rejected: missing @iteration
		"stall=-1@0",   // rejected: negative rank
		"bogus=1",      // rejected: unknown kind
		"drop",         // rejected: no value
		"=;=@:;@@@@@",  // garbage
		"crash=1@2:3s", // trailing junk on a crash
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec) // must not panic on any input
		if err != nil {
			return // rejected specs only need to fail cleanly
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q) accepted but its String %q does not re-parse: %v", spec, s, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip of %q changed the plan:\n first: %+v\nsecond: %+v", spec, p, p2)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("String is not a fixed point for %q: %q != %q", spec, s2, s)
		}
		// A valid plan must always build a working injector.
		_ = NewInjector(p)
	})
}
