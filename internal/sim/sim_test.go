package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(2.0, func() { order = append(order, 2) })
	e.At(1.0, func() { order = append(order, 1) })
	e.At(3.0, func() { order = append(order, 3) })
	end := e.Run()
	if end != 3.0 {
		t.Errorf("end = %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of FIFO order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.At(1, func() {
		times = append(times, e.Now())
		e.After(0.5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 1.5 {
		t.Errorf("times = %v", times)
	}
}

func TestEnginePastClamps(t *testing.T) {
	var e Engine
	fired := false
	e.At(5, func() {
		e.At(1, func() { fired = true }) // in the past; clamps to now=5
	})
	end := e.Run()
	if !fired || end != 5 {
		t.Errorf("fired=%v end=%v", fired, end)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++ })
	e.At(10, func() { count++ })
	e.RunUntil(5)
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	if e.Now() != 5 {
		t.Errorf("now = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Reserve(0, 2)
	s2, e2 := r.Reserve(1, 3) // asked at t=1 but resource busy until 2
	if s1 != 0 || e1 != 2 {
		t.Errorf("first grant [%v,%v)", s1, e1)
	}
	if s2 != 2 || e2 != 5 {
		t.Errorf("second grant [%v,%v), want [2,5)", s2, e2)
	}
	if r.TotalBusy != 5 {
		t.Errorf("TotalBusy = %v, want 5", r.TotalBusy)
	}
	if u := r.Utilization(10); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Errorf("utilization(0) = %v, want 0", u)
	}
	if u := r.Utilization(1); u != 1 {
		t.Errorf("utilization clamps to 1, got %v", u)
	}
}

func TestResourceIdleGap(t *testing.T) {
	var r Resource
	r.Reserve(0, 1)
	s, e := r.Reserve(5, 1) // resource idle from 1 to 5
	if s != 5 || e != 6 {
		t.Errorf("grant [%v,%v), want [5,6)", s, e)
	}
}

func TestWorkerPool(t *testing.T) {
	p := NewWorkerPool(3)
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	p.Assign(0, 0, 5)
	p.Assign(1, 0, 2)
	idx, ft := p.Earliest()
	if idx != 2 || ft != 0 {
		t.Errorf("earliest = %d@%v, want 2@0", idx, ft)
	}
	// Assign respects the earliest-start constraint.
	end := p.Assign(2, 4, 1)
	if end != 5 {
		t.Errorf("end = %v, want 5", end)
	}
	if got := p.MaxFree(); got != 5 {
		t.Errorf("MaxFree = %v, want 5", got)
	}
	after := p.BarrierAll(0.5)
	if after != 5.5 {
		t.Errorf("barrier time = %v, want 5.5", after)
	}
	for i, ft := range p.FreeAt {
		if ft != 5.5 {
			t.Errorf("worker %d free at %v after barrier", i, ft)
		}
	}
}

// Property: for any sequence of reservation requests, grants never overlap
// and are monotone.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct {
		T uint8
		D uint8
	}) bool {
		var r Resource
		lastEnd := 0.0
		for _, q := range reqs {
			at := float64(q.T)
			d := float64(q.D%16) + 0.5
			s, e := r.Reserve(at, d)
			if s < lastEnd || e != s+d || s < at {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the engine clock never moves backwards.
func TestEngineMonotoneClockProperty(t *testing.T) {
	f := func(ts []float32) bool {
		var e Engine
		last := math.Inf(-1)
		ok := true
		for _, tf := range ts {
			tt := math.Abs(float64(tf))
			e.At(tt, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
