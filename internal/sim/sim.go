// Package sim provides a small deterministic discrete-event simulation
// engine. It is the virtual-time substrate on which the schedulers of this
// repository (the native-Linpack DAG scheduler, the offload-DGEMM work
// stealing loop, the hybrid-HPL look-ahead pipelines) are replayed with task
// costs from the machine model instead of wall-clock time.
//
// The engine is intentionally minimal: a time-ordered event queue with a
// stable tie-break sequence number, so that two runs of the same program
// produce identical schedules. There is no wall clock and no randomness.
package sim

import "container/heap"

// event is a scheduled callback.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator with a virtual clock.
// The zero value is ready to use at time 0.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to Now; events at equal times fire in scheduling order.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Step fires the earliest event and advances the clock to its time.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue drains and returns the final time.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Resource models a serially-shared facility (a PCIe link, a memory
// controller, a lock). Reservations are granted FIFO in call order and the
// resource is busy for the requested duration. Reserve is analytic: it does
// not schedule events, it just returns the [start, end) interval the caller
// was granted, which the caller typically feeds back into Engine.At.
type Resource struct {
	// BusyUntil is the virtual time at which the resource next frees up.
	BusyUntil float64
	// TotalBusy accumulates granted service time (for utilization reports).
	TotalBusy float64
}

// Reserve grants the resource for duration d starting no earlier than t.
// It returns the granted start and end times.
func (r *Resource) Reserve(t, d float64) (start, end float64) {
	start = t
	if r.BusyUntil > start {
		start = r.BusyUntil
	}
	end = start + d
	r.BusyUntil = end
	r.TotalBusy += d
	return start, end
}

// Utilization returns the fraction of [0, horizon] the resource was busy.
func (r *Resource) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := r.TotalBusy / horizon
	if u > 1 {
		u = 1
	}
	return u
}

// WorkerPool tracks the next-free time of a set of identical virtual
// workers (cores or thread groups). It is the building block for the
// list-scheduling style simulations in internal/simlu.
type WorkerPool struct {
	FreeAt []float64
}

// NewWorkerPool returns a pool of n workers all free at time 0.
func NewWorkerPool(n int) *WorkerPool { return &WorkerPool{FreeAt: make([]float64, n)} }

// N returns the number of workers.
func (p *WorkerPool) N() int { return len(p.FreeAt) }

// Earliest returns the index and free-time of the worker that frees first.
func (p *WorkerPool) Earliest() (idx int, t float64) {
	idx, t = 0, p.FreeAt[0]
	for i, ft := range p.FreeAt {
		if ft < t {
			idx, t = i, ft
		}
	}
	return idx, t
}

// Assign runs a task of duration d on worker idx starting no earlier than
// earliest; it returns the completion time.
func (p *WorkerPool) Assign(idx int, earliest, d float64) float64 {
	start := p.FreeAt[idx]
	if earliest > start {
		start = earliest
	}
	p.FreeAt[idx] = start + d
	return p.FreeAt[idx]
}

// BarrierAll advances every worker to max(free-times)+overhead, modelling a
// global barrier, and returns the post-barrier time.
func (p *WorkerPool) BarrierAll(overhead float64) float64 {
	maxT := 0.0
	for _, ft := range p.FreeAt {
		if ft > maxT {
			maxT = ft
		}
	}
	maxT += overhead
	for i := range p.FreeAt {
		p.FreeAt[i] = maxT
	}
	return maxT
}

// MaxFree returns the latest free-time across workers (the makespan).
func (p *WorkerPool) MaxFree() float64 {
	maxT := 0.0
	for _, ft := range p.FreeAt {
		if ft > maxT {
			maxT = ft
		}
	}
	return maxT
}
