package machine

import (
	"math"
	"strings"
	"testing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestKnightsCornerTableI(t *testing.T) {
	k := KnightsCorner()
	if k.Cores() != 61 {
		t.Errorf("cores = %d, want 61", k.Cores())
	}
	if k.Threads() != 244 {
		t.Errorf("threads = %d, want 244", k.Threads())
	}
	if k.DPLanes() != 8 || k.SPLanes() != 16 {
		t.Errorf("lanes = %d/%d, want 8/16", k.DPLanes(), k.SPLanes())
	}
	// Table I: 1074 DP GFLOPS, 2148 SP GFLOPS.
	if !near(k.PeakDPGFLOPS(), 1074, 1.0) {
		t.Errorf("peak DP = %.1f, want ~1074", k.PeakDPGFLOPS())
	}
	if !near(k.PeakSPGFLOPS(), 2148, 2.0) {
		t.Errorf("peak SP = %.1f, want ~2148", k.PeakSPGFLOPS())
	}
	// 60-core compute peak used for native efficiency: 1056 GFLOPS.
	if !near(k.ComputePeakDPGFLOPS(), 1056, 0.1) {
		t.Errorf("compute peak DP = %.1f, want 1056", k.ComputePeakDPGFLOPS())
	}
	if k.L2Bytes != 512*1024 {
		t.Errorf("L2 = %d, want 512 KiB", k.L2Bytes)
	}
}

func TestSandyBridgeTableI(t *testing.T) {
	s := SandyBridgeEP()
	if s.Cores() != 16 || s.Threads() != 32 {
		t.Errorf("cores/threads = %d/%d, want 16/32", s.Cores(), s.Threads())
	}
	// Table I: 333 DP GFLOPS, 666 SP GFLOPS.
	if !near(s.PeakDPGFLOPS(), 333, 1.0) {
		t.Errorf("peak DP = %.1f, want ~333", s.PeakDPGFLOPS())
	}
	if !near(s.PeakSPGFLOPS(), 666, 2.0) {
		t.Errorf("peak SP = %.1f, want ~666", s.PeakSPGFLOPS())
	}
	if s.ComputePeakDPGFLOPS() != s.PeakDPGFLOPS() {
		t.Errorf("host reserves no cores")
	}
}

func TestPaperEfficiencyDenominators(t *testing.T) {
	k := KnightsCorner()
	// 944 GFLOPS DGEMM corresponds to 89.4% of the 60-core peak.
	eff := 944 / k.ComputePeakDPGFLOPS() * 100
	if !near(eff, 89.4, 0.2) {
		t.Errorf("944 GFLOPS => %.1f%%, want ~89.4%%", eff)
	}
	// 832 GFLOPS native Linpack corresponds to ~78.8%.
	eff = 832 / k.ComputePeakDPGFLOPS() * 100
	if !near(eff, 78.8, 0.3) {
		t.Errorf("832 GFLOPS => %.1f%%, want ~78.8%%", eff)
	}
	// 917 GFLOPS offload DGEMM is 85.4% of the full 61-core peak.
	eff = 917 / k.PeakDPGFLOPS() * 100
	if !near(eff, 85.4, 0.2) {
		t.Errorf("917 GFLOPS => %.1f%%, want ~85.4%%", eff)
	}
}

func TestNodePeaks(t *testing.T) {
	// Paper Section V-C: 1.4 TFLOPS with one card, 2.48 with two.
	n1 := HybridNode(1, 64)
	if !near(n1.PeakDPGFLOPS(), 1406, 3) {
		t.Errorf("1-card node peak = %.0f, want ~1406", n1.PeakDPGFLOPS())
	}
	n2 := HybridNode(2, 64)
	if !near(n2.PeakDPGFLOPS(), 2480, 5) {
		t.Errorf("2-card node peak = %.0f, want ~2480", n2.PeakDPGFLOPS())
	}
	if n1.MemBytes() != 64<<30 {
		t.Errorf("node mem = %d, want 64 GiB", n1.MemBytes())
	}
	if HybridNode(1, 0).MemBytes() != SandyBridgeEP().DRAMBytes {
		t.Errorf("zero hostMem should fall back to arch DRAM")
	}
}

func TestClusterPeak(t *testing.T) {
	c := NewCluster(10, 10, 1, 64)
	if c.Nodes() != 100 {
		t.Fatalf("nodes = %d, want 100", c.Nodes())
	}
	// 100 nodes * ~1.4 TF: Table III reports 107 TFLOPS at 76.1% =>
	// peak ~140.6 TF.
	if !near(c.PeakDPGFLOPS()/1000, 140.6, 0.5) {
		t.Errorf("cluster peak = %.1f TF, want ~140.6", c.PeakDPGFLOPS()/1000)
	}
	eff := 107000 / c.PeakDPGFLOPS() * 100
	if !near(eff, 76.1, 0.5) {
		t.Errorf("107 TF => %.1f%%, want ~76.1%%", eff)
	}
}

func TestRatioCardsToHost(t *testing.T) {
	// Section V-A: two cards deliver roughly six times the host flops.
	k := KnightsCorner()
	s := SandyBridgeEP()
	ratio := 2 * k.PeakDPGFLOPS() / s.PeakDPGFLOPS()
	if ratio < 6 || ratio > 7 {
		t.Errorf("2-card/host ratio = %.2f, want ~6.5", ratio)
	}
}

func TestString(t *testing.T) {
	s := KnightsCorner().String()
	if !strings.Contains(s, "Knights Corner") || !strings.Contains(s, "512-bit") {
		t.Errorf("String() = %q", s)
	}
}

func TestFlopsPerCycle(t *testing.T) {
	k := KnightsCorner()
	if k.DPFlopsPerCycle() != 16 {
		t.Errorf("KNC DP flops/cycle = %v, want 16", k.DPFlopsPerCycle())
	}
	s := SandyBridgeEP()
	if s.DPFlopsPerCycle() != 8 {
		t.Errorf("SNB DP flops/cycle = %v, want 8", s.DPFlopsPerCycle())
	}
}

func TestCyclesPerSecond(t *testing.T) {
	if KnightsCorner().CyclesPerSecond() != 1.1e9 {
		t.Errorf("KNC clock wrong")
	}
}
