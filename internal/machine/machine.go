// Package machine describes the hardware platforms of the paper's test-bed
// (Table I): the Intel Xeon E5-2670 "Sandy Bridge EP" host and the Intel
// Xeon Phi "Knights Corner" coprocessor, plus the node and cluster
// configurations built from them.
//
// All performance modelling in this repository is parameterized by these
// descriptions; nothing else hard-codes hardware constants. Peak rates are
// derived (cores × frequency × SIMD width × ops/cycle), and the tests assert
// that the derived numbers match the figures published in Table I of the
// paper (1074 DP GFLOPS for Knights Corner, 333 DP GFLOPS for the host).
package machine

import "fmt"

// Arch describes one processor architecture.
type Arch struct {
	Name    string
	Sockets int
	// CoresPerSocket counts physical cores per socket.
	CoresPerSocket int
	// ThreadsPerCore is the SMT (hyper-threading) degree.
	ThreadsPerCore int
	// ClockGHz is the nominal core frequency in GHz.
	ClockGHz float64
	// VectorBits is the SIMD register width in bits (512 for KNC, 256 AVX).
	VectorBits int
	// FMA reports whether the vector unit executes fused multiply-add
	// (2 flops per lane per instruction in a single issue slot). Sandy
	// Bridge instead has separate multiply and add ports, which reach the
	// same flops/cycle but without single-instruction FMA.
	FMA bool
	// VectorRegisters is the number of architectural vector registers.
	VectorRegisters int

	// Cache sizes in bytes. L3 is zero when absent (Knights Corner).
	L1Bytes, L2Bytes, L3Bytes int

	// DRAMBytes is the device/host memory capacity in bytes.
	DRAMBytes int64
	// StreamBW is the achievable STREAM triad bandwidth in bytes/second.
	StreamBW float64

	// ReservedCores is the number of cores not used for computation
	// (Knights Corner reserves the last core for the OS in native runs).
	ReservedCores int
}

// Cores returns the total number of physical cores.
func (a *Arch) Cores() int { return a.Sockets * a.CoresPerSocket }

// ComputeCores returns the number of cores available for computation in
// native mode (total minus reserved).
func (a *Arch) ComputeCores() int { return a.Cores() - a.ReservedCores }

// Threads returns the total hardware thread count.
func (a *Arch) Threads() int { return a.Cores() * a.ThreadsPerCore }

// DPLanes returns the number of double-precision SIMD lanes.
func (a *Arch) DPLanes() int { return a.VectorBits / 64 }

// SPLanes returns the number of single-precision SIMD lanes.
func (a *Arch) SPLanes() int { return a.VectorBits / 32 }

// DPFlopsPerCycle returns double-precision flops per cycle per core.
// With FMA, each lane retires 2 flops per cycle from one instruction;
// with split multiply/add ports (Sandy Bridge) one multiply and one add
// instruction co-issue for the same 2 flops per lane per cycle.
func (a *Arch) DPFlopsPerCycle() float64 { return float64(2 * a.DPLanes()) }

// SPFlopsPerCycle returns single-precision flops per cycle per core.
func (a *Arch) SPFlopsPerCycle() float64 { return float64(2 * a.SPLanes()) }

// PeakDPGFLOPS returns peak double-precision GFLOPS over all cores.
func (a *Arch) PeakDPGFLOPS() float64 {
	return float64(a.Cores()) * a.ClockGHz * a.DPFlopsPerCycle()
}

// PeakSPGFLOPS returns peak single-precision GFLOPS over all cores.
func (a *Arch) PeakSPGFLOPS() float64 {
	return float64(a.Cores()) * a.ClockGHz * a.SPFlopsPerCycle()
}

// ComputePeakDPGFLOPS returns double-precision peak over compute cores only
// (the denominator the paper uses for native DGEMM and native Linpack
// efficiency; see the footnote to Section II).
func (a *Arch) ComputePeakDPGFLOPS() float64 {
	return float64(a.ComputeCores()) * a.ClockGHz * a.DPFlopsPerCycle()
}

// ComputePeakSPGFLOPS is the single-precision analogue of ComputePeakDPGFLOPS.
func (a *Arch) ComputePeakSPGFLOPS() float64 {
	return float64(a.ComputeCores()) * a.ClockGHz * a.SPFlopsPerCycle()
}

// CyclesPerSecond returns the core clock in Hz.
func (a *Arch) CyclesPerSecond() float64 { return a.ClockGHz * 1e9 }

func (a *Arch) String() string {
	return fmt.Sprintf("%s: %dx%dx%d @ %.1f GHz, %d-bit SIMD, %.0f DP GFLOPS",
		a.Name, a.Sockets, a.CoresPerSocket, a.ThreadsPerCore, a.ClockGHz,
		a.VectorBits, a.PeakDPGFLOPS())
}

// PCIe describes the host<->coprocessor link.
type PCIe struct {
	// RawBW is the best-case transfer bandwidth in bytes/second
	// (the paper quotes ~6 GB/s, with 5.5 GB/s achievable).
	RawBW float64
	// ContendedBW is the bandwidth observed when transfers compete with
	// swapping and host DGEMM for host memory bandwidth (~4 GB/s in the
	// paper, Section V-B footnote).
	ContendedBW float64
	// LatencySec is the per-transfer setup latency.
	LatencySec float64
}

// Interconnect describes the cluster fabric (single-rail FDR InfiniBand).
type Interconnect struct {
	// BWBytes is point-to-point bandwidth in bytes/second.
	BWBytes float64
	// LatencySec is the point-to-point message latency.
	LatencySec float64
}

// Node is one cluster node: a host plus zero or more coprocessor cards.
type Node struct {
	Host  *Arch
	Cards []*Arch
	Link  PCIe
	// HostMemBytes overrides Host.DRAMBytes when nodes are configured with
	// more or less memory than the default (Table III uses 64 and 128 GB).
	HostMemBytes int64
}

// PeakDPGFLOPS returns the aggregate node peak (host + all cards), counting
// every core on the cards, as the paper does for hybrid efficiency.
func (n *Node) PeakDPGFLOPS() float64 {
	p := n.Host.PeakDPGFLOPS()
	for _, c := range n.Cards {
		p += c.PeakDPGFLOPS()
	}
	return p
}

// MemBytes returns the usable host memory.
func (n *Node) MemBytes() int64 {
	if n.HostMemBytes > 0 {
		return n.HostMemBytes
	}
	return n.Host.DRAMBytes
}

// Cluster is a P×Q grid of identical nodes.
type Cluster struct {
	Node   *Node
	P, Q   int
	Fabric Interconnect
}

// Nodes returns the node count P*Q.
func (c *Cluster) Nodes() int { return c.P * c.Q }

// PeakDPGFLOPS returns the aggregate cluster peak.
func (c *Cluster) PeakDPGFLOPS() float64 {
	return float64(c.Nodes()) * c.Node.PeakDPGFLOPS()
}

const (
	kib = 1024
	mib = 1024 * kib
	gib = 1024 * mib
)

// KnightsCorner returns the Knights Corner coprocessor description used
// throughout the paper: 61 in-order cores, 4-way SMT, 1.1 GHz, 512-bit
// vectors with FMA, 32 KB L1 + 512 KB L2 per core, 8 GB GDDR at 150 GB/s
// STREAM. The last core is reserved for the OS in native runs.
func KnightsCorner() *Arch {
	return &Arch{
		Name:            "Knights Corner",
		Sockets:         1,
		CoresPerSocket:  61,
		ThreadsPerCore:  4,
		ClockGHz:        1.1,
		VectorBits:      512,
		FMA:             true,
		VectorRegisters: 32,
		L1Bytes:         32 * kib,
		L2Bytes:         512 * kib,
		L3Bytes:         0,
		DRAMBytes:       8 * gib,
		StreamBW:        150e9,
		ReservedCores:   1,
	}
}

// SandyBridgeEP returns the dual-socket Xeon E5-2670 host description:
// 2×8 out-of-order cores, 2-way SMT, 2.6 GHz, 256-bit AVX with separate
// multiply and add ports, 20 MB L3 per socket, 128 GB DRAM at 76 GB/s.
func SandyBridgeEP() *Arch {
	return &Arch{
		Name:            "Sandy Bridge EP",
		Sockets:         2,
		CoresPerSocket:  8,
		ThreadsPerCore:  2,
		ClockGHz:        2.6,
		VectorBits:      256,
		FMA:             false,
		VectorRegisters: 16,
		L1Bytes:         32 * kib,
		L2Bytes:         256 * kib,
		L3Bytes:         20 * mib,
		DRAMBytes:       128 * gib,
		StreamBW:        76e9,
		ReservedCores:   0,
	}
}

// DefaultPCIe returns the PCIe link parameters from the paper.
func DefaultPCIe() PCIe {
	return PCIe{RawBW: 6e9, ContendedBW: 4e9, LatencySec: 10e-6}
}

// FDRInfiniband returns the cluster fabric parameters (single-rail FDR).
func FDRInfiniband() Interconnect {
	return Interconnect{BWBytes: 6e9, LatencySec: 2e-6}
}

// HybridNode builds a node with the given number of Knights Corner cards
// and host memory in GiB (64 or 128 in Table III).
func HybridNode(cards int, hostMemGiB int) *Node {
	n := &Node{
		Host:         SandyBridgeEP(),
		Link:         DefaultPCIe(),
		HostMemBytes: int64(hostMemGiB) * gib,
	}
	for i := 0; i < cards; i++ {
		n.Cards = append(n.Cards, KnightsCorner())
	}
	return n
}

// NewCluster builds a P×Q cluster of identical hybrid nodes.
func NewCluster(p, q, cards, hostMemGiB int) *Cluster {
	return &Cluster{
		Node:   HybridNode(cards, hostMemGiB),
		P:      p,
		Q:      q,
		Fabric: FDRInfiniband(),
	}
}
