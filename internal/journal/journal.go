// Package journal is an append-only, fsync-on-commit write-ahead log of
// opaque records, built for the solve server's durable job state but
// usable by anything that needs crash-consistent replay.
//
// On-disk format:
//
//	file   := magic frame*
//	magic  := "PHIWAL01"                        (8 bytes)
//	frame  := len crc payload
//	len    := uint32 little-endian              (payload bytes, 1..MaxFrame)
//	crc    := uint32 little-endian              (CRC-32C / Castagnoli of payload)
//
// Durability contract: Append writes one frame and fsyncs before
// returning, so a record handed back by a later Open was on stable
// storage when Append returned — write-ahead in the WAL sense.
//
// Recovery contract ("never refuse to start"): Open tolerates every
// damage mode a crash can leave behind. A torn tail (partial header or
// payload, or an insane length word) is truncated away; a mid-log frame
// whose CRC does not match — bit rot, a torn sector rewrite — is skipped
// and counted while the frames after it are still replayed; a missing or
// foreign magic header resets the file. Every repair is reported in
// ScanStats so the caller can warn, but none of them is an error.
//
// Compaction: Compact atomically replaces the log with a caller-provided
// snapshot (written to a temp file, fsynced, renamed over the old log),
// bounding the file and the next replay at a point-in-time state the
// caller serializes with the same record schema it appends.
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"phihpl/internal/metrics"
)

const (
	magicLen  = 8
	headerLen = 8 // per frame: 4-byte length + 4-byte CRC-32C

	// DefaultMaxFrame bounds a single payload. A length word above the
	// bound is treated as tail corruption, not an allocation request.
	DefaultMaxFrame = 16 << 20
)

var (
	magic      = []byte("PHIWAL01")
	castagnoli = crc32.MakeTable(crc32.Castagnoli)

	// ErrClosed is returned by Append/Compact after Close.
	ErrClosed = errors.New("journal: closed")
)

// ScanStats reports what Open's recovery scan found and repaired.
type ScanStats struct {
	Frames         int   // intact frames replayed
	SkippedCRC     int   // structurally sound frames dropped on CRC mismatch
	TruncatedBytes int64 // torn-tail bytes discarded
	CleanLen       int64 // file length after repair (magic + sound frames)
	BadHeader      bool  // magic was missing/foreign; the file was reset
}

// Damaged reports whether the scan had to repair anything.
func (st ScanStats) Damaged() bool {
	return st.SkippedCRC > 0 || st.TruncatedBytes > 0 || st.BadHeader
}

// Stats is a point-in-time view of a journal's lifetime activity.
type Stats struct {
	Scan        ScanStats
	Appends     int64
	Compactions int64
}

// Options configures Open. The zero value is usable.
type Options struct {
	// Metrics receives the journal.* counters (appends, fsyncs,
	// replayed/skipped frames, truncated bytes, compactions, errors).
	// nil = unmetered.
	Metrics *metrics.Registry
	// MaxFrame overrides DefaultMaxFrame (tests shrink it).
	MaxFrame int
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use; appends are serialized.
type Journal struct {
	path     string
	maxFrame int

	mu          sync.Mutex
	f           *os.File
	scan        ScanStats
	records     [][]byte // decoded at Open, handed out once via TakeRecords
	appends     int64
	compactions int64

	mAppends, mFsyncs, mErrors       *metrics.Counter
	mReplayed, mSkipped, mTruncBytes *metrics.Counter
	mCompactions                     *metrics.Counter
}

// Decode parses a journal image into the payloads of its intact frames.
// It never fails: damage is reported through ScanStats exactly as Open
// would repair it. Empty input is a fresh journal, not damage.
func Decode(data []byte, maxFrame int) ([][]byte, ScanStats) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var st ScanStats
	if len(data) == 0 {
		return nil, st
	}
	if len(data) < magicLen || !bytes.Equal(data[:magicLen], magic) {
		st.BadHeader = true
		st.TruncatedBytes = int64(len(data))
		return nil, st
	}
	var out [][]byte
	off := magicLen
	clean := off
	for {
		if len(data)-off < headerLen {
			break // clean EOF or torn header
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if ln == 0 || int64(ln) > int64(maxFrame) {
			break // insane length word: cannot trust the framing past here
		}
		if int64(len(data)-off-headerLen) < int64(ln) {
			break // torn payload
		}
		payload := data[off+headerLen : off+headerLen+int(ln)]
		off += headerLen + int(ln)
		if crc32.Checksum(payload, castagnoli) != sum {
			// The framing is sound (length fit, payload complete), only the
			// bytes are rotten: drop this record, keep replaying the rest.
			st.SkippedCRC++
			clean = off
			continue
		}
		out = append(out, append([]byte(nil), payload...))
		st.Frames++
		clean = off
	}
	st.TruncatedBytes = int64(len(data) - clean)
	st.CleanLen = int64(clean)
	return out, st
}

// EncodeFrame frames one payload (length + CRC-32C + bytes).
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, castagnoli))
	copy(out[headerLen:], payload)
	return out
}

// Image builds a complete journal file image (magic + frames) from
// payloads — what Compact writes, and what tests and the fuzzer use to
// construct journals byte-for-byte.
func Image(payloads [][]byte) []byte {
	out := append([]byte(nil), magic...)
	for _, p := range payloads {
		out = append(out, EncodeFrame(p)...)
	}
	return out
}

// Open reads, repairs and opens the journal at path, creating it if
// absent. The decoded pre-crash records are available once via
// TakeRecords; subsequent Appends land after the repaired tail.
func Open(path string, opt Options) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	records, st := Decode(data, opt.MaxFrame)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	// Repair in place: drop the unusable tail (or the whole foreign file)
	// and make sure the magic header exists before the first append.
	cleanLen := st.CleanLen
	if len(data) == 0 || st.BadHeader {
		cleanLen = 0
	}
	if cleanLen == 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: reset %s: %w", path, err)
		}
		if _, err := f.Write(magic); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: write header %s: %w", path, err)
		}
		cleanLen = magicLen
	} else if cleanLen < int64(len(data)) {
		if err := f.Truncate(cleanLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	syncDir(path)

	mf := opt.MaxFrame
	if mf <= 0 {
		mf = DefaultMaxFrame
	}
	j := &Journal{path: path, maxFrame: mf, f: f, scan: st, records: records}
	if r := opt.Metrics; r != nil {
		j.mAppends = r.Counter("journal.appends")
		j.mFsyncs = r.Counter("journal.fsyncs")
		j.mErrors = r.Counter("journal.errors")
		j.mReplayed = r.Counter("journal.replayed_frames")
		j.mSkipped = r.Counter("journal.skipped_crc_frames")
		j.mTruncBytes = r.Counter("journal.truncated_bytes")
		j.mCompactions = r.Counter("journal.compactions")
	}
	j.mReplayed.Add(int64(st.Frames))
	j.mSkipped.Add(int64(st.SkippedCRC))
	j.mTruncBytes.Add(st.TruncatedBytes)
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// ScanStats returns what the opening scan found.
func (j *Journal) ScanStats() ScanStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.scan
}

// Stats snapshots the journal's lifetime activity.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{Scan: j.scan, Appends: j.appends, Compactions: j.compactions}
}

// TakeRecords hands out the records decoded at Open exactly once (the
// replay pass), releasing the journal's reference to them.
func (j *Journal) TakeRecords() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.records
	j.records = nil
	return r
}

// Append commits one record: frame, write, fsync. When Append returns
// nil the record will survive a crash.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("journal: empty payload")
	}
	if len(payload) > j.maxFrame {
		return fmt.Errorf("journal: payload %d bytes exceeds frame bound %d", len(payload), j.maxFrame)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if _, err := j.f.Write(EncodeFrame(payload)); err != nil {
		j.mErrors.Inc()
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.mErrors.Inc()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.appends++
	j.mAppends.Inc()
	j.mFsyncs.Inc()
	return nil
}

// Compact atomically replaces the log with the given snapshot records:
// they are written to a temp file, fsynced, and renamed over the old
// log, so a crash at any point leaves either the old or the new journal,
// never a mix. The caller serializes its current state with the same
// schema it appends — after compaction a replay yields that state.
func (j *Journal) Compact(snapshot [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	tmp := j.path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		j.mErrors.Inc()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := tf.Write(Image(snapshot)); err != nil {
		tf.Close()
		os.Remove(tmp)
		j.mErrors.Inc()
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		j.mErrors.Inc()
		return fmt.Errorf("journal: compact fsync: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		j.mErrors.Inc()
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		j.mErrors.Inc()
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	syncDir(j.path)
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		j.mErrors.Inc()
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		j.mErrors.Inc()
		return fmt.Errorf("journal: seek after compact: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.compactions++
	j.mCompactions.Inc()
	return nil
}

// Close flushes and closes the file. Further Appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// syncDir best-effort fsyncs the directory holding path, making the
// create/rename itself durable where the platform supports it.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
