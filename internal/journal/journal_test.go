package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"phihpl/internal/metrics"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.journal")
}

func mustOpen(t *testing.T, path string, opt Options) *Journal {
	t.Helper()
	j, err := Open(path, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j
}

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func records(t *testing.T, j *Journal) []string {
	t.Helper()
	var out []string
	for _, r := range j.TakeRecords() {
		out = append(out, string(r))
	}
	return out
}

func wantRecords(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("records = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tempPath(t)
	j := mustOpen(t, path, Options{})
	appendAll(t, j, "alpha", "beta", "a longer third record with bytes \x00\x01\xff")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	wantRecords(t, records(t, j2), "alpha", "beta", "a longer third record with bytes \x00\x01\xff")
	if st := j2.ScanStats(); st.Damaged() {
		t.Errorf("clean journal reported damage: %+v", st)
	}
	// Records are handed out exactly once.
	if r := j2.TakeRecords(); r != nil {
		t.Errorf("second TakeRecords = %q, want nil", r)
	}
}

func TestEmptyAndAbsentJournal(t *testing.T) {
	path := tempPath(t)
	// Absent file: fresh journal, no damage.
	j := mustOpen(t, path, Options{})
	if r := j.TakeRecords(); len(r) != 0 {
		t.Errorf("fresh journal has %d records", len(r))
	}
	if st := j.ScanStats(); st.Damaged() {
		t.Errorf("fresh journal reported damage: %+v", st)
	}
	j.Close()

	// Zero-byte file (crash between create and header write): same.
	empty := filepath.Join(t.TempDir(), "empty.journal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, empty, Options{})
	defer j2.Close()
	if r := j2.TakeRecords(); len(r) != 0 {
		t.Errorf("empty journal has %d records", len(r))
	}
	appendAll(t, j2, "first")
}

func TestTruncatedFinalFrame(t *testing.T) {
	path := tempPath(t)
	j := mustOpen(t, path, Options{})
	appendAll(t, j, "keep-1", "keep-2")
	j.Close()

	// Tear the tail: a partial frame (header + half the payload) as a
	// crash mid-write would leave it.
	torn := append([]byte(nil), EncodeFrame([]byte("torn-away-record"))...)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := mustOpen(t, path, Options{})
	wantRecords(t, records(t, j2), "keep-1", "keep-2")
	st := j2.ScanStats()
	if st.TruncatedBytes != int64(len(torn)-7) {
		t.Errorf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(torn)-7)
	}
	// The repair is physical: the file was truncated back to the clean
	// prefix and appends continue from there.
	appendAll(t, j2, "after-repair")
	j2.Close()
	if fi, _ := os.Stat(path); fi == nil {
		t.Fatal("journal vanished")
	}
	j3 := mustOpen(t, path, Options{})
	defer j3.Close()
	wantRecords(t, records(t, j3), "keep-1", "keep-2", "after-repair")
	if st := j3.ScanStats(); st.Damaged() {
		t.Errorf("repaired journal still reports damage: %+v", st)
	}
}

func TestCorruptMidLogFrameSkipped(t *testing.T) {
	path := tempPath(t)
	j := mustOpen(t, path, Options{})
	appendAll(t, j, "good-1", "rot-me", "good-2")
	j.Close()

	// Flip one payload byte of the middle frame: framing stays sound, the
	// CRC does not.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := magicLen + headerLen + len("good-1") + headerLen // first byte of "rot-me"
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	j2 := mustOpen(t, path, Options{Metrics: reg})
	defer j2.Close()
	wantRecords(t, records(t, j2), "good-1", "good-2")
	st := j2.ScanStats()
	if st.SkippedCRC != 1 {
		t.Errorf("SkippedCRC = %d, want 1", st.SkippedCRC)
	}
	if st.TruncatedBytes != 0 {
		t.Errorf("TruncatedBytes = %d, want 0 (frames after the rot must survive)", st.TruncatedBytes)
	}
	if got := reg.Counter("journal.skipped_crc_frames").Value(); got != 1 {
		t.Errorf("journal.skipped_crc_frames = %d, want 1", got)
	}
	if got := reg.Counter("journal.replayed_frames").Value(); got != 2 {
		t.Errorf("journal.replayed_frames = %d, want 2", got)
	}
}

func TestForeignFileReset(t *testing.T) {
	path := tempPath(t)
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, path, Options{})
	if r := j.TakeRecords(); len(r) != 0 {
		t.Errorf("foreign file decoded %d records", len(r))
	}
	st := j.ScanStats()
	if !st.BadHeader || st.TruncatedBytes == 0 {
		t.Errorf("foreign file scan = %+v, want BadHeader + truncation", st)
	}
	// Never refuse to start: the file was reset and is appendable.
	appendAll(t, j, "rebuilt")
	j.Close()
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	wantRecords(t, records(t, j2), "rebuilt")
}

// TestReplayIdempotence: opening (and thus replaying) the same journal
// twice without writes yields identical records and stats — and Decode
// itself is a pure function of the image.
func TestReplayIdempotence(t *testing.T) {
	path := tempPath(t)
	j := mustOpen(t, path, Options{})
	appendAll(t, j, "r1", "r2", "r3")
	j.Close()

	j1 := mustOpen(t, path, Options{})
	r1, st1 := records(t, j1), j1.ScanStats()
	j1.Close()
	j2 := mustOpen(t, path, Options{})
	r2, st2 := records(t, j2), j2.ScanStats()
	j2.Close()
	wantRecords(t, r2, r1...)
	if st1 != st2 {
		t.Errorf("replay stats differ across identical replays: %+v vs %+v", st1, st2)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d1, ds1 := Decode(data, 0)
	d2, ds2 := Decode(data, 0)
	if len(d1) != len(d2) || ds1 != ds2 {
		t.Fatalf("Decode not deterministic: %d/%+v vs %d/%+v", len(d1), ds1, len(d2), ds2)
	}
	for i := range d1 {
		if !bytes.Equal(d1[i], d2[i]) {
			t.Fatalf("Decode record %d differs across calls", i)
		}
	}
}

func TestCompactionSnapshotThenRotate(t *testing.T) {
	path := tempPath(t)
	reg := metrics.NewRegistry()
	j := mustOpen(t, path, Options{Metrics: reg})
	for i := 0; i < 100; i++ {
		appendAll(t, j, fmt.Sprintf("tick-%03d", i))
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := j.Compact([][]byte{[]byte("snapshot-a"), []byte("snapshot-b")}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	if got := reg.Counter("journal.compactions").Value(); got != 1 {
		t.Errorf("journal.compactions = %d, want 1", got)
	}

	// Appends continue after the rotate, and replay sees snapshot + tail.
	appendAll(t, j, "post-compact")
	j.Close()
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	wantRecords(t, records(t, j2), "snapshot-a", "snapshot-b", "post-compact")
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Errorf("compaction temp file left behind (err=%v)", err)
	}
}

func TestAppendBounds(t *testing.T) {
	j := mustOpen(t, tempPath(t), Options{MaxFrame: 64})
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := j.Append(make([]byte, 65)); err == nil {
		t.Error("oversized payload accepted")
	}
	if err := j.Append(make([]byte, 64)); err != nil {
		t.Errorf("boundary payload rejected: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j := mustOpen(t, tempPath(t), Options{})
	j.Close()
	if err := j.Append([]byte("late")); err != ErrClosed {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}
	if err := j.Compact(nil); err != ErrClosed {
		t.Errorf("compact after close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("double close = %v, want nil", err)
	}
}

// TestInsaneLengthWord: a corrupted length word larger than the frame
// bound must stop the scan (truncate) rather than allocate or walk off.
func TestInsaneLengthWord(t *testing.T) {
	img := Image([][]byte{[]byte("ok")})
	img = append(img, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0) // len ~2^31
	img = append(img, []byte("garbage tail")...)
	recs, st := Decode(img, 0)
	if len(recs) != 1 || string(recs[0]) != "ok" {
		t.Fatalf("records = %q, want [ok]", recs)
	}
	if st.TruncatedBytes != int64(8+len("garbage tail")) {
		t.Errorf("TruncatedBytes = %d, want %d", st.TruncatedBytes, 8+len("garbage tail"))
	}
}
