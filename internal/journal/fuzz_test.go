package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the recovery scanner. The
// invariants every input must hold:
//
//  1. Decode never panics and never reads past the image.
//  2. Accounting closes: CleanLen + TruncatedBytes == len(data) whenever
//     the header was sound, and CleanLen never exceeds the image.
//  3. Decode is idempotent (same image -> same records and stats).
//  4. Re-encoding the surviving records with Image yields a journal that
//     decodes back to exactly those records with zero damage — recovery
//     followed by compaction loses nothing it chose to keep.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("PHIWAL01"))
	f.Add([]byte("PHIWAL0"))            // torn magic
	f.Add([]byte("NOTAWALXরrandom"))    // foreign header
	f.Add(Image([][]byte{[]byte("a")})) // one intact frame
	f.Add(Image([][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}))
	f.Add(Image([][]byte{bytes.Repeat([]byte{0}, 300)}))
	// Torn tail: full frame then half a frame.
	img := Image([][]byte{[]byte("keep")})
	img = append(img, EncodeFrame([]byte("torn-record"))[:9]...)
	f.Add(img)
	// Mid-log CRC rot.
	rot := Image([][]byte{[]byte("good"), []byte("rotten"), []byte("also-good")})
	rot[8+8+4+8+2] ^= 0x01
	f.Add(rot)
	// Insane length word.
	f.Add(append(Image(nil), 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4))
	// Zero length word.
	f.Add(append(Image(nil), 0, 0, 0, 0, 0, 0, 0, 0))

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, st := Decode(data, maxFrame)

		if st.CleanLen < 0 || st.CleanLen > int64(len(data)) {
			t.Fatalf("CleanLen %d outside [0, %d]", st.CleanLen, len(data))
		}
		if st.TruncatedBytes < 0 {
			t.Fatalf("negative TruncatedBytes %d", st.TruncatedBytes)
		}
		if len(data) > 0 && !st.BadHeader && st.CleanLen+st.TruncatedBytes != int64(len(data)) {
			t.Fatalf("accounting leak: clean %d + truncated %d != %d",
				st.CleanLen, st.TruncatedBytes, len(data))
		}
		if st.BadHeader && st.TruncatedBytes != int64(len(data)) {
			t.Fatalf("bad header must truncate everything: %+v for %d bytes", st, len(data))
		}

		recs2, st2 := Decode(data, maxFrame)
		if st != st2 || len(recs) != len(recs2) {
			t.Fatalf("Decode not idempotent: %+v/%d vs %+v/%d", st, len(recs), st2, len(recs2))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("record %d differs across identical decodes", i)
			}
		}

		reimg := Image(recs)
		recs3, st3 := Decode(reimg, maxFrame)
		if st3.Damaged() {
			t.Fatalf("re-encoded journal reports damage: %+v", st3)
		}
		if len(recs3) != len(recs) {
			t.Fatalf("re-encode round trip: %d records, want %d", len(recs3), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(recs3[i], recs[i]) {
				t.Fatalf("re-encode round trip: record %d mutated", i)
			}
		}
	})
}
