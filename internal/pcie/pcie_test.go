package pcie

import (
	"math"
	"testing"

	"phihpl/internal/machine"
)

func TestTransferTime(t *testing.T) {
	l := NewLink(machine.DefaultPCIe())
	// 6 GB at 6 GB/s raw = 1 s + latency.
	if d := l.TransferTime(6e9); math.Abs(d-1.00001) > 1e-6 {
		t.Errorf("raw transfer = %v, want ~1s", d)
	}
	l.Contended = true
	if d := l.TransferTime(4e9); math.Abs(d-1.00001) > 1e-6 {
		t.Errorf("contended transfer = %v, want ~1s", d)
	}
	if l.TransferTime(0) != 0 {
		t.Error("zero bytes should be free")
	}
}

func TestShare(t *testing.T) {
	l := NewLink(machine.DefaultPCIe())
	l.Contended = true
	l.Share = 0.5
	if bw := l.Bandwidth(); bw != 2e9 {
		t.Errorf("shared bandwidth = %v, want 2e9", bw)
	}
	l.Share = 0 // invalid -> treated as exclusive
	if bw := l.Bandwidth(); bw != 4e9 {
		t.Errorf("bandwidth with bad share = %v", bw)
	}
}

func TestEnqueueSerializesPerDirection(t *testing.T) {
	l := NewLink(machine.DefaultPCIe())
	s1, e1 := l.Enqueue(HostToDevice, 0, 6e9) // ~[0, 1)
	s2, e2 := l.Enqueue(HostToDevice, 0, 6e9) // queued behind
	if s1 != 0 || s2 < e1 {
		t.Errorf("same-direction transfers must serialize: [%v,%v) [%v,%v)", s1, e1, s2, e2)
	}
	// Opposite direction is independent (full duplex).
	s3, _ := l.Enqueue(DeviceToHost, 0, 6e9)
	if s3 != 0 {
		t.Errorf("opposite direction should start immediately, got %v", s3)
	}
	if l.BytesMoved[HostToDevice] != 12e9 || l.BytesMoved[DeviceToHost] != 6e9 {
		t.Errorf("traffic accounting wrong: %v", l.BytesMoved)
	}
	if l.BusyUntil(HostToDevice) != e2 {
		t.Errorf("BusyUntil = %v, want %v", l.BusyUntil(HostToDevice), e2)
	}
	if l.BusyUntil(DeviceToHost) <= 0 {
		t.Error("d2h BusyUntil should advance")
	}
}

func TestMinKt(t *testing.T) {
	// The paper: BWpcie ≈ 4 GB/s, Pdgemm ≈ 950 GFLOPS => Kt at least 950.
	kt := MinKt(950, 4e9)
	if kt != 950 {
		t.Errorf("MinKt = %d, want 950", kt)
	}
	// And they chose Kt = 1200 with margin — the bound must sit below it.
	if kt >= 1200 {
		t.Error("chosen Kt=1200 must exceed the bound")
	}
	if MinKt(950, 0) != 0 {
		t.Error("zero bandwidth")
	}
}
