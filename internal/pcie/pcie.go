// Package pcie models the host↔coprocessor PCIe link of Section V-B: a
// full-duplex DMA engine with per-direction FIFO queues, a raw bandwidth of
// ~6 GB/s and a contended bandwidth of ~4 GB/s when transfers compete with
// row swapping and host DGEMM for host memory bandwidth (the paper's
// footnote 4).
//
// The link is the binding constraint behind the paper's tile-size rule
// Kt > 4·P/BW: an output tile's transfer must hide under its compute.
package pcie

import (
	"phihpl/internal/machine"
	"phihpl/internal/sim"
)

// Direction of a transfer.
type Direction int

const (
	// HostToDevice moves packed input tiles to the card.
	HostToDevice Direction = iota
	// DeviceToHost moves result tiles back.
	DeviceToHost
)

// Link is a virtual-time PCIe link. The two directions are independent DMA
// engines (PCIe is full duplex); each serializes its own queue.
type Link struct {
	Cfg machine.PCIe
	// Contended selects the reduced bandwidth that applies while the host
	// is simultaneously swapping rows and computing (hybrid HPL).
	Contended bool
	// Share scales available bandwidth when several cards contend for the
	// same host memory controllers (1.0 = exclusive).
	Share float64

	h2d sim.Resource
	d2h sim.Resource

	// BytesMoved accumulates total traffic per direction.
	BytesMoved [2]float64
}

// NewLink returns a link with the paper's default parameters.
func NewLink(cfg machine.PCIe) *Link {
	return &Link{Cfg: cfg, Share: 1.0}
}

// Bandwidth returns the effective bytes/second currently available.
func (l *Link) Bandwidth() float64 {
	bw := l.Cfg.RawBW
	if l.Contended {
		bw = l.Cfg.ContendedBW
	}
	s := l.Share
	if s <= 0 || s > 1 {
		s = 1
	}
	return bw * s
}

// TransferTime returns the unqueued duration of moving `bytes`.
func (l *Link) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Cfg.LatencySec + bytes/l.Bandwidth()
}

// Enqueue reserves the DMA engine for a transfer requested at time t and
// returns the granted [start, end) interval. Requests in one direction
// serialize; the two directions are independent.
func (l *Link) Enqueue(dir Direction, t, bytes float64) (start, end float64) {
	d := l.TransferTime(bytes)
	l.BytesMoved[dir] += bytes
	if dir == HostToDevice {
		return l.h2d.Reserve(t, d)
	}
	return l.d2h.Reserve(t, d)
}

// BusyUntil returns when the given direction's engine frees up.
func (l *Link) BusyUntil(dir Direction) float64 {
	if dir == HostToDevice {
		return l.h2d.BusyUntil
	}
	return l.d2h.BusyUntil
}

// MinKt returns the paper's lower bound on the offload panel depth:
// Kt > 4·Pdgemm/BW, with Pdgemm in flops/s and the result in columns.
// Below this depth the output-tile transfer cannot hide under compute.
func MinKt(cardGFLOPS, bwBytes float64) int {
	if bwBytes <= 0 {
		return 0
	}
	return int(4 * cardGFLOPS * 1e9 / bwBytes)
}
