package kernels

import (
	"math"
	"strings"
	"testing"
)

func TestLoopBodyShapes(t *testing.T) {
	b1 := loopBody(Kernel1)
	if len(b1) != 32 {
		t.Fatalf("kernel1 body = %d instr, want 32", len(b1))
	}
	fmas, mems, pf := 0, 0, 0
	for _, in := range b1 {
		if in.fma {
			fmas++
		}
		if in.mem {
			mems++
		}
		if in.prefetch {
			pf++
		}
	}
	if fmas != 31 {
		t.Errorf("kernel1 fmas = %d, want 31", fmas)
	}
	if mems != 32 {
		t.Errorf("kernel1 must touch memory every instruction, mems=%d", mems)
	}
	if pf != 2 {
		t.Errorf("kernel1 prefetches = %d, want 2 (two lines/iter/thread)", pf)
	}

	b2 := loopBody(Kernel2)
	if len(b2) != 32 {
		t.Fatalf("kernel2 body = %d instr, want 32", len(b2))
	}
	fmas, mems, holes := 0, 0, 0
	for _, in := range b2 {
		if in.fma {
			fmas++
		}
		if in.mem {
			mems++
		} else {
			holes++
		}
	}
	if fmas != 30 {
		t.Errorf("kernel2 fmas = %d, want 30", fmas)
	}
	if holes != 4 {
		t.Errorf("kernel2 register-only holes = %d, want 4", holes)
	}
}

func TestKernelRows(t *testing.T) {
	if Kernel1.Rows() != 31 || Kernel2.Rows() != 30 {
		t.Error("register blocking heights wrong")
	}
	if !strings.Contains(Kernel1.String(), "1") || !strings.Contains(Kernel2.String(), "2") {
		t.Error("String()")
	}
}

func TestKernel2HitsTheoreticalEfficiency(t *testing.T) {
	// Paper: Kernel 2's swizzle holes let fills complete without stalls,
	// so efficiency is exactly 30/32 = 93.75% in steady state.
	eff := LoopEfficiency(Kernel2)
	if math.Abs(eff-30.0/32.0) > 0.002 {
		t.Errorf("kernel2 loop efficiency = %.4f, want ~0.9375", eff)
	}
	r := Simulate(Kernel2, 2048, DefaultConfig())
	if r.StallCyc != 0 {
		t.Errorf("kernel2 should not stall, got %d stall cycles", r.StallCyc)
	}
}

func TestKernel1PaysPortConflictStalls(t *testing.T) {
	// Paper: every cycle of Kernel 1 touches L1, so fills defer until the
	// core stalls — "as few as two stall cycles in the tight inner loop
	// will reduce overall efficiency down to 91% = 31/(32+2)".
	r := Simulate(Kernel1, 2048, DefaultConfig())
	if r.StallCyc == 0 {
		t.Fatal("kernel1 must stall under port pressure")
	}
	eff := r.Efficiency()
	if eff < 0.89 || eff > 0.925 {
		t.Errorf("kernel1 efficiency = %.4f, want ≈0.91 (31/34)", eff)
	}
	// And it must be *below* kernel2 — the whole point of the redesign.
	if eff >= LoopEfficiency(Kernel2) {
		t.Errorf("kernel1 (%.4f) should underperform kernel2", eff)
	}
}

func TestKernel1WithoutPrefetchPressureWouldBeFaster(t *testing.T) {
	// Ablation: with an infinite fill threshold (no stalls ever), Kernel 1
	// reaches its theoretical 31/32 — showing the stalls, not the FMA
	// count, are what cost it.
	cfg := DefaultConfig()
	cfg.FillThreshold = 1 << 30
	r := Simulate(Kernel1, 2048, cfg)
	if math.Abs(r.Efficiency()-31.0/32.0) > 0.002 {
		t.Errorf("stall-free kernel1 efficiency = %.4f, want ~0.96875", r.Efficiency())
	}
}

func TestAllFillsEventuallyComplete(t *testing.T) {
	for _, k := range []Kernel{Kernel1, Kernel2} {
		r := Simulate(k, 512, DefaultConfig())
		// 2 fills per iteration per thread * 4 threads.
		want := int64(2 * 512 * 4)
		// Allow a small tail of fills still pending at the end.
		if r.FillsDone < want-16 {
			t.Errorf("%v: fills done = %d, want ~%d", k, r.FillsDone, want)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(Kernel1, 300, DefaultConfig())
	b := Simulate(Kernel1, 300, DefaultConfig())
	if a != b {
		t.Error("simulation must be deterministic")
	}
}

func TestSimulateThreadScaling(t *testing.T) {
	// One thread running alone still retires one instruction per cycle in
	// this model; FMAs scale with iterations either way. What must hold:
	// total FMAs = threads * iters * fmas-per-iter.
	cfg := DefaultConfig()
	r := Simulate(Kernel2, 100, cfg)
	if r.FMAs != int64(4*100*30) {
		t.Errorf("FMAs = %d, want %d", r.FMAs, 4*100*30)
	}
	cfg.Threads = 0 // clamps to 1
	r1 := Simulate(Kernel2, 100, cfg)
	if r1.FMAs != int64(100*30) {
		t.Errorf("single-thread FMAs = %d", r1.FMAs)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Kernel: Kernel2, FMAs: 100, Cycles: 200}
	if r.Efficiency() != 0.5 {
		t.Error("Efficiency")
	}
	if r.Flops() != 1600 {
		t.Error("Flops")
	}
	if (Result{}).Efficiency() != 0 {
		t.Error("zero-cycle efficiency")
	}
	if !strings.Contains(r.String(), "Basic Kernel 2") {
		t.Error("String")
	}
}

func TestTileEfficiencyGrowsWithK(t *testing.T) {
	cfg := DefaultConfig()
	e60 := TileEfficiency(Kernel2, 60, cfg)
	e240 := TileEfficiency(Kernel2, 240, cfg)
	e300 := TileEfficiency(Kernel2, 300, cfg)
	if !(e60 < e240 && e240 < e300) {
		t.Errorf("tile efficiency should grow with k: %v %v %v", e60, e240, e300)
	}
	// Paper: C-update overhead < 0.5% at k=240.
	loop := LoopEfficiency(Kernel2)
	if overhead := 1 - e240/loop; overhead > 0.02 {
		t.Errorf("epilogue overhead at k=240 = %.4f, want small", overhead)
	}
	if TileEfficiency(Kernel2, 0, cfg) != 0 || TileCycles(Kernel2, 0, cfg) != 0 {
		t.Error("k=0 should be zero")
	}
}

func TestTileCyclesScaleLinearly(t *testing.T) {
	cfg := DefaultConfig()
	c100 := TileCycles(Kernel2, 100, cfg)
	c200 := TileCycles(Kernel2, 200, cfg)
	// Doubling k should roughly double cycles (same epilogue).
	ratio := c200 / c100
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("cycle ratio = %.3f, want ~2", ratio)
	}
}

func TestPaperHeadlineProjection(t *testing.T) {
	// Section III-B attributes DGEMM's 89.4% to kernel2's 93.7% ceiling
	// minus ~4% of unmodeled-here overheads (packing, work distribution).
	// The loop model must therefore sit between 89.4% and ~94.5%.
	eff := LoopEfficiency(Kernel2)
	if eff < 0.894 || eff > 0.945 {
		t.Errorf("kernel2 ceiling %.4f outside [0.894, 0.945]", eff)
	}
}

func TestFourHolesSufficeForTwoLines(t *testing.T) {
	// Section III-A2 verbatim: "given that each thread only brings on
	// average two cache lines [per iteration], four 'holes' are
	// sufficient to significantly reduce core stalls".
	cfg := DefaultConfig()
	cfg.FillsPerIter = 2
	if r := Simulate(Kernel2, 1024, cfg); r.StallCyc != 0 {
		t.Errorf("2 fills: kernel2 stalled %d cycles, want 0", r.StallCyc)
	}
	// With 4 fills per iteration the four holes are exactly consumed.
	cfg.FillsPerIter = 4
	if r := Simulate(Kernel2, 1024, cfg); r.StallCyc != 0 {
		t.Errorf("4 fills: kernel2 stalled %d cycles, want 0", r.StallCyc)
	}
	// Beyond the hole budget, even kernel2 must start stalling.
	cfg.FillsPerIter = 8
	r8 := Simulate(Kernel2, 1024, cfg)
	if r8.StallCyc == 0 {
		t.Error("8 fills: kernel2 should exceed its hole budget and stall")
	}
	if r8.Efficiency() >= 30.0/32.0 {
		t.Errorf("8 fills: efficiency %.4f should drop below the ceiling", r8.Efficiency())
	}
}

func TestFillsClampToBody(t *testing.T) {
	body := bodyWithFills(Kernel1, 100)
	pf := 0
	for _, in := range body {
		if in.prefetch {
			pf++
		}
	}
	if pf != len(body) {
		t.Errorf("fills should clamp to body length: %d", pf)
	}
	// Zero-valued config falls back to the default 2 fills.
	r := Simulate(Kernel2, 256, Config{Threads: 4, FillThreshold: 8, StallCycles: 2})
	if r.StallCyc != 0 {
		t.Error("default fills should behave like the paper's 2")
	}
}
