// Package kernels models the Knights Corner core pipeline executing the two
// hand-coded DGEMM micro-kernels of Section III-A2 of the paper, at cycle
// granularity.
//
// The model captures exactly the micro-architectural mechanisms the paper
// uses to explain DGEMM efficiency:
//
//   - an in-order core issuing one vector instruction per cycle, shared
//     round-robin by four hardware threads;
//   - a dual-issue V-pipe on which L1 prefetches co-issue for free;
//   - an L1 cache with one read and one write port: a vector instruction
//     with a memory operand occupies the read port for its cycle;
//   - L1 prefetch fills (lines arriving from L2) that need a free port
//     cycle to complete; a fill deferred longer than a threshold stalls
//     the core for a few cycles until it drains (Figure 1c).
//
// Basic Kernel 1 issues 31 fused multiply-adds with memory operands plus a
// vector load per iteration — every cycle touches the read port, so fills
// can never slip in and the core pays stall cycles (the paper estimates two
// stalls shrink efficiency to 31/(32+2) ≈ 91%). Basic Kernel 2 spends one
// register on a 4to8 broadcast of a and swizzles four multiply-adds out of
// that register; those four register-only instructions are "holes" in the
// read-port schedule through which the (on average two) fills per iteration
// complete, giving a clean 30/32 = 93.75% ceiling.
package kernels

import "fmt"

// Kernel selects the micro-kernel variant.
type Kernel int

const (
	// Kernel1 is Basic Kernel 1: 31 FMAs/iteration, all with memory
	// operands (1to8 broadcasts of a), 31-row register blocking.
	Kernel1 Kernel = iota
	// Kernel2 is Basic Kernel 2: 30 FMAs/iteration, four of them swizzled
	// from a register (no memory access), 30-row register blocking.
	Kernel2
)

func (k Kernel) String() string {
	if k == Kernel1 {
		return "Basic Kernel 1"
	}
	return "Basic Kernel 2"
}

// Rows returns the register-blocked a-tile height of the kernel.
func (k Kernel) Rows() int {
	if k == Kernel1 {
		return 31
	}
	return 30
}

// instr is one slot of the kernel's inner loop as seen by one thread.
type instr struct {
	fma      bool // retires 8 double-precision FMAs (16 flops)
	mem      bool // occupies the L1 read port this cycle
	prefetch bool // co-issues an L1 prefetch on the V-pipe (enqueues a fill)
}

// loopBody returns the per-iteration instruction stream of the kernel
// with the default prefetch load (two cache lines per iteration per
// thread: one line of b, plus the thread's share of the four a-lines the
// four synchronized threads fetch cooperatively).
func loopBody(k Kernel) []instr { return bodyWithFills(k, 2) }

// bodyWithFills builds the instruction stream with `fills` L1 prefetch
// co-issues per iteration. Both kernels are 32 instructions long (the
// full vector register file is committed to the loop); prefetches attach
// to the leading instructions. Varying fills above the default probes the
// paper's claim that Kernel 2's four swizzle holes are "sufficient" for
// the two lines an iteration brings in — at higher fill pressure even
// Kernel 2 starts stalling (see the tests).
func bodyWithFills(k Kernel, fills int) []instr {
	body := make([]instr, 0, 32)
	switch k {
	case Kernel1:
		// vload b row; 31 x vmadd with 1to8 memory broadcast of a.
		body = append(body, instr{mem: true})
		for i := 0; i < 31; i++ {
			body = append(body, instr{fma: true, mem: true})
		}
	case Kernel2:
		// vload b row; 4to8 load-broadcast of a[0:4]; 4 swizzled (register
		// only) vmadds; 26 vmadds with memory broadcasts.
		body = append(body, instr{mem: true})
		body = append(body, instr{mem: true})
		for i := 0; i < 4; i++ {
			body = append(body, instr{fma: true}) // swizzle: no L1 access
		}
		for i := 0; i < 26; i++ {
			body = append(body, instr{fma: true, mem: true})
		}
	}
	if fills > len(body) {
		fills = len(body)
	}
	for i := 0; i < fills; i++ {
		body[i].prefetch = true
	}
	return body
}

// Config holds the pipeline parameters. Defaults model Knights Corner.
type Config struct {
	// Threads is the number of hardware threads sharing the core (4).
	Threads int
	// FillThreshold is how many cycles a prefetch fill may be deferred
	// before the core stalls to drain it.
	FillThreshold int
	// StallCycles is the length of the drain stall.
	StallCycles int
	// FillsPerIter is the number of L2->L1 cache-line fills each thread's
	// iteration triggers (0 -> the paper's 2: one b-line plus the shared
	// a-lines' amortized share). Raising it models denser memory traffic,
	// e.g. unshared a-tiles.
	FillsPerIter int
}

// DefaultConfig returns the Knights Corner pipeline parameters.
func DefaultConfig() Config {
	return Config{Threads: 4, FillThreshold: 8, StallCycles: 2, FillsPerIter: 2}
}

// Result summarizes a simulated run.
type Result struct {
	Kernel     Kernel
	Iterations int // per-thread loop iterations executed
	Cycles     int64
	FMAs       int64 // vector FMAs retired (each is 8 lanes × 2 flops)
	StallCyc   int64 // cycles lost to fill-drain stalls
	FillsDone  int64
}

// Efficiency returns retired-FMA cycles over total cycles — the fraction of
// peak the core sustained (peak = one 8-lane FMA per cycle).
func (r Result) Efficiency() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.FMAs) / float64(r.Cycles)
}

// Flops returns double-precision flops retired (16 per vector FMA).
func (r Result) Flops() float64 { return 16 * float64(r.FMAs) }

func (r Result) String() string {
	return fmt.Sprintf("%s: %d iters, %d cycles, %d FMAs, %d stall cycles, eff %.2f%%",
		r.Kernel, r.Iterations, r.Cycles, r.FMAs, r.StallCyc, 100*r.Efficiency())
}

// Simulate runs `iters` iterations of the kernel's inner loop on one core
// with cfg.Threads threads, cycle by cycle, and reports the result. The
// simulation is deterministic.
func Simulate(k Kernel, iters int, cfg Config) Result {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	fills := cfg.FillsPerIter
	if fills < 1 {
		fills = 2
	}
	body := bodyWithFills(k, fills)
	res := Result{Kernel: k, Iterations: iters}

	// Per-thread instruction pointers and completed-iteration counts.
	ip := make([]int, cfg.Threads)
	done := make([]int, cfg.Threads)

	pendingFills := 0 // L2->L1 lines waiting for a free port cycle
	oldestAge := 0    // cycles the oldest pending fill has been deferred
	stall := 0        // remaining stall cycles
	turn := 0         // round-robin thread pointer

	allDone := func() bool {
		for _, d := range done {
			if d < iters {
				return false
			}
		}
		return true
	}

	for !allDone() {
		res.Cycles++
		portBusy := false

		if stall > 0 {
			// Core is stalled: no issue; the free port drains one fill.
			stall--
			res.StallCyc++
			if pendingFills > 0 {
				pendingFills--
				res.FillsDone++
				if pendingFills == 0 {
					oldestAge = 0
				}
			}
			continue
		}

		// Pick the next thread (round-robin) that still has work.
		issued := false
		for t := 0; t < cfg.Threads; t++ {
			th := (turn + t) % cfg.Threads
			if done[th] >= iters {
				continue
			}
			in := body[ip[th]]
			if in.fma {
				res.FMAs++
			}
			if in.mem {
				portBusy = true
			}
			if in.prefetch {
				pendingFills++
			}
			ip[th]++
			if ip[th] == len(body) {
				ip[th] = 0
				done[th]++
			}
			turn = (th + 1) % cfg.Threads
			issued = true
			break
		}
		_ = issued

		// Fill completion: needs the read port free this cycle.
		if pendingFills > 0 {
			if !portBusy {
				pendingFills--
				res.FillsDone++
				if pendingFills == 0 {
					oldestAge = 0
				}
			} else {
				oldestAge++
				if oldestAge > cfg.FillThreshold {
					stall = cfg.StallCycles
					oldestAge = 0
				}
			}
		}
	}
	return res
}

// LoopEfficiency returns the steady-state efficiency of the kernel's inner
// loop under the default configuration (packing and C-update overheads
// excluded). Kernel1 lands near 31/34 ≈ 0.91 due to port-conflict stalls;
// Kernel2 at its theoretical 30/32 = 0.9375.
func LoopEfficiency(k Kernel) float64 {
	return Simulate(k, 4096, DefaultConfig()).Efficiency()
}

// TileCycles returns the per-thread cycle cost of one full micro-tile
// computation: k loop iterations plus the epilogue that updates the
// Rows()×8 block of C in memory (one read-modify-write vector per row; the
// write port lets stores co-issue with the next row's load, so the
// epilogue costs about one cycle per register row).
func TileCycles(k Kernel, kdim int, cfg Config) float64 {
	if kdim <= 0 {
		return 0
	}
	r := Simulate(k, kdim, cfg)
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	// Core cycles are shared by the threads' tiles in flight; the per-tile
	// share is Cycles/threads. Each thread's epilogue instructions also
	// occupy issue slots, so one epilogue per tile is charged in full.
	perTileLoop := float64(r.Cycles) / float64(threads)
	epilogue := float64(k.Rows()) + 2 // loop setup / pointer bump included
	return perTileLoop + epilogue
}

// TileEfficiency returns the efficiency of one micro-tile including the
// C-update epilogue, as a function of the accumulation depth k. The paper
// notes the epilogue overhead decreases linearly with k (<0.5% at k=240).
func TileEfficiency(kern Kernel, kdim int, cfg Config) float64 {
	if kdim <= 0 {
		return 0
	}
	cycles := TileCycles(kern, kdim, cfg)
	fmas := float64(kern.Rows() * kdim)
	// Peak would retire one FMA per cycle; rows<32 means even the perfect
	// loop spends (32-rows)/32 issue slots on non-FMA work, which is
	// already captured in cycles.
	return fmas / cycles
}
