package cluster

import (
	"sync/atomic"

	"phihpl/internal/metrics"
)

// Fabric-wide metric sinks. Per-world recovery counts stay on World.Stats;
// these hooks additionally aggregate across every world in the process so
// a CLI run (which may respawn worlds after faults) reports one total.
// All default to nil: the uninstrumented transport pays one atomic load
// per event and allocates nothing.
var (
	mResends  atomic.Pointer[metrics.Counter]
	mTimeouts atomic.Pointer[metrics.Counter]
	mRejects  atomic.Pointer[metrics.Counter]
)

// SetMetrics attaches a metrics registry to the fabric (nil detaches).
// Counters registered: cluster.resends (retransmissions after an ack
// timeout), cluster.timeouts (operations that returned ErrTimeout),
// cluster.checksum_rejects (packets discarded as corrupt on receive).
func SetMetrics(reg *metrics.Registry) {
	mResends.Store(reg.Counter("cluster.resends"))
	mTimeouts.Store(reg.Counter("cluster.timeouts"))
	mRejects.Store(reg.Counter("cluster.checksum_rejects"))
}
