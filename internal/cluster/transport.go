package cluster

import (
	"math"
	"time"
)

// packet is the wire unit. In clean mode only msg is meaningful; in chaos
// (lossy) mode seq orders the link and sum guards the payload.
type packet struct {
	msg Msg
	seq uint64
	sum uint64
}

// Retransmission backoff: exponential from ackTimeoutBase, capped at
// ackTimeoutCap — "capped exponential backoff" per the fault design.
const (
	ackTimeoutBase = 500 * time.Microsecond
	ackTimeoutCap  = 8 * time.Millisecond
)

func backoffFor(attempt int) time.Duration {
	d := ackTimeoutBase << uint(attempt)
	if d > ackTimeoutCap || d <= 0 {
		d = ackTimeoutCap
	}
	return d
}

// Send delivers a message to dst. Payload slices are copied, so the sender
// may reuse its buffers immediately (MPI semantics). Send is eager: it
// only blocks when the link's buffer is full, and then honors the world
// timeout and peer-failure signals instead of hanging.
func (c *Comm) Send(dst, tag int, f []float64, ints []int) error {
	m := Msg{Src: c.rank, Tag: tag}
	if f != nil {
		m.F = append([]float64(nil), f...)
	}
	if ints != nil {
		m.I = append([]int(nil), ints...)
	}
	return c.sendMsg(dst, tag, m)
}

// Send32 is Send with a single-precision float payload — the wire path of
// the mixed-precision distributed drivers. Semantics match Send exactly
// (copied payloads, eager buffering, timeout/failure handling); in chaos
// mode the F32 payload is covered by the same checksum/retransmit
// machinery as F.
func (c *Comm) Send32(dst, tag int, f []float32, ints []int) error {
	m := Msg{Src: c.rank, Tag: tag}
	if f != nil {
		m.F32 = append([]float32(nil), f...)
	}
	if ints != nil {
		m.I = append([]int(nil), ints...)
	}
	return c.sendMsg(dst, tag, m)
}

// sendMsg is the shared delivery core of Send and Send32.
func (c *Comm) sendMsg(dst, tag int, m Msg) error {
	w := c.world
	if dst < 0 || dst >= w.size {
		return &OpError{Rank: c.rank, Op: "send", Peer: dst, Tag: tag, Err: ErrInvalidRank}
	}
	p := &w.prog[c.rank]
	p.sentTag.Store(int64(tag))
	p.sentPeer.Store(int64(dst))
	p.ops.Add(1)
	p.sends.Add(1)

	var pkt *packet
	var ch chan *packet
	if w.lossy {
		seq := w.sendSeq[c.rank][dst]
		w.sendSeq[c.rank][dst]++
		pkt = &packet{msg: m, seq: seq, sum: msgChecksum(m)}
		ch = w.out[c.rank][dst] // the link worker takes over delivery
	} else {
		pkt = &packet{msg: m}
		ch = w.data[c.rank][dst]
	}

	select {
	case ch <- pkt: // fast path: buffer has room
		return nil
	default:
	}
	timerC, stopTimer := w.opTimer()
	defer stopTimer()
	select {
	case ch <- pkt:
		return nil
	case <-w.failed[dst]:
		return &OpError{Rank: c.rank, Op: "send", Peer: dst, Tag: tag, Err: ErrRankFailed}
	case <-w.abort:
		return &OpError{Rank: c.rank, Op: "send", Peer: dst, Tag: tag, Err: ErrAborted}
	case <-timerC:
		mTimeouts.Load().Inc()
		return &OpError{Rank: c.rank, Op: "send", Peer: dst, Tag: tag, Err: ErrTimeout}
	}
}

// Recv blocks for the next message from src and verifies its tag. It
// returns ErrTimeout when the world timeout elapses, ErrRankFailed when
// src's goroutine has died with the link drained, and ErrTagMismatch on a
// protocol violation. In chaos mode it additionally discards corrupt
// packets (forcing a retransmission), deduplicates by sequence number and
// acknowledges delivery.
func (c *Comm) Recv(src, tag int) (Msg, error) {
	w := c.world
	if src < 0 || src >= w.size {
		return Msg{}, &OpError{Rank: c.rank, Op: "recv", Peer: src, Tag: tag, Err: ErrInvalidRank}
	}
	timerC, stopTimer := w.opTimer()
	defer stopTimer()
	for {
		pkt, err := c.nextPacket(src, tag, timerC)
		if err != nil {
			return Msg{}, err
		}
		if w.lossy {
			if pkt.sum != msgChecksum(pkt.msg) {
				w.rejects.Add(1)
				mRejects.Load().Inc()
				continue // no ack: the sender retransmits a clean copy
			}
			exp := w.recvSeq[src][c.rank]
			if pkt.seq < exp {
				c.sendAck(src, pkt.seq) // duplicate: re-ack, discard
				continue
			}
			// Stop-and-wait sender ⇒ seq == exp here.
			w.recvSeq[src][c.rank] = exp + 1
			c.sendAck(src, pkt.seq)
		}
		p := &w.prog[c.rank]
		p.recvTag.Store(int64(pkt.msg.Tag))
		p.recvPeer.Store(int64(src))
		p.ops.Add(1)
		if pkt.msg.Tag != tag {
			return Msg{}, &OpError{Rank: c.rank, Op: "recv", Peer: src, Tag: tag, Err: ErrTagMismatch}
		}
		return pkt.msg, nil
	}
}

// nextPacket pulls one packet off the link, preferring queued data over
// failure/abort signals so a dead peer's already-sent messages still
// drain.
func (c *Comm) nextPacket(src, tag int, timerC <-chan time.Time) (*packet, error) {
	w := c.world
	ch := w.data[src][c.rank]
	select {
	case pkt := <-ch:
		return pkt, nil
	default:
	}
	select {
	case pkt := <-ch:
		return pkt, nil
	case <-w.failed[src]:
		select {
		case pkt := <-ch:
			return pkt, nil
		default:
			return nil, &OpError{Rank: c.rank, Op: "recv", Peer: src, Tag: tag, Err: ErrRankFailed}
		}
	case <-w.abort:
		select {
		case pkt := <-ch:
			return pkt, nil
		default:
			return nil, &OpError{Rank: c.rank, Op: "recv", Peer: src, Tag: tag, Err: ErrAborted}
		}
	case <-timerC:
		mTimeouts.Load().Inc()
		return nil, &OpError{Rank: c.rank, Op: "recv", Peer: src, Tag: tag, Err: ErrTimeout}
	}
}

// sendAck posts a cumulative ack for link src→me. Non-blocking: the ack
// channel is generously buffered, and a lost ack only costs a (harmless,
// deduplicated) retransmission.
func (c *Comm) sendAck(src int, seq uint64) {
	select {
	case c.world.acks[src][c.rank] <- seq:
	default:
	}
}

// linkWorker is the chaos-mode delivery engine for one link: it takes
// packets from the outbox in order and runs the stop-and-wait
// transmit/ack/retransmit loop, applying the injector's drop / duplicate
// / delay / corrupt decisions per transmission attempt.
func (w *World) linkWorker(src, dst int) {
	defer w.helpers.Done()
	in := w.opt.Injector
	for {
		var pkt *packet
		select {
		case pkt = <-w.out[src][dst]:
		case <-w.stop:
			return
		}
		for attempt := 0; ; attempt++ {
			if w.isFailed(dst) {
				break // peer dead: drop the message
			}
			act := in.OnTransmit(src, dst, pkt.seq, attempt)
			if act.Delay > 0 && !w.sleep(act.Delay) {
				return
			}
			if !act.Drop {
				send := pkt
				if act.Corrupt {
					send = corruptPacket(pkt)
				}
				if !w.deliver(src, dst, send) {
					return
				}
				if act.Dup {
					// Best-effort second copy; dedup discards it.
					select {
					case w.data[src][dst] <- send:
					default:
					}
				}
			}
			if acked, alive := w.awaitAck(src, dst, pkt.seq, attempt); acked {
				break
			} else if !alive {
				return
			}
			w.resends.Add(1)
			mResends.Load().Inc()
		}
	}
}

// deliver blocks the packet into the data channel; false means the world
// stopped.
func (w *World) deliver(src, dst int, pkt *packet) bool {
	select {
	case w.data[src][dst] <- pkt:
		return true
	case <-w.failed[dst]:
		return true // drop: nobody will read it
	case <-w.stop:
		return false
	}
}

// awaitAck waits one backoff interval for a cumulative ack covering seq.
// Returns acked=true when covered (or the peer died — nothing left to
// wait for), alive=false when the world stopped.
func (w *World) awaitAck(src, dst int, seq uint64, attempt int) (acked, alive bool) {
	t := time.NewTimer(backoffFor(attempt))
	defer t.Stop()
	for {
		select {
		case s := <-w.acks[src][dst]:
			if s >= seq {
				return true, true
			}
		case <-t.C:
			return false, true
		case <-w.failed[dst]:
			return true, true
		case <-w.stop:
			return false, false
		}
	}
}

func (w *World) isFailed(rank int) bool {
	select {
	case <-w.failed[rank]:
		return true
	default:
		return false
	}
}

// sleep waits d interruptibly; false means the world stopped.
func (w *World) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.stop:
		return false
	}
}

// msgChecksum hashes tag, source and both payloads (FNV-1a over the raw
// float bits) so in-flight corruption is detected at the receiver.
func msgChecksum(m Msg) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(m.Src))
	mix(uint64(m.Tag))
	mix(uint64(len(m.F)))
	mix(uint64(len(m.F32)))
	mix(uint64(len(m.I)))
	for _, f := range m.F {
		mix(math.Float64bits(f))
	}
	for _, f := range m.F32 {
		mix(uint64(math.Float32bits(f)))
	}
	for _, v := range m.I {
		mix(uint64(v))
	}
	return h
}

// corruptPacket returns a deep copy with one payload bit flipped (the
// original stays intact for retransmission). The checksum is computed
// before the flip, so the receiver rejects the copy.
func corruptPacket(pkt *packet) *packet {
	out := *pkt
	out.msg.F = append([]float64(nil), pkt.msg.F...)
	out.msg.F32 = append([]float32(nil), pkt.msg.F32...)
	out.msg.I = append([]int(nil), pkt.msg.I...)
	switch {
	case len(out.msg.F) > 0:
		i := int(pkt.seq) % len(out.msg.F)
		out.msg.F[i] = math.Float64frombits(math.Float64bits(out.msg.F[i]) ^ (1 << 52))
	case len(out.msg.F32) > 0:
		i := int(pkt.seq) % len(out.msg.F32)
		out.msg.F32[i] = math.Float32frombits(math.Float32bits(out.msg.F32[i]) ^ (1 << 23))
	case len(out.msg.I) > 0:
		i := int(pkt.seq) % len(out.msg.I)
		out.msg.I[i] ^= 1 << 7
	default:
		out.msg.Tag ^= 1 << 5 // no payload: scramble the header
	}
	return &out
}
