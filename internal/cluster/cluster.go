// Package cluster provides the multi-node substrate for distributed
// Linpack: a real in-process message-passing fabric (ranks as goroutines,
// typed point-to-point sends, broadcasts, barriers) used by the functional
// distributed LU drivers, and an α-β cost model of the single-rail FDR
// InfiniBand network used by the virtual-time hybrid HPL simulation.
//
// The fabric is fault-aware. Every blocking operation returns a typed
// error instead of hanging: ErrTimeout when the world's per-operation
// timeout elapses, ErrRankFailed when the peer's goroutine has died, and
// ErrAborted once any rank has failed and the world is tearing down. When
// a fault.Injector is attached (chaos mode), the transport switches to
// sequence-numbered packets with checksums, acknowledgements and capped
// exponential-backoff retransmission, so dropped, duplicated, delayed or
// corrupted messages are recovered transparently — see transport.go. A
// progress watchdog can be armed to dump per-rank state (iteration, last
// tag sent/received) when the whole world stops making progress.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"phihpl/internal/fault"
)

// Typed fabric errors. Operations wrap them in *OpError; match with
// errors.Is.
var (
	// ErrTimeout: a blocking operation exceeded the world's Timeout.
	ErrTimeout = errors.New("cluster: operation timed out")
	// ErrRankFailed: the peer rank's goroutine returned an error or
	// panicked, so the operation can never complete.
	ErrRankFailed = errors.New("cluster: peer rank failed")
	// ErrAborted: some rank failed and the world is tearing down.
	ErrAborted = errors.New("cluster: world aborted after rank failure")
	// ErrInvalidRank: the destination or source rank is out of range.
	ErrInvalidRank = errors.New("cluster: invalid rank")
	// ErrTagMismatch: the received message carries an unexpected tag — the
	// Linpack protocols are deterministic, so this is a protocol bug.
	ErrTagMismatch = errors.New("cluster: tag mismatch")
)

// OpError describes a failed fabric operation; Unwrap yields the typed
// cause (ErrTimeout, ErrRankFailed, ...).
type OpError struct {
	Rank int    // the rank that issued the operation
	Op   string // "send", "recv", "bcast", "barrier", "progress"
	Peer int    // the peer rank, -1 for collectives
	Tag  int    // the message tag, -1 for collectives
	Err  error
}

func (e *OpError) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("cluster: rank %d %s peer %d tag %d: %v", e.Rank, e.Op, e.Peer, e.Tag, e.Err)
	}
	return fmt.Sprintf("cluster: rank %d %s: %v", e.Rank, e.Op, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// RankPanicError is a panic recovered from a rank's goroutine by
// World.Run; it matches ErrRankFailed under errors.Is.
type RankPanicError struct {
	Rank  int
	Value any
	Stack string
}

func (e *RankPanicError) Error() string {
	return fmt.Sprintf("cluster: rank %d panicked: %v", e.Rank, e.Value)
}

// Is makes errors.Is(err, ErrRankFailed) succeed.
func (e *RankPanicError) Is(target error) bool { return target == ErrRankFailed }

// Msg is one message: a tag for protocol sanity checking plus float and
// int payloads (matrix panels and pivot vectors). F32 carries
// single-precision panels for the mixed-precision distributed drivers —
// half the wire bytes of the same panel in F, and covered by the same
// end-to-end checksum in chaos mode.
type Msg struct {
	Src, Tag int
	F        []float64
	F32      []float32
	I        []int
}

// Options configure a world beyond its rank count.
type Options struct {
	// Buffer is the per-pair channel depth; sized by callers to absorb a
	// stage's worth of eagerly sent blocks (default 16).
	Buffer int
	// Timeout bounds every blocking Send/Recv/Barrier; 0 blocks forever
	// (the pre-fault-tolerance behavior).
	Timeout time.Duration
	// Injector enables chaos mode: the transport switches to
	// sequence-numbered, acknowledged, checksummed packets and the
	// injector decides each transmission's fate.
	Injector *fault.Injector
	// Watchdog, when positive, arms a monitor that logs per-rank state
	// (iteration, last tags) whenever no rank makes progress for this
	// long.
	Watchdog time.Duration
	// Logf receives watchdog dumps (default: standard error).
	Logf func(format string, args ...any)
	// FlatBcast reverts Comm.Bcast to the legacy root-sequential fan-out
	// (O(P) root sends) instead of the binomial tree — kept for A/B
	// comparison and for callers that need the root to be the direct
	// sender on every link.
	FlatBcast bool
}

// World is a communicator for `size` ranks.
type World struct {
	size  int
	opt   Options
	lossy bool // chaos transport active (Injector != nil)

	data [][]chan *packet // data[src][dst]
	acks [][]chan uint64  // cumulative acks for link src→dst (lossy mode)
	out  [][]chan *packet // sender-side outbox per link (lossy mode)

	// Per-link sequence counters. sendSeq[s][d] is touched only by rank
	// s's goroutine, recvSeq[s][d] only by rank d's — single-writer by
	// construction.
	sendSeq [][]uint64
	recvSeq [][]uint64

	bar *barrier

	failed   []chan struct{} // closed when rank r fails
	failOnce []sync.Once
	abort    chan struct{} // closed on first rank failure
	abortOne sync.Once
	stop     chan struct{} // closed when Run finishes; terminates helpers
	helpers  sync.WaitGroup

	prog    []rankProgress
	resends atomic.Uint64
	rejects atomic.Uint64 // packets discarded on checksum mismatch
}

// rankProgress is the watchdog's per-rank view, updated with atomics only.
type rankProgress struct {
	iter     atomic.Int64
	sentTag  atomic.Int64
	sentPeer atomic.Int64
	recvTag  atomic.Int64
	recvPeer atomic.Int64
	ops      atomic.Uint64
	sends    atomic.Uint64
	state    atomic.Int32 // 0 running, 1 done, 2 failed
}

// Stats reports the transport's recovery work and the injected faults.
type Stats struct {
	// Resends counts retransmissions after an acknowledgement timeout.
	Resends uint64
	// ChecksumRejects counts packets discarded as corrupt on receive.
	ChecksumRejects uint64
	// Faults are the injector's counters (zero without an injector).
	Faults fault.Stats
}

// NewWorld builds a clean world (no faults, no timeouts) with the given
// rank count and per-pair buffer — the fast path used by the plain
// distributed solvers.
func NewWorld(size, buffer int) *World {
	return NewWorldOpts(size, Options{Buffer: buffer})
}

// NewWorldOpts builds a world with explicit options. size < 1 is a
// provable caller bug and panics.
func NewWorldOpts(size int, opt Options) *World {
	if size < 1 {
		panic("cluster: need at least one rank")
	}
	if opt.Buffer < 1 {
		opt.Buffer = 16
	}
	if opt.Logf == nil {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	w := &World{
		size:  size,
		opt:   opt,
		lossy: opt.Injector != nil,
		bar:   newBarrier(size),
		abort: make(chan struct{}),
		stop:  make(chan struct{}),
	}
	w.data = make([][]chan *packet, size)
	w.sendSeq = make([][]uint64, size)
	w.recvSeq = make([][]uint64, size)
	if w.lossy {
		w.acks = make([][]chan uint64, size)
		w.out = make([][]chan *packet, size)
	}
	for s := 0; s < size; s++ {
		w.data[s] = make([]chan *packet, size)
		w.sendSeq[s] = make([]uint64, size)
		w.recvSeq[s] = make([]uint64, size)
		if w.lossy {
			w.acks[s] = make([]chan uint64, size)
			w.out[s] = make([]chan *packet, size)
		}
		for d := 0; d < size; d++ {
			w.data[s][d] = make(chan *packet, opt.Buffer)
			if w.lossy {
				w.acks[s][d] = make(chan uint64, 4*opt.Buffer+64)
				w.out[s][d] = make(chan *packet, opt.Buffer)
			}
		}
	}
	w.failed = make([]chan struct{}, size)
	w.failOnce = make([]sync.Once, size)
	for r := 0; r < size; r++ {
		w.failed[r] = make(chan struct{})
	}
	w.prog = make([]rankProgress, size)
	return w
}

// Size returns the rank count.
func (w *World) Size() int { return w.size }

// SendCount reports how many point-to-point sends the given rank has
// issued so far — the A/B observable for tree vs. flat broadcast.
func (w *World) SendCount(rank int) uint64 {
	if rank < 0 || rank >= w.size {
		return 0
	}
	return w.prog[rank].sends.Load()
}

// Stats snapshots the recovery counters. Meaningful after Run returns.
func (w *World) Stats() Stats {
	return Stats{
		Resends:         w.resends.Load(),
		ChecksumRejects: w.rejects.Load(),
		Faults:          w.opt.Injector.Stats(),
	}
}

// Run launches fn on every rank concurrently and waits for all to finish.
// A rank that panics is recovered into a *RankPanicError instead of
// wedging the process; the first rank failure (error return or panic)
// marks the rank failed and aborts the world, so every peer blocked on it
// unblocks with a typed error. The returned error joins every rank's
// error (nil when all ranks succeed). A world is good for one Run.
func (w *World) Run(fn func(c *Comm) error) error {
	if w.lossy {
		for s := 0; s < w.size; s++ {
			for d := 0; d < w.size; d++ {
				w.helpers.Add(1)
				go w.linkWorker(s, d)
			}
		}
	}
	if w.opt.Watchdog > 0 {
		w.helpers.Add(1)
		go w.watchdog()
	}

	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					errs[rank] = &RankPanicError{Rank: rank, Value: v, Stack: string(debug.Stack())}
					w.rankFailed(rank)
				}
			}()
			if err := fn(&Comm{world: w, rank: rank}); err != nil {
				errs[rank] = err
				w.rankFailed(rank)
			} else {
				w.prog[rank].state.Store(1)
			}
		}(r)
	}
	wg.Wait()
	close(w.stop)
	w.helpers.Wait()
	return errors.Join(errs...)
}

// rankFailed marks the rank dead, breaks the barrier and aborts the world.
func (w *World) rankFailed(rank int) {
	w.prog[rank].state.Store(2)
	w.failOnce[rank].Do(func() { close(w.failed[rank]) })
	w.bar.fail(ErrRankFailed)
	w.abortOne.Do(func() { close(w.abort) })
}

// opTimer returns a timeout channel honoring Options.Timeout (nil channel
// — never fires — when no timeout is set) and its cleanup func.
func (w *World) opTimer() (<-chan time.Time, func()) {
	if w.opt.Timeout <= 0 {
		return nil, func() {}
	}
	t := time.NewTimer(w.opt.Timeout)
	return t.C, func() { t.Stop() }
}

// watchdog logs per-rank state whenever no rank makes progress for a full
// interval.
func (w *World) watchdog() {
	defer w.helpers.Done()
	tick := time.NewTicker(w.opt.Watchdog)
	defer tick.Stop()
	last := w.opsSum()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			cur := w.opsSum()
			if cur != last {
				last = cur
				continue
			}
			w.dumpState()
		}
	}
}

func (w *World) opsSum() uint64 {
	var s uint64
	for r := range w.prog {
		s += w.prog[r].ops.Load() + uint64(w.prog[r].state.Load())
	}
	return s
}

// dumpState writes the stall report the tentpole asks for: per-rank
// iteration and last tags exchanged.
func (w *World) dumpState() {
	w.opt.Logf("cluster: no progress for %v; per-rank state:", w.opt.Watchdog)
	states := [...]string{"running", "done", "failed"}
	for r := range w.prog {
		p := &w.prog[r]
		w.opt.Logf("  rank %d [%s] iter=%d lastSent tag=%d→%d lastRecv tag=%d←%d ops=%d",
			r, states[p.state.Load()], p.iter.Load(),
			p.sentTag.Load(), p.sentPeer.Load(),
			p.recvTag.Load(), p.recvPeer.Load(), p.ops.Load())
	}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Progress records the rank's current iteration for the watchdog and
// fires any rank-level injected faults pinned to it: a planned stall
// sleeps here (interruptibly), a planned crash returns a *fault.CrashError
// the rank program must propagate.
func (c *Comm) Progress(iter int) error {
	w := c.world
	p := &w.prog[c.rank]
	p.iter.Store(int64(iter))
	p.ops.Add(1)
	in := w.opt.Injector
	if in == nil {
		return nil
	}
	if d, ok := in.StallAt(c.rank, iter); ok {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-w.abort:
			t.Stop()
			return &OpError{Rank: c.rank, Op: "progress", Peer: -1, Tag: -1, Err: ErrAborted}
		}
	}
	if in.CrashAt(c.rank, iter) {
		return &fault.CrashError{Rank: c.rank, Iter: iter}
	}
	return nil
}

// BcastTree returns rank me's position in the binomial broadcast tree
// rooted at root over a communicator of m ranks: the parent it receives
// from (-1 at the root) and the children it forwards to, in send order.
// The tree is the textbook MPI construction over rank positions relative
// to the root: a node at relative position rel receives from
// rel − lowestSetBit(rel) and sends to rel+mask for each mask below its
// own lowest set bit (the root, rel 0, sends for every power of two
// below m). Every rank appears exactly once and the root performs only
// ceil(log2 m) sends instead of m−1.
func BcastTree(m, root, me int) (parent int, children []int) {
	rel := ((me-root)%m + m) % m
	top := 1
	for top < m {
		top <<= 1
	}
	first := top // first mask to try, halved before use
	if rel != 0 {
		low := rel & -rel
		parent = ((rel - low) + root) % m
		first = low
	} else {
		parent = -1
	}
	for mask := first >> 1; mask >= 1; mask >>= 1 {
		if child := rel + mask; child < m {
			children = append(children, (child+root)%m)
		}
	}
	return parent, children
}

// Bcast distributes root's payload to every rank and returns the received
// (or original) message. By default it runs over the binomial tree from
// BcastTree — O(log P) root sends, with interior ranks relaying the
// payload bitwise — matching CostModel.BcastTree. Options.FlatBcast
// restores the legacy root-sequential fan-out.
func (c *Comm) Bcast(root, tag int, f []float64, ints []int) (Msg, error) {
	if c.world.opt.FlatBcast {
		if c.rank == root {
			for d := 0; d < c.world.size; d++ {
				if d != root {
					if err := c.Send(d, tag, f, ints); err != nil {
						return Msg{}, err
					}
				}
			}
			return Msg{Src: root, Tag: tag, F: f, I: ints}, nil
		}
		return c.Recv(root, tag)
	}
	parent, children := BcastTree(c.world.size, root, c.rank)
	m := Msg{Src: root, Tag: tag, F: f, I: ints}
	if parent >= 0 {
		got, err := c.Recv(parent, tag)
		if err != nil {
			return Msg{}, err
		}
		got.Src = root
		m = got
	}
	for _, child := range children {
		if err := c.Send(child, tag, m.F, m.I); err != nil {
			return Msg{}, err
		}
	}
	return m, nil
}

// Barrier blocks until every rank has arrived, the world's timeout
// elapses (ErrTimeout), or a rank fails (ErrRankFailed / ErrAborted). A
// broken barrier stays broken: the bulk-synchronous solvers cannot
// continue past a failed synchronization point.
func (c *Comm) Barrier() error {
	w := c.world
	w.prog[c.rank].ops.Add(1)
	if err := w.bar.await(w); err != nil {
		return &OpError{Rank: c.rank, Op: "barrier", Peer: -1, Tag: -1, Err: err}
	}
	return nil
}

// barrier is a reusable counting barrier that supports timeout and
// rank-failure wakeup.
type barrier struct {
	mu     sync.Mutex
	size   int
	count  int
	cur    *barGen
	broken error
}

type barGen struct {
	done      chan struct{}
	err       error
	completed bool
}

func newBarrier(size int) *barrier {
	return &barrier{size: size, cur: &barGen{done: make(chan struct{})}}
}

func (b *barrier) await(w *World) error {
	b.mu.Lock()
	if b.broken != nil {
		err := b.broken
		b.mu.Unlock()
		return err
	}
	g := b.cur
	b.count++
	if b.count == b.size {
		b.count = 0
		g.completed = true
		close(g.done)
		b.cur = &barGen{done: make(chan struct{})}
		b.mu.Unlock()
		return nil
	}
	b.mu.Unlock()

	timerC, stopTimer := w.opTimer()
	defer stopTimer()
	select {
	case <-g.done:
		b.mu.Lock()
		err := g.err
		b.mu.Unlock()
		return err
	case <-timerC:
		mTimeouts.Load().Inc()
		return b.breakGen(g, ErrTimeout)
	case <-w.abort:
		return b.breakGen(g, ErrAborted)
	}
}

// breakGen marks the generation failed and wakes its waiters, unless it
// completed while the caller was racing to break it.
func (b *barrier) breakGen(g *barGen, cause error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if g.completed {
		return g.err
	}
	if b.broken == nil {
		b.broken = cause
	}
	g.err = b.broken
	g.completed = true
	close(g.done)
	b.count = 0
	b.cur = &barGen{done: make(chan struct{})}
	return g.err
}

// fail permanently breaks the barrier (a rank died; it can never arrive).
func (b *barrier) fail(cause error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken == nil {
		b.broken = cause
	}
	g := b.cur
	if !g.completed {
		g.err = b.broken
		g.completed = true
		close(g.done)
		b.count = 0
		b.cur = &barGen{done: make(chan struct{})}
	}
}

// CyclicOwner returns the rank owning global panel p under block-cyclic
// distribution.
func CyclicOwner(p, size int) int { return p % size }
