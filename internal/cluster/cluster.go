// Package cluster provides the multi-node substrate for distributed
// Linpack: a real in-process message-passing fabric (ranks as goroutines,
// typed point-to-point sends, broadcasts, barriers) used by the functional
// distributed LU driver, and an α-β cost model of the single-rail FDR
// InfiniBand network used by the virtual-time hybrid HPL simulation.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"phihpl/internal/machine"
)

// Msg is one message: a tag for protocol sanity checking plus float and
// int payloads (matrix panels and pivot vectors).
type Msg struct {
	Src, Tag int
	F        []float64
	I        []int
}

// World is a communicator for `size` ranks. Channels are buffered so the
// deterministic Linpack protocols (send-then-compute) cannot deadlock.
type World struct {
	size  int
	chans [][]chan Msg // chans[src][dst]
	bar   *barrier
}

// NewWorld builds a world with the given rank count and per-pair buffer.
func NewWorld(size, buffer int) *World {
	if size < 1 {
		panic("cluster: need at least one rank")
	}
	if buffer < 1 {
		buffer = 16
	}
	w := &World{size: size, bar: newBarrier(size)}
	w.chans = make([][]chan Msg, size)
	for s := 0; s < size; s++ {
		w.chans[s] = make([]chan Msg, size)
		for d := 0; d < size; d++ {
			w.chans[s][d] = make(chan Msg, buffer)
		}
	}
	return w
}

// Size returns the rank count.
func (w *World) Size() int { return w.size }

// Run launches fn on every rank concurrently and waits for all to finish.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a message to dst. Payload slices are copied, so the sender
// may reuse its buffers immediately (MPI semantics).
func (c *Comm) Send(dst, tag int, f []float64, ints []int) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("cluster: Send to invalid rank %d", dst))
	}
	m := Msg{Src: c.rank, Tag: tag}
	if f != nil {
		m.F = append([]float64(nil), f...)
	}
	if ints != nil {
		m.I = append([]int(nil), ints...)
	}
	c.world.chans[c.rank][dst] <- m
}

// Recv blocks for the next message from src and verifies its tag — the
// Linpack protocols are deterministic, so a tag mismatch is a bug, not a
// reordering to tolerate.
func (c *Comm) Recv(src, tag int) Msg {
	m := <-c.world.chans[src][c.rank]
	if m.Tag != tag {
		panic(fmt.Sprintf("cluster: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.Tag))
	}
	return m
}

// Bcast distributes root's payload to every rank and returns the received
// (or original) message. Implemented as a root-sequential fan-out, which
// is semantically equivalent to a tree broadcast.
func (c *Comm) Bcast(root, tag int, f []float64, ints []int) Msg {
	if c.rank == root {
		for d := 0; d < c.world.size; d++ {
			if d != root {
				c.Send(d, tag, f, ints)
			}
		}
		return Msg{Src: root, Tag: tag, F: f, I: ints}
	}
	return c.Recv(root, tag)
}

// Barrier blocks until every rank has arrived.
func (c *Comm) Barrier() { c.world.bar.await() }

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

// CyclicOwner returns the rank owning global panel p under block-cyclic
// distribution.
func CyclicOwner(p, size int) int { return p % size }

// --- Network cost model -----------------------------------------------

// CostModel prices collective operations on the cluster fabric for the
// virtual-time HPL simulation.
type CostModel struct {
	Net machine.Interconnect
}

// NewCostModel returns the FDR InfiniBand model.
func NewCostModel() CostModel { return CostModel{Net: machine.FDRInfiniband()} }

// PtToPt returns the time to move `bytes` between two nodes.
func (m CostModel) PtToPt(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.Net.LatencySec + bytes/m.Net.BWBytes
}

// Bcast returns the time for a long-message broadcast of `bytes` to
// `members` ranks: HPL's panel and U broadcasts are pipelined
// (increasing-ring / bandwidth-optimal), so the payload crosses each link
// once and only the log-depth latency term scales with the member count.
func (m CostModel) Bcast(bytes float64, members int) float64 {
	if members <= 1 || bytes <= 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(members)))
	return rounds*m.Net.LatencySec + bytes/m.Net.BWBytes
}

// SwapExchange returns the network part of HPL's long row swap across
// `rows` process rows: each node exchanges its share of the swapped rows,
// (rows-1)/rows of `bytes` crossing the wire, plus a log-depth
// coordination term.
func (m CostModel) SwapExchange(bytes float64, rows int) float64 {
	if rows <= 1 || bytes <= 0 {
		return 0
	}
	frac := float64(rows-1) / float64(rows)
	rounds := math.Ceil(math.Log2(float64(rows)))
	return rounds*m.Net.LatencySec + frac*bytes/m.Net.BWBytes
}

// PivotAllreduce returns the per-column pivot-selection reduction cost for
// a panel of nb columns factored across `rows` process rows.
func (m CostModel) PivotAllreduce(nb, rows int) float64 {
	if rows <= 1 || nb <= 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(rows)))
	// Two log-depth phases (reduce + broadcast) of one cache line per column.
	return float64(nb) * 2 * rounds * m.Net.LatencySec
}
