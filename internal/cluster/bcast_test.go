package cluster

import (
	"math"
	"math/bits"
	"testing"

	"phihpl/internal/testutil"
)

// TestBcastTreePlan checks the binomial plan is a well-formed tree for
// every (size, root): each non-root rank has exactly one parent, the
// parent's child list contains it, and the root reaches everyone.
func TestBcastTreePlan(t *testing.T) {
	for m := 1; m <= 17; m++ {
		for root := 0; root < m; root++ {
			seen := make(map[int]bool, m)
			for me := 0; me < m; me++ {
				parent, children := BcastTree(m, root, me)
				if me == root {
					if parent != -1 {
						t.Fatalf("m=%d root=%d: root has parent %d", m, root, parent)
					}
				} else {
					if parent < 0 || parent >= m {
						t.Fatalf("m=%d root=%d me=%d: bad parent %d", m, root, me, parent)
					}
					_, pc := BcastTree(m, root, parent)
					found := false
					for _, c := range pc {
						if c == me {
							found = true
						}
					}
					if !found {
						t.Fatalf("m=%d root=%d me=%d: parent %d does not list me (children %v)", m, root, me, parent, pc)
					}
				}
				for _, c := range children {
					if c < 0 || c >= m || c == me {
						t.Fatalf("m=%d root=%d me=%d: bad child %d", m, root, me, c)
					}
					if seen[c] {
						t.Fatalf("m=%d root=%d: rank %d has two parents", m, root, c)
					}
					seen[c] = true
				}
			}
			if len(seen) != m-1 {
				t.Fatalf("m=%d root=%d: tree reaches %d of %d non-root ranks", m, root, len(seen), m-1)
			}
		}
	}
}

// TestBcastTreeDelivery runs a real tree broadcast on an 8-rank world
// and asserts every rank receives the root's payload bitwise, and that
// the root issued only ceil(log2 P) sends while the legacy flat fan-out
// issues P−1.
func TestBcastTreeDelivery(t *testing.T) {
	defer testutil.NoLeaks(t)()
	const size = 8
	payloadF := []float64{1.5, -2.25, math.Pi, 0, math.Inf(1)}
	payloadI := []int{7, -3, 0, 1 << 30}

	run := func(flat bool) (rootSends uint64) {
		w := NewWorldOpts(size, Options{Buffer: 8, FlatBcast: flat})
		err := w.Run(func(c *Comm) error {
			for root := 0; root < size; root++ {
				m, err := c.Bcast(root, 100+root, payloadF, payloadI)
				if err != nil {
					return err
				}
				if m.Src != root || m.Tag != 100+root {
					t.Errorf("flat=%v rank %d root %d: got src=%d tag=%d", flat, c.Rank(), root, m.Src, m.Tag)
				}
				if len(m.F) != len(payloadF) || len(m.I) != len(payloadI) {
					t.Errorf("flat=%v rank %d root %d: payload size mismatch", flat, c.Rank(), root)
					continue
				}
				for i, v := range payloadF {
					if math.Float64bits(m.F[i]) != math.Float64bits(v) {
						t.Errorf("flat=%v rank %d root %d: F[%d]=%v want %v", flat, c.Rank(), root, i, m.F[i], v)
					}
				}
				for i, v := range payloadI {
					if m.I[i] != v {
						t.Errorf("flat=%v rank %d root %d: I[%d]=%d want %d", flat, c.Rank(), root, i, m.I[i], v)
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("flat=%v: %v", flat, err)
		}
		return w.SendCount(0)
	}

	// Rank 0 is root exactly once; with flat fan-out it sends size−1
	// messages as root and none otherwise. With the tree it sends
	// ceil(log2 size) as root plus at most its relay sends — measure the
	// root-role sends directly with a single-root world instead.
	flatSends := runSingleRoot(t, true)
	treeSends := runSingleRoot(t, false)
	if flatSends != size-1 {
		t.Fatalf("flat root sends = %d, want %d", flatSends, size-1)
	}
	wantTree := uint64(bits.Len(uint(size - 1))) // ceil(log2 8) = 3
	if treeSends != wantTree {
		t.Fatalf("tree root sends = %d, want %d", treeSends, wantTree)
	}
	if treeSends >= flatSends {
		t.Fatalf("tree root sends (%d) not fewer than flat (%d)", treeSends, flatSends)
	}
	run(true)
	run(false)
}

// runSingleRoot broadcasts once from rank 0 and reports the root's send
// count.
func runSingleRoot(t *testing.T, flat bool) uint64 {
	t.Helper()
	const size = 8
	w := NewWorldOpts(size, Options{Buffer: 8, FlatBcast: flat})
	err := w.Run(func(c *Comm) error {
		_, err := c.Bcast(0, 42, []float64{1, 2, 3}, []int{4})
		return err
	})
	if err != nil {
		t.Fatalf("flat=%v: %v", flat, err)
	}
	return w.SendCount(0)
}

// TestBcastTreeCost sanity-checks the cost model: the tree beats the
// flat root fan-out for short messages at P ≥ 4 and both are monotone in
// member count.
func TestBcastTreeCost(t *testing.T) {
	m := NewCostModel()
	const bytes = 4096
	for _, p := range []int{4, 8, 16, 64} {
		tree := m.BcastTree(bytes, p)
		flat := float64(p-1) * m.PtToPt(bytes)
		if tree <= 0 {
			t.Fatalf("P=%d: tree cost %v not positive", p, tree)
		}
		if tree >= flat {
			t.Fatalf("P=%d: tree cost %v not below flat fan-out %v", p, tree, flat)
		}
	}
	if m.BcastTree(bytes, 1) != 0 || m.BcastTree(0, 8) != 0 {
		t.Fatal("degenerate BcastTree costs should be zero")
	}
	if m.BcastTree(bytes, 16) <= m.BcastTree(bytes, 4) {
		t.Fatal("BcastTree should grow with member count")
	}
}
