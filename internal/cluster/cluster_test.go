package cluster

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"phihpl/internal/fault"
	"phihpl/internal/machine"
	"phihpl/internal/testutil"
)

func TestSendRecv(t *testing.T) {
	defer testutil.NoLeaks(t)()
	w := NewWorld(2, 4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1, 2}, []int{3})
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if m.Src != 0 || len(m.F) != 2 || m.F[1] != 2 || m.I[0] != 3 {
			t.Errorf("bad message: %+v", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2, 4)
	buf := []float64{1}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, buf, nil); err != nil {
				return err
			}
			buf[0] = 99 // mutate after send: receiver must not see it
			return nil
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if m.F[0] != 1 {
			t.Errorf("payload not copied: %v", m.F[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv32(t *testing.T) {
	defer testutil.NoLeaks(t)()
	w := NewWorld(2, 4)
	buf := []float32{1.5, -2.25}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send32(1, 7, buf, []int{3}); err != nil {
				return err
			}
			buf[0] = 99 // mutate after send: receiver must not see it
			return nil
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if m.Src != 0 || len(m.F32) != 2 || m.F32[0] != 1.5 || m.F32[1] != -2.25 || m.I[0] != 3 {
			t.Errorf("bad message: %+v", m)
		}
		if len(m.F) != 0 {
			t.Errorf("FP64 payload should be empty, got %v", m.F)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChecksumCoversF32(t *testing.T) {
	base := Msg{Src: 1, Tag: 2, F32: []float32{1, 2, 3}}
	flipped := Msg{Src: 1, Tag: 2, F32: []float32{1, 2.0000002, 3}}
	if msgChecksum(base) == msgChecksum(flipped) {
		t.Error("checksum must change when an F32 element changes")
	}
	short := Msg{Src: 1, Tag: 2, F32: []float32{1, 2}}
	if msgChecksum(base) == msgChecksum(short) {
		t.Error("checksum must cover the F32 length")
	}
}

func TestCorruptPacketFlipsF32(t *testing.T) {
	pkt := &packet{msg: Msg{F32: []float32{4, 5, 6}}, seq: 1}
	out := corruptPacket(pkt)
	if out.msg.F32[1] == 5 {
		t.Error("F32 payload not corrupted")
	}
	if pkt.msg.F32[1] != 5 {
		t.Error("original packet mutated; retransmission would resend garbage")
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(4, 4)
	var mu sync.Mutex
	got := map[int]float64{}
	err := w.Run(func(c *Comm) error {
		m, err := c.Bcast(2, 5, []float64{42}, nil)
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = m.F[0]
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if got[r] != 42 {
			t.Errorf("rank %d got %v", r, got[r])
		}
	}
}

func TestBarrier(t *testing.T) {
	w := NewWorld(8, 4)
	var mu sync.Mutex
	phase := map[int]int{}
	err := w.Run(func(c *Comm) error {
		mu.Lock()
		phase[c.Rank()] = 1
		mu.Unlock()
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier, every rank must have reached phase 1.
		mu.Lock()
		for r := 0; r < 8; r++ {
			if phase[r] != 1 {
				t.Errorf("rank %d passed barrier before rank %d arrived", c.Rank(), r)
			}
		}
		mu.Unlock()
		return c.Barrier() // reusable
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchError(t *testing.T) {
	w := NewWorld(2, 4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, nil, nil)
		}
		_, err := c.Recv(0, 2)
		return err
	})
	if !errors.Is(err, ErrTagMismatch) {
		t.Errorf("want ErrTagMismatch, got %v", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Rank != 1 || oe.Peer != 0 {
		t.Errorf("OpError details wrong: %+v", oe)
	}
}

func TestInvalidRankError(t *testing.T) {
	w := NewWorld(1, 1)
	err := w.Run(func(c *Comm) error {
		if err := c.Send(5, 0, nil, nil); !errors.Is(err, ErrInvalidRank) {
			t.Errorf("Send to invalid rank: want ErrInvalidRank, got %v", err)
		}
		_, err := c.Recv(-1, 0)
		if !errors.Is(err, ErrInvalidRank) {
			t.Errorf("Recv from invalid rank: want ErrInvalidRank, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWorld(0, 1)
}

func TestRunRecoversPanicIntoError(t *testing.T) {
	defer testutil.NoLeaks(t)()
	w := NewWorldOpts(3, Options{Timeout: 2 * time.Second})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		// The other ranks block on the dying rank: they must unblock with
		// a typed error, not deadlock.
		_, err := c.Recv(1, 9)
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *RankPanicError
	if !errors.As(err, &pe) || pe.Rank != 1 {
		t.Errorf("expected RankPanicError for rank 1, got %v", err)
	}
	if !errors.Is(err, ErrRankFailed) {
		t.Error("panic should match ErrRankFailed")
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("panic value lost: %v", pe)
	}
}

func TestRecvTimeout(t *testing.T) {
	defer testutil.NoLeaks(t)()
	w := NewWorldOpts(2, Options{Timeout: 30 * time.Millisecond})
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return nil // never sends
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("want ErrTimeout, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout took %v", d)
	}
}

func TestBarrierTimeout(t *testing.T) {
	w := NewWorldOpts(2, Options{Timeout: 30 * time.Millisecond})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return nil // never arrives
		}
		return c.Barrier()
	})
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("want ErrTimeout, got %v", err)
	}
}

func TestBarrierRankFailure(t *testing.T) {
	w := NewWorldOpts(3, Options{Timeout: 5 * time.Second})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("deliberate failure")
		}
		return c.Barrier()
	})
	// The failed rank's own error plus the broken-barrier errors.
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("missing rank error: %v", err)
	}
	if !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrAborted) {
		t.Errorf("peers should see ErrRankFailed/ErrAborted: %v", err)
	}
}

func TestRecvFromFailedRankDrainsQueuedData(t *testing.T) {
	// A rank that sends, then dies: its queued messages must still be
	// receivable before ErrRankFailed surfaces.
	w := NewWorldOpts(2, Options{Timeout: 2 * time.Second})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{7}, nil); err != nil {
				return err
			}
			return errors.New("rank 0 dies after sending")
		}
		time.Sleep(20 * time.Millisecond) // let rank 0 die first
		m, err := c.Recv(0, 1)
		if err != nil {
			t.Errorf("queued message lost: %v", err)
			return nil
		}
		if m.F[0] != 7 {
			t.Errorf("bad payload %v", m.F)
		}
		// Next receive finds the link dead.
		if _, err := c.Recv(0, 2); !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrAborted) {
			t.Errorf("want ErrRankFailed/ErrAborted, got %v", err)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 0 dies") {
		t.Fatalf("expected rank 0's error: %v", err)
	}
}

func TestCyclicOwner(t *testing.T) {
	if CyclicOwner(0, 3) != 0 || CyclicOwner(4, 3) != 1 || CyclicOwner(5, 3) != 2 {
		t.Error("cyclic ownership wrong")
	}
}

// --- chaos-mode transport ------------------------------------------------

func lossyRing(t *testing.T, plan *fault.Plan, rounds int) Stats {
	t.Helper()
	const n = 4
	in := fault.NewInjector(plan)
	w := NewWorldOpts(n, Options{Timeout: 5 * time.Second, Injector: in})
	err := w.Run(func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		for r := 0; r < rounds; r++ {
			if err := c.Send(next, 100+r, []float64{float64(c.Rank()*1000 + r)}, []int{r}); err != nil {
				return err
			}
			m, err := c.Recv(prev, 100+r)
			if err != nil {
				return err
			}
			if m.F[0] != float64(prev*1000+r) || m.I[0] != r {
				t.Errorf("rank %d round %d: corrupt delivery %v %v", c.Rank(), r, m.F, m.I)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("lossy ring failed: %v", err)
	}
	return w.Stats()
}

func TestLossyDeliveryDrop(t *testing.T) {
	defer testutil.NoLeaks(t)()
	st := lossyRing(t, &fault.Plan{Seed: 11, Drop: 0.25}, 40)
	if st.Faults.Drops == 0 {
		t.Error("no drops injected at p=0.25")
	}
	if st.Resends == 0 {
		t.Error("drops must force retransmissions")
	}
}

func TestLossyDeliveryDupAndDelay(t *testing.T) {
	st := lossyRing(t, &fault.Plan{Seed: 5, Dup: 0.3, Delay: 0.2, DelayFor: time.Millisecond}, 30)
	if st.Faults.Dups == 0 || st.Faults.Delays == 0 {
		t.Errorf("expected dups and delays: %+v", st.Faults)
	}
}

func TestLossyDeliveryCorruption(t *testing.T) {
	st := lossyRing(t, &fault.Plan{Seed: 23, Corrupt: 0.2}, 40)
	if st.Faults.Corrupts == 0 {
		t.Error("no corruption injected at p=0.2")
	}
	if st.ChecksumRejects == 0 {
		t.Error("corrupt packets must be rejected by checksum")
	}
}

func TestLossyDeliveryCorruptionF32(t *testing.T) {
	// The FP32 wire path must survive chaos mode: corrupt packets carrying
	// F32 payloads are rejected by checksum and retransmitted clean.
	defer testutil.NoLeaks(t)()
	const n = 4
	in := fault.NewInjector(&fault.Plan{Seed: 31, Drop: 0.15, Corrupt: 0.2})
	w := NewWorldOpts(n, Options{Timeout: 5 * time.Second, Injector: in})
	err := w.Run(func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		for r := 0; r < 40; r++ {
			if err := c.Send32(next, 200+r, []float32{float32(c.Rank()*1000 + r)}, []int{r}); err != nil {
				return err
			}
			m, err := c.Recv(prev, 200+r)
			if err != nil {
				return err
			}
			if m.F32[0] != float32(prev*1000+r) || m.I[0] != r {
				t.Errorf("rank %d round %d: corrupt F32 delivery %v %v", c.Rank(), r, m.F32, m.I)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("lossy F32 ring failed: %v", err)
	}
	st := w.Stats()
	if st.Faults.Corrupts == 0 {
		t.Error("no corruption injected at p=0.2")
	}
	if st.ChecksumRejects == 0 {
		t.Error("corrupt F32 packets must be rejected by checksum")
	}
}

func TestLossyEverythingAtOnce(t *testing.T) {
	defer testutil.NoLeaks(t)()
	lossyRing(t, &fault.Plan{
		Seed: 99, Drop: 0.15, Dup: 0.15, Corrupt: 0.1,
		Delay: 0.1, DelayFor: 500 * time.Microsecond,
	}, 30)
}

func TestLossyRepeatable(t *testing.T) {
	// Same plan, same protocol ⇒ the same faults fire on both runs (the
	// per-transmission decisions are pure hashes; only the retry count
	// can vary with scheduling). Both runs must deliver and inject.
	a := lossyRing(t, &fault.Plan{Seed: 7, Drop: 0.2, Corrupt: 0.1}, 25)
	b := lossyRing(t, &fault.Plan{Seed: 7, Drop: 0.2, Corrupt: 0.1}, 25)
	if a.Faults.Drops == 0 || b.Faults.Drops == 0 {
		t.Errorf("both runs must inject drops: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Faults.Corrupts == 0 || b.Faults.Corrupts == 0 {
		t.Errorf("both runs must inject corruption: %+v vs %+v", a.Faults, b.Faults)
	}
}

func TestInjectedCrashSurfacesTypedError(t *testing.T) {
	defer testutil.NoLeaks(t)()
	in := fault.NewInjector(&fault.Plan{Crashes: []fault.RankEvent{{Rank: 1, Iter: 2}}})
	w := NewWorldOpts(3, Options{Timeout: 2 * time.Second, Injector: in})
	err := w.Run(func(c *Comm) error {
		for iter := 0; iter < 5; iter++ {
			if err := c.Progress(iter); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, fault.ErrInjectedCrash) {
		t.Errorf("want injected crash in error chain, got %v", err)
	}
	if !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrAborted) {
		t.Errorf("peers should observe the failure: %v", err)
	}
}

func TestStallRecoversWhenShorterThanTimeout(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{Stalls: []fault.StallEvent{{Rank: 0, Iter: 1, Dur: 20 * time.Millisecond}}})
	w := NewWorldOpts(2, Options{Timeout: 2 * time.Second, Injector: in})
	err := w.Run(func(c *Comm) error {
		for iter := 0; iter < 3; iter++ {
			if err := c.Progress(iter); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("short stall should be absorbed: %v", err)
	}
}

func TestWatchdogDumpsOnStall(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, strings.TrimSpace(format))
		mu.Unlock()
	}
	w := NewWorldOpts(2, Options{
		Timeout:  200 * time.Millisecond,
		Watchdog: 30 * time.Millisecond,
		Logf:     logf,
	})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(1, 42) // peer never sends: a stall
			return err
		}
		time.Sleep(150 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout from the stalled recv, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "no progress") || !strings.Contains(joined, "rank %d") {
		t.Errorf("watchdog dump missing: %q", joined)
	}
}

func TestManyRanksStress(t *testing.T) {
	defer testutil.NoLeaks(t)()
	// Ring-pass under race detector.
	const n = 16
	w := NewWorld(n, 2)
	err := w.Run(func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		if err := c.Send(next, 9, []float64{float64(c.Rank())}, nil); err != nil {
			return err
		}
		m, err := c.Recv(prev, 9)
		if err != nil {
			return err
		}
		if int(m.F[0]) != prev {
			t.Errorf("rank %d got token %v", c.Rank(), m.F[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCostModel(t *testing.T) {
	m := NewCostModel()
	if m.Net.BWBytes != machine.FDRInfiniband().BWBytes {
		t.Error("default net wrong")
	}
	// 6 GB at 6 GB/s ~ 1 s.
	if d := m.PtToPt(6e9); d < 1.0 || d > 1.001 {
		t.Errorf("PtToPt = %v", d)
	}
	if m.PtToPt(0) != 0 {
		t.Error("zero bytes free")
	}
	// Pipelined broadcast: payload crosses the wire once, latency x3 rounds.
	if d := m.Bcast(6e9, 8); d < 1.0 || d > 1.001 {
		t.Errorf("Bcast = %v", d)
	}
	if m.Bcast(6e9, 8) >= 2*m.PtToPt(6e9) {
		t.Error("long-message bcast should not multiply bandwidth cost")
	}
	if m.Bcast(100, 1) != 0 {
		t.Error("single-member bcast free")
	}
	// Swap exchange moves (P-1)/P of the bytes.
	d2 := m.SwapExchange(6e9, 2)
	d4 := m.SwapExchange(6e9, 4)
	if !(d4 > d2) {
		t.Errorf("swap cost should grow with rows: %v %v", d2, d4)
	}
	if m.SwapExchange(100, 1) != 0 {
		t.Error("single-row swap free")
	}
	if m.PivotAllreduce(100, 1) != 0 {
		t.Error("single-row pivoting free")
	}
	if m.PivotAllreduce(100, 4) <= m.PivotAllreduce(100, 2) {
		t.Error("pivot allreduce grows with rows")
	}
}

func TestCostModelRecoveryPricing(t *testing.T) {
	m := NewCostModel()
	if m.Resend(1e6, 0) != 0 {
		t.Error("no loss, no resend cost")
	}
	lo, hi := m.Resend(1e6, 0.01), m.Resend(1e6, 0.1)
	if !(hi > lo && lo > 0) {
		t.Errorf("resend cost must grow with loss rate: %v %v", lo, hi)
	}
	// 2 GB at the 2 GB/s default checkpoint bandwidth ~ 1 s.
	if d := m.CheckpointWrite(2e9); d < 0.99 || d > 1.01 {
		t.Errorf("CheckpointWrite = %v", d)
	}
	if m.CheckpointWrite(0) != 0 {
		t.Error("empty checkpoint free")
	}
	// Checksum maintenance: 2 columns × 2·mLoc·nb² flops.
	rate := 1e9
	d := m.ChecksumUpdate(1000, 100, rate)
	want := 2 * 2 * 1000.0 * 100 * 100 / rate
	if d < 0.99*want || d > 1.01*want {
		t.Errorf("ChecksumUpdate = %v, want %v", d, want)
	}
	if m.ChecksumUpdate(0, 100, rate) != 0 {
		t.Error("empty update free")
	}
}
