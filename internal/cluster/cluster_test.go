package cluster

import (
	"sync"
	"testing"

	"phihpl/internal/machine"
)

func TestSendRecv(t *testing.T) {
	w := NewWorld(2, 4)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2}, []int{3})
		} else {
			m := c.Recv(0, 7)
			if m.Src != 0 || len(m.F) != 2 || m.F[1] != 2 || m.I[0] != 3 {
				t.Errorf("bad message: %+v", m)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2, 4)
	buf := []float64{1}
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, buf, nil)
			buf[0] = 99 // mutate after send: receiver must not see it
		} else {
			m := c.Recv(0, 1)
			if m.F[0] != 1 {
				t.Errorf("payload not copied: %v", m.F[0])
			}
		}
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(4, 4)
	var mu sync.Mutex
	got := map[int]float64{}
	w.Run(func(c *Comm) {
		m := c.Bcast(2, 5, []float64{42}, nil)
		mu.Lock()
		got[c.Rank()] = m.F[0]
		mu.Unlock()
	})
	for r := 0; r < 4; r++ {
		if got[r] != 42 {
			t.Errorf("rank %d got %v", r, got[r])
		}
	}
}

func TestBarrier(t *testing.T) {
	w := NewWorld(8, 4)
	var mu sync.Mutex
	phase := map[int]int{}
	w.Run(func(c *Comm) {
		mu.Lock()
		phase[c.Rank()] = 1
		mu.Unlock()
		c.Barrier()
		// After the barrier, every rank must have reached phase 1.
		mu.Lock()
		for r := 0; r < 8; r++ {
			if phase[r] != 1 {
				t.Errorf("rank %d passed barrier before rank %d arrived", c.Rank(), r)
			}
		}
		mu.Unlock()
		c.Barrier() // reusable
	})
}

func TestTagMismatchPanics(t *testing.T) {
	w := NewWorld(2, 4)
	done := make(chan bool, 1)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, nil, nil)
		} else {
			defer func() {
				done <- recover() != nil
			}()
			c.Recv(0, 2)
		}
	})
	if !<-done {
		t.Error("expected tag-mismatch panic")
	}
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(1, 1)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Send(5, 0, nil, nil)
	})
}

func TestNewWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWorld(0, 1)
}

func TestCyclicOwner(t *testing.T) {
	if CyclicOwner(0, 3) != 0 || CyclicOwner(4, 3) != 1 || CyclicOwner(5, 3) != 2 {
		t.Error("cyclic ownership wrong")
	}
}

func TestCostModel(t *testing.T) {
	m := NewCostModel()
	if m.Net.BWBytes != machine.FDRInfiniband().BWBytes {
		t.Error("default net wrong")
	}
	// 6 GB at 6 GB/s ~ 1 s.
	if d := m.PtToPt(6e9); d < 1.0 || d > 1.001 {
		t.Errorf("PtToPt = %v", d)
	}
	if m.PtToPt(0) != 0 {
		t.Error("zero bytes free")
	}
	// Pipelined broadcast: payload crosses the wire once, latency x3 rounds.
	if d := m.Bcast(6e9, 8); d < 1.0 || d > 1.001 {
		t.Errorf("Bcast = %v", d)
	}
	if m.Bcast(6e9, 8) >= 2*m.PtToPt(6e9) {
		t.Error("long-message bcast should not multiply bandwidth cost")
	}
	if m.Bcast(100, 1) != 0 {
		t.Error("single-member bcast free")
	}
	// Swap exchange moves (P-1)/P of the bytes.
	d2 := m.SwapExchange(6e9, 2)
	d4 := m.SwapExchange(6e9, 4)
	if !(d4 > d2) {
		t.Errorf("swap cost should grow with rows: %v %v", d2, d4)
	}
	if m.SwapExchange(100, 1) != 0 {
		t.Error("single-row swap free")
	}
	if m.PivotAllreduce(100, 1) != 0 {
		t.Error("single-row pivoting free")
	}
	if m.PivotAllreduce(100, 4) <= m.PivotAllreduce(100, 2) {
		t.Error("pivot allreduce grows with rows")
	}
}

func TestManyRanksStress(t *testing.T) {
	// Ring-pass under race detector.
	const n = 16
	w := NewWorld(n, 2)
	w.Run(func(c *Comm) {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		c.Send(next, 9, []float64{float64(c.Rank())}, nil)
		m := c.Recv(prev, 9)
		if int(m.F[0]) != prev {
			t.Errorf("rank %d got token %v", c.Rank(), m.F[0])
		}
	})
}
