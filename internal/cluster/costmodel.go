package cluster

import (
	"math"

	"phihpl/internal/machine"
)

// CostModel prices collective operations on the cluster fabric for the
// virtual-time HPL simulation, including the recovery traffic of the
// fault-tolerant protocol (retransmission, checkpoint write-back, ABFT
// checksum maintenance).
type CostModel struct {
	Net machine.Interconnect
	// CkptBWBytes is the node-local stable-storage write bandwidth used
	// to price checkpoint write-back (0 ⇒ 2 GB/s, a local SSD).
	CkptBWBytes float64
}

// NewCostModel returns the FDR InfiniBand model.
func NewCostModel() CostModel {
	return CostModel{Net: machine.FDRInfiniband(), CkptBWBytes: 2e9}
}

// PtToPt returns the time to move `bytes` between two nodes.
func (m CostModel) PtToPt(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.Net.LatencySec + bytes/m.Net.BWBytes
}

// Bcast returns the time for a long-message broadcast of `bytes` to
// `members` ranks: HPL's panel and U broadcasts are pipelined
// (increasing-ring / bandwidth-optimal), so the payload crosses each link
// once and only the log-depth latency term scales with the member count.
func (m CostModel) Bcast(bytes float64, members int) float64 {
	if members <= 1 || bytes <= 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(members)))
	return rounds*m.Net.LatencySec + bytes/m.Net.BWBytes
}

// BcastTree returns the time for a binomial-tree broadcast of `bytes` to
// `members` ranks — the store-and-forward tree Comm.Bcast runs: each of
// the ceil(log2 members) levels forwards the whole payload, so both the
// latency and the bandwidth term scale with the tree depth. For short
// messages this beats the flat O(P) root fan-out (whose root serializes
// members−1 full sends); for long messages the pipelined Bcast bound
// above is the better model.
func (m CostModel) BcastTree(bytes float64, members int) float64 {
	if members <= 1 || bytes <= 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(members)))
	return rounds * (m.Net.LatencySec + bytes/m.Net.BWBytes)
}

// SwapExchange returns the network part of HPL's long row swap across
// `rows` process rows: each node exchanges its share of the swapped rows,
// (rows-1)/rows of `bytes` crossing the wire, plus a log-depth
// coordination term.
func (m CostModel) SwapExchange(bytes float64, rows int) float64 {
	if rows <= 1 || bytes <= 0 {
		return 0
	}
	frac := float64(rows-1) / float64(rows)
	rounds := math.Ceil(math.Log2(float64(rows)))
	return rounds*m.Net.LatencySec + frac*bytes/m.Net.BWBytes
}

// PivotAllreduce returns the per-column pivot-selection reduction cost for
// a panel of nb columns factored across `rows` process rows.
func (m CostModel) PivotAllreduce(nb, rows int) float64 {
	if rows <= 1 || nb <= 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(rows)))
	// Two log-depth phases (reduce + broadcast) of one cache line per column.
	return float64(nb) * 2 * rounds * m.Net.LatencySec
}

// --- Recovery-traffic pricing ------------------------------------------

// RTO is the retransmission timeout the reliable fabric waits before
// resending an unacknowledged packet: a conservative multiple of the wire
// latency, mirroring TCP's RTT-derived timer.
func (m CostModel) RTO() float64 { return 10 * m.Net.LatencySec }

// Resend prices the expected retransmission overhead of moving `bytes`
// once under a per-transmission loss rate p: a geometric mean of p/(1-p)
// extra attempts, each costing one RTO wait plus the wire time.
func (m CostModel) Resend(bytes float64, lossRate float64) float64 {
	if lossRate <= 0 || bytes <= 0 {
		return 0
	}
	if lossRate > 0.99 {
		lossRate = 0.99
	}
	expected := lossRate / (1 - lossRate)
	return expected * (m.RTO() + m.PtToPt(bytes))
}

// CheckpointWrite prices writing `bytes` of local state to node-local
// stable storage (the super-step checkpoint of the fault-tolerant
// solver). Checkpoints on distinct nodes proceed in parallel, so the cost
// does not scale with the node count.
func (m CostModel) CheckpointWrite(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	bw := m.CkptBWBytes
	if bw <= 0 {
		bw = 2e9
	}
	return bytes / bw
}

// ChecksumUpdate prices one iteration's ABFT checksum-column maintenance:
// the pair of nb-wide Huang–Abraham checksum columns receive the same
// TRSM + GEMM treatment as a data column (2·mLoc·nb·nb flops each) at the
// node's update rate `rateFLOPS`.
func (m CostModel) ChecksumUpdate(mLoc, nb int, rateFLOPS float64) float64 {
	if mLoc <= 0 || nb <= 0 || rateFLOPS <= 0 {
		return 0
	}
	flops := 2 * 2 * float64(mLoc) * float64(nb) * float64(nb)
	return flops / rateFLOPS
}
