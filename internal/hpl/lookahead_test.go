package hpl

import (
	"context"
	"errors"
	"testing"

	"phihpl/internal/blas"
	"phihpl/internal/fault"
	"phihpl/internal/matrix"
	"phihpl/internal/testutil"
)

var allModes = []LookaheadMode{LookaheadNone, LookaheadBasic, LookaheadPipelined}

// TestLookaheadModesBitwiseIdentical is the schedule-equivalence table:
// every look-ahead mode, on every grid shape (including ragged final
// blocks and degenerate 1×Q / P×1 grids), must reproduce the sequential
// blocked factorization bit for bit and pass the HPL residual check.
func TestLookaheadModesBitwiseIdentical(t *testing.T) {
	defer testutil.NoLeaks(t)()
	for _, tc := range []struct{ n, nb, p, q int }{
		{48, 8, 1, 1},
		{48, 8, 2, 2},
		{64, 8, 3, 2},
		{64, 8, 2, 3},
		{60, 16, 1, 4},
		{60, 16, 4, 1},
		{75, 10, 2, 2}, // ragged final blocks
		{96, 16, 4, 4},
	} {
		a, b := matrix.RandomSystem(tc.n, 23)
		lu := a.Clone()
		piv := make([]int, tc.n)
		if err := blas.Dgetrf(lu, piv, tc.nb); err != nil {
			t.Fatal(err)
		}
		want := blas.LUSolve(lu, piv, b)

		for _, m := range allModes {
			r, err := SolveDistributed2DMode(tc.n, tc.nb, tc.p, tc.q, 23, m)
			if err != nil {
				t.Fatalf("%+v %s: %v", tc, m, err)
			}
			if r.Residual > matrix.ResidualThreshold {
				t.Errorf("%+v %s: residual %g FAILED", tc, m, r.Residual)
			}
			if r.Seconds <= 0 {
				t.Errorf("%+v %s: timed phase not reported (Seconds = %g)", tc, m, r.Seconds)
			}
			for i := range want {
				if r.X[i] != want[i] {
					t.Fatalf("%+v %s: x[%d] = %v, want %v (bitwise)", tc, m, i, r.X[i], want[i])
				}
			}
		}
	}
}

// The hybrid (offload-engine) driver reorders the trailing-update
// arithmetic, so equality is to tolerance, not bitwise — but every
// schedule must still agree with the plain solver and pass the residual.
func TestLookaheadModesHybridAgree(t *testing.T) {
	defer testutil.NoLeaks(t)()
	n, nb := 96, 16
	plain, err := SolveDistributed2D(n, nb, 2, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allModes {
		hy, err := SolveDistributed2DHybridMode(n, nb, 2, 2, 31, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if hy.Residual > matrix.ResidualThreshold {
			t.Errorf("%s: hybrid residual %g FAILED", m, hy.Residual)
		}
		for i := range plain.X {
			d := plain.X[i] - hy.X[i]
			if d > 1e-6 || d < -1e-6 {
				t.Fatalf("%s: solutions diverge at %d: %v vs %v", m, i, plain.X[i], hy.X[i])
			}
		}
	}
}

// Cancelling mid-run under the pipelined schedule must drain the async
// trailing-update worker along with the ranks: plain ctx.Err() out, no
// leaked goroutines.
func TestLookaheadPipelinedCtxCancelMidRun(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx := &countCtx{Context: context.Background(), after: 6}
	_, err := SolveDistributed2DModeCtx(ctx, 96, 8, 2, 2, 5, LookaheadPipelined, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A crash-and-rollback recovery under the pipelined schedule must land on
// the same bits as an undisturbed pipelined run.
func TestLookaheadPipelinedFTCrashRestart(t *testing.T) {
	defer testutil.NoLeaks(t)()
	clean, err := SolveDistributed2DMode(96, 16, 2, 2, 7, LookaheadPipelined)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Crashes: []fault.RankEvent{{Rank: 1, Iter: 3}}}
	r, err := runFTWithDeadline(t, 96, 16, 2, 2, 7, FTConfig{
		Plan: plan, CheckpointEvery: 2, MaxRestarts: 2, Lookahead: LookaheadPipelined,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.FT.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", r.FT.Restarts)
	}
	if r.Residual > matrix.ResidualThreshold {
		t.Errorf("residual %g FAILED after rollback", r.Residual)
	}
	for i := range clean.X {
		if r.X[i] != clean.X[i] {
			t.Fatalf("post-recovery solution differs at %d: %v vs %v", i, r.X[i], clean.X[i])
		}
	}
}

// An ABFT scrub repair under the pipelined schedule is forward recovery:
// no restart, reconstruction from the checksum columns, residual intact.
func TestLookaheadPipelinedFTScrub(t *testing.T) {
	defer testutil.NoLeaks(t)()
	plan := &fault.Plan{Scrubs: []fault.RankEvent{{Rank: 3, Iter: 1}}}
	r, err := runFTWithDeadline(t, 96, 16, 2, 2, 7, FTConfig{
		Plan: plan, CheckpointEvery: 2, Lookahead: LookaheadPipelined,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Residual > matrix.ResidualThreshold {
		t.Errorf("residual %g FAILED: corruption not repaired", r.Residual)
	}
	if r.FT.Reconstructions == 0 {
		t.Error("scrubbed block must be reconstructed from the ABFT checksums")
	}
	if r.FT.Restarts != 0 {
		t.Errorf("ABFT repair should be forward recovery, not rollback (restarts=%d)", r.FT.Restarts)
	}
}

func TestParseLookaheadMode(t *testing.T) {
	for _, m := range allModes {
		got, err := ParseLookaheadMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseLookaheadMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseLookaheadMode("eager"); err == nil {
		t.Error("unknown mode must error")
	}
	if s := LookaheadMode(99).String(); s != "LookaheadMode(99)" {
		t.Errorf("out-of-range String() = %q", s)
	}
	// The zero value is the default (and fastest) schedule.
	var zero LookaheadMode
	if zero != LookaheadPipelined {
		t.Error("zero LookaheadMode must be LookaheadPipelined")
	}
}
