package hpl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/fault"
	"phihpl/internal/matrix"
	"phihpl/internal/trace"
)

// ErrChecksum is returned when ABFT verification finds corruption it
// cannot localize and repair; the driver rolls back to the last
// checkpoint when one exists.
var ErrChecksum = errors.New("hpl: ABFT checksum verification failed beyond recovery")

// FTConfig configures the fault-tolerant 2D solver.
type FTConfig struct {
	// Plan is the deterministic fault plan to inject (nil or empty: a
	// clean run on the plain transport, bitwise identical to
	// SolveDistributed2D).
	Plan *fault.Plan
	// Timeout bounds every fabric operation (default 2s).
	Timeout time.Duration
	// CheckpointEvery is the super-step period in stages: after every
	// such stage the grid verifies the ABFT checksums and deposits a
	// rollback checkpoint (default 4).
	CheckpointEvery int
	// MaxRestarts caps world respawns after unrecoverable faults
	// (default 3; negative disables restarts).
	MaxRestarts int
	// Watchdog arms the cluster progress monitor (0: off).
	Watchdog time.Duration
	// Logf receives watchdog dumps.
	Logf func(format string, args ...any)
	// Trace, when non-nil, receives one wall-clock span per rank per
	// super-step phase (worker = rank, name = "stage" / "verify" /
	// "checkpoint", iter = the outer stage) — the measured multi-rank
	// timeline of the FT protocol. Nil records nothing.
	Trace *trace.Recorder
	// Lookahead selects the stage schedule (default LookaheadPipelined,
	// the zero value). All modes are bitwise identical; look-ahead is
	// automatically suppressed across super-step boundaries so
	// verification and checkpoints always see an untouched next panel.
	Lookahead LookaheadMode
}

// FTStats counts the recovery work a fault-tolerant solve performed.
type FTStats struct {
	// Restarts is the number of world respawns (rollbacks to the last
	// checkpoint, or to the start when none existed yet).
	Restarts int
	// Resends and ChecksumRejects aggregate the transport's recovery
	// counters across all attempts.
	Resends         uint64
	ChecksumRejects uint64
	// Faults are the injector's counters.
	Faults fault.Stats
	// Reconstructions counts data blocks repaired from the ABFT
	// checksum columns; ChecksumRebuilds counts checksum blocks rebuilt
	// from clean data.
	Reconstructions  int
	ChecksumRebuilds int
	// Checkpoints counts promoted (complete) super-step checkpoints.
	Checkpoints int
}

// StageProfile is the wall-clock time of one outer iteration.
type StageProfile struct {
	Stage   int
	Seconds float64
}

// FaultError is the structured failure report of an unrecoverable
// fault-tolerant solve: the furthest iteration reached, the restart
// count, the per-iteration profile of the final attempt, and the
// underlying fabric error.
type FaultError struct {
	Iter     int
	Restarts int
	Profile  []StageProfile
	Err      error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("hpl: unrecoverable fault at iteration %d after %d restart(s): %v",
		e.Iter, e.Restarts, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// FT protocol tags (disjoint from the plain 2D bases).
const (
	tagFTCU      = 7 << 20  // + k: checksum-U broadcast down column cq
	tagFTSum     = 8 << 20  // + k*nBlocks + i: partial checksum sums
	tagFTVerdict = 9 << 20  // + k*nBlocks + i: per-row verdicts
	tagFTSwap    = 10 << 20 // + global row index: checksum row exchange
	tagFTWorst   = 11 << 20 // + k: global verdict reduce/bcast
	tagFTFix     = 12 << 20 // + k*nBlocks + i: repair re-reduction round
)

// ftTol is the absolute threshold separating ABFT checksum drift
// (round-off, ~1e-13 for the test sizes) from injected corruption
// (scrubs add 1e6).
const ftTol = 1e-3

// verdict codes of the super-step verification.
const (
	ftClean   = iota
	ftFixed   // a data block was reconstructed from the checksums
	ftRebuilt // a checksum block was rebuilt from clean data
	ftLost    // corruption could not be localized
)

// SolveDistributed2DFT is SolveDistributed2D extended with the paper-era
// HPC resilience stack: Huang–Abraham weighted checksum columns carried
// through swap/TRSM/GEMM as an extra block column (so a corrupted block
// is localized by the weight ratio and reconstructed in place), plus
// super-step checkpointing with rollback and world respawn for crashes,
// stalls and timeouts. With an empty plan the solve runs on the clean
// transport and its results are bitwise identical to SolveDistributed2D.
// On unrecoverable faults it returns a *FaultError — never garbage,
// never a hang.
func SolveDistributed2DFT(n, nb, p, q int, seed uint64, cfg FTConfig) (DistResult, error) {
	return SolveDistributed2DFTCtx(context.Background(), n, nb, p, q, seed, cfg)
}

// SolveDistributed2DFTCtx is SolveDistributed2DFT under a context.
// Cancellation is not a fault: once ctx is done the attempt unwinds at the
// next super-step boundary and the plain ctx.Err() is returned directly —
// no rollback, no respawn, no *FaultError wrapping — so callers can always
// distinguish "you asked me to stop" from "the machine failed".
func SolveDistributed2DFTCtx(ctx context.Context, n, nb, p, q int, seed uint64, cfg FTConfig) (DistResult, error) {
	if n < 1 || p < 1 || q < 1 {
		return DistResult{}, errors.New("hpl: n, P and Q must be positive")
	}
	if nb < 1 || nb > n {
		nb = clampNB(n)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 4
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	nBlocks := (n + nb - 1) / nb

	var in *fault.Injector
	if cfg.Plan != nil && !cfg.Plan.Empty() {
		in = fault.NewInjector(cfg.Plan)
	}
	store := newFTStore(p * q)
	var stats FTStats
	var lastErr error
	var profile []StageProfile

	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return DistResult{}, err
		}
		world := cluster.NewWorldOpts(p*q, cluster.Options{
			Buffer:   nBlocks*nBlocks + 16,
			Timeout:  cfg.Timeout,
			Injector: in,
			Watchdog: cfg.Watchdog,
			Logf:     cfg.Logf,
		})
		results := make([]DistResult, p*q)
		errs := make([]error, p*q)
		prof := make([]StageProfile, 0, nBlocks)

		runErr := world.Run(func(c *Comm) error {
			g2 := &grid2d{c: c, ctx: ctx, P: p, Q: q, n: n, nb: nb, nBlocks: nBlocks,
				mode: cfg.Lookahead, rec: cfg.Trace}
			g2.p, g2.q = c.Rank()/q, c.Rank()%q
			f := &ftGrid{
				grid2d: g2, in: in, store: store, cfg: cfg,
				cq: nBlocks % q, profile: &prof,
			}
			g2.hooks = f
			g2.aheadBlocked = func(next int) bool { return next%cfg.CheckpointEvery == 0 }
			return f.runFT(seed, results, errs)
		})
		ws := world.Stats()
		stats.Resends += ws.Resends
		stats.ChecksumRejects += ws.ChecksumRejects
		profile = prof

		if runErr == nil {
			stats.Faults = in.Stats()
			stats.Restarts = attempt
			stats.Reconstructions, stats.ChecksumRebuilds, stats.Checkpoints = store.counters()
			res := results[0]
			res.FT = &stats
			for _, e := range errs {
				if e != nil {
					return res, e
				}
			}
			return res, nil
		}
		lastErr = runErr
		store.resetPending()
		if cerr := ctx.Err(); cerr != nil {
			// Cancellation, not a fault: don't burn a restart on it.
			return DistResult{}, cerr
		}
		if attempt >= cfg.MaxRestarts {
			return DistResult{}, &FaultError{
				Iter:     store.iterReached(),
				Restarts: attempt,
				Profile:  profile,
				Err:      lastErr,
			}
		}
		mFTRestarts.Load().Inc() // a rollback/respawn is about to happen
	}
}

// ftGrid is one process of the fault-tolerant solver: the plain 2D grid
// plus the two weighted checksum block columns C1(I) = Σ_J A(I,J)·S_J and
// C2(I) = Σ_J (J+1)·A(I,J)·S_J (S_J embeds ragged blocks into width nb),
// owned by process column cq as a virtual block column J = nBlocks.
type ftGrid struct {
	*grid2d
	in      *fault.Injector
	store   *ftStore
	cfg     FTConfig
	cq      int // process column owning the checksum blocks
	chk1    map[int]*matrix.Dense
	chk2    map[int]*matrix.Dense
	cu1     *matrix.Dense // this stage's L11⁻¹·C(k), broadcast down cq
	cu2     *matrix.Dense
	profile *[]StageProfile
}

// The ABFT checksum maintenance rides on the look-ahead schedule's
// synchronization hooks: row swaps are mirrored on the virtual checksum
// column once the stage's data swaps are complete, the checksum-U solve
// follows the L panel, and the checksum GEMM follows the stage's update
// phase (checksum blocks are disjoint from data blocks, so pipelined
// trailing updates may still be in flight).
func (f *ftGrid) afterSwaps(k int, piv []int) error { return f.swapChecksums(k, piv) }
func (f *ftGrid) afterL(k int) error                { return f.chkSolveAndBcast(k) }
func (f *ftGrid) afterUpdate(k int) error           { return f.updateChecksums(k) }

func (f *ftGrid) runFT(seed uint64, results []DistResult, errs []error) error {
	full, rhs := f.scatter(seed)
	f.startPipe()
	defer f.stopPipe()
	start := 0
	if snap, stage, ok := f.store.load(f.me()); ok {
		// Roll back: resume from the last promoted checkpoint.
		f.blocks = snap.blocks
		f.chk1, f.chk2 = snap.chk1, snap.chk2
		copy(f.globalPiv, snap.globalPiv)
		f.firstError = snap.firstError
		start = stage
	} else {
		f.initChecksums(full)
	}

	for k := start; k < f.nBlocks; k++ {
		// Super-step boundary: the FT loop's cancellation point.
		if err := f.ctxErr(); err != nil {
			return err
		}
		f.store.noteIter(k)
		t0 := time.Now()
		ts := f.cfg.Trace.Start()
		if err := f.c.Progress(k); err != nil {
			return err
		}
		if err := f.stage(k); err != nil {
			return err
		}
		f.cfg.Trace.Since(f.me(), "stage", k, ts)
		if f.in.ScrubAt(f.me(), k) {
			// Silent data corruption strikes a trailing block after the
			// stage's updates; the next super-step verifies it while the
			// block is still protected (checksums only cover the trailing
			// submatrix — corruption consumed into a factored panel before
			// a super-step is past forward recovery and rolls back). Any
			// pipelined updates still in flight finish first so the scrub
			// lands on settled data.
			if err := f.drainPipe(); err != nil {
				return err
			}
			f.scrubBlock(k)
		}
		if (k+1)%f.cfg.CheckpointEvery == 0 && k+1 < f.nBlocks {
			// Verification and checkpointing read the trailing blocks, so
			// the asynchronous update queue must be empty.
			if err := f.drainPipe(); err != nil {
				return err
			}
			ts = f.cfg.Trace.Start()
			if err := f.verify(k); err != nil {
				return err
			}
			f.cfg.Trace.Since(f.me(), "verify", k, ts)
			ts = f.cfg.Trace.Start()
			f.checkpoint(k)
			f.cfg.Trace.Since(f.me(), "checkpoint", k, ts)
			mFTCheckpoints.Load().Inc()
		}
		if f.me() == 0 {
			*f.profile = append(*f.profile, StageProfile{Stage: k, Seconds: time.Since(t0).Seconds()})
		}
	}
	return f.gatherAndSolve(full, rhs, results, errs)
}

// initChecksums builds C1 and C2 from the (deterministically generated)
// initial matrix — no communication needed.
func (f *ftGrid) initChecksums(full *matrix.Dense) {
	if f.q != f.cq {
		return
	}
	f.chk1 = make(map[int]*matrix.Dense)
	f.chk2 = make(map[int]*matrix.Dense)
	for i := 0; i < f.nBlocks; i++ {
		if i%f.P != f.p {
			continue
		}
		r, _ := f.blockDims(i, 0)
		// The checksum seeds span the whole block row, most of which this
		// rank does not own; regenerate the band by stream jump when the
		// full matrix was not materialized here (non-zero ranks).
		band := full
		if band == nil {
			band = matrix.RandomSubmatrix(f.n, f.seed, i*f.nb, 0, r, f.n)
		} else {
			band = full.View(i*f.nb, 0, r, f.n)
		}
		c1 := matrix.NewDense(r, f.nb)
		c2 := matrix.NewDense(r, f.nb)
		for j := 0; j < f.nBlocks; j++ {
			_, w := f.blockDims(i, j)
			blk := band.View(0, j*f.nb, r, w)
			wgt := float64(j + 1)
			for rr := 0; rr < r; rr++ {
				src := blk.Row(rr)
				d1, d2 := c1.Row(rr), c2.Row(rr)
				for cc := 0; cc < w; cc++ {
					d1[cc] += src[cc]
					d2[cc] += wgt * src[cc]
				}
			}
		}
		f.chk1[i] = c1
		f.chk2[i] = c2
	}
}

// swapChecksums applies the stage's pivot row swaps to the checksum
// columns, exactly mirroring swapRows for the virtual column.
func (f *ftGrid) swapChecksums(k int, piv []int) error {
	if f.q != f.cq {
		return nil
	}
	for j, pv := range piv {
		r1 := k*f.nb + j
		r2 := k*f.nb + pv
		if r1 == r2 {
			continue
		}
		i1, i2 := r1/f.nb, r2/f.nb
		p1, p2 := i1%f.P, i2%f.P
		l1, l2 := r1%f.nb, r2%f.nb
		tag := tagFTSwap + r1
		switch {
		case p1 == f.p && p2 == f.p:
			for _, chk := range []map[int]*matrix.Dense{f.chk1, f.chk2} {
				row1, row2 := chk[i1].Row(l1), chk[i2].Row(l2)
				for x := range row1 {
					row1[x], row2[x] = row2[x], row1[x]
				}
			}
		case p1 == f.p:
			if err := f.swapChkRows(i1, l1, f.rank(p2, f.q), tag); err != nil {
				return err
			}
		case p2 == f.p:
			if err := f.swapChkRows(i2, l2, f.rank(p1, f.q), tag); err != nil {
				return err
			}
		}
	}
	return nil
}

// swapChkRows exchanges row l of both checksum blocks of block row i with
// the peer rank.
func (f *ftGrid) swapChkRows(i, l, peer, tag int) error {
	row1, row2 := f.chk1[i].Row(l), f.chk2[i].Row(l)
	payload := append(append([]float64(nil), row1...), row2...)
	if err := f.c.Send(peer, tag, payload, nil); err != nil {
		return err
	}
	msg, err := f.c.Recv(peer, tag)
	if err != nil {
		return err
	}
	if len(msg.F) != 2*f.nb {
		return fmt.Errorf("hpl: checksum swap payload %d != %d", len(msg.F), 2*f.nb)
	}
	copy(row1, msg.F[:f.nb])
	copy(row2, msg.F[f.nb:])
	return nil
}

// chkSolveAndBcast performs the checksum columns' share of the U solve:
// CU = L11⁻¹·C(k) on the pivot row's cq rank, broadcast down column cq.
func (f *ftGrid) chkSolveAndBcast(k int) error {
	f.cu1, f.cu2 = nil, nil
	if f.q != f.cq || k+1 >= f.nBlocks {
		return nil
	}
	rootP, _ := f.owner(k, k)
	rk, _ := f.blockDims(k, 0)
	if f.p == rootP {
		f.cu1, f.cu2 = f.chk1[k], f.chk2[k]
		blas.Dtrsm(blas.Left, blas.Lower, false, blas.Unit, 1, f.stageL11, f.cu1)
		blas.Dtrsm(blas.Left, blas.Lower, false, blas.Unit, 1, f.stageL11, f.cu2)
		payload := append(flatten(f.cu1), flatten(f.cu2)...)
		for pp := 0; pp < f.P; pp++ {
			if pp != f.p {
				if err := f.c.Send(f.rank(pp, f.cq), tagFTCU+k, payload, nil); err != nil {
					return err
				}
			}
		}
		return nil
	}
	msg, err := f.c.Recv(f.rank(rootP, f.cq), tagFTCU+k)
	if err != nil {
		return err
	}
	half := rk * f.nb
	if len(msg.F) != 2*half {
		return fmt.Errorf("hpl: checksum-U payload %d != %d", len(msg.F), 2*half)
	}
	if f.cu1, err = unflatten(msg.F[:half], rk, f.nb); err != nil {
		return err
	}
	f.cu2, err = unflatten(msg.F[half:], rk, f.nb)
	return err
}

// updateChecksums applies the trailing update to the checksum columns:
// C(I) -= L21(I)·CU, the same GEMM every data column receives. The
// factored column's contribution cancels exactly, so the invariant
// C(I) = Σ_{J≥k+1} A(I,J)·S_J holds at the next super-step.
func (f *ftGrid) updateChecksums(k int) error {
	if f.q != f.cq || k+1 >= f.nBlocks {
		return nil
	}
	for i := k + 1; i < f.nBlocks; i++ {
		if i%f.P != f.p {
			continue
		}
		l := f.stageL21[i]
		if l == nil {
			return fmt.Errorf("hpl: rank (%d,%d) missing stage-%d L21 for checksum row %d", f.p, f.q, k, i)
		}
		blas.RankKUpdate(l, f.cu1, f.chk1[i], 1)
		blas.RankKUpdate(l, f.cu2, f.chk2[i], 1)
	}
	return nil
}

// scrubBlock corrupts one owned trailing data block in place (the "silent
// data corruption" fault): the block with the largest column index stays
// in the trailing submatrix longest, giving verification time to catch it.
func (f *ftGrid) scrubBlock(k int) {
	bi, bj := -1, -1
	for ij := range f.blocks {
		if ij[0] <= k || ij[1] <= k {
			continue
		}
		if ij[1] > bj || (ij[1] == bj && ij[0] > bi) {
			bi, bj = ij[0], ij[1]
		}
	}
	if bj < 0 {
		return // no trailing block owned: nothing to scrub
	}
	blk := f.blocks[[2]int{bi, bj}]
	blk.Set(0, 0, blk.At(0, 0)+1e6)
}
