package hpl

import (
	"phihpl/internal/cluster"
	"phihpl/internal/machine"
	"phihpl/internal/perfmodel"
)

// NativeClusterConfig describes the paper's future-work configuration
// (Section VII): Linpack runs *natively* on a P×Q grid of Knights Corner
// cards while the host CPUs sit in deep sleep. The hosts still forward
// network traffic, so every fabric message pays two extra PCIe hops.
type NativeClusterConfig struct {
	N    int
	NB   int // 0 -> 300, the native blocking of Section IV
	P, Q int
}

// NativeClusterResult reports the projection.
type NativeClusterResult struct {
	Config  NativeClusterConfig
	Seconds float64
	TFLOPS  float64
	// Eff is measured against the cards' aggregate 60-core compute peak
	// (the native denominator of Section IV).
	Eff float64
}

// MaxNativeProblemSize returns the largest N (multiple of nb) whose
// distributed matrix fits the cards' 8 GB GDDR across a P×Q grid — the
// native analogue of MaxProblemSize, and the reason the paper's native
// results stop at N=30K per card.
func MaxNativeProblemSize(p, q, nb int) int {
	bytes := float64(p*q) * 8 * float64(1<<30) * 0.85
	n := int(mathSqrt(bytes / 8))
	return n - n%nb
}

func mathSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// SimulateNativeCluster prices the future-work native multi-node run. The
// per-node compute model mirrors the dynamic-scheduled native Linpack
// (panels on the card, card-rate updates); communication pays the
// PCIe-forwarding penalty.
func SimulateNativeCluster(cfg NativeClusterConfig) NativeClusterResult {
	if cfg.NB < 1 {
		cfg.NB = 300
	}
	if cfg.P < 1 {
		cfg.P = 1
	}
	if cfg.Q < 1 {
		cfg.Q = 1
	}
	knc := perfmodel.NewKNC()
	net := cluster.NewCostModel()
	link := machine.DefaultPCIe()

	// A fabric byte crosses: card -> PCIe -> wire -> PCIe -> card.
	pcieHop := func(bytes float64) float64 {
		if bytes <= 0 {
			return 0
		}
		return 2 * (link.LatencySec + bytes/link.RawBW)
	}

	n, nb := cfg.N, cfg.NB
	np := n / nb
	if np < 1 {
		np = 1
	}
	const cardThreads = 240

	total := 0.0
	for i := 0; i < np; i++ {
		mRem := n - (i+1)*nb
		mLoc := mRem / cfg.P
		nLoc := mRem / cfg.Q
		panelRows := (n - i*nb) / cfg.P

		// Panel on the card: slower than host panels — the cost the paper
		// accepts in exchange for the energy win.
		tPanel := knc.PanelTime(panelRows, nb, cardThreads) +
			net.PivotAllreduce(nb, cfg.P) + pcieHop(8*float64(nb))
		panelBytes := 8 * float64(panelRows) * float64(nb)
		tPanelBcast := net.Bcast(panelBytes, cfg.Q) + pcieHop(panelBytes)

		var tSwap, tTrsm, tUBcast, tUpdate float64
		if nLoc > 0 {
			swapWire := 8 * float64(nb) * float64(nLoc)
			tSwap = knc.SwapTime(nb, nLoc) + net.SwapExchange(swapWire, cfg.P) + pcieHop(swapWire)
			tTrsm = knc.TrsmTime(nb, nLoc, 60)
			uBytes := 8 * float64(nb) * float64(nLoc)
			tUBcast = net.Bcast(uBytes, cfg.P) + pcieHop(uBytes)
		}
		if mLoc > 0 && nLoc > 0 {
			tUpdate = knc.UpdateDgemmTime(mLoc, nLoc, nb, 60)
		}

		// Dynamic scheduling on the card hides the panel behind the
		// update (Section IV); swaps/TRSM/U-bcast remain exposed, as in
		// the basic hybrid scheme — the native code has no host to
		// pipeline them on.
		overlap := tUpdate
		if pb := tPanel + tPanelBcast; pb > overlap {
			overlap = pb
		}
		total += tSwap + tTrsm + tUBcast + overlap
	}

	flops := perfmodel.LUFlops(n)
	peak := float64(cfg.P*cfg.Q) * machine.KnightsCorner().ComputePeakDPGFLOPS() * 1e9
	tf := flops / total / 1e12
	return NativeClusterResult{
		Config:  cfg,
		Seconds: total,
		TFLOPS:  tf,
		Eff:     tf * 1e12 / peak,
	}
}
