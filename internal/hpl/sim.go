package hpl

import (
	"math"

	"phihpl/internal/cluster"
	"phihpl/internal/machine"
	"phihpl/internal/offload"
	"phihpl/internal/perfmodel"
	"phihpl/internal/trace"
)

// Mode selects the look-ahead scheme of Figure 8.
type Mode int

const (
	// NoLookahead runs every phase serially; the card idles outside the
	// trailing update (Figure 8a).
	NoLookahead Mode = iota
	// BasicLookahead overlaps the next panel factorization (and its
	// broadcast) with the trailing update, but U broadcast, row swapping
	// and DTRSM stay exposed (Figure 8b; Table III's "no pipeline").
	BasicLookahead
	// PipelinedLookahead additionally software-pipelines U broadcast,
	// swapping and DTRSM in column chunks so they overlap the update
	// (Figure 8c; Table III's "pipeline").
	PipelinedLookahead
)

func (m Mode) String() string {
	switch m {
	case NoLookahead:
		return "none"
	case BasicLookahead:
		return "basic"
	default:
		return "pipelined"
	}
}

// SimConfig describes one hybrid HPL run (a Table III row).
type SimConfig struct {
	N    int
	NB   int // offload panel depth, 0 -> 1200 (the paper's Kt)
	P, Q int // process grid; nodes = P*Q
	// Cards per node: 0 = CPU-only (MKL baseline), 1 or 2 = hybrid.
	Cards int
	// HostMemGiB bounds the problem size (64 or 128 in Table III).
	HostMemGiB int
	Lookahead  Mode
	// Trace receives per-iteration region spans (Figure 9): names
	// "DGEMM", "swap", "DTRSM", "Ubcast", "panel".
	Trace *trace.Recorder
	// FTLossRate > 0 prices the fault-tolerance machinery of the real
	// solver into the projection: expected retransmission traffic at
	// this per-message loss rate, ABFT checksum-column maintenance every
	// iteration, and a super-step checkpoint write-back every
	// FTCheckpointEvery panel stages.
	FTLossRate        float64
	FTCheckpointEvery int
}

func (c SimConfig) withDefaults() SimConfig {
	if c.NB < 1 {
		c.NB = 1200
	}
	if c.P < 1 {
		c.P = 1
	}
	if c.Q < 1 {
		c.Q = 1
	}
	if c.Cards < 0 {
		c.Cards = 0
	}
	if c.HostMemGiB < 1 {
		c.HostMemGiB = 64
	}
	return c
}

// SimResult is one Table III row's outcome.
type SimResult struct {
	Config  SimConfig
	Seconds float64
	TFLOPS  float64
	Eff     float64
	// CardIdleFrac is the fraction of run time the coprocessors idle
	// (the quantity Figure 9 visualizes).
	CardIdleFrac float64
	// FTOverheadFrac is the fraction of run time spent on resilience
	// (resends + checksum updates + checkpoints) when FT pricing is on.
	FTOverheadFrac float64
}

// Calibration of the hybrid host model.
const (
	// hostUpdateShare: fraction of host DGEMM throughput contributed to
	// the trailing update via work stealing while panels, packing and
	// swaps run on designated cores.
	hostUpdateShare = 0.78
	// hostTrsmEff / hostSwapStreamFrac: the exposed U-update kernels;
	// DTRSM on a 1200-row operand and strided row swapping both run well
	// below peak.
	hostTrsmEff        = 0.30
	hostSwapStreamFrac = 0.25
	// pipeline parameters: the pipelined look-ahead splits U broadcast /
	// swap / DTRSM into pipeChunks column chunks; each chunk boundary
	// costs pipeChunkOverhead of host orchestration, which is also what
	// delays panel factorization in late iterations (Section V-A).
	pipeChunks        = 8
	pipeChunkOverhead = 1.2e-3
	// pipeResidualFrac: the sliver of swap/DTRSM/U-broadcast that stays
	// exposed even inside the pipeline (synchronization between the
	// swapping threads and the offload threads). Cross-checked against
	// the real 2D driver's measured schedule ladder (BENCH_*.json,
	// cmd/benchjson): pipelining the real driver buys an additional
	// 7–10% of wall-clock over basic look-ahead on both benchmarked
	// grids, matching the model's residual-exposure prediction and the
	// paper's 7–9% efficiency claim (see EXPERIMENTS.md, Ablations).
	pipeResidualFrac = 0.05
)

// MaxProblemSize returns the largest N (rounded down to a multiple of nb)
// whose matrix fits in 85% of the cluster's aggregate host memory —
// how Table III's N values follow from the 64/128 GB configurations.
// Non-positive nodes, memory or nb yield 0 (no representable problem)
// instead of a division-by-zero panic.
func MaxProblemSize(nodes, memGiB, nb int) int {
	if nodes <= 0 || memGiB <= 0 || nb <= 0 {
		return 0
	}
	bytes := float64(nodes) * float64(memGiB) * float64(1<<30) * 0.85
	n := int(math.Sqrt(bytes / 8))
	return n - n%nb
}

// Simulate prices one hybrid HPL run.
func Simulate(cfg SimConfig) SimResult {
	cfg = cfg.withDefaults()
	nodes := cfg.P * cfg.Q
	node := machine.HybridNode(cfg.Cards, cfg.HostMemGiB)
	peak := float64(nodes) * node.PeakDPGFLOPS() * 1e9

	if cfg.Cards == 0 {
		return simulateCPUOnly(cfg, nodes)
	}

	snb := perfmodel.NewSNB()
	net := cluster.NewCostModel()
	off := offload.SimConfig{Cards: cfg.Cards}

	hostRate := hostUpdateShare * snb.DgemmEff(20000) * snb.Arch.PeakDPGFLOPS() * 1e9
	hostPeak := snb.Arch.PeakDPGFLOPS() * 1e9

	n, nb := cfg.N, cfg.NB
	np := n / nb
	if np < 1 {
		np = 1
	}

	total := 0.0
	cardBusy := 0.0
	ftTotal := 0.0
	ftOn := cfg.FTLossRate > 0 || cfg.FTCheckpointEvery > 0

	for i := 0; i < np; i++ {
		mRem := n - (i+1)*nb // trailing dimension after this panel
		mLoc := mRem / cfg.P
		nLoc := mRem / cfg.Q

		// --- phase costs on one node (the grid is bulk-synchronous; the
		// critical path is a representative node's iteration time).
		panelRows := (n - i*nb) / cfg.P
		tPanel := snb.PanelTime(panelRows, nb, snb.Arch.Threads()) +
			net.PivotAllreduce(nb, cfg.P)
		tPanelBcast := net.Bcast(8*float64(panelRows)*float64(nb), cfg.Q)

		var tSwap, tTrsm, tUBcast, tUpdate float64
		if nLoc > 0 {
			swapBytes := 2 * 8 * float64(nb) * float64(nLoc)
			tSwap = swapBytes/(hostSwapStreamFrac*snb.Arch.StreamBW) +
				net.SwapExchange(8*float64(nb)*float64(nLoc), cfg.P)
			tTrsm = float64(nb) * float64(nb) * float64(nLoc) / (hostTrsmEff * hostPeak)
			tUBcast = net.Bcast(8*float64(nb)*float64(nLoc), cfg.P)
		}
		if mLoc > 0 && nLoc > 0 {
			cardRate := offload.SteadyRate(mLoc, nLoc, off) * 1e9
			tUpdate = 2 * float64(mLoc) * float64(nLoc) * float64(nb) / (cardRate + hostRate)
		}

		last := i == np-1

		var iter, exposed, panelExposed float64
		switch {
		case last:
			iter = tPanel + tPanelBcast + tSwap + tTrsm + tUBcast + tUpdate
			exposed = tSwap + tTrsm + tUBcast
			panelExposed = tPanel + tPanelBcast
		case cfg.Lookahead == NoLookahead:
			iter = tPanel + tPanelBcast + tSwap + tTrsm + tUBcast + tUpdate
			exposed = tSwap + tTrsm + tUBcast
			panelExposed = tPanel + tPanelBcast
		case cfg.Lookahead == BasicLookahead:
			// Panel of stage i+1 overlaps the update; U broadcast, swap
			// and DTRSM stay exposed (the ≥13% idle of Figure 9a).
			exposed = tSwap + tTrsm + tUBcast
			overlap := maxf(tUpdate, tPanel+tPanelBcast)
			panelExposed = overlap - tUpdate
			iter = exposed + overlap
		default: // PipelinedLookahead
			// Only the first column chunk of Ubcast/swap/DTRSM is
			// exposed; the rest overlaps the update. Chunking costs
			// per-chunk overhead, which also delays the next panel.
			// Residual exposure: the first chunk, per-chunk orchestration,
			// and a sliver of imperfect overlap (synchronization between
			// the swapping threads and the offload threads).
			sum := tSwap + tTrsm + tUBcast
			pipeOverhead := pipeChunks * pipeChunkOverhead
			exposed = sum/pipeChunks + pipeOverhead + pipeResidualFrac*sum
			overlap := maxf(tUpdate, tPanel+tPanelBcast+pipeOverhead)
			panelExposed = overlap - tUpdate
			iter = exposed + overlap
		}

		if cfg.Trace != nil {
			t0 := total
			cfg.Trace.Add(0, "DGEMM", i, t0, t0+tUpdate)
			cfg.Trace.Add(1, "swap", i, t0, t0+swapShare(exposed, tSwap, tTrsm, tUBcast, tSwap))
			cfg.Trace.Add(1, "DTRSM", i, t0, t0+swapShare(exposed, tSwap, tTrsm, tUBcast, tTrsm))
			cfg.Trace.Add(1, "Ubcast", i, t0, t0+swapShare(exposed, tSwap, tTrsm, tUBcast, tUBcast))
			if panelExposed > 0 {
				cfg.Trace.Add(1, "panel", i, t0, t0+panelExposed)
			}
		}

		if ftOn {
			// Resilience rides the bulk-synchronous critical path: every
			// message this iteration carries expected retransmissions,
			// the checksum columns get the update treatment, and the
			// super-step boundary flushes the local panel to stable
			// storage.
			var ft float64
			if cfg.FTLossRate > 0 {
				msgBytes := 8 * (float64(panelRows)*float64(nb) + // panel bcast
					2*float64(nb)*float64(nLoc)) // U bcast + swap exchange
				ft += net.Resend(msgBytes, cfg.FTLossRate)
			}
			updRate := hostRate
			if mLoc > 0 && nLoc > 0 {
				updRate += offload.SteadyRate(mLoc, nLoc, off) * 1e9
			}
			ft += net.ChecksumUpdate(mLoc, nb, updRate)
			if cfg.FTCheckpointEvery > 0 && (i+1)%cfg.FTCheckpointEvery == 0 && !last {
				localBytes := 8 * float64(mLoc+nb) * float64(nLoc+nb)
				ft += net.CheckpointWrite(localBytes)
			}
			iter += ft
			ftTotal += ft
		}

		total += iter
		cardBusy += tUpdate
	}

	flops := perfmodel.LUFlops(n)
	tf := flops / total / 1e12
	return SimResult{
		Config:         cfg,
		Seconds:        total,
		TFLOPS:         tf,
		Eff:            tf * 1e12 / peak,
		CardIdleFrac:   1 - cardBusy/total,
		FTOverheadFrac: ftTotal / total,
	}
}

// swapShare apportions the exposed time across the three exposed kernels
// proportionally for the trace (the pipeline shrinks all three together).
func swapShare(exposed, a, b, c, this float64) float64 {
	sum := a + b + c
	if sum <= 0 {
		return 0
	}
	return exposed * this / sum
}

// simulateCPUOnly prices the MKL-only baseline rows of Table III.
func simulateCPUOnly(cfg SimConfig, nodes int) SimResult {
	snb := perfmodel.NewSNB()
	eff := snb.HPLEff(cfg.N)
	// Multi-node degradation: ~4% from 1 node to 2x2 in Table III.
	eff *= 1 - 0.102*(1-1/math.Sqrt(float64(nodes)))
	peak := float64(nodes) * snb.Arch.PeakDPGFLOPS() * 1e9
	g := eff * peak
	secs := perfmodel.LUFlops(cfg.N) / g
	return SimResult{
		Config:       cfg,
		Seconds:      secs,
		TFLOPS:       g / 1e12,
		Eff:          eff,
		CardIdleFrac: 0,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
