package hpl

import (
	"sync"

	"phihpl/internal/matrix"
)

// ftSnap is one rank's checkpointed state.
type ftSnap struct {
	blocks     map[[2]int]*matrix.Dense
	chk1, chk2 map[int]*matrix.Dense
	globalPiv  []int
	firstError error
}

// ftStore is the in-process stand-in for node-local stable storage: it
// survives world teardown, so a respawned world can roll back to the last
// complete (promoted) checkpoint. Deposits are two-phase — a checkpoint
// becomes visible only once every rank has deposited for the same stage,
// so a crash mid-checkpoint can never leave a torn restore point.
type ftStore struct {
	mu      sync.Mutex
	size    int
	stage   int // promoted resume stage (0: none)
	snaps   []*ftSnap
	pending map[int][]*ftSnap

	maxIter         int
	reconstructions int
	rebuilds        int
	checkpoints     int
}

func newFTStore(size int) *ftStore {
	return &ftStore{size: size, pending: make(map[int][]*ftSnap)}
}

// deposit files rank's snapshot for the given resume stage, promoting the
// checkpoint when it is the last one in.
func (s *ftStore) deposit(rank, stage int, snap *ftSnap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pending[stage]
	if p == nil {
		p = make([]*ftSnap, s.size)
		s.pending[stage] = p
	}
	p[rank] = snap
	for _, sn := range p {
		if sn == nil {
			return
		}
	}
	if stage > s.stage {
		s.stage = stage
		s.snaps = p
		s.checkpoints++
	}
	delete(s.pending, stage)
}

// load returns a deep copy of rank's promoted snapshot (the stored copy
// must stay pristine for further rollbacks) and the stage to resume at.
func (s *ftStore) load(rank int) (*ftSnap, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage == 0 {
		return nil, 0, false
	}
	src := s.snaps[rank]
	return &ftSnap{
		blocks:     cloneBlockMap(src.blocks),
		chk1:       cloneChkMap(src.chk1),
		chk2:       cloneChkMap(src.chk2),
		globalPiv:  append([]int(nil), src.globalPiv...),
		firstError: src.firstError,
	}, s.stage, true
}

// resetPending discards partial deposits from a crashed attempt.
func (s *ftStore) resetPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = make(map[int][]*ftSnap)
}

func (s *ftStore) noteIter(k int) {
	s.mu.Lock()
	if k > s.maxIter {
		s.maxIter = k
	}
	s.mu.Unlock()
}

func (s *ftStore) iterReached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxIter
}

func (s *ftStore) noteReconstruction() {
	s.mu.Lock()
	s.reconstructions++
	s.mu.Unlock()
}

func (s *ftStore) noteRebuild() {
	s.mu.Lock()
	s.rebuilds++
	s.mu.Unlock()
}

func (s *ftStore) counters() (reconstructions, rebuilds, checkpoints int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconstructions, s.rebuilds, s.checkpoints
}
