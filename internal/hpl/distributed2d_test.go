package hpl

import (
	"testing"
	"testing/quick"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
)

func TestSolveDistributed2DResidual(t *testing.T) {
	for _, tc := range []struct{ n, nb, p, q int }{
		{48, 8, 1, 1},
		{48, 8, 2, 2},
		{64, 8, 2, 3},
		{64, 8, 3, 2},
		{60, 16, 1, 4},
		{60, 16, 4, 1},
		{75, 10, 2, 2}, // ragged final blocks
	} {
		r, err := SolveDistributed2D(tc.n, tc.nb, tc.p, tc.q, 99)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r.Residual > matrix.ResidualThreshold {
			t.Errorf("%+v: residual %g FAILED", tc, r.Residual)
		}
		if r.Ranks != tc.p*tc.q {
			t.Errorf("%+v: ranks = %d", tc, r.Ranks)
		}
	}
}

func TestSolveDistributed2DMatchesSequential(t *testing.T) {
	n, nb := 72, 12
	a, b := matrix.RandomSystem(n, 17)
	lu := a.Clone()
	piv := make([]int, n)
	if err := blas.Dgetrf(lu, piv, nb); err != nil {
		t.Fatal(err)
	}
	want := blas.LUSolve(lu, piv, b)

	for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {2, 3}} {
		r, err := SolveDistributed2D(n, nb, grid[0], grid[1], 17)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if r.X[i] != want[i] {
				t.Fatalf("grid %v: x[%d] = %v, want %v (bitwise)", grid, i, r.X[i], want[i])
			}
		}
	}
}

func TestSolveDistributed2DGridInvariance(t *testing.T) {
	// Same answer regardless of grid shape.
	base, err := SolveDistributed2D(60, 10, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, grid := range [][2]int{{2, 1}, {1, 2}, {2, 2}, {3, 3}} {
		r, err := SolveDistributed2D(60, 10, grid[0], grid[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.X {
			if r.X[i] != base.X[i] {
				t.Fatalf("grid %v: solution differs at %d", grid, i)
			}
		}
	}
}

func TestSolveDistributed2DErrors(t *testing.T) {
	if _, err := SolveDistributed2D(0, 4, 2, 2, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := SolveDistributed2D(10, 4, 0, 2, 1); err == nil {
		t.Error("P=0 should error")
	}
	// nb=0 clamps.
	if _, err := SolveDistributed2D(16, 0, 2, 2, 1); err != nil {
		t.Errorf("nb=0 should clamp: %v", err)
	}
}

func TestSolveDistributed2DProperty(t *testing.T) {
	f := func(seed uint64, nR, pR, qR uint8) bool {
		n := 20 + int(nR)%40
		p := 1 + int(pR)%3
		q := 1 + int(qR)%3
		r, err := SolveDistributed2D(n, 8, p, q, seed)
		if err != nil {
			return true
		}
		return r.Residual < matrix.ResidualThreshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestSolveDistributed2DHybrid(t *testing.T) {
	// The offload-engine-backed updates must still pass the residual test
	// and agree with the plain driver to round-off.
	n, nb := 96, 16
	plain, err := SolveDistributed2D(n, nb, 2, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := SolveDistributed2DHybrid(n, nb, 2, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if hy.Residual > matrix.ResidualThreshold {
		t.Errorf("hybrid residual %g FAILED", hy.Residual)
	}
	for i := range plain.X {
		d := plain.X[i] - hy.X[i]
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, plain.X[i], hy.X[i])
		}
	}
}

func TestSolveDistributed2DHybridErrors(t *testing.T) {
	if _, err := SolveDistributed2DHybrid(0, 4, 1, 1, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := SolveDistributed2DHybrid(32, 0, 2, 1, 1); err != nil {
		t.Errorf("nb clamp: %v", err)
	}
}
