package hpl

import (
	"sync/atomic"

	"phihpl/internal/metrics"
)

// Metric sinks of the fault-tolerant driver. Per-run totals remain on
// FTStats; these aggregate across runs for the CLI's -metrics dump. All
// default to nil (no overhead, no allocation).
var (
	mFTRestarts    atomic.Pointer[metrics.Counter]
	mFTCheckpoints atomic.Pointer[metrics.Counter]
)

// SetMetrics attaches a metrics registry to the fault-tolerant solver
// (nil detaches). Counters registered: hpl.ft_restarts (world respawns
// after unrecoverable faults — the rollback count), hpl.ft_checkpoints
// (promoted super-step checkpoints).
func SetMetrics(reg *metrics.Registry) {
	mFTRestarts.Store(reg.Counter("hpl.ft_restarts"))
	mFTCheckpoints.Store(reg.Counter("hpl.ft_checkpoints"))
}
