package hpl

// Look-ahead schedules for the real 2D distributed HPL driver — the
// paper's none → basic → pipelined ladder (Section V, Fig. 8/9) applied
// to the functional in-process grid:
//
//   - LookaheadNone executes each stage as a fully synchronous bulk
//     sequence (factor → swap → broadcast L → broadcast U → update) —
//     the seed behavior, kept message-for-message identical.
//   - LookaheadBasic splits the trailing update: the next panel's block
//     column is updated first, panel k+1 is factored immediately and its
//     L broadcast posted, and only then does the rest of update k run —
//     panel factorization and broadcast latency hide behind GEMM.
//   - LookaheadPipelined decomposes the stage per block column: the row
//     swaps, U broadcast and DTRSM of column j proceed while the GEMM of
//     the previous column runs on an asynchronous worker, with the swaps
//     coalesced into one packed exchange per peer per column and the L
//     panel and panel gather/scatter batched into single messages.
//
// All three modes reorder work only across disjoint blocks and apply
// row swaps as exact permutations, so the factors they produce are
// bitwise identical to the sequential blocked algorithm (and to each
// other). The basic and pipelined modes broadcast L and U over the
// binomial tree of cluster.BcastTree; None keeps the seed's flat
// fan-outs so the A/B comparison stays honest.
import (
	"context"
	"fmt"
	"sort"
	"sync"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/matrix"
	"phihpl/internal/pool"
	"phihpl/internal/trace"
)

// LookaheadMode selects the stage schedule of the 2D distributed solver.
// The zero value is LookaheadPipelined: the fastest schedule is the
// default, and all modes produce bitwise-identical results.
type LookaheadMode int

const (
	// LookaheadPipelined software-pipelines swap/DTRSM/U-broadcast per
	// block column over the GEMM of the previous column (paper Fig. 9).
	LookaheadPipelined LookaheadMode = iota
	// LookaheadBasic factors panel k+1 and posts its broadcast before
	// finishing trailing update k (paper Fig. 8).
	LookaheadBasic
	// LookaheadNone runs the fully synchronous bulk schedule.
	LookaheadNone
)

// String returns the CLI spelling of the mode.
func (m LookaheadMode) String() string {
	switch m {
	case LookaheadNone:
		return "none"
	case LookaheadBasic:
		return "basic"
	case LookaheadPipelined:
		return "pipelined"
	}
	return fmt.Sprintf("LookaheadMode(%d)", int(m))
}

// ParseLookaheadMode parses the CLI spelling of a look-ahead mode.
func ParseLookaheadMode(s string) (LookaheadMode, error) {
	switch s {
	case "none":
		return LookaheadNone, nil
	case "basic":
		return LookaheadBasic, nil
	case "pipelined":
		return LookaheadPipelined, nil
	}
	return 0, fmt.Errorf("hpl: unknown look-ahead mode %q (want none, basic or pipelined)", s)
}

// stageHooks lets the fault-tolerant solver ride its ABFT checksum
// maintenance on the schedule's synchronization points: after the
// stage's row swaps are complete, after the L panel is available, and
// after the stage's (synchronous part of the) update.
type stageHooks interface {
	afterSwaps(k int, piv []int) error
	afterL(k int) error
	afterUpdate(k int) error
}

func (g *grid2d) hookAfterSwaps(k int, piv []int) error {
	if g.hooks == nil {
		return nil
	}
	return g.hooks.afterSwaps(k, piv)
}

func (g *grid2d) hookAfterL(k int) error {
	if g.hooks == nil {
		return nil
	}
	return g.hooks.afterL(k)
}

func (g *grid2d) hookAfterUpdate(k int) error {
	if g.hooks == nil {
		return nil
	}
	return g.hooks.afterUpdate(k)
}

func (g *grid2d) me() int { return g.rank(g.p, g.q) }

// tspan records one protocol-phase trace span for this rank.
func (g *grid2d) tspan(name string, k int, ts float64) {
	g.rec.Since(g.me(), name, k, ts)
}

// aheadOK reports whether panel `next` may be factored eagerly during
// the current stage. The FT solver blocks look-ahead across super-step
// boundaries so verification and checkpoints always see an untouched
// next panel.
func (g *grid2d) aheadOK(next int) bool {
	if g.mode == LookaheadNone || next >= g.nBlocks {
		return false
	}
	if g.aheadBlocked != nil && g.aheadBlocked(next) {
		return false
	}
	return true
}

// recordPivots folds the stage's panel-relative pivots into the global
// pivot vector.
func (g *grid2d) recordPivots(k int, piv []int) {
	for j, pv := range piv {
		g.globalPiv[k*g.nb+j] = k*g.nb + pv
	}
}

// panelSegs returns the block rows of panel k owned by this process row
// and their total flattened length.
func (g *grid2d) panelSegs(k int) (mine []int, total int) {
	_, w := g.blockDims(k, k)
	for i := k; i < g.nBlocks; i++ {
		if i%g.P == g.p {
			r, _ := g.blockDims(i, k)
			mine = append(mine, i)
			total += r * w
		}
	}
	return mine, total
}

// --- batched panel factorization (basic/pipelined) ---------------------

// ensureFactored makes panel k factored and returns its pivots. If the
// panel was factored eagerly during the previous stage, only the lazy
// pivot receive remains (the factored segments already sit in place on
// their owners); otherwise the full synchronous batched factorization
// runs.
func (g *grid2d) ensureFactored(k int) ([]int, error) {
	if !g.factored[k] {
		return g.factorPanelBatched(k)
	}
	g.factored[k] = false
	rootP, rootQ := g.owner(k, k)
	root := g.rank(rootP, rootQ)
	piv := g.pivots[k]
	if piv == nil {
		msg, err := g.c.Recv(root, tag2dPivBase+k)
		if err != nil {
			return nil, err
		}
		piv = msg.I
	}
	g.pivots[k] = nil
	if _, w := g.blockDims(k, k); len(piv) != w {
		return nil, fmt.Errorf("hpl: stage %d pivot payload has %d entries, want %d", k, len(piv), w)
	}
	g.recordPivots(k, piv)
	return piv, nil
}

// factorPanelBatched is the synchronous batched panel factorization:
// gather/factor/scatter over one message per rank pair, then the flat
// pivot fan-out consumed immediately by every rank.
func (g *grid2d) factorPanelBatched(k int) ([]int, error) {
	rootP, rootQ := g.owner(k, k)
	root := g.rank(rootP, rootQ)
	piv, err := g.factorPanelCore(k)
	if err != nil {
		return nil, err
	}
	if g.me() == root {
		for r := 0; r < g.P*g.Q; r++ {
			if r != root {
				if err := g.c.Send(r, tag2dPivBase+k, nil, piv); err != nil {
					return nil, err
				}
			}
		}
	} else {
		msg, err := g.c.Recv(root, tag2dPivBase+k)
		if err != nil {
			return nil, err
		}
		piv = msg.I
	}
	if _, w := g.blockDims(k, k); len(piv) != w {
		return nil, fmt.Errorf("hpl: stage %d pivot payload has %d entries, want %d", k, len(piv), w)
	}
	g.recordPivots(k, piv)
	return piv, nil
}

// factorPanelCore gathers panel k on the diagonal owner in one message
// per source rank, factors it, and scatters the factored segments back
// in one message per destination rank. Only panel-column ranks
// participate; the root returns the pivots, everyone else nil.
func (g *grid2d) factorPanelCore(k int) ([]int, error) {
	if g.mixed() {
		return g.factorPanelCore32(k)
	}
	rootP, rootQ := g.owner(k, k)
	root := g.rank(rootP, rootQ)
	if g.q != rootQ {
		return nil, nil
	}
	_, w := g.blockDims(k, k)
	mine, total := g.panelSegs(k)

	if g.me() != root {
		if total == 0 {
			return nil, nil
		}
		buf := make([]float64, 0, total)
		for _, i := range mine {
			buf = append(buf, flatten(g.blocks[[2]int{i, k}])...)
		}
		if err := g.c.Send(root, tag2dGatherBase+k, buf, nil); err != nil {
			return nil, err
		}
		msg, err := g.c.Recv(root, tag2dGatherBase+k)
		if err != nil {
			return nil, err
		}
		if len(msg.F) != total {
			return nil, fmt.Errorf("hpl: stage %d factored panel payload %d != %d", k, len(msg.F), total)
		}
		off := 0
		for _, i := range mine {
			r, _ := g.blockDims(i, k)
			seg, err := unflatten(msg.F[off:off+r*w], r, w)
			if err != nil {
				return nil, err
			}
			g.blocks[[2]int{i, k}].CopyFrom(seg)
			off += r * w
		}
		return nil, nil
	}

	// Root: assemble the panel from local blocks plus one message per
	// contributing process row, factor, scatter back.
	panelRows := g.n - k*g.nb
	panel := matrix.NewDense(panelRows, w)
	for pp := 0; pp < g.P; pp++ {
		var rows []int
		rowTotal := 0
		for i := k; i < g.nBlocks; i++ {
			if i%g.P == pp {
				r, _ := g.blockDims(i, k)
				rows = append(rows, i)
				rowTotal += r * w
			}
		}
		if rowTotal == 0 {
			continue
		}
		if pp == g.p {
			for _, i := range rows {
				r, _ := g.blockDims(i, k)
				panel.View((i-k)*g.nb, 0, r, w).CopyFrom(g.blocks[[2]int{i, k}])
			}
			continue
		}
		msg, err := g.c.Recv(g.rank(pp, rootQ), tag2dGatherBase+k)
		if err != nil {
			return nil, err
		}
		if len(msg.F) != rowTotal {
			return nil, fmt.Errorf("hpl: stage %d gathered panel payload %d != %d", k, len(msg.F), rowTotal)
		}
		off := 0
		for _, i := range rows {
			r, _ := g.blockDims(i, k)
			seg, err := unflatten(msg.F[off:off+r*w], r, w)
			if err != nil {
				return nil, err
			}
			panel.View((i-k)*g.nb, 0, r, w).CopyFrom(seg)
			off += r * w
		}
	}
	piv := make([]int, w)
	if err := blas.Dgetf2(panel, piv); err != nil && g.firstError == nil {
		g.firstError = blas.OffsetSingular(err, k*g.nb)
	}
	for pp := 0; pp < g.P; pp++ {
		var rows []int
		rowTotal := 0
		for i := k; i < g.nBlocks; i++ {
			if i%g.P == pp {
				r, _ := g.blockDims(i, k)
				rows = append(rows, i)
				rowTotal += r * w
			}
		}
		if rowTotal == 0 {
			continue
		}
		if pp == g.p {
			for _, i := range rows {
				r, _ := g.blockDims(i, k)
				g.blocks[[2]int{i, k}].CopyFrom(panel.View((i-k)*g.nb, 0, r, w))
			}
			continue
		}
		buf := make([]float64, 0, rowTotal)
		for _, i := range rows {
			r, _ := g.blockDims(i, k)
			buf = append(buf, flatten(panel.View((i-k)*g.nb, 0, r, w))...)
		}
		if err := g.c.Send(g.rank(pp, rootQ), tag2dGatherBase+k, buf, nil); err != nil {
			return nil, err
		}
	}
	return piv, nil
}

// eagerFactor factors panel `next` during the current stage. Only
// panel-column ranks move data; the root keeps the pivots and the other
// participants consume their pivot copy immediately (keeping their link
// to the root FIFO-clean). Every rank marks the panel factored — the
// predicate is a pure function of the schedule, so the grid stays in
// lockstep without communication.
func (g *grid2d) eagerFactor(next int) error {
	rootP, rootQ := g.owner(next, next)
	root := g.rank(rootP, rootQ)
	if g.q == rootQ {
		piv, err := g.factorPanelCore(next)
		if err != nil {
			return err
		}
		if g.me() == root {
			g.pivots[next] = piv
		} else {
			msg, err := g.c.Recv(root, tag2dPivBase+next)
			if err != nil {
				return err
			}
			g.pivots[next] = msg.I
		}
	}
	g.factored[next] = true
	return nil
}

// eagerPivotSendParticipants posts the pivots of an eagerly factored
// panel to its panel-column participants (they receive inside
// eagerFactor, at the same schedule point).
func (g *grid2d) eagerPivotSendParticipants(next int) error {
	rootP, rootQ := g.owner(next, next)
	root := g.rank(rootP, rootQ)
	if g.me() != root {
		return nil
	}
	piv := g.pivots[next]
	for pp := 0; pp < g.P; pp++ {
		if r := g.rank(pp, rootQ); r != root {
			if err := g.c.Send(r, tag2dPivBase+next, nil, piv); err != nil {
				return err
			}
		}
	}
	return nil
}

// eagerPivotFanout posts the pivots of an eagerly factored panel to
// every rank outside the panel column. It must run as the stage's very
// last sends: any earlier, and a later same-stage message from the root
// to a non-participant would queue behind pivots that rank only consumes
// next stage, breaking the link's FIFO order.
func (g *grid2d) eagerPivotFanout(next int) error {
	rootP, rootQ := g.owner(next, next)
	root := g.rank(rootP, rootQ)
	if g.me() != root {
		return nil
	}
	piv := g.pivots[next]
	for r := 0; r < g.P*g.Q; r++ {
		if r == root || r%g.Q == rootQ {
			continue
		}
		if err := g.c.Send(r, tag2dPivBase+next, nil, piv); err != nil {
			return err
		}
	}
	return nil
}

// --- batched tree L broadcast (basic/pipelined) ------------------------

// sendLRoot posts this rank's batched L payload for stage k to its
// binomial-tree children along the process row (one message per tree
// edge instead of one per block per peer).
func (g *grid2d) sendLRoot(k int) error {
	if g.mixed() {
		return g.sendLRoot32(k)
	}
	_, rootQ := g.owner(k, k)
	g.lSent[k] = true
	if g.Q == 1 {
		return nil
	}
	mine, total := g.panelSegs(k)
	if total == 0 {
		return nil
	}
	buf := g.scratch[:0]
	for _, i := range mine {
		blk := g.blocks[[2]int{i, k}]
		for r := 0; r < blk.Rows; r++ {
			buf = append(buf, blk.Row(r)...)
		}
	}
	g.scratch = buf[:0]
	_, children := cluster.BcastTree(g.Q, rootQ, g.q)
	for _, cq := range children {
		if err := g.c.Send(g.rank(g.p, cq), tag2dLBase+k, buf, nil); err != nil {
			return err
		}
	}
	return nil
}

// recvL makes stage k's L panel available on every rank: panel-column
// ranks use (or post, if not already eagerly sent) their own blocks;
// everyone else receives the batched payload from its tree parent and
// relays it onward bitwise. In pipelined mode the owner column clones
// its L blocks so the asynchronous trailing updates read stable data
// while later stages swap rows of the real panel column.
func (g *grid2d) recvL(k int) error {
	if g.mixed() {
		return g.recvL32(k)
	}
	rootP, rootQ := g.owner(k, k)
	g.stageL11 = nil
	clearDense(g.stageL21)
	// Previous stage's packed panels are dead here in the synchronous
	// schedules, so their slabs can recycle; with a deferred pipeline
	// queued jobs may still read them, so they are left to the GC.
	release := !g.pipe.deferred()
	for i, pa := range g.packedL {
		if release {
			pa.Release()
		}
		g.packedL[i] = nil
	}
	if g.q == rootQ && !g.lSent[k] {
		if err := g.sendLRoot(k); err != nil {
			return err
		}
	}
	g.lSent[k] = false

	_, w := g.blockDims(k, k)
	mine, total := g.panelSegs(k)
	if total == 0 {
		return nil
	}
	if g.q == rootQ {
		for _, i := range mine {
			blk := g.blocks[[2]int{i, k}]
			if g.pipe.deferred() {
				// Queued GEMMs may read these blocks after stage k+1 has
				// started swapping rows of the real panel column.
				blk = blk.Clone()
			}
			if i == k {
				if g.p == rootP {
					g.stageL11 = blk
				}
			} else {
				g.stageL21[i] = blk
			}
		}
		return nil
	}
	parent, children := cluster.BcastTree(g.Q, rootQ, g.q)
	msg, err := g.c.Recv(g.rank(g.p, parent), tag2dLBase+k)
	if err != nil {
		return err
	}
	if len(msg.F) != total {
		return fmt.Errorf("hpl: stage %d L payload %d != %d", k, len(msg.F), total)
	}
	for _, cq := range children {
		if err := g.c.Send(g.rank(g.p, cq), tag2dLBase+k, msg.F, nil); err != nil {
			return err
		}
	}
	off := 0
	for _, i := range mine {
		r, _ := g.blockDims(i, k)
		blk, err := unflatten(msg.F[off:off+r*w], r, w)
		if err != nil {
			return err
		}
		off += r * w
		if i == k {
			if g.p == rootP {
				g.stageL11 = blk
			}
		} else {
			g.stageL21[i] = blk
		}
	}
	return nil
}

// --- tree U broadcast and per-column updates ---------------------------

// solveUColumn computes U12(k,j) by DTRSM on the pivot process row and
// tree-broadcasts it down the process column (relays forward the raw
// payload, so every copy is bitwise the root's).
func (g *grid2d) solveUColumn(k, j int) error {
	if g.mixed() {
		return g.solveUColumn32(k, j)
	}
	rootP, _ := g.owner(k, k)
	var u *matrix.Dense
	if g.p == rootP {
		u = g.blocks[[2]int{k, j}]
		blas.Dtrsm(blas.Left, blas.Lower, false, blas.Unit, 1, g.stageL11, u)
	}
	if g.P > 1 {
		tag := tag2dUBase + k*g.nBlocks + j
		var payload []float64
		parent, children := cluster.BcastTree(g.P, rootP, g.p)
		if g.p == rootP {
			payload = g.scratch[:0]
			for r := 0; r < u.Rows; r++ {
				payload = append(payload, u.Row(r)...)
			}
			g.scratch = payload[:0]
		} else {
			r, c := g.blockDims(k, j)
			msg, err := g.c.Recv(g.rank(parent, g.q), tag)
			if err != nil {
				return err
			}
			if u, err = unflatten(msg.F, r, c); err != nil {
				return err
			}
			payload = msg.F
		}
		for _, cp := range children {
			if err := g.c.Send(g.rank(cp, g.q), tag, payload, nil); err != nil {
				return err
			}
		}
	}
	g.stageU12[j] = u
	return nil
}

// solveUTree runs solveUColumn over every owned trailing column,
// ascending — the basic schedule's bulk U phase.
func (g *grid2d) solveUTree(k int) error {
	clearDense(g.stageU12)
	for j := k + 1; j < g.nBlocks; j++ {
		if j%g.Q != g.q {
			continue
		}
		if err := g.solveUColumn(k, j); err != nil {
			return err
		}
	}
	return nil
}

// prepackL returns stage-wide −L21(i) in packed-tile form, packing on
// first use and caching until recvL opens the next stage. Protocol
// goroutine only.
func (g *grid2d) prepackL(i int, l *matrix.Dense) *blas.PrepackedA {
	if pa := g.packedL[i]; pa != nil {
		return pa
	}
	pa := blas.PrepackA(l, -1)
	g.packedL[i] = pa
	return pa
}

// prepackU packs column j's U block once for reuse across the column's
// block rows, or returns nil when the update is outside the packed fast
// path. The gate depends on k alone — the same crossover as RankKUpdate
// — so the look-ahead schedules stay bitwise identical to the reference
// per-block updates.
func (g *grid2d) prepackU(u *matrix.Dense) *blas.PrepackedB {
	if g.offloadUpdates || u == nil || u.Rows < blas.PackedMinK {
		return nil
	}
	return blas.PrepackB(u)
}

// updateColumn applies the stage-k trailing update to the owned blocks
// of column j, synchronously. U is packed once per column and the L
// panels come from the per-stage prepack cache, so the column's updates
// share packed operands instead of re-packing both per block.
func (g *grid2d) updateColumn(k, j int) error {
	if g.mixed() {
		return g.updateColumn32(k, j)
	}
	u := g.stageU12[j]
	pu := g.prepackU(u)
	defer pu.Release()
	for i := k + 1; i < g.nBlocks; i++ {
		if i%g.P != g.p {
			continue
		}
		blk := g.blocks[[2]int{i, j}]
		l := g.stageL21[i]
		if l == nil || u == nil || blk == nil {
			return fmt.Errorf("hpl: rank (%d,%d) missing stage-%d operands for block (%d,%d)", g.p, g.q, k, i, j)
		}
		switch {
		case g.offloadUpdates:
			if err := offloadUpdate(g.ctx, l, u, blk); err != nil {
				return err
			}
		case pu != nil:
			blas.GemmPrepacked(g.prepackL(i, l), pu, blk, 1)
		default:
			blas.RankKUpdate(l, u, blk, 1)
		}
	}
	return nil
}

// updateRest applies the stage-k trailing update to every owned block,
// optionally skipping the already-updated look-ahead column k+1. Going
// column by column lets each column reuse its packed U operand.
func (g *grid2d) updateRest(k int, skipAhead bool) error {
	for j := k + 1; j < g.nBlocks; j++ {
		if j%g.Q != g.q || (skipAhead && j == k+1) {
			continue
		}
		if err := g.updateColumn(k, j); err != nil {
			return err
		}
	}
	return nil
}

// --- coalesced long swaps (pipelined) ----------------------------------

// swapPair maps one destination slot (a global row index) to the
// original global row that ends up there after the stage's full pivot
// swap sequence.
type swapPair struct{ slot, src int }

// swapPerm reduces the stage's sequential pivot swaps to their net
// permutation: applying the transpositions (r1 r2) in pivot order, slot
// s ends up holding original row perm(s). Later pivots may touch rows
// moved by earlier ones, so the sequence is simulated exactly; only
// moved slots are returned, ascending.
func swapPerm(k, nb int, piv []int) []swapPair {
	cur := map[int]int{} // slot -> original row currently parked there
	at := func(s int) int {
		if r, ok := cur[s]; ok {
			return r
		}
		return s
	}
	for j, pv := range piv {
		r1, r2 := k*nb+j, k*nb+pv
		if r1 == r2 {
			continue
		}
		cur[r1], cur[r2] = at(r2), at(r1)
	}
	pairs := make([]swapPair, 0, len(cur))
	for slot, src := range cur {
		if slot != src {
			pairs = append(pairs, swapPair{slot: slot, src: src})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].slot < pairs[b].slot })
	return pairs
}

// stageSwap is one stage's coalesced row exchange: every row this rank
// must ship leaves in a single packed message per peer process row,
// packed in column-consumption order, and the received payloads are
// consumed sequentially as the column loop applies each column's
// permutation. One exchange per peer pair per stage — not per pivot
// (the synchronous schedule) or per column. The routing (which pairs
// this rank sends, receives, or cycles locally) is resolved once per
// stage; the per-column work is pure copying.
type stageSwap struct {
	recvIdx  [][]int           // peer process row -> pair indices received from it
	localIdx []int             // pair indices cycling within this rank
	routes   []swapRoute       // per pair: block/row coordinates of src and slot
	stash    map[int][]float64 // peer process row -> packed rows received
	off      []int             // peer process row -> consumed payload offset
	snap     []float64         // per-column snapshot scratch for local cycles

	// FP32 twins of stash/snap, used when the grid runs in mixed
	// precision (half the wire bytes per exchanged row).
	stash32 map[int][]float32
	snap32  []float32
}

// swapRoute caches a pair's block-row/row-in-block coordinates so the
// per-column loops do no division.
type swapRoute struct{ srcI, srcR, slotI, slotR int }

// rowProc is the process row owning global matrix row `global`.
func (g *grid2d) rowProc(global int) int { return (global / g.nb) % g.P }

// swapExchange resolves the stage's swap routing and posts/collects its
// packed messages. Sends are packed straight from the (not yet
// modified) blocks in the shared column order, so both ends of every
// link agree on the layout without any per-row headers.
func (g *grid2d) swapExchange(k int, pairs []swapPair, order []int) (*stageSwap, error) {
	if g.mixed() {
		return g.swapExchange32(k, pairs, order)
	}
	s := &stageSwap{stash: map[int][]float64{}, off: make([]int, g.P)}
	if len(pairs) == 0 {
		return s, nil
	}
	s.routes = make([]swapRoute, len(pairs))
	sendIdx := make([][]int, g.P)
	s.recvIdx = make([][]int, g.P)
	for x, pr := range pairs {
		s.routes[x] = swapRoute{pr.src / g.nb, pr.src % g.nb, pr.slot / g.nb, pr.slot % g.nb}
		sp, dp := g.rowProc(pr.src), g.rowProc(pr.slot)
		switch {
		case sp == g.p && dp == g.p:
			s.localIdx = append(s.localIdx, x)
		case sp == g.p:
			sendIdx[dp] = append(sendIdx[dp], x)
		case dp == g.p:
			s.recvIdx[sp] = append(s.recvIdx[sp], x)
		}
	}
	tag := tag2dSwapBase + k
	for pd := 0; pd < g.P; pd++ {
		if len(sendIdx[pd]) == 0 {
			continue
		}
		buf := g.scratch[:0]
		for _, jb := range order {
			_, w := g.blockDims(0, jb)
			for _, x := range sendIdx[pd] {
				rt := s.routes[x]
				buf = append(buf, g.blocks[[2]int{rt.srcI, jb}].Row(rt.srcR)[:w]...)
			}
		}
		g.scratch = buf[:0]
		if err := g.c.Send(g.rank(pd, g.q), tag, buf, nil); err != nil {
			return nil, err
		}
	}
	wTotal := 0
	for _, jb := range order {
		_, w := g.blockDims(0, jb)
		wTotal += w
	}
	for ps := 0; ps < g.P; ps++ {
		if len(s.recvIdx[ps]) == 0 {
			continue
		}
		msg, err := g.c.Recv(g.rank(ps, g.q), tag)
		if err != nil {
			return nil, err
		}
		if want := len(s.recvIdx[ps]) * wTotal; len(msg.F) != want {
			return nil, fmt.Errorf("hpl: stage %d packed swap payload %d != %d", k, len(msg.F), want)
		}
		s.stash[ps] = msg.F
	}
	return s, nil
}

// apply replays the stage permutation on block column jb: remote rows
// come off the stashed payloads in pack order, local cycles go through
// a snapshot so the result equals the sequential transposition sequence
// exactly. (Every slot is written once, so remote and local writes
// commute; only the snapshot-before-write order matters.)
func (s *stageSwap) apply(g *grid2d, jb int) {
	if len(s.routes) == 0 {
		return
	}
	if g.mixed() {
		s.apply32(g, jb)
		return
	}
	_, w := g.blockDims(0, jb)
	if len(s.localIdx) > 0 {
		if cap(s.snap) < len(s.localIdx)*w {
			s.snap = make([]float64, len(s.localIdx)*w)
		}
		for y, x := range s.localIdx {
			rt := s.routes[x]
			copy(s.snap[y*w:(y+1)*w], g.blocks[[2]int{rt.srcI, jb}].Row(rt.srcR)[:w])
		}
		for y, x := range s.localIdx {
			rt := s.routes[x]
			copy(g.blocks[[2]int{rt.slotI, jb}].Row(rt.slotR)[:w], s.snap[y*w:(y+1)*w])
		}
	}
	for ps, idx := range s.recvIdx {
		if len(idx) == 0 {
			continue
		}
		payload, off := s.stash[ps], s.off[ps]
		for _, x := range idx {
			rt := s.routes[x]
			copy(g.blocks[[2]int{rt.slotI, jb}].Row(rt.slotR)[:w], payload[off:off+w])
			off += w
		}
		s.off[ps] = off
	}
}

// --- asynchronous trailing-update pipeline (pipelined) -----------------

// pipeJob is one block column's trailing update, run off the protocol
// goroutine. It carries its own operand references so the stage maps
// can be reused while the job is still queued.
type pipeJob struct {
	ctx     context.Context
	blocks  []*matrix.Dense
	ls      []*matrix.Dense
	u       *matrix.Dense
	pls     []*blas.PrepackedA // prepacked −L operands (nil: reference path)
	pu      *blas.PrepackedB   // prepacked U operand, shared by the column
	offload bool
	rec     *trace.Recorder
	lane    int
	iter    int
	signal  chan struct{}

	// FP32 operands of a mixed-precision job (blocks32 non-empty marks
	// the job mixed; the FP64 fields above stay nil then).
	blocks32 []*matrix.Dense32
	ls32     []*matrix.Dense32
	u32      *matrix.Dense32
	pls32    []*blas.SPrepackedA
	pu32     *blas.SPrepackedB
}

// pipeline runs trailing-update GEMM jobs on a single worker goroutine,
// FIFO, with per-column completion signals. The protocol goroutine
// enqueues column j's update and only waits for it when a later stage
// needs to touch column j again. With a single compute lane (pool.Size()
// <= 1) the worker cannot overlap anything, so jobs run inline at
// enqueue instead — same FIFO order, same arithmetic, none of the
// channel handoffs or scheduler switches.
type pipeline struct {
	jobs   chan pipeJob
	done   chan struct{}
	inline bool
	pend   map[int]chan struct{} // column -> completion (protocol side only)
	mu     sync.Mutex
	err    error
}

func newPipeline(buffer int) *pipeline {
	p := &pipeline{pend: map[int]chan struct{}{}}
	if pool.Size() <= 1 {
		p.inline = true
		return p
	}
	p.jobs = make(chan pipeJob, buffer)
	p.done = make(chan struct{})
	go p.worker()
	return p
}

func (p *pipeline) worker() {
	defer close(p.done)
	for job := range p.jobs {
		if p.getErr() == nil {
			p.runJob(job)
		}
		close(job.signal)
	}
}

// runJob executes one column's update; panics (including pool.Do's
// re-raised *PanicError) are contained here and surfaced as the
// pipeline's first error instead of escaping the worker goroutine.
func (p *pipeline) runJob(job pipeJob) {
	defer func() {
		if r := recover(); r != nil {
			p.setErr(fmt.Errorf("hpl: trailing-update worker panicked: %v", r))
		}
	}()
	if len(job.blocks32) > 0 {
		p.runJob32(job)
		return
	}
	// The packed U is private to this job; the packed L panels belong to
	// the stage cache and outlive it.
	defer job.pu.Release()
	for i, l := range job.ls {
		if l == nil || job.u == nil || job.blocks[i] == nil {
			p.setErr(fmt.Errorf("hpl: pipelined update missing operands (stage %d)", job.iter))
			return
		}
	}
	ts := job.rec.Start()
	n := len(job.blocks)
	switch {
	case job.offload:
		for i := 0; i < n; i++ {
			if err := offloadUpdate(job.ctx, job.ls[i], job.u, job.blocks[i]); err != nil {
				p.setErr(err)
				return
			}
		}
	case job.pu != nil && n > 1 && pool.Size() > 1:
		pool.Do(n, pool.Size(), func(i int) {
			blas.GemmPrepacked(job.pls[i], job.pu, job.blocks[i], 1)
		})
	case job.pu != nil:
		for i := 0; i < n; i++ {
			blas.GemmPrepacked(job.pls[i], job.pu, job.blocks[i], 1)
		}
	case n > 1 && pool.Size() > 1:
		pool.Do(n, pool.Size(), func(i int) {
			blas.RankKUpdate(job.ls[i], job.u, job.blocks[i], 1)
		})
	default:
		for i := 0; i < n; i++ {
			blas.RankKUpdate(job.ls[i], job.u, job.blocks[i], 1)
		}
	}
	job.rec.Since(job.lane, "GEMM", job.iter, ts)
}

func (p *pipeline) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *pipeline) getErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// enqueue registers column col's completion signal and hands the job to
// the worker (or runs it on the spot in inline mode). Protocol goroutine
// only.
func (p *pipeline) enqueue(col int, job pipeJob) {
	if p.inline {
		if p.getErr() == nil {
			p.runJob(job)
		}
		return
	}
	job.signal = make(chan struct{})
	p.pend[col] = job.signal
	p.jobs <- job
}

// waitCol blocks until column j's queued update (if any) has finished.
func (p *pipeline) waitCol(j int) error {
	if p == nil {
		return nil
	}
	if ch, ok := p.pend[j]; ok {
		delete(p.pend, j)
		<-ch
	}
	return p.getErr()
}

// drain waits for every queued update.
func (p *pipeline) drain() error {
	if p == nil {
		return nil
	}
	for j, ch := range p.pend {
		<-ch
		delete(p.pend, j)
	}
	return p.getErr()
}

// stop closes the queue and joins the worker. Call exactly once, after
// the last enqueue.
func (p *pipeline) stop() {
	if p == nil || p.jobs == nil {
		return
	}
	close(p.jobs)
	<-p.done
}

// deferred reports whether queued jobs may still be pending after
// enqueue returns — i.e. whether operands handed to the pipeline must
// stay stable across later protocol steps.
func (p *pipeline) deferred() bool { return p != nil && !p.inline }

func (g *grid2d) startPipe() {
	if g.mode == LookaheadPipelined {
		g.pipe = newPipeline(g.nBlocks + 1)
	}
}

func (g *grid2d) stopPipe() { g.pipe.stop() }

func (g *grid2d) drainPipe() error { return g.pipe.drain() }

// enqueueUpdate hands column j's stage-k trailing update to the
// asynchronous worker.
func (g *grid2d) enqueueUpdate(k, j int) {
	if g.mixed() {
		g.enqueueUpdate32(k, j)
		return
	}
	var blocks, ls []*matrix.Dense
	var rows []int
	if !g.pipe.deferred() {
		// Inline jobs are consumed before enqueue returns, so the slices
		// can live on the grid and be reused column after column.
		blocks, ls, rows = g.jobBlocks[:0], g.jobLs[:0], g.jobRows[:0]
	}
	for i := k + 1; i < g.nBlocks; i++ {
		if i%g.P != g.p {
			continue
		}
		blocks = append(blocks, g.blocks[[2]int{i, j}])
		ls = append(ls, g.stageL21[i])
		rows = append(rows, i)
	}
	if len(blocks) == 0 {
		return
	}
	// Prepack the column's operands on the protocol goroutine (the cache
	// is not worker-safe; the packed panels themselves are immutable, so
	// the worker may read them freely). A missing operand disables the
	// fast path and lets runJob report it.
	u := g.stageU12[j]
	pu := g.prepackU(u)
	var pls []*blas.PrepackedA
	if pu != nil {
		if g.pipe.deferred() {
			pls = make([]*blas.PrepackedA, len(ls))
		} else {
			if cap(g.jobPls) < len(ls) {
				g.jobPls = make([]*blas.PrepackedA, len(ls))
			}
			pls = g.jobPls[:len(ls)]
		}
		for x, l := range ls {
			if l == nil {
				pu.Release()
				pu, pls = nil, nil
				break
			}
			pls[x] = g.prepackL(rows[x], l)
		}
	}
	if !g.pipe.deferred() {
		g.jobBlocks, g.jobLs, g.jobRows = blocks[:0], ls[:0], rows[:0]
	}
	g.pipe.enqueue(j, pipeJob{
		ctx:     g.ctx,
		blocks:  blocks,
		ls:      ls,
		u:       u,
		pls:     pls,
		pu:      pu,
		offload: g.offloadUpdates,
		rec:     g.rec,
		lane:    g.P*g.Q + g.me(),
		iter:    k,
	})
}

// --- stage schedules ---------------------------------------------------

// openStage makes panel k's pivots and L panel available. The order of
// the two steps tracks the wire order on the panel root's links: when
// the panel was factored eagerly, its L broadcast was posted mid-stage
// while the pivot fan-out to non-participants ran as the previous
// stage's last sends, so L must be consumed first; in the synchronous
// case the panel is factored (and its pivots fanned out) before any L
// payload exists. g.factored is a pure function of the schedule, so
// every rank takes the same branch.
func (g *grid2d) openStage(k int) ([]int, error) {
	if g.factored[k] {
		ts := g.rec.Start()
		if err := g.recvL(k); err != nil {
			return nil, err
		}
		g.tspan("Lbcast", k, ts)
		ts = g.rec.Start()
		piv, err := g.ensureFactored(k)
		if err != nil {
			return nil, err
		}
		g.tspan("panel", k, ts)
		return piv, nil
	}
	ts := g.rec.Start()
	piv, err := g.ensureFactored(k)
	if err != nil {
		return nil, err
	}
	g.tspan("panel", k, ts)
	ts = g.rec.Start()
	if err := g.recvL(k); err != nil {
		return nil, err
	}
	g.tspan("Lbcast", k, ts)
	return piv, nil
}

// stageBasic is the paper's basic look-ahead: after the bulk swap and U
// phases, the next panel's block column is updated first, panel k+1 is
// factored and its L broadcast posted, and only then does the rest of
// trailing update k run.
func (g *grid2d) stageBasic(k int) error {
	piv, err := g.openStage(k)
	if err != nil {
		return err
	}

	ts := g.rec.Start()
	if err := g.swapRows(k, piv); err != nil {
		return err
	}
	g.tspan("swap", k, ts)
	if err := g.hookAfterSwaps(k, piv); err != nil {
		return err
	}
	if err := g.hookAfterL(k); err != nil {
		return err
	}

	ts = g.rec.Start()
	if err := g.solveUTree(k); err != nil {
		return err
	}
	g.tspan("Ubcast", k, ts)

	ahead := g.aheadOK(k + 1)
	if ahead {
		if (k+1)%g.Q == g.q {
			// Only the owners of block column k+1 hold its blocks; the
			// eager helpers below self-select on panel membership.
			ts = g.rec.Start()
			if err := g.updateColumn(k, k+1); err != nil {
				return err
			}
			g.tspan("GEMM", k, ts)
		}
		ts = g.rec.Start()
		if err := g.eagerFactor(k + 1); err != nil {
			return err
		}
		if err := g.eagerPivotSendParticipants(k + 1); err != nil {
			return err
		}
		if err := g.eagerSendL(k + 1); err != nil {
			return err
		}
		g.tspan("panel", k+1, ts)
	}
	ts = g.rec.Start()
	if err := g.updateRest(k, ahead); err != nil {
		return err
	}
	g.tspan("GEMM", k, ts)
	if err := g.hookAfterUpdate(k); err != nil {
		return err
	}
	if ahead {
		return g.eagerPivotFanout(k + 1)
	}
	return nil
}

// eagerSendL posts the eagerly factored panel's L broadcast from its
// panel-column owners.
func (g *grid2d) eagerSendL(next int) error {
	_, rootQ := g.owner(next, next)
	if g.q != rootQ {
		return nil
	}
	return g.sendLRoot(next)
}

// columnOrder returns the owned block columns of stage k's swap/update
// loop in schedule order: the look-ahead column k+1 first (when owned
// and eligible), then every other owned column ascending, skipping the
// panel column itself. Columns left of the panel still appear — their
// rows are swapped — but receive no U or GEMM work.
func (g *grid2d) columnOrder(k int, ahead bool) []int {
	var order []int
	if ahead && (k+1)%g.Q == g.q {
		order = append(order, k+1)
	}
	for j := 0; j < g.nBlocks; j++ {
		if j%g.Q != g.q || j == k || (ahead && j == k+1) {
			continue
		}
		order = append(order, j)
	}
	return order
}

// stagePipelined is the paper's software pipeline: per owned block
// column, the coalesced row swap, DTRSM and tree U broadcast run on the
// protocol goroutine while the previous column's GEMM runs on the
// asynchronous worker. The look-ahead column is handled first and
// synchronously, so panel k+1 factors and its broadcasts post while the
// bulk of trailing update k is still queued.
func (g *grid2d) stagePipelined(k int) error {
	piv, err := g.openStage(k)
	if err != nil {
		return err
	}

	clearDense(g.stageU12)
	pairs := swapPerm(k, g.nb, piv)
	ahead := g.aheadOK(k + 1)
	order := g.columnOrder(k, ahead)

	if g.pipe.deferred() {
		// The packed exchange reads rows the queued trailing updates
		// write; freeze them before packing.
		if err := g.pipe.drain(); err != nil {
			return err
		}
	}
	ts := g.rec.Start()
	sw, err := g.swapExchange(k, pairs, order)
	if err != nil {
		return err
	}
	g.tspan("swap", k, ts)

	for _, j := range order {
		if err := g.pipe.waitCol(j); err != nil {
			return err
		}
		sw.apply(g, j)
		if j <= k {
			continue
		}
		ts = g.rec.Start()
		if err := g.solveUColumn(k, j); err != nil {
			return err
		}
		g.tspan("Ubcast", k, ts)
		if ahead && j == k+1 {
			ts = g.rec.Start()
			if err := g.updateColumn(k, j); err != nil {
				return err
			}
			g.tspan("GEMM", k, ts)
			ts = g.rec.Start()
			if err := g.eagerFactor(k + 1); err != nil {
				return err
			}
			if err := g.eagerPivotSendParticipants(k + 1); err != nil {
				return err
			}
			if err := g.eagerSendL(k + 1); err != nil {
				return err
			}
			g.tspan("panel", k+1, ts)
		} else {
			g.enqueueUpdate(k, j)
		}
	}
	if ahead && (k+1)%g.Q != g.q {
		// Non-participants take no part in the eager factorization but
		// must agree the panel is done; their pivots arrive via the
		// stage-end fan-out below.
		g.factored[k+1] = true
	}
	if err := g.hookAfterSwaps(k, piv); err != nil {
		return err
	}
	if err := g.hookAfterL(k); err != nil {
		return err
	}
	if err := g.hookAfterUpdate(k); err != nil {
		return err
	}
	if ahead {
		return g.eagerPivotFanout(k + 1)
	}
	return nil
}
