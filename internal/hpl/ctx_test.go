package hpl

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"phihpl/internal/fault"
	"phihpl/internal/matrix"
	"phihpl/internal/testutil"
)

func mustParsePlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	return p
}

// countCtx cancels itself deterministically after its Err method has been
// consulted `after` times — scheduler-independent mid-run cancellation
// (rank stage boundaries all consult Err).
type countCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// Every distributed solver returns promptly with the plain context error
// when handed an already-cancelled context — no world is spun up, no
// goroutine leaks.
func TestDistributedCtxAlreadyCancelled(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name  string
		solve func() (DistResult, error)
	}{
		{"SolveDistributedCtx", func() (DistResult, error) {
			return SolveDistributedCtx(ctx, 64, 16, 2, 1)
		}},
		{"SolveDistributed2DCtx", func() (DistResult, error) {
			return SolveDistributed2DCtx(ctx, 64, 16, 2, 2, 1)
		}},
		{"SolveDistributed2DHybridCtx", func() (DistResult, error) {
			return SolveDistributed2DHybridCtx(ctx, 64, 16, 2, 2, 1)
		}},
		{"SolveDistributed2DFTCtx", func() (DistResult, error) {
			return SolveDistributed2DFTCtx(ctx, 64, 16, 2, 2, 1, FTConfig{})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.solve(); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// Cancelling mid-run unwinds every rank at a stage boundary: the world
// drains (no leaked rank goroutines) and the caller sees the plain
// ctx.Err(), never a wrapped transport error from the unwinding fabric.
func TestDistributedCtxCancelMidRun(t *testing.T) {
	defer testutil.NoLeaks(t)()
	for _, tc := range []struct {
		name  string
		solve func(ctx context.Context) (DistResult, error)
	}{
		{"SolveDistributedCtx", func(ctx context.Context) (DistResult, error) {
			return SolveDistributedCtx(ctx, 96, 8, 3, 5)
		}},
		{"SolveDistributed2DCtx", func(ctx context.Context) (DistResult, error) {
			return SolveDistributed2DCtx(ctx, 96, 8, 2, 2, 5)
		}},
		{"SolveDistributed2DHybridCtx", func(ctx context.Context) (DistResult, error) {
			return SolveDistributed2DHybridCtx(ctx, 96, 8, 2, 2, 5)
		}},
		{"SolveDistributed2DFTCtx", func(ctx context.Context) (DistResult, error) {
			return SolveDistributed2DFTCtx(ctx, 96, 8, 2, 2, 5, FTConfig{})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Let a few stage-boundary checks pass, then cancel: some ranks
			// are mid-stage when the first one observes the cancellation.
			ctx := &countCtx{Context: context.Background(), after: 6}
			if _, err := tc.solve(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// A ctx solve that runs to completion is indistinguishable from the plain
// one — bitwise for the deterministic drivers, residual-checked for the
// hybrid.
func TestDistributedCtxCompletedMatchesPlain(t *testing.T) {
	defer testutil.NoLeaks(t)()
	want, err := SolveDistributed2D(64, 16, 2, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveDistributed2DCtx(context.Background(), 64, 16, 2, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("solution length %d != %d", len(got.X), len(want.X))
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("solution differs at %d: %g vs %g", i, got.X[i], want.X[i])
		}
	}

	hr, err := SolveDistributed2DHybridCtx(context.Background(), 64, 16, 2, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Residual > matrix.ResidualThreshold {
		t.Errorf("hybrid ctx residual %g FAILED", hr.Residual)
	}
}

// Cancellation during a fault-tolerant run must not be misread as a fault:
// no restart is consumed and no *FaultError wraps the context error.
func TestFTCtxCancelIsNotAFault(t *testing.T) {
	defer testutil.NoLeaks(t)()
	plan := mustParsePlan(t, "crash=1@2")
	ctx := &countCtx{Context: context.Background(), after: 2}
	_, err := SolveDistributed2DFTCtx(ctx, 96, 8, 2, 2, 5, FTConfig{Plan: plan, MaxRestarts: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		t.Fatalf("cancellation came back wrapped in *FaultError: %v", fe)
	}
}
