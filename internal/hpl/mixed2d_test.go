package hpl

import (
	"context"
	"errors"
	"testing"

	"phihpl/internal/lu"
	"phihpl/internal/matrix"
)

// TestMixed2DResidualAndReport: the mixed 2D driver passes the HPL bar on
// every grid shape (including ragged final blocks) and reports the
// refinement phase — at least one FP64 correction, no fallback, and the
// report's residual agreeing with the result's.
func TestMixed2DResidualAndReport(t *testing.T) {
	for _, tc := range []struct{ n, nb, p, q int }{
		{48, 8, 1, 1},
		{48, 8, 2, 2},
		{64, 8, 2, 3},
		{64, 8, 3, 2},
		{60, 16, 1, 4},
		{60, 16, 4, 1},
		{75, 10, 2, 2}, // ragged final blocks
	} {
		r, err := SolveDistributed2DPrecision(tc.n, tc.nb, tc.p, tc.q, 99, LookaheadPipelined, lu.PrecisionMixed)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r.Residual > matrix.ResidualThreshold {
			t.Errorf("%+v: residual %g FAILED", tc, r.Residual)
		}
		if r.Ranks != tc.p*tc.q {
			t.Errorf("%+v: ranks = %d", tc, r.Ranks)
		}
		if r.Refine == nil {
			t.Fatalf("%+v: mixed solve returned nil Refine report", tc)
		}
		if r.Refine.FellBack || r.Refine.Reason != lu.FallbackNone {
			t.Errorf("%+v: unexpected fallback: %+v", tc, r.Refine)
		}
		if r.Refine.Iterations < 1 {
			t.Errorf("%+v: %d refinement iterations, want >= 1", tc, r.Refine.Iterations)
		}
		if r.Refine.Residual != r.Residual {
			t.Errorf("%+v: report residual %g != result %g", tc, r.Refine.Residual, r.Residual)
		}
	}
}

// TestMixed2DMatchesSequentialMixed: the distributed mixed pipeline is the
// same arithmetic as the shared-memory HPL-MxP solver — identical FP32
// factors (Sgetf2 panels, Strsm, packed rank-k updates at the same block
// size) and the identical refinement ladder — so the solution, residual
// and iteration count all match bitwise, on every grid, and independent
// of the sequential solver's worker count.
func TestMixed2DMatchesSequentialMixed(t *testing.T) {
	n, nb := 72, 12
	a, b := matrix.RandomSystem(n, 17)
	want, wantRes, wantRep, err := lu.SolveMixed(a.Clone(), b, lu.Options{NB: nb, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wantRep.FellBack {
		t.Fatalf("sequential reference fell back: %+v", wantRep)
	}
	x3, res3, rep3, err := lu.SolveMixed(a.Clone(), b, lu.Options{NB: nb, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res3 != wantRes || rep3.Iterations != wantRep.Iterations {
		t.Fatalf("sequential mixed solve is worker-dependent: %g/%d vs %g/%d",
			res3, rep3.Iterations, wantRes, wantRep.Iterations)
	}
	for i := range want {
		if x3[i] != want[i] {
			t.Fatalf("sequential mixed x[%d] differs across worker counts", i)
		}
	}

	for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {2, 3}} {
		r, err := SolveDistributed2DPrecision(n, nb, grid[0], grid[1], 17, LookaheadPipelined, lu.PrecisionMixed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if r.X[i] != want[i] {
				t.Fatalf("grid %v: x[%d] = %v, want %v (bitwise)", grid, i, r.X[i], want[i])
			}
		}
		if r.Residual != wantRes {
			t.Errorf("grid %v: residual %g, want %g (bitwise)", grid, r.Residual, wantRes)
		}
		if r.Refine.Iterations != wantRep.Iterations {
			t.Errorf("grid %v: %d refinement iters, want %d", grid, r.Refine.Iterations, wantRep.Iterations)
		}
	}
}

// TestMixed2DModeAndGridInvariance: every look-ahead schedule on every
// grid shape produces the bitwise identical solution — the schedules
// reorder communication and overlap, never arithmetic, in FP32 exactly as
// in FP64.
func TestMixed2DModeAndGridInvariance(t *testing.T) {
	base, err := SolveDistributed2DPrecision(60, 10, 1, 1, 5, LookaheadPipelined, lu.PrecisionMixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LookaheadMode{LookaheadNone, LookaheadBasic, LookaheadPipelined} {
		for _, grid := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 3}} {
			r, err := SolveDistributed2DPrecision(60, 10, grid[0], grid[1], 5, mode, lu.PrecisionMixed)
			if err != nil {
				t.Fatalf("mode %v grid %v: %v", mode, grid, err)
			}
			for i := range base.X {
				if r.X[i] != base.X[i] {
					t.Fatalf("mode %v grid %v: solution differs at %d", mode, grid, i)
				}
			}
			if r.Refine.Iterations != base.Refine.Iterations {
				t.Errorf("mode %v grid %v: %d iters, base %d", mode, grid, r.Refine.Iterations, base.Refine.Iterations)
			}
		}
	}
}

// TestMixed2DHybridBitwiseMatchesPlain: the offload engine is FP64-only,
// so the mixed hybrid driver routes updates through the FP32 packed host
// path and must be bitwise identical to the plain mixed driver (unlike
// the FP64 hybrid, which is only equal to round-off).
func TestMixed2DHybridBitwiseMatchesPlain(t *testing.T) {
	n, nb := 96, 16
	plain, err := SolveDistributed2DPrecision(n, nb, 2, 2, 31, LookaheadPipelined, lu.PrecisionMixed)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := SolveDistributed2DHybridPrecision(n, nb, 2, 2, 31, LookaheadPipelined, lu.PrecisionMixed)
	if err != nil {
		t.Fatal(err)
	}
	if hy.Residual != plain.Residual {
		t.Errorf("hybrid residual %g != plain %g (bitwise)", hy.Residual, plain.Residual)
	}
	for i := range plain.X {
		if hy.X[i] != plain.X[i] {
			t.Fatalf("hybrid mixed diverges from plain at %d: %v vs %v", i, hy.X[i], plain.X[i])
		}
	}
	if hy.Refine == nil || hy.Refine.FellBack {
		t.Errorf("hybrid mixed report: %+v", hy.Refine)
	}
}

// TestMixed2DPrecisionFP64Passthrough: the precision-aware entry point
// with PrecisionFP64 is exactly the plain FP64 driver — bitwise, nil
// Refine.
func TestMixed2DPrecisionFP64Passthrough(t *testing.T) {
	want, err := SolveDistributed2D(60, 10, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SolveDistributed2DPrecision(60, 10, 2, 2, 5, LookaheadPipelined, lu.PrecisionFP64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refine != nil {
		t.Errorf("FP64 solve carries a Refine report: %+v", r.Refine)
	}
	for i := range want.X {
		if r.X[i] != want.X[i] {
			t.Fatalf("FP64 passthrough differs at %d", i)
		}
	}
}

// installMixedTestSystem points both scatters at a fixed system for the
// duration of one test.
func installMixedTestSystem(t *testing.T, a *matrix.Dense, b []float64) {
	t.Helper()
	mixedTestSystem = func(n int, seed uint64) (*matrix.Dense, []float64) {
		if n != a.Rows {
			t.Fatalf("hook asked for n=%d, system is %d", n, a.Rows)
		}
		return a.Clone(), append([]float64(nil), b...)
	}
	t.Cleanup(func() { mixedTestSystem = nil })
}

// subnormalColumn32 rewrites one column to values below the FP32 normal
// range: regular in FP64, singular to Sgetf2.
func subnormalColumn32(a *matrix.Dense, col int) {
	for i := 0; i < a.Rows; i++ {
		a.Set(i, col, float64(i+1)*1e-41)
	}
}

// TestMixed2DSingularFP32FallsBack: a system whose FP32 demotion is
// singular must trip the distributed Sgetf2, fall back to the FP64
// driver without surfacing an error, and still pass the HPL bar — with
// the typed reason preserved on the final report.
func TestMixed2DSingularFP32FallsBack(t *testing.T) {
	n, nb := 48, 8
	a, b := matrix.RandomSystem(n, 5)
	subnormalColumn32(a, 11)
	installMixedTestSystem(t, a, b)

	for _, grid := range [][2]int{{1, 1}, {2, 2}} {
		r, err := SolveDistributed2DPrecision(n, nb, grid[0], grid[1], 5, LookaheadPipelined, lu.PrecisionMixed)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		if r.Refine == nil || !r.Refine.FellBack || r.Refine.Reason != lu.FallbackSingular {
			t.Fatalf("grid %v: report %+v, want fp32-singular fallback", grid, r.Refine)
		}
		if r.Refine.Iterations != 0 {
			t.Errorf("grid %v: %d iterations before factorization failure, want 0", grid, r.Refine.Iterations)
		}
		if len(r.X) != n || r.Residual >= matrix.ResidualThreshold {
			t.Errorf("grid %v: FP64 fallback residual %g fails the HPL bar", grid, r.Residual)
		}
	}
}

// TestMixed2DStalledRefinementFallsBack: the ill-conditioned golden — a
// row dependency at tau = 1e-9, far below FP32 resolution — must stall
// refinement on the distributed driver exactly as on the shared-memory
// one, re-run in FP64, and report the stall.
func TestMixed2DStalledRefinementFallsBack(t *testing.T) {
	n, nb := 96, 16
	a, b := matrix.RandomSystem(n, 7)
	last := a.Row(n - 1)
	for j := range last {
		last[j] = 0
	}
	for i := 0; i < 3; i++ {
		row := a.Row(i)
		for j := range last {
			last[j] += row[j] / 3
		}
	}
	noise := matrix.NewPRNG(7 ^ 0xabcdef)
	for j := range last {
		last[j] += 1e-9 * (noise.Float64() - 0.5)
	}
	installMixedTestSystem(t, a, b)

	r, err := SolveDistributed2DPrecision(n, nb, 2, 2, 7, LookaheadPipelined, lu.PrecisionMixed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refine == nil || !r.Refine.FellBack || r.Refine.Reason != lu.FallbackStalled {
		t.Fatalf("report %+v, want refinement-stalled fallback", r.Refine)
	}
	if r.Refine.Iterations < 1 {
		t.Errorf("stall reported after %d iterations, want >= 1", r.Refine.Iterations)
	}
	if r.Residual >= matrix.ResidualThreshold {
		t.Errorf("FP64 fallback residual %g fails the HPL bar", r.Residual)
	}
}

// TestMixed2DCtxCancellation: an already-cancelled context returns before
// any world spins up; deterministic mid-run cancellation unwinds every
// rank at a stage boundary with the plain context error.
func TestMixed2DCtxCancellation(t *testing.T) {
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveDistributed2DPrecisionCtx(done, 48, 8, 2, 2, 3, LookaheadPipelined, lu.PrecisionMixed, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
	for _, after := range []int64{1, 5, 17} {
		ctx := &countCtx{Context: context.Background(), after: after}
		_, err := SolveDistributed2DPrecisionCtx(ctx, 64, 8, 2, 2, 3, LookaheadPipelined, lu.PrecisionMixed, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
		}
	}
}

// TestMixed2DErrors: argument validation matches the FP64 driver.
func TestMixed2DErrors(t *testing.T) {
	if _, err := SolveDistributed2DPrecision(0, 4, 2, 2, 1, LookaheadPipelined, lu.PrecisionMixed); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := SolveDistributed2DPrecision(10, 4, 0, 2, 1, LookaheadPipelined, lu.PrecisionMixed); err == nil {
		t.Error("P=0 should error")
	}
	if _, err := SolveDistributed2DPrecision(16, 0, 2, 2, 1, LookaheadPipelined, lu.PrecisionMixed); err != nil {
		t.Errorf("nb=0 should clamp: %v", err)
	}
}
