package hpl

import (
	"errors"

	"phihpl/internal/cluster"
	"phihpl/internal/matrix"
	"phihpl/internal/offload"
)

// SolveDistributed2DHybrid is SolveDistributed2D with the trailing updates
// routed through the real offload engine: every local block update
// A(I,J) -= L21(I)·U12(J) is executed by offload.Compute, whose "card"
// worker packs operands into the Knights Corner tile layout and multiplies
// with the register-blocked micro-kernel while a host worker steals tiles
// from the other end — the functional composition of Sections III and V.
//
// The result passes the HPL residual test; unlike the plain driver it is
// not bitwise identical to the sequential algorithm (the packed micro-
// kernel accumulates in a different order), so tests compare solutions to
// within floating-point round-off.
func SolveDistributed2DHybrid(n, nb, p, q int, seed uint64) (DistResult, error) {
	if n < 1 || p < 1 || q < 1 {
		return DistResult{}, errors.New("hpl: n, P and Q must be positive")
	}
	if nb < 1 || nb > n {
		nb = clampNB(n)
	}
	nBlocks := (n + nb - 1) / nb

	world := cluster.NewWorld(p*q, nBlocks*nBlocks+16)
	results := make([]DistResult, p*q)
	errs := make([]error, p*q)
	if err := world.Run(func(c *Comm) error {
		g := &grid2d{c: c, P: p, Q: q, n: n, nb: nb, nBlocks: nBlocks, offloadUpdates: true}
		g.p, g.q = c.Rank()/q, c.Rank()%q
		return g.run(seed, results, errs)
	}); err != nil {
		return results[0], err
	}
	for _, e := range errs {
		if e != nil {
			return results[0], e
		}
	}
	return results[0], nil
}

// offloadUpdate computes blk -= l·u through the work-stealing engine.
func offloadUpdate(l, u, blk *matrix.Dense) {
	// C += (-L)·U: negate a copy of L once; tiles sized for a card+host
	// split even on small blocks.
	negL := l.Clone()
	for i := 0; i < negL.Rows; i++ {
		row := negL.Row(i)
		for j := range row {
			row[j] = -row[j]
		}
	}
	mt := blk.Rows/2 + 1
	nt := blk.Cols/2 + 1
	offload.Compute(negL, u, blk, offload.RealConfig{
		Mt: mt, Nt: nt, CardWorkers: 1, HostWorkers: 1,
	})
}
