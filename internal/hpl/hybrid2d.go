package hpl

import (
	"context"

	"phihpl/internal/lu"
	"phihpl/internal/matrix"
	"phihpl/internal/offload"
	"phihpl/internal/trace"
)

// SolveDistributed2DHybrid is SolveDistributed2D with the trailing updates
// routed through the real offload engine: every local block update
// A(I,J) -= L21(I)·U12(J) is executed by offload.Compute, whose "card"
// worker packs operands into the Knights Corner tile layout and multiplies
// with the register-blocked micro-kernel while a host worker steals tiles
// from the other end — the functional composition of Sections III and V.
//
// The result passes the HPL residual test; unlike the plain driver it is
// not bitwise identical to the sequential algorithm (the packed micro-
// kernel accumulates in a different order), so tests compare solutions to
// within floating-point round-off.
func SolveDistributed2DHybrid(n, nb, p, q int, seed uint64) (DistResult, error) {
	return SolveDistributed2DHybridCtx(context.Background(), n, nb, p, q, seed)
}

// SolveDistributed2DHybridMode is SolveDistributed2DHybrid with an
// explicit look-ahead schedule.
func SolveDistributed2DHybridMode(n, nb, p, q int, seed uint64, mode LookaheadMode) (DistResult, error) {
	return SolveDistributed2DHybridModeCtx(context.Background(), n, nb, p, q, seed, mode, nil)
}

// SolveDistributed2DHybridCtx is SolveDistributed2DHybrid under a context:
// cancellation is observed both at every rank's stage boundary and inside
// the offload engine itself, so a rank parked in a long trailing update
// unwinds without waiting for the stage to finish.
func SolveDistributed2DHybridCtx(ctx context.Context, n, nb, p, q int, seed uint64) (DistResult, error) {
	return solve2D(ctx, n, nb, p, q, seed, true, LookaheadPipelined, lu.PrecisionFP64, nil)
}

// SolveDistributed2DHybridModeCtx is SolveDistributed2DHybridMode under a
// context, optionally recording protocol spans into rec.
func SolveDistributed2DHybridModeCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, rec *trace.Recorder) (DistResult, error) {
	return solve2D(ctx, n, nb, p, q, seed, true, mode, lu.PrecisionFP64, rec)
}

// SolveDistributed2DHybridPrecision is SolveDistributed2DHybridMode with
// an explicit precision. The offload engine computes in FP64 only, so a
// mixed hybrid solve routes its trailing updates through the FP32 packed
// host path instead — bitwise identical to the plain mixed 2D driver —
// and keeps the offload engine for the FP64 fallback re-run.
func SolveDistributed2DHybridPrecision(n, nb, p, q int, seed uint64, mode LookaheadMode, prec lu.PrecisionMode) (DistResult, error) {
	return SolveDistributed2DHybridPrecisionCtx(context.Background(), n, nb, p, q, seed, mode, prec, nil)
}

// SolveDistributed2DHybridPrecisionCtx is SolveDistributed2DHybridPrecision
// under a context, optionally recording protocol spans into rec.
func SolveDistributed2DHybridPrecisionCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, prec lu.PrecisionMode, rec *trace.Recorder) (DistResult, error) {
	return solve2D(ctx, n, nb, p, q, seed, true, mode, prec, rec)
}

// offloadUpdate computes blk -= l·u through the work-stealing engine,
// propagating ctx into the engine (nil ctx means run to completion).
func offloadUpdate(ctx context.Context, l, u, blk *matrix.Dense) error {
	// C += (-L)·U: negate a copy of L once; tiles sized for a card+host
	// split even on small blocks.
	negL := l.Clone()
	for i := 0; i < negL.Rows; i++ {
		row := negL.Row(i)
		for j := range row {
			row[j] = -row[j]
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	mt := blk.Rows/2 + 1
	nt := blk.Cols/2 + 1
	_, err := offload.ComputeCtx(ctx, negL, u, blk, offload.RealConfig{
		Mt: mt, Nt: nt, CardWorkers: 1, HostWorkers: 1,
	})
	return err
}
