package hpl

import "testing"

// Regression: MaxProblemSize divided by nb without guarding degenerate
// inputs, so nb=0 panicked (integer modulo by zero) and negative arguments
// produced garbage sizes. All degenerate configurations now report 0 —
// "no problem fits".
func TestMaxProblemSizeDegenerateInputs(t *testing.T) {
	cases := []struct{ nodes, memGiB, nb int }{
		{1, 64, 0},
		{1, 64, -128},
		{0, 64, 1200},
		{-3, 64, 1200},
		{1, 0, 1200},
		{1, -16, 1200},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := MaxProblemSize(c.nodes, c.memGiB, c.nb); got != 0 {
			t.Errorf("MaxProblemSize(%d, %d, %d) = %d, want 0", c.nodes, c.memGiB, c.nb, got)
		}
	}
	// Sanity: a real configuration still reports a positive multiple of NB.
	if n := MaxProblemSize(1, 64, 1200); n <= 0 || n%1200 != 0 {
		t.Errorf("valid configuration regressed: %d", n)
	}
}
