package hpl

import (
	"errors"
	"testing"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/fault"
	"phihpl/internal/matrix"
	"phihpl/internal/testutil"
)

// runFTWithDeadline runs the FT solver and fails the test if it hangs —
// the acceptance bar is "typed error or PASS within the deadline, never a
// wedge".
func runFTWithDeadline(t *testing.T, n, nb, p, q int, seed uint64, cfg FTConfig) (DistResult, error) {
	t.Helper()
	type out struct {
		r   DistResult
		err error
	}
	ch := make(chan out, 1)
	go func() {
		r, err := SolveDistributed2DFT(n, nb, p, q, seed, cfg)
		ch <- out{r, err}
	}()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-time.After(2 * time.Minute):
		t.Fatal("fault-tolerant solve hung past the deadline")
		return DistResult{}, nil
	}
}

func TestFTCleanPathBitwiseIdentical(t *testing.T) {
	defer testutil.NoLeaks(t)()
	n, nb := 72, 12
	a, b := matrix.RandomSystem(n, 17)
	lu := a.Clone()
	piv := make([]int, n)
	if err := blas.Dgetrf(lu, piv, nb); err != nil {
		t.Fatal(err)
	}
	want := blas.LUSolve(lu, piv, b)

	for _, grid := range [][2]int{{1, 1}, {2, 2}, {2, 3}} {
		r, err := SolveDistributed2DFT(n, nb, grid[0], grid[1], 17, FTConfig{})
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		for i := range want {
			if r.X[i] != want[i] {
				t.Fatalf("grid %v: x[%d] = %v, want %v (bitwise)", grid, i, r.X[i], want[i])
			}
		}
		if r.FT == nil || r.FT.Restarts != 0 {
			t.Errorf("grid %v: clean run restarted: %+v", grid, r.FT)
		}
	}
}

// TestFTChaosSuite drives the solver through deterministic fault plans.
// Every case must converge to a passing residual after transparent
// recovery — no hangs, no process-killing panics.
func TestFTChaosSuite(t *testing.T) {
	defer testutil.NoLeaks(t)()
	const n, nb, p, q = 96, 16, 2, 2
	cases := []struct {
		name string
		spec string
	}{
		{"drop", "seed=11;drop=0.05"},
		{"dup", "seed=12;dup=0.08"},
		{"delay", "seed=13;delay=0.08:500us"},
		{"corrupt", "seed=14;corrupt=0.04"},
		{"crash-rollback", "crash=1@2"},
		{"stall-short", "stall=2@1:50ms"},
		{"scrub-abft", "scrub=3@1"},
		{"drop-dup-corrupt", "seed=15;drop=0.03;dup=0.03;corrupt=0.02"},
		{"crash-under-loss", "seed=16;drop=0.03;crash=2@3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := fault.Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			r, err := runFTWithDeadline(t, n, nb, p, q, 7, FTConfig{
				Plan:            plan,
				Timeout:         2 * time.Second,
				CheckpointEvery: 2,
				MaxRestarts:     3,
			})
			if err != nil {
				t.Fatalf("plan %q: %v", tc.spec, err)
			}
			if r.Residual > matrix.ResidualThreshold {
				t.Errorf("plan %q: residual %g FAILED", tc.spec, r.Residual)
			}
			if r.FT == nil {
				t.Fatal("missing FT stats")
			}
		})
	}
}

func TestFTCrashRollsBackToCheckpoint(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.RankEvent{{Rank: 1, Iter: 3}}}
	r, err := runFTWithDeadline(t, 96, 16, 2, 2, 7, FTConfig{
		Plan: plan, CheckpointEvery: 2, MaxRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Residual > matrix.ResidualThreshold {
		t.Errorf("residual %g FAILED after rollback", r.Residual)
	}
	if r.FT.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", r.FT.Restarts)
	}
	if r.FT.Checkpoints == 0 {
		t.Error("crash at iter 3 should have a stage-2 checkpoint to roll back to")
	}
	if r.FT.Faults.Crashes != 1 {
		t.Errorf("crash fired %d times, want 1 (one-shot)", r.FT.Faults.Crashes)
	}
}

func TestFTScrubIsReconstructed(t *testing.T) {
	plan := &fault.Plan{Scrubs: []fault.RankEvent{{Rank: 3, Iter: 1}}}
	r, err := runFTWithDeadline(t, 96, 16, 2, 2, 7, FTConfig{
		Plan: plan, CheckpointEvery: 2, MaxRestarts: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Residual > matrix.ResidualThreshold {
		t.Errorf("residual %g FAILED: corruption not repaired", r.Residual)
	}
	if r.FT.Reconstructions == 0 {
		t.Error("scrubbed block must be reconstructed from the ABFT checksums")
	}
	if r.FT.Restarts != 0 {
		t.Errorf("ABFT repair should be forward recovery, not rollback (restarts=%d)", r.FT.Restarts)
	}
}

func TestFTLongStallTimesOutAndRecovers(t *testing.T) {
	// The stall exceeds the timeout: peers see ErrTimeout, the world
	// aborts and the driver restarts. One-shot, so attempt 2 passes.
	plan := &fault.Plan{Stalls: []fault.StallEvent{{Rank: 2, Iter: 1, Dur: 30 * time.Second}}}
	r, err := runFTWithDeadline(t, 64, 16, 2, 2, 7, FTConfig{
		Plan: plan, Timeout: 250 * time.Millisecond, CheckpointEvery: 2, MaxRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Residual > matrix.ResidualThreshold {
		t.Errorf("residual %g FAILED", r.Residual)
	}
	if r.FT.Restarts == 0 {
		t.Error("a stall longer than the timeout must force a restart")
	}
}

func TestFTUnrecoverableReturnsFaultError(t *testing.T) {
	defer testutil.NoLeaks(t)()
	// Rank 1 crashes on every attempt; MaxRestarts=2 gives up after the
	// third try with a structured report.
	plan := &fault.Plan{Crashes: []fault.RankEvent{
		{Rank: 1, Iter: 0}, {Rank: 1, Iter: 1}, {Rank: 1, Iter: 2}, {Rank: 1, Iter: 3},
	}}
	_, err := runFTWithDeadline(t, 96, 16, 2, 2, 7, FTConfig{
		Plan: plan, CheckpointEvery: 2, MaxRestarts: 2,
	})
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FaultError, got %v", err)
	}
	if fe.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2", fe.Restarts)
	}
	if fe.Iter != 2 {
		t.Errorf("Iter = %d, want 2 (furthest iteration reached)", fe.Iter)
	}
	if !errors.Is(err, fault.ErrInjectedCrash) {
		t.Errorf("cause lost from the chain: %v", err)
	}
	if !errors.Is(err, cluster.ErrRankFailed) && !errors.Is(err, cluster.ErrAborted) {
		t.Errorf("peer failures lost from the chain: %v", err)
	}
	if len(fe.Profile) == 0 {
		t.Error("final attempt's per-iteration profile missing")
	}
}

func TestFTGridShapes(t *testing.T) {
	// Recovery must not depend on the grid: run a lossy plan over several
	// shapes, including single-row/-column grids and ragged blocks.
	for _, tc := range []struct{ n, nb, p, q int }{
		{60, 16, 1, 1},
		{60, 16, 4, 1},
		{60, 16, 1, 4},
		{75, 10, 2, 2}, // ragged final blocks
	} {
		plan := &fault.Plan{Seed: 21, Drop: 0.03, Dup: 0.02}
		r, err := runFTWithDeadline(t, tc.n, tc.nb, tc.p, tc.q, 9, FTConfig{
			Plan: plan, CheckpointEvery: 2, MaxRestarts: 2,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r.Residual > matrix.ResidualThreshold {
			t.Errorf("%+v: residual %g FAILED", tc, r.Residual)
		}
	}
}
