package hpl

import (
	"fmt"
	"math"

	"phihpl/internal/matrix"
)

// verify is the super-step ABFT check after stage k. For every trailing
// block row I ≥ k+1 the row's ranks reduce Σ_{J≥k+1} A(I,J)·S_J to the
// checksum owner, which compares against C1/C2. A single corrupted block
// is localized by the elementwise weight ratio δ2/δ1 ≈ J0+1 and repaired
// in place; a corrupted checksum block is rebuilt from the clean data;
// anything else is ErrChecksum (the driver rolls back). All ranks then
// agree on the global verdict through rank 0.
func (f *ftGrid) verify(k int) error {
	worst := ftClean
	for i := k + 1; i < f.nBlocks; i++ {
		if i%f.P != f.p {
			continue
		}
		st, err := f.verifyRow(k, i)
		if err != nil {
			return err
		}
		if st > worst {
			worst = st
		}
	}

	// Global verdict: reduce the worst status to rank 0 and fan back out.
	tag := tagFTWorst + k
	global := worst
	if f.me() == 0 {
		for r := 1; r < f.P*f.Q; r++ {
			msg, err := f.c.Recv(r, tag)
			if err != nil {
				return err
			}
			if len(msg.I) > 0 && msg.I[0] > global {
				global = msg.I[0]
			}
		}
		for r := 1; r < f.P*f.Q; r++ {
			if err := f.c.Send(r, tag, nil, []int{global}); err != nil {
				return err
			}
		}
	} else {
		if err := f.c.Send(0, tag, nil, []int{worst}); err != nil {
			return err
		}
		msg, err := f.c.Recv(0, tag)
		if err != nil {
			return err
		}
		if len(msg.I) > 0 {
			global = msg.I[0]
		}
	}
	if global >= ftLost {
		return fmt.Errorf("hpl: super-step after stage %d: %w", k, ErrChecksum)
	}
	return nil
}

// rowPartial reduces this rank's trailing blocks of row i into the pair
// of local checksum partials Σ A(i,J)·S_J and Σ (J+1)·A(i,J)·S_J. A
// non-negative skipJ leaves that block column out — used when re-reducing
// around a block known to be corrupt.
func (f *ftGrid) rowPartial(k, i, skipJ int) (*matrix.Dense, *matrix.Dense) {
	r, _ := f.blockDims(i, 0)
	ps1 := matrix.NewDense(r, f.nb)
	ps2 := matrix.NewDense(r, f.nb)
	for j := k + 1; j < f.nBlocks; j++ {
		if j%f.Q != f.q || j == skipJ {
			continue
		}
		blk := f.blocks[[2]int{i, j}]
		_, w := f.blockDims(i, j)
		wgt := float64(j + 1)
		for rr := 0; rr < r; rr++ {
			src := blk.Row(rr)
			d1, d2 := ps1.Row(rr), ps2.Row(rr)
			for cc := 0; cc < w; cc++ {
				d1[cc] += src[cc]
				d2[cc] += wgt * src[cc]
			}
		}
	}
	return ps1, ps2
}

// verifyRow runs the reduction and verdict exchange for one trailing
// block row I and returns this rank's observed status.
func (f *ftGrid) verifyRow(k, i int) (int, error) {
	r, _ := f.blockDims(i, 0)
	own1, own2 := f.rowPartial(k, i, -1)
	sumTag := tagFTSum + k*f.nBlocks + i
	verTag := tagFTVerdict + k*f.nBlocks + i
	fixTag := tagFTFix + k*f.nBlocks + i

	if f.q != f.cq {
		// Contribute the partial sums, then act on the owner's verdict.
		if err := f.c.Send(f.rank(f.p, f.cq), sumTag, append(flatten(own1), flatten(own2)...), nil); err != nil {
			return 0, err
		}
		msg, err := f.c.Recv(f.rank(f.p, f.cq), verTag)
		if err != nil {
			return 0, err
		}
		if len(msg.I) < 2 {
			return 0, fmt.Errorf("hpl: malformed verdict for row %d", i)
		}
		st, j0 := msg.I[0], msg.I[1]
		if st == ftFixed && j0%f.Q == f.q {
			// Second round: ship a partial that excludes the corrupt
			// block, then install the exact value the owner computes.
			ex1, _ := f.rowPartial(k, i, j0)
			if err := f.c.Send(f.rank(f.p, f.cq), fixTag, flatten(ex1), nil); err != nil {
				return 0, err
			}
			fixed, err := f.c.Recv(f.rank(f.p, f.cq), fixTag)
			if err != nil {
				return 0, err
			}
			if err := f.installBlock(i, j0, fixed.F, r); err != nil {
				return 0, err
			}
		}
		return st, nil
	}

	// Checksum owner: fold in the row peers' partials, keeping each one so
	// a repair can re-reduce without the corrupted block's contribution.
	s1, s2 := own1.Clone(), own2.Clone()
	peers := make(map[int][]float64, f.Q-1)
	for qq := 0; qq < f.Q; qq++ {
		if qq == f.cq {
			continue
		}
		msg, err := f.c.Recv(f.rank(f.p, qq), sumTag)
		if err != nil {
			return 0, err
		}
		if len(msg.F) != 2*r*f.nb {
			return 0, fmt.Errorf("hpl: partial-sum payload %d != %d", len(msg.F), 2*r*f.nb)
		}
		peers[qq] = msg.F
		for rr := 0; rr < r; rr++ {
			d1, d2 := s1.Row(rr), s2.Row(rr)
			for cc := 0; cc < f.nb; cc++ {
				d1[cc] += msg.F[rr*f.nb+cc]
				d2[cc] += msg.F[(r+rr)*f.nb+cc]
			}
		}
	}
	st, j0 := f.judgeRow(k, i, s1, s2)
	for qq := 0; qq < f.Q; qq++ {
		if qq == f.cq {
			continue
		}
		if err := f.c.Send(f.rank(f.p, qq), verTag, nil, []int{st, j0}); err != nil {
			return 0, err
		}
	}
	if st == ftFixed {
		// Rebuild the block as C1 − Σ_{J≠j0} from partials that never saw
		// the corrupted value. An additive in-place correction would
		// cancel the corruption against sums of its own magnitude and
		// leave an absolute error proportional to it; the re-reduction
		// keeps the repair at ordinary roundoff level.
		q0 := j0 % f.Q
		var ex1 *matrix.Dense
		if q0 == f.cq {
			ex1, _ = f.rowPartial(k, i, j0)
		} else {
			msg, err := f.c.Recv(f.rank(f.p, q0), fixTag)
			if err != nil {
				return 0, err
			}
			if len(msg.F) != r*f.nb {
				return 0, fmt.Errorf("hpl: repair partial payload %d != %d", len(msg.F), r*f.nb)
			}
			var uerr error
			ex1, uerr = unflatten(msg.F, r, f.nb)
			if uerr != nil {
				return 0, uerr
			}
		}
		fixed := make([]float64, r*f.nb)
		for rr := 0; rr < r; rr++ {
			c1, ex := f.chk1[i].Row(rr), ex1.Row(rr)
			for cc := 0; cc < f.nb; cc++ {
				tot := ex[cc]
				for qq, pf := range peers {
					if qq == q0 {
						continue
					}
					tot += pf[rr*f.nb+cc]
				}
				if q0 != f.cq {
					tot += own1.At(rr, cc)
				}
				fixed[rr*f.nb+cc] = c1[cc] - tot
			}
		}
		if q0 == f.cq {
			if err := f.installBlock(i, j0, fixed, r); err != nil {
				return 0, err
			}
		} else if err := f.c.Send(f.rank(f.p, q0), fixTag, fixed, nil); err != nil {
			return 0, err
		}
	}
	return st, nil
}

// judgeRow compares the reduced sums against the checksum blocks of row i
// and decides clean / fixable / rebuilt / lost, localizing a single
// corrupted data block through the weight ratio δ2/δ1 ≈ J0+1.
func (f *ftGrid) judgeRow(k, i int, sum1, sum2 *matrix.Dense) (status, j0 int) {
	r := sum1.Rows
	d1 := matrix.NewDense(r, f.nb)
	d2 := matrix.NewDense(r, f.nb)
	var m1, m2 float64
	var imax, cmax int
	for rr := 0; rr < r; rr++ {
		c1, c2 := f.chk1[i].Row(rr), f.chk2[i].Row(rr)
		s1, s2 := sum1.Row(rr), sum2.Row(rr)
		e1, e2 := d1.Row(rr), d2.Row(rr)
		for cc := 0; cc < f.nb; cc++ {
			e1[cc] = c1[cc] - s1[cc]
			e2[cc] = c2[cc] - s2[cc]
			if a := math.Abs(e1[cc]); a > m1 {
				m1, imax, cmax = a, rr, cc
			}
			if a := math.Abs(e2[cc]); a > m2 {
				m2 = a
			}
		}
	}
	switch {
	case m1 <= ftTol && m2 <= ftTol:
		return ftClean, -1
	case m1 <= ftTol:
		// Only the weighted checksum disagrees: C2 itself is corrupt.
		f.chk2[i] = sum2
		f.store.noteRebuild()
		return ftRebuilt, -1
	case m2 <= ftTol:
		f.chk1[i] = sum1
		f.store.noteRebuild()
		return ftRebuilt, -1
	}
	// Both disagree: a data block. δ2 = (J0+1)·δ1 elementwise.
	ratio := d2.At(imax, cmax) / d1.At(imax, cmax)
	j0 = int(math.Round(ratio)) - 1
	if j0 < k+1 || j0 >= f.nBlocks {
		return ftLost, -1
	}
	// Consistency: the whole residue must honor the weight.
	wgt := float64(j0 + 1)
	for rr := 0; rr < r; rr++ {
		e1, e2 := d1.Row(rr), d2.Row(rr)
		for cc := 0; cc < f.nb; cc++ {
			if math.Abs(e2[cc]-wgt*e1[cc]) > ftTol*wgt {
				return ftLost, -1
			}
		}
	}
	f.store.noteReconstruction()
	return ftFixed, j0
}

// installBlock overwrites the corrupted block (i, j0) with the value
// reconstructed from the checksum, restricted to the block's true width.
func (f *ftGrid) installBlock(i, j0 int, vals []float64, r int) error {
	blk := f.blocks[[2]int{i, j0}]
	if blk == nil {
		return fmt.Errorf("hpl: fix targets unowned block (%d,%d)", i, j0)
	}
	if len(vals) != r*f.nb {
		return fmt.Errorf("hpl: reconstruction payload %d != %d", len(vals), r*f.nb)
	}
	_, w := f.blockDims(i, j0)
	for rr := 0; rr < r; rr++ {
		row := blk.Row(rr)
		for cc := 0; cc < w; cc++ {
			row[cc] = vals[rr*f.nb+cc]
		}
	}
	return nil
}

// checkpoint deposits this rank's post-stage-k state into the stable
// store; the store promotes the checkpoint once every rank has deposited.
func (f *ftGrid) checkpoint(k int) {
	snap := &ftSnap{
		blocks:     cloneBlockMap(f.blocks),
		chk1:       cloneChkMap(f.chk1),
		chk2:       cloneChkMap(f.chk2),
		globalPiv:  append([]int(nil), f.globalPiv...),
		firstError: f.firstError,
	}
	f.store.deposit(f.me(), k+1, snap)
}

func cloneBlockMap(m map[[2]int]*matrix.Dense) map[[2]int]*matrix.Dense {
	out := make(map[[2]int]*matrix.Dense, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

func cloneChkMap(m map[int]*matrix.Dense) map[int]*matrix.Dense {
	if m == nil {
		return nil
	}
	out := make(map[int]*matrix.Dense, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}
