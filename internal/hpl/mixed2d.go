package hpl

import (
	"context"
	"fmt"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/lu"
	"phihpl/internal/matrix"
	"phihpl/internal/pool"
)

// The mixed-precision 2D pipeline (HPL-MxP on the block-cyclic grid):
// every factorization-phase structure — panel gather/factor/scatter, the
// coalesced row swaps, the L and U tree broadcasts, and the packed
// trailing updates — runs in single precision, halving both the wire
// bytes and the GEMM memory traffic, while rank 0 keeps the FP64 original
// and recovers a double-precision-quality solution with the shared
// iterative-refinement ladder (lu.RefineMixed). The schedule drivers
// (stageNone / stageBasic / stagePipelined) are precision-agnostic: they
// call the same leaf operations, which dispatch here when the grid runs
// mixed, so every look-ahead mode and grid shape produces bitwise
// identical FP32 factors — the same worker/partition invariance the FP64
// path proves, carried over to the SGEMM fast path.

func (g *grid2d) mixed() bool { return g.prec == lu.PrecisionMixed }

// ctxOrBG returns the grid's context, never nil.
func (g *grid2d) ctxOrBG() context.Context {
	if g.ctx == nil {
		return context.Background()
	}
	return g.ctx
}

// mixedTestSystem, when non-nil, replaces the seeded random system in the
// mixed-precision scatter — a test hook for must-fall-back goldens
// (ill-conditioned systems the FP32 route cannot solve). The hook must be
// deterministic: every rank calls it independently and materializes the
// full system (test-scale only).
var mixedTestSystem func(n int, seed uint64) (*matrix.Dense, []float64)

func flatten32(m *matrix.Dense32) []float32 {
	out := make([]float32, 0, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		out = append(out, m.Row(i)...)
	}
	return out
}

// unflatten32 reshapes a received FP32 payload, rejecting shape
// mismatches as a typed error.
func unflatten32(data []float32, rows, cols int) (*matrix.Dense32, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("hpl: payload %d != %dx%d elements", len(data), rows, cols)
	}
	return &matrix.Dense32{Rows: rows, Cols: cols, Stride: cols, Data: data}, nil
}

// scatter32 generates the seeded system, rounds the owned blocks to
// single precision (round-to-nearest per element — the demotion that
// starts HPL-MxP) and keeps the FP64 original only on rank 0, which needs
// it for residuals and refinement. The FP32 blocks are bitwise identical
// across ranks regardless of whether they came from the materialized
// matrix or the jump-ahead generator.
func (g *grid2d) scatter32(seed uint64) (*matrix.Dense, []float64) {
	g.seed = seed
	var full *matrix.Dense
	var rhs []float64
	if hook := mixedTestSystem; hook != nil {
		full, rhs = hook(g.n, seed)
	} else if g.me() == 0 {
		full, rhs = matrix.RandomSystem(g.n, seed)
	}
	g.blocks32 = make(map[[2]int]*matrix.Dense32)
	for i := 0; i < g.nBlocks; i++ {
		for j := 0; j < g.nBlocks; j++ {
			if op, oq := g.owner(i, j); op == g.p && oq == g.q {
				r, c := g.blockDims(i, j)
				if full != nil {
					g.blocks32[[2]int{i, j}] = full.View(i*g.nb, j*g.nb, r, c).ToDense32()
				} else {
					g.blocks32[[2]int{i, j}] = matrix.RandomSubmatrix(g.n, seed, i*g.nb, j*g.nb, r, c).ToDense32()
				}
			}
		}
	}
	g.globalPiv = make([]int, g.n)
	for i := range g.globalPiv {
		g.globalPiv[i] = i
	}
	g.pivots = make([][]int, g.nBlocks)
	g.factored = make([]bool, g.nBlocks)
	g.lSent = make([]bool, g.nBlocks)
	g.stageL21v32 = make([]*matrix.Dense32, g.nBlocks)
	g.stageU12v32 = make([]*matrix.Dense32, g.nBlocks)
	g.packedL32 = make([]*blas.SPrepackedA, g.nBlocks)
	if g.me() != 0 {
		full, rhs = nil, nil // hook path: only the root verifies
	}
	return full, rhs
}

func clearDense32(s []*matrix.Dense32) {
	for i := range s {
		s[i] = nil
	}
}

// factorPanel32 is the synchronous (LookaheadNone) panel factorization in
// single precision: gather block column k on the diagonal owner, factor
// with Sgetf2, scatter back, flat pivot fan-out — message for message the
// FP64 seed schedule, with half-width payloads.
func (g *grid2d) factorPanel32(k int) ([]int, error) {
	rootP, rootQ := g.owner(k, k)
	root := g.rank(rootP, rootQ)
	_, w := g.blockDims(k, k)
	panelRows := g.n - k*g.nb

	inPanelColumn := g.q == rootQ
	if inPanelColumn && g.me() != root {
		for i := k; i < g.nBlocks; i++ {
			if op, _ := g.owner(i, k); op == g.p {
				if err := g.c.Send32(root, tag2dGatherBase+k*g.nBlocks+i, flatten32(g.blocks32[[2]int{i, k}]), nil); err != nil {
					return nil, err
				}
			}
		}
	}

	var piv []int
	if g.me() == root {
		panel := matrix.NewDense32(panelRows, w)
		for i := k; i < g.nBlocks; i++ {
			r, _ := g.blockDims(i, k)
			dst := panel.View(i*g.nb-k*g.nb, 0, r, w)
			if op, _ := g.owner(i, k); op == g.p {
				dst.CopyFrom(g.blocks32[[2]int{i, k}])
			} else {
				msg, err := g.c.Recv(g.rank(op, rootQ), tag2dGatherBase+k*g.nBlocks+i)
				if err != nil {
					return nil, err
				}
				seg, err := unflatten32(msg.F32, r, w)
				if err != nil {
					return nil, err
				}
				dst.CopyFrom(seg)
			}
		}
		piv = make([]int, w)
		if err := blas.Sgetf2(panel, piv); err != nil && g.firstError == nil {
			g.firstError = blas.OffsetSingular(err, k*g.nb)
		}
		for i := k; i < g.nBlocks; i++ {
			r, _ := g.blockDims(i, k)
			seg := panel.View(i*g.nb-k*g.nb, 0, r, w)
			if op, _ := g.owner(i, k); op == g.p {
				g.blocks32[[2]int{i, k}].CopyFrom(seg)
			} else {
				if err := g.c.Send32(g.rank(op, rootQ), tag2dGatherBase+k*g.nBlocks+i, flatten32(seg), nil); err != nil {
					return nil, err
				}
			}
		}
	} else if inPanelColumn {
		for i := k; i < g.nBlocks; i++ {
			if op, _ := g.owner(i, k); op == g.p {
				r, _ := g.blockDims(i, k)
				msg, err := g.c.Recv(root, tag2dGatherBase+k*g.nBlocks+i)
				if err != nil {
					return nil, err
				}
				seg, err := unflatten32(msg.F32, r, w)
				if err != nil {
					return nil, err
				}
				g.blocks32[[2]int{i, k}].CopyFrom(seg)
			}
		}
	}

	if g.me() == root {
		for r := 0; r < g.P*g.Q; r++ {
			if r != root {
				if err := g.c.Send(r, tag2dPivBase+k, nil, piv); err != nil {
					return nil, err
				}
			}
		}
	} else {
		msg, err := g.c.Recv(root, tag2dPivBase+k)
		if err != nil {
			return nil, err
		}
		piv = msg.I
	}
	if len(piv) != w {
		return nil, fmt.Errorf("hpl: stage %d pivot payload has %d entries, want %d", k, len(piv), w)
	}
	g.recordPivots(k, piv)
	return piv, nil
}

// factorPanelCore32 is the batched (basic/pipelined) panel factorization
// in single precision: gather/factor/scatter over one message per rank
// pair. Only panel-column ranks participate; the root returns the pivots.
func (g *grid2d) factorPanelCore32(k int) ([]int, error) {
	rootP, rootQ := g.owner(k, k)
	root := g.rank(rootP, rootQ)
	if g.q != rootQ {
		return nil, nil
	}
	_, w := g.blockDims(k, k)
	mine, total := g.panelSegs(k)

	if g.me() != root {
		if total == 0 {
			return nil, nil
		}
		buf := make([]float32, 0, total)
		for _, i := range mine {
			buf = append(buf, flatten32(g.blocks32[[2]int{i, k}])...)
		}
		if err := g.c.Send32(root, tag2dGatherBase+k, buf, nil); err != nil {
			return nil, err
		}
		msg, err := g.c.Recv(root, tag2dGatherBase+k)
		if err != nil {
			return nil, err
		}
		if len(msg.F32) != total {
			return nil, fmt.Errorf("hpl: stage %d factored panel payload %d != %d", k, len(msg.F32), total)
		}
		off := 0
		for _, i := range mine {
			r, _ := g.blockDims(i, k)
			seg, err := unflatten32(msg.F32[off:off+r*w], r, w)
			if err != nil {
				return nil, err
			}
			g.blocks32[[2]int{i, k}].CopyFrom(seg)
			off += r * w
		}
		return nil, nil
	}

	panelRows := g.n - k*g.nb
	panel := matrix.NewDense32(panelRows, w)
	for pp := 0; pp < g.P; pp++ {
		var rows []int
		rowTotal := 0
		for i := k; i < g.nBlocks; i++ {
			if i%g.P == pp {
				r, _ := g.blockDims(i, k)
				rows = append(rows, i)
				rowTotal += r * w
			}
		}
		if rowTotal == 0 {
			continue
		}
		if pp == g.p {
			for _, i := range rows {
				r, _ := g.blockDims(i, k)
				panel.View((i-k)*g.nb, 0, r, w).CopyFrom(g.blocks32[[2]int{i, k}])
			}
			continue
		}
		msg, err := g.c.Recv(g.rank(pp, rootQ), tag2dGatherBase+k)
		if err != nil {
			return nil, err
		}
		if len(msg.F32) != rowTotal {
			return nil, fmt.Errorf("hpl: stage %d gathered panel payload %d != %d", k, len(msg.F32), rowTotal)
		}
		off := 0
		for _, i := range rows {
			r, _ := g.blockDims(i, k)
			seg, err := unflatten32(msg.F32[off:off+r*w], r, w)
			if err != nil {
				return nil, err
			}
			panel.View((i-k)*g.nb, 0, r, w).CopyFrom(seg)
			off += r * w
		}
	}
	piv := make([]int, w)
	if err := blas.Sgetf2(panel, piv); err != nil && g.firstError == nil {
		g.firstError = blas.OffsetSingular(err, k*g.nb)
	}
	for pp := 0; pp < g.P; pp++ {
		var rows []int
		rowTotal := 0
		for i := k; i < g.nBlocks; i++ {
			if i%g.P == pp {
				r, _ := g.blockDims(i, k)
				rows = append(rows, i)
				rowTotal += r * w
			}
		}
		if rowTotal == 0 {
			continue
		}
		if pp == g.p {
			for _, i := range rows {
				r, _ := g.blockDims(i, k)
				g.blocks32[[2]int{i, k}].CopyFrom(panel.View((i-k)*g.nb, 0, r, w))
			}
			continue
		}
		buf := make([]float32, 0, rowTotal)
		for _, i := range rows {
			r, _ := g.blockDims(i, k)
			buf = append(buf, flatten32(panel.View((i-k)*g.nb, 0, r, w))...)
		}
		if err := g.c.Send32(g.rank(pp, rootQ), tag2dGatherBase+k, buf, nil); err != nil {
			return nil, err
		}
	}
	return piv, nil
}

// swapOne32 exchanges one pivot row pair within block column jb in single
// precision (the synchronous schedules' per-pivot exchange).
func (g *grid2d) swapOne32(k, j, jb, r1, r2, i1, i2, p1, p2 int) error {
	tag := tag2dSwapBase + (k*g.nb+j)*g.nBlocks + jb
	switch {
	case p1 == g.p && p2 == g.p:
		b1 := g.blocks32[[2]int{i1, jb}]
		b2 := g.blocks32[[2]int{i2, jb}]
		l1, l2 := r1%g.nb, r2%g.nb
		row1, row2 := b1.Row(l1), b2.Row(l2)
		for x := range row1 {
			row1[x], row2[x] = row2[x], row1[x]
		}
	case p1 == g.p:
		b := g.blocks32[[2]int{i1, jb}]
		row := b.Row(r1 % g.nb)
		if err := g.c.Send32(g.rank(p2, g.q), tag, row, nil); err != nil {
			return err
		}
		msg, err := g.c.Recv(g.rank(p2, g.q), tag)
		if err != nil {
			return err
		}
		if len(msg.F32) != len(row) {
			return fmt.Errorf("hpl: swap row payload %d != %d", len(msg.F32), len(row))
		}
		copy(row, msg.F32)
	case p2 == g.p:
		b := g.blocks32[[2]int{i2, jb}]
		row := b.Row(r2 % g.nb)
		if err := g.c.Send32(g.rank(p1, g.q), tag, row, nil); err != nil {
			return err
		}
		msg, err := g.c.Recv(g.rank(p1, g.q), tag)
		if err != nil {
			return err
		}
		if len(msg.F32) != len(row) {
			return fmt.Errorf("hpl: swap row payload %d != %d", len(msg.F32), len(row))
		}
		copy(row, msg.F32)
	}
	return nil
}

// broadcastL32 is the synchronous flat L fan-out in single precision.
func (g *grid2d) broadcastL32(k int) error {
	rootP, rootQ := g.owner(k, k)
	g.stageL11v32 = nil
	clearDense32(g.stageL21v32)

	for i := k; i < g.nBlocks; i++ {
		op := i % g.P
		if op != g.p {
			continue
		}
		var blk *matrix.Dense32
		if g.q == rootQ {
			blk = g.blocks32[[2]int{i, k}]
			for qq := 0; qq < g.Q; qq++ {
				if qq != g.q {
					if err := g.c.Send32(g.rank(g.p, qq), tag2dLBase+k*g.nBlocks+i, flatten32(blk), nil); err != nil {
						return err
					}
				}
			}
		} else {
			r, c := g.blockDims(i, k)
			msg, err := g.c.Recv(g.rank(g.p, rootQ), tag2dLBase+k*g.nBlocks+i)
			if err != nil {
				return err
			}
			if blk, err = unflatten32(msg.F32, r, c); err != nil {
				return err
			}
		}
		if i == k {
			if g.p == rootP {
				g.stageL11v32 = blk
			}
		} else {
			g.stageL21v32[i] = blk
		}
	}
	return nil
}

// solveAndBroadcastU32 is the synchronous bulk U phase in single
// precision: Strsm on the pivot process row, flat fan-out down columns.
func (g *grid2d) solveAndBroadcastU32(k int) error {
	rootP, _ := g.owner(k, k)
	clearDense32(g.stageU12v32)

	for j := k + 1; j < g.nBlocks; j++ {
		_, oq := g.owner(k, j)
		if oq != g.q {
			continue
		}
		var u *matrix.Dense32
		if g.p == rootP {
			u = g.blocks32[[2]int{k, j}]
			blas.Strsm(blas.Left, blas.Lower, false, blas.Unit, 1, g.stageL11v32, u)
			for pp := 0; pp < g.P; pp++ {
				if pp != g.p {
					if err := g.c.Send32(g.rank(pp, g.q), tag2dUBase+k*g.nBlocks+j, flatten32(u), nil); err != nil {
						return err
					}
				}
			}
		} else {
			r, c := g.blockDims(k, j)
			msg, err := g.c.Recv(g.rank(rootP, g.q), tag2dUBase+k*g.nBlocks+j)
			if err != nil {
				return err
			}
			if u, err = unflatten32(msg.F32, r, c); err != nil {
				return err
			}
		}
		g.stageU12v32[j] = u
	}
	return nil
}

// update32 applies A(I,J) -= L21(I)·U12(J) to every owned trailing block
// in single precision (the synchronous schedule's bulk update). The
// offload engine computes in FP64 only, so a mixed hybrid solve routes
// its updates through the FP32 packed host path — the same crossover as
// the sequential FP32 factorization, keeping the 2D mixed solver bitwise
// identical to it regardless of grid shape.
func (g *grid2d) update32(k int) error {
	for ij, blk := range g.blocks32 {
		i, j := ij[0], ij[1]
		if i <= k || j <= k {
			continue
		}
		l := g.stageL21v32[i]
		u := g.stageU12v32[j]
		if l == nil || u == nil {
			return fmt.Errorf("hpl: rank (%d,%d) missing stage-%d operands for block (%d,%d)",
				g.p, g.q, k, i, j)
		}
		blas.SRankKUpdate(l, u, blk, 1)
	}
	return nil
}

// sendLRoot32 posts this rank's batched FP32 L payload for stage k to its
// binomial-tree children along the process row.
func (g *grid2d) sendLRoot32(k int) error {
	_, rootQ := g.owner(k, k)
	g.lSent[k] = true
	if g.Q == 1 {
		return nil
	}
	mine, total := g.panelSegs(k)
	if total == 0 {
		return nil
	}
	buf := g.scratch32[:0]
	for _, i := range mine {
		blk := g.blocks32[[2]int{i, k}]
		for r := 0; r < blk.Rows; r++ {
			buf = append(buf, blk.Row(r)...)
		}
	}
	g.scratch32 = buf[:0]
	_, children := cluster.BcastTree(g.Q, rootQ, g.q)
	for _, cq := range children {
		if err := g.c.Send32(g.rank(g.p, cq), tag2dLBase+k, buf, nil); err != nil {
			return err
		}
	}
	return nil
}

// recvL32 makes stage k's FP32 L panel available on every rank — the
// mixed-precision twin of recvL, tree relay and clone semantics included.
func (g *grid2d) recvL32(k int) error {
	rootP, rootQ := g.owner(k, k)
	g.stageL11v32 = nil
	clearDense32(g.stageL21v32)
	release := !g.pipe.deferred()
	for i, pa := range g.packedL32 {
		if release {
			pa.Release()
		}
		g.packedL32[i] = nil
	}
	if g.q == rootQ && !g.lSent[k] {
		if err := g.sendLRoot32(k); err != nil {
			return err
		}
	}
	g.lSent[k] = false

	_, w := g.blockDims(k, k)
	mine, total := g.panelSegs(k)
	if total == 0 {
		return nil
	}
	if g.q == rootQ {
		for _, i := range mine {
			blk := g.blocks32[[2]int{i, k}]
			if g.pipe.deferred() {
				// Queued GEMMs may read these blocks after stage k+1 has
				// started swapping rows of the real panel column.
				blk = blk.Clone()
			}
			if i == k {
				if g.p == rootP {
					g.stageL11v32 = blk
				}
			} else {
				g.stageL21v32[i] = blk
			}
		}
		return nil
	}
	parent, children := cluster.BcastTree(g.Q, rootQ, g.q)
	msg, err := g.c.Recv(g.rank(g.p, parent), tag2dLBase+k)
	if err != nil {
		return err
	}
	if len(msg.F32) != total {
		return fmt.Errorf("hpl: stage %d L payload %d != %d", k, len(msg.F32), total)
	}
	for _, cq := range children {
		if err := g.c.Send32(g.rank(g.p, cq), tag2dLBase+k, msg.F32, nil); err != nil {
			return err
		}
	}
	off := 0
	for _, i := range mine {
		r, _ := g.blockDims(i, k)
		blk, err := unflatten32(msg.F32[off:off+r*w], r, w)
		if err != nil {
			return err
		}
		off += r * w
		if i == k {
			if g.p == rootP {
				g.stageL11v32 = blk
			}
		} else {
			g.stageL21v32[i] = blk
		}
	}
	return nil
}

// solveUColumn32 computes U12(k,j) by Strsm on the pivot process row and
// tree-broadcasts the FP32 payload down the process column.
func (g *grid2d) solveUColumn32(k, j int) error {
	rootP, _ := g.owner(k, k)
	var u *matrix.Dense32
	if g.p == rootP {
		u = g.blocks32[[2]int{k, j}]
		blas.Strsm(blas.Left, blas.Lower, false, blas.Unit, 1, g.stageL11v32, u)
	}
	if g.P > 1 {
		tag := tag2dUBase + k*g.nBlocks + j
		var payload []float32
		parent, children := cluster.BcastTree(g.P, rootP, g.p)
		if g.p == rootP {
			payload = g.scratch32[:0]
			for r := 0; r < u.Rows; r++ {
				payload = append(payload, u.Row(r)...)
			}
			g.scratch32 = payload[:0]
		} else {
			r, c := g.blockDims(k, j)
			msg, err := g.c.Recv(g.rank(parent, g.q), tag)
			if err != nil {
				return err
			}
			if u, err = unflatten32(msg.F32, r, c); err != nil {
				return err
			}
			payload = msg.F32
		}
		for _, cp := range children {
			if err := g.c.Send32(g.rank(cp, g.q), tag, payload, nil); err != nil {
				return err
			}
		}
	}
	g.stageU12v32[j] = u
	return nil
}

// prepackL32 returns stage-wide −L21(i) in packed FP32 tile form, packing
// on first use and caching until recvL32 opens the next stage. Protocol
// goroutine only.
func (g *grid2d) prepackL32(i int, l *matrix.Dense32) *blas.SPrepackedA {
	if pa := g.packedL32[i]; pa != nil {
		return pa
	}
	pa := blas.SPrepackA(l, -1)
	g.packedL32[i] = pa
	return pa
}

// prepackU32 packs column j's U block once for reuse across the column's
// block rows, or returns nil outside the packed fast path. The gate
// depends on k alone — the SRankKUpdate crossover — and deliberately
// ignores offloadUpdates: the offload engine is FP64-only, so mixed
// hybrid updates take the same FP32 host path as the plain driver.
func (g *grid2d) prepackU32(u *matrix.Dense32) *blas.SPrepackedB {
	if u == nil || u.Rows < blas.PackedMinK {
		return nil
	}
	return blas.SPrepackB(u)
}

// updateColumn32 applies the stage-k trailing update to the owned blocks
// of column j in single precision, synchronously, sharing packed operands
// across the column.
func (g *grid2d) updateColumn32(k, j int) error {
	u := g.stageU12v32[j]
	pu := g.prepackU32(u)
	defer pu.Release()
	for i := k + 1; i < g.nBlocks; i++ {
		if i%g.P != g.p {
			continue
		}
		blk := g.blocks32[[2]int{i, j}]
		l := g.stageL21v32[i]
		if l == nil || u == nil || blk == nil {
			return fmt.Errorf("hpl: rank (%d,%d) missing stage-%d operands for block (%d,%d)", g.p, g.q, k, i, j)
		}
		if pu != nil {
			blas.SGemmPrepacked(g.prepackL32(i, l), pu, blk, 1)
		} else {
			blas.SRankKUpdate(l, u, blk, 1)
		}
	}
	return nil
}

// swapExchange32 is the pipelined schedule's coalesced row exchange with
// FP32 payloads: one packed Send32 per peer process row per stage.
func (g *grid2d) swapExchange32(k int, pairs []swapPair, order []int) (*stageSwap, error) {
	s := &stageSwap{stash32: map[int][]float32{}, off: make([]int, g.P)}
	if len(pairs) == 0 {
		return s, nil
	}
	s.routes = make([]swapRoute, len(pairs))
	sendIdx := make([][]int, g.P)
	s.recvIdx = make([][]int, g.P)
	for x, pr := range pairs {
		s.routes[x] = swapRoute{pr.src / g.nb, pr.src % g.nb, pr.slot / g.nb, pr.slot % g.nb}
		sp, dp := g.rowProc(pr.src), g.rowProc(pr.slot)
		switch {
		case sp == g.p && dp == g.p:
			s.localIdx = append(s.localIdx, x)
		case sp == g.p:
			sendIdx[dp] = append(sendIdx[dp], x)
		case dp == g.p:
			s.recvIdx[sp] = append(s.recvIdx[sp], x)
		}
	}
	tag := tag2dSwapBase + k
	for pd := 0; pd < g.P; pd++ {
		if len(sendIdx[pd]) == 0 {
			continue
		}
		buf := g.scratch32[:0]
		for _, jb := range order {
			_, w := g.blockDims(0, jb)
			for _, x := range sendIdx[pd] {
				rt := s.routes[x]
				buf = append(buf, g.blocks32[[2]int{rt.srcI, jb}].Row(rt.srcR)[:w]...)
			}
		}
		g.scratch32 = buf[:0]
		if err := g.c.Send32(g.rank(pd, g.q), tag, buf, nil); err != nil {
			return nil, err
		}
	}
	wTotal := 0
	for _, jb := range order {
		_, w := g.blockDims(0, jb)
		wTotal += w
	}
	for ps := 0; ps < g.P; ps++ {
		if len(s.recvIdx[ps]) == 0 {
			continue
		}
		msg, err := g.c.Recv(g.rank(ps, g.q), tag)
		if err != nil {
			return nil, err
		}
		if want := len(s.recvIdx[ps]) * wTotal; len(msg.F32) != want {
			return nil, fmt.Errorf("hpl: stage %d packed swap payload %d != %d", k, len(msg.F32), want)
		}
		s.stash32[ps] = msg.F32
	}
	return s, nil
}

// apply32 replays the stage permutation on block column jb against the
// FP32 blocks; see (*stageSwap).apply for the ordering argument.
func (s *stageSwap) apply32(g *grid2d, jb int) {
	_, w := g.blockDims(0, jb)
	if len(s.localIdx) > 0 {
		if cap(s.snap32) < len(s.localIdx)*w {
			s.snap32 = make([]float32, len(s.localIdx)*w)
		}
		for y, x := range s.localIdx {
			rt := s.routes[x]
			copy(s.snap32[y*w:(y+1)*w], g.blocks32[[2]int{rt.srcI, jb}].Row(rt.srcR)[:w])
		}
		for y, x := range s.localIdx {
			rt := s.routes[x]
			copy(g.blocks32[[2]int{rt.slotI, jb}].Row(rt.slotR)[:w], s.snap32[y*w:(y+1)*w])
		}
	}
	for ps, idx := range s.recvIdx {
		if len(idx) == 0 {
			continue
		}
		payload, off := s.stash32[ps], s.off[ps]
		for _, x := range idx {
			rt := s.routes[x]
			copy(g.blocks32[[2]int{rt.slotI, jb}].Row(rt.slotR)[:w], payload[off:off+w])
			off += w
		}
		s.off[ps] = off
	}
}

// enqueueUpdate32 hands column j's stage-k FP32 trailing update to the
// asynchronous worker — the mixed twin of enqueueUpdate, prepack cache
// and inline-slice reuse included.
func (g *grid2d) enqueueUpdate32(k, j int) {
	var blocks, ls []*matrix.Dense32
	var rows []int
	if !g.pipe.deferred() {
		blocks, ls, rows = g.jobBlocks32[:0], g.jobLs32[:0], g.jobRows[:0]
	}
	for i := k + 1; i < g.nBlocks; i++ {
		if i%g.P != g.p {
			continue
		}
		blocks = append(blocks, g.blocks32[[2]int{i, j}])
		ls = append(ls, g.stageL21v32[i])
		rows = append(rows, i)
	}
	if len(blocks) == 0 {
		return
	}
	u := g.stageU12v32[j]
	pu := g.prepackU32(u)
	var pls []*blas.SPrepackedA
	if pu != nil {
		if g.pipe.deferred() {
			pls = make([]*blas.SPrepackedA, len(ls))
		} else {
			if cap(g.jobPls32) < len(ls) {
				g.jobPls32 = make([]*blas.SPrepackedA, len(ls))
			}
			pls = g.jobPls32[:len(ls)]
		}
		for x, l := range ls {
			if l == nil {
				pu.Release()
				pu, pls = nil, nil
				break
			}
			pls[x] = g.prepackL32(rows[x], l)
		}
	}
	if !g.pipe.deferred() {
		g.jobBlocks32, g.jobLs32, g.jobRows = blocks[:0], ls[:0], rows[:0]
	}
	g.pipe.enqueue(j, pipeJob{
		ctx:      g.ctx,
		blocks32: blocks,
		ls32:     ls,
		u32:      u,
		pls32:    pls,
		pu32:     pu,
		rec:      g.rec,
		lane:     g.P*g.Q + g.me(),
		iter:     k,
	})
}

// runJob32 executes one FP32 column update on the pipeline worker; called
// from runJob under its recover barrier.
func (p *pipeline) runJob32(job pipeJob) {
	defer job.pu32.Release()
	for i, l := range job.ls32 {
		if l == nil || job.u32 == nil || job.blocks32[i] == nil {
			p.setErr(fmt.Errorf("hpl: pipelined update missing operands (stage %d)", job.iter))
			return
		}
	}
	ts := job.rec.Start()
	n := len(job.blocks32)
	switch {
	case job.pu32 != nil && n > 1 && pool.Size() > 1:
		pool.Do(n, pool.Size(), func(i int) {
			blas.SGemmPrepacked(job.pls32[i], job.pu32, job.blocks32[i], 1)
		})
	case job.pu32 != nil:
		for i := 0; i < n; i++ {
			blas.SGemmPrepacked(job.pls32[i], job.pu32, job.blocks32[i], 1)
		}
	case n > 1 && pool.Size() > 1:
		pool.Do(n, pool.Size(), func(i int) {
			blas.SRankKUpdate(job.ls32[i], job.u32, job.blocks32[i], 1)
		})
	default:
		for i := 0; i < n; i++ {
			blas.SRankKUpdate(job.ls32[i], job.u32, job.blocks32[i], 1)
		}
	}
	job.rec.Since(job.lane, "GEMM", job.iter, ts)
}

// gatherAndSolve32 assembles the FP32 factors on rank 0 and runs the FP64
// refinement ladder against them. A route the FP32 factors cannot finish
// — singular in single precision, stalled refinement, non-finite iterate
// — is reported through DistResult.Refine; the solve2D wrapper then
// re-runs the FP64 path in a fresh world (no FT restart is burned: the
// fallback is a precision decision, not a fault).
func (g *grid2d) gatherAndSolve32(full *matrix.Dense, rhs []float64, results []DistResult, errs []error) error {
	me := g.me()
	if me != 0 {
		buf := g.scratch32[:0]
		for i := 0; i < g.nBlocks; i++ {
			for j := 0; j < g.nBlocks; j++ {
				if blk, ok := g.blocks32[[2]int{i, j}]; ok {
					for r := 0; r < blk.Rows; r++ {
						buf = append(buf, blk.Row(r)...)
					}
				}
			}
		}
		g.scratch32 = buf[:0]
		return g.c.Send32(0, tag2dFinal, buf, singularFlag(g.firstError))
	}

	lu32 := matrix.NewDense32(g.n, g.n)
	for ij, blk := range g.blocks32 {
		r, c := g.blockDims(ij[0], ij[1])
		lu32.View(ij[0]*g.nb, ij[1]*g.nb, r, c).CopyFrom(blk)
	}
	firstErr := g.firstError
	for rk := 1; rk < g.P*g.Q; rk++ {
		msg, err := g.c.Recv(rk, tag2dFinal)
		if err != nil {
			return err
		}
		off := 0
		for i := 0; i < g.nBlocks; i++ {
			for j := 0; j < g.nBlocks; j++ {
				if op, oq := g.owner(i, j); g.rank(op, oq) != rk {
					continue
				}
				r, c := g.blockDims(i, j)
				if off+r*c > len(msg.F32) {
					return fmt.Errorf("hpl: rank %d final payload truncated at block (%d,%d)", rk, i, j)
				}
				dst := lu32.View(i*g.nb, j*g.nb, r, c)
				for y := 0; y < r; y++ {
					copy(dst.Row(y), msg.F32[off:off+c])
					off += c
				}
			}
		}
		if off != len(msg.F32) {
			return fmt.Errorf("hpl: rank %d final payload %d != %d", rk, len(msg.F32), off)
		}
		if e := singularFromFlag(msg.I); e != nil && firstErr == nil {
			firstErr = e
		}
	}

	base := DistResult{Ranks: g.P * g.Q, Panels: g.nBlocks}
	if firstErr != nil {
		// Zero/subnormal pivot in FP32 — the matrix may still factor fine
		// in FP64, so this is a fallback trigger, not a terminal error.
		base.Refine = &lu.MixedReport{FellBack: true, Reason: lu.FallbackSingular}
		results[0] = base
		return nil
	}
	x, res, iters, why, err := lu.RefineMixed(g.ctxOrBG(), full, lu32, g.globalPiv, rhs, g.rec)
	if err != nil {
		return err
	}
	if why != lu.FallbackNone {
		base.Refine = &lu.MixedReport{Iterations: iters, FellBack: true, Reason: why}
		results[0] = base
		return nil
	}
	var secs float64
	if !g.t0.IsZero() {
		secs = time.Since(g.t0).Seconds()
	}
	base.X = x
	base.Residual = res
	base.Seconds = secs
	base.Refine = &lu.MixedReport{Iterations: iters, Residual: res}
	results[0] = base
	errs[0] = nil
	return nil
}
