package hpl

import (
	"testing"

	"phihpl/internal/power"
)

func TestNativeClusterSingleCardMatchesNativeBallpark(t *testing.T) {
	// A 1x1 native "cluster" at N=30K should land near the native
	// Linpack's ~79% (Figure 6) — same compute model, no fabric.
	r := SimulateNativeCluster(NativeClusterConfig{N: 30000, P: 1, Q: 1})
	if r.Eff < 0.70 || r.Eff > 0.85 {
		t.Errorf("native 1x1 eff = %.3f, want ~0.79", r.Eff)
	}
}

func TestMaxNativeProblemSize(t *testing.T) {
	// One card's 8 GB holds ~30K (the paper's native limit).
	n := MaxNativeProblemSize(1, 1, 300)
	if n < 28000 || n > 31000 {
		t.Errorf("MaxNativeProblemSize(1,1) = %d, want ~30K", n)
	}
	if n%300 != 0 {
		t.Errorf("N must be an NB multiple: %d", n)
	}
	// 4 cards double the side length.
	if n4 := MaxNativeProblemSize(2, 2, 300); n4 < 2*n-600 || n4 > 2*n+600 {
		t.Errorf("4-card bound = %d, want ~%d", n4, 2*n)
	}
	if mathSqrt(-1) != 0 {
		t.Error("sqrt of negative")
	}
}

func TestNativeClusterScales(t *testing.T) {
	// Memory per card caps local problems at ~30K; a 4x4 grid of cards at
	// N=120K keeps 30K per card locally.
	r1 := SimulateNativeCluster(NativeClusterConfig{N: 30000, P: 1, Q: 1})
	r16 := SimulateNativeCluster(NativeClusterConfig{N: 120000, P: 4, Q: 4})
	if r16.TFLOPS < 10*r1.TFLOPS {
		t.Errorf("16 cards should scale: %v vs %v", r16.TFLOPS, r1.TFLOPS)
	}
	// Communication (with the PCIe forwarding penalty) costs efficiency.
	if r16.Eff >= r1.Eff {
		t.Errorf("multi-node native should lose efficiency: %.3f vs %.3f", r16.Eff, r1.Eff)
	}
}

func TestNativeClusterDefaults(t *testing.T) {
	r := SimulateNativeCluster(NativeClusterConfig{N: 10000})
	if r.Config.NB != 300 || r.Config.P != 1 || r.Config.Q != 1 {
		t.Errorf("defaults: %+v", r.Config)
	}
	if r.Seconds <= 0 || r.TFLOPS <= 0 {
		t.Error("degenerate result")
	}
}

func TestFutureWorkEnergyClaim(t *testing.T) {
	// Section VII end-to-end: at the cluster level, native-on-cards
	// delivers more GFLOPS/W than hybrid even though its absolute TFLOPS
	// are lower per node.
	b := power.Default()
	hybrid := Simulate(SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: PipelinedLookahead})
	nNative := MaxNativeProblemSize(2, 2, 300) // card memory caps native N
	native := SimulateNativeCluster(NativeClusterConfig{N: nNative, P: 2, Q: 2})

	hybridPW := power.Efficiency(hybrid.TFLOPS*1000/4, b.HybridNodeW(1))
	nativePW := power.Efficiency(native.TFLOPS*1000/4, b.NativeNodeW(1))
	if nativePW <= hybridPW {
		t.Errorf("native GFLOPS/W %.2f should beat hybrid %.2f", nativePW, hybridPW)
	}
	// And hybrid wins raw per-node performance.
	if hybrid.TFLOPS <= native.TFLOPS {
		t.Errorf("hybrid raw TFLOPS %.2f should beat native %.2f", hybrid.TFLOPS, native.TFLOPS)
	}
}
