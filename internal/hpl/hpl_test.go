package hpl

import (
	"math"
	"testing"
	"testing/quick"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/trace"
)

// --- functional distributed solver -------------------------------------

func TestSolveDistributedResidual(t *testing.T) {
	for _, tc := range []struct{ n, nb, ranks int }{
		{60, 12, 1},
		{60, 12, 3},
		{100, 16, 4},
		{131, 24, 5}, // ragged last panel, uneven panel ownership
	} {
		r, err := SolveDistributed(tc.n, tc.nb, tc.ranks, 42)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r.Residual > matrix.ResidualThreshold {
			t.Errorf("%+v: residual %g FAILED", tc, r.Residual)
		}
		if len(r.X) != tc.n || r.Ranks != tc.ranks {
			t.Errorf("%+v: bad result metadata %+v", tc, r)
		}
	}
}

func TestSolveDistributedMatchesSequential(t *testing.T) {
	// The distributed solve must produce the same solution as the
	// sequential blocked LU: same pivots, same arithmetic order.
	n, nb := 80, 16
	a, b := matrix.RandomSystem(n, 7)
	lu := a.Clone()
	piv := make([]int, n)
	if err := blas.Dgetrf(lu, piv, nb); err != nil {
		t.Fatal(err)
	}
	want := blas.LUSolve(lu, piv, b)

	r, err := SolveDistributed(n, nb, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if r.X[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v (bitwise)", i, r.X[i], want[i])
		}
	}
}

func TestSolveDistributedRankInvariance(t *testing.T) {
	// The answer must not depend on how many ranks share the work.
	base, err := SolveDistributed(64, 8, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 4, 8} {
		r, err := SolveDistributed(64, 8, ranks, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.X {
			if r.X[i] != base.X[i] {
				t.Fatalf("ranks=%d: x[%d] differs", ranks, i)
			}
		}
	}
}

func TestSolveDistributedErrors(t *testing.T) {
	if _, err := SolveDistributed(0, 4, 2, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := SolveDistributed(10, 4, 0, 1); err == nil {
		t.Error("ranks=0 should error")
	}
	// nb out of range is clamped, not an error.
	if _, err := SolveDistributed(10, 0, 2, 1); err != nil {
		t.Errorf("nb=0 should clamp: %v", err)
	}
}

func TestSolveDistributedProperty(t *testing.T) {
	f := func(seed uint64, nR, rR uint8) bool {
		n := 16 + int(nR)%48
		ranks := 1 + int(rR)%5
		r, err := SolveDistributed(n, 8, ranks, seed)
		if err != nil {
			return true // singular random matrix: skip
		}
		return r.Residual < matrix.ResidualThreshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// --- Table III ----------------------------------------------------------

// tableIII rows: paper's achieved TFLOPS and efficiency.
var tableIII = []struct {
	name   string
	cfg    SimConfig
	tflops float64
	eff    float64
}{
	{"cpu-1node", SimConfig{N: 84000, P: 1, Q: 1, Cards: 0}, 0.29, 86.4},
	{"cpu-2x2", SimConfig{N: 168000, P: 2, Q: 2, Cards: 0}, 1.10, 82.8},
	{"1card-basic", SimConfig{N: 84000, P: 1, Q: 1, Cards: 1, Lookahead: BasicLookahead}, 0.99, 71.0},
	{"1card-pipe", SimConfig{N: 84000, P: 1, Q: 1, Cards: 1, Lookahead: PipelinedLookahead}, 1.12, 79.8},
	{"1card-2x2-basic", SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: BasicLookahead}, 3.88, 69.1},
	{"1card-2x2-pipe", SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: PipelinedLookahead}, 4.36, 77.6},
	{"1card-10x10-basic", SimConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: BasicLookahead}, 95.2, 67.7},
	{"1card-10x10-pipe", SimConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: PipelinedLookahead}, 107.0, 76.1},
	{"2card-basic", SimConfig{N: 84000, P: 1, Q: 1, Cards: 2, Lookahead: BasicLookahead}, 1.66, 68.2},
	{"2card-pipe", SimConfig{N: 84000, P: 1, Q: 1, Cards: 2, Lookahead: PipelinedLookahead}, 1.87, 76.6},
	{"2card-2x2-basic", SimConfig{N: 166800, P: 2, Q: 2, Cards: 2, Lookahead: BasicLookahead}, 6.36, 65.0},
	{"2card-2x2-pipe", SimConfig{N: 166800, P: 2, Q: 2, Cards: 2, Lookahead: PipelinedLookahead}, 7.15, 73.1},
	{"2card-10x10-basic", SimConfig{N: 822000, P: 10, Q: 10, Cards: 2, Lookahead: BasicLookahead}, 156.5, 64.0},
	{"2card-10x10-pipe", SimConfig{N: 822000, P: 10, Q: 10, Cards: 2, Lookahead: PipelinedLookahead}, 175.8, 71.9},
	{"1card-128GB-pipe", SimConfig{N: 242400, P: 2, Q: 2, Cards: 1, HostMemGiB: 128, Lookahead: PipelinedLookahead}, 4.42, 79.6},
}

func TestTableIIIWithinTolerance(t *testing.T) {
	// The substrate is a simulator, not the authors' cluster; the bar is
	// the published shape within a few efficiency points.
	for _, row := range tableIII {
		r := Simulate(row.cfg)
		if math.Abs(r.Eff*100-row.eff) > 3.5 {
			t.Errorf("%s: eff = %.1f%%, paper %.1f%%", row.name, r.Eff*100, row.eff)
		}
		if math.Abs(r.TFLOPS-row.tflops)/row.tflops > 0.07 {
			t.Errorf("%s: %.2f TFLOPS, paper %.2f", row.name, r.TFLOPS, row.tflops)
		}
	}
}

func TestPipelineImproves7to9Percent(t *testing.T) {
	// "pipelined look-ahead improves hybrid HPL efficiency by 7%-9%".
	for _, pq := range []struct{ n, p, q int }{
		{84000, 1, 1}, {168000, 2, 2}, {825600, 10, 10},
	} {
		basic := Simulate(SimConfig{N: pq.n, P: pq.p, Q: pq.q, Cards: 1, Lookahead: BasicLookahead})
		pipe := Simulate(SimConfig{N: pq.n, P: pq.p, Q: pq.q, Cards: 1, Lookahead: PipelinedLookahead})
		gain := (pipe.Eff - basic.Eff) * 100
		if gain < 6 || gain > 10.5 {
			t.Errorf("%dx%d: pipeline gain %.1f points, paper 7-9", pq.p, pq.q, gain)
		}
	}
}

func TestHeadline107TFLOPS(t *testing.T) {
	// "scales up to 107 TFLOPS on a 100-node cluster, which corresponds
	// to 76.1% efficiency".
	r := Simulate(SimConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: PipelinedLookahead})
	if math.Abs(r.TFLOPS-107) > 7 {
		t.Errorf("100-node = %.1f TFLOPS, paper 107", r.TFLOPS)
	}
	if math.Abs(r.Eff-0.761) > 0.03 {
		t.Errorf("100-node eff = %.3f, paper 0.761", r.Eff)
	}
}

func TestFigure9IdleFractions(t *testing.T) {
	// Figure 9 (2x2 multi-node, N=84K... the paper plots per-node 84K;
	// Table III's 2x2 at 168K is the same local shape): basic look-ahead
	// leaves the card idle >=13% of the time; pipelining cuts it below ~3%.
	basic := Simulate(SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: BasicLookahead})
	if basic.CardIdleFrac < 0.11 || basic.CardIdleFrac > 0.18 {
		t.Errorf("basic idle = %.1f%%, paper ≈13%%", basic.CardIdleFrac*100)
	}
	pipe := Simulate(SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: PipelinedLookahead})
	if pipe.CardIdleFrac > 0.045 {
		t.Errorf("pipelined idle = %.1f%%, paper <3%%", pipe.CardIdleFrac*100)
	}
}

func TestFigure9PerIterationTrace(t *testing.T) {
	var basic trace.Recorder
	Simulate(SimConfig{N: 168000, P: 2, Q: 2, Cards: 2, Lookahead: BasicLookahead, Trace: &basic})
	var pipe trace.Recorder
	Simulate(SimConfig{N: 168000, P: 2, Q: 2, Cards: 2, Lookahead: PipelinedLookahead, Trace: &pipe})

	bIters, pIters := basic.IterTotals(), pipe.IterTotals()
	if len(bIters) < 100 {
		t.Fatalf("expected many iterations, got %d", len(bIters))
	}
	// Figure 9c: the swapping pipeline saves up to ~11% per iteration in
	// the early, most expensive iterations.
	sum := func(m map[string]float64) float64 {
		s := 0.0
		for _, v := range m {
			s += v
		}
		return s
	}
	early := 0
	bT := sum(bIters[early]) - bIters[early]["DGEMM"] // exposed time
	pT := sum(pIters[early]) - pIters[early]["DGEMM"]
	bIter := bIters[early]["DGEMM"] + bT
	saving := (bT - pT) / bIter
	if saving < 0.05 || saving > 0.25 {
		t.Errorf("early-iteration saving = %.1f%%, paper up to ~11%%", saving*100)
	}
	// The exposed regions of the paper appear in the trace.
	for _, name := range []string{"DGEMM", "swap", "DTRSM", "Ubcast"} {
		if basic.Totals()[name] <= 0 {
			t.Errorf("basic trace missing %q region", name)
		}
	}
}

func TestLookaheadOrdering(t *testing.T) {
	// none < basic < pipelined, always.
	for _, cards := range []int{1, 2} {
		none := Simulate(SimConfig{N: 84000, P: 1, Q: 1, Cards: cards, Lookahead: NoLookahead})
		basic := Simulate(SimConfig{N: 84000, P: 1, Q: 1, Cards: cards, Lookahead: BasicLookahead})
		pipe := Simulate(SimConfig{N: 84000, P: 1, Q: 1, Cards: cards, Lookahead: PipelinedLookahead})
		if !(none.TFLOPS < basic.TFLOPS && basic.TFLOPS < pipe.TFLOPS) {
			t.Errorf("cards=%d: ordering broken: %.2f %.2f %.2f",
				cards, none.TFLOPS, basic.TFLOPS, pipe.TFLOPS)
		}
	}
}

func TestSecondCardCostsEfficiency(t *testing.T) {
	// "the efficiency loss due to a second Knights Corner card is 4.2%".
	one := Simulate(SimConfig{N: 84000, P: 1, Q: 1, Cards: 1, Lookahead: PipelinedLookahead})
	two := Simulate(SimConfig{N: 84000, P: 1, Q: 1, Cards: 2, Lookahead: PipelinedLookahead})
	drop := (one.Eff - two.Eff) * 100
	if drop < 2 || drop > 6.5 {
		t.Errorf("second-card efficiency drop = %.1f points, paper ≈4.2", drop)
	}
	// But raw TFLOPS must still go up substantially.
	if two.TFLOPS < 1.5*one.TFLOPS {
		t.Errorf("second card should scale throughput: %.2f vs %.2f", two.TFLOPS, one.TFLOPS)
	}
}

func TestMoreMemoryHelps(t *testing.T) {
	// Table III's last section: doubling host memory (larger N) raises
	// cluster efficiency.
	small := Simulate(SimConfig{N: 166800, P: 2, Q: 2, Cards: 1, Lookahead: PipelinedLookahead})
	big := Simulate(SimConfig{N: 242400, P: 2, Q: 2, Cards: 1, HostMemGiB: 128, Lookahead: PipelinedLookahead})
	if big.Eff <= small.Eff {
		t.Errorf("128 GB (N=242K) eff %.3f should beat 64 GB (N=167K) eff %.3f", big.Eff, small.Eff)
	}
}

func TestMaxProblemSize(t *testing.T) {
	// 100 nodes x 64 GiB at 85% usable supports roughly the paper's 825K.
	n := MaxProblemSize(100, 64, 1200)
	if n < 800000 || n > 880000 {
		t.Errorf("MaxProblemSize(100, 64) = %d, want ~825-860K", n)
	}
	if n%1200 != 0 {
		t.Errorf("N must be a multiple of NB, got %d", n)
	}
	// One node, 64 GiB: ~84K (Table III's single-node N).
	n1 := MaxProblemSize(1, 64, 1200)
	if n1 < 80000 || n1 > 90000 {
		t.Errorf("MaxProblemSize(1, 64) = %d, want ~84K", n1)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{N: 84000, P: 1, Q: 1, Cards: 1, Lookahead: PipelinedLookahead}
	if Simulate(cfg) != Simulate(cfg) {
		t.Error("simulation must be deterministic")
	}
}

func TestModeString(t *testing.T) {
	if NoLookahead.String() != "none" || BasicLookahead.String() != "basic" || PipelinedLookahead.String() != "pipelined" {
		t.Error("mode names")
	}
}

func TestDefaults(t *testing.T) {
	c := SimConfig{N: 1000}.withDefaults()
	if c.NB != 1200 || c.P != 1 || c.Q != 1 || c.HostMemGiB != 64 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestSimulateFTOverheadPricing(t *testing.T) {
	base := Simulate(SimConfig{N: 84000, Cards: 1, Lookahead: PipelinedLookahead})
	if base.FTOverheadFrac != 0 {
		t.Fatalf("FT pricing off must report zero overhead, got %g", base.FTOverheadFrac)
	}
	ft := Simulate(SimConfig{N: 84000, Cards: 1, Lookahead: PipelinedLookahead,
		FTLossRate: 1e-3, FTCheckpointEvery: 8})
	if ft.FTOverheadFrac <= 0 || ft.FTOverheadFrac >= 0.5 {
		t.Fatalf("FT overhead fraction %g out of the plausible band", ft.FTOverheadFrac)
	}
	if ft.Seconds <= base.Seconds || ft.Eff >= base.Eff {
		t.Errorf("resilience must cost time: %.2fs/%.1f%% vs base %.2fs/%.1f%%",
			ft.Seconds, ft.Eff*100, base.Seconds, base.Eff*100)
	}
	// More loss -> more resend traffic -> strictly more overhead.
	lossy := Simulate(SimConfig{N: 84000, Cards: 1, Lookahead: PipelinedLookahead,
		FTLossRate: 1e-2, FTCheckpointEvery: 8})
	if lossy.FTOverheadFrac <= ft.FTOverheadFrac {
		t.Errorf("overhead must grow with loss rate: %g vs %g", lossy.FTOverheadFrac, ft.FTOverheadFrac)
	}
	// Tighter checkpoint period -> more write-backs -> more overhead.
	tight := Simulate(SimConfig{N: 84000, Cards: 1, Lookahead: PipelinedLookahead,
		FTLossRate: 1e-3, FTCheckpointEvery: 2})
	if tight.FTOverheadFrac <= ft.FTOverheadFrac {
		t.Errorf("overhead must grow with checkpoint frequency: %g vs %g", tight.FTOverheadFrac, ft.FTOverheadFrac)
	}
}
