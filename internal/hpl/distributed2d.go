package hpl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/lu"
	"phihpl/internal/matrix"
	"phihpl/internal/trace"
)

// SolveDistributed2D factors and solves the seeded random system on a
// P×Q process grid with 2D block-cyclic distribution — the full HPL
// structure. Per stage it performs:
//
//   - panel factorization of the current block column (gathered to the
//     diagonal owner, factored, scattered back — a functional
//     simplification of HPL's in-place distributed panel, preserving
//     pivot choices exactly);
//   - a pivot broadcast and *distributed row swapping*: pivot rows living
//     on different process rows exchange row segments per process column;
//   - the panel (L) broadcast along process rows;
//   - the U block-row solve on the pivot process row, then the U
//     broadcast along process columns;
//   - the local trailing updates A(I,J) -= L21(I)·U12(J).
//
// Factors and pivots are bitwise identical to the sequential blocked
// algorithm, and the solution passes the HPL residual test.
func SolveDistributed2D(n, nb, p, q int, seed uint64) (DistResult, error) {
	return SolveDistributed2DCtx(context.Background(), n, nb, p, q, seed)
}

// SolveDistributed2DMode is SolveDistributed2D with an explicit
// look-ahead schedule. All modes produce bitwise-identical factors; they
// differ only in how much panel/broadcast latency hides behind GEMM.
func SolveDistributed2DMode(n, nb, p, q int, seed uint64, mode LookaheadMode) (DistResult, error) {
	return SolveDistributed2DModeCtx(context.Background(), n, nb, p, q, seed, mode, nil)
}

// SolveDistributed2DCtx is SolveDistributed2D under a context. Every rank
// observes cancellation at its stage boundary; the first rank to return
// ctx.Err() aborts the world, which unblocks any peers parked mid-protocol.
// Once ctx is done the caller sees the plain ctx.Err() — never a wrapped
// transport error from the unwinding fabric.
func SolveDistributed2DCtx(ctx context.Context, n, nb, p, q int, seed uint64) (DistResult, error) {
	return solve2D(ctx, n, nb, p, q, seed, false, LookaheadPipelined, lu.PrecisionFP64, nil)
}

// SolveDistributed2DModeCtx is SolveDistributed2DMode under a context,
// optionally recording per-phase protocol spans (worker = rank, plus an
// async-GEMM lane at P·Q + rank) into rec for the look-ahead Gantt.
func SolveDistributed2DModeCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, rec *trace.Recorder) (DistResult, error) {
	return solve2D(ctx, n, nb, p, q, seed, false, mode, lu.PrecisionFP64, rec)
}

// SolveDistributed2DPrecision is SolveDistributed2DMode with an explicit
// precision: lu.PrecisionFP64 is the classical all-double pipeline;
// lu.PrecisionMixed factors in FP32 (panel, swaps, broadcasts and packed
// trailing updates all single precision, halving the wire and GEMM bytes)
// and recovers a double-precision-quality solution with FP64 iterative
// refinement at the root. When the FP32 route cannot reach the HPL bar the
// driver re-runs the FP64 path automatically and reports the typed reason
// in DistResult.Refine.
func SolveDistributed2DPrecision(n, nb, p, q int, seed uint64, mode LookaheadMode, prec lu.PrecisionMode) (DistResult, error) {
	return SolveDistributed2DPrecisionCtx(context.Background(), n, nb, p, q, seed, mode, prec, nil)
}

// SolveDistributed2DPrecisionCtx is SolveDistributed2DPrecision under a
// context, optionally recording protocol spans into rec. Cancellation is
// observed at every rank's stage boundary and between refinement steps.
func SolveDistributed2DPrecisionCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, prec lu.PrecisionMode, rec *trace.Recorder) (DistResult, error) {
	return solve2D(ctx, n, nb, p, q, seed, false, mode, prec, rec)
}

// solve2D is the shared entry of the plain and hybrid 2D solvers.
// offloadUpdates routes trailing updates through the offload work-stealing
// engine; prec selects FP64 throughout or the mixed-precision pipeline
// (FP32 factorization, FP64 refinement at the root). When the mixed route
// cannot reach the HPL bar it re-runs the FP64 path in a fresh world,
// keeping the typed fallback reason — a precision decision, not a fault,
// so no FT restart budget is involved.
func solve2D(ctx context.Context, n, nb, p, q int, seed uint64, offloadUpdates bool, mode LookaheadMode, prec lu.PrecisionMode, rec *trace.Recorder) (DistResult, error) {
	res, err := solve2DOnce(ctx, n, nb, p, q, seed, offloadUpdates, mode, prec, rec)
	if err != nil || prec != lu.PrecisionMixed || res.Refine == nil || !res.Refine.FellBack {
		return res, err
	}
	rep := res.Refine
	fres, ferr := solve2DOnce(ctx, n, nb, p, q, seed, offloadUpdates, mode, lu.PrecisionFP64, rec)
	rep.Residual = fres.Residual
	fres.Refine = rep
	return fres, ferr
}

// solve2DOnce is the world-construction core: one grid, one solve.
func solve2DOnce(ctx context.Context, n, nb, p, q int, seed uint64, offloadUpdates bool, mode LookaheadMode, prec lu.PrecisionMode, rec *trace.Recorder) (DistResult, error) {
	if n < 1 || p < 1 || q < 1 {
		return DistResult{}, errors.New("hpl: n, P and Q must be positive")
	}
	if err := ctx.Err(); err != nil {
		return DistResult{}, err
	}
	if nb < 1 || nb > n {
		nb = clampNB(n)
	}
	nBlocks := (n + nb - 1) / nb

	// Per-pair channel buffers must absorb a stage's worth of eagerly
	// sent blocks (L and U rows per link scale with nBlocks, swaps with
	// nb, and eager look-ahead keeps at most two stages in flight).
	world := cluster.NewWorld(p*q, 2*nBlocks+nb+64)
	results := make([]DistResult, p*q)
	errs := make([]error, p*q)
	if err := world.Run(func(c *Comm) error {
		g := &grid2d{c: c, ctx: ctx, P: p, Q: q, n: n, nb: nb, nBlocks: nBlocks,
			offloadUpdates: offloadUpdates, mode: mode, prec: prec, rec: rec}
		g.p, g.q = c.Rank()/q, c.Rank()%q
		return g.run(seed, results, errs)
	}); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return results[0], cerr
		}
		return results[0], err
	}
	for _, e := range errs {
		if e != nil {
			return results[0], e
		}
	}
	return results[0], nil
}

// grid2d is one process of the 2D solver.
type grid2d struct {
	c          *Comm
	ctx        context.Context // cancellation, observed at stage boundaries
	p, q       int             // my grid coordinates
	P, Q       int
	n, nb      int
	nBlocks    int
	seed       uint64 // matrix seed, kept for jump-ahead regeneration
	mode       LookaheadMode
	prec       lu.PrecisionMode         // element width of the factorization
	blocks     map[[2]int]*matrix.Dense // owned global blocks (I,J)
	globalPiv  []int
	stageL11   *matrix.Dense   // factored diagonal block of this stage
	stageL21   []*matrix.Dense // block row I -> L21 block (cleared per stage)
	stageU12   []*matrix.Dense // block col J -> U12 block (cleared per stage)
	firstError error
	// offloadUpdates routes trailing updates through the real offload
	// work-stealing engine (SolveDistributed2DHybrid).
	offloadUpdates bool

	// Look-ahead bookkeeping (basic/pipelined schedules).
	pivots   [][]int            // eagerly factored stage -> its panel pivots
	factored []bool             // panels factored ahead of their stage
	lSent    []bool             // stages whose L broadcast was already posted
	pipe     *pipeline          // asynchronous trailing-update worker (pipelined)
	scratch  []float64          // reusable pack buffer (Send copies payloads)
	packedL  []*blas.PrepackedA // per-stage prepacked L21 panels (look-ahead paths)
	// Reusable pipeJob slices (inline pipeline only, where a job never
	// outlives its enqueue call).
	jobBlocks []*matrix.Dense
	jobLs     []*matrix.Dense
	jobRows   []int
	jobPls    []*blas.PrepackedA
	t0        time.Time // start of the timed factor+solve phase

	// Mixed-precision state (prec == lu.PrecisionMixed): the FP32 mirror
	// of the block map and per-stage operand caches. In mixed mode every
	// factorization-phase structure lives here and `blocks` stays nil;
	// rank 0 keeps the FP64 original for residual + refinement only.
	blocks32    map[[2]int]*matrix.Dense32
	stageL11v32 *matrix.Dense32
	stageL21v32 []*matrix.Dense32
	stageU12v32 []*matrix.Dense32
	scratch32   []float32
	packedL32   []*blas.SPrepackedA
	jobBlocks32 []*matrix.Dense32
	jobLs32     []*matrix.Dense32
	jobPls32    []*blas.SPrepackedA

	// hooks let the FT solver ride checksum maintenance on the schedule;
	// aheadBlocked vetoes eager factorization (super-step boundaries).
	hooks        stageHooks
	aheadBlocked func(next int) bool

	// rec receives per-phase protocol spans (nil records nothing):
	// worker = rank for protocol phases, P·Q + rank for the async GEMM
	// lane, so the Gantt shows the overlap.
	rec *trace.Recorder
}

// tag bases; stage-dependent offsets keep each exchange unambiguous.
const (
	tag2dGatherBase = 1 << 20
	tag2dPivBase    = 2 << 20
	tag2dSwapBase   = 3 << 20
	tag2dLBase      = 4 << 20
	tag2dUBase      = 5 << 20
	tag2dFinal      = 6 << 20
)

func (g *grid2d) rank(p, q int) int { return p*g.Q + q }

// owner returns the grid coordinates owning global block (I, J).
func (g *grid2d) owner(i, j int) (int, int) { return i % g.P, j % g.Q }

// blockDims returns the dimensions of global block (I, J).
func (g *grid2d) blockDims(i, j int) (rows, cols int) {
	rows, cols = g.nb, g.nb
	if (i+1)*g.nb > g.n {
		rows = g.n - i*g.nb
	}
	if (j+1)*g.nb > g.n {
		cols = g.n - j*g.nb
	}
	return rows, cols
}

// scatter generates the seeded system and keeps only owned blocks.
func (g *grid2d) scatter(seed uint64) (*matrix.Dense, []float64) {
	g.seed = seed
	// Rank 0 materializes the full system — it checks the final residual
	// against it. Every other rank jumps the generator straight to its
	// own block rows (PRNG.Skip) and never allocates the rest of the
	// matrix; the blocks are bitwise identical either way.
	var full *matrix.Dense
	var rhs []float64
	if hook := mixedTestSystem; hook != nil {
		// Keep the FP64 fallback re-run on the same (hooked) system the
		// mixed attempt factored; see mixedTestSystem.
		full, rhs = hook(g.n, seed)
	} else if g.me() == 0 {
		full, rhs = matrix.RandomSystem(g.n, seed)
	}
	g.blocks = make(map[[2]int]*matrix.Dense)
	for i := 0; i < g.nBlocks; i++ {
		for j := 0; j < g.nBlocks; j++ {
			if op, oq := g.owner(i, j); op == g.p && oq == g.q {
				r, c := g.blockDims(i, j)
				if full != nil {
					g.blocks[[2]int{i, j}] = full.View(i*g.nb, j*g.nb, r, c).Clone()
				} else {
					g.blocks[[2]int{i, j}] = matrix.RandomSubmatrix(g.n, seed, i*g.nb, j*g.nb, r, c)
				}
			}
		}
	}
	g.globalPiv = make([]int, g.n)
	for i := range g.globalPiv {
		g.globalPiv[i] = i
	}
	g.pivots = make([][]int, g.nBlocks)
	g.factored = make([]bool, g.nBlocks)
	g.lSent = make([]bool, g.nBlocks)
	g.stageL21 = make([]*matrix.Dense, g.nBlocks)
	g.stageU12 = make([]*matrix.Dense, g.nBlocks)
	g.packedL = make([]*blas.PrepackedA, g.nBlocks)
	if g.me() != 0 {
		full, rhs = nil, nil // hook path: only the root verifies
	}
	return full, rhs
}

// clearDense nils a reused per-stage block index in place — cheaper per
// stage than reallocating a map.
func clearDense(s []*matrix.Dense) {
	for i := range s {
		s[i] = nil
	}
}

// stage runs one iteration of the outer factorization loop under the
// grid's look-ahead schedule.
func (g *grid2d) stage(k int) error {
	switch g.mode {
	case LookaheadBasic:
		return g.stageBasic(k)
	case LookaheadNone:
		return g.stageNone(k)
	default:
		return g.stagePipelined(k)
	}
}

// stageNone is the fully synchronous bulk schedule — the seed behavior,
// message for message.
func (g *grid2d) stageNone(k int) error {
	ts := g.rec.Start()
	piv, err := g.factorPanel(k)
	if err != nil {
		return err
	}
	g.tspan("panel", k, ts)
	ts = g.rec.Start()
	if err := g.swapRows(k, piv); err != nil {
		return err
	}
	g.tspan("swap", k, ts)
	if err := g.hookAfterSwaps(k, piv); err != nil {
		return err
	}
	ts = g.rec.Start()
	if err := g.broadcastL(k); err != nil {
		return err
	}
	g.tspan("Lbcast", k, ts)
	if err := g.hookAfterL(k); err != nil {
		return err
	}
	ts = g.rec.Start()
	if err := g.solveAndBroadcastU(k); err != nil {
		return err
	}
	g.tspan("Ubcast", k, ts)
	ts = g.rec.Start()
	if err := g.update(k); err != nil {
		return err
	}
	g.tspan("GEMM", k, ts)
	return g.hookAfterUpdate(k)
}

func (g *grid2d) run(seed uint64, results []DistResult, errs []error) error {
	var full *matrix.Dense
	var rhs []float64
	if g.mixed() {
		full, rhs = g.scatter32(seed)
	} else {
		full, rhs = g.scatter(seed)
	}
	// HPL times the solve proper: all ranks sync here so generation cost
	// can't leak into any rank's factorization phase.
	if err := g.c.Barrier(); err != nil {
		return err
	}
	g.t0 = time.Now()
	g.startPipe()
	defer g.stopPipe()
	for k := 0; k < g.nBlocks; k++ {
		// Stage boundary: every rank observes cancellation here, before
		// issuing any of the stage's sends, so the fabric is quiescent
		// between ranks when the world unwinds.
		if err := g.ctxErr(); err != nil {
			return err
		}
		if err := g.c.Progress(k); err != nil {
			return err
		}
		if err := g.stage(k); err != nil {
			return err
		}
	}
	return g.gatherAndSolve(full, rhs, results, errs)
}

// ctxErr reports the grid's cancellation state (nil ctx: never cancelled).
func (g *grid2d) ctxErr() error {
	if g.ctx == nil {
		return nil
	}
	return g.ctx.Err()
}

// factorPanel gathers block column k (rows k*nb..n) on the diagonal owner,
// factors it, scatters the factored segments back, and broadcasts the
// panel-relative pivots to the whole grid. Returns the pivots.
func (g *grid2d) factorPanel(k int) ([]int, error) {
	if g.mixed() {
		return g.factorPanel32(k)
	}
	rootP, rootQ := g.owner(k, k)
	root := g.rank(rootP, rootQ)
	_, w := g.blockDims(k, k)
	panelRows := g.n - k*g.nb

	inPanelColumn := g.q == rootQ
	// Send owned segments up to the root (ascending block row).
	if inPanelColumn && g.rank(g.p, g.q) != root {
		for i := k; i < g.nBlocks; i++ {
			if op, _ := g.owner(i, k); op == g.p {
				if err := g.c.Send(root, tag2dGatherBase+k*g.nBlocks+i, flatten(g.blocks[[2]int{i, k}]), nil); err != nil {
					return nil, err
				}
			}
		}
	}

	var piv []int
	if g.rank(g.p, g.q) == root {
		panel := matrix.NewDense(panelRows, w)
		for i := k; i < g.nBlocks; i++ {
			r, _ := g.blockDims(i, k)
			dst := panel.View(i*g.nb-k*g.nb, 0, r, w)
			if op, _ := g.owner(i, k); op == g.p {
				dst.CopyFrom(g.blocks[[2]int{i, k}])
			} else {
				msg, err := g.c.Recv(g.rank(op, rootQ), tag2dGatherBase+k*g.nBlocks+i)
				if err != nil {
					return nil, err
				}
				seg, err := unflatten(msg.F, r, w)
				if err != nil {
					return nil, err
				}
				dst.CopyFrom(seg)
			}
		}
		piv = make([]int, w)
		if err := blas.Dgetf2(panel, piv); err != nil && g.firstError == nil {
			g.firstError = blas.OffsetSingular(err, k*g.nb)
		}
		// Scatter factored segments back.
		for i := k; i < g.nBlocks; i++ {
			r, _ := g.blockDims(i, k)
			seg := panel.View(i*g.nb-k*g.nb, 0, r, w)
			if op, _ := g.owner(i, k); op == g.p {
				g.blocks[[2]int{i, k}].CopyFrom(seg)
			} else {
				if err := g.c.Send(g.rank(op, rootQ), tag2dGatherBase+k*g.nBlocks+i, flatten(seg), nil); err != nil {
					return nil, err
				}
			}
		}
	} else if inPanelColumn {
		for i := k; i < g.nBlocks; i++ {
			if op, _ := g.owner(i, k); op == g.p {
				r, _ := g.blockDims(i, k)
				msg, err := g.c.Recv(root, tag2dGatherBase+k*g.nBlocks+i)
				if err != nil {
					return nil, err
				}
				seg, err := unflatten(msg.F, r, w)
				if err != nil {
					return nil, err
				}
				g.blocks[[2]int{i, k}].CopyFrom(seg)
			}
		}
	}

	// Pivot broadcast to the whole grid (root-sequential fan-out).
	if g.rank(g.p, g.q) == root {
		for r := 0; r < g.P*g.Q; r++ {
			if r != root {
				if err := g.c.Send(r, tag2dPivBase+k, nil, piv); err != nil {
					return nil, err
				}
			}
		}
	} else {
		msg, err := g.c.Recv(root, tag2dPivBase+k)
		if err != nil {
			return nil, err
		}
		piv = msg.I
	}
	if len(piv) != w {
		return nil, fmt.Errorf("hpl: stage %d pivot payload has %d entries, want %d", k, len(piv), w)
	}

	// Record global pivots.
	for j, pv := range piv {
		r1 := k*g.nb + j
		r2 := k*g.nb + pv
		g.globalPiv[r1] = r2
	}
	return piv, nil
}

// swapRows applies the stage's pivot swaps to every block column except
// the already-swapped panel column k. Rows on different process rows
// exchange segments; same-process swaps are local.
func (g *grid2d) swapRows(k int, piv []int) error {
	for j, pv := range piv {
		r1 := k*g.nb + j
		r2 := k*g.nb + pv
		if r1 == r2 {
			continue
		}
		i1, i2 := r1/g.nb, r2/g.nb
		p1, p2 := i1%g.P, i2%g.P
		for jb := 0; jb < g.nBlocks; jb++ {
			if jb == k {
				continue // panel column was swapped during factorization
			}
			if _, oq := g.owner(0, jb); oq != g.q {
				continue // not my process column
			}
			if err := g.swapOne(k, j, jb, r1, r2, i1, i2, p1, p2); err != nil {
				return err
			}
		}
	}
	return nil
}

// swapOne exchanges one row pair within block column jb.
func (g *grid2d) swapOne(k, j, jb, r1, r2, i1, i2, p1, p2 int) error {
	if g.mixed() {
		return g.swapOne32(k, j, jb, r1, r2, i1, i2, p1, p2)
	}
	tag := tag2dSwapBase + (k*g.nb+j)*g.nBlocks + jb
	switch {
	case p1 == g.p && p2 == g.p:
		// Both rows live here.
		b1 := g.blocks[[2]int{i1, jb}]
		b2 := g.blocks[[2]int{i2, jb}]
		l1, l2 := r1%g.nb, r2%g.nb
		row1, row2 := b1.Row(l1), b2.Row(l2)
		for x := range row1 {
			row1[x], row2[x] = row2[x], row1[x]
		}
	case p1 == g.p:
		b := g.blocks[[2]int{i1, jb}]
		row := b.Row(r1 % g.nb)
		if err := g.c.Send(g.rank(p2, g.q), tag, row, nil); err != nil {
			return err
		}
		msg, err := g.c.Recv(g.rank(p2, g.q), tag)
		if err != nil {
			return err
		}
		if len(msg.F) != len(row) {
			return fmt.Errorf("hpl: swap row payload %d != %d", len(msg.F), len(row))
		}
		copy(row, msg.F)
	case p2 == g.p:
		b := g.blocks[[2]int{i2, jb}]
		row := b.Row(r2 % g.nb)
		if err := g.c.Send(g.rank(p1, g.q), tag, row, nil); err != nil {
			return err
		}
		msg, err := g.c.Recv(g.rank(p1, g.q), tag)
		if err != nil {
			return err
		}
		if len(msg.F) != len(row) {
			return fmt.Errorf("hpl: swap row payload %d != %d", len(msg.F), len(row))
		}
		copy(row, msg.F)
	}
	return nil
}

// broadcastL sends the factored panel blocks along process rows: the
// diagonal block (k,k) to row rootP's processes, and each L21 block (I,k)
// to the processes of row I%P. Receivers stash them for the update.
func (g *grid2d) broadcastL(k int) error {
	if g.mixed() {
		return g.broadcastL32(k)
	}
	rootP, rootQ := g.owner(k, k)
	g.stageL11 = nil
	clearDense(g.stageL21)

	for i := k; i < g.nBlocks; i++ {
		op := i % g.P
		if op != g.p {
			continue // this block's row bcast happens on another process row
		}
		var blk *matrix.Dense
		if g.q == rootQ {
			blk = g.blocks[[2]int{i, k}]
			for qq := 0; qq < g.Q; qq++ {
				if qq != g.q {
					if err := g.c.Send(g.rank(g.p, qq), tag2dLBase+k*g.nBlocks+i, flatten(blk), nil); err != nil {
						return err
					}
				}
			}
		} else {
			r, c := g.blockDims(i, k)
			msg, err := g.c.Recv(g.rank(g.p, rootQ), tag2dLBase+k*g.nBlocks+i)
			if err != nil {
				return err
			}
			if blk, err = unflatten(msg.F, r, c); err != nil {
				return err
			}
		}
		if i == k {
			if g.p == rootP {
				g.stageL11 = blk
			}
		} else {
			g.stageL21[i] = blk
		}
	}
	return nil
}

// solveAndBroadcastU computes U12 on the pivot process row and broadcasts
// each U block down its process column.
func (g *grid2d) solveAndBroadcastU(k int) error {
	if g.mixed() {
		return g.solveAndBroadcastU32(k)
	}
	rootP, _ := g.owner(k, k)
	clearDense(g.stageU12)

	for j := k + 1; j < g.nBlocks; j++ {
		_, oq := g.owner(k, j)
		if oq != g.q {
			continue
		}
		var u *matrix.Dense
		if g.p == rootP {
			u = g.blocks[[2]int{k, j}]
			blas.Dtrsm(blas.Left, blas.Lower, false, blas.Unit, 1, g.stageL11, u)
			for pp := 0; pp < g.P; pp++ {
				if pp != g.p {
					if err := g.c.Send(g.rank(pp, g.q), tag2dUBase+k*g.nBlocks+j, flatten(u), nil); err != nil {
						return err
					}
				}
			}
		} else {
			r, c := g.blockDims(k, j)
			msg, err := g.c.Recv(g.rank(rootP, g.q), tag2dUBase+k*g.nBlocks+j)
			if err != nil {
				return err
			}
			if u, err = unflatten(msg.F, r, c); err != nil {
				return err
			}
		}
		g.stageU12[j] = u
	}
	return nil
}

// update applies A(I,J) -= L21(I)·U12(J) to every owned trailing block.
func (g *grid2d) update(k int) error {
	if g.mixed() {
		return g.update32(k)
	}
	for ij, blk := range g.blocks {
		i, j := ij[0], ij[1]
		if i <= k || j <= k {
			continue
		}
		l := g.stageL21[i]
		u := g.stageU12[j]
		if l == nil || u == nil {
			return fmt.Errorf("hpl: rank (%d,%d) missing stage-%d operands for block (%d,%d)",
				g.p, g.q, k, i, j)
		}
		if g.offloadUpdates {
			if err := offloadUpdate(g.ctx, l, u, blk); err != nil {
				return err
			}
		} else {
			// Same crossover as the sequential Dgetrf trailing update (k
			// decides alone), so the 2D solver stays bitwise identical to
			// the sequential blocked algorithm.
			blas.RankKUpdate(l, u, blk, 1)
		}
	}
	return nil
}

// gatherAndSolve assembles the factored matrix on rank 0, solves, and
// checks the residual.
func (g *grid2d) gatherAndSolve(full *matrix.Dense, rhs []float64, results []DistResult, errs []error) error {
	if err := g.drainPipe(); err != nil {
		return err
	}
	if g.mixed() {
		return g.gatherAndSolve32(full, rhs, results, errs)
	}
	me := g.rank(g.p, g.q)
	if me != 0 {
		// One packed message per rank: every owned block in ascending
		// (i, j) order, plus the singularity flag — not one message per
		// block, which is what used to force the per-link buffers to
		// nBlocks² packets.
		buf := g.scratch[:0]
		for i := 0; i < g.nBlocks; i++ {
			for j := 0; j < g.nBlocks; j++ {
				if blk, ok := g.blocks[[2]int{i, j}]; ok {
					for r := 0; r < blk.Rows; r++ {
						buf = append(buf, blk.Row(r)...)
					}
				}
			}
		}
		g.scratch = buf[:0]
		return g.c.Send(0, tag2dFinal, buf, singularFlag(g.firstError))
	}

	lu := matrix.NewDense(g.n, g.n)
	for ij, blk := range g.blocks {
		r, c := g.blockDims(ij[0], ij[1])
		lu.View(ij[0]*g.nb, ij[1]*g.nb, r, c).CopyFrom(blk)
	}
	firstErr := g.firstError
	for rk := 1; rk < g.P*g.Q; rk++ {
		msg, err := g.c.Recv(rk, tag2dFinal)
		if err != nil {
			return err
		}
		off := 0
		for i := 0; i < g.nBlocks; i++ {
			for j := 0; j < g.nBlocks; j++ {
				if op, oq := g.owner(i, j); g.rank(op, oq) != rk {
					continue
				}
				r, c := g.blockDims(i, j)
				if off+r*c > len(msg.F) {
					return fmt.Errorf("hpl: rank %d final payload truncated at block (%d,%d)", rk, i, j)
				}
				dst := lu.View(i*g.nb, j*g.nb, r, c)
				for y := 0; y < r; y++ {
					copy(dst.Row(y), msg.F[off:off+c])
					off += c
				}
			}
		}
		if off != len(msg.F) {
			return fmt.Errorf("hpl: rank %d final payload %d != %d", rk, len(msg.F), off)
		}
		if e := singularFromFlag(msg.I); e != nil && firstErr == nil {
			firstErr = e
		}
	}

	x := blas.LUSolve(lu, g.globalPiv, rhs)
	var secs float64
	if !g.t0.IsZero() {
		secs = time.Since(g.t0).Seconds()
	}
	results[0] = DistResult{
		X:        x,
		Residual: matrix.Residual(full, x, rhs),
		Ranks:    g.P * g.Q,
		Panels:   g.nBlocks,
		Seconds:  secs,
	}
	errs[0] = firstErr
	return nil
}
