// Package hpl implements the hybrid High-Performance-Linpack layer of
// Section V: a functional distributed LU solver running on the in-process
// cluster fabric (block-cyclic panels, per-stage panel broadcast, row
// swapping, forward solve and trailing update on every rank), a
// fault-tolerant variant with ABFT checksum columns and super-step
// checkpoint/rollback (ft.go), and a virtual-time simulation of the
// hybrid host+coprocessor implementation with the paper's three
// look-ahead schemes, which regenerates Figure 9 and Table III.
package hpl

import (
	"context"
	"errors"
	"fmt"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/lu"
	"phihpl/internal/matrix"
)

// message tags of the distributed protocol.
const (
	tagPanel  = 100 // factored panel + pivots, broadcast per stage
	tagGather = 200 // final panel gather to rank 0
	tagErr    = 300 // singularity flags
)

// DistResult is the outcome of a distributed solve.
type DistResult struct {
	X        []float64
	Residual float64
	Ranks    int
	Panels   int
	// Seconds is the wall-clock of the timed phase — factorization
	// through back-substitution, entered through a barrier — excluding
	// matrix generation and residual verification, which is the figure
	// HPL itself reports. Set by the 2D driver on rank 0; zero elsewhere.
	Seconds float64
	// FT carries the fault-tolerance counters of SolveDistributed2DFT
	// (nil for the plain drivers).
	FT *FTStats
	// Refine describes the FP64 iterative-refinement phase of a
	// mixed-precision 2D solve: step count, final scaled residual, and —
	// when the FP32 route could not reach the bar — the typed reason the
	// driver re-ran the FP64 path. Nil for pure-FP64 solves.
	Refine *lu.MixedReport
}

// SolveDistributed factors and solves the seeded random system A·x = b on
// `ranks` in-process nodes with 1D block-cyclic column distribution —
// HPL's structure with a single process row. Every stage performs a real
// panel factorization on the owner, a real broadcast of the factored panel
// and its pivots over the fabric, and real swap/DTRSM/DGEMM updates of
// each rank's local panels. The factors are bitwise identical to the
// sequential blocked algorithm; the returned residual is the HPL check.
func SolveDistributed(n, nb, ranks int, seed uint64) (DistResult, error) {
	return SolveDistributedCtx(context.Background(), n, nb, ranks, seed)
}

// SolveDistributedCtx is SolveDistributed under a context: every rank
// observes cancellation at its stage boundary, the first rank to return
// aborts the world (unblocking peers parked on fabric operations), and the
// caller always sees the plain ctx.Err() once ctx is done.
func SolveDistributedCtx(ctx context.Context, n, nb, ranks int, seed uint64) (DistResult, error) {
	if n < 1 || ranks < 1 {
		return DistResult{}, errors.New("hpl: n and ranks must be positive")
	}
	if err := ctx.Err(); err != nil {
		return DistResult{}, err
	}
	if nb < 1 || nb > n {
		nb = clampNB(n)
	}
	np := (n + nb - 1) / nb

	world := cluster.NewWorld(ranks, np+4)
	results := make([]DistResult, ranks)
	errs := make([]error, ranks)

	if err := world.Run(func(c *Comm) error {
		return runRank(ctx, c, n, nb, np, seed, results, errs)
	}); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return results[0], cerr
		}
		return results[0], err
	}
	for _, e := range errs {
		if e != nil {
			return results[0], e
		}
	}
	return results[0], nil
}

// Comm aliases the cluster endpoint for readability.
type Comm = cluster.Comm

func clampNB(n int) int {
	nb := 64
	if nb > n {
		nb = n
	}
	return nb
}

// runRank is the per-node program. Fabric and payload-shape problems are
// returned directly; a singular matrix is reported through errs[0] after
// the gather so the residual check still runs on the partial factors.
func runRank(ctx context.Context, c *Comm, n, nb, np int, seed uint64, results []DistResult, errs []error) error {
	rank, size := c.Rank(), c.Size()

	// Deterministic generation: every rank derives the same global matrix
	// and keeps its own panels (a real deployment would scatter; the
	// fabric still carries every per-stage broadcast below).
	full, b := matrix.RandomSystem(n, seed)
	local := make(map[int]*matrix.Dense, np/size+1)
	for p := 0; p < np; p++ {
		if cluster.CyclicOwner(p, size) == rank {
			lo, w := panelSpan(n, nb, p)
			local[p] = full.View(0, lo, n, w).Clone()
		}
	}

	globalPiv := make([]int, n)
	var firstErr error

	for p := 0; p < np; p++ {
		// Stage boundary: every rank checks before issuing the stage's
		// broadcast, so all ranks unwind at the same panel.
		if err := ctx.Err(); err != nil {
			return err
		}
		lo, w := panelSpan(n, nb, p)
		owner := cluster.CyclicOwner(p, size)

		var payload []float64
		var piv []int
		if rank == owner {
			panel := local[p].View(lo, 0, n-lo, w)
			piv = make([]int, w)
			if err := blas.Dgetf2(panel, piv); err != nil && firstErr == nil {
				firstErr = blas.OffsetSingular(err, lo)
			}
			payload = flatten(panel)
		}
		msg, err := c.Bcast(owner, tagPanel+p, payload, piv)
		if err != nil {
			return err
		}
		piv = msg.I
		factored, err := unflatten(msg.F, n-lo, w)
		if err != nil {
			return err
		}

		for k, pv := range piv {
			globalPiv[lo+k] = pv + lo
		}

		// L11 (unit lower, with U11 above) and L21 from the broadcast copy.
		l11 := factored.View(0, 0, w, w)
		var l21 *matrix.Dense
		if n-lo > w {
			l21 = factored.View(w, 0, n-lo-w, w)
		}

		for q, panel := range local {
			if q == p {
				continue
			}
			// Row interchanges of this stage apply to every local panel.
			blas.Dlaswp(panel, piv, lo)
			if q < p {
				continue // already-factored columns: swaps only
			}
			// Forward solve the U block row, then the trailing update.
			u12 := panel.View(lo, 0, w, panel.Cols)
			blas.Dtrsm(blas.Left, blas.Lower, false, blas.Unit, 1, l11, u12)
			if l21 != nil {
				tail := panel.View(lo+w, 0, n-lo-w, panel.Cols)
				blas.RankKUpdate(l21, u12, tail, 1)
			}
		}
	}

	// Gather the factored panels on rank 0 and solve there.
	if rank != 0 {
		// Ascending panel order: rank 0 receives each rank's FIFO stream
		// in the order it drains the grid.
		for p := 0; p < np; p++ {
			if panel, ok := local[p]; ok {
				if err := c.Send(0, tagGather+p, flatten(panel), nil); err != nil {
					return err
				}
			}
		}
		return c.Send(0, tagErr, nil, singularFlag(firstErr))
	}

	lu := matrix.NewDense(n, n)
	for p := 0; p < np; p++ {
		lo, w := panelSpan(n, nb, p)
		var panel *matrix.Dense
		if own, ok := local[p]; ok {
			panel = own
		} else {
			msg, err := c.Recv(cluster.CyclicOwner(p, size), tagGather+p)
			if err != nil {
				return err
			}
			if panel, err = unflatten(msg.F, n, w); err != nil {
				return err
			}
		}
		lu.View(0, lo, n, w).CopyFrom(panel)
	}
	for r := 1; r < size; r++ {
		msg, err := c.Recv(r, tagErr)
		if err != nil {
			return err
		}
		if e := singularFromFlag(msg.I); e != nil && firstErr == nil {
			firstErr = e
		}
	}

	x := blas.LUSolve(lu, globalPiv, b)
	results[0] = DistResult{
		X:        x,
		Residual: matrix.Residual(full, x, b),
		Ranks:    size,
		Panels:   np,
	}
	errs[0] = firstErr
	return nil
}

// panelSpan returns panel p's first column and width.
func panelSpan(n, nb, p int) (lo, w int) {
	lo = p * nb
	w = nb
	if lo+w > n {
		w = n - lo
	}
	return lo, w
}

func flatten(m *matrix.Dense) []float64 {
	out := make([]float64, 0, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		out = append(out, m.Row(i)...)
	}
	return out
}

// unflatten reshapes a received payload, rejecting shape mismatches as a
// typed error (a corrupted or mis-routed message, not a crash).
func unflatten(data []float64, rows, cols int) (*matrix.Dense, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("hpl: payload %d != %dx%d elements", len(data), rows, cols)
	}
	return &matrix.Dense{Rows: rows, Cols: cols, Stride: cols, Data: data}, nil
}

// singularFlag encodes a (possibly nil) singularity error as the
// {flag, column} int payload of a tagErr message.
func singularFlag(err error) []int {
	if err == nil {
		return []int{0, 0}
	}
	col := -1
	var se *blas.SingularError
	if errors.As(err, &se) {
		col = se.Col
	}
	return []int{1, col}
}

// singularFromFlag decodes singularFlag's payload.
func singularFromFlag(ints []int) error {
	if len(ints) < 1 || ints[0] == 0 {
		return nil
	}
	if len(ints) >= 2 && ints[1] >= 0 {
		return &blas.SingularError{Col: ints[1]}
	}
	return blas.ErrSingular
}
