package power

import (
	"testing"

	"phihpl/internal/hpl"
	"phihpl/internal/simlu"
)

func TestBudgets(t *testing.T) {
	b := Default()
	if b.HybridNodeW(1) != 230+300+120 {
		t.Errorf("hybrid 1-card = %v", b.HybridNodeW(1))
	}
	if b.HybridNodeW(2) != 230+600+120 {
		t.Errorf("hybrid 2-card = %v", b.HybridNodeW(2))
	}
	if b.NativeNodeW(1) != 30+300+120 {
		t.Errorf("native 1-card = %v", b.NativeNodeW(1))
	}
	if b.HostOnlyW() != 350 {
		t.Errorf("host-only = %v", b.HostOnlyW())
	}
	if Efficiency(100, 0) != 0 {
		t.Error("zero watts")
	}
	if (Scenario{GFLOPS: 500, Watts: 250}).PerWatt() != 2 {
		t.Error("PerWatt")
	}
}

func TestPaperConclusionEnergyOrdering(t *testing.T) {
	// Section VII: the hybrid node beats the host on GFLOPS/W, but a
	// native-on-cards configuration (host asleep) beats the hybrid —
	// "hybrid implementation [is] less energy efficient compared to the
	// fully-native multi-node implementation".
	b := Default()
	host := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 0}).TFLOPS * 1000
	hybrid := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.PipelinedLookahead}).TFLOPS * 1000
	native := simlu.Dynamic(simlu.Config{N: 30000}).GFLOPS

	s := Compare(b, host, hybrid, native, 1)
	if len(s) != 3 {
		t.Fatal("want 3 scenarios")
	}
	hostPW, hybridPW, nativePW := s[0].PerWatt(), s[1].PerWatt(), s[2].PerWatt()
	if !(hybridPW > hostPW) {
		t.Errorf("hybrid (%.2f GF/W) should beat host-only (%.2f)", hybridPW, hostPW)
	}
	if !(nativePW > hybridPW) {
		t.Errorf("native-on-cards (%.2f GF/W) should beat hybrid (%.2f) — the paper's conclusion", nativePW, hybridPW)
	}
}

func TestTwoCardScaling(t *testing.T) {
	b := Default()
	// Adding a second card improves hybrid GFLOPS/W (the card is more
	// efficient than the host+platform base).
	hy1 := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.PipelinedLookahead}).TFLOPS * 1000
	hy2 := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 2, Lookahead: hpl.PipelinedLookahead}).TFLOPS * 1000
	if Efficiency(hy2, b.HybridNodeW(2)) <= Efficiency(hy1, b.HybridNodeW(1)) {
		t.Errorf("second card should raise GFLOPS/W: %.2f vs %.2f",
			Efficiency(hy2, b.HybridNodeW(2)), Efficiency(hy1, b.HybridNodeW(1)))
	}
}
