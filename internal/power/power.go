// Package power models node- and cluster-level energy efficiency, backing
// the paper's concluding analysis (Section VII): the Sandy Bridge host is
// several times slower than a Knights Corner card yet consumes comparable
// power, so a hybrid node is less energy efficient than a hypothetical
// fully-native configuration that runs Linpack on the cards alone with the
// host CPUs in a deep sleep state — the paper's stated future work.
//
// Power figures are nameplate TDPs of the era's parts (E5-2670: 115 W per
// socket; Knights Corner SE10/7110-class card: 300 W) plus a platform
// overhead for memory, fans, and the NIC.
package power

// Budget is a node's power breakdown in watts.
type Budget struct {
	// HostSocketW is the TDP of one host socket (115 W for the E5-2670).
	HostSocketW float64
	// HostSockets is the socket count (2).
	HostSockets int
	// HostIdleW is the host package power in a deep sleep state, per
	// socket (the paper's future-work scenario).
	HostIdleW float64
	// CardW is one coprocessor card's board power (300 W).
	CardW float64
	// PlatformW covers DRAM, fans, NIC and the PCB (per node).
	PlatformW float64
}

// Default returns the paper-era budget.
func Default() Budget {
	return Budget{
		HostSocketW: 115,
		HostSockets: 2,
		HostIdleW:   15,
		CardW:       300,
		PlatformW:   120,
	}
}

// HybridNodeW returns the draw of a hybrid node with the host active and
// `cards` coprocessors busy.
func (b Budget) HybridNodeW(cards int) float64 {
	return float64(b.HostSockets)*b.HostSocketW + float64(cards)*b.CardW + b.PlatformW
}

// NativeNodeW returns the draw with the host CPUs in deep sleep and
// `cards` coprocessors running Linpack natively.
func (b Budget) NativeNodeW(cards int) float64 {
	return float64(b.HostSockets)*b.HostIdleW + float64(cards)*b.CardW + b.PlatformW
}

// HostOnlyW returns the draw of a CPU-only node.
func (b Budget) HostOnlyW() float64 {
	return float64(b.HostSockets)*b.HostSocketW + b.PlatformW
}

// Efficiency returns GFLOPS per watt.
func Efficiency(gflops, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return gflops / watts
}

// Scenario couples an achieved performance with a power draw.
type Scenario struct {
	Name   string
	GFLOPS float64
	Watts  float64
}

// PerWatt returns the scenario's GFLOPS/W.
func (s Scenario) PerWatt() float64 { return Efficiency(s.GFLOPS, s.Watts) }

// Compare builds the paper's three single-node scenarios from achieved
// performance numbers: CPU-only HPL, hybrid HPL (host + cards), and
// native Linpack on the cards with the host asleep.
func Compare(b Budget, hostGFLOPS, hybridGFLOPS, nativePerCardGFLOPS float64, cards int) []Scenario {
	return []Scenario{
		{Name: "host-only HPL", GFLOPS: hostGFLOPS, Watts: b.HostOnlyW()},
		{Name: "hybrid HPL", GFLOPS: hybridGFLOPS, Watts: b.HybridNodeW(cards)},
		{Name: "native on cards (host asleep)", GFLOPS: nativePerCardGFLOPS * float64(cards), Watts: b.NativeNodeW(cards)},
	}
}
