package lu

import (
	"errors"
	"testing"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
)

// TestSolveSurfacesSingularColumn checks that every native driver reports
// a rank-deficient system as a typed error carrying the offending global
// column, instead of dividing by zero and returning garbage.
func TestSolveSurfacesSingularColumn(t *testing.T) {
	const n, bad = 48, 29
	a := matrix.RandomGeneral(n, n, 3)
	for i := 0; i < n; i++ {
		a.Set(i, bad, 0) // exactly zero column: pivot search finds nothing
	}
	b := make([]float64, n)
	for name, driver := range map[string]func(*matrix.Dense, []int, Options) error{
		"sequential": Sequential,
		"static":     StaticLookahead,
		"dynamic":    Dynamic,
	} {
		_, _, err := Solve(a, b, Options{NB: 16, Workers: 4}, driver)
		if !errors.Is(err, blas.ErrSingular) {
			t.Fatalf("%s: want ErrSingular, got %v", name, err)
		}
		var se *blas.SingularError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error %v does not carry *SingularError", name, err)
		}
		if se.Col != bad {
			t.Errorf("%s: offending column = %d, want %d", name, se.Col, bad)
		}
	}
}
