// Package lu implements the native Linpack factorization drivers of
// Section IV with real numerics: a sequential blocked reference, the
// static look-ahead scheme (global barrier per stage, the paper's
// baseline), and the DAG-based dynamic scheduler (the paper's
// contribution) running on goroutine thread groups.
//
// All three drivers produce bitwise-identical factors and pivots: they
// reorder only independent work (updates to disjoint column panels), and
// every elementary operation is performed in the same order within each
// panel. The tests assert this, which is the strongest possible statement
// that dynamic scheduling changes the schedule, not the mathematics.
//
// Timing of these schedules on the simulated Knights Corner is the job of
// internal/simlu; this package is about correctness and real concurrency.
package lu

import (
	"fmt"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/trace"
)

// Options configure a factorization driver.
type Options struct {
	// NB is the panel width (block size). Values around 240–360 mirror
	// the paper's Knights Corner blocking; small matrices clamp it.
	NB int
	// Workers is the number of concurrent thread groups (goroutines)
	// executing tasks.
	Workers int
	// RecursivePanel selects the recursively blocked panel factorization
	// (Toledo-style) over the unblocked kernel. Both produce bitwise
	// identical factors; the recursive one turns most panel flops into
	// DGEMM, which is what made the paper's panels fast.
	RecursivePanel bool
	// Trace, when non-nil, receives one wall-clock span per executed task
	// from the dynamic scheduler — worker = thread-group id, name =
	// "PanelFact" or "Update", iter = the task's stage — producing the
	// real-execution Gantt chart of Figure 7. Nil (the default) records
	// nothing and adds no overhead to the task loop.
	Trace *trace.Recorder
}

// withDefaults fills unset options.
func (o Options) withDefaults(n int) Options {
	if o.NB < 1 {
		o.NB = 64
	}
	if o.NB > n {
		o.NB = n
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// panels returns the number of NB-wide column panels of an n-column matrix.
func panels(n, nb int) int { return (n + nb - 1) / nb }

// panelCols returns the column range [lo, hi) of panel p.
func panelCols(n, nb, p int) (lo, hi int) {
	lo = p * nb
	hi = lo + nb
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Sequential factors a in place with partial pivoting using the blocked
// reference algorithm. piv must have length n.
func Sequential(a *matrix.Dense, piv []int, opts Options) error {
	opts = opts.withDefaults(a.Cols)
	return blas.Dgetrf(a, piv, opts.NB)
}

// testHookPanelFact, when non-nil, runs at the top of every panel
// factorization. Set only by tests (before a driver starts) to inject
// panics into the task kernels.
var testHookPanelFact func(p int)

// state carries the shared factorization context of the concurrent drivers.
type state struct {
	a         *matrix.Dense
	n         int
	nb        int
	np        int
	piv       [][]int // per-stage local pivots (panel-relative)
	recursive bool
}

func newState(a *matrix.Dense, opts Options) *state {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("lu: matrix must be square, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Cols
	st := &state{a: a, n: n, nb: opts.NB, np: panels(n, opts.NB), recursive: opts.RecursivePanel}
	st.piv = make([][]int, st.np)
	return st
}

// factorPanel runs Task1 for panel p: factor the panel in place. It writes
// only panel p's columns, so it is safe to run concurrently with updates
// of other panels.
//
// The row swaps this stage owes to the already-factored columns on its
// left are deferred to finishLeftSwaps: applying them here would permute
// the L blocks that concurrent look-ahead updates of *earlier* stages are
// still reading (their target panels have only absorbed swaps up to their
// own stage). Deferring keeps every L block frozen in exactly the
// permutation state its consumers expect — the same reason HPL applies
// swaps to the L panel copy it broadcasts rather than in place.
func (st *state) factorPanel(p int) error {
	if h := testHookPanelFact; h != nil {
		h(p)
	}
	lo, hi := panelCols(st.n, st.nb, p)
	w := hi - lo
	panel := st.a.View(lo, lo, st.n-lo, w)
	local := make([]int, w)
	var err error
	if st.recursive {
		err = blas.Dgetf2Recursive(panel, local)
	} else {
		err = blas.Dgetf2(panel, local)
	}
	st.piv[p] = local
	// Panel columns are matrix-local: rebase a singular report to the
	// absolute column so every driver names the same offender.
	return blas.OffsetSingular(err, lo)
}

// finishLeftSwaps applies, stage by stage, each stage's row interchanges
// to the factored columns left of it. Row swaps on disjoint column ranges
// commute with everything that ran during factorization, so the final
// matrix is bitwise identical to the sequential algorithm's. Must be
// called after all tasks complete and before solving.
func (st *state) finishLeftSwaps() {
	for s := 1; s < st.np; s++ {
		lo, _ := panelCols(st.n, st.nb, s)
		left := st.a.View(0, 0, st.n, lo)
		blas.Dlaswp(left, st.piv[s], lo)
	}
}

// updatePanel runs Task2(s, p): pivot, forward-solve and trailing-update
// panel p with the factors of stage s. workers parallelizes the DGEMM.
func (st *state) updatePanel(s, p, workers int) {
	sLo, sHi := panelCols(st.n, st.nb, s)
	sw := sHi - sLo
	pLo, pHi := panelCols(st.n, st.nb, p)
	pw := pHi - pLo

	target := st.a.View(0, pLo, st.n, pw)
	// DLASWP: apply stage-s interchanges to the panel's columns.
	blas.Dlaswp(target, st.piv[s], sLo)
	// DTRSM: U block row of this panel.
	l11 := st.a.View(sLo, sLo, sw, sw)
	u12 := st.a.View(sLo, pLo, sw, pw)
	blas.Dtrsm(blas.Left, blas.Lower, false, blas.Unit, 1, l11, u12)
	// DGEMM: trailing block of this panel, through the packed-tile fast
	// path (RankKUpdate routes by panel depth; every driver makes the same
	// choice for the same stage, preserving bitwise identity).
	if sHi < st.n {
		l21 := st.a.View(sHi, sLo, st.n-sHi, sw)
		tail := st.a.View(sHi, pLo, st.n-sHi, pw)
		blas.RankKUpdate(l21, u12, tail, workers)
	}
}

// globalPivots flattens the per-stage local pivots into the absolute-row
// convention of blas.Dgetrf/LUSolve.
func (st *state) globalPivots(piv []int) {
	if len(piv) != st.n {
		panic("lu: pivot slice must have length n")
	}
	for p := 0; p < st.np; p++ {
		lo, _ := panelCols(st.n, st.nb, p)
		for k, lp := range st.piv[p] {
			piv[lo+k] = lp + lo
		}
	}
}

// Solve factors a copy of A and solves A·x = b, returning the solution and
// the scaled HPL residual. driver is one of Sequential, StaticLookahead or
// Dynamic.
func Solve(a *matrix.Dense, b []float64, opts Options,
	driver func(*matrix.Dense, []int, Options) error) (x []float64, residual float64, err error) {
	lu := a.Clone()
	piv := make([]int, a.Rows)
	if err := driver(lu, piv, opts); err != nil {
		return nil, 0, err
	}
	x = blas.LUSolve(lu, piv, b)
	return x, matrix.Residual(a, x, b), nil
}
