package lu

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"phihpl/internal/dag"
	"phihpl/internal/matrix"
	"phihpl/internal/pool"
)

// Dynamic factors a in place using the DAG-based dynamic scheduler of
// Section IV: opts.Workers goroutines play the role of the paper's thread
// groups, each one's "master" claiming tasks from the shared compact DAG
// and executing them to completion. There are no global barriers; panel
// factorizations are issued with look-ahead priority the moment their
// dependencies resolve.
//
// The factors and pivots are bitwise identical to Sequential and
// StaticLookahead. With opts.Trace attached, every executed task emits a
// per-worker wall-clock span (PanelFact/Update), which is the real
// measured counterpart of the paper's Figure 7 Gantt chart.
//
// A panic inside a task is contained: the remaining workers stop claiming
// tasks, every goroutine drains, and the panic is returned as a typed
// *pool.PanicError instead of crashing the process.
func Dynamic(a *matrix.Dense, piv []int, opts Options) error {
	_, err := runDynamic(context.Background(), a, piv, opts)
	return err
}

// DynamicCtx is Dynamic under a context: cancellation is observed at every
// DAG task-issue boundary — once ctx is done no further task is claimed,
// all workers drain, and ctx.Err() is returned. The matrix contents are
// then an unspecified partial factorization and must not be used.
func DynamicCtx(ctx context.Context, a *matrix.Dense, piv []int, opts Options) error {
	_, err := runDynamic(ctx, a, piv, opts)
	return err
}

// DynamicStats factors like Dynamic and additionally returns the scheduler
// statistics (critical-section entries, tasks issued), which back the
// contention ablation in the benchmarks.
func DynamicStats(a *matrix.Dense, piv []int, opts Options) (dag.Stats, error) {
	sched, err := runDynamic(context.Background(), a, piv, opts)
	return sched.Stats(), err
}

// runDynamic is the shared driver behind Dynamic, DynamicCtx and
// DynamicStats.
func runDynamic(ctx context.Context, a *matrix.Dense, piv []int, opts Options) (*dag.Scheduler, error) {
	opts = opts.withDefaults(a.Cols)
	st := newState(a, opts)
	sched := dag.New(st.np)
	if err := ctx.Err(); err != nil {
		return sched, err
	}
	rec := opts.Trace

	var (
		wg       sync.WaitGroup
		abort    atomic.Bool // a worker panicked: nobody claims further tasks
		errMu    sync.Mutex
		firstErr error
		perr     *pool.PanicError
	)
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Recover barrier: a panicking task must fail the solve, not
			// kill the process. The claimed task is deliberately left
			// un-Completed — abort stops the other workers from spinning
			// on its dependents.
			defer func() {
				if v := recover(); v != nil {
					abort.Store(true)
					errMu.Lock()
					if perr == nil {
						perr = &pool.PanicError{Worker: g, Value: v, Stack: string(debug.Stack())}
					}
					errMu.Unlock()
				}
			}()
			for !abort.Load() {
				// Task-issue boundary: the cancellation check of DynamicCtx.
				if ctx.Err() != nil {
					return
				}
				task, ok := sched.Next()
				if !ok {
					if sched.Done() {
						return
					}
					// Another group's task will unblock us; yield.
					runtime.Gosched()
					continue
				}
				var t0 float64
				if rec != nil {
					t0 = rec.Start()
				}
				switch task.Kind {
				case dag.PanelFact:
					if err := st.factorPanel(task.Panel); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				case dag.Update:
					st.updatePanel(task.Stage, task.Panel, 1)
				}
				if rec != nil {
					rec.Since(g, task.Kind.String(), task.Stage, t0)
				}
				sched.Complete(task)
			}
		}(g)
	}
	wg.Wait()

	errMu.Lock()
	pe, fe := perr, firstErr
	errMu.Unlock()
	if pe != nil {
		return sched, pe
	}
	if !sched.Done() {
		// Cut short without a panic: only cancellation stops the DAG early.
		if err := ctx.Err(); err != nil {
			return sched, err
		}
		return sched, context.Canceled
	}
	st.finishLeftSwaps()
	st.globalPivots(piv)
	return sched, fe
}
