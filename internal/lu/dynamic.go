package lu

import (
	"runtime"
	"sync"

	"phihpl/internal/dag"
	"phihpl/internal/matrix"
)

// Dynamic factors a in place using the DAG-based dynamic scheduler of
// Section IV: opts.Workers goroutines play the role of the paper's thread
// groups, each one's "master" claiming tasks from the shared compact DAG
// and executing them to completion. There are no global barriers; panel
// factorizations are issued with look-ahead priority the moment their
// dependencies resolve.
//
// The factors and pivots are bitwise identical to Sequential and
// StaticLookahead. With opts.Trace attached, every executed task emits a
// per-worker wall-clock span (PanelFact/Update), which is the real
// measured counterpart of the paper's Figure 7 Gantt chart.
func Dynamic(a *matrix.Dense, piv []int, opts Options) error {
	_, err := runDynamic(a, piv, opts)
	return err
}

// DynamicStats factors like Dynamic and additionally returns the scheduler
// statistics (critical-section entries, tasks issued), which back the
// contention ablation in the benchmarks.
func DynamicStats(a *matrix.Dense, piv []int, opts Options) (dag.Stats, error) {
	sched, err := runDynamic(a, piv, opts)
	return sched.Stats(), err
}

// runDynamic is the shared driver behind Dynamic and DynamicStats.
func runDynamic(a *matrix.Dense, piv []int, opts Options) (*dag.Scheduler, error) {
	opts = opts.withDefaults(a.Cols)
	st := newState(a, opts)
	sched := dag.New(st.np)
	rec := opts.Trace

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				task, ok := sched.Next()
				if !ok {
					if sched.Done() {
						return
					}
					// Another group's task will unblock us; yield.
					runtime.Gosched()
					continue
				}
				var t0 float64
				if rec != nil {
					t0 = rec.Start()
				}
				switch task.Kind {
				case dag.PanelFact:
					if err := st.factorPanel(task.Panel); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				case dag.Update:
					st.updatePanel(task.Stage, task.Panel, 1)
				}
				if rec != nil {
					rec.Since(g, task.Kind.String(), task.Stage, t0)
				}
				sched.Complete(task)
			}
		}(g)
	}
	wg.Wait()

	st.finishLeftSwaps()
	st.globalPivots(piv)
	return sched, firstErr
}
