package lu

import (
	"runtime"
	"sync"

	"phihpl/internal/dag"
	"phihpl/internal/matrix"
)

// Dynamic factors a in place using the DAG-based dynamic scheduler of
// Section IV: opts.Workers goroutines play the role of the paper's thread
// groups, each one's "master" claiming tasks from the shared compact DAG
// and executing them to completion. There are no global barriers; panel
// factorizations are issued with look-ahead priority the moment their
// dependencies resolve.
//
// The factors and pivots are bitwise identical to Sequential and
// StaticLookahead.
func Dynamic(a *matrix.Dense, piv []int, opts Options) error {
	opts = opts.withDefaults(a.Cols)
	st := newState(a, opts)
	sched := dag.New(st.np)

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok := sched.Next()
				if !ok {
					if sched.Done() {
						return
					}
					// Another group's task will unblock us; yield.
					runtime.Gosched()
					continue
				}
				switch task.Kind {
				case dag.PanelFact:
					if err := st.factorPanel(task.Panel); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				case dag.Update:
					st.updatePanel(task.Stage, task.Panel, 1)
				}
				sched.Complete(task)
			}
		}()
	}
	wg.Wait()

	st.finishLeftSwaps()
	st.globalPivots(piv)
	return firstErr
}

// DynamicStats factors like Dynamic and additionally returns the scheduler
// statistics (critical-section entries, tasks issued), which back the
// contention ablation in the benchmarks.
func DynamicStats(a *matrix.Dense, piv []int, opts Options) (dag.Stats, error) {
	opts = opts.withDefaults(a.Cols)
	st := newState(a, opts)
	sched := dag.New(st.np)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok := sched.Next()
				if !ok {
					if sched.Done() {
						return
					}
					runtime.Gosched()
					continue
				}
				switch task.Kind {
				case dag.PanelFact:
					if err := st.factorPanel(task.Panel); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				case dag.Update:
					st.updatePanel(task.Stage, task.Panel, 1)
				}
				sched.Complete(task)
			}
		}()
	}
	wg.Wait()
	st.finishLeftSwaps()
	st.globalPivots(piv)
	return sched.Stats(), firstErr
}
