package lu

import (
	"testing"

	"phihpl/internal/matrix"
	"phihpl/internal/trace"
)

// The dynamic scheduler with a recorder attached must produce the same
// factorization as without one, and emit per-worker PanelFact/Update spans
// — the real-execution counterpart of the paper's Figure 7 Gantt chart.
func TestDynamicTraceSpans(t *testing.T) {
	const n, nb, workers = 192, 32, 3
	a := matrix.RandomGeneral(n, n, 7)
	plain := a.Clone()
	pivPlain := make([]int, n)
	if err := Dynamic(plain, pivPlain, Options{NB: nb, Workers: workers}); err != nil {
		t.Fatal(err)
	}

	rec := new(trace.Recorder)
	traced := a.Clone()
	pivTraced := make([]int, n)
	if err := Dynamic(traced, pivTraced, Options{NB: nb, Workers: workers, Trace: rec}); err != nil {
		t.Fatal(err)
	}

	if !matrix.Equal(plain, traced) {
		t.Error("tracing changed the factorization")
	}
	for i := range pivPlain {
		if pivPlain[i] != pivTraced[i] {
			t.Fatalf("pivot %d: %d vs %d", i, pivPlain[i], pivTraced[i])
		}
	}

	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	stages := n / nb
	sawPanel, sawUpdate := false, false
	for _, s := range spans {
		switch s.Name {
		case "PanelFact":
			sawPanel = true
		case "Update":
			sawUpdate = true
		default:
			t.Fatalf("unexpected span name %q", s.Name)
		}
		if s.Worker < 0 || s.Worker >= workers {
			t.Fatalf("span on worker %d, want [0,%d)", s.Worker, workers)
		}
		if s.Iter < 0 || s.Iter >= stages {
			t.Fatalf("span stage %d, want [0,%d)", s.Iter, stages)
		}
		if s.End < s.Start {
			t.Fatalf("backwards span %+v", s)
		}
	}
	if !sawPanel || !sawUpdate {
		t.Errorf("span kinds incomplete: panel=%v update=%v", sawPanel, sawUpdate)
	}
	if got := len(spans); got != stages+stages*(stages-1)/2 {
		// One PanelFact per stage plus one Update per (stage, later panel).
		t.Errorf("spans = %d, want %d", got, stages+stages*(stages-1)/2)
	}
}

// A nil recorder must leave the scheduler untouched (and not panic).
func TestDynamicNilTrace(t *testing.T) {
	a := matrix.RandomGeneral(64, 64, 3)
	piv := make([]int, 64)
	if err := Dynamic(a, piv, Options{NB: 16, Workers: 2, Trace: nil}); err != nil {
		t.Fatal(err)
	}
}
