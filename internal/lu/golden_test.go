package lu

import (
	"testing"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
)

// goldenCases is the ReFrame-style reference table for the HPL residual
// regression: each row pins the expected pass/fail verdict of the scaled
// residual check for a seeded system solved through the packed-tile fast
// path. The matrices are well-conditioned random systems, so the verdict
// is `pass` for every size; a fast-path numerics regression that pushes
// the residual past matrix.ResidualThreshold flips a verdict and fails
// this table.
var goldenCases = []struct {
	n    int
	nb   int
	pass bool
}{
	{64, 32, true},
	{256, 64, true},
	{512, 64, true},
}

// TestGoldenResidualRegression solves each golden system with all three
// drivers through the packed fast path (RankKUpdate routes the trailing
// updates through DgemmPacked at these panel depths), asserts the HPL
// verdict against the reference table, and then re-solves on the seed-era
// reference path (packing disabled) to confirm the two paths agree on the
// verdict — the packed path must not change whether HPL passes.
func TestGoldenResidualRegression(t *testing.T) {
	for _, g := range goldenCases {
		a, b := matrix.RandomSystem(g.n, uint64(g.n))
		opts := Options{NB: g.nb, Workers: 4}

		var firstX []float64
		for _, d := range drivers {
			x, res, err := Solve(a, b, opts, d.f)
			if err != nil {
				t.Fatalf("n=%d %s: %v", g.n, d.name, err)
			}
			if got := res <= matrix.ResidualThreshold; got != g.pass {
				t.Errorf("n=%d %s: residual %g gives verdict %v, golden table says %v",
					g.n, d.name, res, got, g.pass)
			}
			if firstX == nil {
				firstX = x
			}
		}

		// Reference path: force every RankKUpdate onto the plain row-split
		// loop, exactly the seed behavior, and require the same verdict.
		saved := blas.PackedMinK
		blas.PackedMinK = 1 << 30
		xRef, resRef, err := Solve(a, b, opts, Sequential)
		blas.PackedMinK = saved
		if err != nil {
			t.Fatalf("n=%d reference path: %v", g.n, err)
		}
		if got := resRef <= matrix.ResidualThreshold; got != g.pass {
			t.Errorf("n=%d reference path: residual %g gives verdict %v, golden table says %v",
				g.n, resRef, got, g.pass)
		}

		// The two solutions solve the same system; they need not be bitwise
		// equal (different accumulation order) but must agree to the scale
		// the residual bound implies.
		var maxd, maxx float64
		for i := range firstX {
			if d := abs(firstX[i] - xRef[i]); d > maxd {
				maxd = d
			}
			if v := abs(xRef[i]); v > maxx {
				maxx = v
			}
		}
		if maxd > 1e-6*(1+maxx) {
			t.Errorf("n=%d: packed and reference solutions diverge: max |Δx| = %g", g.n, maxd)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
