package lu

import (
	"context"
	"fmt"
	"math"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/trace"
)

// The mixed-precision solve (HPL-MxP / HPL-AI scheme): factor A entirely
// in single precision through the packed SGEMM fast path, then recover a
// double-precision-quality solution with FP64 iterative refinement — the
// residual r = b − A·x̂ computed in float64 against the original matrix,
// the correction solved in float64 against the FP32 factors (O(n²) per
// step), x̂ += δ. The factorization does O(n³) work at FP32 speed; the
// refinement does O(n²) work per step in FP64, and for matrices whose
// condition number is within FP32's reach (κ ≲ 1/eps32 ≈ 10⁷) a handful
// of steps lands the scaled HPL residual at the same level as the FP64
// solve. When refinement cannot get there — the matrix is singular in
// FP32, the residual stalls above the bar, or the iterate goes non-finite
// — the solver falls back to the FP64 path automatically and says so in a
// typed report: the caller always gets either a passing residual or an
// explicit fallback, never a silent wrong answer.

// PrecisionMode selects the arithmetic of the shared-memory solve.
type PrecisionMode int

const (
	// PrecisionFP64 is the classical all-double path (Solve).
	PrecisionFP64 PrecisionMode = iota
	// PrecisionMixed is FP32 factorization + FP64 iterative refinement
	// (SolveMixed), with automatic fallback to PrecisionFP64.
	PrecisionMixed
)

// String returns the flag spelling of the mode.
func (m PrecisionMode) String() string {
	switch m {
	case PrecisionFP64:
		return "fp64"
	case PrecisionMixed:
		return "mixed"
	}
	return fmt.Sprintf("PrecisionMode(%d)", int(m))
}

// ParsePrecisionMode parses "fp64" or "mixed".
func ParsePrecisionMode(s string) (PrecisionMode, error) {
	switch s {
	case "fp64":
		return PrecisionFP64, nil
	case "mixed":
		return PrecisionMixed, nil
	}
	return 0, fmt.Errorf("lu: unknown precision mode %q (want fp64 or mixed)", s)
}

// FallbackReason says why a mixed solve abandoned its FP32 factors and
// re-solved in FP64. FallbackNone means the refined FP32 result was
// accepted.
type FallbackReason int

const (
	// FallbackNone: no fallback, the refined solution was accepted.
	FallbackNone FallbackReason = iota
	// FallbackSingular: the FP32 factorization hit a zero/subnormal pivot
	// (the matrix may still be comfortably non-singular in FP64).
	FallbackSingular
	// FallbackStalled: refinement stopped improving while the scaled
	// residual was still at or above the HPL bar.
	FallbackStalled
	// FallbackNonFinite: the residual or iterate went NaN/Inf.
	FallbackNonFinite
)

// String names the reason.
func (r FallbackReason) String() string {
	switch r {
	case FallbackNone:
		return "none"
	case FallbackSingular:
		return "fp32-singular"
	case FallbackStalled:
		return "refinement-stalled"
	case FallbackNonFinite:
		return "non-finite"
	}
	return fmt.Sprintf("FallbackReason(%d)", int(r))
}

// MixedReport describes how a mixed-precision solve went: how many FP64
// refinement steps ran against the FP32 factors, the scaled HPL residual
// of the returned solution, and — when the FP32 path could not reach the
// bar — the typed reason the solver fell back to FP64.
type MixedReport struct {
	// Iterations is the number of refinement correction solves performed
	// (0 when the initial substitution already met the target, or when
	// the factorization itself failed).
	Iterations int
	// Residual is the scaled HPL residual of the returned solution.
	Residual float64
	// FellBack reports that the solution came from the FP64 path.
	FellBack bool
	// Reason is FallbackNone when FellBack is false.
	Reason FallbackReason
}

// DefaultRefineSteps caps the refinement loop. Well-conditioned systems
// converge in 2–4 steps; a system still above the bar after this many is
// declared stalled and falls back.
const DefaultRefineSteps = 30

// refineTarget is the scaled residual refinement drives for: one decade
// under the HPL bar, so an accepted mixed solve PASSES with margin rather
// than grazing the threshold.
const refineTarget = matrix.ResidualThreshold / 16

// SolveMixed factors a single-precision copy of A (blocked FP32 LU with
// partial pivoting, trailing updates through the packed SGEMM fast path)
// and solves A·x = b with FP64 iterative refinement against the FP32
// factors. On success the report carries the step count and final scaled
// residual. When the FP32 route cannot reach the HPL bar, SolveMixed
// re-solves with the FP64 Sequential driver and reports the typed reason;
// the error is non-nil only when that fallback itself fails (e.g. the
// matrix is singular in double precision too).
//
// Spans (when opts.Trace is set, worker 0): "SFactor" for the FP32
// factorization, "Refine" per correction solve (iter = step index),
// "FP64Fallback" for a fallback re-solve. Counters (see SetMetrics):
// lu.mixed_solves, lu.refine_iters, lu.mixed_fallbacks.
func SolveMixed(a *matrix.Dense, b []float64, opts Options) (x []float64, residual float64, rep MixedReport, err error) {
	return SolveMixedCtx(context.Background(), a, b, opts)
}

// SolveMixedCtx is SolveMixed under a context, observed at the solver's
// stage boundaries: before the FP32 factorization, between refinement
// steps, and before a fallback re-solve (which then runs the cancellable
// SequentialCtx driver). The factorization itself is one uninterruptible
// stage. On cancellation ctx.Err() is returned and no solution is
// produced.
func SolveMixedCtx(ctx context.Context, a *matrix.Dense, b []float64, opts Options) (x []float64, residual float64, rep MixedReport, err error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("lu: matrix must be square, got %dx%d", a.Rows, a.Cols))
	}
	if len(b) != a.Rows {
		panic("lu: SolveMixed right-hand side has wrong length")
	}
	opts = opts.withDefaults(a.Cols)
	mMixedSolves.Load().Inc()
	rec := opts.Trace
	if err := ctx.Err(); err != nil {
		return nil, 0, rep, err
	}

	a32 := a.ToDense32()
	piv := make([]int, a.Rows)
	var t0 float64
	if rec != nil {
		t0 = rec.Start()
	}
	factErr := blas.Sgetrf(a32, piv, opts.NB, opts.Workers)
	if rec != nil {
		rec.Since(0, "SFactor", 0, t0)
	}
	if factErr != nil {
		return fallbackFP64(ctx, a, b, opts, rep, FallbackSingular)
	}

	x, residual, rep.Iterations, rep.Reason, err = RefineMixed(ctx, a, a32, piv, b, rec)
	if err != nil {
		return nil, 0, rep, err
	}
	if rep.Reason != FallbackNone {
		why := rep.Reason
		rep.Reason = FallbackNone // fallbackFP64 stamps it
		return fallbackFP64(ctx, a, b, opts, rep, why)
	}
	rep.Residual = residual
	return x, residual, rep, nil
}

// RefineMixed is the FP64 iterative-refinement ladder against prefactored
// FP32 LU factors, shared by the shared-memory mixed solve and the 2D
// distributed drivers. lu32 holds the in-place FP32 factors of (a rounded
// to single precision), piv the absolute-row pivot swaps (piv[k]=p means
// rows k and p were swapped at step k — the globalPiv format of the
// distributed drivers). It substitutes b through the factors, then
// refines: FP64 residual against the original a, FP64 correction solve
// against the FP32 factors, x += δ, until the scaled residual is a decade
// under the HPL bar, the step budget (DefaultRefineSteps) runs out, or
// progress stalls. A stalled-or-capped iterate that still clears the HPL
// bar is accepted.
//
// On acceptance why is FallbackNone; otherwise why says what went wrong
// (FallbackStalled, FallbackNonFinite) and the caller picks its own FP64
// fallback — re-solving locally (SolveMixed) or re-running the distributed
// FP64 path (the 2D drivers). err is non-nil only for ctx cancellation,
// observed between refinement steps. Spans (worker 0): "Refine" per
// correction solve. Counter: lu.refine_iters.
func RefineMixed(ctx context.Context, a *matrix.Dense, lu32 *matrix.Dense32, piv []int, b []float64, rec *trace.Recorder) (x []float64, res float64, iters int, why FallbackReason, err error) {
	x = blas.LUSolveMixed(lu32, piv, b)
	prev := math.Inf(1)
	var t0 float64
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, iters, FallbackNone, err
		}
		res = matrix.Residual(a, x, b)
		if math.IsNaN(res) || math.IsInf(res, 0) {
			return nil, 0, iters, FallbackNonFinite, nil
		}
		if res <= refineTarget {
			return x, res, iters, FallbackNone, nil
		}
		stalled := res >= prev/2
		if (stalled || iters >= DefaultRefineSteps) && iters > 0 {
			// No longer improving (or out of budget). Accept the iterate if
			// it clears the HPL bar anyway; otherwise give up on the FP32
			// factors.
			if res < matrix.ResidualThreshold {
				return x, res, iters, FallbackNone, nil
			}
			return nil, 0, iters, FallbackStalled, nil
		}
		prev = res

		if rec != nil {
			t0 = rec.Start()
		}
		r := residVec(a, x, b)
		delta := blas.LUSolveMixed(lu32, piv, r)
		blas.Daxpy(1, delta, x)
		iters++
		mRefineIters.Load().Inc()
		if rec != nil {
			rec.Since(0, "Refine", iters-1, t0)
		}
	}
}

// fallbackFP64 re-solves in double precision with the cancellable
// sequential driver and stamps the report with the typed reason.
func fallbackFP64(ctx context.Context, a *matrix.Dense, b []float64, opts Options, rep MixedReport, why FallbackReason) ([]float64, float64, MixedReport, error) {
	rep.FellBack = true
	rep.Reason = why
	mMixedFallbacks.Load().Inc()
	rec := opts.Trace
	var t0 float64
	if rec != nil {
		t0 = rec.Start()
	}
	x, res, err := SolveCtx(ctx, a, b, opts, SequentialCtx)
	if rec != nil {
		rec.Since(0, "FP64Fallback", 0, t0)
	}
	if err != nil {
		return nil, 0, rep, err
	}
	rep.Residual = res
	return x, res, rep, nil
}
