package lu

import (
	"context"
	"math"
	"testing"

	"phihpl/internal/matrix"
	"phihpl/internal/metrics"
	"phihpl/internal/pack"
	"phihpl/internal/trace"
)

// forceScalarKernels pins both micro-kernels (FP32 and FP64) to the
// portable scalar path for the duration of a test, so golden values hold
// on every platform regardless of which vector kernels the CPU offers —
// the FP64 fallback golden in particular re-runs the full FP64 packed
// path, whose bits depend on the FP64 kernel.
func forceScalarKernels(t *testing.T) {
	t.Helper()
	prev32, prev64 := pack.DisableVectorKernel32, pack.DisableVectorKernel
	pack.DisableVectorKernel32 = true
	pack.DisableVectorKernel = true
	t.Cleanup(func() {
		pack.DisableVectorKernel32 = prev32
		pack.DisableVectorKernel = prev64
	})
}

// nearDepSystem builds a system whose last row is a linear combination of
// the first three rows plus tau-scale noise: for tau below the single-
// precision resolution of the row entries the dependency is invisible to
// FP32, the factors are useless in that direction, and refinement must
// stall — the deliberate trigger for the FP64 fallback.
func nearDepSystem(n int, tau float64, seed uint64) (*matrix.Dense, []float64) {
	a, b := matrix.RandomSystem(n, seed)
	last := a.Row(n - 1)
	for j := range last {
		last[j] = 0
	}
	for i := 0; i < 3; i++ {
		row := a.Row(i)
		for j := range last {
			last[j] += row[j] / 3
		}
	}
	noise := matrix.NewPRNG(seed ^ 0xabcdef)
	for j := range last {
		last[j] += tau * (noise.Float64() - 0.5)
	}
	return a, b
}

// TestSolveMixedGoldenResiduals is the satellite-3 golden table: with the
// scalar FP32 kernel (bit-identical on every platform) the mixed solver
// is fully deterministic, so the refinement-iteration counts and final
// scaled residuals over graded condition numbers are pinned exactly.
// The last row is the deliberately ill-conditioned case — a row
// dependency below FP32 resolution — which must stall refinement and
// fall back to FP64 with a typed report.
func TestSolveMixedGoldenResiduals(t *testing.T) {
	forceScalarKernels(t)
	const n, seed = 160, 42
	golden := []struct {
		decades  float64
		iters    int
		residual float64
	}{
		{0, 2, 0.0008445088614506299},
		{3, 2, 0.00079872877232569587},
		{6, 2, 0.0002604551670923258},
		{9, 2, 0.00049888359326950599},
		{12, 2, 0.00048334391140113502},
	}
	for _, g := range golden {
		a, b := gradedSystem(n, g.decades, seed)
		x, res, rep, err := SolveMixed(a, b, Options{NB: 32, Workers: 2})
		if err != nil {
			t.Fatalf("decades=%g: %v", g.decades, err)
		}
		if rep.FellBack || rep.Reason != FallbackNone {
			t.Fatalf("decades=%g: unexpected fallback (%v)", g.decades, rep.Reason)
		}
		if rep.Iterations != g.iters {
			t.Errorf("decades=%g: %d refinement iters, golden %d", g.decades, rep.Iterations, g.iters)
		}
		if rel := math.Abs(res-g.residual) / g.residual; rel > 1e-12 {
			t.Errorf("decades=%g: residual %.17g, golden %.17g (rel %g)", g.decades, res, g.residual, rel)
		}
		if rep.Residual != res || len(x) != n {
			t.Errorf("decades=%g: report/residual mismatch", g.decades)
		}
	}

	// Ill-conditioned golden: dependency at tau = 1e-9 ≪ eps32·‖row‖.
	a, b := nearDepSystem(96, 1e-9, 7)
	_, res, rep, err := SolveMixed(a, b, Options{NB: 32, Workers: 2})
	if err != nil {
		t.Fatalf("neardep: %v", err)
	}
	if !rep.FellBack || rep.Reason != FallbackStalled {
		t.Fatalf("neardep: FellBack=%v Reason=%v, want stalled FP64 fallback", rep.FellBack, rep.Reason)
	}
	if rep.Iterations != 2 {
		t.Errorf("neardep: stalled after %d iters, golden 2", rep.Iterations)
	}
	const goldenRes = 0.0074527162129245936
	if rel := math.Abs(res-goldenRes) / goldenRes; rel > 1e-12 {
		t.Errorf("neardep: fallback residual %.17g, golden %.17g", res, goldenRes)
	}
	if res >= matrix.ResidualThreshold {
		t.Errorf("neardep: FP64 fallback residual %g fails the HPL bar", res)
	}
}

// TestSolveMixedActiveKernel runs the same graded systems through
// whichever micro-kernel the CPU actually uses (the configuration the
// benchmark rows are produced with) and asserts the portable contract:
// convergence without fallback, a handful of iterations, and a residual
// passing the HPL bar.
func TestSolveMixedActiveKernel(t *testing.T) {
	for _, decades := range []float64{0, 6, 12} {
		a, b := gradedSystem(160, decades, 42)
		_, res, rep, err := SolveMixed(a, b, Options{NB: 32, Workers: 2})
		if err != nil {
			t.Fatalf("decades=%g: %v", decades, err)
		}
		if rep.FellBack {
			t.Fatalf("decades=%g: unexpected fallback (%v)", decades, rep.Reason)
		}
		if rep.Iterations < 1 || rep.Iterations > 6 {
			t.Errorf("decades=%g: %d iterations, want 1..6", decades, rep.Iterations)
		}
		if res >= matrix.ResidualThreshold {
			t.Errorf("decades=%g: residual %g fails the HPL bar", decades, res)
		}
	}
}

// TestSolveMixedMatchesFP64 compares the accepted mixed solution against
// the plain FP64 solve: both pass the bar, and the solutions agree to
// refinement accuracy.
func TestSolveMixedMatchesFP64(t *testing.T) {
	n := 200
	a, b := matrix.RandomSystem(n, 99)
	xm, resM, rep, err := SolveMixed(a, b, Options{NB: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FellBack {
		t.Fatalf("well-conditioned system fell back: %v", rep.Reason)
	}
	x64, res64, err := Solve(a, b, Options{NB: 32, Workers: 2}, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if resM >= matrix.ResidualThreshold || res64 >= matrix.ResidualThreshold {
		t.Fatalf("residuals %g / %g fail the bar", resM, res64)
	}
	var norm, diff float64
	for i := range xm {
		if v := math.Abs(x64[i]); v > norm {
			norm = v
		}
		if d := math.Abs(xm[i] - x64[i]); d > diff {
			diff = d
		}
	}
	if diff > 1e-6*(norm+1) {
		t.Errorf("mixed and FP64 solutions differ by %g (‖x‖ = %g)", diff, norm)
	}
}

// subnormalColumn rescales column col of a to ~1e-41: nonzero and
// factorable in float64, but below the float32 normal range, so the FP32
// panel factorization hits its subnormal-pivot guard deterministically —
// singular in FP32, regular in FP64.
func subnormalColumn(a *matrix.Dense, col int) {
	for i := 0; i < a.Rows; i++ {
		a.Set(i, col, float64(i+1)*1e-41)
	}
}

// TestSolveMixedSingularFP32Fallback: a matrix that is singular in
// float32 (one column entirely below the FP32 normal range) but regular
// in float64 must trip the FP32 factorization, fall back with
// FallbackSingular, and still solve in FP64.
func TestSolveMixedSingularFP32Fallback(t *testing.T) {
	n := 12
	a, b := matrix.RandomSystem(n, 5)
	subnormalColumn(a, 5)
	x, res, rep, err := SolveMixed(a, b, Options{NB: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FellBack || rep.Reason != FallbackSingular {
		t.Fatalf("FellBack=%v Reason=%v, want fp32-singular fallback", rep.FellBack, rep.Reason)
	}
	if rep.Iterations != 0 {
		t.Errorf("iterations = %d before factorization failure, want 0", rep.Iterations)
	}
	if len(x) != n || res >= matrix.ResidualThreshold {
		t.Errorf("FP64 fallback residual %g fails the HPL bar", res)
	}
}

// TestSolveMixedObservability: spans land on the attached recorder
// ("SFactor" + one "Refine" per iteration; "FP64Fallback" on the fallback
// path) and the lu.* counters advance.
func TestSolveMixedObservability(t *testing.T) {
	reg := metrics.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	rec := new(trace.Recorder)
	a, b := matrix.RandomSystem(100, 3)
	_, _, rep, err := SolveMixed(a, b, Options{NB: 32, Workers: 2, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range rec.Spans() {
		counts[s.Name]++
	}
	if counts["SFactor"] != 1 {
		t.Errorf("SFactor spans = %d, want 1", counts["SFactor"])
	}
	if counts["Refine"] != rep.Iterations {
		t.Errorf("Refine spans = %d, want %d", counts["Refine"], rep.Iterations)
	}
	if counts["FP64Fallback"] != 0 {
		t.Errorf("unexpected FP64Fallback span on the accepted path")
	}

	// Fallback path: singular-in-FP32 matrix emits the fallback span.
	rec2 := new(trace.Recorder)
	a2, b2 := matrix.RandomSystem(8, 5)
	subnormalColumn(a2, 3)
	rep2, err2 := func() (MixedReport, error) {
		_, _, r, e := SolveMixed(a2, b2, Options{NB: 4, Trace: rec2})
		return r, e
	}()
	if err2 != nil || !rep2.FellBack || rep2.Reason != FallbackSingular {
		t.Fatalf("expected clean fp32-singular fallback, got rep=%+v err=%v", rep2, err2)
	}
	saw := false
	for _, s := range rec2.Spans() {
		if s.Name == "FP64Fallback" {
			saw = true
		}
	}
	if !saw {
		t.Error("no FP64Fallback span on the fallback path")
	}

	snap := reg.Snapshot()
	if snap.Counters["lu.mixed_solves"] != 2 {
		t.Errorf("lu.mixed_solves = %d, want 2", snap.Counters["lu.mixed_solves"])
	}
	if got, want := snap.Counters["lu.refine_iters"], int64(rep.Iterations+rep2.Iterations); got != want {
		t.Errorf("lu.refine_iters = %d, want %d", got, want)
	}
	if snap.Counters["lu.mixed_fallbacks"] != 1 {
		t.Errorf("lu.mixed_fallbacks = %d, want 1", snap.Counters["lu.mixed_fallbacks"])
	}
}

// TestSolveMixedCtxCancellation: a pre-cancelled context returns its
// error with no solution; an open context is bitwise identical to the
// plain entry point.
func TestSolveMixedCtxCancellation(t *testing.T) {
	a, b := matrix.RandomSystem(64, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := SolveMixedCtx(ctx, a, b, Options{NB: 16}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	x1, r1, rep1, err1 := SolveMixedCtx(context.Background(), a, b, Options{NB: 16})
	x2, r2, rep2, err2 := SolveMixed(a, b, Options{NB: 16})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v / %v", err1, err2)
	}
	if r1 != r2 || rep1 != rep2 {
		t.Fatalf("ctx and plain paths disagree: %v/%+v vs %v/%+v", r1, rep1, r2, rep2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("solutions differ bitwise")
		}
	}
}

// TestSolveMixedPanics pins the argument contract.
func TestSolveMixedPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected non-square panic")
			}
		}()
		SolveMixed(matrix.NewDense(3, 4), make([]float64, 3), Options{})
	}()
	defer func() {
		if recover() == nil {
			t.Error("expected rhs-length panic")
		}
	}()
	SolveMixed(matrix.NewDense(3, 3), make([]float64, 2), Options{})
}

// TestPrecisionModeRoundTrip covers the flag vocabulary.
func TestPrecisionModeRoundTrip(t *testing.T) {
	for _, m := range []PrecisionMode{PrecisionFP64, PrecisionMixed} {
		got, err := ParsePrecisionMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip of %v: got %v, err %v", m, got, err)
		}
	}
	if _, err := ParsePrecisionMode("fp16"); err == nil {
		t.Error("expected error for unknown mode")
	}
	if s := PrecisionMode(99).String(); s != "PrecisionMode(99)" {
		t.Errorf("unknown mode stringer = %q", s)
	}
	for want, r := range map[string]FallbackReason{
		"none": FallbackNone, "fp32-singular": FallbackSingular,
		"refinement-stalled": FallbackStalled, "non-finite": FallbackNonFinite,
	} {
		if r.String() != want {
			t.Errorf("reason %d String = %q, want %q", int(r), r.String(), want)
		}
	}
}

// FuzzMixedRefine is the satellite-2 solver fuzz: for arbitrary sizes,
// condition grades and near-dependency scales, the mixed solver must
// either return a residual that PASSES the HPL bar or report a typed
// fallback — never a silent wrong answer. Run with
// `go test -fuzz=FuzzMixedRefine` for a deep hunt.
func FuzzMixedRefine(f *testing.F) {
	f.Add(uint64(1), uint8(20), uint8(0), uint8(0))
	f.Add(uint64(42), uint8(40), uint8(8), uint8(0))
	f.Add(uint64(7), uint8(33), uint8(0), uint8(9))  // near-dependent rows
	f.Add(uint64(9), uint8(1), uint8(13), uint8(0))  // n = 2 extreme grading
	f.Add(uint64(3), uint8(24), uint8(5), uint8(12)) // graded + dependency
	f.Fuzz(func(t *testing.T, seed uint64, nR, decR, tauR uint8) {
		n := 2 + int(nR)%48
		decades := float64(int(decR) % 14)
		a, b := gradedSystem(n, decades, seed)
		if tauR != 0 && n > 4 {
			tau := math.Pow(10, -float64(int(tauR)%13))
			ad, bd := nearDepSystem(n, tau, seed)
			a, b = ad, bd
		}
		x, res, rep, err := SolveMixed(a, b, Options{NB: 8, Workers: 2})
		if err != nil {
			// Only a failed FP64 fallback may error, and then it must have
			// been reported as a fallback.
			if !rep.FellBack || rep.Reason == FallbackNone {
				t.Fatalf("error %v without a typed fallback report", err)
			}
			return
		}
		if len(x) != n {
			t.Fatalf("solution length %d, want %d", len(x), n)
		}
		if rep.FellBack && rep.Reason == FallbackNone {
			t.Fatal("fallback without a reason")
		}
		if !rep.FellBack && rep.Reason != FallbackNone {
			t.Fatalf("reason %v without fallback", rep.Reason)
		}
		// The contract: no silent wrong answers. An accepted FP32-path
		// solution must pass the HPL residual bar.
		if !rep.FellBack && res >= matrix.ResidualThreshold {
			t.Fatalf("silent wrong answer: residual %g with no fallback (n=%d dec=%g)", res, n, decades)
		}
	})
}
