package lu

import (
	"sync/atomic"

	"phihpl/internal/metrics"
)

// Metrics hooks for the mixed-precision solver. All sinks default to nil:
// the uninstrumented SolveMixed pays a few atomic pointer loads and
// nil-safe counter calls per solve and allocates nothing. (Spans go
// through Options.Trace, as for every other driver in this package.)
var (
	mMixedSolves    atomic.Pointer[metrics.Counter]
	mRefineIters    atomic.Pointer[metrics.Counter]
	mMixedFallbacks atomic.Pointer[metrics.Counter]
)

// SetMetrics attaches a metrics registry to the mixed-precision solver
// (nil detaches). Counters: lu.mixed_solves (SolveMixed invocations),
// lu.refine_iters (FP64 refinement correction solves), lu.mixed_fallbacks
// (solves that abandoned the FP32 factors for the FP64 path).
func SetMetrics(reg *metrics.Registry) {
	mMixedSolves.Store(reg.Counter("lu.mixed_solves"))
	mRefineIters.Store(reg.Counter("lu.refine_iters"))
	mMixedFallbacks.Store(reg.Counter("lu.mixed_fallbacks"))
}
