package lu

import (
	"testing"
	"testing/quick"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
)

type driver struct {
	name string
	f    func(*matrix.Dense, []int, Options) error
}

var drivers = []driver{
	{"sequential", Sequential},
	{"static", StaticLookahead},
	{"dynamic", Dynamic},
}

func TestDriversBitwiseIdentical(t *testing.T) {
	// The paper's claim in miniature: dynamic scheduling reorders only
	// independent work, so factors and pivots are *identical* — not just
	// numerically close — across drivers.
	for _, n := range []int{16, 48, 100, 129} {
		ref := matrix.RandomGeneral(n, n, uint64(n))
		want := ref.Clone()
		wantPiv := make([]int, n)
		if err := blas.Dgetrf(want, wantPiv, 32); err != nil {
			t.Fatal(err)
		}
		for _, d := range drivers {
			for _, workers := range []int{1, 4} {
				got := ref.Clone()
				piv := make([]int, n)
				if err := d.f(got, piv, Options{NB: 32, Workers: workers}); err != nil {
					t.Fatalf("%s n=%d: %v", d.name, n, err)
				}
				if !matrix.Equal(got, want) {
					t.Errorf("%s n=%d w=%d: factors differ (maxdiff %g)",
						d.name, n, workers, matrix.MaxDiff(got, want))
				}
				for i := range piv {
					if piv[i] != wantPiv[i] {
						t.Errorf("%s n=%d w=%d: pivot[%d] = %d, want %d",
							d.name, n, workers, i, piv[i], wantPiv[i])
						break
					}
				}
			}
		}
	}
}

func TestSolveResidualAllDrivers(t *testing.T) {
	for _, d := range drivers {
		for _, n := range []int{10, 64, 150} {
			a, b := matrix.RandomSystem(n, uint64(n)+7)
			x, res, err := Solve(a, b, Options{NB: 24, Workers: 3}, d.f)
			if err != nil {
				t.Fatalf("%s n=%d: %v", d.name, n, err)
			}
			if len(x) != n {
				t.Fatalf("%s: bad solution length", d.name)
			}
			if res > matrix.ResidualThreshold {
				t.Errorf("%s n=%d: residual %g FAILED (threshold %g)",
					d.name, n, res, matrix.ResidualThreshold)
			}
		}
	}
}

func TestNBClampAndDefaults(t *testing.T) {
	// NB larger than n, zero workers: must still work.
	n := 20
	a, b := matrix.RandomSystem(n, 3)
	for _, d := range drivers {
		_, res, err := Solve(a, b, Options{NB: 999, Workers: 0}, d.f)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if res > matrix.ResidualThreshold {
			t.Errorf("%s: residual %g", d.name, res)
		}
	}
	// Zero NB takes the default.
	o := Options{}.withDefaults(1000)
	if o.NB != 64 || o.Workers != 1 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestSingularMatrixReported(t *testing.T) {
	for _, d := range drivers {
		a := matrix.NewDense(12, 12) // identically zero
		piv := make([]int, 12)
		if err := d.f(a, piv, Options{NB: 4, Workers: 2}); err == nil {
			t.Errorf("%s: expected singularity error", d.name)
		}
	}
}

func TestNonSquarePanics(t *testing.T) {
	for _, d := range drivers[1:] { // static and dynamic use newState
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for non-square", d.name)
				}
			}()
			d.f(matrix.NewDense(3, 4), make([]int, 3), Options{NB: 2})
		}()
	}
}

func TestDynamicStats(t *testing.T) {
	n := 60
	a := matrix.RandomGeneral(n, n, 11)
	piv := make([]int, n)
	stats, err := DynamicStats(a, piv, Options{NB: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	np := (n + 9) / 10
	wantTasks := int64(np + np*(np-1)/2)
	if stats.TasksComplete != wantTasks {
		t.Errorf("tasks = %d, want %d", stats.TasksComplete, wantTasks)
	}
	if stats.NextCalls < wantTasks {
		t.Errorf("NextCalls = %d < tasks", stats.NextCalls)
	}
	// The result must still be correct.
	want := matrix.RandomGeneral(n, n, 11)
	wantPiv := make([]int, n)
	if err := blas.Dgetrf(want, wantPiv, 10); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a, want) {
		t.Error("DynamicStats factors differ from reference")
	}
}

func TestPanelHelpers(t *testing.T) {
	if panels(100, 30) != 4 {
		t.Error("panels")
	}
	lo, hi := panelCols(100, 30, 3)
	if lo != 90 || hi != 100 {
		t.Errorf("last panel = [%d,%d)", lo, hi)
	}
}

func TestGlobalPivotsLengthPanic(t *testing.T) {
	a := matrix.RandomGeneral(8, 8, 1)
	st := newState(a, Options{NB: 4, Workers: 1}.withDefaults(8))
	st.piv[0] = []int{0, 1, 2, 3}
	st.piv[1] = []int{0, 1, 2, 3}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	st.globalPivots(make([]int, 7))
}

// Property: for random sizes/blockings/seeds, dynamic == sequential
// bitwise and solves pass the residual check.
func TestDynamicEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, nRaw, nbRaw, wRaw uint8) bool {
		n := 8 + int(nRaw)%60
		nb := 2 + int(nbRaw)%16
		w := 1 + int(wRaw)%6
		a := matrix.RandomGeneral(n, n, seed)
		d := a.Clone()
		dp := make([]int, n)
		if err := Dynamic(d, dp, Options{NB: nb, Workers: w}); err != nil {
			return true // singular: skip
		}
		s := a.Clone()
		sp := make([]int, n)
		if err := blas.Dgetrf(s, sp, nb); err != nil {
			return true
		}
		if !matrix.Equal(d, s) {
			return false
		}
		for i := range dp {
			if dp[i] != sp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
