package lu

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"phihpl/internal/matrix"
	"phihpl/internal/pool"
	"phihpl/internal/testutil"
)

// countCtx cancels itself deterministically after its Err method has been
// consulted `after` times — scheduler-independent mid-run cancellation.
type countCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

var ctxDrivers = []struct {
	name   string
	driver func(context.Context, *matrix.Dense, []int, Options) error
}{
	{"SequentialCtx", SequentialCtx},
	{"StaticLookaheadCtx", StaticLookaheadCtx},
	{"DynamicCtx", DynamicCtx},
}

// A completed ctx run must be bitwise identical to the non-ctx reference.
func TestCtxDriversBitwiseIdentical(t *testing.T) {
	defer testutil.NoLeaks(t)()
	n := 96
	ref := matrix.RandomGeneral(n, n, 3)
	want := ref.Clone()
	wantPiv := make([]int, n)
	if err := Sequential(want, wantPiv, Options{NB: 16}); err != nil {
		t.Fatal(err)
	}
	for _, d := range ctxDrivers {
		t.Run(d.name, func(t *testing.T) {
			got := ref.Clone()
			piv := make([]int, n)
			if err := d.driver(context.Background(), got, piv, Options{NB: 16, Workers: 3}); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want) {
				t.Error("factors differ bitwise from Sequential")
			}
			for i := range piv {
				if piv[i] != wantPiv[i] {
					t.Fatalf("pivot %d differs: %d vs %d", i, piv[i], wantPiv[i])
				}
			}
		})
	}
}

func TestCtxDriversAlreadyCancelled(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, d := range ctxDrivers {
		t.Run(d.name, func(t *testing.T) {
			a := matrix.RandomGeneral(64, 64, 5)
			before := a.Clone()
			err := d.driver(ctx, a, make([]int, 64), Options{NB: 16, Workers: 2})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !matrix.Equal(a, before) {
				t.Error("cancelled-before-start driver modified the matrix")
			}
		})
	}
}

func TestCtxDriversCancelMidRun(t *testing.T) {
	defer testutil.NoLeaks(t)()
	for _, d := range ctxDrivers {
		t.Run(d.name, func(t *testing.T) {
			a := matrix.RandomGeneral(128, 128, 7)
			ctx := &countCtx{Context: context.Background(), after: 3}
			err := d.driver(ctx, a, make([]int, 128), Options{NB: 8, Workers: 2})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// A panic in a task kernel must come back as a typed *pool.PanicError from
// every driver — never crash the process, never leak a worker.
func TestCtxDriversPanicContained(t *testing.T) {
	defer testutil.NoLeaks(t)()
	testHookPanelFact = func(p int) {
		if p == 1 {
			panic("panel kernel blew up")
		}
	}
	defer func() { testHookPanelFact = nil }()
	for _, d := range ctxDrivers {
		t.Run(d.name, func(t *testing.T) {
			a := matrix.RandomGeneral(96, 96, 9)
			err := d.driver(context.Background(), a, make([]int, 96), Options{NB: 16, Workers: 3})
			var pe *pool.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *pool.PanicError", err)
			}
			if pe.Value != "panel kernel blew up" {
				t.Errorf("recovered value = %v", pe.Value)
			}
		})
	}
}

// The non-ctx entry points contain the same panic (no process crash).
func TestNonCtxDriversPanicContained(t *testing.T) {
	defer testutil.NoLeaks(t)()
	testHookPanelFact = func(p int) { panic("boom") }
	defer func() { testHookPanelFact = nil }()
	for _, d := range []struct {
		name   string
		driver func(*matrix.Dense, []int, Options) error
	}{
		{"StaticLookahead", StaticLookahead},
		{"Dynamic", Dynamic},
	} {
		t.Run(d.name, func(t *testing.T) {
			a := matrix.RandomGeneral(64, 64, 11)
			err := d.driver(a, make([]int, 64), Options{NB: 16, Workers: 2})
			var pe *pool.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *pool.PanicError", err)
			}
		})
	}
}

func TestSolveCtx(t *testing.T) {
	defer testutil.NoLeaks(t)()
	n := 80
	a, b := matrix.RandomSystem(n, 13)
	x, res, err := SolveCtx(context.Background(), a, b, Options{NB: 16, Workers: 2}, DynamicCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != n || res > 16 {
		t.Errorf("bad solve: res=%g", res)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SolveCtx(ctx, a, b, Options{NB: 16}, SequentialCtx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled SolveCtx: err = %v", err)
	}
}
