package lu

import (
	"math"
	"testing"

	"phihpl/internal/matrix"
)

// gradedSystem builds an increasingly ill-conditioned system by scaling
// row i of a random matrix by decade^(i/n), so refinement has something
// to recover.
func gradedSystem(n int, decades float64, seed uint64) (*matrix.Dense, []float64) {
	a, b := matrix.RandomSystem(n, seed)
	for i := 0; i < n; i++ {
		s := math.Pow(10, -decades*float64(i)/float64(n))
		row := a.Row(i)
		for j := range row {
			row[j] *= s
		}
		b[i] *= s
	}
	return a, b
}

func TestSolveRefinedWellConditioned(t *testing.T) {
	a, b := matrix.RandomSystem(80, 3)
	x, res, err := SolveRefined(a, b, Options{NB: 16, Workers: 2}, Dynamic, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 80 || res > matrix.ResidualThreshold {
		t.Errorf("res = %g", res)
	}
}

func TestSolveRefinedImprovesGradedSystem(t *testing.T) {
	a, b := gradedSystem(100, 8, 11)
	x0, res0, err := Solve(a, b, Options{NB: 20, Workers: 2}, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	xr, resR, err := SolveRefined(a, b, Options{NB: 20, Workers: 2}, Sequential, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Refinement never worsens the true residual norm, and typically
	// improves it on a graded system.
	n0 := residNorm(a, x0, b)
	nr := residNorm(a, xr, b)
	if nr > n0*(1+1e-12) {
		t.Errorf("refinement worsened residual: %g -> %g", n0, nr)
	}
	if resR > res0*(1+1e-12) {
		t.Errorf("scaled residual worsened: %g -> %g", res0, resR)
	}
}

func TestSolveRefinedZeroStepsEqualsPlainSolve(t *testing.T) {
	a, b := matrix.RandomSystem(40, 7)
	x0, _, _ := Solve(a, b, Options{NB: 8}, Sequential)
	xr, _, err := SolveRefined(a, b, Options{NB: 8}, Sequential, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x0 {
		if x0[i] != xr[i] {
			t.Fatal("zero-step refinement must equal the plain solve")
		}
	}
}

func TestSolveRefinedSingular(t *testing.T) {
	a := matrix.NewDense(10, 10)
	if _, _, err := SolveRefined(a, make([]float64, 10), Options{NB: 4}, Sequential, 2); err == nil {
		t.Error("expected singularity error")
	}
}

func TestRecursivePanelOption(t *testing.T) {
	// Dynamic with recursive panels is bitwise identical to plain dynamic.
	n := 120
	a := matrix.RandomGeneral(n, n, 13)
	plain := a.Clone()
	p1 := make([]int, n)
	if err := Dynamic(plain, p1, Options{NB: 24, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	rec := a.Clone()
	p2 := make([]int, n)
	if err := Dynamic(rec, p2, Options{NB: 24, Workers: 4, RecursivePanel: true}); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(plain, rec) {
		t.Errorf("recursive-panel factors differ (maxdiff %g)", matrix.MaxDiff(plain, rec))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pivot %d differs", i)
		}
	}
}

func TestRecursivePanelStatic(t *testing.T) {
	n := 90
	a, b := matrix.RandomSystem(n, 23)
	_, res, err := Solve(a, b, Options{NB: 18, Workers: 3, RecursivePanel: true}, StaticLookahead)
	if err != nil {
		t.Fatal(err)
	}
	if res > matrix.ResidualThreshold {
		t.Errorf("residual %g", res)
	}
}
