package lu

import (
	"phihpl/internal/blas"
	"phihpl/internal/matrix"
)

// SolveRefined factors a copy of A with the given driver and solves
// A·x = b, then applies up to `steps` rounds of classical iterative
// refinement: r = b − A·x̂, A·δ = r, x̂ += δ. Refinement stops early when
// the residual norm no longer improves. It returns the refined solution
// and its scaled HPL residual.
//
// HPL itself solves once; refinement is the standard LAPACK-style
// extension for ill-conditioned systems and is exercised by the tests on
// graded matrices.
func SolveRefined(a *matrix.Dense, b []float64, opts Options,
	driver func(*matrix.Dense, []int, Options) error, steps int) (x []float64, residual float64, err error) {
	lu := a.Clone()
	piv := make([]int, a.Rows)
	if err := driver(lu, piv, opts); err != nil {
		return nil, 0, err
	}
	x = blas.LUSolve(lu, piv, b)

	bestNorm := residNorm(a, x, b)
	for s := 0; s < steps; s++ {
		r := residVec(a, x, b)
		delta := blas.LUSolve(lu, piv, r)
		cand := make([]float64, len(x))
		copy(cand, x)
		blas.Daxpy(1, delta, cand)
		if n := residNorm(a, cand, b); n < bestNorm {
			x, bestNorm = cand, n
		} else {
			break
		}
	}
	return x, matrix.Residual(a, x, b), nil
}

// residVec returns b − A·x.
func residVec(a *matrix.Dense, x, b []float64) []float64 {
	r := make([]float64, len(b))
	copy(r, b)
	blas.Dgemv(false, -1, a, x, 1, r)
	return r
}

func residNorm(a *matrix.Dense, x, b []float64) float64 {
	return matrix.VecNormInf(residVec(a, x, b))
}
