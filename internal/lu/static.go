package lu

import (
	"sync"

	"phihpl/internal/matrix"
)

// StaticLookahead factors a in place using the paper's baseline scheme
// (Section IV-B): stages separated by a global barrier, with the classic
// look-ahead twist — at each stage the next panel's update is done first
// and its factorization overlaps the remaining trailing updates, executed
// by a statically partitioned worker pool.
//
// The factors and pivots are bitwise identical to Sequential and Dynamic.
func StaticLookahead(a *matrix.Dense, piv []int, opts Options) error {
	opts = opts.withDefaults(a.Cols)
	st := newState(a, opts)
	var firstErr error

	// Stage -1: factor panel 0.
	if err := st.factorPanel(0); err != nil && firstErr == nil {
		firstErr = err
	}

	for s := 0; s < st.np; s++ {
		last := s == st.np-1
		if last {
			break // nothing right of the final panel
		}
		// Look-ahead target first: update panel s+1 with stage s…
		st.updatePanel(s, s+1, opts.Workers)

		// …then factor it concurrently with the rest of the stage-s
		// trailing updates (p = s+2 … np-1).
		var wg sync.WaitGroup
		errCh := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := st.factorPanel(s + 1); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}()

		// Static partition of the remaining panels over the workers.
		rest := st.np - (s + 2)
		if rest > 0 {
			workers := opts.Workers
			if workers > rest {
				workers = rest
			}
			next := make(chan int, rest)
			for p := s + 2; p < st.np; p++ {
				next <- p
			}
			close(next)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for p := range next {
						st.updatePanel(s, p, 1)
					}
				}()
			}
		}
		wg.Wait() // the global barrier the dynamic scheme eliminates
		select {
		case err := <-errCh:
			if firstErr == nil {
				firstErr = err
			}
		default:
		}
	}

	st.finishLeftSwaps()
	st.globalPivots(piv)
	return firstErr
}
