package lu

import (
	"context"
	"sync"
	"sync/atomic"

	"phihpl/internal/matrix"
	"phihpl/internal/pool"
)

// StaticLookahead factors a in place using the paper's baseline scheme
// (Section IV-B): stages separated by a global barrier, with the classic
// look-ahead twist — at each stage the next panel's update is done first
// and its factorization overlaps the remaining trailing updates, executed
// by a statically partitioned worker pool.
//
// The factors and pivots are bitwise identical to Sequential and Dynamic.
// A panic in any stage goroutine is contained and returned as a typed
// *pool.PanicError after the stage barrier, never crashing the process.
func StaticLookahead(a *matrix.Dense, piv []int, opts Options) error {
	return runStatic(context.Background(), a, piv, opts)
}

// StaticLookaheadCtx is StaticLookahead under a context: cancellation is
// observed at every stage barrier — the in-flight stage finishes (its
// goroutines are always drained), no further stage starts, and ctx.Err()
// is returned, leaving the matrix partially factored.
func StaticLookaheadCtx(ctx context.Context, a *matrix.Dense, piv []int, opts Options) error {
	return runStatic(ctx, a, piv, opts)
}

// runStatic is the shared driver behind StaticLookahead and
// StaticLookaheadCtx.
func runStatic(ctx context.Context, a *matrix.Dense, piv []int, opts Options) error {
	opts = opts.withDefaults(a.Cols)
	st := newState(a, opts)
	if err := ctx.Err(); err != nil {
		return err
	}
	var (
		firstErr error
		abort    atomic.Bool // containment tripped: workers stop early
		perrMu   sync.Mutex
		perr     *pool.PanicError
	)

	// Stage -1: factor panel 0 (on the caller, behind the recover barrier).
	if pe := protect(-1, func() {
		if err := st.factorPanel(0); err != nil && firstErr == nil {
			firstErr = err
		}
	}); pe != nil {
		return pe
	}

	for s := 0; s < st.np; s++ {
		last := s == st.np-1
		if last {
			break // nothing right of the final panel
		}
		// Super-step boundary: the cancellation check of the ctx variant.
		if err := ctx.Err(); err != nil {
			return err
		}
		// Look-ahead target first: update panel s+1 with stage s…
		if pe := protect(-1, func() { st.updatePanel(s, s+1, opts.Workers) }); pe != nil {
			return pe
		}

		// …then factor it concurrently with the rest of the stage-s
		// trailing updates (p = s+2 … np-1).
		var wg sync.WaitGroup
		errCh := make(chan error, 1)
		contain := func(pe *pool.PanicError) {
			if pe == nil {
				return
			}
			abort.Store(true)
			perrMu.Lock()
			if perr == nil {
				perr = pe
			}
			perrMu.Unlock()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			contain(protect(0, func() {
				if err := st.factorPanel(s + 1); err != nil {
					select {
					case errCh <- err:
					default:
					}
				}
			}))
		}()

		// Static partition of the remaining panels over the workers.
		rest := st.np - (s + 2)
		if rest > 0 {
			workers := opts.Workers
			if workers > rest {
				workers = rest
			}
			next := make(chan int, rest)
			for p := s + 2; p < st.np; p++ {
				next <- p
			}
			close(next)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for p := range next {
						if abort.Load() {
							return // containment tripped: stop this worker
						}
						contain(protect(w+1, func() { st.updatePanel(s, p, 1) }))
					}
				}(w)
			}
		}
		wg.Wait() // the global barrier the dynamic scheme eliminates
		perrMu.Lock()
		pe := perr
		perrMu.Unlock()
		if pe != nil {
			return pe
		}
		select {
		case err := <-errCh:
			if firstErr == nil {
				firstErr = err
			}
		default:
		}
	}

	st.finishLeftSwaps()
	st.globalPivots(piv)
	return firstErr
}
