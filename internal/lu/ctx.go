package lu

import (
	"context"
	"runtime/debug"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/pool"
)

// protect runs fn behind a recover barrier, mirroring the pool's internal
// one: a panic is contained into a typed *pool.PanicError (worker = the
// lane that ran it, -1 for the caller) instead of propagating.
func protect(worker int, fn func()) (pe *pool.PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = &pool.PanicError{Worker: worker, Value: v, Stack: string(debug.Stack())}
		}
	}()
	fn()
	return nil
}

// SequentialCtx factors a in place like Sequential, but observes ctx at
// every stage boundary: once ctx is done, no further panel is factored and
// ctx.Err() is returned, leaving the matrix partially factored. It runs
// the same blocked right-looking elimination through the shared task
// kernels, so a completed SequentialCtx run is bitwise identical to
// Sequential (and to the concurrent drivers). A panic inside a kernel is
// returned as a *pool.PanicError.
func SequentialCtx(ctx context.Context, a *matrix.Dense, piv []int, opts Options) error {
	opts = opts.withDefaults(a.Cols)
	st := newState(a, opts)
	var firstErr error
	for s := 0; s < st.np; s++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if pe := protect(-1, func() {
			if err := st.factorPanel(s); err != nil && firstErr == nil {
				firstErr = err
			}
			for p := s + 1; p < st.np; p++ {
				st.updatePanel(s, p, opts.Workers)
			}
		}); pe != nil {
			return pe
		}
	}
	st.finishLeftSwaps()
	st.globalPivots(piv)
	return firstErr
}

// SolveCtx factors a copy of A under ctx and solves A·x = b, returning the
// solution and the scaled HPL residual. driver is one of SequentialCtx,
// StaticLookaheadCtx or DynamicCtx. On cancellation the driver's ctx error
// is returned and no solution is produced.
func SolveCtx(ctx context.Context, a *matrix.Dense, b []float64, opts Options,
	driver func(context.Context, *matrix.Dense, []int, Options) error) (x []float64, residual float64, err error) {
	lu := a.Clone()
	piv := make([]int, a.Rows)
	if err := driver(ctx, lu, piv, opts); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	x = blas.LUSolve(lu, piv, b)
	return x, matrix.Residual(a, x, b), nil
}
