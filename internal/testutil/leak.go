// Package testutil holds shared test helpers. It must only be imported
// from _test.go files.
package testutil

import (
	"runtime"
	"strings"
	"time"
)

// failer is the subset of *testing.T we need (avoids importing testing
// into non-test code paths).
type failer interface {
	Helper()
	Errorf(format string, args ...any)
}

// NoLeaks snapshots this package's goroutines and returns a function
// (for defer) that fails the test if project goroutines spawned during
// the test are still alive shortly after it ends. The persistent
// internal/pool worker goroutines are exempt: they are created once per
// process by design and never stop.
//
//	defer testutil.NoLeaks(t)()
func NoLeaks(t failer) func() {
	t.Helper()
	before := projectGoroutines()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g)
		}
	}
}

func leakedSince(before map[string]int) []string {
	var leaked []string
	for stack, n := range projectGoroutines() {
		if n > before[stack] {
			leaked = append(leaked, stack)
		}
	}
	return leaked
}

// projectGoroutines returns the stacks of live goroutines that are
// executing this module's code, keyed by their (normalized) stack text,
// excluding the persistent pool workers.
func projectGoroutines() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	out := map[string]int{}
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "phihpl/internal/") {
			continue // runtime / testing machinery
		}
		// Global worker pool: persistent by design. Match the file, not
		// the symbol — when ensure() is inlined into another package's
		// caller, the worker's symbol carries that caller's prefix
		// (e.g. hpl.newPipeline.Size.ensure.func1.1).
		if strings.Contains(g, "phihpl/internal/pool.") ||
			strings.Contains(g, "internal/pool/pool.go") {
			continue
		}
		if strings.Contains(g, "phihpl/internal/testutil.") &&
			!strings.Contains(g, "created by phihpl") {
			continue // ourselves
		}
		out[normalizeStack(g)]++
	}
	return out
}

// normalizeStack strips goroutine ids and argument values so identical
// code paths compare equal across snapshots.
func normalizeStack(g string) string {
	var out []string
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "goroutine ") {
			continue
		}
		if i := strings.Index(line, "("); i > 0 && !strings.HasPrefix(line, "\t") {
			line = line[:i]
		}
		if strings.HasPrefix(line, "\t") {
			if i := strings.Index(line, " +0x"); i > 0 {
				line = line[:i]
			}
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
