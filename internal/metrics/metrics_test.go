package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Errorf("gauge = %v", g.Value())
	}
}

// Instruments must be safe under concurrent mutation (run with -race) and
// lose no updates.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Get-or-create races with other workers on purpose.
			c := reg.Counter("hits")
			g := reg.Gauge("last")
			h := reg.Histogram("lat")
			for i := 0; i < each; i++ {
				c.Inc()
				g.Set(float64(w))
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if s.Counters["hits"] != workers*each {
		t.Errorf("hits = %d, want %d", s.Counters["hits"], workers*each)
	}
	if h := s.Histograms["lat"]; h.Count != workers*each || h.Sum != workers*each*(each-1)/2 {
		t.Errorf("histogram = %+v", h)
	}
	if v := s.Gauges["last"]; v < 0 || v >= workers {
		t.Errorf("gauge = %v", v)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	h.Observe(1024) // lands in [1024,2048): quantiles report the upper bound
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 1024 || s.Mean != 1024 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.P50 != 2048 || s.P99 != 2048 {
		t.Errorf("quantiles = %+v", s)
	}
	h.Observe(0)
	h.Observe(-7) // non-positive values share bucket 0
	if s := h.Snapshot(); s.P50 != 0 {
		t.Errorf("p50 with majority zeros = %+v", s)
	}
}

// A nil registry hands out nil instruments and every instrument method
// no-ops on nil — the uninstrumented path must also allocate nothing.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c, g, h := reg.Counter("x"), reg.Gauge("y"), reg.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		_ = c.Value()
		g.Set(1)
		_ = g.Value()
		h.Observe(5)
	}); n != 0 {
		t.Errorf("nil instruments allocated %.1f per op", n)
	}
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
}

// Live-instrument hot paths must not allocate either: counters, gauges and
// histograms are plain atomics.
func TestLiveInstrumentsAllocateNothing(t *testing.T) {
	reg := NewRegistry()
	c, g, h := reg.Counter("c"), reg.Gauge("g"), reg.Histogram("h")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(2)
		h.Observe(9)
	}); n != 0 {
		t.Errorf("live instruments allocated %.1f per op", n)
	}
}

// Snapshot JSON golden: the -metrics dump format external tooling parses.
func TestWriteJSONGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pool.regions").Add(5)
	reg.Gauge("hpl.gflops").Set(2.5)
	reg.Histogram("span.ns").Observe(3)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {
    "pool.regions": 5
  },
  "gauges": {
    "hpl.gflops": 2.5
  },
  "histograms": {
    "span.ns": {
      "count": 1,
      "sum": 3,
      "mean": 3,
      "p50": 4,
      "p90": 4,
      "p99": 4
    }
  }
}
`
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Gauge("a.val").Set(1.5)
	reg.Histogram("c.lat").Observe(7)
	var buf bytes.Buffer
	reg.WriteText(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	// Name-sorted regardless of instrument kind.
	if !strings.HasPrefix(lines[0], "a.val") ||
		!strings.HasPrefix(lines[1], "b.count") ||
		!strings.HasPrefix(lines[2], "c.lat") {
		t.Errorf("order:\n%s", buf.String())
	}
	if !strings.Contains(lines[2], "count=1") || !strings.Contains(lines[2], "sum=7") {
		t.Errorf("histogram line: %s", lines[2])
	}
}

func TestRegistryReusesInstruments(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("counter not reused")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Error("gauge not reused")
	}
	if reg.Histogram("x") != reg.Histogram("x") {
		t.Error("histogram not reused")
	}
}
