// Package metrics is a small runtime-metrics registry for the real
// execution layers: counters (bytes packed, pool queue-full drops,
// transport resends, FT rollbacks), gauges (GFLOPS of the last run) and
// power-of-two histograms (span latencies).
//
// Hot-path friendliness is the whole design: every instrument is a single
// atomic word (or a fixed array of them), every mutating method is safe
// for concurrent use, and every method is a nil-receiver no-op — so
// instrumented code holds possibly-nil instrument pointers, calls them
// unconditionally, and the uninstrumented path costs one predictable nil
// check with zero allocations. The registry itself is only touched at
// setup (get-or-create) and snapshot time.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready;
// nil receivers no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n may be negative for corrections, but counters are meant
// to grow).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that holds the latest Set value. The zero value is
// ready; nil receivers no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores x.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Value returns the latest Set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the bucket count of Histogram: bucket 0 holds values
// <= 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram accumulates non-negative int64 observations (typically
// nanoseconds or bytes) into power-of-two buckets. The zero value is
// ready; nil receivers no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// HistogramSnapshot is a consistent-enough point-in-time view: count, sum
// and approximate quantiles (each quantile reports the upper bound of the
// power-of-two bucket it lands in).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	var counts [histBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.P50 = quantile(counts[:], total, 0.50)
	s.P90 = quantile(counts[:], total, 0.90)
	s.P99 = quantile(counts[:], total, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// observation (0 when empty).
func quantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			if i >= 64 {
				return math.MaxInt64
			}
			return 1 << uint(i)
		}
	}
	return math.MaxInt64
}

// Registry is a named collection of instruments. Get-or-create methods
// are safe for concurrent use; a nil *Registry hands out nil instruments,
// which no-op — the one nil check at wiring time disables a whole
// package's instrumentation.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil on
// a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = new(Histogram)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument's value.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all instruments (empty maps on a nil registry).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys sort, so the
// output is deterministic for goldens).
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText writes an aligned, name-sorted human dump — the -metrics
// output of the CLIs.
func (r *Registry) WriteText(w io.Writer) {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	lines := map[string]string{}
	for n, v := range s.Counters {
		names = append(names, n)
		lines[n] = fmt.Sprintf("%-32s %d", n, v)
	}
	for n, v := range s.Gauges {
		names = append(names, n)
		lines[n] = fmt.Sprintf("%-32s %g", n, v)
	}
	for n, h := range s.Histograms {
		names = append(names, n)
		lines[n] = fmt.Sprintf("%-32s count=%d sum=%d mean=%.1f p50<=%d p90<=%d p99<=%d",
			n, h.Count, h.Sum, h.Mean, h.P50, h.P90, h.P99)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(w, lines[n])
	}
}
