package perfmodel

import "math"

// mathPow wraps math.Pow behind one symbol so calibration code documents
// every place a non-polynomial curve shape enters the model.
func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }
