// Package perfmodel turns the cycle-level kernel model of internal/kernels
// and the architecture descriptions of internal/machine into the analytic
// performance envelopes the paper's evaluation is built on: DGEMM/SGEMM
// efficiency as a function of the accumulation depth k (Table II) and of
// the matrix size (Figure 4), the packing overhead curve, panel
// factorization / swap / DTRSM cost estimates for the Linpack simulators,
// and the Sandy Bridge (MKL) baselines.
//
// Calibration: the three loss terms on top of the simulated micro-kernel
// ceiling correspond to the overheads Section III-B itemizes — (i) the
// C-tile update epilogue (already in kernels.TileEfficiency), (ii) packing,
// and (iii) scalar work-distribution overhead — plus the L2-spill penalty
// the paper uses to explain the DGEMM dip past k = 340. The constants are
// fixed once here; the Table II test asserts the resulting efficiencies
// match the published table to a few tenths of a percent.
package perfmodel

import (
	"phihpl/internal/kernels"
	"phihpl/internal/machine"
)

// Knights Corner DGEMM loss calibration (see package comment).
const (
	// dpSchedA/k + dpSchedB: scalar overhead of driving the parallel
	// work distribution, amortized over the k-deep inner loop.
	dpSchedA = 4.48
	dpSchedB = 0.0200
	spSchedA = 3.36
	spSchedB = 0.0133
	// l2SpillStart/Coef: linear penalty once the m×k + k×n + m×n working
	// set exceeds 80% of the 512 KB L2 (conflict misses, then capacity).
	l2SpillStart = 0.8
	l2SpillCoef  = 0.07
	// blockM/blockN are the paper's L2 cache-block dimensions
	// ("choosing m=120, n=32 and k=240 results in 1.1 bytes/cycle").
	blockM = 120
	blockN = 32
	// sizeLossC/minDim: small-matrix efficiency loss of the outer-product
	// kernel (edge tiles, cold caches); calibrated to 88% at 5K (Fig. 4).
	sizeLossC = 80.0
	// packC/packExp: packing overhead ~15% at N=1K, <2% at 5K, <0.4% at
	// 17K (Figure 4).
	packC   = 843.0
	packExp = 1.25
)

// KNC models Knights Corner kernel and memory behaviour.
type KNC struct {
	Arch *machine.Arch
	Cfg  kernels.Config
	// tileEff caches kernels.TileEfficiency by k.
	tileEff map[int]float64
}

// NewKNC returns a Knights Corner model with default pipeline parameters.
func NewKNC() *KNC {
	return &KNC{Arch: machine.KnightsCorner(), Cfg: kernels.DefaultConfig(), tileEff: map[int]float64{}}
}

func (m *KNC) tileEfficiency(k int) float64 {
	if e, ok := m.tileEff[k]; ok {
		return e
	}
	e := kernels.TileEfficiency(kernels.Kernel2, k, m.Cfg)
	m.tileEff[k] = e
	return e
}

// l2Spill returns the multiplicative penalty for the L2 working set of an
// elemBytes-precision cache block with depth k.
func l2Spill(k, elemBytes, l2Bytes int) float64 {
	footprint := float64((blockM*k + k*blockN + blockM*blockN) * elemBytes)
	u := footprint / float64(l2Bytes)
	if u <= l2SpillStart {
		return 1
	}
	loss := l2SpillCoef * (u - l2SpillStart)
	if loss > 0.9 {
		loss = 0.9
	}
	return 1 - loss
}

// sizeLoss returns the multiplicative small-size penalty of the
// outer-product kernel for an m×n update (edge tiles, load imbalance over
// the tile grid, cold TLBs). minDim is the smaller of m and n.
func sizeLoss(minDim int) float64 {
	if minDim <= 0 {
		return 0
	}
	l := sizeLossC / float64(minDim)
	if l > 0.5 {
		l = 0.5
	}
	return 1 - l
}

// DgemmKernelEff returns the efficiency (vs. 60-core peak) of the native
// DGEMM outer-product kernel on an m×n update with depth k, *excluding*
// packing — the middle curve of Figure 4.
func (m *KNC) DgemmKernelEff(mDim, nDim, k int) float64 {
	if mDim <= 0 || nDim <= 0 || k <= 0 {
		return 0
	}
	e := m.tileEfficiency(k) - (dpSchedB + dpSchedA/float64(k))
	e *= l2Spill(k, 8, m.Arch.L2Bytes)
	minDim := mDim
	if nDim < minDim {
		minDim = nDim
	}
	e *= sizeLoss(minDim)
	if e < 0 {
		e = 0
	}
	return e
}

// PackOverhead returns the fractional cost of packing the operands of a
// size-n DGEMM into the Knights Corner-friendly layout (Figure 4: 15% at
// 1K, under 2% from 5K, under 0.4% from 17K).
func PackOverhead(n int) float64 {
	if n <= 0 {
		return 0
	}
	o := packC / pow(float64(n), packExp)
	if o > 0.6 {
		o = 0.6
	}
	return o
}

// pow is a small positive-base power via exp/log-free iteration for the
// fixed exponent shapes we use; math.Pow would be fine but this keeps the
// dependency list honest about determinism.
func pow(base, exp float64) float64 {
	// base^exp = exp2(exp*log2(base)); delegate to math via inline
	// implementation would be overkill — use the obvious route.
	return mathPow(base, exp)
}

// DgemmEff returns the efficiency of full native DGEMM (packing included)
// for an m×n×k product — the Table II and Figure 4 top-curve quantity.
func (m *KNC) DgemmEff(mDim, nDim, k int) float64 {
	minDim := mDim
	if nDim < minDim {
		minDim = nDim
	}
	return m.DgemmKernelEff(mDim, nDim, k) * (1 - PackOverhead(minDim))
}

// SgemmEff is the single-precision analogue of DgemmEff. The SP working
// set is half the DP one, so the L2 spill penalty only appears at far
// larger k, which is why Table II's SGEMM efficiency keeps rising to k=400.
func (m *KNC) SgemmEff(mDim, nDim, k int) float64 {
	if mDim <= 0 || nDim <= 0 || k <= 0 {
		return 0
	}
	e := m.tileEfficiency(k) - (spSchedB + spSchedA/float64(k))
	e *= l2Spill(k, 4, m.Arch.L2Bytes)
	minDim := mDim
	if nDim < minDim {
		minDim = nDim
	}
	e *= sizeLoss(minDim)
	e *= 1 - PackOverhead(minDim)
	if e < 0 {
		e = 0
	}
	return e
}

// DgemmGFLOPS returns native DGEMM performance in GFLOPS against the
// 60-core compute peak (the paper's native denominator).
func (m *KNC) DgemmGFLOPS(mDim, nDim, k int) float64 {
	return m.DgemmEff(mDim, nDim, k) * m.Arch.ComputePeakDPGFLOPS()
}

// SgemmGFLOPS returns native SGEMM performance in GFLOPS.
func (m *KNC) SgemmGFLOPS(mDim, nDim, k int) float64 {
	return m.SgemmEff(mDim, nDim, k) * m.Arch.ComputePeakSPGFLOPS()
}

// DgemmTime returns the seconds to compute an m×n×k DGEMM (packing
// included) on `cores` Knights Corner cores. Efficiency is evaluated at
// the given shape; the flop count is the exact 2mnk.
func (m *KNC) DgemmTime(mDim, nDim, k, cores int) float64 {
	if mDim <= 0 || nDim <= 0 || k <= 0 || cores <= 0 {
		return 0
	}
	eff := m.DgemmEff(mDim, nDim, k)
	if eff <= 0 {
		eff = 1e-3
	}
	peak := float64(cores) * m.Arch.ClockGHz * 1e9 * m.Arch.DPFlopsPerCycle()
	return 2 * float64(mDim) * float64(nDim) * float64(k) / (eff * peak)
}

// KernelTime is DgemmTime without the packing overhead — the offload
// DGEMM compute path, where packing happens on the host.
func (m *KNC) KernelTime(mDim, nDim, k, cores int) float64 {
	if mDim <= 0 || nDim <= 0 || k <= 0 || cores <= 0 {
		return 0
	}
	eff := m.DgemmKernelEff(mDim, nDim, k)
	if eff <= 0 {
		eff = 1e-3
	}
	peak := float64(cores) * m.Arch.ClockGHz * 1e9 * m.Arch.DPFlopsPerCycle()
	return 2 * float64(mDim) * float64(nDim) * float64(k) / (eff * peak)
}

// Panel factorization model. Panel factorization is latency- and
// bandwidth-bound (IDAMAX reductions, rank-1 updates on a tall skinny
// panel); its parallel efficiency saturates quickly with threads. The
// per-thread rate and cap below are calibrated so the native-Linpack
// simulation reproduces Figure 6 (dynamic scheduling hides panels from
// ~8K up; 832 GFLOPS at 30K).
const (
	panelPerThreadGFLOPS = 0.55
	panelCapGFLOPS       = 33.0
)

// PanelFlops returns the flop count of factoring an m×nb panel.
func PanelFlops(m, nb int) float64 {
	if m <= 0 || nb <= 0 {
		return 0
	}
	// sum_{j=0..nb-1} [ (m-j-1) divisions + 2*(m-j-1)*(nb-j-1) update ]
	f := 0.0
	for j := 0; j < nb; j++ {
		rows := float64(m - j - 1)
		if rows < 0 {
			rows = 0
		}
		f += rows + 2*rows*float64(nb-j-1)
	}
	return f
}

// PanelTime returns the seconds to factor an m×nb panel with `threads`
// hardware threads cooperating.
func (m *KNC) PanelTime(rows, nb, threads int) float64 {
	if rows <= 0 || nb <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	rate := panelPerThreadGFLOPS * float64(threads)
	if rate > panelCapGFLOPS {
		rate = panelCapGFLOPS
	}
	return PanelFlops(rows, nb) / (rate * 1e9)
}

// SwapTime returns the seconds to apply nb row interchanges across `cols`
// columns: 2·8·nb·cols bytes of strided traffic against a fraction of
// STREAM bandwidth (row swapping achieves roughly half of STREAM because
// the accesses are row-pair strided).
func (m *KNC) SwapTime(nb, cols int) float64 {
	if nb <= 0 || cols <= 0 {
		return 0
	}
	bytes := 2 * 8 * float64(nb) * float64(cols)
	return bytes / (0.5 * m.Arch.StreamBW)
}

// TrsmTime returns the seconds for the nb×cols triangular solve that
// produces the U block row. It is compute-bound but works on a skinny
// operand, sustaining roughly half of DGEMM efficiency.
func (m *KNC) TrsmTime(nb, cols, cores int) float64 {
	if nb <= 0 || cols <= 0 || cores <= 0 {
		return 0
	}
	flops := float64(nb) * float64(nb) * float64(cols)
	peak := float64(cores) * m.Arch.ClockGHz * 1e9 * m.Arch.DPFlopsPerCycle()
	return flops / (0.45 * peak)
}

// BarrierTime returns the cost of a global barrier over `threads` hardware
// threads — a log-depth tree of cache-line handoffs. Calibrated to ~10 µs
// for the full 240-thread card, which is what makes the static scheme's
// per-stage barrier visible at small N in Figure 6.
func BarrierTime(threads int) float64 {
	if threads <= 1 {
		return 0
	}
	depth := 0
	for n := 1; n < threads; n *= 2 {
		depth++
	}
	return float64(depth) * 1.3e-6
}

// --- Sandy Bridge (MKL) baselines -----------------------------------------

// SNB models the host processor running Intel MKL kernels.
type SNB struct {
	Arch *machine.Arch
}

// NewSNB returns the Sandy Bridge EP model.
func NewSNB() *SNB { return &SNB{Arch: machine.SandyBridgeEP()} }

// DgemmEff returns MKL DGEMM efficiency vs. size: ~90% asymptote
// (Figure 4's bottom curve).
func (s *SNB) DgemmEff(n int) float64 {
	if n <= 0 {
		return 0
	}
	e := 0.905 * (1 - 55.0/(float64(n)+350))
	if e < 0 {
		e = 0
	}
	return e
}

// DgemmTime returns seconds for an m×n×k MKL DGEMM on `cores` host cores.
func (s *SNB) DgemmTime(mDim, nDim, k, cores int) float64 {
	if mDim <= 0 || nDim <= 0 || k <= 0 || cores <= 0 {
		return 0
	}
	minDim := mDim
	if nDim < minDim {
		minDim = nDim
	}
	if k < minDim {
		minDim = k
	}
	eff := s.DgemmEff(minDim)
	if eff <= 0 {
		eff = 1e-3
	}
	peak := float64(cores) * s.Arch.ClockGHz * 1e9 * s.Arch.DPFlopsPerCycle()
	return 2 * float64(mDim) * float64(nDim) * float64(k) / (eff * peak)
}

// HPLEff returns MKL SMP-Linpack efficiency vs. problem size on one node:
// 83% at 30K (Figure 6), 86.4% at 84K (Table III, first section).
func (s *SNB) HPLEff(n int) float64 {
	if n <= 0 {
		return 0
	}
	e := 0.88 * (1 - 5124.0/mathPow(float64(n), 1.107))
	if e < 0 {
		e = 0
	}
	return e
}

// HPLGFLOPS returns the MKL Linpack performance on one host node.
func (s *SNB) HPLGFLOPS(n int) float64 {
	return s.HPLEff(n) * s.Arch.PeakDPGFLOPS()
}

// PanelTime returns host panel factorization time: the host's fat
// out-of-order cores factor panels far faster per-thread than the card,
// which is the reason hybrid HPL runs panels on the host.
func (s *SNB) PanelTime(rows, nb, threads int) float64 {
	if rows <= 0 || nb <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	rate := 3.0 * float64(threads) // GFLOPS
	if rate > 48 {
		rate = 48
	}
	return PanelFlops(rows, nb) / (rate * 1e9)
}

// SwapTime returns host-side row swap time over `cols` columns.
func (s *SNB) SwapTime(nb, cols int) float64 {
	if nb <= 0 || cols <= 0 {
		return 0
	}
	bytes := 2 * 8 * float64(nb) * float64(cols)
	return bytes / (0.5 * s.Arch.StreamBW)
}

// TrsmTime returns host DTRSM time for the nb×cols U update.
func (s *SNB) TrsmTime(nb, cols, cores int) float64 {
	if nb <= 0 || cols <= 0 || cores <= 0 {
		return 0
	}
	flops := float64(nb) * float64(nb) * float64(cols)
	peak := float64(cores) * s.Arch.ClockGHz * 1e9 * s.Arch.DPFlopsPerCycle()
	return flops / (0.5 * peak)
}

// LUFlops returns the standard Linpack flop count 2/3·n³ + 2·n².
func LUFlops(n int) float64 {
	fn := float64(n)
	return 2.0/3.0*fn*fn*fn + 2*fn*fn
}
