package perfmodel

import (
	"math"
	"testing"
)

func TestUpdateDgemmTime(t *testing.T) {
	m := NewKNC()
	// Degenerate inputs.
	if m.UpdateDgemmTime(0, 10, 10, 4) != 0 || m.UpdateDgemmTime(10, 10, 10, 0) != 0 {
		t.Error("degenerate update time")
	}
	// Doubling cores halves time (same efficiency model).
	t1 := m.UpdateDgemmTime(20000, 300, 300, 15)
	t2 := m.UpdateDgemmTime(20000, 300, 300, 30)
	if r := t1 / t2; math.Abs(r-2) > 1e-9 {
		t.Errorf("core scaling = %v, want 2", r)
	}
	// Wider updates are more efficient per flop (narrow-update penalty).
	perFlop := func(cols int) float64 {
		return m.UpdateDgemmTime(20000, cols, 300, 60) / float64(cols)
	}
	if !(perFlop(1200) < perFlop(300)) {
		t.Error("narrow-update penalty missing")
	}
	// The full native LU rate reconstruction: big update at 60 cores
	// should sustain >800 GFLOPS.
	flops := 2.0 * 20000 * 1200 * 300
	rate := flops / m.UpdateDgemmTime(20000, 1200, 300, 60) / 1e9
	if rate < 800 || rate > 1000 {
		t.Errorf("update rate = %.1f GFLOPS", rate)
	}
}

func TestTrsmTimeGroup(t *testing.T) {
	m := NewKNC()
	if m.TrsmTimeGroup(0, 5, 4) != 0 || m.TrsmTimeGroup(5, 5, 0) != 0 {
		t.Error("degenerate trsm time")
	}
	// Matches the integer-cores variant.
	a := m.TrsmTimeGroup(300, 5000, 60)
	b := m.TrsmTime(300, 5000, 60)
	if math.Abs(a-b)/b > 1e-12 {
		t.Errorf("group/int trsm mismatch: %v vs %v", a, b)
	}
}

func TestSwapTimeGroup(t *testing.T) {
	m := NewKNC()
	if m.SwapTimeGroup(0, 5, 1) != 0 || m.SwapTimeGroup(5, 5, 0) != 0 {
		t.Error("degenerate swap time")
	}
	// Full share equals the plain SwapTime; half share doubles it.
	full := m.SwapTimeGroup(300, 10000, 1)
	if math.Abs(full-m.SwapTime(300, 10000)) > 1e-15 {
		t.Error("full-share swap mismatch")
	}
	if r := m.SwapTimeGroup(300, 10000, 0.5) / full; math.Abs(r-2) > 1e-12 {
		t.Errorf("share scaling = %v", r)
	}
}

func TestLossClamps(t *testing.T) {
	m := NewKNC()
	// Tiny updates: sizeLoss clamps at 0.5, efficiency stays positive.
	if e := m.DgemmKernelEff(10, 10, 300); e <= 0 || e > 0.6 {
		t.Errorf("tiny kernel eff = %v", e)
	}
	// Extreme k: spill penalty clamps rather than going negative.
	if e := m.DgemmEff(28000, 28000, 5000); e <= 0 {
		t.Errorf("huge-k eff = %v, want positive (clamped spill)", e)
	}
	if s := l2Spill(100000, 8, 512*1024); s < 0.09 || s > 0.11 {
		t.Errorf("spill clamp = %v, want 0.1", s)
	}
	if sizeLoss(0) != 0 {
		t.Error("sizeLoss(0)")
	}
}

func TestSNBDgemmTimeShape(t *testing.T) {
	s := NewSNB()
	// Time scales linearly in each dimension.
	base := s.DgemmTime(4000, 4000, 300, 16)
	if r := s.DgemmTime(8000, 4000, 300, 16) / base; math.Abs(r-2) > 0.02 {
		t.Errorf("m scaling = %v", r)
	}
	// k smaller than m,n drives the efficiency argument.
	if s.DgemmTime(4000, 4000, 100, 16) >= base {
		t.Error("smaller k must be cheaper")
	}
	// Degenerate.
	if s.DgemmTime(0, 1, 1, 1) != 0 || s.DgemmTime(1, 1, 1, 0) != 0 {
		t.Error("degenerate SNB dgemm time")
	}
}

func TestSNBCostEdges(t *testing.T) {
	s := NewSNB()
	if s.SwapTime(10, 0) != 0 {
		t.Error("swap cols=0")
	}
	if s.TrsmTime(0, 10, 4) != 0 {
		t.Error("trsm nb=0")
	}
	if s.PanelTime(100, 10, 0) <= 0 {
		t.Error("panel threads clamp to 1")
	}
	// Panel rate caps at 48 GFLOPS.
	if s.PanelTime(10000, 300, 16) != s.PanelTime(10000, 300, 64) {
		t.Error("host panel rate should cap")
	}
	if s.HPLEff(-5) != 0 {
		t.Error("negative n")
	}
	// Extremely small n clamps HPLEff at 0 rather than going negative.
	if e := s.HPLEff(10); e != 0 {
		t.Errorf("HPLEff(10) = %v, want clamp to 0", e)
	}
}

func TestKNCCostEdges(t *testing.T) {
	m := NewKNC()
	if m.DgemmTime(1000, 1000, 300, 0) != 0 {
		t.Error("zero cores")
	}
	if m.KernelTime(0, 1, 1, 60) != 0 {
		t.Error("kernel degenerate")
	}
	if m.PanelTime(100, 10, 0) <= 0 {
		t.Error("panel threads clamp")
	}
	if PanelFlops(3, 0) != 0 {
		t.Error("PanelFlops nb=0")
	}
	// PanelFlops handles nb > m gracefully (rows clamp at zero).
	if f := PanelFlops(2, 10); f <= 0 {
		t.Errorf("wide panel flops = %v", f)
	}
}
