package perfmodel

import (
	"math"
	"testing"
)

// Table II of the paper: efficiency (%) as a function of k for
// M = N = 28000.
var tableII = []struct {
	k      int
	sgemm  float64
	dgemm  float64
	sgemmG float64 // GFLOPS
	dgemmG float64
}{
	{120, 88.3, 86.7, 1866, 915},
	{180, 89.3, 88.6, 1886, 935},
	{240, 90.1, 89.1, 1902, 941},
	{300, 90.4, 89.4, 1910, 944},
	{340, 90.6, 89.3, 1914, 943},
	{400, 90.8, 88.9, 1917, 943},
}

func TestTableIIDgemm(t *testing.T) {
	m := NewKNC()
	for _, row := range tableII {
		eff := m.DgemmEff(28000, 28000, row.k) * 100
		if math.Abs(eff-row.dgemm) > 0.5 {
			t.Errorf("DGEMM k=%d: eff = %.2f%%, paper %.1f%%", row.k, eff, row.dgemm)
		}
		g := m.DgemmGFLOPS(28000, 28000, row.k)
		if math.Abs(g-row.dgemmG) > 6 {
			t.Errorf("DGEMM k=%d: %.0f GFLOPS, paper %.0f", row.k, g, row.dgemmG)
		}
	}
}

func TestTableIISgemm(t *testing.T) {
	m := NewKNC()
	for _, row := range tableII {
		eff := m.SgemmEff(28000, 28000, row.k) * 100
		if math.Abs(eff-row.sgemm) > 0.5 {
			t.Errorf("SGEMM k=%d: eff = %.2f%%, paper %.1f%%", row.k, eff, row.sgemm)
		}
		g := m.SgemmGFLOPS(28000, 28000, row.k)
		if math.Abs(g-row.sgemmG) > 12 {
			t.Errorf("SGEMM k=%d: %.0f GFLOPS, paper %.0f", row.k, g, row.sgemmG)
		}
	}
}

func TestDgemmBestKIs300(t *testing.T) {
	// The headline: DGEMM peaks at k=300 (89.4% / 944 GFLOPS) and dips
	// beyond as the L2 block spills; SGEMM keeps rising to k=400.
	m := NewKNC()
	best := 0
	bestEff := 0.0
	for _, row := range tableII {
		if e := m.DgemmEff(28000, 28000, row.k); e > bestEff {
			best, bestEff = row.k, e
		}
	}
	if best != 300 {
		t.Errorf("DGEMM best k = %d, want 300", best)
	}
	if s300, s400 := m.SgemmEff(28000, 28000, 300), m.SgemmEff(28000, 28000, 400); s400 <= s300 {
		t.Errorf("SGEMM should keep improving to k=400: %v vs %v", s300, s400)
	}
}

func TestHeadline944GFLOPS(t *testing.T) {
	m := NewKNC()
	g := m.DgemmGFLOPS(28000, 28000, 300)
	if math.Abs(g-944) > 4 {
		t.Errorf("DGEMM(28K, k=300) = %.1f GFLOPS, paper 944", g)
	}
}

func TestFigure4PackingOverheadShape(t *testing.T) {
	// 15% at 1K, under 2% from 5K, under 0.4% from 17K.
	if o := PackOverhead(1000); math.Abs(o-0.15) > 0.02 {
		t.Errorf("pack overhead @1K = %.3f, want ~0.15", o)
	}
	if o := PackOverhead(5000); o > 0.022 {
		t.Errorf("pack overhead @5K = %.3f, want < 2%%", o)
	}
	if o := PackOverhead(17000); o > 0.0045 {
		t.Errorf("pack overhead @17K = %.4f, want ~0.4%%", o)
	}
	if o := PackOverhead(20000); o >= 0.004 {
		t.Errorf("pack overhead @20K = %.4f, want < 0.4%%", o)
	}
	if PackOverhead(0) != 0 {
		t.Error("PackOverhead(0)")
	}
	if PackOverhead(1) != 0.6 {
		t.Errorf("tiny-n overhead should cap at 0.6, got %v", PackOverhead(1))
	}
}

func TestFigure4KernelCurve(t *testing.T) {
	m := NewKNC()
	// Kernel (no packing) reaches 88% by 5K (paper Section III-B).
	if e := m.DgemmKernelEff(5000, 5000, 300); e < 0.875 || e > 0.90 {
		t.Errorf("kernel eff @5K = %.3f, want ~0.88", e)
	}
	// Monotone in size.
	prev := 0.0
	for _, n := range []int{1000, 2000, 5000, 10000, 17000, 28000} {
		e := m.DgemmKernelEff(n, n, 300)
		if e <= prev {
			t.Errorf("kernel eff not increasing at n=%d: %v <= %v", n, e, prev)
		}
		prev = e
	}
}

func TestDegenerateInputs(t *testing.T) {
	m := NewKNC()
	if m.DgemmEff(0, 5, 5) != 0 || m.SgemmEff(5, 0, 5) != 0 || m.DgemmKernelEff(5, 5, 0) != 0 {
		t.Error("degenerate shapes should give zero efficiency")
	}
	if m.DgemmTime(0, 1, 1, 1) != 0 || m.KernelTime(1, 1, 1, 0) != 0 {
		t.Error("degenerate times should be zero")
	}
	if m.PanelTime(0, 3, 1) != 0 || m.SwapTime(0, 1) != 0 || m.TrsmTime(1, 0, 1) != 0 {
		t.Error("degenerate costs should be zero")
	}
}

func TestDgemmTimeConsistent(t *testing.T) {
	m := NewKNC()
	// time * eff * peak == 2mnk
	mDim, nDim, k := 10000, 10000, 300
	tt := m.DgemmTime(mDim, nDim, k, 60)
	eff := m.DgemmEff(mDim, nDim, k)
	peak := 60 * 1.1e9 * 16.0
	flops := 2 * float64(mDim) * float64(nDim) * float64(k)
	if rel := math.Abs(tt*eff*peak-flops) / flops; rel > 1e-9 {
		t.Errorf("time/eff inconsistency: %v", rel)
	}
	// Kernel-only time is faster than packed time.
	if m.KernelTime(mDim, nDim, k, 60) >= tt {
		t.Error("kernel-only should be faster than with-packing")
	}
}

func TestPanelModel(t *testing.T) {
	// Exact small case: m=2, nb=1 -> one division, no update: 1 flop.
	if f := PanelFlops(2, 1); f != 1 {
		t.Errorf("PanelFlops(2,1) = %v", f)
	}
	// Asymptotically ~ m*nb^2 for m >> nb.
	f := PanelFlops(10000, 100)
	if approx := 10000.0 * 100 * 100; math.Abs(f-approx)/approx > 0.1 {
		t.Errorf("PanelFlops(10000,100) = %g, want ~%g", f, approx)
	}
	m := NewKNC()
	// More threads help, but saturate at the cap.
	t1 := m.PanelTime(10000, 300, 4)
	t2 := m.PanelTime(10000, 300, 16)
	t3 := m.PanelTime(10000, 300, 60)
	t4 := m.PanelTime(10000, 300, 240)
	if !(t1 > t2 && t2 > t3) {
		t.Errorf("panel time should shrink with threads: %v %v %v", t1, t2, t3)
	}
	if t4 != t3 {
		t.Errorf("panel rate should cap: %v vs %v", t4, t3)
	}
	if PanelFlops(0, 5) != 0 {
		t.Error("empty panel flops")
	}
}

func TestBarrierTime(t *testing.T) {
	if BarrierTime(1) != 0 {
		t.Error("single-thread barrier is free")
	}
	b240 := BarrierTime(240)
	if b240 < 5e-6 || b240 > 20e-6 {
		t.Errorf("240-thread barrier = %v, want ~10 µs", b240)
	}
	if BarrierTime(16) >= b240 {
		t.Error("barrier grows with thread count")
	}
}

func TestSNBBaselines(t *testing.T) {
	s := NewSNB()
	// Figure 4: MKL DGEMM up to 90%.
	if e := s.DgemmEff(28000); e < 0.89 || e > 0.91 {
		t.Errorf("SNB DGEMM eff @28K = %.3f, want ~0.90", e)
	}
	// Figure 6: MKL Linpack 277 GFLOPS (83%) at 30K.
	if g := s.HPLGFLOPS(30000); math.Abs(g-277) > 6 {
		t.Errorf("SNB HPL @30K = %.1f GFLOPS, paper 277", g)
	}
	if e := s.HPLEff(30000); math.Abs(e-0.83) > 0.015 {
		t.Errorf("SNB HPL eff @30K = %.3f, paper 0.83", e)
	}
	// Table III: 86.4% at 84K single node.
	if e := s.HPLEff(84000); math.Abs(e-0.864) > 0.01 {
		t.Errorf("SNB HPL eff @84K = %.3f, paper 0.864", e)
	}
	if s.HPLEff(0) != 0 || s.DgemmEff(0) != 0 {
		t.Error("degenerate SNB inputs")
	}
	// Host panels are much faster than card panels at small thread counts.
	k := NewKNC()
	if s.PanelTime(5000, 300, 8) >= k.PanelTime(5000, 300, 8) {
		t.Error("host panel should beat card panel at same thread count")
	}
	if s.SwapTime(0, 10) != 0 || s.TrsmTime(3, 3, 0) != 0 || s.PanelTime(0, 1, 1) != 0 {
		t.Error("degenerate SNB costs")
	}
	if s.DgemmTime(0, 1, 1, 1) != 0 {
		t.Error("degenerate SNB dgemm time")
	}
}

func TestLUFlops(t *testing.T) {
	// 2/3 n^3 + 2 n^2.
	if f := LUFlops(30); math.Abs(f-(2.0/3.0*27000+1800)) > 1e-9 {
		t.Errorf("LUFlops(30) = %v", f)
	}
}

func TestSwapAndTrsmScale(t *testing.T) {
	m := NewKNC()
	if !(m.SwapTime(300, 20000) > m.SwapTime(300, 10000)) {
		t.Error("swap time scales with cols")
	}
	if !(m.TrsmTime(300, 20000, 60) > m.TrsmTime(300, 10000, 60)) {
		t.Error("trsm time scales with cols")
	}
	// Swap is bandwidth bound: doubling nb doubles time.
	r := m.SwapTime(600, 10000) / m.SwapTime(300, 10000)
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("swap nb scaling = %v", r)
	}
}

func TestTileEffCache(t *testing.T) {
	m := NewKNC()
	a := m.DgemmEff(28000, 28000, 300)
	b := m.DgemmEff(28000, 28000, 300)
	if a != b {
		t.Error("cached efficiency changed between calls")
	}
	if len(m.tileEff) == 0 {
		t.Error("cache not populated")
	}
}
