package perfmodel

// Group-granular cost functions used by the virtual-time Linpack
// simulators, where a thread group owns a fractional share of the card's
// cores.

// updateColsLoss calibrates the narrow-update penalty of panel-wide
// DGEMMs (see UpdateDgemmTime).
const updateColsLoss = 20.0

// UpdateDgemmTime returns the seconds a group with `cores` cores (may be
// fractional) needs for the trailing-update DGEMM of one panel: rows×cols
// with depth k. The efficiency's size term is keyed to rows — the update
// streams the tile grid down the long dimension — and packing is charged
// against the same extent.
func (m *KNC) UpdateDgemmTime(rows, cols, k int, cores float64) float64 {
	if rows <= 0 || cols <= 0 || k <= 0 || cores <= 0 {
		return 0
	}
	e := m.tileEfficiency(k) - (dpSchedB + dpSchedA/float64(k))
	e *= l2Spill(k, 8, m.Arch.L2Bytes)
	e *= sizeLoss(rows)
	e *= 1 - PackOverhead(rows)
	// A panel-update DGEMM is only cols wide: the tile grid has few
	// column tiles per core, so edge tiles and load imbalance take a
	// bigger bite than in a square DGEMM. This is the main gap between
	// DGEMM's 89.4% and native Linpack's ≈79% in Figure 6.
	e *= 1 - updateColsLoss/float64(cols)
	if e <= 0 {
		e = 1e-3
	}
	peak := cores * m.Arch.ClockGHz * 1e9 * m.Arch.DPFlopsPerCycle()
	return 2 * float64(rows) * float64(cols) * float64(k) / (e * peak)
}

// TrsmTimeGroup is TrsmTime with fractional cores.
func (m *KNC) TrsmTimeGroup(nb, cols int, cores float64) float64 {
	if nb <= 0 || cols <= 0 || cores <= 0 {
		return 0
	}
	flops := float64(nb) * float64(nb) * float64(cols)
	peak := cores * m.Arch.ClockGHz * 1e9 * m.Arch.DPFlopsPerCycle()
	return flops / (0.45 * peak)
}

// SwapTimeGroup returns the row-interchange time when the group owns a
// `share` (0..1] fraction of the card's STREAM bandwidth.
func (m *KNC) SwapTimeGroup(nb, cols int, share float64) float64 {
	if nb <= 0 || cols <= 0 || share <= 0 {
		return 0
	}
	bytes := 2 * 8 * float64(nb) * float64(cols)
	return bytes / (0.5 * m.Arch.StreamBW * share)
}
