package matrix

import (
	"math"
	"testing"
)

func TestDense32Basics(t *testing.T) {
	m := NewDense32(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 5.5)
	if m.At(1, 2) != 5.5 || m.Data[1*4+2] != 5.5 {
		t.Error("Set/At broken")
	}
	if r := m.Row(1); len(r) != 4 || r[2] != 5.5 {
		t.Error("Row broken")
	}
	r := m.Row(0)
	r[0] = 9
	if m.At(0, 0) != 9 {
		t.Error("Row must share storage")
	}
}

func TestDense32NegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDense32(-1, 2)
}

func TestDense32View(t *testing.T) {
	m := NewDense32(5, 6)
	for i := 0; i < 5; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, float32(10*i+j))
		}
	}
	v := m.View(1, 2, 3, 3)
	if v.Rows != 3 || v.Cols != 3 || v.Stride != 6 {
		t.Fatalf("bad view: %+v", v)
	}
	if v.At(0, 0) != 12 || v.At(2, 2) != 34 {
		t.Error("view offset wrong")
	}
	v.Set(0, 0, -1)
	if m.At(1, 2) != -1 {
		t.Error("view must share storage")
	}
	// Zero-dimension views carry the stride but no data.
	z := m.View(2, 3, 0, 2)
	if z.Rows != 0 || z.Cols != 2 || z.Data != nil {
		t.Errorf("zero-row view: %+v", z)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected out-of-range view panic")
		}
	}()
	m.View(4, 4, 2, 3)
}

func TestDense32Clone(t *testing.T) {
	m := NewDense32(4, 5)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	v := m.View(1, 1, 2, 3)
	c := v.Clone()
	if c.Stride != c.Cols {
		t.Error("clone must be compact")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != v.At(i, j) {
				t.Fatalf("clone (%d,%d) differs", i, j)
			}
		}
	}
	c.Set(0, 0, 99)
	if v.At(0, 0) == 99 {
		t.Error("clone must not share storage")
	}
}

// TestToDense32Rounding: demotion rounds to nearest, widening is exact,
// and the round trip float64 → float32 → float64 equals a direct cast.
func TestToDense32Rounding(t *testing.T) {
	vals := []float64{0, 1, -1.5, 1.0 / 3.0, 1e-41, 1e40, math.Pi, -2.2250738585072014e-308}
	m := NewDense(2, 4)
	copy(m.Data, vals)
	m32 := m.ToDense32()
	for i, v := range vals {
		if got, want := m32.Data[i], float32(v); math.Float32bits(got) != math.Float32bits(want) {
			t.Errorf("demote %v: got %v, want %v", v, got, want)
		}
	}
	back := m32.ToDense()
	for i := range vals {
		if got, want := back.Data[i], float64(float32(vals[i])); got != want {
			t.Errorf("widen %v: got %v, want %v", vals[i], got, want)
		}
	}
	if back.Rows != m.Rows || back.Cols != m.Cols {
		t.Error("round trip changed shape")
	}
}

// TestToDense32Views: conversion respects views (reads Rows×Cols through
// the stride, produces a compact result).
func TestToDense32Views(t *testing.T) {
	host := RandomGeneral(6, 6, 3)
	v := host.View(1, 2, 3, 3)
	m32 := v.ToDense32()
	if m32.Rows != 3 || m32.Cols != 3 || m32.Stride != 3 {
		t.Fatalf("bad converted shape: %+v", m32)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m32.At(i, j) != float32(v.At(i, j)) {
				t.Fatalf("(%d,%d) differs", i, j)
			}
		}
	}
}
