package matrix

import "testing"

// Skip(n) must land on exactly the state n sequential draws reach — the
// property the distributed scatter relies on to generate a rank's blocks
// without streaming the whole matrix.
func TestPRNGSkipMatchesSequential(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 7, 63, 64, 1000, 123457} {
		seq := NewPRNG(42)
		for i := uint64(0); i < n; i++ {
			seq.Float64()
		}
		jump := NewPRNG(42)
		jump.Skip(n)
		for i := 0; i < 5; i++ {
			a, b := seq.Float64(), jump.Float64()
			if a != b {
				t.Fatalf("skip %d: draw %d = %v, want %v", n, i, b, a)
			}
		}
	}
}

// RandomSubmatrix must be bitwise the corresponding window of the full
// RandomSystem matrix, including ragged edge windows.
func TestRandomSubmatrixBitwise(t *testing.T) {
	const n, seed = 37, 99
	full, _ := RandomSystem(n, seed)
	for _, w := range []struct{ r0, c0, rows, cols int }{
		{0, 0, n, n},
		{0, 0, 8, 8},
		{16, 24, 8, 8},
		{32, 32, 5, 5}, // ragged corner
		{10, 0, 1, n},
		{0, 36, n, 1},
	} {
		sub := RandomSubmatrix(n, seed, w.r0, w.c0, w.rows, w.cols)
		for i := 0; i < w.rows; i++ {
			for j := 0; j < w.cols; j++ {
				if got, want := sub.At(i, j), full.At(w.r0+i, w.c0+j); got != want {
					t.Fatalf("window %+v: (%d,%d) = %v, want %v", w, i, j, got, want)
				}
			}
		}
	}
}
