package matrix

import "fmt"

// Dense32 is a dense row-major matrix of float32, the storage type of the
// mixed-precision factorization path: the FP32 factors hold half the
// bytes of their FP64 counterparts, which is the memory-traffic half of
// the paper's SGEMM advantage (Table II). Element (i,j) lives at
// Data[i*Stride+j]; a Dense32 may be a view into a larger matrix.
type Dense32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewDense32 allocates a zeroed Rows×Cols single-precision matrix.
func NewDense32(rows, cols int) *Dense32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &Dense32{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i,j).
func (m *Dense32) At(i, j int) float32 { return m.Data[i*m.Stride+j] }

// Set assigns element (i,j).
func (m *Dense32) Set(i, j int, v float32) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice sharing storage (length Cols).
func (m *Dense32) Row(i int) []float32 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns the r×c sub-matrix with upper-left corner (i,j), sharing
// storage with m.
func (m *Dense32) View(i, j, r, c int) *Dense32 {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) out of %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Dense32{Rows: r, Cols: c, Stride: m.Stride}
	}
	off := i*m.Stride + j
	return &Dense32{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off : off+(r-1)*m.Stride+c]}
}

// Clone returns a compact (Stride==Cols) copy of m.
func (m *Dense32) Clone() *Dense32 {
	out := NewDense32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m element-wise; the shapes must match.
func (m *Dense32) CopyFrom(src *Dense32) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("matrix: CopyFrom dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// ToDense32 rounds m to single precision (round-to-nearest per element),
// the demotion step that starts a mixed-precision solve.
func (m *Dense) ToDense32() *Dense32 {
	out := NewDense32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = float32(v)
		}
	}
	return out
}

// ToDense widens m to double precision (exact: every float32 is
// representable in float64).
func (m *Dense32) ToDense() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = float64(v)
		}
	}
	return out
}
