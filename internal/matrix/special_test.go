package matrix

import (
	"math"
	"testing"
)

func TestHilbert(t *testing.T) {
	h := Hilbert(3)
	if h.At(0, 0) != 1 || h.At(1, 1) != 1.0/3 || h.At(2, 1) != 0.25 {
		t.Errorf("hilbert entries wrong: %+v", h)
	}
	// Symmetric.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if h.At(i, j) != h.At(j, i) {
				t.Error("hilbert not symmetric")
			}
		}
	}
}

func TestWilkinson(t *testing.T) {
	w := Wilkinson(4)
	want := FromRows([][]float64{
		{1, 0, 0, 1},
		{-1, 1, 0, 1},
		{-1, -1, 1, 1},
		{-1, -1, -1, 1},
	})
	if !Equal(w, want) {
		t.Errorf("wilkinson = %+v", w)
	}
}

func TestDiagonallyDominant(t *testing.T) {
	m := DiagonallyDominant(30, 9)
	for i := 0; i < 30; i++ {
		off := 0.0
		for j, v := range m.Row(i) {
			if j != i {
				off += math.Abs(v)
			}
		}
		if math.Abs(m.At(i, i)) <= off {
			t.Fatalf("row %d not dominant", i)
		}
	}
}

func TestGraded(t *testing.T) {
	g := Graded(50, 6, 3)
	// Rows shrink: last row's max abs should be far below the first's.
	first := VecNormInf(g.Row(0))
	last := VecNormInf(g.Row(49))
	if last >= first*1e-4 {
		t.Errorf("grading too weak: first %g last %g", first, last)
	}
}

func TestInternalExpPow10(t *testing.T) {
	for _, x := range []float64{-3, -1.5, -0.1, 0, 0.3, 1, 2.7} {
		if got, want := exp(x), math.Exp(x); math.Abs(got-want)/math.Max(want, 1e-300) > 1e-12 {
			t.Errorf("exp(%v) = %v, want %v", x, got, want)
		}
	}
	if got := pow10(-2); math.Abs(got-0.01) > 1e-15 {
		t.Errorf("pow10(-2) = %v", got)
	}
}
