package matrix

// PRNG is a deterministic 64-bit linear congruential generator in the style
// of HPL's pseudo-random matrix generator. It carries no global state and
// never touches the wall clock, so every experiment in this repository is
// reproducible bit-for-bit.
type PRNG struct {
	state uint64
}

// lcg multiplier/increment: Knuth MMIX constants.
const (
	lcgMul = 6364136223846793005
	lcgInc = 1442695040888963407
)

// NewPRNG returns a generator seeded with seed (any value is fine;
// the state is scrambled once so seed 0 is usable).
func NewPRNG(seed uint64) *PRNG {
	p := &PRNG{state: seed}
	p.next()
	return p
}

func (p *PRNG) next() uint64 {
	p.state = p.state*lcgMul + lcgInc
	return p.state
}

// Uint64 returns the next raw 64-bit value.
func (p *PRNG) Uint64() uint64 { return p.next() }

// Skip advances the generator by n steps in O(log n). An LCG's n-step
// transition is itself affine, state -> A·state + C with A = mul^n and
// C = inc·(mul^(n-1) + … + 1), so square-and-multiply over the affine
// maps lands on exactly the state n sequential next() calls would reach
// — the jump that lets a distributed rank generate its slice of a
// shared random matrix without streaming past everyone else's.
func (p *PRNG) Skip(n uint64) {
	accMul, accInc := uint64(1), uint64(0)
	stepMul, stepInc := uint64(lcgMul), uint64(lcgInc)
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			accMul, accInc = stepMul*accMul, stepMul*accInc+stepInc
		}
		stepMul, stepInc = stepMul*stepMul, stepMul*stepInc+stepInc
	}
	p.state = p.state*accMul + accInc
}

// Float64 returns a uniform value in [-0.5, 0.5), the distribution HPL uses
// to generate test matrices (HPL_rand yields values in [-0.5, 0.5]).
func (p *PRNG) Float64() float64 {
	// 53 high bits -> [0,1), then shift to [-0.5, 0.5).
	return float64(p.next()>>11)/(1<<53) - 0.5
}

// Intn returns a uniform value in [0, n). n must be positive.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("matrix: Intn with non-positive n")
	}
	return int(p.next() % uint64(n))
}

// FillRandom fills m with uniform values in [-0.5, 0.5).
func (m *Dense) FillRandom(p *PRNG) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = p.Float64()
		}
	}
}

// RandomGeneral returns a rows×cols matrix of uniform [-0.5,0.5) entries
// generated from seed.
func RandomGeneral(rows, cols int, seed uint64) *Dense {
	m := NewDense(rows, cols)
	m.FillRandom(NewPRNG(seed))
	return m
}

// RandomSPD-like diagonally dominant matrices are not what HPL factors; HPL
// uses plain uniform random matrices, which are almost surely well
// conditioned enough for partial pivoting. RandomSystem reproduces the HPL
// setup: A is n×n uniform random and b is a uniform random right-hand side.
func RandomSystem(n int, seed uint64) (a *Dense, b []float64) {
	p := NewPRNG(seed)
	a = NewDense(n, n)
	a.FillRandom(p)
	b = make([]float64, n)
	for i := range b {
		b[i] = p.Float64()
	}
	return a, b
}

// RandomSubmatrix generates the rows×cols window of RandomSystem(n,
// seed)'s matrix anchored at (r0, c0), by jumping the stream to each
// window row — bitwise identical to slicing the full matrix, without
// materializing (or even iterating) the other n²−rows·cols entries.
func RandomSubmatrix(n int, seed uint64, r0, c0, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		p := NewPRNG(seed)
		p.Skip(uint64(r0+i)*uint64(n) + uint64(c0))
		row := m.Row(i)
		for j := range row {
			row[j] = p.Float64()
		}
	}
	return m
}

// RandomVector returns a length-n vector of uniform [-0.5,0.5) entries.
func RandomVector(n int, seed uint64) []float64 {
	p := NewPRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = p.Float64()
	}
	return v
}
