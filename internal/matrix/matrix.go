// Package matrix provides dense row-major matrices, deterministic random
// fills, norms, and the HPL residual check used to validate every LU and
// HPL driver in this repository.
//
// Matrices are stored row-major, matching the paper's DGEMM convention
// (Section III footnote 3: a column-major product is obtained by swapping
// the operands). Sub-matrix views share the underlying storage, which is
// what the panel/trailing-update decomposition of LU requires.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a dense row-major matrix of float64. Element (i,j) lives at
// Data[i*Stride+j]. A Dense may be a view into a larger matrix, in which
// case Stride > Cols.
type Dense struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewDense allocates a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows (copying).
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("matrix: ragged rows")
		}
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], r)
	}
	return m
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice sharing storage (length Cols).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns the r×c sub-matrix with upper-left corner (i,j), sharing
// storage with m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) out of %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Dense{Rows: r, Cols: c, Stride: m.Stride}
	}
	off := i*m.Stride + j
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off : off+(r-1)*m.Stride+c]}
}

// Clone returns a compact (Stride==Cols) copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("matrix: CopyFrom dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Eye returns the n×n identity.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Equal reports exact element-wise equality of dimensions and values.
func Equal(a, b *Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}

// MaxDiff returns the largest |a-b| over all elements; dimensions must match.
func MaxDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: MaxDiff dimension mismatch")
	}
	d := 0.0
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if v := math.Abs(ra[j] - rb[j]); v > d {
				d = v
			}
		}
	}
	return d
}

// NormInf returns the infinity norm (max absolute row sum).
func (m *Dense) NormInf() float64 {
	n := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > n {
			n = s
		}
	}
	return n
}

// NormOne returns the one norm (max absolute column sum).
func (m *Dense) NormOne() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			sums[j] += math.Abs(v)
		}
	}
	n := 0.0
	for _, s := range sums {
		if s > n {
			n = s
		}
	}
	return n
}

// MaxAbs returns the largest absolute element.
func (m *Dense) MaxAbs() float64 {
	n := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > n {
				n = a
			}
		}
	}
	return n
}

// MulVec computes y = A*x. len(x) must be A.Cols; the result has length
// A.Rows.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("matrix: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// VecNormInf returns max |v_i|.
func VecNormInf(v []float64) float64 {
	n := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > n {
			n = a
		}
	}
	return n
}

// VecNormOne returns sum |v_i|.
func VecNormOne(v []float64) float64 {
	n := 0.0
	for _, x := range v {
		n += math.Abs(x)
	}
	return n
}

// Residual computes the scaled HPL residual
//
//	||Ax-b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n)
//
// which HPL declares PASSED when below the threshold 16.0. A must be the
// original (unfactored) matrix.
func Residual(a *Dense, x, b []float64) float64 {
	n := a.Rows
	if n == 0 {
		return 0
	}
	ax := a.MulVec(x)
	for i := range ax {
		ax[i] -= b[i]
	}
	num := VecNormInf(ax)
	den := machEps * (a.NormInf()*VecNormInf(x) + VecNormInf(b)) * float64(n)
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// ResidualThreshold is the HPL pass/fail threshold for the scaled residual.
const ResidualThreshold = 16.0

// machEps is the double-precision machine epsilon (2^-52), as used by HPL.
const machEps = 2.220446049250313e-16
