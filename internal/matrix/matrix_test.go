package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseAndAccess(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 12 {
		t.Fatalf("bad dense: %+v", m)
	}
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	if m.Data[1*4+2] != 7.5 {
		t.Errorf("row-major layout violated")
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative dims")
		}
	}()
	NewDense(-1, 2)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows wrong: %+v", m)
	}
	if FromRows(nil).Rows != 0 {
		t.Errorf("empty FromRows")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestViewSharesStorage(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	v := m.View(1, 1, 2, 2)
	if v.At(0, 0) != 6 || v.At(1, 1) != 11 {
		t.Fatalf("view content wrong: %v %v", v.At(0, 0), v.At(1, 1))
	}
	v.Set(0, 0, 60)
	if m.At(1, 1) != 60 {
		t.Errorf("view must share storage")
	}
	if v.Stride != 4 {
		t.Errorf("view stride = %d, want parent stride 4", v.Stride)
	}
}

func TestViewEmptyAndOOB(t *testing.T) {
	m := NewDense(2, 2)
	v := m.View(1, 1, 0, 0)
	if v.Rows != 0 || v.Cols != 0 {
		t.Errorf("empty view dims wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds view")
		}
	}()
	m.View(1, 1, 2, 2)
}

func TestCloneAndCopyFrom(t *testing.T) {
	m := RandomGeneral(5, 7, 1)
	c := m.Clone()
	if !Equal(m, c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("clone shares storage")
	}
	d := NewDense(5, 7)
	d.CopyFrom(m)
	if !Equal(d, m) {
		t.Error("CopyFrom mismatch")
	}
	// Clone of a view is compact.
	v := m.View(1, 2, 3, 4).Clone()
	if v.Stride != v.Cols {
		t.Errorf("clone of view should be compact, stride=%d", v.Stride)
	}
}

func TestZeroAndEye(t *testing.T) {
	m := RandomGeneral(4, 4, 2)
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Error("Zero failed")
	}
	e := Eye(3)
	if e.At(0, 0) != 1 || e.At(1, 1) != 1 || e.At(0, 1) != 0 {
		t.Error("Eye wrong")
	}
	if e.NormInf() != 1 || e.NormOne() != 1 {
		t.Error("identity norms wrong")
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{
		{1, -2},
		{-3, 4},
	})
	if m.NormInf() != 7 { // max row sum = 3+4
		t.Errorf("NormInf = %v, want 7", m.NormInf())
	}
	if m.NormOne() != 6 { // max col sum = 2+4
		t.Errorf("NormOne = %v, want 6", m.NormOne())
	}
	if m.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v, want 4", m.MaxAbs())
	}
	var empty Dense
	if empty.NormOne() != 0 {
		t.Error("empty NormOne should be 0")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2},
		{3, 4},
	})
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestVecNorms(t *testing.T) {
	v := []float64{1, -3, 2}
	if VecNormInf(v) != 3 {
		t.Error("VecNormInf")
	}
	if VecNormOne(v) != 6 {
		t.Error("VecNormOne")
	}
}

func TestMaxDiff(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.5, 2}})
	if MaxDiff(a, b) != 0.5 {
		t.Errorf("MaxDiff = %v", MaxDiff(a, b))
	}
}

func TestResidualExactSolution(t *testing.T) {
	// For x solving Ax=b exactly, residual is 0.
	a := FromRows([][]float64{
		{2, 0},
		{0, 4},
	})
	x := []float64{1, 2}
	b := a.MulVec(x)
	if r := Residual(a, x, b); r != 0 {
		t.Errorf("residual of exact solution = %v", r)
	}
}

func TestResidualPerturbedSolution(t *testing.T) {
	a, b := RandomSystem(50, 42)
	// A deliberately wrong x should produce an enormous scaled residual.
	x := make([]float64, 50)
	for i := range x {
		x[i] = 1
	}
	if r := Residual(a, x, b); r < ResidualThreshold {
		t.Errorf("garbage solution passed residual check: %v", r)
	}
}

func TestResidualZeroDenominator(t *testing.T) {
	a := NewDense(2, 2)
	x := []float64{0, 0}
	b := []float64{0, 0}
	if r := Residual(a, x, b); r != 0 {
		t.Errorf("all-zero system residual = %v", r)
	}
	b[0] = 1
	// With b nonzero the denominator is nonzero; the inconsistent system
	// must fail the check by a huge margin.
	if r := Residual(a, x, b); r < 1e12 {
		t.Errorf("inconsistent zero system residual = %v, want huge", r)
	}
	if Residual(NewDense(0, 0), nil, nil) != 0 {
		t.Error("empty system residual should be 0")
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a := RandomGeneral(10, 10, 7)
	b := RandomGeneral(10, 10, 7)
	if !Equal(a, b) {
		t.Error("same seed must give same matrix")
	}
	c := RandomGeneral(10, 10, 8)
	if Equal(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestPRNGRange(t *testing.T) {
	p := NewPRNG(1)
	for i := 0; i < 10000; i++ {
		v := p.Float64()
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	for i := 0; i < 1000; i++ {
		if n := p.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestPRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	NewPRNG(1).Intn(0)
}

func TestPRNGMeanRoughlyZero(t *testing.T) {
	p := NewPRNG(123)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	if mean := sum / n; math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
}

func TestRandomSystemShapes(t *testing.T) {
	a, b := RandomSystem(17, 3)
	if a.Rows != 17 || a.Cols != 17 || len(b) != 17 {
		t.Error("RandomSystem shapes wrong")
	}
	if len(RandomVector(5, 1)) != 5 {
		t.Error("RandomVector length")
	}
}

// Property: views are consistent with parent indexing.
func TestViewIndexingProperty(t *testing.T) {
	f := func(seed uint64, i0, j0, r0, c0 uint8) bool {
		m := RandomGeneral(12, 9, seed)
		i, j := int(i0)%6, int(j0)%4
		r, c := 1+int(r0)%(12-6), 1+int(c0)%(9-4)
		v := m.View(i, j, r, c)
		for ii := 0; ii < r; ii++ {
			for jj := 0; jj < c; jj++ {
				if v.At(ii, jj) != m.At(i+ii, j+jj) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: NormInf(A) >= MaxAbs(A) for matrices with at least one column.
func TestNormDominanceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := RandomGeneral(8, 8, seed)
		return m.NormInf() >= m.MaxAbs() && m.NormOne() >= m.MaxAbs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
