package matrix

// Special test matrices used across the test suites to probe numerical
// edge cases of the factorization drivers.

// Hilbert returns the notoriously ill-conditioned Hilbert matrix
// H(i,j) = 1/(i+j+1).
func Hilbert(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 1/float64(i+j+1))
		}
	}
	return m
}

// Wilkinson returns the classic pivot-growth adversary: unit diagonal,
// -1 below the diagonal, +1 in the last column. Partial pivoting never
// swaps, and the last column doubles at every elimination step, reaching
// growth 2^(n-1).
func Wilkinson(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
		for j := 0; j < i; j++ {
			m.Set(i, j, -1)
		}
		m.Set(i, n-1, 1)
	}
	return m
}

// DiagonallyDominant returns a random matrix with its diagonal boosted so
// every row is strictly diagonally dominant — guaranteed non-singular and
// factorizable without pivoting.
func DiagonallyDominant(n int, seed uint64) *Dense {
	m := RandomGeneral(n, n, seed)
	for i := 0; i < n; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			if v < 0 {
				s -= v
			} else {
				s += v
			}
		}
		m.Set(i, i, s+1)
	}
	return m
}

// Graded returns a random matrix with rows scaled by decades of 10 from 1
// down to 10^-decades, stressing scaling robustness.
func Graded(n int, decades float64, seed uint64) *Dense {
	m := RandomGeneral(n, n, seed)
	for i := 0; i < n; i++ {
		s := pow10(-decades * float64(i) / float64(n))
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
	return m
}

// pow10 computes 10^x without importing math (keeps this file dependency
// free); accuracy is ample for test-matrix generation.
func pow10(x float64) float64 {
	// 10^x = e^(x ln 10)
	const ln10 = 2.302585092994046
	return exp(x * ln10)
}

// exp is a simple range-reduced Taylor evaluation of e^x.
func exp(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	// e^x = (e^(x/2^k))^(2^k) with x/2^k small.
	k := 0
	for x > 0.5 {
		x /= 2
		k++
	}
	// Taylor to machine precision for |x| <= 0.5.
	term, sum := 1.0, 1.0
	for i := 1; i < 20; i++ {
		term *= x / float64(i)
		sum += term
	}
	for ; k > 0; k-- {
		sum *= sum
	}
	if neg {
		return 1 / sum
	}
	return sum
}
