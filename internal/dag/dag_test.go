package dag

import (
	"sync"
	"testing"
	"testing/quick"

	"phihpl/internal/matrix"
)

// executeAll drains the scheduler with a given completion strategy:
// claim up to width tasks, then complete one chosen by pick(len(inflight)).
// It verifies all DAG invariants along the way and returns the execution
// order.
func executeAll(t *testing.T, np, width int, pick func(n int) int) []Task {
	t.Helper()
	s := New(np)
	factDone := make([]bool, np)
	updDone := make(map[[2]int]bool)
	var inflight []Task
	var order []Task

	for !s.Done() || len(inflight) > 0 {
		// Claim as many tasks as the window allows.
		for len(inflight) < width {
			task, ok := s.Next()
			if !ok {
				break
			}
			// Dependency checks at issue time.
			switch task.Kind {
			case PanelFact:
				for st := 0; st < task.Panel; st++ {
					if !updDone[[2]int{st, task.Panel}] {
						t.Fatalf("fact(%d) issued before upd(%d->%d)", task.Panel, st, task.Panel)
					}
				}
				if factDone[task.Panel] {
					t.Fatalf("fact(%d) issued twice", task.Panel)
				}
			case Update:
				if !factDone[task.Stage] {
					t.Fatalf("upd(%d->%d) issued before fact(%d)", task.Stage, task.Panel, task.Stage)
				}
				if task.Stage > 0 && !updDone[[2]int{task.Stage - 1, task.Panel}] {
					t.Fatalf("upd(%d->%d) issued before previous stage applied", task.Stage, task.Panel)
				}
				if updDone[[2]int{task.Stage, task.Panel}] {
					t.Fatalf("upd(%d->%d) issued twice", task.Stage, task.Panel)
				}
			}
			inflight = append(inflight, task)
		}
		if len(inflight) == 0 {
			if !s.Done() {
				t.Fatal("deadlock: nothing in flight, scheduler not done")
			}
			break
		}
		i := pick(len(inflight))
		task := inflight[i]
		inflight = append(inflight[:i], inflight[i+1:]...)
		switch task.Kind {
		case PanelFact:
			factDone[task.Panel] = true
		case Update:
			updDone[[2]int{task.Stage, task.Panel}] = true
		}
		s.Complete(task)
		order = append(order, task)
	}

	// Completeness.
	for p := 0; p < np; p++ {
		if !factDone[p] {
			t.Fatalf("panel %d never factored", p)
		}
		for st := 0; st < p; st++ {
			if !updDone[[2]int{st, p}] {
				t.Fatalf("upd(%d->%d) never executed", st, p)
			}
		}
	}
	if len(order) != TotalTasks(np) {
		t.Fatalf("executed %d tasks, want %d", len(order), TotalTasks(np))
	}
	return order
}

func TestSerialExecution(t *testing.T) {
	order := executeAll(t, 6, 1, func(n int) int { return 0 })
	// First task must be fact(0); second upd(0->1); third fact(1)
	// (look-ahead priority).
	if order[0].String() != "fact(0)" {
		t.Errorf("first = %v", order[0])
	}
	if order[1].String() != "upd(0->1)" {
		t.Errorf("second = %v", order[1])
	}
	if order[2].String() != "fact(1)" {
		t.Errorf("third (look-ahead) = %v, want fact(1)", order[2])
	}
}

func TestWideWindowFIFO(t *testing.T) {
	executeAll(t, 10, 8, func(n int) int { return 0 })
}

func TestWideWindowLIFO(t *testing.T) {
	executeAll(t, 10, 8, func(n int) int { return n - 1 })
}

func TestRandomCompletionOrderProperty(t *testing.T) {
	f := func(seed uint64, npRaw, widthRaw uint8) bool {
		np := 2 + int(npRaw)%12
		width := 1 + int(widthRaw)%6
		rng := matrix.NewPRNG(seed)
		// run with random completion choice; executeAll fails the test
		// itself on invariant violations.
		executeAll(t, np, width, func(n int) int { return rng.Intn(n) })
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSinglePanel(t *testing.T) {
	s := New(1)
	task, ok := s.Next()
	if !ok || task.Kind != PanelFact || task.Panel != 0 {
		t.Fatalf("task = %v ok=%v", task, ok)
	}
	if _, ok := s.Next(); ok {
		t.Error("nothing else should be ready")
	}
	s.Complete(task)
	if !s.Done() {
		t.Error("should be done")
	}
}

func TestLookaheadPriority(t *testing.T) {
	// With panels 0..3: after fact(0), updates are ready. Claim upd(0->1),
	// complete it; the very next task must be fact(1) even though other
	// stage-0 updates remain.
	s := New(4)
	f0, _ := s.Next()
	s.Complete(f0)
	u01, _ := s.Next()
	if u01.String() != "upd(0->1)" {
		t.Fatalf("got %v", u01)
	}
	s.Complete(u01)
	next, _ := s.Next()
	if next.String() != "fact(1)" {
		t.Errorf("look-ahead violated: got %v, want fact(1)", next)
	}
}

func TestPanelBusyExclusion(t *testing.T) {
	// While upd(0->2) is in flight, no other task may touch panel 2.
	s := New(3)
	f0, _ := s.Next()
	s.Complete(f0)
	first, _ := s.Next() // upd(0->1)
	second, _ := s.Next()
	if second.Panel == first.Panel {
		t.Errorf("two concurrent tasks on panel %d", first.Panel)
	}
	if _, ok := s.Next(); ok {
		t.Error("only two updates can be in flight after fact(0) in a 3-panel DAG")
	}
}

func TestCompletePanics(t *testing.T) {
	s := New(3)
	for name, bad := range map[string]Task{
		"not-issued":   {Kind: Update, Stage: 0, Panel: 1},
		"out-of-range": {Kind: Update, Stage: 0, Panel: 99},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			s.Complete(bad)
		}()
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0 panels")
		}
	}()
	New(0)
}

func TestStats(t *testing.T) {
	s := New(3)
	task, _ := s.Next()
	s.Complete(task)
	st := s.Stats()
	if st.NextCalls != 1 || st.TasksIssued != 1 || st.TasksComplete != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentWorkersDrainDAG(t *testing.T) {
	// Hammer the scheduler from many goroutines (run with -race).
	np := 24
	s := New(np)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok := s.Next()
				if !ok {
					if s.Done() {
						return
					}
					continue
				}
				s.Complete(task)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.TasksComplete != int64(TotalTasks(np)) {
		t.Errorf("completed %d tasks, want %d", st.TasksComplete, TotalTasks(np))
	}
}

func TestTotalTasks(t *testing.T) {
	if TotalTasks(1) != 1 || TotalTasks(4) != 4+6 {
		t.Error("TotalTasks")
	}
}

func TestGroupPlan(t *testing.T) {
	g := GroupPlan{TotalThreads: 240, MaxGroups: 16}
	// Plenty of panels left: all groups active.
	if got := g.GroupsAt(100); got != 16 {
		t.Errorf("GroupsAt(100) = %d, want 16", got)
	}
	// Few panels left: groups merge.
	if got := g.GroupsAt(4); got != 2 {
		t.Errorf("GroupsAt(4) = %d, want 2", got)
	}
	if got := g.GroupsAt(1); got != 1 {
		t.Errorf("GroupsAt(1) = %d, want 1", got)
	}
	if got := g.GroupsAt(0); got != 1 {
		t.Errorf("GroupsAt(0) = %d", got)
	}
	// Monotone non-increasing as work shrinks.
	prev := 1 << 30
	for rem := 120; rem >= 1; rem-- {
		n := g.GroupsAt(rem)
		if n > prev {
			t.Fatalf("groups grew as work shrank at rem=%d", rem)
		}
		prev = n
	}
	if g.ThreadsPerGroup(16) != 15 {
		t.Errorf("ThreadsPerGroup(16) = %d", g.ThreadsPerGroup(16))
	}
	if g.ThreadsPerGroup(0) != 240 {
		t.Errorf("ThreadsPerGroup(0) = %d", g.ThreadsPerGroup(0))
	}
	if (GroupPlan{TotalThreads: 0, MaxGroups: 0}).ThreadsPerGroup(5) != 1 {
		t.Error("threads clamp to 1")
	}
}

func TestGroupPlanBoundaries(t *testing.T) {
	g := GroupPlan{TotalThreads: 240, MaxGroups: 16}
	b := g.Boundaries(100)
	if len(b) == 0 {
		t.Fatal("expected some super-stage boundaries")
	}
	// Boundaries are strictly increasing and fall inside (0, np).
	prev := 0
	for _, s := range b {
		if s <= prev || s >= 100 {
			t.Fatalf("bad boundary %d in %v", s, b)
		}
		prev = s
	}
	// Logarithmically few barriers — the point of super-stages.
	if len(b) > 6 {
		t.Errorf("too many regroup barriers: %v", b)
	}
}

func TestKindAndTaskStrings(t *testing.T) {
	if PanelFact.String() != "PanelFact" || Update.String() != "Update" {
		t.Error("kind strings")
	}
}

func TestPanelsAccessor(t *testing.T) {
	if New(7).Panels() != 7 {
		t.Error("Panels")
	}
}

func TestCompleteUpdateOutOfOrderPanics(t *testing.T) {
	s := New(3)
	f0, _ := s.Next()
	s.Complete(f0)
	u, _ := s.Next() // upd(0->1)
	// Forge a wrong-stage completion for the same panel.
	bad := Task{Kind: Update, Stage: 1, Panel: u.Panel}
	defer func() {
		if recover() == nil {
			t.Error("expected out-of-order panic")
		}
	}()
	s.Complete(bad)
}

func TestCompleteFactWrongStatePanics(t *testing.T) {
	s := New(2)
	f0, _ := s.Next()
	s.Complete(f0)
	u, _ := s.Next() // upd(0->1), panel 1 busy
	_ = u
	// Forge a premature factorization completion for panel 1.
	defer func() {
		if recover() == nil {
			t.Error("expected DAG-state panic")
		}
	}()
	s.Complete(Task{Kind: PanelFact, Stage: 1, Panel: 1})
}
