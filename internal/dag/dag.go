// Package dag implements the compact DAG-based dynamic scheduler for LU
// factorization described in Section IV of the paper (extending Buttari et
// al. to a many-core processor).
//
// The dependency DAG of blocked LU (Figure 5b) is never materialized.
// Instead, it is represented as a one-dimensional array with one element
// per column panel holding the panel's current stage — the number of
// trailing-update steps already applied to it. A panel p is ready for
// factorization when it has absorbed updates from all p previous stages;
// an update task (s, p) is ready when panel s has been factored and panel
// p has absorbed exactly s updates. Completion increments the panel's
// stage, which requires no critical section in the paper because the same
// thread that executed the task performs the increment; here the whole
// scheduler sits behind one mutex that only group "master" threads touch,
// mirroring the paper's contention fix.
//
// Look-ahead falls out of the task priority: panel factorizations are
// offered before updates, and within a stage the left-most panel (s+1,
// the next look-ahead target) is updated first, so the next panel
// factorization overlaps the remaining updates of the current stage
// (Figure 5c).
package dag

import (
	"fmt"
	"sync"
)

// Kind discriminates the two task categories of the paper's DAG.
type Kind int

const (
	// PanelFact is Task1: factorize panel Panel (DGETRF on the panel).
	PanelFact Kind = iota
	// Update is Task2: apply stage Stage to panel Panel — pivoting
	// (DLASWP), forward solve (DTRSM) and trailing update (DGEMM).
	Update
)

func (k Kind) String() string {
	if k == PanelFact {
		return "PanelFact"
	}
	return "Update"
}

// Task is one schedulable unit.
type Task struct {
	Kind  Kind
	Stage int // Update: stage being applied. PanelFact: == Panel.
	Panel int // target panel
}

func (t Task) String() string {
	if t.Kind == PanelFact {
		return fmt.Sprintf("fact(%d)", t.Panel)
	}
	return fmt.Sprintf("upd(%d->%d)", t.Stage, t.Panel)
}

// Stats reports scheduler activity, used by the contention ablation.
type Stats struct {
	NextCalls     int64 // critical-section entries
	TasksIssued   int64
	TasksComplete int64
}

// Scheduler hands out LU tasks respecting the DAG dependencies. It is safe
// for concurrent use; in the intended deployment only one master thread
// per thread group calls into it.
type Scheduler struct {
	mu       sync.Mutex
	np       int
	stage    []int  // updates absorbed by each panel
	factored []bool // panel factorization complete
	busy     []bool // a task currently operates on this panel
	nDone    int    // factored panel count
	stats    Stats
}

// New returns a scheduler for a matrix divided into np column panels.
func New(np int) *Scheduler {
	if np < 1 {
		panic("dag: need at least one panel")
	}
	return &Scheduler{
		np:       np,
		stage:    make([]int, np),
		factored: make([]bool, np),
		busy:     make([]bool, np),
	}
}

// Panels returns the panel count.
func (s *Scheduler) Panels() int { return s.np }

// Next claims the highest-priority ready task. ok is false when nothing is
// ready right now — the caller should retry after some task completes (or
// check Done). Claimed tasks must be reported back via Complete.
func (s *Scheduler) Next() (t Task, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.NextCalls++

	// Priority 1: look-ahead panel factorization — any panel that has
	// absorbed all its updates and awaits factorization.
	for p := 0; p < s.np; p++ {
		if !s.factored[p] && !s.busy[p] && s.stage[p] == p {
			s.busy[p] = true
			s.stats.TasksIssued++
			return Task{Kind: PanelFact, Stage: p, Panel: p}, true
		}
	}
	// Priority 2: the left-most ready update of the lowest stage.
	bestPanel := -1
	bestStage := s.np + 1
	for p := 0; p < s.np; p++ {
		if s.factored[p] || s.busy[p] {
			continue
		}
		st := s.stage[p]
		if st < p && s.factored[st] && st < bestStage {
			bestStage, bestPanel = st, p
		}
	}
	if bestPanel >= 0 {
		s.busy[bestPanel] = true
		s.stats.TasksIssued++
		return Task{Kind: Update, Stage: bestStage, Panel: bestPanel}, true
	}
	return Task{}, false
}

// Complete reports that a claimed task finished, releasing its panel and
// advancing the DAG.
func (s *Scheduler) Complete(t Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Panel < 0 || t.Panel >= s.np || !s.busy[t.Panel] {
		panic(fmt.Sprintf("dag: Complete(%v) for a task that was not issued", t))
	}
	s.busy[t.Panel] = false
	s.stats.TasksComplete++
	switch t.Kind {
	case PanelFact:
		if s.factored[t.Panel] || s.stage[t.Panel] != t.Panel {
			panic(fmt.Sprintf("dag: Complete(%v) violates DAG state", t))
		}
		s.factored[t.Panel] = true
		s.nDone++
	case Update:
		if s.stage[t.Panel] != t.Stage {
			panic(fmt.Sprintf("dag: Complete(%v) out of order (stage=%d)", t, s.stage[t.Panel]))
		}
		s.stage[t.Panel]++
	}
}

// Done reports whether every panel has been factored.
func (s *Scheduler) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nDone == s.np
}

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TotalTasks returns the number of tasks the full factorization requires:
// np panel factorizations plus np(np-1)/2 updates.
func TotalTasks(np int) int { return np + np*(np-1)/2 }

// GroupPlan describes the super-stage thread regrouping of Section IV-A:
// within a super-stage the partitioning of hardware threads into task
// groups is fixed; at super-stage boundaries a global barrier is executed
// and threads are regrouped into fewer, larger groups so that panel
// factorization keeps up as trailing updates shrink.
type GroupPlan struct {
	TotalThreads int
	MaxGroups    int
}

// GroupsAt returns how many task groups the plan uses while `remaining`
// panels are left. The group count halves as the remaining work shrinks,
// which doubles the threads available to each panel factorization; the
// halving schedule keeps regrouping barriers infrequent (logarithmic in
// panel count).
func (g GroupPlan) GroupsAt(remaining int) int {
	if remaining < 1 {
		remaining = 1
	}
	n := g.MaxGroups
	if n < 1 {
		n = 1
	}
	for n > 1 && remaining < 2*n {
		n /= 2
	}
	return n
}

// ThreadsPerGroup returns the thread allocation for the given group count.
func (g GroupPlan) ThreadsPerGroup(groups int) int {
	if groups < 1 {
		groups = 1
	}
	t := g.TotalThreads / groups
	if t < 1 {
		t = 1
	}
	return t
}

// Boundaries returns the super-stage boundaries for np panels: the list of
// stages at which the plan regroups (excluding stage 0), in order.
func (g GroupPlan) Boundaries(np int) []int {
	var out []int
	cur := g.GroupsAt(np)
	for s := 1; s < np; s++ {
		if n := g.GroupsAt(np - s); n != cur {
			out = append(out, s)
			cur = n
		}
	}
	return out
}
