// Package simlu replays the native-Linpack schedules of internal/lu on the
// simulated Knights Corner in virtual time, regenerating Figure 6 (native
// Linpack performance, static look-ahead vs. dynamic scheduling vs. the
// DGEMM roofline) and Figure 7 (Gantt charts of the execution profile).
//
// The dynamic simulation drives the *same* dag.Scheduler the real driver
// uses, with an exact work-conserving list scheduler over virtual thread
// groups; task durations come from the calibrated machine model. Thread
// groups regroup at super-stage boundaries exactly as Section IV-A
// describes: a drain, a global barrier, then fewer/larger groups.
package simlu

import (
	"container/heap"

	"phihpl/internal/dag"
	"phihpl/internal/machine"
	"phihpl/internal/perfmodel"
	"phihpl/internal/trace"
)

// Config parameterizes a native Linpack simulation.
type Config struct {
	N  int // problem size
	NB int // panel width; 0 picks the paper's k=300 blocking (clamped)
	// MaxGroups is the initial number of thread groups (0 -> 16).
	MaxGroups int
	// Trace, when non-nil, receives one span per executed kernel, with
	// Worker = group index (Figure 7).
	Trace *trace.Recorder
	// Model overrides the Knights Corner model (nil -> NewKNC()).
	Model *perfmodel.KNC
	// DisableRegroup turns super-stage regrouping off (ablation).
	DisableRegroup bool
	// AllThreadsContend models the original Buttari scheme where every
	// hardware thread (not one master per group) enters the scheduler
	// critical section; each scheduler call then costs threads× more
	// (ablation for the master-thread optimization).
	AllThreadsContend bool
}

func (c Config) withDefaults() Config {
	if c.NB < 1 {
		c.NB = 300
	}
	if c.NB > c.N {
		c.NB = c.N
	}
	for c.N/c.NB < 4 && c.NB > 32 { // keep at least 4 panels in play
		c.NB /= 2
	}
	if c.MaxGroups < 1 {
		c.MaxGroups = 4
	}
	if c.Model == nil {
		c.Model = perfmodel.NewKNC()
	}
	return c
}

// Result reports a simulated run.
type Result struct {
	Seconds float64
	GFLOPS  float64
	Eff     float64 // vs. 60-core compute peak
	Stages  int
}

func (c Config) finish(seconds float64) Result {
	flops := perfmodel.LUFlops(c.N)
	peak := machine.KnightsCorner().ComputePeakDPGFLOPS() * 1e9
	g := flops / seconds / 1e9
	return Result{
		Seconds: seconds,
		GFLOPS:  g,
		Eff:     g * 1e9 / peak,
		Stages:  (c.N + c.NB - 1) / c.NB,
	}
}

const (
	cardThreads    = 240 // 60 compute cores × 4 threads
	threadsPerCore = 4
	// schedCallCost is the virtual cost of one scheduler critical-section
	// entry (a contended atomic + cache-line transfer).
	schedCallCost = 0.4e-6
)

// taskCost returns the duration of a task executed by a group owning
// `threads` hardware threads, and the sub-span breakdown for tracing.
func taskCost(m *perfmodel.KNC, n, nb int, t dag.Task, threads int, groups int) (total float64, parts []tracePart) {
	cores := float64(threads) / threadsPerCore
	switch t.Kind {
	case dag.PanelFact:
		lo := t.Panel * nb
		w := nb
		if lo+w > n {
			w = n - lo
		}
		d := m.PanelTime(n-lo, w, threads)
		return d, []tracePart{{"DGETRF", d}}
	default:
		sLo := t.Stage * nb
		sw := nb
		if sLo+sw > n {
			sw = n - sLo
		}
		pLo := t.Panel * nb
		pw := nb
		if pLo+pw > n {
			pw = n - pLo
		}
		swap := m.SwapTimeGroup(sw, pw, 1/float64(groups))
		trsm := m.TrsmTimeGroup(sw, pw, cores)
		var gemm float64
		if rows := n - (sLo + sw); rows > 0 {
			gemm = m.UpdateDgemmTime(rows, pw, sw, cores)
		}
		return swap + trsm + gemm, []tracePart{{"DLASWP", swap}, {"DTRSM", trsm}, {"DGEMM", gemm}}
	}
}

type tracePart struct {
	name string
	d    float64
}

func emit(rec *trace.Recorder, worker, iter int, start float64, parts []tracePart) {
	if rec == nil {
		return
	}
	t := start
	for _, p := range parts {
		if p.d > 0 {
			rec.Add(worker, p.name, iter, t, t+p.d)
			t += p.d
		}
	}
}

// completion is one in-flight task in the event heap.
type completion struct {
	at     float64
	worker int
	task   dag.Task
}

type completionHeap []completion

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Dynamic simulates the DAG-scheduled native Linpack and returns its
// performance.
func Dynamic(cfg Config) Result {
	cfg = cfg.withDefaults()
	n, nb, m := cfg.N, cfg.NB, cfg.Model
	np := (n + nb - 1) / nb
	sched := dag.New(np)
	plan := dag.GroupPlan{TotalThreads: cardThreads, MaxGroups: cfg.MaxGroups}

	groups := plan.GroupsAt(np)
	if cfg.DisableRegroup {
		groups = cfg.MaxGroups
	}
	threads := plan.ThreadsPerGroup(groups)

	// free[g] = time group g becomes idle; groups all start at 0.
	free := make([]float64, groups)
	var events completionHeap
	factored := 0
	now := 0.0
	draining := false

	schedOverhead := func() float64 {
		if cfg.AllThreadsContend {
			// Every thread of the group redundantly enters the critical
			// section and they serialize against all other threads.
			return schedCallCost * float64(threads) * float64(groups)
		}
		return schedCallCost
	}

	dispatch := func(g int, at float64) bool {
		task, ok := sched.Next()
		if !ok {
			return false
		}
		d, parts := taskCost(m, n, nb, task, threads, groups)
		d += schedOverhead()
		emit(cfg.Trace, g, task.Stage, at, parts)
		heap.Push(&events, completion{at: at + d, worker: g, task: task})
		free[g] = at + d
		return true
	}

	// Kick off: all groups try to grab work at t=0.
	for g := 0; g < groups; g++ {
		if !dispatch(g, 0) {
			break
		}
	}

	for len(events) > 0 {
		ev := heap.Pop(&events).(completion)
		now = ev.at
		sched.Complete(ev.task)
		if ev.task.Kind == dag.PanelFact {
			factored++
		}

		// Super-stage regroup: when the group plan wants fewer groups,
		// drain in-flight work, barrier, regroup.
		if !cfg.DisableRegroup {
			want := plan.GroupsAt(np - factored)
			if want < groups {
				draining = true
			}
			if draining && len(events) == 0 {
				groups = plan.GroupsAt(np - factored)
				threads = plan.ThreadsPerGroup(groups)
				barrier := now + perfmodel.BarrierTime(cardThreads)
				if cfg.Trace != nil {
					cfg.Trace.Add(0, "barrier", factored, now, barrier)
				}
				now = barrier
				free = make([]float64, groups)
				for g := range free {
					free[g] = now
				}
				draining = false
			}
		}
		if draining {
			continue
		}

		// Hand new work to every idle group (the completing one first).
		for g := 0; g < groups; g++ {
			if free[g] <= now {
				if !dispatch(g, now) {
					break
				}
			}
		}
	}
	return cfg.finish(now)
}

// Static simulates the static look-ahead scheme (the Figure 6 baseline):
// per stage, the look-ahead panel is updated and factored by a dedicated
// thread partition while the rest of the groups process the remaining
// updates; a global barrier ends every stage.
func Static(cfg Config) Result {
	cfg = cfg.withDefaults()
	n, nb, m := cfg.N, cfg.NB, cfg.Model
	np := (n + nb - 1) / nb

	now := 0.0
	// Stage 0 panel.
	now += m.PanelTime(n, min(nb, n), cardThreads)
	if cfg.Trace != nil {
		cfg.Trace.Add(0, "DGETRF", 0, 0, now)
	}

	for s := 0; s < np-1; s++ {
		// Look-ahead target update runs on the full machine.
		d1, parts := taskCost(m, n, nb, dag.Task{Kind: dag.Update, Stage: s, Panel: s + 1}, cardThreads, 1)
		emit(cfg.Trace, 0, s, now, parts)
		start := now + d1

		// Remaining updates share the machine minus the panel partition.
		rest := np - (s + 2)
		nextRows := n - (s+1)*nb
		nextW := nb
		if (s+2)*nb > n {
			nextW = n - (s+1)*nb
		}
		// Per-stage balancing (the paper's static rule: the minimum panel
		// partition that balances against the trailing update). Unlike the
		// dynamic scheme, the panel can only overlap with *this* stage's
		// updates — any excess is exposed in max() below, and every stage
		// ends at a global barrier.
		var panelT, restT float64
		if rest == 0 {
			panelT = m.PanelTime(nextRows, nextW, cardThreads)
		} else {
			bestStage := -1.0
			for _, pt := range []int{4, 8, 16, 32, 64, 120, 180, 236} {
				pT := m.PanelTime(nextRows, nextW, pt)
				rT := staticRestTime(m, n, nb, s, rest, cardThreads-pt)
				if st := maxf(pT, rT); bestStage < 0 || st < bestStage {
					bestStage, panelT, restT = st, pT, rT
				}
			}
		}
		if cfg.Trace != nil {
			cfg.Trace.Add(0, "DGETRF", s+1, start, start+panelT)
			if rest > 0 {
				cfg.Trace.Add(1, "DGEMM", s, start, start+restT)
			}
		}
		stageEnd := start + maxf(panelT, restT)
		// Fork-join imbalance: the static scheme distributes whole-panel
		// updates to fixed thread teams and joins at a barrier, so each
		// stage carries a tail of roughly one task granule during which
		// most threads idle. The granule fraction is 1/(rest+1) of the
		// stage — large for the small problems of Figure 7a, negligible
		// for the 30K problem where both schemes meet at 832 GFLOPS.
		imbalance := (d1 + maxf(panelT, restT)) / float64(rest+1)
		barrier := perfmodel.BarrierTime(cardThreads)
		if cfg.Trace != nil {
			cfg.Trace.Add(0, "barrier", s, stageEnd, stageEnd+imbalance+barrier)
		}
		now = stageEnd + imbalance + barrier
	}
	return cfg.finish(now)
}

// staticRestTime estimates the time for the non-look-ahead updates of
// stage s executed by a pool with `threads` hardware threads.
func staticRestTime(m *perfmodel.KNC, n, nb, s, rest, threads int) float64 {
	if rest <= 0 || threads <= 0 {
		return 0
	}
	cores := float64(threads) / threadsPerCore
	sLo := s * nb
	sw := nb
	if sLo+sw > n {
		sw = n - sLo
	}
	total := 0.0
	for i := 0; i < rest; i++ {
		pLo := (s + 2 + i) * nb
		pw := nb
		if pLo+pw > n {
			pw = n - pLo
		}
		total += m.SwapTimeGroup(sw, pw, 1)
		total += m.TrsmTimeGroup(sw, pw, cores)
		if rows := n - (sLo + sw); rows > 0 {
			total += m.UpdateDgemmTime(rows, pw, sw, cores)
		}
	}
	return total
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
