package simlu

import (
	"math"
	"strings"
	"testing"

	"phihpl/internal/trace"
)

func TestFigure6Headline832(t *testing.T) {
	// "For the 30K problem, both schemes achieve 832 GFLOPS, which
	// corresponds to ≈79% efficiency."
	d := Dynamic(Config{N: 30000})
	if math.Abs(d.GFLOPS-832) > 10 {
		t.Errorf("dynamic @30K = %.1f GFLOPS, paper 832", d.GFLOPS)
	}
	if d.Eff < 0.775 || d.Eff > 0.80 {
		t.Errorf("dynamic eff @30K = %.3f, paper ~0.788", d.Eff)
	}
	s := Static(Config{N: 30000})
	// Static approaches dynamic at large sizes (within a few percent).
	if s.GFLOPS < 0.94*d.GFLOPS || s.GFLOPS > d.GFLOPS*1.01 {
		t.Errorf("static @30K = %.1f should approach dynamic %.1f", s.GFLOPS, d.GFLOPS)
	}
}

func TestFigure6DynamicBeatsStaticAtSmallN(t *testing.T) {
	// "Up to 8K, dynamic scheduling outperforms static look-ahead."
	for _, n := range []int{1000, 2000, 5000, 8000} {
		d := Dynamic(Config{N: n})
		s := Static(Config{N: n})
		if d.GFLOPS <= s.GFLOPS {
			t.Errorf("N=%d: dynamic %.1f should beat static %.1f", n, d.GFLOPS, s.GFLOPS)
		}
	}
}

func TestFigure6GapNarrows(t *testing.T) {
	// The relative advantage of dynamic shrinks as N grows.
	rel := func(n int) float64 {
		d := Dynamic(Config{N: n})
		s := Static(Config{N: n})
		return (d.GFLOPS - s.GFLOPS) / s.GFLOPS
	}
	small, large := rel(5000), rel(30000)
	if small <= large {
		t.Errorf("gap should narrow: 5K %.3f vs 30K %.3f", small, large)
	}
}

func TestFigure6Monotone(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1000, 2000, 5000, 8000, 15000, 30000} {
		g := Dynamic(Config{N: n}).GFLOPS
		if g <= prev {
			t.Errorf("dynamic GFLOPS not increasing at N=%d: %.1f <= %.1f", n, g, prev)
		}
		prev = g
	}
}

func TestDeterminism(t *testing.T) {
	a := Dynamic(Config{N: 8000})
	b := Dynamic(Config{N: 8000})
	if a != b {
		t.Errorf("dynamic simulation must be deterministic: %+v vs %+v", a, b)
	}
	if Static(Config{N: 8000}) != Static(Config{N: 8000}) {
		t.Error("static simulation must be deterministic")
	}
}

func TestRegroupingAblation(t *testing.T) {
	// Super-stage regrouping is what keeps panels hidden at small sizes;
	// disabling it must hurt there and matter little at 30K.
	on5 := Dynamic(Config{N: 5000, MaxGroups: 8})
	off5 := Dynamic(Config{N: 5000, MaxGroups: 8, DisableRegroup: true})
	if off5.GFLOPS >= 0.85*on5.GFLOPS {
		t.Errorf("regrouping off @5K should cost >15%%: %.1f vs %.1f", off5.GFLOPS, on5.GFLOPS)
	}
	on30 := Dynamic(Config{N: 30000, MaxGroups: 8})
	off30 := Dynamic(Config{N: 30000, MaxGroups: 8, DisableRegroup: true})
	if off30.GFLOPS < 0.97*on30.GFLOPS {
		t.Errorf("regrouping off @30K should cost little: %.1f vs %.1f", off30.GFLOPS, on30.GFLOPS)
	}
}

func TestContentionAblation(t *testing.T) {
	// All threads entering the critical section (the original scheme the
	// paper extends) must be slower than master-only access.
	base := Dynamic(Config{N: 10000, MaxGroups: 8})
	cont := Dynamic(Config{N: 10000, MaxGroups: 8, AllThreadsContend: true})
	if cont.GFLOPS >= base.GFLOPS {
		t.Errorf("contention should cost: %.1f vs %.1f", cont.GFLOPS, base.GFLOPS)
	}
	if cont.GFLOPS < 0.9*base.GFLOPS {
		t.Errorf("contention cost should be mild at this size: %.1f vs %.1f", cont.GFLOPS, base.GFLOPS)
	}
}

func TestFigure7GanttTraces(t *testing.T) {
	var dyn trace.Recorder
	d := Dynamic(Config{N: 5120, NB: 256, Trace: &dyn})
	var sta trace.Recorder
	s := Static(Config{N: 5120, NB: 256, Trace: &sta})

	// Dynamic finishes first on the 5K problem (the point of Figure 7).
	if d.Seconds >= s.Seconds {
		t.Errorf("dynamic %.3fs should beat static %.3fs at 5K", d.Seconds, s.Seconds)
	}
	// Both traces contain the paper's kernel regions.
	for _, name := range []string{"DGETRF", "DGEMM", "DTRSM", "DLASWP"} {
		if dyn.Totals()[name] <= 0 {
			t.Errorf("dynamic trace missing %s", name)
		}
		if sta.Totals()[name] <= 0 {
			t.Errorf("static trace missing %s", name)
		}
	}
	// Static shows barrier regions; dynamic has (almost) none.
	if sta.Totals()["barrier"] <= 0 {
		t.Error("static trace must contain barrier regions")
	}
	if dyn.Totals()["barrier"] > sta.Totals()["barrier"] {
		t.Error("dynamic should spend less time at barriers than static")
	}
	// The Gantt renders with a legend.
	g := dyn.Gantt(100)
	if !strings.Contains(g, "legend:") || !strings.Contains(g, "DGETRF") {
		t.Errorf("gantt rendering broken:\n%s", g)
	}
	// Span iteration tags cover multiple stages.
	iters := dyn.IterTotals()
	if len(iters) < 10 {
		t.Errorf("expected many stages in trace, got %d", len(iters))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{N: 30000}.withDefaults()
	if c.NB != 300 || c.MaxGroups != 4 || c.Model == nil {
		t.Errorf("defaults: %+v", c)
	}
	// Small N shrinks NB to keep at least 4 panels.
	c = Config{N: 1000}.withDefaults()
	if c.N/c.NB < 4 {
		t.Errorf("NB=%d leaves too few panels for N=1000", c.NB)
	}
	// Tiny N clamps.
	c = Config{N: 40}.withDefaults()
	if c.NB > 40 {
		t.Errorf("NB=%d exceeds N", c.NB)
	}
}

func TestTinyProblems(t *testing.T) {
	// Degenerate sizes should not hang or produce nonsense.
	for _, n := range []int{64, 100, 301} {
		d := Dynamic(Config{N: n})
		s := Static(Config{N: n})
		if d.Seconds <= 0 || s.Seconds <= 0 {
			t.Errorf("N=%d: nonpositive times %v %v", n, d.Seconds, s.Seconds)
		}
		if d.GFLOPS <= 0 || s.GFLOPS <= 0 {
			t.Errorf("N=%d: nonpositive GFLOPS", n)
		}
		if d.Eff > 1 || s.Eff > 1 {
			t.Errorf("N=%d: efficiency above peak", n)
		}
	}
}

func TestStagesReported(t *testing.T) {
	r := Dynamic(Config{N: 3000, NB: 300})
	if r.Stages != 10 {
		t.Errorf("stages = %d, want 10", r.Stages)
	}
}
