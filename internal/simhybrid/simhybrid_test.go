package simhybrid

import (
	"math"
	"strings"
	"testing"

	"phihpl/internal/hpl"
	"phihpl/internal/trace"
)

func TestModeOrdering(t *testing.T) {
	// The event-driven timeline must rank the schemes like Figure 8:
	// none < basic < pipelined.
	none := Simulate(Config{N: 84000, Cards: 1, Mode: hpl.NoLookahead})
	basic := Simulate(Config{N: 84000, Cards: 1, Mode: hpl.BasicLookahead})
	pipe := Simulate(Config{N: 84000, Cards: 1, Mode: hpl.PipelinedLookahead})
	if !(none.Seconds > basic.Seconds && basic.Seconds > pipe.Seconds) {
		t.Errorf("ordering broken: %.1f %.1f %.1f", none.Seconds, basic.Seconds, pipe.Seconds)
	}
	if !(none.CardBusy < basic.CardBusy && basic.CardBusy < pipe.CardBusy) {
		t.Errorf("card utilization ordering broken: %.3f %.3f %.3f",
			none.CardBusy, basic.CardBusy, pipe.CardBusy)
	}
}

func TestCrossValidatesAnalyticModel(t *testing.T) {
	// The event-driven totals must agree with internal/hpl's closed-form
	// model within a few percent — they share cost inputs but compose
	// them differently.
	for _, mode := range []hpl.Mode{hpl.BasicLookahead, hpl.PipelinedLookahead} {
		ev := Simulate(Config{N: 84000, Cards: 1, Mode: mode})
		an := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: mode})
		rel := math.Abs(ev.Seconds-an.Seconds) / an.Seconds
		if rel > 0.08 {
			t.Errorf("%v: event-driven %.1fs vs analytic %.1fs (%.1f%% apart)",
				mode, ev.Seconds, an.Seconds, rel*100)
		}
	}
}

func TestPipelinedCardGapsAreSmall(t *testing.T) {
	var rec trace.Recorder
	r := Simulate(Config{N: 84000, Cards: 1, Mode: hpl.PipelinedLookahead, Trace: &rec})
	if r.CardBusy < 0.9 {
		t.Errorf("pipelined card busy = %.3f, want > 0.9", r.CardBusy)
	}
	// DGEMM spans exist for every simulated iteration.
	iters := rec.IterTotals()
	nonEmpty := 0
	for _, m := range iters {
		if m["DGEMM"] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 60 {
		t.Errorf("only %d iterations carry DGEMM spans", nonEmpty)
	}
}

func TestFigure8Rendering(t *testing.T) {
	out := Figure8(84000, 1)
	for _, w := range []string{"look-ahead: none", "look-ahead: basic", "look-ahead: pipelined",
		"D=DGEMM", "P=panel"} {
		if !strings.Contains(out, w) {
			t.Errorf("figure 8 output missing %q", w)
		}
	}
	// Three lane charts, each with at least 3 lanes.
	if strings.Count(out, "legend:") != 3 {
		t.Error("expected three charts")
	}
}

func TestTruncation(t *testing.T) {
	short := Simulate(Config{N: 84000, Cards: 1, Mode: hpl.BasicLookahead, MaxIters: 3})
	full := Simulate(Config{N: 84000, Cards: 1, Mode: hpl.BasicLookahead})
	if short.Seconds >= full.Seconds {
		t.Error("truncated run should be shorter")
	}
	if short.TFLOPS <= 0 || short.Eff <= 0 || short.Eff > 1 {
		t.Errorf("truncated metrics: %+v", short)
	}
}

func TestDefaultsAndDeterminism(t *testing.T) {
	a := Simulate(Config{N: 60000})
	b := Simulate(Config{N: 60000})
	if a != b {
		t.Error("must be deterministic")
	}
	if a.Seconds <= 0 {
		t.Error("defaults broken")
	}
}
