// Package simhybrid is an event-driven simulation of the hybrid HPL node
// pipeline of Section V (Figure 8): the host lane (panel factorization,
// row swapping, DTRSM, broadcasts), the coprocessor lane (offload DGEMM)
// and the PCIe lane, scheduled under the paper's three look-ahead schemes.
//
// Where internal/hpl prices iterations with closed-form phase sums, this
// package builds the explicit timeline from virtual-time resource
// reservations — the host and card lanes are sim.Resources, phases are
// reservations on them, and the
// overlap structure of Figure 8a/8b/8c emerges from the reservation
// dependencies. The totals cross-validate the analytic model (tests assert
// agreement within a few percent), and the lanes render as the Figure 8
// timeline diagrams.
package simhybrid

import (
	"phihpl/internal/cluster"
	"phihpl/internal/hpl"
	"phihpl/internal/machine"
	"phihpl/internal/offload"
	"phihpl/internal/perfmodel"
	"phihpl/internal/sim"
	"phihpl/internal/trace"
)

// Config mirrors the hybrid HPL configuration.
type Config struct {
	N, NB int
	P, Q  int
	Cards int
	Mode  hpl.Mode
	// MaxIters truncates the run (0 = all iterations) — Figure 8 only
	// needs a few iterations to show the overlap structure.
	MaxIters int
	// Trace receives lane spans: worker 0 = host, 1 = card, 2 = PCIe-ish
	// exposed transfer/broadcast work.
	Trace *trace.Recorder
}

// Result reports the event-driven run.
type Result struct {
	Seconds  float64
	TFLOPS   float64
	Eff      float64
	CardBusy float64
	HostBusy float64
}

// lanes in the trace.
const (
	laneHost = 0
	laneCard = 1
	laneComm = 2
)

// Simulate builds the explicit timeline.
func Simulate(cfg Config) Result {
	if cfg.NB < 1 {
		cfg.NB = 1200
	}
	if cfg.P < 1 {
		cfg.P = 1
	}
	if cfg.Q < 1 {
		cfg.Q = 1
	}
	if cfg.Cards < 1 {
		cfg.Cards = 1
	}

	snb := perfmodel.NewSNB()
	net := cluster.NewCostModel()
	off := offload.SimConfig{Cards: cfg.Cards}

	var (
		host sim.Resource // the host's kernel lane
		card sim.Resource // the coprocessor(s)
		comm sim.Resource // network/PCIe exposed work
	)
	record := func(lane int, name string, iter int, start, end float64) {
		if cfg.Trace != nil && end > start {
			cfg.Trace.Add(lane, name, iter, start, end)
		}
	}

	hostRate := 0.78 * snb.DgemmEff(20000) * snb.Arch.PeakDPGFLOPS() * 1e9
	hostPeak := snb.Arch.PeakDPGFLOPS() * 1e9

	n, nb := cfg.N, cfg.NB
	np := n / nb
	if np < 1 {
		np = 1
	}
	iters := np
	if cfg.MaxIters > 0 && cfg.MaxIters < iters {
		iters = cfg.MaxIters
	}

	// panelReady[i] = time panel i's factorization+broadcast completes.
	panelReady := make([]float64, np+1)

	// Iteration 0's panel is not overlapped with anything.
	{
		rows := n / cfg.P
		d := snb.PanelTime(rows, nb, snb.Arch.Threads()) + net.PivotAllreduce(nb, cfg.P)
		bc := net.Bcast(8*float64(rows)*float64(nb), cfg.Q)
		s, e := host.Reserve(0, d)
		record(laneHost, "panel", 0, s, e)
		s2, e2 := comm.Reserve(e, bc)
		record(laneComm, "Lbcast", 0, s2, e2)
		panelReady[0] = e2
	}

	now := 0.0
	for i := 0; i < iters; i++ {
		mRem := n - (i+1)*nb
		mLoc := mRem / cfg.P
		nLoc := mRem / cfg.Q

		start := panelReady[i]
		if now > start {
			start = now
		}

		var tSwap, tTrsm, tUB float64
		if nLoc > 0 {
			tSwap = 2 * 8 * float64(nb) * float64(nLoc) / (0.25 * snb.Arch.StreamBW)
			tSwap += net.SwapExchange(8*float64(nb)*float64(nLoc), cfg.P)
			tTrsm = float64(nb) * float64(nb) * float64(nLoc) / (0.30 * hostPeak)
			tUB = net.Bcast(8*float64(nb)*float64(nLoc), cfg.P)
		}
		var tUpd float64
		if mLoc > 0 && nLoc > 0 {
			cardRate := offload.SteadyRate(mLoc, nLoc, off) * 1e9
			tUpd = 2 * float64(mLoc) * float64(nLoc) * float64(nb) / (cardRate + hostRate)
		}

		// Next panel phase (overlappable under look-ahead).
		nextPanel := func(at float64) float64 {
			if i+1 >= np {
				return at
			}
			rows := (n - (i+1)*nb) / cfg.P
			d := snb.PanelTime(rows, nb, snb.Arch.Threads()) + net.PivotAllreduce(nb, cfg.P)
			bc := net.Bcast(8*float64(rows)*float64(nb), cfg.Q)
			s, e := host.Reserve(at, d)
			record(laneHost, "panel", i+1, s, e)
			s2, e2 := comm.Reserve(e, bc)
			record(laneComm, "Lbcast", i+1, s2, e2)
			return e2
		}

		switch cfg.Mode {
		case hpl.NoLookahead:
			// Figure 8a: strictly serial; the card idles outside DGEMM.
			s, e := host.Reserve(start, tSwap)
			record(laneHost, "swap", i, s, e)
			s, e = host.Reserve(e, tTrsm)
			record(laneHost, "DTRSM", i, s, e)
			s2, e2 := comm.Reserve(e, tUB)
			record(laneComm, "Ubcast", i, s2, e2)
			s3, e3 := card.Reserve(e2, tUpd)
			record(laneCard, "DGEMM", i, s3, e3)
			now = e3
			panelReady[i+1] = nextPanel(e3)

		case hpl.BasicLookahead:
			// Figure 8b: the next panel overlaps the card's DGEMM, but
			// swap/DTRSM/Ubcast precede the update and expose card idle.
			s, e := host.Reserve(start, tSwap)
			record(laneHost, "swap", i, s, e)
			s, e = host.Reserve(e, tTrsm)
			record(laneHost, "DTRSM", i, s, e)
			s2, e2 := comm.Reserve(e, tUB)
			record(laneComm, "Ubcast", i, s2, e2)
			s3, e3 := card.Reserve(e2, tUpd)
			record(laneCard, "DGEMM", i, s3, e3)
			panelReady[i+1] = nextPanel(e2) // host is free during DGEMM
			now = e3
			if panelReady[i+1] > now {
				now = panelReady[i+1]
			}

		default: // PipelinedLookahead
			// Figure 8c: swap/DTRSM/Ubcast are chunked; the card starts
			// after the first chunk and the rest pipeline underneath.
			const chunks = 8
			chunkCost := (tSwap + tTrsm + tUB) / chunks
			overhead := 1.2e-3
			cardStart := start
			var hostEnd float64
			for c := 0; c < chunks; c++ {
				s, e := host.Reserve(cardStart, chunkCost+overhead)
				record(laneHost, "swap", i, s, e)
				if c == 0 {
					cardStart = e
				}
				hostEnd = e
			}
			s3, e3 := card.Reserve(cardStart, tUpd)
			record(laneCard, "DGEMM", i, s3, e3)
			panelReady[i+1] = nextPanel(hostEnd)
			now = e3
			if panelReady[i+1] > now {
				now = panelReady[i+1]
			}
			if hostEnd > now {
				now = hostEnd
			}
		}
	}

	// When truncated, scale flops to the simulated prefix.
	flops := 0.0
	for i := 0; i < iters; i++ {
		mRem := float64(n - (i+1)*nb)
		flops += 2 * (mRem*mRem*float64(nb) + float64(nb)*float64(nb)*mRem)
	}
	node := machine.HybridNode(cfg.Cards, 64)
	peak := float64(cfg.P*cfg.Q) * node.PeakDPGFLOPS() * 1e9
	tf := flops / now / 1e12
	return Result{
		Seconds:  now,
		TFLOPS:   tf,
		Eff:      tf * 1e12 / peak,
		CardBusy: card.TotalBusy / now,
		HostBusy: host.TotalBusy / now,
	}
}

// Figure8 renders the first few iterations of each look-ahead scheme as
// lane Gantt charts — the paper's Figure 8 schematic, generated from the
// event-driven timeline.
func Figure8(n, cards int) string {
	out := ""
	for _, mode := range []hpl.Mode{hpl.NoLookahead, hpl.BasicLookahead, hpl.PipelinedLookahead} {
		var rec trace.Recorder
		Simulate(Config{N: n, Cards: cards, Mode: mode, MaxIters: 3, Trace: &rec})
		out += "look-ahead: " + mode.String() + " (lanes: 0=host, 1=card, 2=bcast)\n"
		out += rec.Gantt(100)
		out += "\n"
	}
	return out
}
