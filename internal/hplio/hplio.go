// Package hplio reads HPL.dat-style input files and writes HPL.out-style
// reports, so the repository's drivers speak the same dialect as the
// reference High Performance Linpack distribution the paper builds on.
//
// The parser understands the subset of HPL.dat that controls the
// experiments this repository can run: the lists of problem sizes, block
// sizes and process grids, plus a free-form look-ahead (DEPTH) line that
// selects the paper's none/basic/pipelined schemes. Like the original, the
// file is line-oriented with the value(s) first and a trailing comment,
// and runs the cross-product of all parameter lists.
package hplio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Params is the parsed parameter space of one HPL.dat file.
type Params struct {
	Ns     []int // problem sizes
	NBs    []int // block sizes
	Ps, Qs []int // process grids (paired index-wise, as in HPL)
	Depths []int // look-ahead depth: 0=none, 1=basic, 2=pipelined
}

// Combination is one run of the cross-product.
type Combination struct {
	N, NB, P, Q, Depth int
}

// Combinations expands the parameter space in HPL's order: grids outermost,
// then N, then NB, then depth.
func (p *Params) Combinations() []Combination {
	var out []Combination
	for gi := range p.Ps {
		for _, n := range p.Ns {
			for _, nb := range p.NBs {
				depths := p.Depths
				if len(depths) == 0 {
					depths = []int{1}
				}
				for _, d := range depths {
					out = append(out, Combination{N: n, NB: nb, P: p.Ps[gi], Q: p.Qs[gi], Depth: d})
				}
			}
		}
	}
	return out
}

// Parse reads an HPL.dat-style stream. Unknown lines are ignored (the real
// file has many tuning knobs this repository does not model).
func Parse(r io.Reader) (*Params, error) {
	p := &Params{}
	sc := bufio.NewScanner(r)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var counts struct{ ns, nbs, ps, qs, depths int }
	for i, line := range lines {
		lower := strings.ToLower(line)
		switch {
		case strings.Contains(lower, "# of problems sizes"), strings.Contains(lower, "number of problems"):
			counts.ns = firstInt(line)
		case strings.Contains(lower, "ns"):
			if counts.ns > 0 && len(p.Ns) == 0 {
				p.Ns = leadingInts(line, counts.ns)
			}
		case strings.Contains(lower, "# of nbs"):
			counts.nbs = firstInt(line)
		case strings.Contains(lower, "nbs"):
			if counts.nbs > 0 && len(p.NBs) == 0 {
				p.NBs = leadingInts(line, counts.nbs)
			}
		case strings.Contains(lower, "# of process grids"):
			counts.ps = firstInt(line)
			counts.qs = counts.ps
		case strings.Contains(lower, "ps"):
			if counts.ps > 0 && len(p.Ps) == 0 {
				p.Ps = leadingInts(line, counts.ps)
			}
		case strings.Contains(lower, "qs"):
			if counts.qs > 0 && len(p.Qs) == 0 {
				p.Qs = leadingInts(line, counts.qs)
			}
		case strings.Contains(lower, "# of lookahead depth"):
			counts.depths = firstInt(line)
		case strings.Contains(lower, "depths"):
			if counts.depths > 0 && len(p.Depths) == 0 {
				p.Depths = leadingInts(line, counts.depths)
			}
		}
		_ = i
	}
	if len(p.Ns) == 0 || len(p.NBs) == 0 {
		return nil, fmt.Errorf("hplio: no problem or block sizes found")
	}
	if len(p.Ps) == 0 {
		p.Ps, p.Qs = []int{1}, []int{1}
	}
	if len(p.Qs) != len(p.Ps) {
		return nil, fmt.Errorf("hplio: %d Ps but %d Qs", len(p.Ps), len(p.Qs))
	}
	for _, d := range p.Depths {
		if d < 0 || d > 2 {
			return nil, fmt.Errorf("hplio: look-ahead depth %d out of range [0,2]", d)
		}
	}
	return p, nil
}

// firstInt extracts the first integer token of a line (the value field).
func firstInt(line string) int {
	for _, f := range strings.Fields(line) {
		if v, err := strconv.Atoi(f); err == nil {
			return v
		}
	}
	return 0
}

// leadingInts extracts up to n integer tokens from the front of a line.
func leadingInts(line string, n int) []int {
	var out []int
	for _, f := range strings.Fields(line) {
		v, err := strconv.Atoi(f)
		if err != nil {
			break
		}
		out = append(out, v)
		if len(out) == n {
			break
		}
	}
	return out
}

// Example returns a ready-to-parse HPL.dat covering the paper's
// single-node configurations.
func Example() string {
	return `HPLinpack benchmark input file (phihpl subset)
2            # of problems sizes (N)
84000 166800 Ns
1            # of NBs
1200         NBs
2            # of process grids (P x Q)
1 2          Ps
1 2          Qs
2            # of lookahead depth
1 2          DEPTHs
`
}

// Result is one completed (or skipped) run for the report writer.
type Result struct {
	Combination
	Seconds  float64
	GFLOPS   float64
	Residual float64 // negative when not measured (virtual-time runs)
	Passed   bool
	// Skipped marks a combination rejected for illegal input values; it
	// prints no WR or residual line but is counted in the report footer.
	Skipped bool
	// Aborted marks a run cancelled before completion (timeout, SIGINT):
	// its WR line still prints with whatever time elapsed, the residual
	// line reports ABORTED instead of a verdict, and the footer counts it
	// separately — a partial report is still a truthful report.
	Aborted bool
}

// WriteReport renders results in the HPL.out layout. Skipped combinations
// contribute only to the footer's skipped count, like the reference HPL.
func WriteReport(w io.Writer, results []Result) {
	WriteReportHeader(w, "", results)
}

// WriteReportHeader is WriteReport with a free-form configuration line
// (e.g. "look-ahead: pipelined") printed above the result table, the slot
// the reference HPL.out uses for the run's parameter echo. An empty
// header prints nothing extra.
func WriteReportHeader(w io.Writer, header string, results []Result) {
	if header != "" {
		fmt.Fprintln(w, header)
	}
	fmt.Fprintf(w, "%-14s %9s %5s %5s %5s %12s %14s\n",
		"T/V", "N", "NB", "P", "Q", "Time", "Gflops")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	for _, r := range results {
		if r.Skipped {
			continue
		}
		fmt.Fprintf(w, "WR%-2d%-10s %9d %5d %5d %5d %12.2f %14.4e\n",
			r.Depth, "C2C4", r.N, r.NB, r.P, r.Q, r.Seconds, r.GFLOPS)
	}
	for _, r := range results {
		if r.Skipped {
			continue
		}
		if r.Aborted {
			fmt.Fprintf(w, "N=%d NB=%d P=%d Q=%d run cancelled before completion ...... ABORTED\n",
				r.N, r.NB, r.P, r.Q)
			continue
		}
		if r.Residual >= 0 {
			status := "PASSED"
			if !r.Passed {
				status = "FAILED"
			}
			fmt.Fprintf(w, "||Ax-b||_oo/(eps*(||A||_oo*||x||_oo+||b||_oo)*N)= %10.7f ...... %s\n",
				r.Residual, status)
		}
	}
	passed, failed, skipped, aborted := 0, 0, 0, 0
	for _, r := range results {
		if r.Skipped {
			skipped++
			continue
		}
		if r.Aborted {
			aborted++
			continue
		}
		if r.Residual < 0 {
			continue
		}
		if r.Passed {
			passed++
		} else {
			failed++
		}
	}
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintf(w, "Finished %6d tests with the following results:\n", len(results)-skipped-aborted)
	fmt.Fprintf(w, "         %6d tests completed and passed residual checks,\n", passed)
	fmt.Fprintf(w, "         %6d tests completed and failed residual checks,\n", failed)
	fmt.Fprintf(w, "         %6d tests skipped because of illegal input values.\n", skipped)
	if aborted > 0 {
		fmt.Fprintf(w, "         %6d tests aborted before completion.\n", aborted)
	}
}

// SortResults orders results the way HPL prints them (by grid, N, NB, depth).
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.Q != b.Q {
			return a.Q < b.Q
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.NB != b.NB {
			return a.NB < b.NB
		}
		return a.Depth < b.Depth
	})
}
