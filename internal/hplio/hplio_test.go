package hplio

import (
	"strings"
	"testing"
)

func TestParseExample(t *testing.T) {
	p, err := Parse(strings.NewReader(Example()))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ns) != 2 || p.Ns[0] != 84000 || p.Ns[1] != 166800 {
		t.Errorf("Ns = %v", p.Ns)
	}
	if len(p.NBs) != 1 || p.NBs[0] != 1200 {
		t.Errorf("NBs = %v", p.NBs)
	}
	if len(p.Ps) != 2 || p.Ps[1] != 2 || p.Qs[1] != 2 {
		t.Errorf("grids = %v x %v", p.Ps, p.Qs)
	}
	if len(p.Depths) != 2 || p.Depths[0] != 1 || p.Depths[1] != 2 {
		t.Errorf("depths = %v", p.Depths)
	}
}

func TestCombinationsCrossProduct(t *testing.T) {
	p, _ := Parse(strings.NewReader(Example()))
	combos := p.Combinations()
	// 2 grids x 2 Ns x 1 NB x 2 depths = 8.
	if len(combos) != 8 {
		t.Fatalf("combos = %d, want 8", len(combos))
	}
	// Grid outermost, then N, then depth.
	if combos[0] != (Combination{N: 84000, NB: 1200, P: 1, Q: 1, Depth: 1}) {
		t.Errorf("first = %+v", combos[0])
	}
	last := combos[len(combos)-1]
	if last.P != 2 || last.Q != 2 || last.N != 166800 || last.Depth != 2 {
		t.Errorf("last = %+v", last)
	}
}

func TestCombinationsDefaultDepth(t *testing.T) {
	p := &Params{Ns: []int{100}, NBs: []int{10}, Ps: []int{1}, Qs: []int{1}}
	combos := p.Combinations()
	if len(combos) != 1 || combos[0].Depth != 1 {
		t.Errorf("default depth should be basic: %+v", combos)
	}
}

func TestParseIgnoresUnknownLines(t *testing.T) {
	in := `HPLinpack benchmark input file
device out (6=stdout,7=stderr,file)
1    # of problems sizes (N)
5000 Ns
1    # of NBs
128  NBs
16.0 threshold
1    # of process grids (P x Q)
2    Ps
3    Qs
`
	p, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Ns[0] != 5000 || p.NBs[0] != 128 || p.Ps[0] != 2 || p.Qs[0] != 3 {
		t.Errorf("parsed %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("nothing useful")); err == nil {
		t.Error("empty spec should error")
	}
	bad := `1 # of problems sizes (N)
100 Ns
1 # of NBs
10 NBs
2 # of process grids (P x Q)
1 2 Ps
1   Qs
`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("mismatched Ps/Qs should error")
	}
	badDepth := `1 # of problems sizes (N)
100 Ns
1 # of NBs
10 NBs
1 # of lookahead depth
7 DEPTHs
`
	if _, err := Parse(strings.NewReader(badDepth)); err == nil {
		t.Error("depth out of range should error")
	}
}

func TestParseDefaultsGrid(t *testing.T) {
	in := `1 # of problems sizes (N)
64 Ns
1 # of NBs
8 NBs
`
	p, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ps) != 1 || p.Ps[0] != 1 || p.Qs[0] != 1 {
		t.Errorf("default grid: %v %v", p.Ps, p.Qs)
	}
}

func TestWriteReport(t *testing.T) {
	var sb strings.Builder
	WriteReport(&sb, []Result{
		{Combination: Combination{N: 1000, NB: 64, P: 2, Q: 2, Depth: 2},
			Seconds: 1.5, GFLOPS: 444.4, Residual: 0.0031, Passed: true},
		{Combination: Combination{N: 2000, NB: 64, P: 2, Q: 2, Depth: 1},
			Seconds: 9.1, GFLOPS: 585.0, Residual: -1},
	})
	out := sb.String()
	for _, w := range []string{"T/V", "WR2", "PASSED", "Finished", "1 tests completed and passed"} {
		if !strings.Contains(out, w) {
			t.Errorf("report missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Errorf("virtual-time run must not print a residual status:\n%s", out)
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{
		{Combination: Combination{N: 200, NB: 8, P: 2, Q: 2, Depth: 1}},
		{Combination: Combination{N: 100, NB: 8, P: 1, Q: 1, Depth: 2}},
		{Combination: Combination{N: 100, NB: 8, P: 1, Q: 1, Depth: 1}},
	}
	SortResults(rs)
	if rs[0].P != 1 || rs[0].Depth != 1 || rs[2].N != 200 {
		t.Errorf("sorted: %+v", rs)
	}
}

func TestFirstIntAndLeadingInts(t *testing.T) {
	if firstInt("abc 42 xyz") != 42 {
		t.Error("firstInt")
	}
	if firstInt("no numbers") != 0 {
		t.Error("firstInt empty")
	}
	got := leadingInts("1 2 3 label", 2)
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("leadingInts = %v", got)
	}
}
