package hplio

import (
	"strings"
	"testing"
)

// Regression: WriteReport hardcoded "0 tests skipped" in the footer, so
// combinations rejected for illegal input values vanished from the report.
// Skipped results must be counted in the footer, excluded from the
// "Finished N tests" total, and print no WR or residual line.
func TestWriteReportSkipped(t *testing.T) {
	results := []Result{
		{
			Combination: Combination{N: 1000, NB: 64, P: 1, Q: 1, Depth: 1},
			Seconds:     1.5, GFLOPS: 440, Residual: 0.003, Passed: true,
		},
		{
			Combination: Combination{N: 0, NB: 64, P: 1, Q: 1, Depth: 1},
			Residual:    -1, Skipped: true,
		},
		{
			Combination: Combination{N: 2000, NB: 0, P: 1, Q: 1, Depth: 1},
			Residual:    -1, Skipped: true,
		},
	}
	var b strings.Builder
	WriteReport(&b, results)
	out := b.String()

	if !strings.Contains(out, "Finished      1 tests") {
		t.Errorf("finished count must exclude skipped runs:\n%s", out)
	}
	if !strings.Contains(out, "1 tests completed and passed") {
		t.Errorf("passed count wrong:\n%s", out)
	}
	if !strings.Contains(out, "2 tests skipped because of illegal input values") {
		t.Errorf("skipped count missing:\n%s", out)
	}
	if got := strings.Count(out, "WR"); got != 1 {
		t.Errorf("skipped combinations must print no WR line (got %d):\n%s", got, out)
	}
	if got := strings.Count(out, "||Ax-b||"); got != 1 {
		t.Errorf("skipped combinations must print no residual line (got %d):\n%s", got, out)
	}
}

// A report with no skips keeps the reference footer shape.
func TestWriteReportNoSkips(t *testing.T) {
	results := []Result{{
		Combination: Combination{N: 500, NB: 32, P: 1, Q: 1, Depth: 0},
		Seconds:     0.1, GFLOPS: 12, Residual: 0.001, Passed: true,
	}}
	var b strings.Builder
	WriteReport(&b, results)
	out := b.String()
	if !strings.Contains(out, "Finished      1 tests") ||
		!strings.Contains(out, "0 tests skipped because of illegal input values") {
		t.Errorf("footer:\n%s", out)
	}
}
