package hplio

import (
	"strings"
	"testing"
)

// FuzzParse hammers the HPL.dat parser with arbitrary text: it must never
// panic, and any accepted parameter set must be internally consistent.
func FuzzParse(f *testing.F) {
	f.Add(Example())
	f.Add("1 # of problems sizes (N)\n100 Ns\n1 # of NBs\n8 NBs\n")
	f.Add("")
	f.Add("Ns NBs Ps Qs DEPTHs")
	f.Add("999999999999999999999 # of problems sizes (N)")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(p.Ns) == 0 || len(p.NBs) == 0 {
			t.Fatal("accepted params without sizes")
		}
		if len(p.Ps) != len(p.Qs) {
			t.Fatal("accepted mismatched grids")
		}
		for _, d := range p.Depths {
			if d < 0 || d > 2 {
				t.Fatalf("accepted bad depth %d", d)
			}
		}
		// Combinations must be well-formed.
		for _, c := range p.Combinations() {
			if c.P < 1 || c.Q < 1 {
				// Parser does not validate positivity of grid entries; a
				// zero grid would come straight from the input. Flag it
				// here so the fuzzer documents the contract.
				t.Skip("non-positive grid entries pass through the parser")
			}
		}
	})
}
