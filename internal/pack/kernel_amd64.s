// Double-precision 6×8 FMA micro-kernel block and the CPUID probes that
// gate the vector kernels. See kernel_amd64.go for the calling contract.

//go:build amd64 && !noasm

#include "textflag.h"

// func dgemm6x8(a *float64, strideBytes int64, k int64, b *float64, dst *[48]float64)
//
// dst[i][j] = sum_p a[p*stride + i] * b[p*8 + j]   (i<6, j<8, fused)
//
// Register plan (AVX2): Y0..Y11 hold the 6×8 accumulator block (two
// 4-lane halves per row), Y12/Y13 the 8-wide b row, Y14/Y15 the broadcast
// a values of the current column, reused across the three row pairs. One
// k step is 2 b loads, 6 broadcasts and 12 FMAs = 96 fused flops.
TEXT ·dgemm6x8(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ strideBytes+8(FP), AX
	MOVQ k+16(FP), CX
	MOVQ b+24(FP), BX
	MOVQ dst+32(FP), DI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

	TESTQ CX, CX
	JE    store

loop:
	VMOVUPD      (BX), Y12
	VMOVUPD      32(BX), Y13
	VBROADCASTSD (SI), Y14
	VBROADCASTSD 8(SI), Y15
	VFMADD231PD  Y12, Y14, Y0
	VFMADD231PD  Y13, Y14, Y1
	VFMADD231PD  Y12, Y15, Y2
	VFMADD231PD  Y13, Y15, Y3
	VBROADCASTSD 16(SI), Y14
	VBROADCASTSD 24(SI), Y15
	VFMADD231PD  Y12, Y14, Y4
	VFMADD231PD  Y13, Y14, Y5
	VFMADD231PD  Y12, Y15, Y6
	VFMADD231PD  Y13, Y15, Y7
	VBROADCASTSD 32(SI), Y14
	VBROADCASTSD 40(SI), Y15
	VFMADD231PD  Y12, Y14, Y8
	VFMADD231PD  Y13, Y14, Y9
	VFMADD231PD  Y12, Y15, Y10
	VFMADD231PD  Y13, Y15, Y11
	ADDQ         AX, SI
	ADDQ         $64, BX
	DECQ         CX
	JNE          loop

store:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, 128(DI)
	VMOVUPD Y5, 160(DI)
	VMOVUPD Y6, 192(DI)
	VMOVUPD Y7, 224(DI)
	VMOVUPD Y8, 256(DI)
	VMOVUPD Y9, 288(DI)
	VMOVUPD Y10, 320(DI)
	VMOVUPD Y11, 352(DI)
	VZEROUPPER
	RET

// func cpuidLeaf(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLeaf(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
