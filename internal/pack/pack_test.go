package pack_test

import (
	"testing"
	"testing/quick"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/pack"
)

func TestPackARoundTrip(t *testing.T) {
	for _, m := range []int{1, 29, 30, 31, 60, 95} {
		a := matrix.RandomGeneral(m, 17, uint64(m))
		p := pack.PackA(a, pack.DefaultTileM)
		back := matrix.NewDense(m, 17)
		p.Unpack(back)
		if !matrix.Equal(a, back) {
			t.Errorf("m=%d: round trip failed", m)
		}
	}
}

func TestPackATileLayoutColumnMajor(t *testing.T) {
	a := matrix.RandomGeneral(60, 5, 3)
	p := pack.PackA(a, 30)
	// Element (i,k) of tile t lives at Tile(t)[k*30 + i-30t].
	tile1 := p.Tile(1)
	if tile1[2*30+5] != a.At(35, 2) {
		t.Error("column-major tile layout violated")
	}
	if p.Tiles() != 2 {
		t.Errorf("tiles = %d", p.Tiles())
	}
	if p.TileRows(1) != 30 {
		t.Errorf("tile rows = %d", p.TileRows(1))
	}
}

func TestPackAPartialTilePadded(t *testing.T) {
	a := matrix.RandomGeneral(31, 4, 9) // 30 + 1: second tile has 1 real row
	p := pack.PackA(a, 30)
	if p.Tiles() != 2 || p.TileRows(1) != 1 {
		t.Fatalf("tiles=%d rows=%d", p.Tiles(), p.TileRows(1))
	}
	tile := p.Tile(1)
	for k := 0; k < 4; k++ {
		if tile[k*30] != a.At(30, k) {
			t.Error("partial tile content wrong")
		}
		for i := 1; i < 30; i++ {
			if tile[k*30+i] != 0 {
				t.Error("padding not zero")
			}
		}
	}
}

func TestPackADefaultTileM(t *testing.T) {
	p := pack.PackA(matrix.RandomGeneral(10, 3, 1), 0)
	if p.TileM != pack.DefaultTileM {
		t.Errorf("default tileM = %d", p.TileM)
	}
	p31 := pack.PackA(matrix.RandomGeneral(62, 3, 1), pack.KernelOneTileM)
	if p31.Tiles() != 2 {
		t.Errorf("31-row tiles = %d", p31.Tiles())
	}
}

func TestPackBRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 16, 37} {
		b := matrix.RandomGeneral(13, n, uint64(n))
		p := pack.PackB(b)
		back := matrix.NewDense(13, n)
		p.Unpack(back)
		if !matrix.Equal(b, back) {
			t.Errorf("n=%d: round trip failed", n)
		}
	}
}

func TestPackBTileLayoutRowMajor(t *testing.T) {
	b := matrix.RandomGeneral(6, 16, 4)
	p := pack.PackB(b)
	// Element (k,j) of tile t at Tile(t)[k*8 + j-8t].
	tile1 := p.Tile(1)
	if tile1[3*8+2] != b.At(3, 10) {
		t.Error("row-major tile layout violated")
	}
	if p.TileCols(1) != 8 {
		t.Errorf("tile cols = %d", p.TileCols(1))
	}
}

func TestUnpackPanics(t *testing.T) {
	pa := pack.PackA(matrix.NewDense(4, 4), 30)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("A.Unpack should panic on mismatch")
			}
		}()
		pa.Unpack(matrix.NewDense(5, 4))
	}()
	pb := pack.PackB(matrix.NewDense(4, 4))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("B.Unpack should panic on mismatch")
			}
		}()
		pb.Unpack(matrix.NewDense(4, 5))
	}()
}

func TestGemmMatchesDgemm(t *testing.T) {
	cases := []struct{ m, n, k int }{
		{30, 8, 5},   // exactly one tile
		{31, 9, 7},   // partial edge tiles both ways
		{60, 16, 12}, // multiple full tiles
		{95, 23, 40}, // ragged
		{1, 1, 1},
	}
	for _, tc := range cases {
		a := matrix.RandomGeneral(tc.m, tc.k, uint64(tc.m*tc.n))
		b := matrix.RandomGeneral(tc.k, tc.n, uint64(tc.k+1))
		c0 := matrix.RandomGeneral(tc.m, tc.n, 99)

		got := c0.Clone()
		pack.Gemm(pack.PackA(a, pack.DefaultTileM), pack.PackB(b), got, 1)

		want := c0.Clone()
		blas.Dgemm(false, false, 1, a, b, 1, want)
		if d := matrix.MaxDiff(got, want); d > 1e-12 {
			t.Errorf("%dx%dx%d: maxdiff %g", tc.m, tc.n, tc.k, d)
		}
	}
}

func TestGemmParallelMatchesSerial(t *testing.T) {
	a := matrix.RandomGeneral(123, 40, 1)
	b := matrix.RandomGeneral(40, 77, 2)
	c0 := matrix.RandomGeneral(123, 77, 3)
	got := c0.Clone()
	pack.Gemm(pack.PackA(a, pack.DefaultTileM), pack.PackB(b), got, 8)
	want := c0.Clone()
	pack.Gemm(pack.PackA(a, pack.DefaultTileM), pack.PackB(b), want, 1)
	if d := matrix.MaxDiff(got, want); d > 1e-12 {
		t.Errorf("maxdiff %g", d)
	}
}

func TestGemmKernelOneTileHeight(t *testing.T) {
	// The 31-row variant (Basic Kernel 1 register blocking) must also be exact.
	a := matrix.RandomGeneral(93, 20, 5)
	b := matrix.RandomGeneral(20, 24, 6)
	c0 := matrix.NewDense(93, 24)
	got := c0.Clone()
	pack.Gemm(pack.PackA(a, pack.KernelOneTileM), pack.PackB(b), got, 2)
	want := c0.Clone()
	blas.Dgemm(false, false, 1, a, b, 1, want)
	if d := matrix.MaxDiff(got, want); d > 1e-12 {
		t.Errorf("maxdiff %g", d)
	}
}

func TestGemmPanics(t *testing.T) {
	a := pack.PackA(matrix.NewDense(4, 3), 30)
	b := pack.PackB(matrix.NewDense(5, 4)) // K mismatch: 3 vs 5
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	pack.Gemm(a, b, matrix.NewDense(4, 4), 1)
}

func TestPackedBytes(t *testing.T) {
	// Packing reads and writes both blocks: 2*8*(mk+kn) bytes.
	if got := pack.PackedBytes(10, 20, 30); got != 2*8*(300+600) {
		t.Errorf("PackedBytes = %v", got)
	}
}

// Property: pack/unpack is the identity for arbitrary shapes.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw, kRaw uint8) bool {
		m := 1 + int(mRaw)%80
		n := 1 + int(nRaw)%40
		k := 1 + int(kRaw)%20
		a := matrix.RandomGeneral(m, k, seed)
		backA := matrix.NewDense(m, k)
		pack.PackA(a, pack.DefaultTileM).Unpack(backA)
		if !matrix.Equal(a, backA) {
			return false
		}
		b := matrix.RandomGeneral(k, n, seed^1)
		backB := matrix.NewDense(k, n)
		pack.PackB(b).Unpack(backB)
		return matrix.Equal(b, backB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: packed Gemm agrees with dense Dgemm.
func TestGemmEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw, kRaw uint8) bool {
		m := 1 + int(mRaw)%70
		n := 1 + int(nRaw)%30
		k := 1 + int(kRaw)%15
		a := matrix.RandomGeneral(m, k, seed)
		b := matrix.RandomGeneral(k, n, seed^2)
		got := matrix.NewDense(m, n)
		pack.Gemm(pack.PackA(a, pack.DefaultTileM), pack.PackB(b), got, 3)
		want := matrix.NewDense(m, n)
		blas.Dgemm(false, false, 1, a, b, 1, want)
		return matrix.MaxDiff(got, want) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
