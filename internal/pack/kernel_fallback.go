//go:build !amd64 || noasm

package pack

// Non-amd64 platforms — and amd64 built with the `noasm` tag — always use
// the portable scalar kernels; the vector gates report unavailable and
// the block entry points are never reached.

func haveAsmKernel() bool { return false }

// kernelBlock is never called when haveAsmKernel reports false.
func kernelBlock(aTile []float64, tileM, k, r0 int, bTile []float64, acc *[48]float64) {
	panic("pack: vector FP64 kernel unavailable on this platform")
}

// kernel32Block is never called when haveAsmKernel reports false.
func kernel32Block(aTile []float32, tileM, k, r0 int, bTile []float32, acc *[64]float32) {
	panic("pack: vector FP32 kernel unavailable on this platform")
}
