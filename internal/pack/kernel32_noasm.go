//go:build !amd64

package pack

// Non-amd64 platforms always use the portable scalar FP32 kernel.
func haveAsmKernel32() bool { return false }

// kernel32Block is never called when haveAsmKernel32 reports false.
func kernel32Block(aTile []float32, tileM, k, r0 int, bTile []float32, acc *[64]float32) {
	panic("pack: vector FP32 kernel unavailable on this platform")
}
