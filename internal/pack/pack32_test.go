package pack_test

import (
	"math"
	"testing"
	"testing/quick"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/pack"
)

func rand32(n int, seed uint64) []float32 {
	p := matrix.NewPRNG(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(p.Float64())
	}
	return out
}

func TestPackA32Layout(t *testing.T) {
	m, k := 60, 5
	a := rand32(m*k, 1)
	p := pack.PackA32(a, m, k, k, 30)
	if p.Tiles() != 2 || p.TileRows(1) != 30 {
		t.Fatalf("tiles=%d rows=%d", p.Tiles(), p.TileRows(1))
	}
	// Column-major within a tile: element (i=35, k=2).
	if p.Tile(1)[2*30+5] != a[35*k+2] {
		t.Error("layout violated")
	}
	// Default tile height: the FP32 tile is 32 rows (a multiple of the
	// 4-row vector block), not the FP64 path's 30.
	if pack.PackA32(a, m, k, k, 0).TileM != pack.DefaultTileM32 {
		t.Error("default tileM")
	}
}

func TestPackB32Layout(t *testing.T) {
	k, n := 6, 40
	b := rand32(k*n, 2)
	p := pack.PackB32(b, k, n, n)
	if p.Tiles() != 3 {
		t.Fatalf("tiles = %d", p.Tiles())
	}
	if p.TileCols(2) != 8 {
		t.Errorf("last tile cols = %d, want 8", p.TileCols(2))
	}
	// Row-major within tile 1: element (k=3, j=20).
	if p.Tile(1)[3*pack.TileN32+4] != b[3*n+20] {
		t.Error("layout violated")
	}
}

func TestGemm32MatchesSgemm(t *testing.T) {
	for _, tc := range []struct{ m, n, k int }{
		{30, 16, 4}, {31, 17, 7}, {90, 48, 20}, {1, 1, 1}, {64, 33, 11},
	} {
		a := rand32(tc.m*tc.k, uint64(tc.m))
		b := rand32(tc.k*tc.n, uint64(tc.n))
		got := rand32(tc.m*tc.n, 9)
		want := append([]float32(nil), got...)

		pack.Gemm32(pack.PackA32(a, tc.m, tc.k, tc.k, 0), pack.PackB32(b, tc.k, tc.n, tc.n), got, tc.n, 2)
		blas.Sgemm(tc.m, tc.n, tc.k, 1, a, tc.k, b, tc.n, 1, want, tc.n)

		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("%+v: mismatch at %d: %v vs %v", tc, i, got[i], want[i])
			}
		}
	}
}

func TestGemm32Panics(t *testing.T) {
	a := pack.PackA32(rand32(12, 1), 4, 3, 3, 0)
	b := pack.PackB32(rand32(8, 2), 2, 4, 4) // K mismatch
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected K mismatch panic")
			}
		}()
		pack.Gemm32(a, b, make([]float32, 16), 4, 1)
	}()
	b2 := pack.PackB32(rand32(12, 2), 3, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected ldc panic")
		}
	}()
	pack.Gemm32(a, b2, make([]float32, 16), 2, 1)
}

func TestGemm32Property(t *testing.T) {
	f := func(seed uint64, mR, nR, kR uint8) bool {
		m := 1 + int(mR)%64
		n := 1 + int(nR)%40
		k := 1 + int(kR)%12
		a := rand32(m*k, seed)
		b := rand32(k*n, seed^5)
		got := make([]float32, m*n)
		pack.Gemm32(pack.PackA32(a, m, k, k, 0), pack.PackB32(b, k, n, n), got, n, 3)
		want := make([]float32, m*n)
		blas.Sgemm(m, n, k, 1, a, k, b, n, 0, want, n)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
