//go:build amd64 && !noasm

package pack

// The vector FP32 micro-kernel. The paper's single-precision path exists
// because the coprocessor's 16-lane SP vectors double SGEMM throughput
// over DGEMM (Table II); a scalar Go loop cannot reproduce that ratio —
// scalar SP and DP multiply-add issue at the same rate — so the SGEMM
// register blocking is implemented as an AVX2+FMA assembly block on
// amd64, gated behind the shared CPUID probe (haveAsmKernel, see
// kernel_amd64.go), with the portable scalar kernel as the
// always-available fallback and test oracle.

// sgemm4x16 computes one 4×16 accumulator block of an a-tile × b-tile
// product: dst[i*16+j] = Σ_p a[p·stride/4 + i]·b[p·16 + j], each element
// accumulated in ascending p with fused multiply-add. It overwrites dst.
//
//go:noescape
func sgemm4x16(a *float32, strideBytes int64, k int64, b *float32, dst *[64]float32)

// kernel32Block runs the assembly 4×16 block: the block starting at row
// r0 of the (column-major, tileM-stride) a-tile against the full k×16
// b-tile, overwriting acc. Caller guarantees r0+4 <= tileM and k > 0.
func kernel32Block(aTile []float32, tileM, k, r0 int, bTile []float32, acc *[64]float32) {
	sgemm4x16(&aTile[r0], int64(tileM)*4, int64(k), &bTile[0], acc)
}
