package pack

import (
	"math"
	"testing"
)

// FuzzMicroKernel drives the FP64 micro-kernel dispatcher with arbitrary
// tile shapes, depths and C strides and holds it to three invariants
// against the always-on scalar oracle (called directly — no global
// toggles, so the fuzzer exercises exactly the dispatch the production
// drivers use):
//
//  1. never panic, for any rows/cols/k/ldc combination the packed
//     drivers can legally produce;
//  2. element-wise agreement within the 8·(k+2)·ulp forward-error
//     envelope — the vector kernel fuses each multiply-add (VFMADD) while
//     the scalar oracle rounds the product first, so bit-equality is not
//     the contract across kernels, the envelope is;
//  3. no write outside the rows×cols window: C rows are padded to a
//     larger stride and the padding must survive bit-exactly.
//
// It also re-runs the dispatcher to confirm determinism (same inputs →
// bitwise same output), the property the worker-invariance suites build
// on. Run with `go test -fuzz=FuzzMicroKernel` for a deep hunt; plain
// `go test` exercises the seed corpus plus testdata/fuzz regressions.
func FuzzMicroKernel(f *testing.F) {
	f.Add(uint64(1), uint8(29), uint8(7), uint8(15), uint8(3)) // full tile, padded ldc
	f.Add(uint64(2), uint8(0), uint8(0), uint8(0), uint8(0))   // 1×1×1 degenerate
	f.Add(uint64(3), uint8(5), uint8(7), uint8(95), uint8(1))  // deep k, 6 rows
	f.Add(uint64(4), uint8(28), uint8(3), uint8(40), uint8(0)) // partial cols, tight ldc
	f.Add(uint64(5), uint8(11), uint8(6), uint8(1), uint8(4))  // k = 1
	f.Fuzz(func(t *testing.T, seed uint64, rowsR, colsR, kR, padR uint8) {
		rows := 1 + int(rowsR)%DefaultTileM // 1..TileM
		cols := 1 + int(colsR)%TileN        // 1..TileN
		k := 1 + int(kR)%96
		ldc := cols + int(padR)%5
		tileM := DefaultTileM

		// splitmix64-driven values in [-1, 1): wide enough to shake out
		// indexing bugs, tame enough that overflow never muddies the
		// FMA-vs-separate-rounding comparison.
		s := seed
		next := func() float64 {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			return float64(int64(z>>11))/float64(1<<52) - 1
		}
		aTile := make([]float64, tileM*k)
		for i := range aTile {
			aTile[i] = next()
		}
		bTile := make([]float64, k*TileN)
		for i := range bTile {
			bTile[i] = next()
		}
		const sentinel = math.MaxFloat64 / 3
		c0 := make([]float64, rows*ldc)
		for i := range c0 {
			if i%ldc >= cols {
				c0[i] = sentinel
			} else {
				c0[i] = next()
			}
		}

		got := append([]float64(nil), c0...)
		MicroKernel(aTile, tileM, k, bTile, got, ldc, rows, cols)
		want := append([]float64(nil), c0...)
		microKernelScalar(aTile, tileM, k, bTile, want, ldc, rows, cols)

		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				mag := math.Abs(c0[i*ldc+j])
				for p := 0; p < k; p++ {
					mag += math.Abs(aTile[p*tileM+i] * bTile[p*TileN+j])
				}
				bound := 8 * float64(k+2) * (0x1p-52) * (mag + 1)
				d := math.Abs(got[i*ldc+j] - want[i*ldc+j])
				if d > bound || math.IsNaN(d) {
					t.Fatalf("C(%d,%d)=%v scalar %v (rows=%d cols=%d k=%d ldc=%d)",
						i, j, got[i*ldc+j], want[i*ldc+j], rows, cols, k, ldc)
				}
			}
			for j := cols; j < ldc; j++ {
				if got[i*ldc+j] != sentinel || want[i*ldc+j] != sentinel {
					t.Fatalf("write outside rows×cols window at (%d,%d)", i, j)
				}
			}
		}

		// Determinism: the dispatcher must be a pure function of its
		// inputs (same bits out every time), whichever kernel it picked.
		again := append([]float64(nil), c0...)
		MicroKernel(aTile, tileM, k, bTile, again, ldc, rows, cols)
		for i := range got {
			if got[i] != again[i] && !(math.IsNaN(got[i]) && math.IsNaN(again[i])) {
				t.Fatalf("MicroKernel not deterministic at flat index %d", i)
			}
		}
	})
}
