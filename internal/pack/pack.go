// Package pack implements the Knights Corner-friendly matrix layout of
// Section III-A3 of the paper, with real data movement.
//
// Before an outer product C += Ai·Bi, the paper packs:
//
//   - Ai (M×k) into block row-major tiles of TileM×k, each tile stored
//     column-major (Figure 3a; TileM is 30 for Basic Kernel 2, 31 for
//     Basic Kernel 1). Column-major tiles give the micro-kernel contiguous
//     access to each column of a and simple prefetch address arithmetic.
//   - Bi (k×N) into tiles of k×TileN (TileN = 8, the vector width), each
//     tile stored row-major (Figure 3b), so an 8-element row of b is one
//     aligned vector load.
//
// Small tile leading dimensions avoid the TLB pressure and cache-
// associativity conflicts of large-leading-dimension source matrices.
// The packing cost is quadratic and is amortized by the cubic multiply;
// internal/perfmodel accounts its bandwidth cost for Figure 4.
package pack

import (
	"os"
	"sync"

	"phihpl/internal/matrix"
)

// DefaultTileM is the a-tile height of Basic Kernel 2 (30 rows blocked in
// registers, leaving one register for the broadcast of a and one for b).
const DefaultTileM = 30

// KernelOneTileM is the a-tile height of Basic Kernel 1 (31 rows, all but
// one register).
const KernelOneTileM = 31

// TileN is the b-tile width: 8 doubles, one 512-bit vector register.
const TileN = 8

// MicroM is the row height of the FP64 vector register block: a 6×8
// accumulator block is 12 YMM registers (two 4-lane halves per row),
// leaving two for the b row and two for broadcasts of a. DefaultTileM is
// a multiple of MicroM (30 = 5·6), so the vector kernel walks a
// full-height a-tile without ever straddling the tile boundary; padding
// rows of a partial bottom tile are zero and are simply not written back.
const MicroM = 6

// DisableVectorKernel forces the portable scalar FP64 micro-kernel even
// when the AVX2+FMA block kernel is available. The scalar kernel is the
// arithmetic reference (unfused multiply-add in the same ascending-p
// order); tests set this to pin the cross-kernel oracle, and the
// benchmark harness toggles it for the scalar-vs-vector head-to-head. It
// is not safe to change concurrently with running kernels.
var DisableVectorKernel = false

// vectorKernel records the one-time CPUID probe for the AVX2+FMA kernel.
var vectorKernel = haveAsmKernel()

// VectorKernel reports whether the fused vector FP64 kernel is available
// on this CPU (and OS). When false, MicroKernel always runs the scalar
// fallback.
func VectorKernel() bool { return vectorKernel }

// The scalar oracle path must stay exercisable without recompiling:
// setting PHIHPL_DISABLE_VECTOR_KERNEL (to any non-empty value) disables
// both vector kernels at startup, which is how the CI scalar-oracle leg
// runs the full blas/pack/lu race suites on the pure-Go arithmetic.
func init() {
	if os.Getenv("PHIHPL_DISABLE_VECTOR_KERNEL") != "" {
		DisableVectorKernel = true
		DisableVectorKernel32 = true
	}
}

// A is matrix Ai packed into TileM×K column-major tiles. Partial bottom
// tiles are zero-padded to full height so that tile addressing is uniform.
type A struct {
	M, K  int
	TileM int
	Data  []float64 // len = Tiles()*TileM*K
}

// Tiles returns the number of row tiles.
func (p *A) Tiles() int { return (p.M + p.TileM - 1) / p.TileM }

// Tile returns the backing slice of tile t (TileM*K values, column-major:
// element (i,p) at [p*TileM+i]).
func (p *A) Tile(t int) []float64 {
	sz := p.TileM * p.K
	return p.Data[t*sz : (t+1)*sz]
}

// TileRows returns how many rows of tile t are real (unpadded).
func (p *A) TileRows(t int) int {
	r := p.M - t*p.TileM
	if r > p.TileM {
		r = p.TileM
	}
	return r
}

// PackA packs the M×K matrix a into TileM-row column-major tiles.
func PackA(a *matrix.Dense, tileM int) *A {
	if tileM < 1 {
		tileM = DefaultTileM
	}
	p := &A{M: a.Rows, K: a.Cols, TileM: tileM}
	p.Data = make([]float64, p.Tiles()*tileM*a.Cols)
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		rows := p.TileRows(t)
		base := t * tileM
		for i := 0; i < rows; i++ {
			src := a.Row(base + i)
			for k, v := range src {
				tile[k*tileM+i] = v
			}
		}
	}
	return p
}

// Unpack writes the packed contents back into dst (M×K), dropping padding.
func (p *A) Unpack(dst *matrix.Dense) {
	if dst.Rows != p.M || dst.Cols != p.K {
		panic("pack: A.Unpack dimension mismatch")
	}
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		rows := p.TileRows(t)
		base := t * p.TileM
		for i := 0; i < rows; i++ {
			row := dst.Row(base + i)
			for k := range row {
				row[k] = tile[k*p.TileM+i]
			}
		}
	}
}

// B is matrix Bi packed into K×TileN row-major tiles. Partial right tiles
// are zero-padded to full width.
type B struct {
	K, N int
	Data []float64 // len = Tiles()*K*TileN
}

// Tiles returns the number of column tiles.
func (p *B) Tiles() int { return (p.N + TileN - 1) / TileN }

// Tile returns the backing slice of tile t (K*TileN values, row-major:
// element (k,j) at [k*TileN+j]).
func (p *B) Tile(t int) []float64 {
	sz := p.K * TileN
	return p.Data[t*sz : (t+1)*sz]
}

// TileCols returns how many columns of tile t are real.
func (p *B) TileCols(t int) int {
	c := p.N - t*TileN
	if c > TileN {
		c = TileN
	}
	return c
}

// PackB packs the K×N matrix b into 8-column row-major tiles.
func PackB(b *matrix.Dense) *B {
	p := &B{K: b.Rows, N: b.Cols}
	p.Data = make([]float64, p.Tiles()*b.Rows*TileN)
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		cols := p.TileCols(t)
		base := t * TileN
		for k := 0; k < b.Rows; k++ {
			src := b.Row(k)[base : base+cols]
			dst := tile[k*TileN : k*TileN+cols]
			copy(dst, src)
		}
	}
	return p
}

// Unpack writes the packed contents back into dst (K×N).
func (p *B) Unpack(dst *matrix.Dense) {
	if dst.Rows != p.K || dst.Cols != p.N {
		panic("pack: B.Unpack dimension mismatch")
	}
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		cols := p.TileCols(t)
		base := t * TileN
		for k := 0; k < p.K; k++ {
			copy(dst.Row(k)[base:base+cols], tile[k*TileN:k*TileN+cols])
		}
	}
}

// MicroKernel computes the rows×cols corner of c += a-tile × b-tile,
// mirroring the register blocking of the basic kernels: for each p in
// [0,K), broadcast column p of a (contiguous in the column-major tile) and
// multiply by the 8-wide row p of b (contiguous in the row-major tile).
// c is row-major with leading dimension ldc, starting at the tile's
// top-left element.
//
// Every product is performed unconditionally — zero entries of a are not
// skipped — so NaN and Inf values in b propagate into c exactly as IEEE
// multiplication demands (0·NaN = NaN), keeping the packed path
// element-wise consistent with the reference triple loop on special
// values. For a fixed k the accumulation order of each element is
// independent of the tile's position, the matrix partitioning and the
// worker count, which is what lets every LU driver in this repository
// stay bitwise reproducible on top of this kernel.
//
// Two implementations sit behind this entry point:
//
//   - The vector kernel (amd64 with AVX2+FMA, see kernel_amd64.go): 6×8
//     register blocks, each element accumulated in ascending p with fused
//     multiply-add — the register blocking of the paper's Basic Kernel 2,
//     which needs real vector FMA to approach machine peak.
//   - The portable scalar kernel: row-at-a-time with 8 scalar
//     accumulators, unfused multiply-add in the same ascending-p order.
//     This path is bit-for-bit the arithmetic of the K-block-grouped
//     reference loop and serves as its oracle.
//
// Both paths perform every product unconditionally, accumulate each
// element in ascending p, and add the block sum into c exactly once — so
// for a fixed k the accumulation order of each element is independent of
// the tile's position, the matrix partitioning and the worker count,
// which is what lets every LU driver in this repository stay bitwise
// reproducible on top of this kernel. The two paths differ only in
// product rounding (fused vs. separate), so results are deterministic on
// a given machine and element-wise within O(k)·ulp of each other across
// machines. The dispatch inspects only machine-global state (the CPUID
// probe, DisableVectorKernel) and the tile geometry — never the operand
// shape — so one process never mixes kernels across the differently-
// partitioned calls of a single mathematical update.
func MicroKernel(aTile []float64, tileM, k int, bTile []float64, c []float64, ldc, rows, cols int) {
	if k <= 0 || rows <= 0 || cols <= 0 {
		return
	}
	if vectorKernel && !DisableVectorKernel && tileM%MicroM == 0 {
		var acc [MicroM * TileN]float64
		for r0 := 0; r0 < rows; r0 += MicroM {
			kernelBlock(aTile, tileM, k, r0, bTile, &acc)
			br := rows - r0
			if br > MicroM {
				br = MicroM
			}
			for i := 0; i < br; i++ {
				row := c[(r0+i)*ldc : (r0+i)*ldc+cols]
				sums := acc[i*TileN : i*TileN+TileN]
				for j := range row {
					row[j] += sums[j]
				}
			}
		}
		return
	}
	microKernelScalar(aTile, tileM, k, bTile, c, ldc, rows, cols)
}

// microKernelScalar is the portable row-at-a-time kernel: one row of the
// a-tile against the whole b-tile, with the row's eight partial sums held
// in scalar locals so the compiler keeps them in registers (a 30×8
// accumulator array would spill to the stack and pay a load+store per
// multiply-add). Per element the arithmetic is unchanged — ascending-p
// summation, then a single add into c — so reordering the i/p loops does
// not move a single bit.
func microKernelScalar(aTile []float64, tileM, k int, bTile []float64, c []float64, ldc, rows, cols int) {
	bt := bTile[:k*TileN]
	for i := 0; i < rows; i++ {
		// s0..s7 mirror one row of the v0..v29 accumulator registers.
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		ai := i
		for p := 0; p <= len(bt)-TileN; p += TileN {
			av := aTile[ai]
			ai += tileM
			b8 := bt[p : p+TileN : p+TileN]
			s0 += av * b8[0]
			s1 += av * b8[1]
			s2 += av * b8[2]
			s3 += av * b8[3]
			s4 += av * b8[4]
			s5 += av * b8[5]
			s6 += av * b8[6]
			s7 += av * b8[7]
		}
		// The "update c" epilogue whose cost is amortized by large k.
		row := c[i*ldc : i*ldc+cols]
		sums := [TileN]float64{s0, s1, s2, s3, s4, s5, s6, s7}
		for j := range row {
			row[j] += sums[j]
		}
	}
}

// Gemm computes c += a·b from packed operands using the micro-kernel, with
// the (aTile, bTile) grid distributed across workers. It is the functional
// model of the paper's native DGEMM: packing plus a grid of TileM×8
// register-blocked outer products.
func Gemm(a *A, b *B, c *matrix.Dense, workers int) {
	if a.K != b.K || c.Rows != a.M || c.Cols != b.N {
		panic("pack: Gemm dimension mismatch")
	}
	type job struct{ ta, tb int }
	jobs := make([]job, 0, a.Tiles()*b.Tiles())
	for ta := 0; ta < a.Tiles(); ta++ {
		for tb := 0; tb < b.Tiles(); tb++ {
			jobs = append(jobs, job{ta, tb})
		}
	}
	run := func(j job) {
		rows := a.TileRows(j.ta)
		cols := b.TileCols(j.tb)
		off := j.ta*a.TileM*c.Stride + j.tb*TileN
		MicroKernel(a.Tile(j.ta), a.TileM, a.K, b.Tile(j.tb), c.Data[off:], c.Stride, rows, cols)
	}
	if workers <= 1 || len(jobs) < 2 {
		for _, j := range jobs {
			run(j)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan job, len(jobs))
	for _, j := range jobs {
		next <- j
	}
	close(next)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				run(j)
			}
		}()
	}
	wg.Wait()
}

// PackATileOp packs tile t of the K-block [k0, k0+p.K) of op(src), scaled
// by alpha, into p.Data. op(src) is src when trans is false and srcᵀ
// otherwise; p carries the destination geometry (M, K = block depth,
// TileM) and must have Data preallocated to Tiles()*TileM*K. Padding rows
// of a partial bottom tile are explicitly zeroed, so p.Data may be a
// recycled buffer with stale contents.
//
// Tiles are independent, which is what lets the BLAS layer pack them in
// parallel; folding alpha into the packed panel here makes the micro-
// kernel's per-element arithmetic (alpha·a)·b identical to the reference
// loop's.
func PackATileOp(p *A, src *matrix.Dense, trans bool, alpha float64, k0, t int) {
	tile := p.Tile(t)
	rows := p.TileRows(t)
	base := t * p.TileM
	tm := p.TileM
	if rows < tm {
		for kk := 0; kk < p.K; kk++ {
			pad := tile[kk*tm+rows : (kk+1)*tm]
			for i := range pad {
				pad[i] = 0
			}
		}
	}
	if !trans {
		for i := 0; i < rows; i++ {
			srcRow := src.Row(base + i)[k0 : k0+p.K]
			for kk, v := range srcRow {
				tile[kk*tm+i] = alpha * v
			}
		}
		return
	}
	// op(src)(i, kk) = src(k0+kk, base+i): row k0+kk of src holds the
	// tile's k-column kk contiguously.
	for kk := 0; kk < p.K; kk++ {
		srcRow := src.Row(k0 + kk)[base : base+rows]
		dst := tile[kk*tm : kk*tm+rows]
		for i, v := range srcRow {
			dst[i] = alpha * v
		}
	}
}

// PackBTileOp packs tile t of the K-block [k0, k0+p.K) of op(src) into
// p.Data; op(src) is src when trans is false and srcᵀ otherwise. Padding
// columns of a partial right tile are explicitly zeroed, so p.Data may be
// a recycled buffer. Tiles are independent and safe to pack in parallel.
func PackBTileOp(p *B, src *matrix.Dense, trans bool, k0, t int) {
	tile := p.Tile(t)
	cols := p.TileCols(t)
	base := t * TileN
	if cols < TileN {
		for kk := 0; kk < p.K; kk++ {
			pad := tile[kk*TileN+cols : (kk+1)*TileN]
			for j := range pad {
				pad[j] = 0
			}
		}
	}
	if !trans {
		for kk := 0; kk < p.K; kk++ {
			copy(tile[kk*TileN:kk*TileN+cols], src.Row(k0 + kk)[base:base+cols])
		}
		return
	}
	// op(src)(kk, j) = src(base+j, k0+kk): row base+j of src holds the
	// tile's column j contiguously over kk.
	for j := 0; j < cols; j++ {
		srcRow := src.Row(base + j)[k0 : k0+p.K]
		for kk, v := range srcRow {
			tile[kk*TileN+j] = v
		}
	}
}

// PackedBytes returns the number of bytes moved to pack an M×K A-block and
// a K×N B-block (read source + write packed buffer), used by the packing
// overhead model.
func PackedBytes(m, n, k int) float64 {
	return 2 * 8 * float64(m*k+k*n)
}
