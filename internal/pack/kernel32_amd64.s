// Single-precision 4×16 FMA micro-kernel block. See kernel32_amd64.go
// for the calling contract; the CPUID probes live in kernel_amd64.s.

//go:build amd64 && !noasm

#include "textflag.h"

// func sgemm4x16(a *float32, strideBytes int64, k int64, b *float32, dst *[64]float32)
//
// dst[i][j] = sum_p a[p*stride + i] * b[p*16 + j]   (i<4, j<16, fused)
//
// Register plan (AVX2): Y0..Y7 hold the 4×16 accumulator block (two
// 8-lane halves per row), Y8..Y11 the four broadcast a values of the
// current column, Y12/Y13 the 16-wide b row. One k step is 2 b loads,
// 4 broadcasts and 8 FMAs = 128 fused flops.
TEXT ·sgemm4x16(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ strideBytes+8(FP), AX
	MOVQ k+16(FP), CX
	MOVQ b+24(FP), BX
	MOVQ dst+32(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	TESTQ CX, CX
	JE    store

loop:
	VMOVUPS      (BX), Y12
	VMOVUPS      32(BX), Y13
	VBROADCASTSS (SI), Y8
	VBROADCASTSS 4(SI), Y9
	VBROADCASTSS 8(SI), Y10
	VBROADCASTSS 12(SI), Y11
	VFMADD231PS  Y12, Y8, Y0
	VFMADD231PS  Y13, Y8, Y1
	VFMADD231PS  Y12, Y9, Y2
	VFMADD231PS  Y13, Y9, Y3
	VFMADD231PS  Y12, Y10, Y4
	VFMADD231PS  Y13, Y10, Y5
	VFMADD231PS  Y12, Y11, Y6
	VFMADD231PS  Y13, Y11, Y7
	ADDQ         AX, SI
	ADDQ         $64, BX
	DECQ         CX
	JNE          loop

store:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VMOVUPS Y4, 128(DI)
	VMOVUPS Y5, 160(DI)
	VMOVUPS Y6, 192(DI)
	VMOVUPS Y7, 224(DI)
	VZEROUPPER
	RET
