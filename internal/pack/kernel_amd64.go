//go:build amd64 && !noasm

package pack

// The vector FP64 micro-kernel. The paper's DGEMM throughput rests on a
// hand-tuned register-blocked vector kernel (Basic Kernel 2, Section
// III-A2); the portable scalar Go loop reproduces its arithmetic but not
// its throughput — scalar multiply-add issues one flop-pair per cycle
// where a 256-bit FMA issues eight. On amd64 the 30×8 a-tile geometry is
// therefore computed by an AVX2+FMA 6×8 register block: 30 = 5·6, so the
// block walks a full-height a-tile without ever straddling the tile
// boundary, and 8 doubles of a b-tile row are exactly two YMM loads.
//
// Register plan (AVX2, 16 YMM): Y0..Y11 hold the 6×8 accumulator block
// (two 4-lane halves per row), Y12/Y13 the 8-wide b row, Y14/Y15 the
// broadcast a values (reused across the three row pairs). One k step is
// 2 b loads, 6 broadcasts and 12 FMAs = 96 fused flops.
//
// The probe that gates it (haveAsmKernel) requires FMA3 + AVX + AVX2 in
// CPUID and XMM/YMM state enabled in XCR0 — the same requirements as the
// FP32 kernel, so one probe serves both precisions. Build with the
// `noasm` tag to compile the pure-Go scalar kernels only.

// dgemm6x8 computes one 6×8 accumulator block of an a-tile × b-tile
// product: dst[i*8+j] = Σ_p a[p·stride/8 + i]·b[p·8 + j], each element
// accumulated in ascending p with fused multiply-add. It overwrites dst.
//
//go:noescape
func dgemm6x8(a *float64, strideBytes int64, k int64, b *float64, dst *[48]float64)

func cpuidLeaf(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// haveAsmKernel reports whether the CPU and OS support the AVX2+FMA
// kernels (FP64 6×8 and FP32 4×16 alike): FMA3 + AVX + AVX2 in CPUID and
// XMM/YMM state enabled in XCR0.
func haveAsmKernel() bool {
	maxID, _, _, _ := cpuidLeaf(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidLeaf(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidLeaf(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// kernelBlock runs the assembly 6×8 block: the block starting at row r0
// of the (column-major, tileM-stride) a-tile against the full k×8 b-tile,
// overwriting acc. Caller guarantees r0+6 <= tileM and k > 0; padding
// rows of a partial tile are zero, so computing them is harmless (the
// caller simply does not write them back).
func kernelBlock(aTile []float64, tileM, k, r0 int, bTile []float64, acc *[48]float64) {
	dgemm6x8(&aTile[r0], int64(tileM)*8, int64(k), &bTile[0], acc)
}
