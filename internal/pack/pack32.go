package pack

import (
	"sync"

	"phihpl/internal/matrix"
)

// Single-precision packing and micro-kernel, mirroring the float64 path.
// The paper evaluates SGEMM alongside DGEMM (Table II): the SP vector is
// 16 lanes wide, so b-tiles are 16 columns. The a-tile is 32 rows — the
// same register-blocked shape as the paper's 30-row Basic Kernel 2,
// rounded up to a multiple of the 4-row FMA block so the vector kernel
// never straddles a tile boundary (padding rows are zero and are simply
// not written back).

// TileN32 is the single-precision b-tile width: 16 floats, one 512-bit
// vector register.
const TileN32 = 16

// DefaultTileM32 is the single-precision a-tile height: eight 4×16
// register blocks.
const DefaultTileM32 = 32

// DisableVectorKernel32 forces the portable scalar FP32 micro-kernel even
// when the AVX2+FMA block kernel is available. The scalar kernel is the
// bitwise reference for blas.Sgemm (unfused multiply-add, same per-element
// grouping); tests set this to pin the cross-kernel oracle. It is not safe
// to change concurrently with running kernels. The
// PHIHPL_DISABLE_VECTOR_KERNEL environment variable sets it at startup
// (see pack.go).
var DisableVectorKernel32 = false

// vectorKernel32 records the one-time CPUID probe for the AVX2+FMA
// kernels, shared with the FP64 gate (both need FMA3+AVX2).
var vectorKernel32 = haveAsmKernel()

// VectorKernel32 reports whether the fused vector FP32 kernel is available
// on this CPU (and OS). When false, MicroKernel32 always runs the scalar
// fallback.
func VectorKernel32() bool { return vectorKernel32 }

// A32 is a float32 matrix packed into TileM×K column-major tiles. Partial
// bottom tiles are zero-padded to full height.
type A32 struct {
	M, K  int
	TileM int
	Data  []float32
}

// Tiles returns the number of row tiles.
func (p *A32) Tiles() int { return (p.M + p.TileM - 1) / p.TileM }

// Tile returns tile t's backing slice (column-major).
func (p *A32) Tile(t int) []float32 {
	sz := p.TileM * p.K
	return p.Data[t*sz : (t+1)*sz]
}

// TileRows returns the real (unpadded) rows of tile t.
func (p *A32) TileRows(t int) int {
	r := p.M - t*p.TileM
	if r > p.TileM {
		r = p.TileM
	}
	return r
}

// PackA32 packs an M×K row-major float32 matrix (leading dimension lda).
func PackA32(a []float32, m, k, lda int, tileM int) *A32 {
	if tileM < 1 {
		tileM = DefaultTileM32
	}
	p := &A32{M: m, K: k, TileM: tileM}
	p.Data = make([]float32, p.Tiles()*tileM*k)
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		rows := p.TileRows(t)
		base := t * tileM
		for i := 0; i < rows; i++ {
			src := a[(base+i)*lda : (base+i)*lda+k]
			for kk, v := range src {
				tile[kk*tileM+i] = v
			}
		}
	}
	return p
}

// B32 is a float32 matrix packed into K×16 row-major tiles. Partial right
// tiles are zero-padded to full width.
type B32 struct {
	K, N int
	Data []float32
}

// Tiles returns the number of column tiles.
func (p *B32) Tiles() int { return (p.N + TileN32 - 1) / TileN32 }

// Tile returns tile t's backing slice (row-major).
func (p *B32) Tile(t int) []float32 {
	sz := p.K * TileN32
	return p.Data[t*sz : (t+1)*sz]
}

// TileCols returns the real columns of tile t.
func (p *B32) TileCols(t int) int {
	c := p.N - t*TileN32
	if c > TileN32 {
		c = TileN32
	}
	return c
}

// PackB32 packs a K×N row-major float32 matrix (leading dimension ldb).
func PackB32(b []float32, k, n, ldb int) *B32 {
	p := &B32{K: k, N: n}
	p.Data = make([]float32, p.Tiles()*k*TileN32)
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		cols := p.TileCols(t)
		base := t * TileN32
		for kk := 0; kk < k; kk++ {
			copy(tile[kk*TileN32:kk*TileN32+cols], b[kk*ldb+base:kk*ldb+base+cols])
		}
	}
	return p
}

// PackATileOp32 packs tile t of the K-block [k0, k0+p.K) of op(src),
// scaled by alpha, into p.Data — the single-precision mirror of
// PackATileOp. Padding rows of a partial bottom tile are explicitly
// zeroed, so p.Data may be a recycled buffer with stale contents. Tiles
// are independent and safe to pack in parallel; alpha is folded here so
// the micro-kernel's per-element arithmetic is (alpha·a)·b, matching the
// reference loop's.
func PackATileOp32(p *A32, src *matrix.Dense32, trans bool, alpha float32, k0, t int) {
	tile := p.Tile(t)
	rows := p.TileRows(t)
	base := t * p.TileM
	tm := p.TileM
	if rows < tm {
		for kk := 0; kk < p.K; kk++ {
			pad := tile[kk*tm+rows : (kk+1)*tm]
			for i := range pad {
				pad[i] = 0
			}
		}
	}
	if !trans {
		for i := 0; i < rows; i++ {
			srcRow := src.Row(base + i)[k0 : k0+p.K]
			for kk, v := range srcRow {
				tile[kk*tm+i] = alpha * v
			}
		}
		return
	}
	// op(src)(i, kk) = src(k0+kk, base+i): row k0+kk of src holds the
	// tile's k-column kk contiguously.
	for kk := 0; kk < p.K; kk++ {
		srcRow := src.Row(k0 + kk)[base : base+rows]
		dst := tile[kk*tm : kk*tm+rows]
		for i, v := range srcRow {
			dst[i] = alpha * v
		}
	}
}

// PackBTileOp32 packs tile t of the K-block [k0, k0+p.K) of op(src) into
// p.Data, the single-precision mirror of PackBTileOp. Padding columns of
// a partial right tile are explicitly zeroed.
func PackBTileOp32(p *B32, src *matrix.Dense32, trans bool, k0, t int) {
	tile := p.Tile(t)
	cols := p.TileCols(t)
	base := t * TileN32
	if cols < TileN32 {
		for kk := 0; kk < p.K; kk++ {
			pad := tile[kk*TileN32+cols : (kk+1)*TileN32]
			for j := range pad {
				pad[j] = 0
			}
		}
	}
	if !trans {
		for kk := 0; kk < p.K; kk++ {
			copy(tile[kk*TileN32:kk*TileN32+cols], src.Row(k0 + kk)[base:base+cols])
		}
		return
	}
	// op(src)(kk, j) = src(base+j, k0+kk): row base+j of src holds the
	// tile's column j contiguously over kk.
	for j := 0; j < cols; j++ {
		srcRow := src.Row(base + j)[k0 : k0+p.K]
		for kk, v := range srcRow {
			tile[kk*TileN32+j] = v
		}
	}
}

// MicroKernel32 computes the rows×cols corner of c += a-tile × b-tile in
// single precision, the SGEMM analogue of MicroKernel. c is row-major
// with leading dimension ldc, starting at the tile's top-left element.
//
// Two implementations sit behind this entry point:
//
//   - The vector kernel (amd64 with AVX2+FMA): 4×16 register blocks, each
//     element accumulated in ascending p with fused multiply-add — the
//     register blocking of the paper's SGEMM, which needs real vector FMA
//     to show SP's 2× throughput over DP (scalar SP and DP multiply-add
//     issue at the same rate, so no scalar loop can reproduce Table II).
//   - The portable scalar kernel: row-at-a-time with 16 scalar
//     accumulators, unfused multiply-add in the same ascending-p order.
//     This path is bit-for-bit the arithmetic of the blas.Sgemm reference
//     loop and serves as its oracle.
//
// Both paths perform every product unconditionally (no zero-skips, NaN
// and Inf propagate per IEEE), accumulate each element in ascending p,
// and add the block sum into c exactly once — so for a fixed k the
// accumulation order of each element is independent of the tile's
// position, the matrix partitioning and the worker count. The two paths
// differ only in product rounding (fused vs. separate), so results are
// deterministic on a given machine and element-wise within O(k)·ulp of
// each other across machines.
func MicroKernel32(aTile []float32, tileM, k int, bTile []float32, c []float32, ldc, rows, cols int) {
	if k <= 0 || rows <= 0 || cols <= 0 {
		return
	}
	if vectorKernel32 && !DisableVectorKernel32 && tileM%4 == 0 {
		var acc [64]float32
		for r0 := 0; r0 < rows; r0 += 4 {
			kernel32Block(aTile, tileM, k, r0, bTile, &acc)
			br := rows - r0
			if br > 4 {
				br = 4
			}
			for i := 0; i < br; i++ {
				row := c[(r0+i)*ldc : (r0+i)*ldc+cols]
				sums := acc[i*TileN32 : i*TileN32+TileN32]
				for j := range row {
					row[j] += sums[j]
				}
			}
		}
		return
	}
	microKernel32Scalar(aTile, tileM, k, bTile, c, ldc, rows, cols)
}

// microKernel32Scalar is the portable row-at-a-time kernel: one row of
// the a-tile against the whole b-tile, the row's sixteen partial sums in
// scalar locals so the compiler keeps them in registers (an accumulator
// array would spill and pay a load+store per multiply-add).
func microKernel32Scalar(aTile []float32, tileM, k int, bTile []float32, c []float32, ldc, rows, cols int) {
	bt := bTile[:k*TileN32]
	for i := 0; i < rows; i++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float32
		var t0, t1, t2, t3, t4, t5, t6, t7 float32
		ai := i
		for p := 0; p <= len(bt)-TileN32; p += TileN32 {
			av := aTile[ai]
			ai += tileM
			b16 := bt[p : p+TileN32 : p+TileN32]
			s0 += av * b16[0]
			s1 += av * b16[1]
			s2 += av * b16[2]
			s3 += av * b16[3]
			s4 += av * b16[4]
			s5 += av * b16[5]
			s6 += av * b16[6]
			s7 += av * b16[7]
			t0 += av * b16[8]
			t1 += av * b16[9]
			t2 += av * b16[10]
			t3 += av * b16[11]
			t4 += av * b16[12]
			t5 += av * b16[13]
			t6 += av * b16[14]
			t7 += av * b16[15]
		}
		row := c[i*ldc : i*ldc+cols]
		sums := [TileN32]float32{s0, s1, s2, s3, s4, s5, s6, s7, t0, t1, t2, t3, t4, t5, t6, t7}
		for j := range row {
			row[j] += sums[j]
		}
	}
}

// Gemm32 computes c += a·b over packed single-precision operands; c is
// M×N row-major with leading dimension ldc.
func Gemm32(a *A32, b *B32, c []float32, ldc int, workers int) {
	if a.K != b.K {
		panic("pack: Gemm32 dimension mismatch")
	}
	if ldc < b.N {
		panic("pack: Gemm32 ldc too small")
	}
	type job struct{ ta, tb int }
	jobs := make([]job, 0, a.Tiles()*b.Tiles())
	for ta := 0; ta < a.Tiles(); ta++ {
		for tb := 0; tb < b.Tiles(); tb++ {
			jobs = append(jobs, job{ta, tb})
		}
	}
	run := func(j job) {
		rows := a.TileRows(j.ta)
		cols := b.TileCols(j.tb)
		off := j.ta*a.TileM*ldc + j.tb*TileN32
		MicroKernel32(a.Tile(j.ta), a.TileM, a.K, b.Tile(j.tb), c[off:], ldc, rows, cols)
	}
	if workers <= 1 || len(jobs) < 2 {
		for _, j := range jobs {
			run(j)
		}
		return
	}
	next := make(chan job, len(jobs))
	for _, j := range jobs {
		next <- j
	}
	close(next)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				run(j)
			}
		}()
	}
	wg.Wait()
}
