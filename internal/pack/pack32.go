package pack

import "sync"

// Single-precision packing and micro-kernel, mirroring the float64 path.
// The paper evaluates SGEMM alongside DGEMM (Table II): the SP vector is
// 16 lanes wide, so b-tiles are 16 columns and the register-blocked
// a-tile keeps the same 30 rows.

// TileN32 is the single-precision b-tile width: 16 floats, one 512-bit
// vector register.
const TileN32 = 16

// A32 is a float32 matrix packed into TileM×K column-major tiles.
type A32 struct {
	M, K  int
	TileM int
	Data  []float32
}

// Tiles returns the number of row tiles.
func (p *A32) Tiles() int { return (p.M + p.TileM - 1) / p.TileM }

// Tile returns tile t's backing slice (column-major).
func (p *A32) Tile(t int) []float32 {
	sz := p.TileM * p.K
	return p.Data[t*sz : (t+1)*sz]
}

// TileRows returns the real (unpadded) rows of tile t.
func (p *A32) TileRows(t int) int {
	r := p.M - t*p.TileM
	if r > p.TileM {
		r = p.TileM
	}
	return r
}

// PackA32 packs an M×K row-major float32 matrix (leading dimension lda).
func PackA32(a []float32, m, k, lda int, tileM int) *A32 {
	if tileM < 1 {
		tileM = DefaultTileM
	}
	p := &A32{M: m, K: k, TileM: tileM}
	p.Data = make([]float32, p.Tiles()*tileM*k)
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		rows := p.TileRows(t)
		base := t * tileM
		for i := 0; i < rows; i++ {
			src := a[(base+i)*lda : (base+i)*lda+k]
			for kk, v := range src {
				tile[kk*tileM+i] = v
			}
		}
	}
	return p
}

// B32 is a float32 matrix packed into K×16 row-major tiles.
type B32 struct {
	K, N int
	Data []float32
}

// Tiles returns the number of column tiles.
func (p *B32) Tiles() int { return (p.N + TileN32 - 1) / TileN32 }

// Tile returns tile t's backing slice (row-major).
func (p *B32) Tile(t int) []float32 {
	sz := p.K * TileN32
	return p.Data[t*sz : (t+1)*sz]
}

// TileCols returns the real columns of tile t.
func (p *B32) TileCols(t int) int {
	c := p.N - t*TileN32
	if c > TileN32 {
		c = TileN32
	}
	return c
}

// PackB32 packs a K×N row-major float32 matrix (leading dimension ldb).
func PackB32(b []float32, k, n, ldb int) *B32 {
	p := &B32{K: k, N: n}
	p.Data = make([]float32, p.Tiles()*k*TileN32)
	for t := 0; t < p.Tiles(); t++ {
		tile := p.Tile(t)
		cols := p.TileCols(t)
		base := t * TileN32
		for kk := 0; kk < k; kk++ {
			copy(tile[kk*TileN32:kk*TileN32+cols], b[kk*ldb+base:kk*ldb+base+cols])
		}
	}
	return p
}

// microKernel32 computes rows×cols of c += aTile × bTile.
func microKernel32(aTile []float32, tileM, k int, bTile []float32, c []float32, ldc, rows, cols int) {
	var acc [DefaultTileM + 1][TileN32]float32
	for p := 0; p < k; p++ {
		aCol := aTile[p*tileM : p*tileM+rows]
		bRow := bTile[p*TileN32 : p*TileN32+TileN32]
		for i, av := range aCol {
			for j := 0; j < TileN32; j++ {
				acc[i][j] += av * bRow[j]
			}
		}
	}
	for i := 0; i < rows; i++ {
		row := c[i*ldc : i*ldc+cols]
		for j := range row {
			row[j] += acc[i][j]
		}
	}
}

// Gemm32 computes c += a·b over packed single-precision operands; c is
// M×N row-major with leading dimension ldc.
func Gemm32(a *A32, b *B32, c []float32, ldc int, workers int) {
	if a.K != b.K {
		panic("pack: Gemm32 dimension mismatch")
	}
	if ldc < b.N {
		panic("pack: Gemm32 ldc too small")
	}
	type job struct{ ta, tb int }
	jobs := make([]job, 0, a.Tiles()*b.Tiles())
	for ta := 0; ta < a.Tiles(); ta++ {
		for tb := 0; tb < b.Tiles(); tb++ {
			jobs = append(jobs, job{ta, tb})
		}
	}
	run := func(j job) {
		rows := a.TileRows(j.ta)
		cols := b.TileCols(j.tb)
		off := j.ta*a.TileM*ldc + j.tb*TileN32
		microKernel32(a.Tile(j.ta), a.TileM, a.K, b.Tile(j.tb), c[off:], ldc, rows, cols)
	}
	if workers <= 1 || len(jobs) < 2 {
		for _, j := range jobs {
			run(j)
		}
		return
	}
	next := make(chan job, len(jobs))
	for _, j := range jobs {
		next <- j
	}
	close(next)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				run(j)
			}
		}()
	}
	wg.Wait()
}
