package blas

import (
	"math"
	"testing"

	"phihpl/internal/matrix"
	"phihpl/internal/pack"
)

// FuzzDgetf2 feeds arbitrary seeds/shapes into the panel factorization and
// verifies the LU invariants: reconstruction, bounded multipliers, and
// in-range pivots. Run with `go test -fuzz=FuzzDgetf2` for a deep hunt;
// plain `go test` exercises the seed corpus.
func FuzzDgetf2(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(4))
	f.Add(uint64(42), uint8(20), uint8(6))
	f.Add(uint64(7), uint8(1), uint8(1))
	f.Add(uint64(0), uint8(31), uint8(15))
	f.Fuzz(func(t *testing.T, seed uint64, mR, nR uint8) {
		m := 1 + int(mR)%32
		n := 1 + int(nR)%32
		mn := m
		if n < mn {
			mn = n
		}
		a := matrix.RandomGeneral(m, n, seed)
		orig := a.Clone()
		piv := make([]int, mn)
		if err := Dgetf2(a, piv); err != nil {
			return // singular is a legal outcome
		}
		// Pivots in range and >= their position.
		for k, p := range piv {
			if p < k || p >= m {
				t.Fatalf("pivot %d out of range: %d", k, p)
			}
		}
		// Multipliers bounded by 1.
		for i := 0; i < m; i++ {
			for j := 0; j < i && j < n; j++ {
				if v := a.At(i, j); v > 1+1e-12 || v < -1-1e-12 {
					t.Fatalf("multiplier (%d,%d)=%v exceeds 1", i, j, v)
				}
			}
		}
		// Square case: reconstruct and compare.
		if m == n {
			recon := reconstructLU(a, piv)
			if d := matrix.MaxDiff(recon, orig); d > 1e-8*(1+orig.MaxAbs()) {
				t.Fatalf("reconstruction error %g", d)
			}
		}
	})
}

// FuzzPackedGemm drives the whole pack → micro-kernel → unpack chain with
// arbitrary shapes, seeds and worker counts and compares it against the
// naive triple loop. It also round-trips the op-aware tile packers to
// catch padding or indexing bugs independent of the multiply. Run with
// `go test -fuzz=FuzzPackedGemm` for a deep hunt; plain `go test`
// exercises the seed corpus.
func FuzzPackedGemm(f *testing.F) {
	f.Add(uint64(1), uint8(30), uint8(8), uint8(16), uint8(1))
	f.Add(uint64(2), uint8(31), uint8(9), uint8(1), uint8(2))  // k = 1, partial tiles
	f.Add(uint64(3), uint8(1), uint8(1), uint8(1), uint8(3))   // degenerate
	f.Add(uint64(4), uint8(29), uint8(7), uint8(40), uint8(4)) // short edge tiles
	f.Add(uint64(5), uint8(61), uint8(17), uint8(5), uint8(8)) // multiple tiles
	f.Fuzz(func(t *testing.T, seed uint64, mR, nR, kR, wR uint8) {
		m := 1 + int(mR)%96
		n := 1 + int(nR)%48
		k := 1 + int(kR)%48
		workers := 1 + int(wR)%8
		a := matrix.RandomGeneral(m, k, seed)
		b := matrix.RandomGeneral(k, n, seed^0x9e3779b97f4a7c15)

		// The tile packers must round-trip: packing op(A) with alpha=1 and
		// unpacking reproduces A exactly (padding dropped), same for B.
		pa := &pack.A{M: m, K: k, TileM: pack.DefaultTileM,
			Data: make([]float64, ((m+pack.DefaultTileM-1)/pack.DefaultTileM)*pack.DefaultTileM*k)}
		for tile := 0; tile < pa.Tiles(); tile++ {
			pack.PackATileOp(pa, a, false, 1, 0, tile)
		}
		backA := matrix.NewDense(m, k)
		pa.Unpack(backA)
		if !matrix.Equal(backA, a) {
			t.Fatal("PackATileOp round-trip lost data")
		}
		pb := &pack.B{K: k, N: n,
			Data: make([]float64, ((n+pack.TileN-1)/pack.TileN)*pack.TileN*k)}
		for tile := 0; tile < pb.Tiles(); tile++ {
			pack.PackBTileOp(pb, b, false, 0, tile)
		}
		backB := matrix.NewDense(k, n)
		pb.Unpack(backB)
		if !matrix.Equal(backB, b) {
			t.Fatal("PackBTileOp round-trip lost data")
		}

		// Full fast path vs the naive triple loop, element-wise, with the
		// k-scaled forward-error envelope.
		c0 := matrix.RandomGeneral(m, n, seed^0xdeadbeef)
		got, want := c0.Clone(), c0.Clone()
		DgemmPacked(false, false, -1, a, b, 1, got, workers)
		dgemmRef(false, false, -1, a, b, 1, want)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				mag := math.Abs(c0.At(i, j))
				for p := 0; p < k; p++ {
					mag += math.Abs(a.At(i, p) * b.At(p, j))
				}
				bound := 8 * float64(k+2) * ulpEps * (mag + 1)
				if d := math.Abs(got.At(i, j) - want.At(i, j)); d > bound || math.IsNaN(d) {
					t.Fatalf("C(%d,%d)=%v want %v (m=%d n=%d k=%d workers=%d)",
						i, j, got.At(i, j), want.At(i, j), m, n, k, workers)
				}
			}
		}
	})
}

// FuzzSgemmPacked drives the single-precision pack → micro-kernel →
// unpack chain (whichever micro-kernel the CPU selected) with arbitrary
// shapes, scalars, seeds and worker counts and checks two invariants: the
// result stays inside the 8·(k+2)·ulp32 forward-error envelope of a
// float64 reference, and it is bitwise independent of the worker count.
// Run with `go test -fuzz=FuzzSgemmPacked` for a deep hunt; plain
// `go test` exercises the seed corpus plus testdata/fuzz regressions.
func FuzzSgemmPacked(f *testing.F) {
	f.Add(uint64(1), uint8(32), uint8(16), uint8(16), uint8(1), uint8(0), uint8(1))
	f.Add(uint64(2), uint8(33), uint8(17), uint8(1), uint8(2), uint8(1), uint8(0))  // k = 1, partial tiles
	f.Add(uint64(3), uint8(1), uint8(1), uint8(1), uint8(3), uint8(2), uint8(2))    // degenerate
	f.Add(uint64(4), uint8(31), uint8(15), uint8(40), uint8(4), uint8(3), uint8(3)) // short edge tiles
	f.Add(uint64(5), uint8(95), uint8(23), uint8(5), uint8(8), uint8(4), uint8(1))  // multiple tiles
	alphas := []float32{-1, 1, 0.5, -2.25, 0}
	betas := []float32{1, 0, -0.5, 2}
	f.Fuzz(func(t *testing.T, seed uint64, mR, nR, kR, wR, aR, bR uint8) {
		m := 1 + int(mR)%96
		n := 1 + int(nR)%48
		k := 1 + int(kR)%48
		workers := 1 + int(wR)%8
		alpha := alphas[int(aR)%len(alphas)]
		beta := betas[int(bR)%len(betas)]

		a := randomDense32(m, k, seed)
		b := randomDense32(k, n, seed^0x9e3779b97f4a7c15)
		c0 := randomDense32(m, n, seed^0xdeadbeef)

		got := c0.Clone()
		SgemmPacked(false, false, alpha, a, b, beta, got, workers)

		// Envelope oracle against a float64 reference.
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want := float64(beta) * float64(c0.At(i, j))
				mag := math.Abs(want)
				for p := 0; p < k; p++ {
					prod := float64(alpha) * float64(a.At(i, p)) * float64(b.At(p, j))
					want += prod
					mag += math.Abs(prod)
				}
				bound := 8 * float64(k+2) * ulpEps32 * (mag + 1)
				if d := math.Abs(float64(got.At(i, j)) - want); d > bound || math.IsNaN(d) {
					t.Fatalf("C(%d,%d)=%v want %v (m=%d n=%d k=%d alpha=%v beta=%v workers=%d)",
						i, j, got.At(i, j), want, m, n, k, alpha, beta, workers)
				}
			}
		}

		// Worker invariance: a different worker count must be bitwise equal.
		again := c0.Clone()
		SgemmPacked(false, false, alpha, a, b, beta, again, 1+workers%8)
		if !equal32(got, again) {
			t.Fatalf("result depends on worker count (m=%d n=%d k=%d)", m, n, k)
		}
	})
}

// FuzzLUSolve checks that whenever factorization succeeds, the solve
// passes the HPL residual test.
func FuzzLUSolve(f *testing.F) {
	f.Add(uint64(3), uint8(8))
	f.Add(uint64(99), uint8(25))
	f.Fuzz(func(t *testing.T, seed uint64, nR uint8) {
		n := 1 + int(nR)%48
		a, b := matrix.RandomSystem(n, seed)
		lu := a.Clone()
		piv := make([]int, n)
		if err := Dgetrf(lu, piv, 8); err != nil {
			return
		}
		x := LUSolve(lu, piv, b)
		if r := matrix.Residual(a, x, b); r > matrix.ResidualThreshold {
			t.Fatalf("residual %g for n=%d seed=%d", r, n, seed)
		}
	})
}
