package blas

import (
	"testing"

	"phihpl/internal/matrix"
)

// FuzzDgetf2 feeds arbitrary seeds/shapes into the panel factorization and
// verifies the LU invariants: reconstruction, bounded multipliers, and
// in-range pivots. Run with `go test -fuzz=FuzzDgetf2` for a deep hunt;
// plain `go test` exercises the seed corpus.
func FuzzDgetf2(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(4))
	f.Add(uint64(42), uint8(20), uint8(6))
	f.Add(uint64(7), uint8(1), uint8(1))
	f.Add(uint64(0), uint8(31), uint8(15))
	f.Fuzz(func(t *testing.T, seed uint64, mR, nR uint8) {
		m := 1 + int(mR)%32
		n := 1 + int(nR)%32
		mn := m
		if n < mn {
			mn = n
		}
		a := matrix.RandomGeneral(m, n, seed)
		orig := a.Clone()
		piv := make([]int, mn)
		if err := Dgetf2(a, piv); err != nil {
			return // singular is a legal outcome
		}
		// Pivots in range and >= their position.
		for k, p := range piv {
			if p < k || p >= m {
				t.Fatalf("pivot %d out of range: %d", k, p)
			}
		}
		// Multipliers bounded by 1.
		for i := 0; i < m; i++ {
			for j := 0; j < i && j < n; j++ {
				if v := a.At(i, j); v > 1+1e-12 || v < -1-1e-12 {
					t.Fatalf("multiplier (%d,%d)=%v exceeds 1", i, j, v)
				}
			}
		}
		// Square case: reconstruct and compare.
		if m == n {
			recon := reconstructLU(a, piv)
			if d := matrix.MaxDiff(recon, orig); d > 1e-8*(1+orig.MaxAbs()) {
				t.Fatalf("reconstruction error %g", d)
			}
		}
	})
}

// FuzzLUSolve checks that whenever factorization succeeds, the solve
// passes the HPL residual test.
func FuzzLUSolve(f *testing.F) {
	f.Add(uint64(3), uint8(8))
	f.Add(uint64(99), uint8(25))
	f.Fuzz(func(t *testing.T, seed uint64, nR uint8) {
		n := 1 + int(nR)%48
		a, b := matrix.RandomSystem(n, seed)
		lu := a.Clone()
		piv := make([]int, n)
		if err := Dgetrf(lu, piv, 8); err != nil {
			return
		}
		x := LUSolve(lu, piv, b)
		if r := matrix.Residual(a, x, b); r > matrix.ResidualThreshold {
			t.Fatalf("residual %g for n=%d seed=%d", r, n, seed)
		}
	})
}
