package blas

import (
	"math"
	"testing"
	"testing/quick"

	"phihpl/internal/matrix"
)

func TestDgemvNoTrans(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := []float64{1, 1, 1}
	Dgemv(false, 2, a, []float64{1, 1}, 3, y)
	// y = 2*A*[1,1] + 3*[1,1,1] = 2*[3,7,11]+[3,3,3] = [9,17,25]
	want := []float64{9, 17, 25}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v", y)
		}
	}
}

func TestDgemvTrans(t *testing.T) {
	a := matrix.RandomGeneral(7, 5, 1)
	x := matrix.RandomVector(7, 2)
	y := matrix.RandomVector(5, 3)
	got := append([]float64(nil), y...)
	Dgemv(true, 1.5, a, x, -0.5, got)
	// Reference via explicit transpose.
	at := matrix.NewDense(5, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := append([]float64(nil), y...)
	Dgemv(false, 1.5, at, x, -0.5, want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("trans gemv mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDgemvEdgeCases(t *testing.T) {
	a := matrix.RandomGeneral(3, 3, 4)
	y := []float64{1, 2, 3}
	orig := append([]float64(nil), y...)
	Dgemv(false, 0, a, []float64{1, 1, 1}, 1, y)
	for i := range y {
		if y[i] != orig[i] {
			t.Error("alpha=0, beta=1 must not change y")
		}
	}
	Dgemv(false, 0, a, []float64{1, 1, 1}, 0, y)
	for i := range y {
		if y[i] != 0 {
			t.Error("alpha=0, beta=0 must zero y")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dgemv(false, 1, a, []float64{1}, 0, y)
}

func TestDtrsvMatchesDtrsm(t *testing.T) {
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, trans := range []bool{false, true} {
			for _, diag := range []Diag{NonUnit, Unit} {
				tri := randTriangular(9, uplo, diag, 5)
				b := matrix.RandomVector(9, 6)
				x := append([]float64(nil), b...)
				Dtrsv(uplo, trans, diag, tri, x)
				want := SolveVec(uplo, trans, diag, tri, b)
				for i := range want {
					if math.Abs(x[i]-want[i]) > 1e-12 {
						t.Fatalf("uplo=%v trans=%v diag=%v: x[%d]=%v want %v",
							uplo, trans, diag, i, x[i], want[i])
					}
				}
			}
		}
	}
}

func TestDtrsvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dtrsv(Lower, false, Unit, matrix.NewDense(3, 3), []float64{1})
}

func TestDgetrsMultiRHS(t *testing.T) {
	n, nrhs := 20, 5
	a := matrix.RandomGeneral(n, n, 7)
	xTrue := matrix.RandomGeneral(n, nrhs, 8)
	b := matrix.NewDense(n, nrhs)
	Dgemm(false, false, 1, a, xTrue, 0, b)

	lu := a.Clone()
	piv := make([]int, n)
	if err := Dgetrf(lu, piv, 6); err != nil {
		t.Fatal(err)
	}
	Dgetrs(false, lu, piv, b)
	if d := matrix.MaxDiff(b, xTrue); d > 1e-8 {
		t.Errorf("multi-RHS solve error %g", d)
	}
}

func TestDgetrsTransposed(t *testing.T) {
	n := 15
	a := matrix.RandomGeneral(n, n, 9)
	xTrue := matrix.RandomGeneral(n, 2, 10)
	// b = Aᵀ x
	b := matrix.NewDense(n, 2)
	Dgemm(true, false, 1, a, xTrue, 0, b)

	lu := a.Clone()
	piv := make([]int, n)
	if err := Dgetrf(lu, piv, 4); err != nil {
		t.Fatal(err)
	}
	Dgetrs(true, lu, piv, b)
	if d := matrix.MaxDiff(b, xTrue); d > 1e-8 {
		t.Errorf("transposed solve error %g", d)
	}
}

func TestDgetrsMatchesLUSolve(t *testing.T) {
	n := 30
	a, bvec := matrix.RandomSystem(n, 11)
	lu := a.Clone()
	piv := make([]int, n)
	if err := Dgetrf(lu, piv, 8); err != nil {
		t.Fatal(err)
	}
	want := LUSolve(lu, piv, bvec)

	b := matrix.NewDense(n, 1)
	for i, v := range bvec {
		b.Set(i, 0, v)
	}
	Dgetrs(false, lu, piv, b)
	for i := range want {
		if b.At(i, 0) != want[i] {
			t.Fatalf("Dgetrs and LUSolve disagree at %d", i)
		}
	}
}

func TestDgetrsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dgetrs(false, matrix.NewDense(3, 3), make([]int, 3), matrix.NewDense(2, 1))
}

// --- recursive panel factorization --------------------------------------

func TestRecursiveMatchesUnblocked(t *testing.T) {
	for _, shape := range []struct{ m, n int }{
		{8, 8}, {16, 16}, {40, 40}, {100, 24}, {64, 17}, {33, 33}, {200, 48},
	} {
		a := matrix.RandomGeneral(shape.m, shape.n, uint64(shape.m*shape.n))
		mn := shape.m
		if shape.n < mn {
			mn = shape.n
		}
		rec := a.Clone()
		recPiv := make([]int, mn)
		if err := Dgetf2Recursive(rec, recPiv); err != nil {
			t.Fatalf("%+v: %v", shape, err)
		}
		ref := a.Clone()
		refPiv := make([]int, mn)
		if err := Dgetf2(ref, refPiv); err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(rec, ref) {
			t.Errorf("%+v: recursive factors differ (maxdiff %g)", shape, matrix.MaxDiff(rec, ref))
		}
		for i := range refPiv {
			if recPiv[i] != refPiv[i] {
				t.Errorf("%+v: pivot %d: %d vs %d", shape, i, recPiv[i], refPiv[i])
				break
			}
		}
	}
}

func TestRecursiveSmallFallsThrough(t *testing.T) {
	a := matrix.RandomGeneral(6, 4, 3)
	piv := make([]int, 4)
	if err := Dgetf2Recursive(a, piv); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveSingular(t *testing.T) {
	a := matrix.NewDense(20, 20)
	piv := make([]int, 20)
	if err := Dgetf2Recursive(a, piv); err == nil {
		t.Error("expected singularity error")
	}
}

func TestRecursivePivLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dgetf2Recursive(matrix.NewDense(10, 10), make([]int, 9))
}

// Property: recursive == unblocked for random tall panels.
func TestRecursiveEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, mR, nR uint8) bool {
		m := 9 + int(mR)%80
		n := 9 + int(nR)%30
		if n > m {
			n = m
		}
		a := matrix.RandomGeneral(m, n, seed)
		r1, r2 := a.Clone(), a.Clone()
		p1, p2 := make([]int, n), make([]int, n)
		e1 := Dgetf2Recursive(r1, p1)
		e2 := Dgetf2(r2, p2)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if !matrix.Equal(r1, r2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
