package blas

import (
	"testing"

	"phihpl/internal/matrix"
)

// SGemmPrepacked's pack-once-reuse must be bitwise the per-call
// SgemmPacked result — the contract that lets the mixed-precision 2D HPL
// driver share packed FP32 operands across a block row/column — for every
// shape in the single-K-block regime, including ragged tiles, and
// independent of how many calls reuse the same prepacked operand.
func TestSGemmPrepackedBitwiseMatchesSgemmPacked(t *testing.T) {
	for _, sh := range []struct{ m, n, k int }{
		{32, 16, 16}, // exactly one tile
		{64, 48, 32}, // several tiles
		{33, 17, 19}, // ragged everything
		{1, 1, 16},
		{95, 23, 384}, // k at the K-block boundary
	} {
		a := matrix.RandomGeneral(sh.m, sh.k, 11).ToDense32()
		b := matrix.RandomGeneral(sh.k, sh.n, 12).ToDense32()
		want := matrix.RandomGeneral(sh.m, sh.n, 13).ToDense32()
		got := want.Clone()

		SgemmPacked(false, false, -1, a, b, 1, want, 2)

		pa := SPrepackA(a, -1)
		pb := SPrepackB(b)
		if pa == nil || pb == nil {
			t.Fatalf("%+v: prepack refused a single-K-block shape", sh)
		}
		// Reuse both operands twice: second use must still be bitwise.
		scratch := matrix.NewDense32(sh.m, sh.n)
		SGemmPrepacked(pa, pb, scratch, 1)
		SGemmPrepacked(pa, pb, got, 2)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("%+v: (%d,%d) = %v, want %v (bitwise)", sh, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		pa.Release()
		pb.Release()
	}
}

// Prepacking refuses multi-K-block operands, mismatched shapes panic, and
// Release is safe on nil and after use.
func TestSGemmPrepackedGuards(t *testing.T) {
	if pa := SPrepackA(matrix.RandomGeneral(8, 385, 1).ToDense32(), -1); pa != nil {
		t.Error("SPrepackA must refuse k > one K-block")
	}
	if pb := SPrepackB(matrix.RandomGeneral(385, 8, 1).ToDense32()); pb != nil {
		t.Error("SPrepackB must refuse k > one K-block")
	}
	var nilA *SPrepackedA
	var nilB *SPrepackedB
	nilA.Release()
	nilB.Release()

	pa := SPrepackA(matrix.RandomGeneral(8, 16, 1).ToDense32(), -1)
	pb := SPrepackB(matrix.RandomGeneral(17, 8, 1).ToDense32()) // k mismatch
	defer func() {
		if recover() == nil {
			t.Error("k mismatch must panic")
		}
	}()
	SGemmPrepacked(pa, pb, matrix.NewDense32(8, 8), 1)
}

// Dense32.CopyFrom copies element-wise and enforces shape agreement.
func TestDense32CopyFrom(t *testing.T) {
	src := matrix.RandomGeneral(5, 7, 3).ToDense32()
	dst := matrix.NewDense32(5, 7)
	dst.CopyFrom(src)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if dst.At(i, j) != src.At(i, j) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, dst.At(i, j), src.At(i, j))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	matrix.NewDense32(4, 7).CopyFrom(src)
}
