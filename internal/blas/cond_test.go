package blas

import (
	"math"
	"testing"

	"phihpl/internal/matrix"
)

func TestDlange(t *testing.T) {
	a := matrix.FromRows([][]float64{{3, -4}, {0, 0}})
	if Dlange('M', a) != 4 {
		t.Error("max norm")
	}
	if Dlange('1', a) != 4 || Dlange('O', a) != 4 {
		t.Error("one norm")
	}
	if Dlange('I', a) != 7 {
		t.Error("inf norm")
	}
	if Dlange('F', a) != 5 {
		t.Error("frobenius")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown norm should panic")
		}
	}()
	Dlange('X', a)
}

func TestCondEst1Identity(t *testing.T) {
	n := 12
	a := matrix.Eye(n)
	lu := a.Clone()
	piv := make([]int, n)
	if err := Dgetrf(lu, piv, 4); err != nil {
		t.Fatal(err)
	}
	c := CondEst1(lu, piv, Dlange('1', a))
	if math.Abs(c-1) > 1e-12 {
		t.Errorf("cond(I) = %v, want 1", c)
	}
}

func TestCondEst1DiagonalExact(t *testing.T) {
	// diag(1, 1e-6): kappa_1 = 1e6 exactly.
	a := matrix.NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1e-6)
	lu := a.Clone()
	piv := make([]int, 2)
	if err := Dgetrf(lu, piv, 2); err != nil {
		t.Fatal(err)
	}
	c := CondEst1(lu, piv, Dlange('1', a))
	if math.Abs(c-1e6)/1e6 > 1e-9 {
		t.Errorf("cond = %v, want 1e6", c)
	}
}

func TestCondEst1Hilbert(t *testing.T) {
	// Hilbert(8) has kappa_1 ~ 3.4e10; the estimator must land within an
	// order of magnitude (it is a lower-bound style estimator).
	a := matrix.Hilbert(8)
	lu := a.Clone()
	piv := make([]int, 8)
	if err := Dgetrf(lu, piv, 4); err != nil {
		t.Fatal(err)
	}
	c := CondEst1(lu, piv, Dlange('1', a))
	if c < 1e9 || c > 1e12 {
		t.Errorf("cond(Hilbert(8)) estimate = %g, want ~3e10", c)
	}
}

func TestCondEst1WellConditionedRandom(t *testing.T) {
	a := matrix.RandomGeneral(40, 40, 5)
	lu := a.Clone()
	piv := make([]int, 40)
	if err := Dgetrf(lu, piv, 8); err != nil {
		t.Fatal(err)
	}
	c := CondEst1(lu, piv, Dlange('1', a))
	if c < 1 {
		t.Errorf("condition number below 1: %v", c)
	}
	if c > 1e8 {
		t.Errorf("random 40x40 should be moderately conditioned, got %g", c)
	}
}

func TestCondEst1Singular(t *testing.T) {
	lu := matrix.NewDense(3, 3) // zero diagonal after "factorization"
	if c := CondEst1(lu, make([]int, 3), 1); !math.IsInf(c, 1) {
		t.Errorf("singular should be +Inf, got %v", c)
	}
}

func TestCondEst1Degenerate(t *testing.T) {
	a := matrix.Eye(2)
	lu := a.Clone()
	piv := make([]int, 2)
	Dgetrf(lu, piv, 2)
	if CondEst1(lu, piv, 0) != 0 {
		t.Error("zero anorm")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CondEst1(lu, make([]int, 3), 1)
}

func TestGrowthFactorRandomIsSmall(t *testing.T) {
	a := matrix.RandomGeneral(60, 60, 77)
	lu := a.Clone()
	piv := make([]int, 60)
	if err := Dgetrf(lu, piv, 12); err != nil {
		t.Fatal(err)
	}
	g := GrowthFactor(a, lu)
	if g < 1 || g > 100 {
		t.Errorf("growth on random matrix = %v, want modest", g)
	}
}

func TestGrowthFactorWilkinsonIsExponential(t *testing.T) {
	// The adversarial matrix reaches the 2^(n-1) worst case.
	n := 20
	a := matrix.Wilkinson(n)
	lu := a.Clone()
	piv := make([]int, n)
	if err := Dgetrf(lu, piv, 4); err != nil {
		t.Fatal(err)
	}
	g := GrowthFactor(a, lu)
	want := math.Pow(2, float64(n-1))
	if math.Abs(g-want)/want > 1e-9 {
		t.Errorf("Wilkinson growth = %g, want 2^%d = %g", g, n-1, want)
	}
	// And no pivoting should have occurred.
	for i, p := range piv {
		if p != i {
			t.Errorf("unexpected pivot at %d", i)
		}
	}
}

func TestGrowthFactorZero(t *testing.T) {
	if GrowthFactor(matrix.NewDense(3, 3), matrix.NewDense(3, 3)) != 0 {
		t.Error("zero matrix growth")
	}
}
