package blas

// Sgemm computes C = alpha*A*B + beta*C in single precision over flat
// row-major buffers: A is m×k with leading dimension lda, B is k×n with
// ldb, C is m×n with ldc. The paper evaluates SGEMM alongside DGEMM in
// Table II; the single-precision path exists so that the functional layer
// can validate the SGEMM efficiency model against real numerics.
func Sgemm(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if lda < k || ldb < n || ldc < n {
		panic("blas: Sgemm leading dimension too small")
	}
	if len(a) < (m-1)*lda+k || len(b) < (k-1)*ldb+n || len(c) < (m-1)*ldc+n {
		if m > 0 && k > 0 && n > 0 {
			panic("blas: Sgemm buffer too small")
		}
	}
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		if alpha == 0 {
			continue
		}
		ai := a[i*lda : i*lda+k]
		for p := 0; p < k; p++ {
			aip := alpha * ai[p]
			if aip == 0 {
				continue
			}
			bp := b[p*ldb : p*ldb+n]
			for j, bv := range bp {
				ci[j] += aip * bv
			}
		}
	}
}
