package blas

import "phihpl/internal/matrix"

// Sgemm computes C = alpha*A*B + beta*C in single precision over flat
// row-major buffers: A is m×k with leading dimension lda, B is k×n with
// ldb, C is m×n with ldc. The paper evaluates SGEMM alongside DGEMM in
// Table II; this routine is the always-available reference oracle for the
// packed single-precision fast path (SgemmPacked).
//
// The accumulation is grouped by the same K-block boundaries as the
// packed path (a function of k alone): each element's contribution from
// one K-block is summed into a temporary in ascending p — every product
// (alpha·a)·b performed unconditionally, so NaN and Inf propagate per
// IEEE — and the block sum is added into C exactly once. With the scalar
// micro-kernel active, SgemmPacked is bit-for-bit identical to this loop;
// the fused vector kernel differs only in product rounding.
func Sgemm(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if lda < k || ldb < n || ldc < n {
		panic("blas: Sgemm leading dimension too small")
	}
	// Degenerate-shape guard: each buffer is validated independently, so a
	// zero-size dimension elsewhere cannot mask an undersized buffer that
	// this call still touches (e.g. k == 0 with a short C, which the beta
	// scaling below would overrun).
	if m > 0 && k > 0 && len(a) < (m-1)*lda+k {
		panic("blas: Sgemm buffer too small")
	}
	if k > 0 && n > 0 && len(b) < (k-1)*ldb+n {
		panic("blas: Sgemm buffer too small")
	}
	if m > 0 && n > 0 && len(c) < (m-1)*ldc+n {
		panic("blas: Sgemm buffer too small")
	}
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
	}
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}
	tmp := make([]float32, n)
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for k0 := 0; k0 < k; k0 += packKC {
			kb := k - k0
			if kb > packKC {
				kb = packKC
			}
			for j := range tmp {
				tmp[j] = 0
			}
			for p := k0; p < k0+kb; p++ {
				aip := alpha * ai[p]
				bp := b[p*ldb : p*ldb+n]
				for j, bv := range bp {
					tmp[j] += aip * bv
				}
			}
			for j := range ci {
				ci[j] += tmp[j]
			}
		}
	}
}

// SgemmDense is Sgemm over matrix.Dense32 operands with op() transposes,
// the shape-checked reference entry point mirroring Dgemm:
// C = alpha*op(A)*op(B) + beta*C. Transposed operands are materialized
// once; the arithmetic is exactly Sgemm's K-block-grouped loop.
func SgemmDense(transA, transB bool, alpha float32, a, b *matrix.Dense32, beta float32, c *matrix.Dense32) {
	m, k := opDims32(a, transA)
	k2, n := opDims32(b, transB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic("blas: SgemmDense dimension mismatch")
	}
	if m == 0 || n == 0 {
		return
	}
	if transA {
		a = transpose32(a)
	}
	if transB {
		b = transpose32(b)
	}
	Sgemm(m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
}

// opDims32 returns the dimensions of op(X).
func opDims32(x *matrix.Dense32, trans bool) (r, c int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

// transpose32 returns a compact copy of xᵀ.
func transpose32(x *matrix.Dense32) *matrix.Dense32 {
	t := matrix.NewDense32(x.Cols, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			t.Set(j, i, v)
		}
	}
	return t
}
