package blas

import (
	"math"
	"runtime"
	"testing"

	"phihpl/internal/matrix"
	"phihpl/internal/pack"
)

// ulpEps32 is the single-precision machine epsilon, the unit for the
// 8·k·ulp oracle bound on the vector-FMA kernel.
const ulpEps32 = 1.1920928955078125e-07

// randomDense32 fills an r×c Dense32 with deterministic values in
// [-0.5, 0.5), mirroring matrix.RandomGeneral.
func randomDense32(r, c int, seed uint64) *matrix.Dense32 {
	rng := matrix.NewPRNG(seed)
	m := matrix.NewDense32(r, c)
	for i := range m.Data {
		m.Data[i] = float32(rng.Float64() - 0.5)
	}
	return m
}

// equal32 compares two Dense32 bitwise (NaN-safe: equal bit patterns are
// equal values).
func equal32(a, b *matrix.Dense32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Float32bits(ra[j]) != math.Float32bits(rb[j]) {
				return false
			}
		}
	}
	return true
}

// forceScalarKernel32 disables the vector micro-kernel for the duration of
// a test, so SgemmPacked runs the unfused scalar kernel that carries the
// bitwise contract against Sgemm.
func forceScalarKernel32(t *testing.T) {
	t.Helper()
	prev := pack.DisableVectorKernel32
	pack.DisableVectorKernel32 = true
	t.Cleanup(func() { pack.DisableVectorKernel32 = prev })
}

// TestSgemmPackedScalarBitwiseOracle is the satellite-1 contract: with the
// scalar micro-kernel active, SgemmPacked is bit-for-bit identical to the
// Sgemm reference loop over the full ragged-shape cross product
// m, n, k ∈ {1, 7, 29, 30, 31, 64, 257} — every partial-tile and
// multi-K-block regime the FP32 LU driver can produce.
func TestSgemmPackedScalarBitwiseOracle(t *testing.T) {
	forceScalarKernel32(t)
	dims := []int{1, 7, 29, 30, 31, 64, 257}
	for _, m := range dims {
		for _, n := range dims {
			for _, k := range dims {
				a := randomDense32(m, k, uint64(m*1000003+k))
				b := randomDense32(k, n, uint64(n*999983+k))
				c0 := randomDense32(m, n, 17)
				got, want := c0.Clone(), c0.Clone()
				SgemmPacked(false, false, -1, a, b, 1, got, 3)
				SgemmDense(false, false, -1, a, b, 1, want)
				if !equal32(got, want) {
					t.Fatalf("m=%d n=%d k=%d: scalar SgemmPacked differs bitwise from Sgemm", m, n, k)
				}
			}
		}
	}
}

// TestSgemmPackedScalarBitwiseAlphaBeta extends the bitwise oracle across
// the alpha/beta edge grid and both transposes.
func TestSgemmPackedScalarBitwiseAlphaBeta(t *testing.T) {
	forceScalarKernel32(t)
	alphas := []float32{0, 1, -1, 0.5, -2.25}
	betas := []float32{0, 1, -1, 2}
	for _, transA := range []bool{false, true} {
		for _, transB := range []bool{false, true} {
			for _, alpha := range alphas {
				for _, beta := range betas {
					m, n, k := 31, 17, 23
					ar, ac := m, k
					if transA {
						ar, ac = k, m
					}
					br, bc := k, n
					if transB {
						br, bc = n, k
					}
					a := randomDense32(ar, ac, 5)
					b := randomDense32(br, bc, 6)
					c0 := randomDense32(m, n, 7)
					got, want := c0.Clone(), c0.Clone()
					SgemmPacked(transA, transB, alpha, a, b, beta, got, 2)
					SgemmDense(transA, transB, alpha, a, b, beta, want)
					if !equal32(got, want) {
						t.Fatalf("tA=%v tB=%v alpha=%v beta=%v: bitwise mismatch",
							transA, transB, alpha, beta)
					}
				}
			}
		}
	}
}

// TestSgemmPackedVectorEnvelopeOracle validates the active micro-kernel
// (the fused-FMA vector kernel where the CPU has it) against a float64
// reference: every element within the 8·(k+2)·ulp32 forward-error
// envelope of its accumulated magnitude. On machines without the vector
// kernel this still runs, degenerating to a loose check on the scalar path.
func TestSgemmPackedVectorEnvelopeOracle(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{32, 16, 16},           // exactly one tile
		{33, 17, 7},            // partial edge tiles both ways
		{31, 15, 1},            // k = 1
		{1, 1, 1},              // degenerate
		{1, 40, 24},            // m = 1
		{64, 1, 24},            // n = 1
		{95, 23, 33},           // ragged
		{32, 16, 2*packKC + 5}, // several K-blocks
	}
	for _, s := range shapes {
		a := randomDense32(s.m, s.k, uint64(s.m*7+s.k))
		b := randomDense32(s.k, s.n, uint64(s.n*13+s.k))
		c0 := randomDense32(s.m, s.n, 23)
		got := c0.Clone()
		SgemmPacked(false, false, -1, a, b, 1, got, 4)
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.n; j++ {
				want := float64(c0.At(i, j))
				mag := math.Abs(want)
				for p := 0; p < s.k; p++ {
					prod := float64(a.At(i, p)) * float64(b.At(p, j))
					want -= prod
					mag += math.Abs(prod)
				}
				bound := 8 * float64(s.k+2) * ulpEps32 * (mag + 1)
				if d := math.Abs(float64(got.At(i, j)) - want); d > bound || math.IsNaN(d) {
					t.Fatalf("%+v: C(%d,%d) = %v, want %v (|diff| %g > bound %g)",
						s, i, j, got.At(i, j), want, d, bound)
				}
			}
		}
	}
}

// TestSgemmPackedWorkerAndPartitionInvariance pins the determinism
// contract the FP32 LU driver relies on, for whichever micro-kernel is
// active: the result is bitwise identical for any worker count, and
// slicing C into row or column strips (separate calls with the same k)
// reproduces the one-shot result bit for bit.
func TestSgemmPackedWorkerAndPartitionInvariance(t *testing.T) {
	m, n, k := 77, 41, 52
	a := randomDense32(m, k, 1)
	b := randomDense32(k, n, 2)
	c0 := randomDense32(m, n, 3)

	base := c0.Clone()
	SgemmPacked(false, false, -1, a, b, 1, base, 1)

	for _, workers := range []int{2, 3, 8, 64} {
		got := c0.Clone()
		SgemmPacked(false, false, -1, a, b, 1, got, workers)
		if !equal32(got, base) {
			t.Fatalf("workers=%d: result differs bitwise from serial", workers)
		}
	}

	// Column strips: C[:, lo:hi] -= A · B[:, lo:hi].
	cols := c0.Clone()
	for lo := 0; lo < n; lo += 13 {
		hi := lo + 13
		if hi > n {
			hi = n
		}
		SgemmPacked(false, false, -1, a, b.View(0, lo, k, hi-lo), 1, cols.View(0, lo, m, hi-lo), 4)
	}
	if !equal32(cols, base) {
		t.Fatal("column-partitioned result differs bitwise")
	}

	// Row strips: C[lo:hi, :] -= A[lo:hi, :] · B.
	rows := c0.Clone()
	for lo := 0; lo < m; lo += 19 {
		hi := lo + 19
		if hi > m {
			hi = m
		}
		SgemmPacked(false, false, -1, a.View(lo, 0, hi-lo, k), b, 1, rows.View(lo, 0, hi-lo, n), 4)
	}
	if !equal32(rows, base) {
		t.Fatal("row-partitioned result differs bitwise")
	}
}

// TestSgemmPackedViewsUntouchedOutside: writing through a view must leave
// the host matrix outside the view bitwise intact.
func TestSgemmPackedViewsUntouchedOutside(t *testing.T) {
	m, n, k := 37, 21, 40
	oi, oj := 3, 2
	aHost := randomDense32(m+oi+2, k+oj+2, 4)
	bHost := randomDense32(k+oi+2, n+oj+2, 5)
	cHost := randomDense32(m+oi+1, n+oj+1, 6)
	c0 := cHost.Clone()

	SgemmPacked(false, false, -1,
		aHost.View(oi, oj, m, k), bHost.View(oi, oj, k, n),
		1, cHost.View(oi, oj, m, n), 4)

	for i := 0; i < cHost.Rows; i++ {
		for j := 0; j < cHost.Cols; j++ {
			inside := i >= oi && i < oi+m && j >= oj && j < oj+n
			if !inside && cHost.At(i, j) != c0.At(i, j) {
				t.Fatalf("wrote outside the view at (%d,%d)", i, j)
			}
		}
	}
}

// TestSRankKUpdateCrossover verifies the k-only routing: deep updates land
// bitwise on the packed path, thin ones bitwise on the reference loop.
func TestSRankKUpdateCrossover(t *testing.T) {
	m, n := 50, 34
	for _, k := range []int{PackedMinK - 1, PackedMinK, PackedMinK + 5} {
		a := randomDense32(m, k, uint64(k))
		b := randomDense32(k, n, uint64(k)+1)
		c0 := randomDense32(m, n, 9)

		got := c0.Clone()
		SRankKUpdate(a, b, got, 3)

		want := c0.Clone()
		if k >= PackedMinK {
			SgemmPacked(false, false, -1, a, b, 1, want, 3)
		} else {
			SgemmDense(false, false, -1, a, b, 1, want)
		}
		if !equal32(got, want) {
			t.Fatalf("k=%d: SRankKUpdate did not match its designated path bitwise", k)
		}
	}
}

// TestSgemmNaNInfPropagation: a zero row of A times a NaN/Inf column of B
// must produce NaN (0·NaN = NaN, 0·Inf = NaN) on every single-precision
// path — no zero-skip shortcuts anywhere.
func TestSgemmNaNInfPropagation(t *testing.T) {
	m, n, k := 35, 10, PackedMinK+4
	a := matrix.NewDense32(m, k) // identically zero
	b := randomDense32(k, n, 5)
	b.Set(3, 4, float32(math.NaN()))
	b.Set(5, 1, float32(math.Inf(1)))

	run := map[string]func(c *matrix.Dense32){
		"SgemmDense":   func(c *matrix.Dense32) { SgemmDense(false, false, 1, a, b, 0, c) },
		"SgemmPacked":  func(c *matrix.Dense32) { SgemmPacked(false, false, 1, a, b, 0, c, 4) },
		"SRankKUpdate": func(c *matrix.Dense32) { SRankKUpdate(a, b, c, 4) },
	}
	for name, f := range run {
		c := matrix.NewDense32(m, n)
		f(c)
		for i := 0; i < m; i++ {
			if v := float64(c.At(i, 4)); !math.IsNaN(v) {
				t.Errorf("%s: C(%d,4) = %v, want NaN from 0·NaN", name, i, v)
				break
			}
			if v := float64(c.At(i, 1)); !math.IsNaN(v) {
				t.Errorf("%s: C(%d,1) = %v, want NaN from 0·Inf", name, i, v)
				break
			}
			if v := c.At(i, 0); v != 0 {
				t.Errorf("%s: C(%d,0) = %v, want exact 0", name, i, v)
				break
			}
		}
	}
}

// TestSgemmPackedQuickReturnSemantics: alpha == 0 must not read A or B
// (NaN there stays out of C), and beta == 0 must overwrite NaN already in
// C — the BLAS quick-return rules, matching Sgemm.
func TestSgemmPackedQuickReturnSemantics(t *testing.T) {
	m, n, k := 10, 9, 20
	a := matrix.NewDense32(m, k)
	b := matrix.NewDense32(k, n)
	a.Set(0, 0, float32(math.NaN()))
	b.Set(0, 0, float32(math.NaN()))

	c := randomDense32(m, n, 1)
	want := c.Clone()
	SgemmPacked(false, false, 0, a, b, 1, c, 4)
	if !equal32(c, want) {
		t.Error("alpha=0, beta=1 must leave C bitwise unchanged")
	}

	c.Set(2, 3, float32(math.NaN()))
	SgemmPacked(false, false, 0, a, b, 0, c, 4)
	for i := range c.Data {
		if c.Data[i] != 0 {
			t.Fatal("alpha=0, beta=0 must store exact zeros (clearing NaN)")
		}
	}
}

// TestSgemmPackedZeroDims: zero-size dimensions are quick returns on
// every path (satellite 4 companion to the flat-Sgemm guard tests).
func TestSgemmPackedZeroDims(t *testing.T) {
	host := randomDense32(8, 8, 1)
	for _, dims := range []struct{ m, n, k int }{
		{0, 5, 5}, {5, 0, 5}, {5, 5, 0}, {0, 0, 0},
	} {
		a := host.View(0, 0, dims.m, dims.k)
		b := host.View(0, 0, dims.k, dims.n)
		c := matrix.NewDense32(dims.m, dims.n)
		SgemmPacked(false, false, 1, a, b, 0, c, 2) // must not panic
		SgemmDense(false, false, 1, a, b, 0, c)

		// k == 0 with beta != 1 must still scale C.
		if dims.k == 0 && dims.m > 0 && dims.n > 0 {
			c2 := randomDense32(dims.m, dims.n, 2)
			SgemmPacked(false, false, 1, a, b, 0, c2, 2)
			for i := range c2.Data {
				if c2.Data[i] != 0 {
					t.Fatal("k=0 beta=0 must zero C")
				}
			}
		}
	}
}

// TestSgemmPackedSteadyStateNoGoroutineSpawn: after warm-up, repeated
// fast-path calls must not grow the goroutine count — the FP32 path rides
// the same persistent worker pool as the FP64 one.
func TestSgemmPackedSteadyStateNoGoroutineSpawn(t *testing.T) {
	a := randomDense32(64, 48, 1)
	b := randomDense32(48, 40, 2)
	c := matrix.NewDense32(64, 40)
	SgemmPacked(false, false, -1, a, b, 1, c, 8) // warm up the pool
	runtime.Gosched()
	base := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		SgemmPacked(false, false, -1, a, b, 1, c, 8)
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Errorf("goroutines grew from %d to %d over 100 calls", base, got)
	}
}

// TestSgemmPackedDimensionPanics mirrors the reference path's contract.
func TestSgemmPackedDimensionPanics(t *testing.T) {
	a := matrix.NewDense32(2, 3)
	b := matrix.NewDense32(4, 2)
	c := matrix.NewDense32(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected dimension panic")
		}
	}()
	SgemmPacked(false, false, 1, a, b, 0, c, 2)
}
