package blas

import "phihpl/internal/matrix"

// Dgemv computes y = alpha*op(A)*x + beta*y for a row-major matrix A.
// op(A) is A or Aᵀ according to trans. Lengths must match op(A)'s shape.
func Dgemv(trans bool, alpha float64, a *matrix.Dense, x []float64, beta float64, y []float64) {
	m, n := a.Rows, a.Cols
	if trans {
		m, n = n, m
	}
	if len(x) != n || len(y) != m {
		panic("blas: Dgemv dimension mismatch")
	}
	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Dscal(beta, y)
	}
	if alpha == 0 {
		return
	}
	if !trans {
		for i := 0; i < m; i++ {
			y[i] += alpha * Ddot(a.Row(i), x)
		}
		return
	}
	// y += alpha*Aᵀx: accumulate row-wise to keep A's access contiguous.
	for i := 0; i < a.Rows; i++ {
		axi := alpha * x[i]
		if axi == 0 {
			continue
		}
		Daxpy(axi, a.Row(i), y)
	}
}

// Dtrsv solves op(T)·x = b in place over x (x starts holding b), using the
// triangle selected by uplo/diag. It is the vector form of Dtrsm and is
// used by the iterative-refinement solver.
func Dtrsv(uplo Uplo, trans bool, diag Diag, t *matrix.Dense, x []float64) {
	n := t.Rows
	if t.Cols != n || len(x) != n {
		panic("blas: Dtrsv dimension mismatch")
	}
	if trans {
		t = transpose(t)
		if uplo == Lower {
			uplo = Upper
		} else {
			uplo = Lower
		}
	}
	if uplo == Lower {
		for i := 0; i < n; i++ {
			row := t.Row(i)
			s := x[i]
			for j := 0; j < i; j++ {
				s -= row[j] * x[j]
			}
			if diag == NonUnit {
				s /= row[i]
			}
			x[i] = s
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		row := t.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		if diag == NonUnit {
			s /= row[i]
		}
		x[i] = s
	}
}

// Dgetrs solves op(A)·X = B for nrhs right-hand sides given the packed LU
// factors and pivots from Dgetrf. B is n×nrhs and is overwritten with X.
func Dgetrs(trans bool, lu *matrix.Dense, piv []int, b *matrix.Dense) {
	n := lu.Rows
	if lu.Cols != n || b.Rows != n || len(piv) != n {
		panic("blas: Dgetrs dimension mismatch")
	}
	if !trans {
		// Apply P, then L, then U.
		for k, p := range piv {
			if p != k {
				SwapRows(b, k, p)
			}
		}
		Dtrsm(Left, Lower, false, Unit, 1, lu, b)
		Dtrsm(Left, Upper, false, NonUnit, 1, lu, b)
		return
	}
	// Aᵀ = Uᵀ Lᵀ Pᵀ: solve Uᵀ, then Lᵀ, then apply P⁻¹.
	Dtrsm(Left, Upper, true, NonUnit, 1, lu, b)
	Dtrsm(Left, Lower, true, Unit, 1, lu, b)
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			SwapRows(b, k, piv[k])
		}
	}
}
