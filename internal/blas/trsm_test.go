package blas

import (
	"testing"
	"testing/quick"

	"phihpl/internal/matrix"
)

// randTriangular returns a well-conditioned triangular matrix: random
// entries in the selected triangle with the diagonal pushed away from zero.
func randTriangular(n int, uplo Uplo, diag Diag, seed uint64) *matrix.Dense {
	t := matrix.RandomGeneral(n, n, seed)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inTri := (uplo == Lower && j <= i) || (uplo == Upper && j >= i)
			if !inTri {
				t.Set(i, j, 0)
			}
		}
		if diag == NonUnit {
			t.Set(i, i, 2+t.At(i, i)) // |diag| >= 1.5
		} else {
			t.Set(i, i, 1)
		}
	}
	return t
}

// checkTrsm verifies op-side multiplication of the solution reproduces B.
func checkTrsm(t *testing.T, side Side, uplo Uplo, trans bool, diag Diag, n, m int, seed uint64) {
	t.Helper()
	tri := randTriangular(n, uplo, diag, seed)
	var b *matrix.Dense
	if side == Left {
		b = matrix.RandomGeneral(n, m, seed+100)
	} else {
		b = matrix.RandomGeneral(m, n, seed+100)
	}
	x := b.Clone()
	alpha := 1.5
	Dtrsm(side, uplo, trans, diag, alpha, tri, x)
	// Recompute alpha*B from the solution.
	var recon *matrix.Dense
	if side == Left {
		recon = matrix.NewDense(n, m)
		Dgemm(trans, false, 1, tri, x, 0, recon)
	} else {
		recon = matrix.NewDense(m, n)
		Dgemm(false, trans, 1, x, tri, 0, recon)
	}
	scaled := b.Clone()
	for i := 0; i < scaled.Rows; i++ {
		Dscal(alpha, scaled.Row(i))
	}
	if d := matrix.MaxDiff(recon, scaled); d > 1e-9 {
		t.Errorf("side=%v uplo=%v trans=%v diag=%v: residual %g", side, uplo, trans, diag, d)
	}
}

func TestDtrsmAllCases(t *testing.T) {
	seed := uint64(1)
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []bool{false, true} {
				for _, diag := range []Diag{NonUnit, Unit} {
					seed++
					checkTrsm(t, side, uplo, trans, diag, 9, 7, seed)
				}
			}
		}
	}
}

func TestDtrsmUnitDiagonalIgnoresStoredDiag(t *testing.T) {
	// With Diag=Unit the stored diagonal must not be referenced.
	tri := randTriangular(5, Lower, Unit, 42)
	b := matrix.RandomGeneral(5, 3, 43)
	x1 := b.Clone()
	Dtrsm(Left, Lower, false, Unit, 1, tri, x1)
	for i := 0; i < 5; i++ {
		tri.Set(i, i, 1e30) // garbage diagonal
	}
	x2 := b.Clone()
	Dtrsm(Left, Lower, false, Unit, 1, tri, x2)
	if !matrix.Equal(x1, x2) {
		t.Error("unit-diagonal solve read the stored diagonal")
	}
}

func TestDtrsmPanics(t *testing.T) {
	rect := matrix.NewDense(3, 4)
	b := matrix.NewDense(3, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-square T")
			}
		}()
		Dtrsm(Left, Lower, false, Unit, 1, rect, b)
	}()
	tri := matrix.NewDense(4, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for B row mismatch")
			}
		}()
		Dtrsm(Left, Lower, false, Unit, 1, tri, b)
	}()
}

func TestDtrsmParallelMatchesSerial(t *testing.T) {
	tri := randTriangular(16, Lower, Unit, 9)
	b := matrix.RandomGeneral(16, 40, 10)
	for _, w := range []int{1, 2, 4, 7} {
		got := b.Clone()
		DtrsmParallel(Left, Lower, false, Unit, 1, tri, got, w)
		want := b.Clone()
		Dtrsm(Left, Lower, false, Unit, 1, tri, want)
		if d := matrix.MaxDiff(got, want); d > 1e-13 {
			t.Errorf("workers=%d maxdiff=%g", w, d)
		}
	}
	// Right side falls back to serial and stays correct.
	triU := randTriangular(12, Upper, NonUnit, 11)
	br := matrix.RandomGeneral(5, 12, 12)
	got := br.Clone()
	DtrsmParallel(Right, Upper, false, NonUnit, 1, triU, got, 4)
	want := br.Clone()
	Dtrsm(Right, Upper, false, NonUnit, 1, triU, want)
	if !matrix.Equal(got, want) {
		t.Error("right-side parallel fallback mismatch")
	}
}

func TestSolveVec(t *testing.T) {
	tri := randTriangular(8, Upper, NonUnit, 21)
	xTrue := matrix.RandomVector(8, 22)
	// b = U * xTrue
	b := make([]float64, 8)
	for i := 0; i < 8; i++ {
		b[i] = Ddot(tri.Row(i), xTrue)
	}
	x := SolveVec(Upper, false, NonUnit, tri, b)
	for i := range x {
		if diff := x[i] - xTrue[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("x[%d] = %v want %v", i, x[i], xTrue[i])
		}
	}
}

func TestSolveVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SolveVec(Upper, false, NonUnit, matrix.NewDense(3, 3), []float64{1})
}

// Property: solving then multiplying round-trips for random unit-lower
// systems (the exact shape of the LU panel update).
func TestDtrsmRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n, m := 6, 5
		tri := randTriangular(n, Lower, Unit, seed)
		b := matrix.RandomGeneral(n, m, seed^0xf00d)
		x := b.Clone()
		Dtrsm(Left, Lower, false, Unit, 1, tri, x)
		recon := matrix.NewDense(n, m)
		Dgemm(false, false, 1, tri, x, 0, recon)
		return matrix.MaxDiff(recon, b) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
