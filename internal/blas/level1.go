// Package blas implements the dense linear-algebra kernels the Linpack
// benchmark is built from — DGEMM, DTRSM, DGETRF/DGETF2, DLASWP and the
// level-1 routines they use — in pure Go over row-major matrices.
//
// These are the *functional* counterparts of the paper's hand-tuned Knights
// Corner assembly: bit-real, residual-checked, and parallelized with
// goroutines. Their *performance* on the simulated Knights Corner machine
// is accounted separately by internal/kernels and internal/perfmodel.
package blas

import (
	"math"

	"phihpl/internal/matrix"
)

// Idamax returns the index of the element with the largest absolute value
// in v, or -1 when v is empty. Ties resolve to the lowest index, matching
// reference BLAS.
func Idamax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bestAbs := 0, math.Abs(v[0])
	for i := 1; i < len(v); i++ {
		if a := math.Abs(v[i]); a > bestAbs {
			best, bestAbs = i, a
		}
	}
	return best
}

// IdamaxCol returns the row index (relative to the view) of the largest
// absolute value in column j of a, scanning rows [i0, a.Rows).
func IdamaxCol(a *matrix.Dense, j, i0 int) int {
	if i0 >= a.Rows {
		return -1
	}
	best, bestAbs := i0, math.Abs(a.At(i0, j))
	for i := i0 + 1; i < a.Rows; i++ {
		if v := math.Abs(a.At(i, j)); v > bestAbs {
			best, bestAbs = i, v
		}
	}
	return best
}

// Dscal scales v by alpha.
func Dscal(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Daxpy computes y += alpha*x.
func Daxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Daxpy length mismatch")
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Ddot returns x·y.
func Ddot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Ddot length mismatch")
	}
	s := 0.0
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// SwapRows exchanges rows i and j of a (full width).
func SwapRows(a *matrix.Dense, i, j int) {
	if i == j {
		return
	}
	ri, rj := a.Row(i), a.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Dger computes the rank-1 update A += alpha * x * yᵀ where x has length
// A.Rows and y has length A.Cols.
func Dger(alpha float64, x, y []float64, a *matrix.Dense) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("blas: Dger dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		row := a.Row(i)
		for j, yv := range y {
			row[j] += ax * yv
		}
	}
}
