package blas

import (
	"sync"

	"phihpl/internal/matrix"
)

// Side selects whether the triangular matrix multiplies from the left or
// the right in Dtrsm.
type Side int

// Uplo selects the triangle of the coefficient matrix that is referenced.
type Uplo int

// Diag declares whether the triangular matrix has an implicit unit diagonal.
type Diag int

const (
	// Left solves op(T)·X = alpha·B.
	Left Side = iota
	// Right solves X·op(T) = alpha·B.
	Right
)

const (
	// Lower references the lower triangle of T.
	Lower Uplo = iota
	// Upper references the upper triangle of T.
	Upper
)

const (
	// NonUnit uses the stored diagonal of T.
	NonUnit Diag = iota
	// Unit assumes an implicit unit diagonal (the L factor of LU).
	Unit
)

// Dtrsm solves a triangular system in place, overwriting B with the
// solution X:
//
//	Left:  op(T)·X = alpha·B
//	Right: X·op(T) = alpha·B
//
// T must be square and is referenced only in the triangle selected by uplo;
// trans applies op(T)=Tᵀ. This covers every case Linpack needs: the
// L·U_panel forward solve (Left/Lower/Unit), back substitution with U
// (Left/Upper/NonUnit) and the right-side updates used by left-looking
// variants.
func Dtrsm(side Side, uplo Uplo, trans bool, diag Diag, alpha float64, t, b *matrix.Dense) {
	if t.Rows != t.Cols {
		panic("blas: Dtrsm triangular matrix must be square")
	}
	n := t.Rows
	if (side == Left && b.Rows != n) || (side == Right && b.Cols != n) {
		panic("blas: Dtrsm dimension mismatch")
	}
	if trans {
		// op(T) = Tᵀ: materialize the transpose once and flip the triangle.
		t = transpose(t)
		if uplo == Lower {
			uplo = Upper
		} else {
			uplo = Lower
		}
	}
	if alpha != 1 {
		for i := 0; i < b.Rows; i++ {
			Dscal(alpha, b.Row(i))
		}
	}
	switch {
	case side == Left && uplo == Lower:
		// Forward substitution over rows of B.
		for i := 0; i < n; i++ {
			bi := b.Row(i)
			ti := t.Row(i)
			for k := 0; k < i; k++ {
				if lik := ti[k]; lik != 0 {
					Daxpy(-lik, b.Row(k), bi)
				}
			}
			if diag == NonUnit {
				div(bi, ti[i])
			}
		}
	case side == Left && uplo == Upper:
		// Back substitution over rows of B.
		for i := n - 1; i >= 0; i-- {
			bi := b.Row(i)
			ti := t.Row(i)
			for k := i + 1; k < n; k++ {
				if uik := ti[k]; uik != 0 {
					Daxpy(-uik, b.Row(k), bi)
				}
			}
			if diag == NonUnit {
				div(bi, ti[i])
			}
		}
	case side == Right && uplo == Upper:
		// X·U = B: columns of X depend on previous columns.
		for j := 0; j < n; j++ {
			for i := 0; i < b.Rows; i++ {
				bi := b.Row(i)
				s := bi[j]
				for k := 0; k < j; k++ {
					s -= bi[k] * t.At(k, j)
				}
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				bi[j] = s
			}
		}
	case side == Right && uplo == Lower:
		// X·L = B: columns resolve from the last to the first.
		for j := n - 1; j >= 0; j-- {
			for i := 0; i < b.Rows; i++ {
				bi := b.Row(i)
				s := bi[j]
				for k := j + 1; k < n; k++ {
					s -= bi[k] * t.At(k, j)
				}
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				bi[j] = s
			}
		}
	}
}

// DtrsmParallel runs the Left-side solves with the columns of B partitioned
// across workers (each column block is an independent triangular solve).
// Right-side solves degrade to the serial path because their dependency
// chain runs across columns.
func DtrsmParallel(side Side, uplo Uplo, trans bool, diag Diag, alpha float64, t, b *matrix.Dense, workers int) {
	if side == Right || workers <= 1 || b.Cols < 2*workers {
		Dtrsm(side, uplo, trans, diag, alpha, t, b)
		return
	}
	var wg sync.WaitGroup
	chunk := (b.Cols + workers - 1) / workers
	for lo := 0; lo < b.Cols; lo += chunk {
		hi := lo + chunk
		if hi > b.Cols {
			hi = b.Cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			Dtrsm(side, uplo, trans, diag, alpha, t, b.View(0, lo, b.Rows, hi-lo))
		}(lo, hi)
	}
	wg.Wait()
}

// div divides a row elementwise (reference-BLAS semantics: a true divide,
// not a multiply by the reciprocal, so solves match LUSolve bit for bit).
func div(v []float64, d float64) {
	for i := range v {
		v[i] /= d
	}
}

// SolveVec solves op(T)·x = b for a vector using the triangle selected by
// uplo/diag, returning a new slice.
func SolveVec(uplo Uplo, trans bool, diag Diag, t *matrix.Dense, b []float64) []float64 {
	n := t.Rows
	if len(b) != n {
		panic("blas: SolveVec dimension mismatch")
	}
	col := matrix.NewDense(n, 1)
	for i, v := range b {
		col.Set(i, 0, v)
	}
	Dtrsm(Left, uplo, trans, diag, 1, t, col)
	out := make([]float64, n)
	for i := range out {
		out[i] = col.At(i, 0)
	}
	return out
}
