package blas

import (
	"sync"

	"phihpl/internal/matrix"
	"phihpl/internal/pack"
	"phihpl/internal/pool"
)

// The single-precision packed-tile fast path: the SGEMM analogue of
// DgemmPacked, built from the same parts — operands packed per K-block
// into the tile layout (A in 32×k column-major tiles, B in k×16 row-major
// tiles, the SP vector being 16 lanes wide), packing and the tile grid
// distributed over the persistent worker pool, and the register-blocked
// micro-kernel (vector FMA where the CPU has it, portable scalar
// otherwise) doing the flops.
//
// The bitwise-reproducibility contract of the float64 path carries over:
// the value of every C element depends only on its row of alpha·op(A),
// its column of op(B), beta·C and the K-block boundaries (a function of k
// alone) — never on the worker count, the tile the element lands in, or
// how the m×n iteration space is partitioned. The mixed-precision LU
// driver splits trailing updates into differently-shaped calls with equal
// k, and this property keeps the FP32 factorization deterministic.

// packBuf32 is a reusable set of packing buffers plus the packed-operand
// headers, recycled through a sync.Pool so steady-state SgemmPacked calls
// allocate nothing beyond two per-call closures (see packBuf).
type packBuf32 struct {
	a, b []float32
	pa   pack.A32
	pbs  []pack.B32 // one header per B replica group
}

var packBufs32 = sync.Pool{New: func() any { return new(packBuf32) }}

// take returns slices of exactly na and nb elements, growing the backing
// buffers only when a larger shape arrives. Contents are stale; the
// packers overwrite every element including padding.
func (pb *packBuf32) take(na, nb int) ([]float32, []float32) {
	if cap(pb.a) < na {
		pb.a = make([]float32, na)
	}
	if cap(pb.b) < nb {
		pb.b = make([]float32, nb)
	}
	return pb.a[:na], pb.b[:nb]
}

// SgemmPacked computes C = alpha*op(A)*op(B) + beta*C in single precision
// through the packed-tile parallel fast path. With the scalar micro-kernel
// it is bit-for-bit identical to the Sgemm reference loop (same K-block
// grouping, same unfused multiply-add); with the vector FMA kernel it is
// element-wise within O(k)·ulp (products are fused) and an order of
// magnitude faster — the SP-vector advantage of the paper's Table II that
// no scalar loop can reproduce. Sgemm remains the always-available oracle.
func SgemmPacked(transA, transB bool, alpha float32, a, b *matrix.Dense32, beta float32, c *matrix.Dense32, workers int) {
	m, k := opDims32(a, transA)
	k2, n := opDims32(b, transB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic("blas: SgemmPacked dimension mismatch")
	}
	scaleRows32(c, beta, workers)
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}

	aTiles := (m + pack.DefaultTileM32 - 1) / pack.DefaultTileM32
	bTiles := (n + pack.TileN32 - 1) / pack.TileN32
	groups := bGroups()
	pb := packBufs32.Get().(*packBuf32)
	defer packBufs32.Put(pb)
	pa := &pb.pa
	if cap(pb.pbs) < groups {
		pb.pbs = make([]pack.B32, groups)
	}
	pbs := pb.pbs[:groups]

	rec := obsTrace.Load()
	mSPackedCalls.Load().Inc()
	mSPackedFlops.Load().Add(2 * int64(m) * int64(n) * int64(k))

	// As in DgemmPacked: headers live in the recycled buffer, the two
	// region closures are hoisted out of the K-block loop, and each
	// socket group packs (and later streams) its own B replica.
	var k0, kb int
	packFn := func(t int) {
		if t < aTiles {
			pack.PackATileOp32(pa, a, transA, alpha, k0, t)
		} else {
			t -= aTiles
			pack.PackBTileOp32(&pbs[t/bTiles], b, transB, k0, t%bTiles)
		}
	}
	// Outer product: the (aTile, bTile) grid updates disjoint 32×16
	// blocks of C, claimed by atomic work stealing over the pool.
	compFn := func(j, g int) {
		ta, tb := j/bTiles, j%bTiles
		rows := pa.TileRows(ta)
		pkb := &pbs[g]
		cols := pkb.TileCols(tb)
		off := ta*pack.DefaultTileM32*c.Stride + tb*pack.TileN32
		pack.MicroKernel32(pa.Tile(ta), pa.TileM, kb, pkb.Tile(tb), c.Data[off:], c.Stride, rows, cols)
	}

	for k0 = 0; k0 < k; k0 += packKC {
		kb = packKC
		if k0+kb > k {
			kb = k - k0
		}
		nb := bTiles * kb * pack.TileN32
		aData, bData := pb.take(aTiles*pack.DefaultTileM32*kb, groups*nb)
		pa.M, pa.K, pa.TileM, pa.Data = m, kb, pack.DefaultTileM32, aData
		for g := range pbs {
			pbs[g].K, pbs[g].N, pbs[g].Data = kb, n, bData[g*nb:(g+1)*nb]
		}
		mSBytesPacked.Load().Add(4 * int64(len(aData)+len(bData)))

		var t0 float64
		if rec != nil {
			t0 = rec.Start()
		}
		pool.Do(aTiles+groups*bTiles, workers, packFn)
		if rec != nil {
			rec.Since(0, "spack", k0/packKC, t0)
			t0 = rec.Start()
		}
		pool.DoGrouped(aTiles*bTiles, workers, compFn)
		if rec != nil {
			rec.Since(0, "scompute", k0/packKC, t0)
		}
	}
}

// SRankKUpdate computes C -= A*B in single precision (the FP32 LU trailing
// update; alpha=-1, beta=1 in BLAS terms). Updates deep enough to amortize
// packing (k >= PackedMinK, the same crossover as RankKUpdate — it
// inspects k only, never m or n) go through SgemmPacked; thin updates keep
// the reference loop, whose lower setup cost wins for the narrow panels.
func SRankKUpdate(a, b, c *matrix.Dense32, workers int) {
	if a.Cols >= PackedMinK {
		SgemmPacked(false, false, -1, a, b, 1, c, workers)
		return
	}
	SgemmDense(false, false, -1, a, b, 1, c)
}

// scaleRows32 applies C *= beta row-wise (beta==0 stores exact zeros,
// clearing any NaN/Inf previously in C, matching the Sgemm reference).
func scaleRows32(c *matrix.Dense32, beta float32, workers int) {
	if beta == 1 || c.Rows == 0 || c.Cols == 0 {
		return
	}
	pool.Do(c.Rows, workers, func(i int) {
		row := c.Row(i)
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			return
		}
		for j := range row {
			row[j] *= beta
		}
	})
}
