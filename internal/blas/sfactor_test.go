package blas

import (
	"errors"
	"math"
	"testing"

	"phihpl/internal/matrix"
)

// reconstruct32 computes P·L·U from the packed factors, widened to
// float64 for comparison against the original.
func reconstruct32(lu *matrix.Dense32, piv []int) *matrix.Dense {
	n := lu.Rows
	m := lu.Cols
	l := matrix.NewDense(n, n)
	u := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < m; j++ {
			v := float64(lu.At(i, j))
			if j < i {
				l.Set(i, j, v)
			} else {
				u.Set(i, j, v)
			}
		}
	}
	prod := matrix.NewDense(n, m)
	Dgemm(false, false, 1, l, u, 0, prod)
	// Undo the row swaps in reverse order to recover P·L·U.
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			SwapRows(prod, k, piv[k])
		}
	}
	return prod
}

// TestSgetf2ReconstructsAndPivots: the unblocked FP32 panel factorization
// must produce in-range pivots, multipliers bounded by 1, and P·L·U
// within single-precision forward error of the input.
func TestSgetf2ReconstructsAndPivots(t *testing.T) {
	for _, sh := range []struct{ m, n int }{{8, 8}, {20, 6}, {1, 1}, {31, 15}} {
		orig64 := matrix.RandomGeneral(sh.m, sh.n, uint64(sh.m*31+sh.n))
		a := orig64.ToDense32()
		orig := a.ToDense() // the exact FP32-rounded input
		mn := sh.m
		if sh.n < mn {
			mn = sh.n
		}
		piv := make([]int, mn)
		if err := Sgetf2(a, piv); err != nil {
			t.Fatalf("%+v: unexpected singularity: %v", sh, err)
		}
		for k, p := range piv {
			if p < k || p >= sh.m {
				t.Fatalf("%+v: pivot %d out of range: %d", sh, k, p)
			}
		}
		for i := 0; i < sh.m; i++ {
			for j := 0; j < i && j < sh.n; j++ {
				if v := a.At(i, j); v > 1+1e-5 || v < -1-1e-5 {
					t.Fatalf("%+v: multiplier (%d,%d)=%v exceeds 1", sh, i, j, v)
				}
			}
		}
		recon := reconstruct32(a, piv)
		tol := 1e-4 * (1 + orig.MaxAbs()) * float64(mn)
		if d := matrix.MaxDiff(recon, orig); d > tol {
			t.Fatalf("%+v: reconstruction error %g > %g", sh, d, tol)
		}
	}
}

// TestSgetf2MatchesDgetf2Pivots: on a matrix whose column maxima are well
// separated, the FP32 and FP64 panel factorizations must choose the same
// pivot rows — rounding to float32 cannot flip a comparison that isn't
// within eps32 of a tie.
func TestSgetf2MatchesDgetf2Pivots(t *testing.T) {
	n := 24
	a64 := matrix.RandomGeneral(n, n, 77)
	// Separate magnitudes decisively: row i scaled by 1 + i/4.
	for i := 0; i < n; i++ {
		row := a64.Row(i)
		for j := range row {
			row[j] *= 1 + float64((i*7)%n)/4
		}
	}
	a32 := a64.ToDense32()
	piv64 := make([]int, n)
	piv32 := make([]int, n)
	if err := Dgetf2(a64, piv64); err != nil {
		t.Fatal(err)
	}
	if err := Sgetf2(a32, piv32); err != nil {
		t.Fatal(err)
	}
	for k := range piv64 {
		if piv64[k] != piv32[k] {
			t.Fatalf("pivot %d: fp64 chose %d, fp32 chose %d", k, piv64[k], piv32[k])
		}
	}
}

// TestSgetf2Singular: a zero column yields a typed *SingularError carrying
// the column, matching ErrSingular under errors.Is, and the factorization
// continues past it.
func TestSgetf2Singular(t *testing.T) {
	n := 6
	a := randomDense32(n, n, 9)
	for i := 0; i < n; i++ {
		a.Set(i, 2, 0)
	}
	// Make the pivot search deterministic despite the zero column: after
	// eliminating columns 0-1 the column-2 slice stays exactly zero only if
	// the eliminations contribute zero, so zero the feeding entries too.
	for i := 0; i < n; i++ {
		a.Set(i, 0, 0)
		a.Set(i, 1, 0)
	}
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	piv := make([]int, n)
	err := Sgetf2(a, piv)
	if err == nil {
		t.Fatal("expected singularity")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	var se *SingularError
	if !errors.As(err, &se) || se.Col != 2 {
		t.Fatalf("err = %v, want *SingularError{Col: 2}", err)
	}
}

// TestStrsmMatchesSubstitution: all four side/uplo cases, with and
// without transpose and unit diagonal, must satisfy op(T)·X = alpha·B
// (or X·op(T) = alpha·B) within single-precision forward error.
func TestStrsmMatchesSubstitution(t *testing.T) {
	n, m := 12, 7
	mkTri := func(uplo Uplo, diag Diag, seed uint64) *matrix.Dense32 {
		tm := randomDense32(n, n, seed)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (uplo == Lower && j > i) || (uplo == Upper && j < i) {
					tm.Set(i, j, 0)
				}
			}
			// Dominant diagonal keeps the solve well conditioned.
			if diag == NonUnit {
				tm.Set(i, i, 2+tm.At(i, i))
			} else {
				tm.Set(i, i, 1)
			}
		}
		return tm
	}
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []bool{false, true} {
				for _, diag := range []Diag{NonUnit, Unit} {
					tm := mkTri(uplo, diag, uint64(17+int(side)*2+int(uplo)))
					br, bc := n, m
					if side == Right {
						br, bc = m, n
					}
					b0 := randomDense32(br, bc, 33)
					x := b0.Clone()
					const alpha = float32(1.5)
					Strsm(side, uplo, trans, diag, alpha, tm, x)

					// Verify op(T)·X (or X·op(T)) ≈ alpha·B in float64.
					t64 := tm.ToDense()
					x64 := x.ToDense()
					var prod *matrix.Dense
					if side == Left {
						prod = matrix.NewDense(br, bc)
						Dgemm(trans, false, 1, t64, x64, 0, prod)
					} else {
						prod = matrix.NewDense(br, bc)
						Dgemm(false, trans, 1, x64, t64, 0, prod)
					}
					for i := 0; i < br; i++ {
						for j := 0; j < bc; j++ {
							want := float64(alpha) * float64(b0.At(i, j))
							if d := math.Abs(prod.At(i, j) - want); d > 2e-4 {
								t.Fatalf("side=%v uplo=%v trans=%v diag=%v: (%d,%d) residual %g",
									side, uplo, trans, diag, i, j, d)
							}
						}
					}
				}
			}
		}
	}
}

// TestSgetrfMatchesUnblocked: the blocked FP32 factorization must agree
// with the unblocked panel factorization on pivots and produce a
// reconstruction within single-precision error, for block sizes that do
// and do not divide n.
func TestSgetrfMatchesUnblocked(t *testing.T) {
	n := 96
	base := matrix.RandomGeneral(n, n, 5).ToDense32()
	ref := base.Clone()
	pivRef := make([]int, n)
	if err := Sgetf2(ref, pivRef); err != nil {
		t.Fatal(err)
	}
	for _, nb := range []int{8, 32, 40, 96, 200} {
		a := base.Clone()
		piv := make([]int, n)
		if err := Sgetrf(a, piv, nb, 3); err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		for k := range piv {
			if piv[k] != pivRef[k] {
				t.Fatalf("nb=%d: pivot %d: %d vs unblocked %d", nb, k, piv[k], pivRef[k])
			}
		}
		recon := reconstruct32(a, piv)
		orig := base.ToDense()
		tol := 1e-3 * (1 + orig.MaxAbs()) * float64(n)
		if d := matrix.MaxDiff(recon, orig); d > tol {
			t.Fatalf("nb=%d: reconstruction error %g > %g", nb, d, tol)
		}
	}
}

// TestSgetrfWorkerInvariance: the blocked FP32 factorization is bitwise
// identical for any worker count — the determinism contract inherited
// from SgemmPacked's partition invariance.
func TestSgetrfWorkerInvariance(t *testing.T) {
	n := 128
	base := matrix.RandomGeneral(n, n, 12).ToDense32()
	ref := base.Clone()
	pivRef := make([]int, n)
	if err := Sgetrf(ref, pivRef, 32, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		a := base.Clone()
		piv := make([]int, n)
		if err := Sgetrf(a, piv, 32, workers); err != nil {
			t.Fatal(err)
		}
		if !equal32(a, ref) {
			t.Fatalf("workers=%d: factors differ bitwise", workers)
		}
		for k := range piv {
			if piv[k] != pivRef[k] {
				t.Fatalf("workers=%d: pivot %d differs", workers, k)
			}
		}
	}
}

// TestSgetrfSingularOffset: a singular column inside a later panel is
// reported with its global column index.
func TestSgetrfSingularOffset(t *testing.T) {
	n := 16
	a := matrix.NewDense32(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	// Kill column 10 entirely (diagonal included): with an identity
	// elsewhere nothing refills it during elimination.
	a.Set(10, 10, 0)
	piv := make([]int, n)
	err := Sgetrf(a, piv, 4, 2)
	var se *SingularError
	if !errors.As(err, &se) || se.Col != 10 {
		t.Fatalf("err = %v, want *SingularError{Col: 10}", err)
	}
}

// TestLUSolveMixedAccuracy: FP32 factors + FP64 substitution recover the
// FP64 solution to single-precision relative accuracy on a
// well-conditioned system. (The HPL residual test scales by the *double*
// epsilon, so a raw mixed substitution does NOT pass it — that gap is
// exactly what lu.SolveMixed's FP64 refinement closes.)
func TestLUSolveMixedAccuracy(t *testing.T) {
	n := 64
	a, b := matrix.RandomSystem(n, 21)
	a32 := a.ToDense32()
	piv := make([]int, n)
	if err := Sgetrf(a32, piv, 16, 2); err != nil {
		t.Fatal(err)
	}
	x := LUSolveMixed(a32, piv, b)

	lu64 := a.Clone()
	piv64 := make([]int, n)
	if err := Dgetrf(lu64, piv64, 16); err != nil {
		t.Fatal(err)
	}
	want := LUSolve(lu64, piv64, b)
	var norm, diff float64
	for i := range x {
		if v := math.Abs(want[i]); v > norm {
			norm = v
		}
		if d := math.Abs(x[i] - want[i]); d > diff {
			diff = d
		}
	}
	if diff > 1e-3*(norm+1) {
		t.Fatalf("mixed solve off by %g (‖x‖ = %g), beyond FP32 accuracy", diff, norm)
	}
}

// TestLUSolveMixedDimensionPanics pins the guard contract.
func TestLUSolveMixedDimensionPanics(t *testing.T) {
	lu := matrix.NewDense32(3, 3)
	for i := 0; i < 3; i++ {
		lu.Set(i, i, 1)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected dimension panic")
		}
	}()
	LUSolveMixed(lu, make([]int, 3), make([]float64, 2))
}
