package blas

import (
	"math"
	"runtime"
	"testing"

	"phihpl/internal/matrix"
)

// ulpEps is the double-precision machine epsilon, the unit for the
// 8·k·ulp oracle bound.
const ulpEps = 2.220446049250313e-16

// opAt reads op(X)(i, j).
func opAt(x *matrix.Dense, trans bool, i, j int) float64 {
	if trans {
		return x.At(j, i)
	}
	return x.At(i, j)
}

// assertPackedMatchesRef checks DgemmPacked against the naive reference
// element-wise: |packed - ref| must stay within 8·(k+2)·ulp of the
// element's accumulated magnitude |alpha|·Σ|a·b| + |beta·c0|, the
// standard forward-error envelope for a reordered k-term sum.
func assertPackedMatchesRef(t *testing.T, tag string, transA, transB bool,
	alpha float64, a, b *matrix.Dense, beta float64, c0, got, want *matrix.Dense) {
	t.Helper()
	m, k := opDims(a, transA)
	_, n := opDims(b, transB)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			mag := math.Abs(beta * c0.At(i, j))
			for p := 0; p < k; p++ {
				mag += math.Abs(alpha * opAt(a, transA, i, p) * opAt(b, transB, p, j))
			}
			bound := 8 * float64(k+2) * ulpEps * (mag + 1)
			if d := math.Abs(got.At(i, j) - want.At(i, j)); d > bound || math.IsNaN(d) {
				t.Fatalf("%s: C(%d,%d) = %v, want %v (|diff| %g > bound %g)",
					tag, i, j, got.At(i, j), want.At(i, j), d, bound)
			}
		}
	}
}

// TestDgemmPackedOracleEdgeShapes drives the fast path through every
// partial-tile regime: m % 30 != 0, n % 8 != 0, k = 1, m = 1, n = 1 and
// single-tile shapes.
func TestDgemmPackedOracleEdgeShapes(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{30, 8, 16},           // exactly one tile
		{31, 9, 7},            // partial edge tiles both ways
		{29, 7, 1},            // k = 1
		{1, 1, 1},             // degenerate
		{1, 40, 24},           // m = 1
		{64, 1, 24},           // n = 1
		{60, 16, 40},          // multiple full tiles
		{95, 23, 33},          // ragged
		{30, 8, 2*packKC + 5}, // several K-blocks
	}
	for _, s := range shapes {
		a := matrix.RandomGeneral(s.m, s.k, uint64(s.m*7+s.k))
		b := matrix.RandomGeneral(s.k, s.n, uint64(s.n*13+s.k))
		c0 := matrix.RandomGeneral(s.m, s.n, 17)
		for _, workers := range []int{1, 4} {
			got, want := c0.Clone(), c0.Clone()
			DgemmPacked(false, false, -1, a, b, 1, got, workers)
			dgemmRef(false, false, -1, a, b, 1, want)
			assertPackedMatchesRef(t, "edge", false, false, -1, a, b, 1, c0, got, want)
		}
	}
}

// TestDgemmPackedOracleProperty is the randomized oracle: for random
// (m, n, k, alpha, beta, transA, transB, workers, view-offset) tuples the
// packed fast path must match the reference triple loop element-wise
// within the 8·k·ulp envelope — including on strided matrix.Dense views.
func TestDgemmPackedOracleProperty(t *testing.T) {
	alphas := []float64{1, -1, 0.5, -2.25, 3}
	betas := []float64{0, 1, -0.5, 2}
	rng := matrix.NewPRNG(0xfeed)
	for iter := 0; iter < 120; iter++ {
		m := 1 + rng.Intn(70)
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(90)
		alpha := alphas[rng.Intn(len(alphas))]
		beta := betas[rng.Intn(len(betas))]
		transA := rng.Intn(2) == 1
		transB := rng.Intn(2) == 1
		workers := 1 + rng.Intn(8)

		// Operands live inside larger host matrices at random offsets, so
		// every access exercises Stride > Cols views.
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		oi, oj := rng.Intn(4), rng.Intn(4)
		aHost := matrix.RandomGeneral(ar+oi+2, ac+oj+2, rng.Uint64())
		bHost := matrix.RandomGeneral(br+oi+2, bc+oj+2, rng.Uint64())
		a := aHost.View(oi, oj, ar, ac)
		b := bHost.View(oi, oj, br, bc)

		c0 := matrix.RandomGeneral(m+oi+1, n+oj+1, rng.Uint64())
		gotHost, wantHost := c0.Clone(), c0.Clone()
		got := gotHost.View(oi, oj, m, n)
		want := wantHost.View(oi, oj, m, n)

		DgemmPacked(transA, transB, alpha, a, b, beta, got, workers)
		dgemmRef(transA, transB, alpha, a, b, beta, want)

		tag := "property"
		assertPackedMatchesRef(t, tag, transA, transB, alpha, a.Clone(), b.Clone(), beta,
			c0.View(oi, oj, m, n).Clone(), got.Clone(), want.Clone())

		// The host matrix outside the view must be untouched.
		for i := 0; i < gotHost.Rows; i++ {
			for j := 0; j < gotHost.Cols; j++ {
				inside := i >= oi && i < oi+m && j >= oj && j < oj+n
				if !inside && gotHost.At(i, j) != c0.At(i, j) {
					t.Fatalf("iter %d: wrote outside the view at (%d,%d)", iter, i, j)
				}
			}
		}
	}
}

// TestDgemmPackedWorkerAndPartitionInvariance pins the determinism
// contract the LU drivers rely on: the packed result is bitwise identical
// for any worker count, and slicing C into row or column strips (separate
// calls with the same k) reproduces the one-shot result bit for bit.
func TestDgemmPackedWorkerAndPartitionInvariance(t *testing.T) {
	m, n, k := 77, 41, 52
	a := matrix.RandomGeneral(m, k, 1)
	b := matrix.RandomGeneral(k, n, 2)
	c0 := matrix.RandomGeneral(m, n, 3)

	base := c0.Clone()
	DgemmPacked(false, false, -1, a, b, 1, base, 1)

	for _, workers := range []int{2, 3, 8, 64} {
		got := c0.Clone()
		DgemmPacked(false, false, -1, a, b, 1, got, workers)
		if !matrix.Equal(got, base) {
			t.Fatalf("workers=%d: result differs bitwise from serial", workers)
		}
	}

	// Column strips: C[:, lo:hi] -= A · B[:, lo:hi].
	cols := c0.Clone()
	for lo := 0; lo < n; lo += 13 {
		hi := lo + 13
		if hi > n {
			hi = n
		}
		DgemmPacked(false, false, -1, a, b.View(0, lo, k, hi-lo), 1, cols.View(0, lo, m, hi-lo), 4)
	}
	if !matrix.Equal(cols, base) {
		t.Fatal("column-partitioned result differs bitwise")
	}

	// Row strips: C[lo:hi, :] -= A[lo:hi, :] · B.
	rows := c0.Clone()
	for lo := 0; lo < m; lo += 19 {
		hi := lo + 19
		if hi > m {
			hi = m
		}
		DgemmPacked(false, false, -1, a.View(lo, 0, hi-lo, k), b, 1, rows.View(lo, 0, hi-lo, n), 4)
	}
	if !matrix.Equal(rows, base) {
		t.Fatal("row-partitioned result differs bitwise")
	}
}

// TestRankKUpdateCrossover verifies the k-only routing: deep updates land
// bitwise on the packed path, thin ones bitwise on the reference loop.
func TestRankKUpdateCrossover(t *testing.T) {
	m, n := 50, 34
	for _, k := range []int{PackedMinK - 1, PackedMinK, PackedMinK + 5} {
		a := matrix.RandomGeneral(m, k, uint64(k))
		b := matrix.RandomGeneral(k, n, uint64(k)+1)
		c0 := matrix.RandomGeneral(m, n, 9)

		got := c0.Clone()
		RankKUpdate(a, b, got, 3)

		want := c0.Clone()
		if k >= PackedMinK {
			DgemmPacked(false, false, -1, a, b, 1, want, 3)
		} else {
			DgemmParallel(false, false, -1, a, b, 1, want, 3)
		}
		if !matrix.Equal(got, want) {
			t.Fatalf("k=%d: RankKUpdate did not match its designated path bitwise", k)
		}
	}
}

// TestGemmNaNInfPropagation is the satellite regression for the old
// aip == 0 early-continue: a zero row of A times a NaN/Inf column of B
// must produce NaN (0·NaN = NaN, 0·Inf = NaN) on every path.
func TestGemmNaNInfPropagation(t *testing.T) {
	m, n, k := 35, 10, PackedMinK+4
	a := matrix.NewDense(m, k) // identically zero
	b := matrix.RandomGeneral(k, n, 5)
	b.Set(3, 4, math.NaN())
	b.Set(5, 1, math.Inf(1))

	run := map[string]func(c *matrix.Dense){
		"Dgemm":         func(c *matrix.Dense) { Dgemm(false, false, 1, a, b, 0, c) },
		"DgemmParallel": func(c *matrix.Dense) { DgemmParallel(false, false, 1, a, b, 0, c, 4) },
		"DgemmPacked":   func(c *matrix.Dense) { DgemmPacked(false, false, 1, a, b, 0, c, 4) },
		"RankKUpdate":   func(c *matrix.Dense) { RankKUpdate(a, b, c, 4) },
	}
	for name, f := range run {
		c := matrix.NewDense(m, n)
		f(c)
		for i := 0; i < m; i++ {
			if !math.IsNaN(c.At(i, 4)) {
				t.Errorf("%s: C(%d,4) = %v, want NaN from 0·NaN", name, i, c.At(i, 4))
				break
			}
			if !math.IsNaN(c.At(i, 1)) {
				t.Errorf("%s: C(%d,1) = %v, want NaN from 0·Inf", name, i, c.At(i, 1))
				break
			}
			if v := c.At(i, 0); v != 0 || math.IsNaN(v) {
				t.Errorf("%s: C(%d,0) = %v, want exact 0", name, i, v)
				break
			}
		}
	}
}

// TestDgemmPackedQuickReturnSemantics: alpha == 0 must not read A or B
// (NaN there stays out of C), and beta == 0 must overwrite NaN already
// in C — the BLAS quick-return rules, matching dgemmRows.
func TestDgemmPackedQuickReturnSemantics(t *testing.T) {
	m, n, k := 10, 9, 20
	a := matrix.NewDense(m, k)
	b := matrix.NewDense(k, n)
	a.Set(0, 0, math.NaN())
	b.Set(0, 0, math.NaN())

	c := matrix.RandomGeneral(m, n, 1)
	want := c.Clone()
	DgemmPacked(false, false, 0, a, b, 1, c, 4)
	if !matrix.Equal(c, want) {
		t.Error("alpha=0, beta=1 must leave C bitwise unchanged")
	}

	c.Set(2, 3, math.NaN())
	DgemmPacked(false, false, 0, a, b, 0, c, 4)
	if c.MaxAbs() != 0 {
		t.Error("alpha=0, beta=0 must store exact zeros (clearing NaN)")
	}
}

// TestDgemmPackedSteadyStateNoGoroutineSpawn: after warm-up, repeated
// fast-path calls must not grow the goroutine count — the worker pool is
// persistent, unlike DgemmParallel's per-call spawning.
func TestDgemmPackedSteadyStateNoGoroutineSpawn(t *testing.T) {
	a := matrix.RandomGeneral(64, 48, 1)
	b := matrix.RandomGeneral(48, 40, 2)
	c := matrix.NewDense(64, 40)
	DgemmPacked(false, false, -1, a, b, 1, c, 8) // warm up the pool
	runtime.Gosched()
	base := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		DgemmPacked(false, false, -1, a, b, 1, c, 8)
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Errorf("goroutines grew from %d to %d over 100 calls", base, got)
	}
}

// TestDgemmPackedDimensionPanics mirrors the reference path's contract.
func TestDgemmPackedDimensionPanics(t *testing.T) {
	a := matrix.NewDense(2, 3)
	b := matrix.NewDense(4, 2)
	c := matrix.NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected dimension panic")
		}
	}()
	DgemmPacked(false, false, 1, a, b, 0, c, 2)
}

// GemmPrepacked's pack-once-reuse must be bitwise the per-call
// DgemmPacked result — the contract that lets the 2D HPL driver share
// packed operands across a block row/column — for every shape in the
// single-K-block regime, including ragged tiles, and independent of how
// many calls reuse the same prepacked operand.
func TestGemmPrepackedBitwiseMatchesDgemmPacked(t *testing.T) {
	for _, sh := range []struct{ m, n, k int }{
		{30, 8, 16},  // exactly one tile
		{64, 40, 32}, // several tiles
		{31, 9, 17},  // ragged everything
		{1, 1, 16},
		{95, 23, 384}, // k at the K-block boundary
	} {
		a := matrix.RandomGeneral(sh.m, sh.k, 11)
		b := matrix.RandomGeneral(sh.k, sh.n, 12)
		want := matrix.RandomGeneral(sh.m, sh.n, 13)
		got := want.Clone()

		DgemmPacked(false, false, -1, a, b, 1, want, 2)

		pa := PrepackA(a, -1)
		pb := PrepackB(b)
		if pa == nil || pb == nil {
			t.Fatalf("%+v: prepack refused a single-K-block shape", sh)
		}
		// Reuse both operands twice: second use must still be bitwise.
		scratch := matrix.NewDense(sh.m, sh.n)
		GemmPrepacked(pa, pb, scratch, 1)
		GemmPrepacked(pa, pb, got, 2)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("%+v: (%d,%d) = %v, want %v (bitwise)", sh, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		pa.Release()
		pb.Release()
	}
}

// Prepacking refuses multi-K-block operands (the caller falls back to
// DgemmPacked, which blocks over k itself), mismatched shapes panic, and
// Release is safe on nil and after use.
func TestGemmPrepackedGuards(t *testing.T) {
	if pa := PrepackA(matrix.RandomGeneral(8, 385, 1), -1); pa != nil {
		t.Error("PrepackA must refuse k > one K-block")
	}
	if pb := PrepackB(matrix.RandomGeneral(385, 8, 1)); pb != nil {
		t.Error("PrepackB must refuse k > one K-block")
	}
	var nilA *PrepackedA
	var nilB *PrepackedB
	nilA.Release()
	nilB.Release()

	pa := PrepackA(matrix.RandomGeneral(8, 16, 1), -1)
	pb := PrepackB(matrix.RandomGeneral(17, 8, 1)) // k mismatch
	defer func() {
		if recover() == nil {
			t.Error("k mismatch must panic")
		}
	}()
	GemmPrepacked(pa, pb, matrix.NewDense(8, 8), 1)
}
