package blas

import (
	"sync/atomic"

	"phihpl/internal/metrics"
	"phihpl/internal/trace"
)

// Observability hooks for the packed DGEMM fast path. All sinks default
// to nil: the uninstrumented DgemmPacked pays one atomic pointer load and
// a few nil-safe counter calls per invocation and allocates nothing.
var (
	obsTrace      atomic.Pointer[trace.Recorder]
	mPackedCalls  atomic.Pointer[metrics.Counter]
	mBytesPacked  atomic.Pointer[metrics.Counter]
	mPackedFlops  atomic.Pointer[metrics.Counter]
	mSPackedCalls atomic.Pointer[metrics.Counter]
	mSBytesPacked atomic.Pointer[metrics.Counter]
	mSPackedFlops atomic.Pointer[metrics.Counter]
)

// SetObservability attaches a span recorder and a metrics registry to the
// packed GEMM fast paths. Either may be nil to disable that side.
//
// Spans (on worker 0, iter = K-block index): "pack" covers the parallel
// packing of one K-block's A strip and B tiles, "compute" the outer
// product over the packed tiles — the two phases of Section III whose
// ratio decides the PackedMinK crossover. The single-precision path emits
// the same pair as "spack"/"scompute".
//
// Counters: blas.packed_calls, blas.bytes_packed (bytes written into the
// packing buffers), blas.packed_flops (2·m·n·k per call), and their
// single-precision twins blas.spacked_calls, blas.sbytes_packed,
// blas.spacked_flops.
func SetObservability(rec *trace.Recorder, reg *metrics.Registry) {
	obsTrace.Store(rec)
	mPackedCalls.Store(reg.Counter("blas.packed_calls"))
	mBytesPacked.Store(reg.Counter("blas.bytes_packed"))
	mPackedFlops.Store(reg.Counter("blas.packed_flops"))
	mSPackedCalls.Store(reg.Counter("blas.spacked_calls"))
	mSBytesPacked.Store(reg.Counter("blas.sbytes_packed"))
	mSPackedFlops.Store(reg.Counter("blas.spacked_flops"))
}
