package blas

import (
	"sync"

	"phihpl/internal/matrix"
	"phihpl/internal/pack"
	"phihpl/internal/pool"
)

// Single-precision prepacked operands: the FP32 mirror of PrepackA /
// PrepackB / GemmPrepacked. The mixed-precision distributed HPL driver
// multiplies one L panel against every U block of a block row (and one U
// block against every L panel of a block column); prepacking packs each
// operand once per stage and reuses the tiles across calls. Because a C
// element's value depends only on its packed A row, packed B column and
// the K-block boundaries, SGemmPrepacked is bitwise identical to the
// SgemmPacked call it replaces.

// sprepackSlabs recycles the packed-operand backing arrays so steady-state
// prepacking allocates nothing. Contents are stale on reuse; the packers
// overwrite every element including padding.
var sprepackSlabs = sync.Pool{New: func() any { return new([]float32) }}

func sprepackTake(n int) *[]float32 {
	s := sprepackSlabs.Get().(*[]float32)
	if cap(*s) < n {
		*s = make([]float32, n)
	}
	*s = (*s)[:n]
	return s
}

// SPrepackedA is alpha·A packed once into the FP32 tile layout (one
// K-block).
type SPrepackedA struct {
	pa   *pack.A32
	m, k int
	slab *[]float32
}

// Release recycles the packed buffer. Optional (an unreleased operand is
// ordinary garbage); call it only once no SGemmPrepacked will read the
// operand again.
func (a *SPrepackedA) Release() {
	if a != nil && a.slab != nil {
		sprepackSlabs.Put(a.slab)
		a.slab, a.pa = nil, nil
	}
}

// SPrepackA packs alpha·a (no transpose). Returns nil when a spans more
// than one K-block (k > packKC) — callers fall back to SgemmPacked, which
// blocks over k itself.
func SPrepackA(a *matrix.Dense32, alpha float32) *SPrepackedA {
	m, k := a.Rows, a.Cols
	if k > packKC {
		return nil
	}
	aTiles := (m + pack.DefaultTileM32 - 1) / pack.DefaultTileM32
	slab := sprepackTake(aTiles * pack.DefaultTileM32 * k)
	pa := &pack.A32{M: m, K: k, TileM: pack.DefaultTileM32, Data: *slab}
	for t := 0; t < aTiles; t++ {
		pack.PackATileOp32(pa, a, false, alpha, 0, t)
	}
	mSBytesPacked.Load().Add(4 * int64(len(pa.Data)))
	return &SPrepackedA{pa: pa, m: m, k: k, slab: slab}
}

// SPrepackedB is B packed once into the FP32 tile layout (one K-block),
// with one byte-identical replica per socket group; see PrepackedB.
type SPrepackedB struct {
	pbs  []pack.B32
	k, n int
	slab *[]float32
}

// Release recycles the packed buffer; see (*SPrepackedA).Release.
func (b *SPrepackedB) Release() {
	if b != nil && b.slab != nil {
		sprepackSlabs.Put(b.slab)
		b.slab, b.pbs = nil, nil
	}
}

// SPrepackB packs b (no transpose). Returns nil when b spans more than
// one K-block (k > packKC).
func SPrepackB(b *matrix.Dense32) *SPrepackedB {
	k, n := b.Rows, b.Cols
	if k > packKC {
		return nil
	}
	groups := bGroups()
	bTiles := (n + pack.TileN32 - 1) / pack.TileN32
	rep := bTiles * k * pack.TileN32
	slab := sprepackTake(groups * rep)
	pbs := make([]pack.B32, groups)
	pbs[0] = pack.B32{K: k, N: n, Data: (*slab)[:rep]}
	for t := 0; t < bTiles; t++ {
		pack.PackBTileOp32(&pbs[0], b, false, 0, t)
	}
	for g := 1; g < groups; g++ {
		data := (*slab)[g*rep : (g+1)*rep]
		copy(data, pbs[0].Data)
		pbs[g] = pack.B32{K: k, N: n, Data: data}
	}
	mSBytesPacked.Load().Add(4 * int64(len(*slab)))
	return &SPrepackedB{pbs: pbs, k: k, n: n, slab: slab}
}

// SGemmPrepacked computes C += (alpha·A)·B from prepacked FP32 operands
// (the alpha was folded into the A tiles at pack time; beta is fixed at
// 1). The tile grid and micro-kernel invocations are exactly SgemmPacked's
// single-K-block schedule, so the result is bitwise identical to
// SgemmPacked(false, false, alpha, a, b, 1, c, workers).
func SGemmPrepacked(a *SPrepackedA, b *SPrepackedB, c *matrix.Dense32, workers int) {
	if a.k != b.k || c.Rows != a.m || c.Cols != b.n {
		panic("blas: SGemmPrepacked dimension mismatch")
	}
	if a.m == 0 || b.n == 0 || a.k == 0 {
		return
	}
	mSPackedCalls.Load().Inc()
	mSPackedFlops.Load().Add(2 * int64(a.m) * int64(b.n) * int64(a.k))
	aTiles, bTiles := a.pa.Tiles(), b.pbs[0].Tiles()
	pa, pbs := a.pa, b.pbs
	pool.DoGrouped(aTiles*bTiles, workers, func(j, g int) {
		ta, tb := j/bTiles, j%bTiles
		rows := pa.TileRows(ta)
		if g >= len(pbs) {
			g = 0 // prepacked under a smaller group count than the caller's
		}
		pb := &pbs[g]
		cols := pb.TileCols(tb)
		off := ta*pack.DefaultTileM32*c.Stride + tb*pack.TileN32
		pack.MicroKernel32(pa.Tile(ta), pa.TileM, a.k, pb.Tile(tb), c.Data[off:], c.Stride, rows, cols)
	})
}
