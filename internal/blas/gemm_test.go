package blas

import (
	"math"
	"testing"
	"testing/quick"

	"phihpl/internal/matrix"
)

// dgemmRef is an obviously-correct triple loop used as oracle.
func dgemmRef(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	m, k := opDims(a, transA)
	_, n := opDims(b, transB)
	at := func(i, p int) float64 {
		if transA {
			return a.At(p, i)
		}
		return a.At(i, p)
	}
	bt := func(p, j int) float64 {
		if transB {
			return b.At(j, p)
		}
		return b.At(p, j)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func TestDgemmSmallKnown(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	b := matrix.FromRows([][]float64{{5, 6}, {7, 8}})
	c := matrix.NewDense(2, 2)
	Dgemm(false, false, 1, a, b, 0, c)
	want := matrix.FromRows([][]float64{{19, 22}, {43, 50}})
	if !matrix.Equal(c, want) {
		t.Errorf("C = %+v", c)
	}
}

func TestDgemmAlphaBeta(t *testing.T) {
	a := matrix.RandomGeneral(7, 5, 1)
	b := matrix.RandomGeneral(5, 9, 2)
	c0 := matrix.RandomGeneral(7, 9, 3)

	got := c0.Clone()
	Dgemm(false, false, 2.5, a, b, -0.5, got)
	want := c0.Clone()
	dgemmRef(false, false, 2.5, a, b, -0.5, want)
	if d := matrix.MaxDiff(got, want); d > 1e-12 {
		t.Errorf("maxdiff = %g", d)
	}
}

func TestDgemmTransposes(t *testing.T) {
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			m, n, k := 6, 8, 4
			var a, b *matrix.Dense
			if ta {
				a = matrix.RandomGeneral(k, m, 10)
			} else {
				a = matrix.RandomGeneral(m, k, 10)
			}
			if tb {
				b = matrix.RandomGeneral(n, k, 11)
			} else {
				b = matrix.RandomGeneral(k, n, 11)
			}
			c0 := matrix.RandomGeneral(m, n, 12)
			got, want := c0.Clone(), c0.Clone()
			Dgemm(ta, tb, 1.0, a, b, 1.0, got)
			dgemmRef(ta, tb, 1.0, a, b, 1.0, want)
			if d := matrix.MaxDiff(got, want); d > 1e-12 {
				t.Errorf("trans=%v,%v maxdiff = %g", ta, tb, d)
			}
		}
	}
}

func TestDgemmAlphaZeroSkipsProduct(t *testing.T) {
	a := matrix.RandomGeneral(3, 3, 1)
	b := matrix.RandomGeneral(3, 3, 2)
	c := matrix.RandomGeneral(3, 3, 3)
	want := c.Clone()
	Dgemm(false, false, 0, a, b, 1, c)
	if !matrix.Equal(c, want) {
		t.Error("alpha=0, beta=1 must leave C unchanged")
	}
	Dgemm(false, false, 0, a, b, 0, c)
	if c.MaxAbs() != 0 {
		t.Error("alpha=0, beta=0 must zero C")
	}
}

func TestDgemmOnViews(t *testing.T) {
	// Multiply sub-blocks of a larger matrix — the LU trailing-update shape.
	big := matrix.RandomGeneral(20, 20, 5)
	l21 := big.View(4, 0, 16, 4)
	u12 := big.View(0, 4, 4, 16)
	a22 := big.View(4, 4, 16, 16)
	ref := a22.Clone()
	dgemmRef(false, false, -1, l21.Clone(), u12.Clone(), 1, ref)
	RankKUpdate(l21, u12, a22, 1)
	if d := matrix.MaxDiff(a22.Clone(), ref); d > 1e-12 {
		t.Errorf("view update maxdiff = %g", d)
	}
}

func TestDgemmParallelMatchesSerial(t *testing.T) {
	a := matrix.RandomGeneral(33, 27, 6)
	b := matrix.RandomGeneral(27, 41, 7)
	c0 := matrix.RandomGeneral(33, 41, 8)
	for _, workers := range []int{1, 2, 3, 4, 8, 64} {
		got, want := c0.Clone(), c0.Clone()
		DgemmParallel(false, false, -1, a, b, 1, got, workers)
		Dgemm(false, false, -1, a, b, 1, want)
		if d := matrix.MaxDiff(got, want); d > 1e-12 {
			t.Errorf("workers=%d maxdiff = %g", workers, d)
		}
	}
}

func TestDgemmParallelTransposed(t *testing.T) {
	a := matrix.RandomGeneral(13, 21, 61)
	b := matrix.RandomGeneral(17, 13, 71)
	c0 := matrix.RandomGeneral(21, 17, 81)
	got, want := c0.Clone(), c0.Clone()
	DgemmParallel(true, true, 1.5, a, b, 0.5, got, 4)
	dgemmRef(true, true, 1.5, a, b, 0.5, want)
	if d := matrix.MaxDiff(got, want); d > 1e-12 {
		t.Errorf("maxdiff = %g", d)
	}
}

func TestDgemmDimensionPanics(t *testing.T) {
	a := matrix.NewDense(2, 3)
	b := matrix.NewDense(4, 2) // mismatch: a.Cols=3 != b.Rows=4
	c := matrix.NewDense(2, 2)
	for _, f := range []func(){
		func() { Dgemm(false, false, 1, a, b, 0, c) },
		func() { DgemmParallel(false, false, 1, a, b, 0, c, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected dimension panic")
				}
			}()
			f()
		}()
	}
}

func TestDgemmEmpty(t *testing.T) {
	a := matrix.NewDense(0, 5)
	b := matrix.NewDense(5, 0)
	c := matrix.NewDense(0, 0)
	Dgemm(false, false, 1, a, b, 0, c) // must not panic
	a2 := matrix.NewDense(3, 0)
	b2 := matrix.NewDense(0, 4)
	c2 := matrix.RandomGeneral(3, 4, 9)
	Dgemm(false, false, 1, a2, b2, 0, c2) // k=0: C = 0
	if c2.MaxAbs() != 0 {
		t.Error("k=0 with beta=0 should zero C")
	}
}

// Property: Dgemm is linear in alpha.
func TestDgemmLinearityProperty(t *testing.T) {
	f := func(seed uint64, alphaRaw int8) bool {
		alpha := float64(alphaRaw) / 16
		a := matrix.RandomGeneral(6, 5, seed)
		b := matrix.RandomGeneral(5, 4, seed+1)
		c1 := matrix.NewDense(6, 4)
		Dgemm(false, false, alpha, a, b, 0, c1)
		c2 := matrix.NewDense(6, 4)
		Dgemm(false, false, 1, a, b, 0, c2)
		for i := 0; i < 6; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(c1.At(i, j)-alpha*c2.At(i, j)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestDgemmTransposeIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := matrix.RandomGeneral(5, 7, seed)
		b := matrix.RandomGeneral(7, 6, seed^0xabc)
		ab := matrix.NewDense(5, 6)
		Dgemm(false, false, 1, a, b, 0, ab)
		btat := matrix.NewDense(6, 5)
		Dgemm(true, true, 1, b, a, 0, btat)
		return matrix.MaxDiff(transpose(ab), btat) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSgemmMatchesFloat64(t *testing.T) {
	m, n, k := 9, 7, 5
	ad := matrix.RandomGeneral(m, k, 31)
	bd := matrix.RandomGeneral(k, n, 32)
	cd := matrix.RandomGeneral(m, n, 33)
	a32 := make([]float32, m*k)
	b32 := make([]float32, k*n)
	c32 := make([]float32, m*n)
	for i := range a32 {
		a32[i] = float32(ad.Data[i])
	}
	for i := range b32 {
		b32[i] = float32(bd.Data[i])
	}
	for i := range c32 {
		c32[i] = float32(cd.Data[i])
	}
	Sgemm(m, n, k, 2, a32, k, b32, n, -1, c32, n)
	ref := cd.Clone()
	dgemmRef(false, false, 2, ad, bd, -1, ref)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(float64(c32[i*n+j])-ref.At(i, j)) > 1e-4 {
				t.Fatalf("sgemm (%d,%d) = %v want %v", i, j, c32[i*n+j], ref.At(i, j))
			}
		}
	}
}

func TestSgemmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for small ld")
		}
	}()
	Sgemm(2, 2, 2, 1, make([]float32, 4), 1, make([]float32, 4), 2, 0, make([]float32, 4), 2)
}
