package blas

import (
	"testing"

	"phihpl/internal/matrix"
	"phihpl/internal/pack"
	"phihpl/internal/pool"
)

// B-panel replication invariance. Every replica a socket group streams is
// byte-identical (DgemmPacked packs each replica with the same
// deterministic packer; PrepackB copies replica 0), so the grouped
// execution must produce bitwise the same C as the flat pool — for any
// group count, replication flag, and worker count. These tests force
// artificial group counts on whatever machine CI provides; real
// multi-socket placement changes nothing the tests could observe, which
// is exactly the point.

// withGroups runs fn under a forced pool group count, restoring the
// detected topology afterwards.
func withGroups(t *testing.T, g int, fn func()) {
	t.Helper()
	pool.ForceGroups(g)
	defer pool.ForceGroups(0)
	fn()
}

func TestDgemmPackedReplicationBitwiseInvariant(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{64, 32, 48},
		{95, 23, 33},          // ragged edge tiles
		{60, 16, packKC + 37}, // two K-blocks
	}
	for _, s := range shapes {
		a := matrix.RandomGeneral(s.m, s.k, uint64(s.m+s.k))
		b := matrix.RandomGeneral(s.k, s.n, uint64(s.n))
		c0 := matrix.RandomGeneral(s.m, s.n, 99)

		flat := c0.Clone()
		DgemmPacked(false, false, -1, a, b, 1, flat, 4)

		for _, groups := range []int{2, 3} {
			got := c0.Clone()
			withGroups(t, groups, func() {
				DgemmPacked(false, false, -1, a, b, 1, got, 4)
			})
			if !matrix.Equal(flat, got) {
				t.Fatalf("m=%d n=%d k=%d: %d-group result differs from flat pool",
					s.m, s.n, s.k, groups)
			}
		}

		// Disabling replication under a forced multi-group pool must be
		// equally invisible: one shared B, same bits.
		got := c0.Clone()
		withGroups(t, 2, func() {
			DisableBReplication = true
			defer func() { DisableBReplication = false }()
			DgemmPacked(false, false, -1, a, b, 1, got, 4)
		})
		if !matrix.Equal(flat, got) {
			t.Fatalf("m=%d n=%d k=%d: DisableBReplication changed the result", s.m, s.n, s.k)
		}
	}
}

func TestSgemmPackedReplicationBitwiseInvariant(t *testing.T) {
	a := randomDense32(64, 40, 1)
	b := randomDense32(40, 24, 2)
	c0 := randomDense32(64, 24, 3)

	flat := c0.Clone()
	SgemmPacked(false, false, -1, a, b, 1, flat, 4)

	for _, groups := range []int{2, 3} {
		got := c0.Clone()
		withGroups(t, groups, func() {
			SgemmPacked(false, false, -1, a, b, 1, got, 4)
		})
		if !equal32(flat, got) {
			t.Fatalf("%d-group FP32 result differs from flat pool", groups)
		}
	}
}

func TestGemmPrepackedReplicationBitwiseInvariant(t *testing.T) {
	m, n, k := 61, 19, 48
	src := matrix.RandomGeneral(m, k, 4)
	bMat := matrix.RandomGeneral(k, n, 5)
	c0 := matrix.RandomGeneral(m, n, 6)

	want := c0.Clone()
	DgemmPacked(false, false, -1, src, bMat, 1, want, 4)

	// Prepack and execute under a forced 3-group pool: per-group replicas
	// selected by DoGrouped must reproduce the flat result bitwise.
	got := c0.Clone()
	withGroups(t, 3, func() {
		pa := PrepackA(src, -1)
		pb := PrepackB(bMat)
		GemmPrepacked(pa, pb, got, 4)
		pa.Release()
		pb.Release()
	})
	if !matrix.Equal(want, got) {
		t.Fatal("3-group GemmPrepacked differs from DgemmPacked")
	}

	// Operand prepacked under a smaller group count than the executing
	// pool's: the kernel clamps to replica 0 instead of reading past the
	// replica slice.
	got = c0.Clone()
	pa := PrepackA(src, -1)
	var pb *PrepackedB
	withGroups(t, 1, func() { pb = PrepackB(bMat) })
	withGroups(t, 3, func() { GemmPrepacked(pa, pb, got, 4) })
	pa.Release()
	pb.Release()
	if !matrix.Equal(want, got) {
		t.Fatal("group-count mismatch between prepack and execution changed the result")
	}
}

// TestDgemmPackedKernelModeEnvelope pins the cross-kernel contract: the
// vector (FMA) and scalar kernels agree element-wise within the
// 8·(k+2)·ulp forward-error envelope — never bitwise, the FMA fuses each
// product — while WITHIN one kernel mode the result is bitwise
// independent of the worker count. Skipped where no vector kernel built.
func TestDgemmPackedKernelModeEnvelope(t *testing.T) {
	if !pack.VectorKernel() {
		t.Skip("no vector kernel on this platform/build")
	}
	m, n, k := 95, 23, packKC+17
	a := matrix.RandomGeneral(m, k, 7)
	b := matrix.RandomGeneral(k, n, 8)
	c0 := matrix.RandomGeneral(m, n, 9)

	vec := c0.Clone()
	DgemmPacked(false, false, -1, a, b, 1, vec, 4)
	vec1 := c0.Clone()
	DgemmPacked(false, false, -1, a, b, 1, vec1, 1)
	if !matrix.Equal(vec, vec1) {
		t.Fatal("vector kernel result depends on worker count")
	}

	pack.DisableVectorKernel = true
	defer func() { pack.DisableVectorKernel = false }()
	sca := c0.Clone()
	DgemmPacked(false, false, -1, a, b, 1, sca, 4)
	sca1 := c0.Clone()
	DgemmPacked(false, false, -1, a, b, 1, sca1, 7)
	if !matrix.Equal(sca, sca1) {
		t.Fatal("scalar kernel result depends on worker count")
	}

	assertPackedMatchesRef(t, "vector-vs-scalar", false, false, -1, a, b, 1, c0, vec, sca)
}
