package blas

import (
	"sync"

	"phihpl/internal/matrix"
)

// Dgemm computes C = alpha*op(A)*op(B) + beta*C where op(X) is X or Xᵀ
// according to transA/transB. Dimensions after op() must satisfy
// op(A): M×K, op(B): K×N, C: M×N. All matrices are row-major and may be
// views. The implementation is a cache-friendly i-k-j triple loop; use
// DgemmParallel for multi-core execution.
func Dgemm(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	m, k := opDims(a, transA)
	k2, n := opDims(b, transB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic("blas: Dgemm dimension mismatch")
	}
	// Materialize transposed operands once; the quadratic copy is amortized
	// by the cubic multiply, mirroring how the packing stage of the paper's
	// DGEMM re-lays data before compute.
	if transA {
		a = transpose(a)
	}
	if transB {
		b = transpose(b)
	}
	dgemmRows(alpha, a, b, beta, c, 0, m)
}

// DgemmParallel is Dgemm with the rows of C partitioned across `workers`
// goroutines. workers <= 1 degrades to the serial path.
func DgemmParallel(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense, workers int) {
	m, k := opDims(a, transA)
	k2, n := opDims(b, transB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic("blas: DgemmParallel dimension mismatch")
	}
	if transA {
		a = transpose(a)
	}
	if transB {
		b = transpose(b)
	}
	if workers <= 1 || m < 2*workers {
		dgemmRows(alpha, a, b, beta, c, 0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dgemmRows(alpha, a, b, beta, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// dgemmRows computes rows [lo,hi) of C = alpha*A*B + beta*C (no transposes).
func dgemmRows(alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense, lo, hi int) {
	k := a.Cols
	for i := lo; i < hi; i++ {
		ci := c.Row(i)
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		if alpha == 0 {
			continue
		}
		ai := a.Row(i)
		for p := 0; p < k; p++ {
			// No zero-skip here: dropping the inner loop when aip == 0
			// would swallow NaN/Inf from B (IEEE demands 0·NaN = NaN) and
			// make the reference and packed paths diverge on special
			// values.
			aip := alpha * ai[p]
			bp := b.Row(p)
			for j, bv := range bp {
				ci[j] += aip * bv
			}
		}
	}
}

// opDims returns the dimensions of op(X).
func opDims(x *matrix.Dense, trans bool) (r, c int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

// transpose returns a compact copy of xᵀ.
func transpose(x *matrix.Dense) *matrix.Dense {
	t := matrix.NewDense(x.Cols, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			t.Set(j, i, v)
		}
	}
	return t
}

// RankKUpdate computes C -= A*B (the LU trailing update C = C - L·U) using
// the given number of workers. It is the hot path of both native and hybrid
// Linpack; alpha=-1, beta=1 in BLAS terms.
//
// Updates deep enough to amortize packing (k >= PackedMinK) go through the
// packed-tile fast path; thin updates keep the plain row-split loop. The
// crossover inspects k only — never m or n — because the drivers partition
// the same mathematical update into differently-shaped calls with equal k,
// and they must all land on the same arithmetic to stay bitwise identical.
func RankKUpdate(a, b, c *matrix.Dense, workers int) {
	if a.Cols >= PackedMinK {
		DgemmPacked(false, false, -1, a, b, 1, c, workers)
		return
	}
	DgemmParallel(false, false, -1, a, b, 1, c, workers)
}
