package blas

import (
	"phihpl/internal/matrix"
)

// Single-precision factorization kernels: the FP32 mirrors of Dgetf2,
// Dlaswp, Dtrsm and Dgetrf, plus the cross-precision substitution that
// iterative refinement runs against the FP32 factors. Together they are
// the factorization half of the HPL-MxP scheme: factor in single
// precision at SGEMM speed, then recover double-precision accuracy with
// FP64 refinement (lu.SolveMixed).

// minNormal32 is the smallest positive normal float32. A pivot below it
// is degenerate: dividing by it overflows the multipliers, so the column
// is treated exactly like a zero pivot (same policy as the FP64 path's
// minNormal).
const minNormal32 = 1.1754943508222875e-38

// abs32 is float32 absolute value (sign-bit semantics are irrelevant
// here: NaN compares false everywhere it is used, matching IdamaxCol).
func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// IsamaxCol32 returns the row index (relative to the view) of the largest
// absolute value in column j of a, scanning rows [i0, a.Rows).
func IsamaxCol32(a *matrix.Dense32, j, i0 int) int {
	if i0 >= a.Rows {
		return -1
	}
	best, bestAbs := i0, abs32(a.At(i0, j))
	for i := i0 + 1; i < a.Rows; i++ {
		if v := abs32(a.At(i, j)); v > bestAbs {
			best, bestAbs = i, v
		}
	}
	return best
}

// SwapRows32 exchanges rows i and j of a (full width).
func SwapRows32(a *matrix.Dense32, i, j int) {
	if i == j {
		return
	}
	ri, rj := a.Row(i), a.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Saxpy computes y += alpha*x in single precision.
func Saxpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("blas: Saxpy length mismatch")
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Sscal scales v by alpha.
func Sscal(alpha float32, v []float32) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sgetf2 factors the m×n single-precision panel A = P·L·U with partial
// pivoting using unblocked right-looking elimination, mirroring Dgetf2:
// L unit lower below the diagonal, U on and above, piv[k] the row (>= k)
// swapped into position k. Row swaps apply to the full width of the
// supplied view. A zero/subnormal pivot skips its column and reports a
// *SingularError (matching ErrSingular under errors.Is) — the FP32 and
// FP64 paths share one singularity vocabulary.
func Sgetf2(a *matrix.Dense32, piv []int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(piv) != mn {
		panic("blas: Sgetf2 pivot slice has wrong length")
	}
	var err error
	for k := 0; k < mn; k++ {
		p := IsamaxCol32(a, k, k)
		piv[k] = p
		if pv := a.At(p, k); pv == 0 || abs32(pv) < minNormal32 {
			if err == nil {
				err = &SingularError{Col: k}
			}
			continue
		}
		SwapRows32(a, k, p)
		akk := a.At(k, k)
		for i := k + 1; i < m; i++ {
			a.Set(i, k, a.At(i, k)/akk)
		}
		rowK := a.Row(k)
		for i := k + 1; i < m; i++ {
			lik := a.At(i, k)
			if lik == 0 {
				continue
			}
			rowI := a.Row(i)
			for j := k + 1; j < n; j++ {
				rowI[j] -= lik * rowK[j]
			}
		}
	}
	return err
}

// Slaswp applies the row interchanges recorded in piv (offset-relative,
// as produced by Sgetf2) to the rows of a, mirroring Dlaswp.
func Slaswp(a *matrix.Dense32, piv []int, offset int) {
	for k, p := range piv {
		if p != k {
			SwapRows32(a, k+offset, p+offset)
		}
	}
}

// Strsm solves a single-precision triangular system in place, overwriting
// B with the solution X, mirroring Dtrsm:
//
//	Left:  op(T)·X = alpha·B
//	Right: X·op(T) = alpha·B
//
// T must be square and is referenced only in the triangle selected by
// uplo; trans applies op(T)=Tᵀ. Divisions are true divides (reference-
// BLAS semantics), matching the substitution loops bit for bit.
func Strsm(side Side, uplo Uplo, trans bool, diag Diag, alpha float32, t, b *matrix.Dense32) {
	if t.Rows != t.Cols {
		panic("blas: Strsm triangular matrix must be square")
	}
	n := t.Rows
	if (side == Left && b.Rows != n) || (side == Right && b.Cols != n) {
		panic("blas: Strsm dimension mismatch")
	}
	if trans {
		t = transpose32(t)
		if uplo == Lower {
			uplo = Upper
		} else {
			uplo = Lower
		}
	}
	if alpha != 1 {
		for i := 0; i < b.Rows; i++ {
			Sscal(alpha, b.Row(i))
		}
	}
	switch {
	case side == Left && uplo == Lower:
		for i := 0; i < n; i++ {
			bi := b.Row(i)
			ti := t.Row(i)
			for k := 0; k < i; k++ {
				if lik := ti[k]; lik != 0 {
					Saxpy(-lik, b.Row(k), bi)
				}
			}
			if diag == NonUnit {
				div32(bi, ti[i])
			}
		}
	case side == Left && uplo == Upper:
		for i := n - 1; i >= 0; i-- {
			bi := b.Row(i)
			ti := t.Row(i)
			for k := i + 1; k < n; k++ {
				if uik := ti[k]; uik != 0 {
					Saxpy(-uik, b.Row(k), bi)
				}
			}
			if diag == NonUnit {
				div32(bi, ti[i])
			}
		}
	case side == Right && uplo == Upper:
		for j := 0; j < n; j++ {
			for i := 0; i < b.Rows; i++ {
				bi := b.Row(i)
				s := bi[j]
				for k := 0; k < j; k++ {
					s -= bi[k] * t.At(k, j)
				}
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				bi[j] = s
			}
		}
	case side == Right && uplo == Lower:
		for j := n - 1; j >= 0; j-- {
			for i := 0; i < b.Rows; i++ {
				bi := b.Row(i)
				s := bi[j]
				for k := j + 1; k < n; k++ {
					s -= bi[k] * t.At(k, j)
				}
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				bi[j] = s
			}
		}
	}
}

// div32 divides a row elementwise (a true divide, not a reciprocal
// multiply, so solves match the substitution loops bit for bit).
func div32(v []float32, d float32) {
	for i := range v {
		v[i] /= d
	}
}

// Sgetrf computes the blocked right-looking single-precision LU
// factorization with partial pivoting of the m×n (m>=n) matrix A in
// place, with block size nb — the FP32 mirror of Dgetrf, with the
// trailing update running through the packed SGEMM fast path
// (SRankKUpdate) across `workers`. piv must have length min(m,n) and
// records global row swaps. On a zero/subnormal pivot the factorization
// continues (the column is skipped) and the first *SingularError is
// returned, exactly like the FP64 driver.
func Sgetrf(a *matrix.Dense32, piv []int, nb, workers int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(piv) != mn {
		panic("blas: Sgetrf pivot slice has wrong length")
	}
	if nb < 1 {
		nb = 64
	}
	if workers < 1 {
		workers = 1
	}
	var firstErr error
	for j := 0; j < mn; j += nb {
		jb := nb
		if j+jb > mn {
			jb = mn - j
		}
		panel := a.View(j, j, m-j, jb)
		localPiv := make([]int, jb)
		if err := Sgetf2(panel, localPiv); err != nil && firstErr == nil {
			firstErr = OffsetSingular(err, j)
		}
		for k, p := range localPiv {
			piv[j+k] = p + j
			if p != k {
				if j > 0 {
					SwapRows32(a.View(0, 0, m, j), j+k, j+p)
				}
				if j+jb < n {
					SwapRows32(a.View(0, j+jb, m, n-j-jb), j+k, j+p)
				}
			}
		}
		if j+jb < n {
			l11 := a.View(j, j, jb, jb)
			u12 := a.View(j, j+jb, jb, n-j-jb)
			Strsm(Left, Lower, false, Unit, 1, l11, u12)
			if j+jb < m {
				l21 := a.View(j+jb, j, m-j-jb, jb)
				a22 := a.View(j+jb, j+jb, m-j-jb, n-j-jb)
				SRankKUpdate(l21, u12, a22, workers)
			}
		}
	}
	return firstErr
}

// LUSolveMixed solves A·x = b in double precision against the
// single-precision LU factors and pivots produced by Sgetrf: pivots are
// applied to a copy of b, then forward (unit lower) and backward (upper)
// substitution run with every factor entry widened to float64 (exact) and
// all arithmetic in float64. This is the correction solve of FP64
// iterative refinement — O(n²) double-precision work per step against
// factors computed at FP32 speed.
func LUSolveMixed(lu *matrix.Dense32, piv []int, b []float64) []float64 {
	n := lu.Rows
	if lu.Cols != n || len(b) != n || len(piv) != n {
		panic("blas: LUSolveMixed dimension mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	for k, p := range piv {
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward: L·y = Pb.
	for i := 0; i < n; i++ {
		row := lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= float64(row[j]) * x[j]
		}
		x[i] = s
	}
	// Backward: U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= float64(row[j]) * x[j]
		}
		x[i] = s / float64(row[i])
	}
	return x
}
