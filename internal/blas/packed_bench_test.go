package blas

import (
	"fmt"
	"testing"

	"phihpl/internal/matrix"
)

// Benchmarks comparing the packed-tile fast path against the row-split
// reference at the sizes the LU drivers hit. Run with
//
//	go test ./internal/blas -bench 'Dgemm|RankK' -benchmem
//
// -benchmem documents the steady-state story: DgemmPacked recycles its
// packing buffers through a sync.Pool and runs on the persistent worker
// pool, so per-call allocations stay flat and no goroutines are spawned.
func benchGemm(b *testing.B, n int, f func(a, x, c *matrix.Dense)) {
	a := matrix.RandomGeneral(n, n, 1)
	x := matrix.RandomGeneral(n, n, 2)
	c := matrix.NewDense(n, n)
	f(a, x, c) // warm pools and pack buffers out of the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, x, c)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkDgemmParallel(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGemm(b, n, func(a, x, c *matrix.Dense) {
				DgemmParallel(false, false, -1, a, x, 1, c, 4)
			})
		})
	}
}

func BenchmarkDgemmPacked(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGemm(b, n, func(a, x, c *matrix.Dense) {
				DgemmPacked(false, false, -1, a, x, 1, c, 4)
			})
		})
	}
}

// BenchmarkRankKUpdate measures the exact trailing-update shape of the LU
// drivers: C (m×n) -= L21 (m×k) · U12 (k×n) with k = NB.
func BenchmarkRankKUpdate(b *testing.B) {
	for _, s := range []struct{ m, n, k int }{
		{512, 512, 64},
		{960, 960, 64},
	} {
		b.Run(fmt.Sprintf("m=%d/n=%d/k=%d", s.m, s.n, s.k), func(b *testing.B) {
			l := matrix.RandomGeneral(s.m, s.k, 1)
			u := matrix.RandomGeneral(s.k, s.n, 2)
			c := matrix.NewDense(s.m, s.n)
			RankKUpdate(l, u, c, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RankKUpdate(l, u, c, 4)
			}
			flops := 2 * float64(s.m) * float64(s.n) * float64(s.k)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkRankKUpdateReference pins the seed-era path (packing disabled)
// on the same shape, so the crossover win is visible in one run.
func BenchmarkRankKUpdateReference(b *testing.B) {
	s := struct{ m, n, k int }{512, 512, 64}
	l := matrix.RandomGeneral(s.m, s.k, 1)
	u := matrix.RandomGeneral(s.k, s.n, 2)
	c := matrix.NewDense(s.m, s.n)
	saved := PackedMinK
	PackedMinK = 1 << 30
	defer func() { PackedMinK = saved }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankKUpdate(l, u, c, 4)
	}
	flops := 2 * float64(s.m) * float64(s.n) * float64(s.k)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
