package blas

import "phihpl/internal/matrix"

// Dgetf2Recursive factors an m×n panel with partial pivoting using
// recursive blocking (Toledo-style): split the columns in half, factor the
// left half recursively, apply its swaps and a triangular solve to the
// right half, update, factor the right half, and back-apply its swaps to
// the left. Recursion keeps the working set in cache and turns most of the
// panel's flops into DGEMM — the "highly optimized panel factorization"
// ingredient of the paper's native Linpack (Section IV, after Deisher et
// al.). Produces bitwise-identical factors and pivots to Dgetf2.
func Dgetf2Recursive(a *matrix.Dense, piv []int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(piv) != mn {
		panic("blas: Dgetf2Recursive pivot slice has wrong length")
	}
	return dgetf2Rec(a, piv)
}

// recursionCutoff is the panel width below which the unblocked kernel runs.
const recursionCutoff = 8

func dgetf2Rec(a *matrix.Dense, piv []int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if mn <= recursionCutoff {
		// Narrow base case: the unblocked kernel. It swaps the full width
		// of the view, matching the semantics recursion must preserve.
		return Dgetf2(a, piv)
	}
	half := mn / 2

	// Factor the left half against the full column height. Dgetf2/dgetf2Rec
	// apply their row swaps across the *entire view* they receive, so pass
	// the full-width view restricted in columns via an explicit two-step:
	// factor left (swaps apply only to left), then replay swaps on right.
	left := a.View(0, 0, m, half)
	var firstErr error
	if err := dgetf2Rec(left, piv[:half]); err != nil {
		firstErr = err
	}
	right := a.View(0, half, m, n-half)
	Dlaswp(right, piv[:half], 0)

	// U12 = L11⁻¹ · A12 ; A22 -= L21 · U12.
	l11 := a.View(0, 0, half, half)
	u12 := a.View(0, half, half, n-half)
	Dtrsm(Left, Lower, false, Unit, 1, l11, u12)
	if m > half {
		l21 := a.View(half, 0, m-half, half)
		a22 := a.View(half, half, m-half, n-half)
		Dgemm(false, false, -1, l21, u12, 1, a22)
	}

	// Factor the trailing right half.
	tail := a.View(half, half, m-half, n-half)
	tailPiv := piv[half:mn]
	if err := dgetf2Rec(tail, tailPiv); err != nil && firstErr == nil {
		firstErr = OffsetSingular(err, half)
	}
	// Its swaps were applied within the tail view; replay them on the
	// left half's rows below the split and rebase the pivot indices.
	lowerLeft := a.View(half, 0, m-half, half)
	Dlaswp(lowerLeft, tailPiv, 0)
	for k := range tailPiv {
		tailPiv[k] += half
	}
	return firstErr
}
