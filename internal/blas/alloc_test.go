package blas

import (
	"math/rand"
	"testing"

	"phihpl/internal/matrix"
)

// Steady-state allocation regression tests. DgemmPacked's allocation
// count used to scale with the K-block count (14 allocs/op at one
// K-block, 28 at two — the n=512 benchmark rows), because every K-block
// re-allocated the packed-operand headers, two region closures, and
// per-helper task closures inside the pool. All of that state is now
// recycled (headers in packBuf, regions and their task closures in the
// pool's sync.Pool), leaving a small per-CALL constant: the two hoisted
// region closures, the scaleRows closure, and slice-header escapes.
//
// The absolute bound is deliberately loose (a GC run mid-measurement can
// evict a sync.Pool entry and charge its re-allocation here); the growth
// bound is the actual regression guard — allocations must not scale with
// ceil(k/packKC).

func steadyAllocs(t *testing.T, n int) float64 {
	t.Helper()
	a := matrix.NewDense(n, n)
	b := matrix.NewDense(n, n)
	c := matrix.NewDense(n, n)
	rng := rand.New(rand.NewSource(7))
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	// Warm the buffer pools so only steady-state cost is measured.
	DgemmPacked(false, false, 1, a, b, 0, c, 4)
	return testing.AllocsPerRun(5, func() {
		DgemmPacked(false, false, 1, a, b, 0, c, 4)
	})
}

func TestDgemmPackedSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	one := steadyAllocs(t, 256)   // k=256: one K-block
	two := steadyAllocs(t, 512)   // k=512: two K-blocks
	four := steadyAllocs(t, 1024) // k=1024: three K-blocks
	t.Logf("allocs/op: n=256 %.0f, n=512 %.0f, n=1024 %.0f", one, two, four)
	if two > 12 {
		t.Errorf("DgemmPacked n=512: %.0f allocs/op in steady state, want <= 12", two)
	}
	if four-one > 4 {
		t.Errorf("DgemmPacked allocations grow with K-block count: %.0f at one block, %.0f at three", one, four)
	}
}
