package blas

import (
	"math"

	"phihpl/internal/matrix"
)

// Dlange computes a norm of a general matrix: 'M' (max abs), '1'
// (one-norm), 'I' (infinity norm) or 'F' (Frobenius).
func Dlange(norm byte, a *matrix.Dense) float64 {
	switch norm {
	case 'M', 'm':
		return a.MaxAbs()
	case '1', 'O', 'o':
		return a.NormOne()
	case 'I', 'i':
		return a.NormInf()
	case 'F', 'f':
		s := 0.0
		for i := 0; i < a.Rows; i++ {
			for _, v := range a.Row(i) {
				s += v * v
			}
		}
		return math.Sqrt(s)
	default:
		panic("blas: Dlange unknown norm")
	}
}

// CondEst1 estimates the one-norm condition number κ₁(A) = ‖A‖₁·‖A⁻¹‖₁
// from the LU factors, using Hager's one-norm estimator for ‖A⁻¹‖₁
// (the algorithm behind LAPACK's DGECON/DLACON). anorm is ‖A‖₁ of the
// original matrix. Returns +Inf for a singular factorization.
func CondEst1(lu *matrix.Dense, piv []int, anorm float64) float64 {
	n := lu.Rows
	if lu.Cols != n || len(piv) != n {
		panic("blas: CondEst1 dimension mismatch")
	}
	for i := 0; i < n; i++ {
		if lu.At(i, i) == 0 {
			return math.Inf(1)
		}
	}
	if n == 0 || anorm == 0 {
		return 0
	}

	solve := func(v []float64, trans bool) []float64 {
		b := matrix.NewDense(n, 1)
		for i, x := range v {
			b.Set(i, 0, x)
		}
		Dgetrs(trans, lu, piv, b)
		out := make([]float64, n)
		for i := range out {
			out[i] = b.At(i, 0)
		}
		return out
	}

	// Hager's estimator for ‖A⁻¹‖₁.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		y := solve(x, false)
		est = matrix.VecNormOne(y)
		// xi = sign(y)
		xi := make([]float64, n)
		for i, v := range y {
			if v >= 0 {
				xi[i] = 1
			} else {
				xi[i] = -1
			}
		}
		z := solve(xi, true)
		// Find the index of max |z|.
		j, zmax := 0, 0.0
		for i, v := range z {
			if a := math.Abs(v); a > zmax {
				j, zmax = i, a
			}
		}
		if zmax <= dotAbs(z, x) {
			break // converged
		}
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
	}
	return anorm * est
}

func dotAbs(z, x []float64) float64 {
	s := 0.0
	for i := range z {
		s += z[i] * x[i]
	}
	return math.Abs(s)
}

// GrowthFactor returns the pivot growth of an LU factorization: the
// largest |U(i,j)| over the largest |A(i,j)| of the original matrix. For
// partial pivoting on random matrices this stays small (the worst case is
// 2^(n-1), reached only by Wilkinson-style adversarial matrices — see the
// tests), which is why Linpack's residual stays bounded.
func GrowthFactor(orig, lu *matrix.Dense) float64 {
	amax := orig.MaxAbs()
	if amax == 0 {
		return 0
	}
	umax := 0.0
	for i := 0; i < lu.Rows; i++ {
		row := lu.Row(i)
		for j := i; j < lu.Cols; j++ {
			if v := math.Abs(row[j]); v > umax {
				umax = v
			}
		}
	}
	return umax / amax
}
