package blas

import (
	"errors"
	"fmt"
	"math"

	"phihpl/internal/matrix"
)

// ErrSingular is returned when a zero pivot is encountered during
// factorization; the factor content up to that column is still valid.
// Match with errors.Is; errors.As against *SingularError recovers the
// offending column.
var ErrSingular = errors.New("blas: matrix is singular to working precision")

// minNormal is the smallest positive normal float64. A pivot below it is
// degenerate: dividing by it overflows the multipliers, so the column is
// treated exactly like a zero pivot.
const minNormal = 2.2250738585072014e-308

// SingularError reports the first column whose pivot was zero or
// subnormal. It matches ErrSingular under errors.Is.
type SingularError struct {
	Col int // absolute column index within the factored matrix
}

func (e *SingularError) Error() string {
	return fmt.Sprintf("blas: matrix is singular to working precision (zero/subnormal pivot in column %d)", e.Col)
}

// Is makes errors.Is(err, ErrSingular) succeed.
func (e *SingularError) Is(target error) bool { return target == ErrSingular }

// OffsetSingular rebases a SingularError's column by off (panel-relative
// to absolute); other errors pass through unchanged.
func OffsetSingular(err error, off int) error {
	var se *SingularError
	if errors.As(err, &se) && off != 0 {
		return &SingularError{Col: se.Col + off}
	}
	return err
}

// Dgetf2 factors the m×n panel A = P·L·U with partial pivoting using
// unblocked right-looking elimination (the panel-factorization kernel,
// "DGETRF" in the paper's Gantt charts). L is unit lower triangular and is
// stored below the diagonal of A; U on and above. piv must have length
// min(m,n); piv[k] records the row (>= k) swapped into position k.
//
// Row swaps are applied to the *full width* of the supplied view, so pass a
// view restricted to the panel's columns and apply swaps to the remainder
// separately with Dlaswp — exactly how blocked LU and HPL stage their
// swapping.
func Dgetf2(a *matrix.Dense, piv []int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(piv) != mn {
		panic("blas: Dgetf2 pivot slice has wrong length")
	}
	var err error
	for k := 0; k < mn; k++ {
		p := IdamaxCol(a, k, k)
		piv[k] = p
		if pv := a.At(p, k); pv == 0 || math.Abs(pv) < minNormal {
			// Zero or subnormal pivot: dividing would produce Inf/garbage
			// multipliers, so skip the column and report it.
			if err == nil {
				err = &SingularError{Col: k}
			}
			continue
		}
		SwapRows(a, k, p)
		akk := a.At(k, k)
		// Scale the multiplier column and update the trailing submatrix.
		for i := k + 1; i < m; i++ {
			a.Set(i, k, a.At(i, k)/akk)
		}
		rowK := a.Row(k)
		for i := k + 1; i < m; i++ {
			lik := a.At(i, k)
			if lik == 0 {
				continue
			}
			rowI := a.Row(i)
			for j := k + 1; j < n; j++ {
				rowI[j] -= lik * rowK[j]
			}
		}
	}
	return err
}

// Dlaswp applies the row interchanges recorded in piv (as produced by
// Dgetf2, offset-relative) to the rows of a: for k = 0..len(piv)-1, rows
// k+offset and piv[k]+offset are swapped. This is the "DLASWP" kernel of
// the paper's execution profiles.
func Dlaswp(a *matrix.Dense, piv []int, offset int) {
	for k, p := range piv {
		if p != k {
			SwapRows(a, k+offset, p+offset)
		}
	}
}

// Dgetrf computes the blocked right-looking LU factorization with partial
// pivoting of the square (or rectangular m>=n) matrix A in place, with
// block size nb. It is the reference single-threaded driver; the
// DAG-scheduled and look-ahead drivers in internal/lu produce identical
// factors (they reorder independent work only).
//
// piv must have length min(m,n) and records global row swaps
// (piv[k] is the absolute row index swapped with row k).
func Dgetrf(a *matrix.Dense, piv []int, nb int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(piv) != mn {
		panic("blas: Dgetrf pivot slice has wrong length")
	}
	if nb < 1 {
		nb = 64
	}
	var firstErr error
	for j := 0; j < mn; j += nb {
		jb := nb
		if j+jb > mn {
			jb = mn - j
		}
		// Factor the current panel A[j:m, j:j+jb].
		panel := a.View(j, j, m-j, jb)
		localPiv := make([]int, jb)
		if err := Dgetf2(panel, localPiv); err != nil && firstErr == nil {
			firstErr = OffsetSingular(err, j)
		}
		// Record global pivots and apply the swaps to the columns outside
		// the panel (left of j and right of j+jb).
		for k, p := range localPiv {
			piv[j+k] = p + j
			if p != k {
				if j > 0 {
					SwapRows(a.View(0, 0, m, j), j+k, j+p)
				}
				if j+jb < n {
					SwapRows(a.View(0, j+jb, m, n-j-jb), j+k, j+p)
				}
			}
		}
		if j+jb < n {
			// U block row: solve L11 · U12 = A12.
			l11 := a.View(j, j, jb, jb)
			u12 := a.View(j, j+jb, jb, n-j-jb)
			Dtrsm(Left, Lower, false, Unit, 1, l11, u12)
			// Trailing update: A22 -= L21 · U12.
			if j+jb < m {
				l21 := a.View(j+jb, j, m-j-jb, jb)
				a22 := a.View(j+jb, j+jb, m-j-jb, n-j-jb)
				RankKUpdate(l21, u12, a22, 1)
			}
		}
	}
	return firstErr
}

// LUSolve solves A·x = b given the in-place LU factors and pivots produced
// by Dgetrf (or the drivers in internal/lu). It applies the pivots to a
// copy of b, then runs the forward (unit lower) and backward (upper)
// substitutions.
func LUSolve(lu *matrix.Dense, piv []int, b []float64) []float64 {
	n := lu.Rows
	if lu.Cols != n || len(b) != n || len(piv) != n {
		panic("blas: LUSolve dimension mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	for k, p := range piv {
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward: L·y = Pb.
	for i := 0; i < n; i++ {
		row := lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Backward: U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}
