package blas

import (
	"testing"
	"testing/quick"

	"phihpl/internal/matrix"
)

func TestDgemmBlockedMatchesReference(t *testing.T) {
	for _, tc := range []struct{ m, n, k, mc, kc int }{
		{50, 40, 30, 16, 8},
		{50, 40, 30, 0, 0},   // defaults
		{7, 9, 5, 100, 100},  // blocks larger than matrix
		{64, 64, 64, 64, 64}, // exact fit
		{65, 31, 33, 16, 16}, // ragged
	} {
		a := matrix.RandomGeneral(tc.m, tc.k, uint64(tc.m))
		b := matrix.RandomGeneral(tc.k, tc.n, uint64(tc.n))
		c0 := matrix.RandomGeneral(tc.m, tc.n, 3)
		got := c0.Clone()
		DgemmBlocked(1.5, a, b, -0.5, got, tc.mc, tc.kc)
		want := c0.Clone()
		Dgemm(false, false, 1.5, a, b, -0.5, want)
		if d := matrix.MaxDiff(got, want); d > 1e-11 {
			t.Errorf("%+v: maxdiff %g", tc, d)
		}
	}
}

func TestDgemmBlockedAlphaBetaEdges(t *testing.T) {
	a := matrix.RandomGeneral(10, 10, 1)
	b := matrix.RandomGeneral(10, 10, 2)
	c := matrix.RandomGeneral(10, 10, 3)
	orig := c.Clone()
	DgemmBlocked(0, a, b, 1, c, 4, 4)
	if !matrix.Equal(c, orig) {
		t.Error("alpha=0, beta=1 must not change C")
	}
	DgemmBlocked(0, a, b, 0, c, 4, 4)
	if c.MaxAbs() != 0 {
		t.Error("alpha=0, beta=0 must zero C")
	}
}

func TestDgemmBlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DgemmBlocked(1, matrix.NewDense(2, 3), matrix.NewDense(4, 2), 0, matrix.NewDense(2, 2), 4, 4)
}

func TestDgemmBlockedProperty(t *testing.T) {
	f := func(seed uint64, mcR, kcR uint8) bool {
		mc := 1 + int(mcR)%40
		kc := 1 + int(kcR)%40
		a := matrix.RandomGeneral(30, 20, seed)
		b := matrix.RandomGeneral(20, 25, seed^3)
		got := matrix.NewDense(30, 25)
		DgemmBlocked(1, a, b, 0, got, mc, kc)
		want := matrix.NewDense(30, 25)
		Dgemm(false, false, 1, a, b, 0, want)
		return matrix.MaxDiff(got, want) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
