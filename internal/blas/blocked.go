package blas

import "phihpl/internal/matrix"

// DgemmBlocked computes C = alpha*A*B + beta*C with explicit cache
// blocking (Section III-A1): the k dimension is split into kc-deep outer
// products and the rows of A into mc-tall blocks, so each mc×kc A-block
// stays resident while it streams over B — the Goto-style decomposition
// the paper's DGEMM is built on, here for the host's real caches.
//
// mc/kc <= 0 pick defaults sized for a 256 KB L2 (the host's, Table I).
func DgemmBlocked(alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense, mc, kc int) {
	m, k := a.Rows, a.Cols
	n := b.Cols
	if b.Rows != k || c.Rows != m || c.Cols != n {
		panic("blas: DgemmBlocked dimension mismatch")
	}
	if mc <= 0 {
		mc = 128
	}
	if kc <= 0 {
		kc = 128
	}
	// Scale C once.
	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		for i := 0; i < m; i++ {
			Dscal(beta, c.Row(i))
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	for k0 := 0; k0 < k; k0 += kc {
		kb := kc
		if k0+kb > k {
			kb = k - k0
		}
		bBlk := b.View(k0, 0, kb, n)
		for m0 := 0; m0 < m; m0 += mc {
			mb := mc
			if m0+mb > m {
				mb = m - m0
			}
			aBlk := a.View(m0, k0, mb, kb)
			cBlk := c.View(m0, 0, mb, n)
			dgemmRows(alpha, aBlk, bBlk, 1, cBlk, 0, mb)
		}
	}
}
