package blas

import (
	"errors"
	"testing"
	"testing/quick"

	"phihpl/internal/matrix"
)

// reconstructLU multiplies the packed factors back together and applies the
// inverse row permutation, recovering the original matrix.
func reconstructLU(lu *matrix.Dense, piv []int) *matrix.Dense {
	n := lu.Rows
	l := matrix.Eye(n)
	u := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, lu.At(i, j))
			} else {
				u.Set(i, j, lu.At(i, j))
			}
		}
	}
	prod := matrix.NewDense(n, n)
	Dgemm(false, false, 1, l, u, 0, prod)
	// Undo the pivoting: Dgetf2 applied swaps top-down, so invert bottom-up.
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			SwapRows(prod, k, piv[k])
		}
	}
	return prod
}

func TestDgetf2FactorsCorrectly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17} {
		a := matrix.RandomGeneral(n, n, uint64(n))
		orig := a.Clone()
		piv := make([]int, n)
		if err := Dgetf2(a, piv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := reconstructLU(a, piv)
		if d := matrix.MaxDiff(recon, orig); d > 1e-10 {
			t.Errorf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestDgetf2RectangularPanel(t *testing.T) {
	// Tall panel, the shape of Linpack panel factorization.
	m, n := 20, 4
	a := matrix.RandomGeneral(m, n, 77)
	orig := a.Clone()
	piv := make([]int, n)
	if err := Dgetf2(a, piv); err != nil {
		t.Fatal(err)
	}
	// Check A = P⁻¹ L U on the panel: build L (m×n unit-lower trapezoid)
	// and U (n×n upper).
	l := matrix.NewDense(m, n)
	u := matrix.NewDense(n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, a.At(i, j))
			case i > j:
				l.Set(i, j, a.At(i, j))
			default:
				if i < n {
					u.Set(i, j, a.At(i, j))
				}
			}
		}
	}
	prod := matrix.NewDense(m, n)
	Dgemm(false, false, 1, l, u, 0, prod)
	for k := n - 1; k >= 0; k-- {
		if piv[k] != k {
			SwapRows(prod, k, piv[k])
		}
	}
	if d := matrix.MaxDiff(prod, orig); d > 1e-10 {
		t.Errorf("panel reconstruction error %g", d)
	}
}

func TestDgetf2PivotsAreMaximal(t *testing.T) {
	// After factorization all multipliers |L(i,j)| <= 1 — the defining
	// property of partial pivoting.
	a := matrix.RandomGeneral(30, 30, 5)
	piv := make([]int, 30)
	if err := Dgetf2(a, piv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < i; j++ {
			if v := a.At(i, j); v > 1+1e-15 || v < -1-1e-15 {
				t.Fatalf("multiplier L(%d,%d)=%v exceeds 1", i, j, v)
			}
		}
	}
}

func TestDgetf2Singular(t *testing.T) {
	a := matrix.NewDense(3, 3) // all zeros
	piv := make([]int, 3)
	if err := Dgetf2(a, piv); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestDgetf2PivLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dgetf2(matrix.NewDense(3, 3), make([]int, 2))
}

func TestDgetrfMatchesUnblocked(t *testing.T) {
	for _, nb := range []int{1, 2, 3, 8, 64} {
		n := 24
		a := matrix.RandomGeneral(n, n, 123)
		blocked := a.Clone()
		pivB := make([]int, n)
		if err := Dgetrf(blocked, pivB, nb); err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		unblocked := a.Clone()
		pivU := make([]int, n)
		if err := Dgetf2(unblocked, pivU); err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxDiff(blocked, unblocked); d > 1e-10 {
			t.Errorf("nb=%d: factors differ from unblocked by %g", nb, d)
		}
		for i := range pivB {
			if pivB[i] != pivU[i] {
				t.Errorf("nb=%d: pivot %d differs: %d vs %d", nb, i, pivB[i], pivU[i])
			}
		}
	}
}

func TestDgetrfDefaultBlockAndErrors(t *testing.T) {
	n := 10
	a := matrix.RandomGeneral(n, n, 9)
	piv := make([]int, n)
	if err := Dgetrf(a, piv, 0); err != nil { // nb<1 -> default
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected pivot-length panic")
			}
		}()
		Dgetrf(matrix.NewDense(4, 4), make([]int, 3), 2)
	}()
	// Singular blocked matrix reports ErrSingular.
	z := matrix.NewDense(6, 6)
	if err := Dgetrf(z, make([]int, 6), 2); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLUSolveAgainstResidual(t *testing.T) {
	for _, n := range []int{1, 5, 16, 50, 100} {
		a, b := matrix.RandomSystem(n, uint64(n)*31)
		lu := a.Clone()
		piv := make([]int, n)
		if err := Dgetrf(lu, piv, 8); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := LUSolve(lu, piv, b)
		if r := matrix.Residual(a, x, b); r > matrix.ResidualThreshold {
			t.Errorf("n=%d: scaled residual %g exceeds %g", n, r, matrix.ResidualThreshold)
		}
	}
}

func TestLUSolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LUSolve(matrix.NewDense(3, 3), make([]int, 3), []float64{1, 2})
}

func TestDlaswp(t *testing.T) {
	a := matrix.FromRows([][]float64{{1}, {2}, {3}, {4}})
	// piv from a factorization of rows 1..2 (offset 1): swap (1,2),(2,3).
	Dlaswp(a, []int{1, 2}, 1)
	want := matrix.FromRows([][]float64{{1}, {3}, {4}, {2}})
	if !matrix.Equal(a, want) {
		t.Errorf("a = %+v", a)
	}
	// Identity pivots are no-ops.
	Dlaswp(a, []int{0, 1, 2, 3}, 0)
	if !matrix.Equal(a, want) {
		t.Error("identity swaps changed the matrix")
	}
}

func TestLevel1(t *testing.T) {
	if Idamax(nil) != -1 {
		t.Error("Idamax(nil)")
	}
	if Idamax([]float64{1, -5, 5, 2}) != 1 { // ties to lowest index
		t.Error("Idamax tie-break")
	}
	v := []float64{1, 2}
	Dscal(3, v)
	if v[0] != 3 || v[1] != 6 {
		t.Error("Dscal")
	}
	y := []float64{1, 1}
	Daxpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Error("Daxpy")
	}
	if Ddot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Ddot")
	}
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	SwapRows(m, 0, 1)
	if m.At(0, 0) != 3 {
		t.Error("SwapRows")
	}
	SwapRows(m, 1, 1) // no-op
	if m.At(1, 0) != 1 {
		t.Error("SwapRows self")
	}
}

func TestLevel1Panics(t *testing.T) {
	for name, f := range map[string]func(){
		"daxpy": func() { Daxpy(1, []float64{1}, []float64{1, 2}) },
		"ddot":  func() { Ddot([]float64{1}, []float64{1, 2}) },
		"dger":  func() { Dger(1, []float64{1}, []float64{1}, matrix.NewDense(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDger(t *testing.T) {
	a := matrix.NewDense(2, 3)
	Dger(2, []float64{1, 2}, []float64{3, 4, 5}, a)
	want := matrix.FromRows([][]float64{{6, 8, 10}, {12, 16, 20}})
	if !matrix.Equal(a, want) {
		t.Errorf("a = %+v", a)
	}
	Dger(1, []float64{0, 0}, []float64{1, 1, 1}, a) // zero x rows skipped
	if !matrix.Equal(a, want) {
		t.Error("zero-x Dger changed A")
	}
}

func TestIdamaxCol(t *testing.T) {
	a := matrix.FromRows([][]float64{{5}, {-7}, {6}})
	if IdamaxCol(a, 0, 0) != 1 {
		t.Error("full column")
	}
	if IdamaxCol(a, 0, 2) != 2 {
		t.Error("restricted column")
	}
	if IdamaxCol(a, 0, 3) != -1 {
		t.Error("empty range")
	}
}

// Property: LU solve passes the HPL residual test for random systems.
func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw)%40
		a, b := matrix.RandomSystem(n, seed)
		lu := a.Clone()
		piv := make([]int, n)
		if err := Dgetrf(lu, piv, 4); err != nil {
			return true // singular random matrix: astronomically unlikely, skip
		}
		x := LUSolve(lu, piv, b)
		return matrix.Residual(a, x, b) < matrix.ResidualThreshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: blocked and unblocked factorizations agree for any block size.
func TestDgetrfBlockInvarianceProperty(t *testing.T) {
	f := func(seed uint64, nbRaw uint8) bool {
		n := 15
		nb := 1 + int(nbRaw)%20
		a := matrix.RandomGeneral(n, n, seed)
		b1, b2 := a.Clone(), a.Clone()
		p1, p2 := make([]int, n), make([]int, n)
		if err := Dgetrf(b1, p1, nb); err != nil {
			return true
		}
		if err := Dgetf2(b2, p2); err != nil {
			return true
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return matrix.MaxDiff(b1, b2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSingularErrorReportsColumn(t *testing.T) {
	// Column 2 becomes a zero pivot: it is a copy of column 1.
	a := matrix.NewDense(4, 4)
	vals := [][]float64{
		{2, 1, 1, 3},
		{4, 3, 3, 1},
		{8, 7, 7, 9},
		{6, 7, 7, 8},
	}
	for i := range vals {
		copy(a.Row(i), vals[i])
	}
	err := Dgetf2(a.Clone(), make([]int, 4))
	var se *SingularError
	if !errors.As(err, &se) {
		t.Fatalf("want SingularError, got %v", err)
	}
	if se.Col != 2 {
		t.Errorf("offending column = %d, want 2", se.Col)
	}
	if !errors.Is(err, ErrSingular) {
		t.Error("SingularError must match ErrSingular")
	}
	// The blocked driver must report the same absolute column.
	err = Dgetrf(a.Clone(), make([]int, 4), 2)
	if !errors.As(err, &se) || se.Col != 2 {
		t.Errorf("Dgetrf column = %v, want 2", err)
	}
}

func TestSubnormalPivotIsDegenerate(t *testing.T) {
	// All candidate pivots in column 0 are subnormal: dividing by them
	// would overflow, so the column must be treated as singular.
	a := matrix.NewDense(2, 2)
	a.Set(0, 0, 1e-310)
	a.Set(1, 0, 2e-310)
	a.Set(0, 1, 1)
	a.Set(1, 1, 2)
	err := Dgetf2(a, make([]int, 2))
	var se *SingularError
	if !errors.As(err, &se) || se.Col != 0 {
		t.Fatalf("want SingularError{Col: 0}, got %v", err)
	}
	// No multiplier may have been formed by dividing by the subnormal.
	if v := a.At(1, 0); v != 2e-310 {
		t.Errorf("column scaled despite degenerate pivot: %v", v)
	}
}

func TestRecursiveSingularColumnOffset(t *testing.T) {
	// Duplicate columns force a zero pivot past the recursion split; the
	// reported column must be absolute, matching the unblocked kernel.
	n := 24
	a := matrix.RandomGeneral(n, n, 77)
	dup := 17
	for i := 0; i < n; i++ {
		a.Set(i, dup, a.At(i, dup-1))
	}
	errA := Dgetf2(a.Clone(), make([]int, n))
	errB := Dgetf2Recursive(a.Clone(), make([]int, n))
	var sa, sb *SingularError
	if !errors.As(errA, &sa) || !errors.As(errB, &sb) {
		t.Fatalf("both kernels must report SingularError: %v / %v", errA, errB)
	}
	if sa.Col != sb.Col {
		t.Errorf("recursive column %d != unblocked column %d", sb.Col, sa.Col)
	}
}
