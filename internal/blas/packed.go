package blas

import (
	"sync"

	"phihpl/internal/matrix"
	"phihpl/internal/pack"
	"phihpl/internal/pool"
)

// The packed-tile fast path of Section III: operands are packed once per
// K-block into the Knights Corner layout (A in TileM×k column-major tiles,
// B in k×8 row-major tiles) and multiplied by the register-blocked 30×8
// micro-kernel over an L2-sized K-blocked sequence of outer products. The
// tile grid and the packing itself are distributed over the persistent
// worker pool in internal/pool — no goroutines are created per call.
//
// Bitwise-reproducibility contract: the value of every C element depends
// only on its row of alpha·op(A), its column of op(B), beta·C and the
// K-block boundaries (a function of k alone) — never on the worker count,
// the tile the element lands in, or how the m×n iteration space is
// partitioned. The LU and HPL drivers split one mathematical trailing
// update into many differently-shaped DGEMM calls with the *same* k, so
// this property (plus the k-only crossover in RankKUpdate) is exactly
// what keeps sequential, look-ahead, DAG-scheduled and distributed
// factorizations bitwise identical to each other.

// packKC is the K-block depth: each outer product packs at most packKC
// columns of A and rows of B, sized so one a-tile strip (TileM×packKC)
// plus one b-tile (packKC×8) stay L2-resident. It mirrors the paper's
// k≈300–400 blocking (Table II peaks at k=300).
const packKC = 384

// PackedMinK is the crossover of RankKUpdate: trailing updates with
// k >= PackedMinK take the packed fast path, smaller ones the plain
// row-split loop whose lower setup cost wins for thin updates. The
// crossover deliberately depends on k only — m and n are partitioned
// differently by the sequential, per-panel and distributed drivers, and a
// shape-dependent path choice would break their bitwise-identity
// guarantees. Tests may override it (e.g. to force the reference path);
// it is not safe to change concurrently with running kernels.
var PackedMinK = 16

// packBuf is a reusable pair of packing buffers, recycled through a
// sync.Pool so steady-state DgemmPacked calls allocate nothing but views.
type packBuf struct {
	a, b []float64
}

var packBufs = sync.Pool{New: func() any { return new(packBuf) }}

// take returns slices of exactly na and nb elements, growing the backing
// buffers only when a larger shape arrives. Contents are stale; the
// packers overwrite every element including padding.
func (pb *packBuf) take(na, nb int) ([]float64, []float64) {
	if cap(pb.a) < na {
		pb.a = make([]float64, na)
	}
	if cap(pb.b) < nb {
		pb.b = make([]float64, nb)
	}
	return pb.a[:na], pb.b[:nb]
}

// DgemmPacked computes C = alpha*op(A)*op(B) + beta*C through the
// packed-tile parallel fast path. It is numerically equivalent to Dgemm
// (element-wise within O(k)·ulp; the accumulation is grouped per K-block
// instead of folded straight into C) and considerably faster for shapes
// whose k is large enough to amortize the packing, which is the LU/HPL
// trailing-update regime. Dgemm/DgemmParallel remain the always-available
// reference oracle.
func DgemmPacked(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense, workers int) {
	m, k := opDims(a, transA)
	k2, n := opDims(b, transB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic("blas: DgemmPacked dimension mismatch")
	}
	scaleRows(c, beta, workers)
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}

	aTiles := (m + pack.DefaultTileM - 1) / pack.DefaultTileM
	bTiles := (n + pack.TileN - 1) / pack.TileN
	pb := packBufs.Get().(*packBuf)
	defer packBufs.Put(pb)

	rec := obsTrace.Load()
	mPackedCalls.Load().Inc()
	mPackedFlops.Load().Add(2 * int64(m) * int64(n) * int64(k))

	for k0 := 0; k0 < k; k0 += packKC {
		kb := packKC
		if k0+kb > k {
			kb = k - k0
		}
		aData, bData := pb.take(aTiles*pack.DefaultTileM*kb, bTiles*kb*pack.TileN)
		pa := &pack.A{M: m, K: kb, TileM: pack.DefaultTileM, Data: aData}
		pkb := &pack.B{K: kb, N: n, Data: bData}
		mBytesPacked.Load().Add(8 * int64(len(aData)+len(bData)))

		// Pack both panels in parallel: tiles are independent, so the a-
		// and b-tile index spaces are fused into one work list.
		var t0 float64
		if rec != nil {
			t0 = rec.Start()
		}
		pool.Do(aTiles+bTiles, workers, func(t int) {
			if t < aTiles {
				pack.PackATileOp(pa, a, transA, alpha, k0, t)
			} else {
				pack.PackBTileOp(pkb, b, transB, k0, t-aTiles)
			}
		})
		if rec != nil {
			rec.Since(0, "pack", k0/packKC, t0)
			t0 = rec.Start()
		}

		// Outer product: the (aTile, bTile) grid updates disjoint TileM×8
		// blocks of C, claimed by atomic work stealing over the pool.
		pool.Do(aTiles*bTiles, workers, func(j int) {
			ta, tb := j/bTiles, j%bTiles
			rows := pa.TileRows(ta)
			cols := pkb.TileCols(tb)
			off := ta*pack.DefaultTileM*c.Stride + tb*pack.TileN
			pack.MicroKernel(pa.Tile(ta), pa.TileM, kb, pkb.Tile(tb), c.Data[off:], c.Stride, rows, cols)
		})
		if rec != nil {
			rec.Since(0, "compute", k0/packKC, t0)
		}
	}
}

// scaleRows applies C *= beta row-wise (beta==0 stores exact zeros,
// clearing any NaN/Inf previously in C, matching dgemmRows).
func scaleRows(c *matrix.Dense, beta float64, workers int) {
	if beta == 1 || c.Rows == 0 || c.Cols == 0 {
		return
	}
	pool.Do(c.Rows, workers, func(i int) {
		row := c.Row(i)
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			return
		}
		for j := range row {
			row[j] *= beta
		}
	})
}
