package blas

import (
	"sync"

	"phihpl/internal/matrix"
	"phihpl/internal/pack"
	"phihpl/internal/pool"
)

// The packed-tile fast path of Section III: operands are packed once per
// K-block into the Knights Corner layout (A in TileM×k column-major tiles,
// B in k×8 row-major tiles) and multiplied by the register-blocked 30×8
// micro-kernel over an L2-sized K-blocked sequence of outer products. The
// tile grid and the packing itself are distributed over the persistent
// worker pool in internal/pool — no goroutines are created per call.
//
// Bitwise-reproducibility contract: the value of every C element depends
// only on its row of alpha·op(A), its column of op(B), beta·C and the
// K-block boundaries (a function of k alone) — never on the worker count,
// the tile the element lands in, or how the m×n iteration space is
// partitioned. The LU and HPL drivers split one mathematical trailing
// update into many differently-shaped DGEMM calls with the *same* k, so
// this property (plus the k-only crossover in RankKUpdate) is exactly
// what keeps sequential, look-ahead, DAG-scheduled and distributed
// factorizations bitwise identical to each other.

// packKC is the K-block depth: each outer product packs at most packKC
// columns of A and rows of B, sized so one a-tile strip (TileM×packKC)
// plus one b-tile (packKC×8) stay L2-resident. It mirrors the paper's
// k≈300–400 blocking (Table II peaks at k=300).
const packKC = 384

// PackedMinK is the crossover of RankKUpdate: trailing updates with
// k >= PackedMinK take the packed fast path, smaller ones the plain
// row-split loop whose lower setup cost wins for thin updates. The
// crossover deliberately depends on k only — m and n are partitioned
// differently by the sequential, per-panel and distributed drivers, and a
// shape-dependent path choice would break their bitwise-identity
// guarantees. Tests may override it (e.g. to force the reference path);
// it is not safe to change concurrently with running kernels.
var PackedMinK = 16

// DisableBReplication turns off the per-socket B-panel replication of
// DgemmPacked/SgemmPacked (the packed drivers then keep one shared packed
// B, the pre-topology behaviour). Replication only activates on machines
// where pool.Groups() > 1, so on single-socket hosts this flag is moot;
// it exists for benchmarks (measuring replication cost under
// pool.ForceGroups) and A/B tests. Like the kernel-mode toggles it is not
// safe to change concurrently with running kernels. Every replica holds
// identical bytes, so results are bitwise independent of this flag.
var DisableBReplication = false

// bGroups returns how many B-panel replicas the packed drivers keep: one
// per socket group, or one when replication is disabled.
func bGroups() int {
	if DisableBReplication {
		return 1
	}
	return pool.Groups()
}

// packBuf is a reusable set of packing buffers plus the packed-operand
// headers, recycled through a sync.Pool so steady-state DgemmPacked calls
// allocate nothing beyond two per-call closures: the headers live here
// precisely so the per-K-block loop re-points them instead of
// re-allocating them (the allocs-per-op growth with K-block count that
// the n=512 benchmark rows exposed).
type packBuf struct {
	a, b []float64
	pa   pack.A
	pbs  []pack.B // one header per B replica group
}

var packBufs = sync.Pool{New: func() any { return new(packBuf) }}

// take returns slices of exactly na and nb elements, growing the backing
// buffers only when a larger shape arrives. Contents are stale; the
// packers overwrite every element including padding.
func (pb *packBuf) take(na, nb int) ([]float64, []float64) {
	if cap(pb.a) < na {
		pb.a = make([]float64, na)
	}
	if cap(pb.b) < nb {
		pb.b = make([]float64, nb)
	}
	return pb.a[:na], pb.b[:nb]
}

// DgemmPacked computes C = alpha*op(A)*op(B) + beta*C through the
// packed-tile parallel fast path. It is numerically equivalent to Dgemm
// (element-wise within O(k)·ulp; the accumulation is grouped per K-block
// instead of folded straight into C) and considerably faster for shapes
// whose k is large enough to amortize the packing, which is the LU/HPL
// trailing-update regime. Dgemm/DgemmParallel remain the always-available
// reference oracle.
func DgemmPacked(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense, workers int) {
	m, k := opDims(a, transA)
	k2, n := opDims(b, transB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic("blas: DgemmPacked dimension mismatch")
	}
	scaleRows(c, beta, workers)
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}

	aTiles := (m + pack.DefaultTileM - 1) / pack.DefaultTileM
	bTiles := (n + pack.TileN - 1) / pack.TileN
	groups := bGroups()
	pb := packBufs.Get().(*packBuf)
	defer packBufs.Put(pb)
	pa := &pb.pa
	if cap(pb.pbs) < groups {
		pb.pbs = make([]pack.B, groups)
	}
	pbs := pb.pbs[:groups]

	rec := obsTrace.Load()
	mPackedCalls.Load().Inc()
	mPackedFlops.Load().Add(2 * int64(m) * int64(n) * int64(k))

	// The per-K-block loop mutates k0/kb and re-points the packed-operand
	// headers; the two region closures are created once per call, outside
	// the loop, so the allocation count no longer scales with ceil(k/kC).
	var k0, kb int
	// Pack the A panel and every B replica in parallel: tiles are
	// independent, so the index spaces are fused into one work list
	// (aTiles items for A, then bTiles per replica group). Each replica
	// is packed from the same source by the same deterministic packer, so
	// all replicas hold identical bytes — the invariant that keeps the
	// grouped compute phase bitwise independent of the topology.
	packFn := func(t int) {
		if t < aTiles {
			pack.PackATileOp(pa, a, transA, alpha, k0, t)
		} else {
			t -= aTiles
			pack.PackBTileOp(&pbs[t/bTiles], b, transB, k0, t%bTiles)
		}
	}
	// Outer product: the (aTile, bTile) grid updates disjoint TileM×8
	// blocks of C, claimed by atomic work stealing over the pool. Each
	// worker streams the B replica of its own socket group.
	compFn := func(j, g int) {
		ta, tb := j/bTiles, j%bTiles
		rows := pa.TileRows(ta)
		pkb := &pbs[g]
		cols := pkb.TileCols(tb)
		off := ta*pack.DefaultTileM*c.Stride + tb*pack.TileN
		pack.MicroKernel(pa.Tile(ta), pa.TileM, kb, pkb.Tile(tb), c.Data[off:], c.Stride, rows, cols)
	}

	for k0 = 0; k0 < k; k0 += packKC {
		kb = packKC
		if k0+kb > k {
			kb = k - k0
		}
		nb := bTiles * kb * pack.TileN
		aData, bData := pb.take(aTiles*pack.DefaultTileM*kb, groups*nb)
		pa.M, pa.K, pa.TileM, pa.Data = m, kb, pack.DefaultTileM, aData
		for g := range pbs {
			pbs[g].K, pbs[g].N, pbs[g].Data = kb, n, bData[g*nb:(g+1)*nb]
		}
		mBytesPacked.Load().Add(8 * int64(len(aData)+len(bData)))

		var t0 float64
		if rec != nil {
			t0 = rec.Start()
		}
		pool.Do(aTiles+groups*bTiles, workers, packFn)
		if rec != nil {
			rec.Since(0, "pack", k0/packKC, t0)
			t0 = rec.Start()
		}
		pool.DoGrouped(aTiles*bTiles, workers, compFn)
		if rec != nil {
			rec.Since(0, "compute", k0/packKC, t0)
		}
	}
}

// --- prepacked operands ------------------------------------------------
//
// HPL's trailing update multiplies one L panel against every U block of
// a block row, and one U block against every L panel of a block column:
// per-call packing re-packs each operand O(blocks) times. Prepacking
// packs an operand once and reuses the tiles across calls. Because a C
// element's value depends only on its packed A row, packed B column and
// the K-block boundaries (see the contract above), GemmPrepacked is
// bitwise identical to the DgemmPacked call it replaces.

// prepackSlabs recycles the packed-operand backing arrays so steady-state
// prepacking allocates nothing: Release returns a slab once the packed
// operand is no longer referenced. Contents are stale on reuse; the
// packers overwrite every element including padding.
var prepackSlabs = sync.Pool{New: func() any { return new([]float64) }}

func prepackTake(n int) *[]float64 {
	s := prepackSlabs.Get().(*[]float64)
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return s
}

// PrepackedA is alpha·A packed once into the tile layout (one K-block).
type PrepackedA struct {
	pa   *pack.A
	m, k int
	slab *[]float64
}

// Release recycles the packed buffer. Optional (an unreleased operand is
// ordinary garbage); call it only once no GemmPrepacked will read the
// operand again.
func (a *PrepackedA) Release() {
	if a != nil && a.slab != nil {
		prepackSlabs.Put(a.slab)
		a.slab, a.pa = nil, nil
	}
}

// PrepackA packs alpha·a (no transpose). Returns nil when a spans more
// than one K-block (k > packKC) — callers fall back to DgemmPacked,
// which blocks over k itself.
func PrepackA(a *matrix.Dense, alpha float64) *PrepackedA {
	m, k := a.Rows, a.Cols
	if k > packKC {
		return nil
	}
	aTiles := (m + pack.DefaultTileM - 1) / pack.DefaultTileM
	slab := prepackTake(aTiles * pack.DefaultTileM * k)
	pa := &pack.A{M: m, K: k, TileM: pack.DefaultTileM, Data: *slab}
	for t := 0; t < aTiles; t++ {
		pack.PackATileOp(pa, a, false, alpha, 0, t)
	}
	mBytesPacked.Load().Add(8 * int64(len(pa.Data)))
	return &PrepackedA{pa: pa, m: m, k: k, slab: slab}
}

// PrepackedB is B packed once into the tile layout (one K-block), with
// one replica per socket group so the grouped compute phase streams a
// socket-local copy. Replicas are byte-for-byte copies of replica 0, so
// results are bitwise independent of the replica count.
type PrepackedB struct {
	pbs  []pack.B
	k, n int
	slab *[]float64
}

// Release recycles the packed buffer; see (*PrepackedA).Release.
func (b *PrepackedB) Release() {
	if b != nil && b.slab != nil {
		prepackSlabs.Put(b.slab)
		b.slab, b.pbs = nil, nil
	}
}

// PrepackB packs b (no transpose). Returns nil when b spans more than
// one K-block (k > packKC).
func PrepackB(b *matrix.Dense) *PrepackedB {
	k, n := b.Rows, b.Cols
	if k > packKC {
		return nil
	}
	groups := bGroups()
	bTiles := (n + pack.TileN - 1) / pack.TileN
	rep := bTiles * k * pack.TileN
	slab := prepackTake(groups * rep)
	pbs := make([]pack.B, groups)
	pbs[0] = pack.B{K: k, N: n, Data: (*slab)[:rep]}
	for t := 0; t < bTiles; t++ {
		pack.PackBTileOp(&pbs[0], b, false, 0, t)
	}
	for g := 1; g < groups; g++ {
		data := (*slab)[g*rep : (g+1)*rep]
		copy(data, pbs[0].Data)
		pbs[g] = pack.B{K: k, N: n, Data: data}
	}
	mBytesPacked.Load().Add(8 * int64(len(*slab)))
	return &PrepackedB{pbs: pbs, k: k, n: n, slab: slab}
}

// GemmPrepacked computes C += (alpha·A)·B from prepacked operands (the
// alpha was folded into the A tiles at pack time; beta is fixed at 1).
// The tile grid and micro-kernel invocations are exactly DgemmPacked's
// single-K-block schedule, so the result is bitwise identical to
// DgemmPacked(false, false, alpha, a, b, 1, c, workers).
func GemmPrepacked(a *PrepackedA, b *PrepackedB, c *matrix.Dense, workers int) {
	if a.k != b.k || c.Rows != a.m || c.Cols != b.n {
		panic("blas: GemmPrepacked dimension mismatch")
	}
	if a.m == 0 || b.n == 0 || a.k == 0 {
		return
	}
	mPackedCalls.Load().Inc()
	mPackedFlops.Load().Add(2 * int64(a.m) * int64(b.n) * int64(a.k))
	aTiles, bTiles := a.pa.Tiles(), b.pbs[0].Tiles()
	pa, pbs := a.pa, b.pbs
	pool.DoGrouped(aTiles*bTiles, workers, func(j, g int) {
		ta, tb := j/bTiles, j%bTiles
		rows := pa.TileRows(ta)
		if g >= len(pbs) {
			g = 0 // prepacked under a smaller group count than the caller's
		}
		pb := &pbs[g]
		cols := pb.TileCols(tb)
		off := ta*pack.DefaultTileM*c.Stride + tb*pack.TileN
		pack.MicroKernel(pa.Tile(ta), pa.TileM, a.k, pb.Tile(tb), c.Data[off:], c.Stride, rows, cols)
	})
}

// scaleRows applies C *= beta row-wise (beta==0 stores exact zeros,
// clearing any NaN/Inf previously in C, matching dgemmRows).
func scaleRows(c *matrix.Dense, beta float64, workers int) {
	if beta == 1 || c.Rows == 0 || c.Cols == 0 {
		return
	}
	pool.Do(c.Rows, workers, func(i int) {
		row := c.Row(i)
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			return
		}
		for j := range row {
			row[j] *= beta
		}
	})
}
