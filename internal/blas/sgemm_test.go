package blas

import (
	"math"
	"testing"

	"phihpl/internal/matrix"
)

// mustPanicBufferTooSmall runs f and requires the typed Sgemm
// buffer-too-small panic.
func mustPanicBufferTooSmall(t *testing.T, tag string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected buffer-too-small panic", tag)
		}
		if s, ok := r.(string); !ok || s != "blas: Sgemm buffer too small" {
			t.Fatalf("%s: wrong panic %v", tag, r)
		}
	}()
	f()
}

// TestSgemmDegenerateShapeGuard is the satellite-4 regression: the old
// guard validated all three buffers only when m, k and n were all
// positive, so k == 0 with an undersized C slipped past the check and the
// beta scaling overran C. Each buffer must now be validated independently
// whenever the call touches it.
func TestSgemmDegenerateShapeGuard(t *testing.T) {
	// k == 0 still scales C: an undersized C must panic, not overrun.
	mustPanicBufferTooSmall(t, "k=0 short C", func() {
		Sgemm(3, 4, 0, 1, nil, 0, nil, 4, 2, make([]float32, 5), 4)
	})
	// n == 0 with k > 0 still indexes nothing of b/c, but a is untouched
	// too — no panic even with nil buffers.
	Sgemm(3, 0, 2, 1, make([]float32, 6), 2, nil, 0, 1, nil, 0)
	// m == 0: nothing is touched at all.
	Sgemm(0, 4, 2, 1, nil, 2, make([]float32, 8), 4, 0, nil, 4)
	// Undersized A and B still panic when their dimensions are live.
	mustPanicBufferTooSmall(t, "short A", func() {
		Sgemm(3, 2, 2, 1, make([]float32, 5), 2, make([]float32, 4), 2, 0, make([]float32, 6), 2)
	})
	mustPanicBufferTooSmall(t, "short B", func() {
		Sgemm(3, 2, 2, 1, make([]float32, 6), 2, make([]float32, 3), 2, 0, make([]float32, 6), 2)
	})
}

// TestSgemmZeroKScalesC: k == 0 is still a valid BLAS call — C = beta*C.
func TestSgemmZeroKScalesC(t *testing.T) {
	c := []float32{1, 2, 3, 4, 5, 6}
	Sgemm(2, 3, 0, 1, nil, 0, nil, 3, 2, c, 3)
	for i, want := range []float32{2, 4, 6, 8, 10, 12} {
		if c[i] != want {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want)
		}
	}
	// beta == 0 stores exact zeros, clearing NaN.
	c[1] = float32(math.NaN())
	Sgemm(2, 3, 0, 1, nil, 0, nil, 3, 0, c, 3)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("c[%d] = %v, want 0", i, v)
		}
	}
}

// TestSgemmAlphaZeroDoesNotReadOperands: alpha == 0 must not read A or B
// (NaN there must not reach C), matching the BLAS quick-return rule.
func TestSgemmAlphaZeroDoesNotReadOperands(t *testing.T) {
	nan := float32(math.NaN())
	a := []float32{nan, nan, nan, nan}
	b := []float32{nan, nan, nan, nan}
	c := []float32{1, 2, 3, 4}
	Sgemm(2, 2, 2, 0, a, 2, b, 2, 1, c, 2)
	for i, want := range []float32{1, 2, 3, 4} {
		if c[i] != want {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want)
		}
	}
}

// TestSgemmNoZeroSkip: a zero element of A times NaN/Inf in B must
// produce NaN — the reference loop performs every product unconditionally.
func TestSgemmNoZeroSkip(t *testing.T) {
	a := []float32{0, 0}                                      // 1×2 zero row
	b := []float32{float32(math.NaN()), float32(math.Inf(1))} // 2×1
	c := []float32{7}
	Sgemm(1, 1, 2, 1, a, 2, b, 1, 0, c, 1)
	if !math.IsNaN(float64(c[0])) {
		t.Fatalf("c = %v, want NaN from 0·NaN + 0·Inf", c[0])
	}
}

// TestSgemmDenseZeroDims: the Dense32 wrapper quick-returns on empty
// shapes, including views with nil Data.
func TestSgemmDenseZeroDims(t *testing.T) {
	host := matrix.NewDense32(4, 4)
	a := host.View(0, 0, 0, 3)
	b := host.View(0, 0, 3, 0)
	c := matrix.NewDense32(0, 0)
	SgemmDense(false, false, 1, a, b, 0, c) // must not panic
	SgemmDense(true, true, 1, b, a, 0, c)
}
