package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"phihpl"
	"phihpl/internal/metrics"
	"phihpl/internal/testutil"
	"phihpl/internal/trace"
)

// TestSoak is the acceptance scenario of ISSUE 7: ≥200 jobs from 4
// tenants against a queue of depth 16 — real solves in every mode,
// invalid requests, a panicking job, fault-injected jobs, duplicate
// cacheable jobs, and a deliberate overflow burst. The server must not
// crash, must leave every submission in exactly one terminal state
// (PASSED/FAILED/ABORTED/REJECTED), must expose cache and 429 counters
// in /metrics, and must drain within the deadline with zero goroutine
// leaks.
func TestSoak(t *testing.T) {
	defer testutil.NoLeaks(t)()

	const (
		tenants       = 4
		perTenant     = 50
		burst         = 40
		panicSeed     = 999
		slowSeed      = 777
		drainDeadline = 10 * time.Second
	)

	cfg := Config{
		QueueDepth:     16,
		Concurrency:    4,
		TenantCap:      2,
		TenantWeights:  map[string]int{"t0": 2, "t1": 1, "t2": 1, "t3": 1},
		MaxN:           512,
		DefaultRetries: 1,
		MaxRetries:     5,
		RetryBase:      time.Millisecond,
		DefaultTimeout: 60 * time.Second,
		StreamInterval: 20 * time.Millisecond,
		Metrics:        metrics.NewRegistry(),
	}
	// Chaos wrapper around the real facade dispatch: one seed panics, one
	// seed simulates a slow solve (to build queue pressure for the 429
	// burst); everything else runs the genuine solver stack.
	cfg.Runner = func(ctx context.Context, sp Spec, rec *trace.Recorder) (phihpl.SolveResult, error) {
		switch sp.Seed {
		case panicSeed:
			panic("soak: deliberate panic job")
		case slowSeed:
			select {
			case <-time.After(25 * time.Millisecond):
			case <-ctx.Done():
				return phihpl.SolveResult{}, ctx.Err()
			}
			return phihpl.SolveResult{N: sp.N, Passed: true, Residual: 1e-3}, nil
		}
		return DefaultRunner(ctx, sp, rec)
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		id       string // "" when rejected
		rejected bool
	}
	var mu sync.Mutex
	var outcomes []outcome
	var rejected429 int

	submit := func(tenant, body string) {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/solve", strings.NewReader(body))
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		defer resp.Body.Close()
		mu.Lock()
		defer mu.Unlock()
		switch {
		case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
			var jv JobView
			if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
				t.Errorf("decode job: %v", err)
				return
			}
			outcomes = append(outcomes, outcome{id: jv.ID})
		case resp.StatusCode >= 400:
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Errorf("decode rejection: %v", err)
				return
			}
			if eb.State != StateRejected {
				t.Errorf("rejection body state = %q, want REJECTED", eb.State)
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				rejected429++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			}
			outcomes = append(outcomes, outcome{rejected: true})
		default:
			t.Errorf("unexpected status %d", resp.StatusCode)
		}
	}

	// settle waits for every admitted job in outcomes[from:] to reach a
	// terminal state and asserts the state is stable ("exactly one").
	terminal := map[State]int{}
	settle := func(from int) {
		deadline := time.Now().Add(120 * time.Second)
		for _, o := range outcomes[from:] {
			if o.rejected {
				terminal[StateRejected]++
				continue
			}
			j, ok := s.Job(o.id)
			if !ok {
				t.Fatalf("job %s vanished before terminal", o.id)
			}
			select {
			case <-j.done:
			case <-time.After(time.Until(deadline)):
				t.Fatalf("job %s stuck in %s", o.id, j.currentState())
			}
			st := j.currentState()
			if !st.Terminal() {
				t.Fatalf("job %s done-signalled in non-terminal state %s", o.id, st)
			}
			terminal[st]++
			if again := j.currentState(); again != st {
				t.Fatalf("job %s changed terminal state %s -> %s", o.id, st, again)
			}
		}
	}

	// Phase 1: four tenants submit a mixed workload concurrently.
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", tn)
			for i := 0; i < perTenant; i++ {
				var body string
				switch i % 7 {
				case 0: // invalid requests of several typed kinds
					switch i % 3 {
					case 0:
						body = `{"mode":"nope","n":64}`
					case 1:
						body = `{"n":-5}`
					default:
						body = `{"mode":"dist2d","n":64,"precision":"mixed"}`
					}
				case 1: // duplicate cacheable jobs (seeds 1..3 shared by all tenants)
					body = fmt.Sprintf(`{"mode":"native","n":48,"nb":16,"workers":2,"seed":%d}`, 1+i%3)
				case 2: // real 2D distributed solves
					body = fmt.Sprintf(`{"mode":"dist2d","n":32,"nb":16,"p":2,"q":2,"seed":%d}`, 10+i)
				case 3: // fault-injected FT solves (recoverable loss + corruption)
					body = fmt.Sprintf(`{"mode":"ft","n":32,"nb":16,"p":2,"q":2,"seed":%d,"faults":"seed=%d;drop=0.05;corrupt=0.02"}`, 20+i, i+1)
				case 4: // unique native solves
					body = fmt.Sprintf(`{"mode":"native","n":48,"nb":16,"workers":2,"seed":%d}`, 1000*(tn+1)+i)
				case 5: // mixed-precision solves
					body = fmt.Sprintf(`{"mode":"native","n":64,"nb":16,"workers":2,"seed":%d,"precision":"mixed"}`, 5+i%2)
				default: // slow dummy jobs to keep the queue under pressure
					body = fmt.Sprintf(`{"mode":"native","n":64,"seed":%d,"nb":%d}`, slowSeed, 16+i)
				}
				submit(tenant, body)
			}
		}(tn)
	}
	wg.Wait()
	settle(0)
	phase1 := len(outcomes)

	// Phase 2: with the queue now idle, the deliberate panic job is
	// guaranteed admission, then a same-instant overflow burst
	// (back-to-back slow jobs far beyond depth 16 ⇒ guaranteed 429s).
	submit("t3", fmt.Sprintf(`{"mode":"native","n":64,"seed":%d}`, panicSeed))
	for i := 0; i < burst; i++ {
		submit("t2", fmt.Sprintf(`{"mode":"native","n":64,"seed":%d,"nb":%d}`, slowSeed, 100+i))
	}
	settle(phase1)

	total := tenants*perTenant + 1 + burst
	if len(outcomes) != total {
		t.Fatalf("accounting lost submissions: %d recorded, %d made", len(outcomes), total)
	}
	t.Logf("terminal states: %+v (429s observed by clients: %d)", terminal, rejected429)
	if sum := terminal[StatePassed] + terminal[StateFailed] + terminal[StateAborted] + terminal[StateRejected]; sum != total {
		t.Errorf("terminal accounting %d != submissions %d", sum, total)
	}
	if terminal[StatePassed] == 0 {
		t.Error("soak produced no PASSED jobs")
	}
	if terminal[StateRejected] == 0 {
		t.Error("soak produced no REJECTED submissions")
	}

	// The overload and cache paths actually fired, and are visible in
	// /metrics as the acceptance criteria require.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.rejected_queue_full"] < 1 {
		t.Errorf("rejected_queue_full = %d, want >= 1 (burst of %d vs depth 16)",
			snap.Counters["server.rejected_queue_full"], burst)
	}
	if hits := snap.Counters["server.cache_hits"] + snap.Counters["server.cache_inflight_joins"]; hits < 1 {
		t.Errorf("cache hit/join counters = %d, want >= 1 (duplicate seeds were submitted)", hits)
	}
	if snap.Counters["server.contained_panics"] < 1 {
		t.Error("contained_panics = 0, want >= 1 (the panic job)")
	}
	if snap.Counters["server.rejected_invalid"] < 1 {
		t.Error("rejected_invalid = 0, want >= 1")
	}
	for _, tenant := range []string{"t0", "t1", "t2", "t3"} {
		if snap.Counters["server.tenant."+tenant+".submitted"] < 1 {
			t.Errorf("per-tenant counter missing for %s", tenant)
		}
	}

	// Graceful drain finishes within its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), drainDeadline)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d := time.Since(start); d > drainDeadline+5*time.Second {
		t.Errorf("drain took %s, deadline was %s", d, drainDeadline)
	}
	if s.Ready() {
		t.Error("server ready after drain")
	}
}
