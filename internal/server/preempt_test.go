package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"phihpl"
	"phihpl/internal/testutil"
	"phihpl/internal/trace"
)

// wedgedRunner ignores its context entirely — the worst-behaved solve the
// preemption ladder must defend against. It blocks on release, never ctx.
func wedgedRunner(release chan struct{}) RunnerFunc {
	return func(_ context.Context, sp Spec, _ *trace.Recorder) (phihpl.SolveResult, error) {
		<-release
		return phihpl.SolveResult{N: sp.N, Residual: 1e-3, Passed: true}, nil
	}
}

func waitCounter(t *testing.T, s *Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.Registry().Counter(name).Value() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s = %d, want >= %d", name, s.Registry().Counter(name).Value(), want)
}

// TestPreemptWedgedSolve: a solve that ignores cancellation is
// force-finalized after deadline + grace — the job turns ABORTED with a
// typed PreemptedError carrying the wedged goroutine's stack, and the
// scheduler slot plus admission-gate memory are reclaimed so the next
// job runs while the wedged goroutine is still stuck.
func TestPreemptWedgedSolve(t *testing.T) {
	defer testutil.NoLeaks(t)()
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Concurrency = 1
	cfg.PreemptGrace = 50 * time.Millisecond
	cfg.Runner = wedgedRunner(release)
	s := New(cfg)

	wedged := mustSubmit(t, s, JobSpec{N: 64, Seed: 1, TimeoutMs: 50})
	if st := waitTerminal(t, wedged); st != StateAborted {
		t.Fatalf("wedged job state %s, want ABORTED", st)
	}
	ei := wedged.view().Error
	if ei == nil || ei.Kind != "preempted" {
		t.Fatalf("wedged job error = %+v, want kind preempted", ei)
	}
	if !strings.Contains(ei.WedgedStack, "goroutine") {
		t.Errorf("preempted error carries no stack: %q", ei.WedgedStack)
	}
	if got := s.Registry().Counter("server.preempted").Value(); got != 1 {
		t.Errorf("server.preempted = %d, want 1", got)
	}

	// The slot and memory are free even though the runner is still wedged:
	// the worker's return released both, and a follow-up job gets the slot.
	s.mu.Lock()
	memHeld := s.memUsed
	s.mu.Unlock()
	if memHeld != 0 {
		t.Errorf("admission-gate memory still held after force-finalize: %d bytes", memHeld)
	}
	// The follow-up would also wedge on the same runner, so bound the check
	// to reaching RUNNING: occupying the lone worker slot is the proof.
	next := mustSubmit(t, s, JobSpec{N: 64, Seed: 2})
	waitState(t, next, StateRunning)

	// Unwedge the abandoned goroutine; its late return must be discarded
	// (the job stays ABORTED) and counted.
	close(release)
	waitCounter(t, s, "server.preempt_late_returns", 1)
	if st := wedged.currentState(); st != StateAborted {
		t.Errorf("late return overwrote the preemption outcome: state %s", st)
	}
	s.Close()
}

// TestPreemptCooperativeSolveUsesCtxPath: a runner that honors its
// context aborts through the normal "aborted" classification — the
// force-finalize rung must not fire for well-behaved solves.
func TestPreemptCooperativeSolveUsesCtxPath(t *testing.T) {
	defer testutil.NoLeaks(t)()
	gate := make(chan struct{}) // never closed: runner waits on ctx
	cfg := testConfig()
	cfg.PreemptGrace = time.Second
	cfg.Runner = gatedRunner(gate)
	s := New(cfg)
	defer s.Close()

	j := mustSubmit(t, s, JobSpec{N: 64, TimeoutMs: 50})
	if st := waitTerminal(t, j); st != StateAborted {
		t.Fatalf("job state %s, want ABORTED", st)
	}
	ei := j.view().Error
	if ei == nil || ei.Kind != "aborted" {
		t.Fatalf("cooperative timeout error = %+v, want kind aborted", ei)
	}
	if got := s.Registry().Counter("server.preempted").Value(); got != 0 {
		t.Errorf("server.preempted = %d for a cooperative abort, want 0", got)
	}
}

// TestDrainForceFinalizesWedgedJob: the drain path flows through the same
// preemption ladder, so a wedged solve can no longer hold shutdown
// hostage — Drain completes within the grace window, not the old 30s
// give-up, and exits cleanly.
func TestDrainForceFinalizesWedgedJob(t *testing.T) {
	defer testutil.NoLeaks(t)()
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Concurrency = 1
	cfg.PreemptGrace = 50 * time.Millisecond
	cfg.DefaultTimeout = time.Hour // only the drain cancellation ends it
	cfg.Runner = wedgedRunner(release)
	s := New(cfg)

	j := mustSubmit(t, s, JobSpec{N: 64})
	waitState(t, j, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain with a wedged job: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("drain took %s; the preemption ladder should bound it near ctx + grace", elapsed)
	}
	if st := j.currentState(); st != StateAborted {
		t.Errorf("wedged job state after drain = %s, want ABORTED", st)
	}
	ei := j.view().Error
	if ei == nil || ei.Kind != "preempted" {
		t.Errorf("wedged job error after drain = %+v, want kind preempted", ei)
	}
	close(release)
	waitCounter(t, s, "server.preempt_late_returns", 1)
}
