package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"phihpl"
	"phihpl/internal/pool"
	"phihpl/internal/testutil"
	"phihpl/internal/trace"
)

// TestPanicErrorSurvivesFacadeJSON is the regression test for the panic
// error contract: a panic contained by the pool's recover barrier — the
// same barrier every facade solve (SolveContext and friends) relies on —
// must carry its value and stack unchanged through the facade's type
// re-export, the server's error wrapping, and the JSON serialization a
// client sees.
func TestPanicErrorSurvivesFacadeJSON(t *testing.T) {
	defer testutil.NoLeaks(t)()

	const boom = "boom #42 ☠ (unique sentinel)"
	// Mint a real *pool.PanicError: a panicking job inside a parallel
	// region, exactly how a panic inside a solve reaches SolveContext.
	err := pool.DoCtx(context.Background(), 4, 2, func(i int) {
		if i == 1 {
			panic(boom)
		}
	})
	if err == nil {
		t.Fatal("pool.DoCtx swallowed the panic")
	}

	// Facade passthrough: phihpl.PanicError is the same type, and
	// errors.As sees it through arbitrary fmt wrapping.
	var pe *phihpl.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("errors.As(*phihpl.PanicError) failed on %T", err)
	}
	if fmt.Sprint(pe.Value) != boom {
		t.Fatalf("panic value mangled before serialization: %q", pe.Value)
	}
	if !strings.Contains(pe.Stack, "panic_regress_test") {
		t.Fatalf("stack does not point at the panic site:\n%s", pe.Stack)
	}
	wrapped := fmt.Errorf("job j-1 attempt 1: %w", err)

	// Server-side serialization: encodeError → JSON → decode must be
	// byte-preserving for both the value and the stack.
	info := encodeError(wrapped)
	if info.Kind != "panic" || info.Panic == nil {
		t.Fatalf("encodeError = %+v, want kind=panic", info)
	}
	b, err2 := json.Marshal(info)
	if err2 != nil {
		t.Fatal(err2)
	}
	var decoded ErrorInfo
	if err2 := json.Unmarshal(b, &decoded); err2 != nil {
		t.Fatal(err2)
	}
	if decoded.Panic.Value != fmt.Sprint(pe.Value) {
		t.Errorf("panic value changed across JSON: %q != %q", decoded.Panic.Value, pe.Value)
	}
	if decoded.Panic.Stack != pe.Stack {
		t.Errorf("panic stack changed across JSON (%d bytes -> %d bytes)", len(pe.Stack), len(decoded.Panic.Stack))
	}
	if decoded.Panic.Worker != pe.Worker {
		t.Errorf("panic worker changed across JSON: %d != %d", decoded.Panic.Worker, pe.Worker)
	}
}

// TestPanicErrorEndToEndHTTP submits a job whose solve panics inside a
// real pool region and asserts the client-visible JSON carries the exact
// panic value and the pool's captured stack — and that the server is
// still alive to say so.
func TestPanicErrorEndToEndHTTP(t *testing.T) {
	defer testutil.NoLeaks(t)()

	const boom = "chaos-monkey panic @ stage 3"
	var minted *pool.PanicError
	cfg := testConfig()
	cfg.Runner = func(ctx context.Context, sp Spec, rec *trace.Recorder) (phihpl.SolveResult, error) {
		err := pool.DoCtx(ctx, 2, 2, func(i int) {
			if i == 0 {
				panic(boom)
			}
		})
		var pe *pool.PanicError
		if errors.As(err, &pe) {
			minted = pe
		}
		return phihpl.SolveResult{}, err
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"mode":"native","n":64,"seed":12}`))
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	err = json.NewDecoder(resp.Body).Decode(&jv)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	j, ok := s.Job(jv.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if st := waitTerminal(t, j); st != StateFailed {
		t.Fatalf("job: %s, want FAILED", st)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	var final JobView
	err = json.NewDecoder(resp.Body).Decode(&final)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final.Error == nil || final.Error.Kind != "panic" || final.Error.Panic == nil {
		t.Fatalf("error = %+v, want typed panic", final.Error)
	}
	if minted == nil {
		t.Fatal("runner never observed the minted PanicError")
	}
	if final.Error.Panic.Value != fmt.Sprint(minted.Value) {
		t.Errorf("value over HTTP %q != minted %q", final.Error.Panic.Value, minted.Value)
	}
	if final.Error.Panic.Stack != minted.Stack {
		t.Errorf("stack over HTTP (%d bytes) != minted (%d bytes)",
			len(final.Error.Panic.Stack), len(minted.Stack))
	}
	if final.Error.Panic.Worker != minted.Worker {
		t.Errorf("worker over HTTP %d != minted %d", final.Error.Panic.Worker, minted.Worker)
	}
}
