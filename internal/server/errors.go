package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"phihpl"
	"phihpl/internal/cluster"
	"phihpl/internal/pool"
)

// BadRequestError is a typed 4xx validation failure: the offending field
// and a machine-readable code ("invalid" for out-of-range values,
// "unsupported" for well-formed combinations the solver stack does not
// implement yet — the server-side mirror of cmd/hpl's exit code 3).
type BadRequestError struct {
	Field string
	Code  string // "invalid" | "unsupported"
	Msg   string
}

func (e *BadRequestError) Error() string {
	return fmt.Sprintf("bad request: field %q: %s", e.Field, e.Msg)
}

func badField(field, format string, args ...any) *BadRequestError {
	return &BadRequestError{Field: field, Code: "invalid", Msg: fmt.Sprintf(format, args...)}
}

// PanicInfo is the JSON projection of a contained *pool.PanicError. Value
// and Stack are carried verbatim (Value via fmt.Sprint) so a panic
// observed by a client is byte-identical to what the recover barrier saw —
// the regression test in panic_regress_test.go holds this invariant.
type PanicInfo struct {
	Worker int    `json:"worker"`
	Value  string `json:"value"`
	Stack  string `json:"stack"`
}

// FaultInfo summarizes an unrecoverable fault-tolerant run.
type FaultInfo struct {
	Iter     int `json:"iter"`
	Restarts int `json:"restarts"`
}

// InterruptedError is the typed reason on a job that was RUNNING when
// the server process died (SIGKILL, OOM, power loss). Recovery finds it
// in the journal with a run record but no terminal record and aborts it:
// a half-run solve has no trustworthy result. Generation is the boot
// generation that discovered the crash (the journal's boot count), so a
// caller can tell interruptions from distinct crashes apart. Resubmitting
// the identical spec is the intended retry — the single-flight cache key
// makes it free if another tenant already re-ran it.
type InterruptedError struct {
	Generation int // boot generation that discovered the crash
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("job was running when the server crashed (discovered at boot generation %d); "+
		"resubmit to re-run — an identical completed spec is served from the recovered cache", e.Generation)
}

// PreemptedError is the typed reason on a job whose solve ignored
// cooperative cancellation: the deadline expired, the context was
// cancelled, the grace window passed, and the server force-finalized the
// job to reclaim its scheduler slot and admission-gate memory. The
// abandoned solve goroutine cannot be killed in Go — its stack is
// captured here for diagnosis and its eventual return is discarded.
type PreemptedError struct {
	Deadline time.Duration // the per-job deadline that expired
	Grace    time.Duration // the window the solve had to unwind cooperatively
	Stack    string        // stacks of the candidate wedged solve goroutines
}

func (e *PreemptedError) Error() string {
	return fmt.Sprintf("job exceeded its %s deadline and ignored cancellation for the %s grace window; "+
		"force-finalized (the wedged solve goroutine was abandoned; its stack is attached)",
		e.Deadline, e.Grace)
}

// wedgedStacks captures the stacks of goroutines that look like solve
// attempts (frames inside the runner dispatch), for embedding in a
// PreemptedError. Go cannot address a single goroutine's stack, so this
// filters a full dump; with concurrent jobs it may include innocent
// bystanders — it is a diagnostic, not an accusation. Falls back to the
// full dump when no candidate matches.
func wedgedStacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	all := string(buf[:n])
	var out []string
	for _, g := range strings.Split(all, "\n\n") {
		if strings.Contains(g, "protectedRun") || strings.Contains(g, "runAttempts") {
			out = append(out, g)
		}
	}
	if len(out) == 0 {
		return all
	}
	return strings.Join(out, "\n\n")
}

// ErrorInfo is the error contract of the job API: every failed or aborted
// job carries exactly one, with Kind drawn from a closed set so harnesses
// can switch on it without parsing messages.
type ErrorInfo struct {
	Kind        string     `json:"kind"` // residual | aborted | interrupted | preempted | timeout | rank_failed | panic | singular | fault | checksum | internal
	Message     string     `json:"message"`
	Transient   bool       `json:"transient,omitempty"`    // the retry policy would retry this
	Column      *int       `json:"column,omitempty"`       // singular: first bad global column
	Generation  int        `json:"generation,omitempty"`   // interrupted: boot generation that discovered the crash
	WedgedStack string     `json:"wedged_stack,omitempty"` // preempted: stacks of the abandoned solve goroutines
	Panic       *PanicInfo `json:"panic,omitempty"`
	Fault       *FaultInfo `json:"fault,omitempty"`
}

// transientErr reports whether err is a typed transient failure worth a
// retry: operation timeouts and rank failures from the lossy fabric (both
// reachable through a *FaultError wrap via errors.Is). Cancellation,
// panics and singular matrices are deterministic — retrying burns budget
// for the same answer.
func transientErr(err error) bool {
	return errors.Is(err, phihpl.ErrTimeout) || errors.Is(err, phihpl.ErrRankFailed)
}

// encodeError classifies err into the API error contract. A nil err
// returns nil.
func encodeError(err error) *ErrorInfo {
	if err == nil {
		return nil
	}
	info := &ErrorInfo{Kind: "internal", Message: err.Error(), Transient: transientErr(err)}
	var pe *pool.PanicError
	var rpe *cluster.RankPanicError
	var se *phihpl.SingularError
	var fe *phihpl.FaultError
	var ie *InterruptedError
	var pme *PreemptedError
	switch {
	case errors.As(err, &ie):
		info.Kind = "interrupted"
		info.Generation = ie.Generation
	case errors.As(err, &pme):
		info.Kind = "preempted"
		info.WedgedStack = pme.Stack
	case errors.As(err, &pe):
		info.Kind = "panic"
		info.Panic = &PanicInfo{Worker: pe.Worker, Value: fmt.Sprint(pe.Value), Stack: pe.Stack}
	case errors.As(err, &rpe):
		info.Kind = "panic"
		info.Panic = &PanicInfo{Worker: rpe.Rank, Value: fmt.Sprint(rpe.Value), Stack: rpe.Stack}
	case errors.As(err, &se):
		info.Kind = "singular"
		col := se.Col
		info.Column = &col
	case errors.As(err, &fe):
		info.Kind = "fault"
		info.Fault = &FaultInfo{Iter: fe.Iter, Restarts: fe.Restarts}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		info.Kind = "aborted"
	case errors.Is(err, phihpl.ErrTimeout):
		info.Kind = "timeout"
	case errors.Is(err, phihpl.ErrRankFailed):
		info.Kind = "rank_failed"
	case errors.Is(err, phihpl.ErrChecksum):
		info.Kind = "checksum"
	}
	return info
}

// apiError is an HTTP-level rejection (the submission never became a job).
type apiError struct {
	status     int
	code       string // queue_full | draining | recovering | invalid | unsupported | not_found | bad_body
	field      string
	msg        string
	retryAfter int // seconds; >0 adds a Retry-After header
}

func (e *apiError) Error() string { return e.msg }
