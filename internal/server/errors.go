package server

import (
	"context"
	"errors"
	"fmt"

	"phihpl"
	"phihpl/internal/cluster"
	"phihpl/internal/pool"
)

// BadRequestError is a typed 4xx validation failure: the offending field
// and a machine-readable code ("invalid" for out-of-range values,
// "unsupported" for well-formed combinations the solver stack does not
// implement yet — the server-side mirror of cmd/hpl's exit code 3).
type BadRequestError struct {
	Field string
	Code  string // "invalid" | "unsupported"
	Msg   string
}

func (e *BadRequestError) Error() string {
	return fmt.Sprintf("bad request: field %q: %s", e.Field, e.Msg)
}

func badField(field, format string, args ...any) *BadRequestError {
	return &BadRequestError{Field: field, Code: "invalid", Msg: fmt.Sprintf(format, args...)}
}

// PanicInfo is the JSON projection of a contained *pool.PanicError. Value
// and Stack are carried verbatim (Value via fmt.Sprint) so a panic
// observed by a client is byte-identical to what the recover barrier saw —
// the regression test in panic_regress_test.go holds this invariant.
type PanicInfo struct {
	Worker int    `json:"worker"`
	Value  string `json:"value"`
	Stack  string `json:"stack"`
}

// FaultInfo summarizes an unrecoverable fault-tolerant run.
type FaultInfo struct {
	Iter     int `json:"iter"`
	Restarts int `json:"restarts"`
}

// ErrorInfo is the error contract of the job API: every failed or aborted
// job carries exactly one, with Kind drawn from a closed set so harnesses
// can switch on it without parsing messages.
type ErrorInfo struct {
	Kind      string     `json:"kind"` // residual | aborted | timeout | rank_failed | panic | singular | fault | checksum | internal
	Message   string     `json:"message"`
	Transient bool       `json:"transient,omitempty"` // the retry policy would retry this
	Column    *int       `json:"column,omitempty"`    // singular: first bad global column
	Panic     *PanicInfo `json:"panic,omitempty"`
	Fault     *FaultInfo `json:"fault,omitempty"`
}

// transientErr reports whether err is a typed transient failure worth a
// retry: operation timeouts and rank failures from the lossy fabric (both
// reachable through a *FaultError wrap via errors.Is). Cancellation,
// panics and singular matrices are deterministic — retrying burns budget
// for the same answer.
func transientErr(err error) bool {
	return errors.Is(err, phihpl.ErrTimeout) || errors.Is(err, phihpl.ErrRankFailed)
}

// encodeError classifies err into the API error contract. A nil err
// returns nil.
func encodeError(err error) *ErrorInfo {
	if err == nil {
		return nil
	}
	info := &ErrorInfo{Kind: "internal", Message: err.Error(), Transient: transientErr(err)}
	var pe *pool.PanicError
	var rpe *cluster.RankPanicError
	var se *phihpl.SingularError
	var fe *phihpl.FaultError
	switch {
	case errors.As(err, &pe):
		info.Kind = "panic"
		info.Panic = &PanicInfo{Worker: pe.Worker, Value: fmt.Sprint(pe.Value), Stack: pe.Stack}
	case errors.As(err, &rpe):
		info.Kind = "panic"
		info.Panic = &PanicInfo{Worker: rpe.Rank, Value: fmt.Sprint(rpe.Value), Stack: rpe.Stack}
	case errors.As(err, &se):
		info.Kind = "singular"
		col := se.Col
		info.Column = &col
	case errors.As(err, &fe):
		info.Kind = "fault"
		info.Fault = &FaultInfo{Iter: fe.Iter, Restarts: fe.Restarts}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		info.Kind = "aborted"
	case errors.Is(err, phihpl.ErrTimeout):
		info.Kind = "timeout"
	case errors.Is(err, phihpl.ErrRankFailed):
		info.Kind = "rank_failed"
	case errors.Is(err, phihpl.ErrChecksum):
		info.Kind = "checksum"
	}
	return info
}

// apiError is an HTTP-level rejection (the submission never became a job).
type apiError struct {
	status     int
	code       string // queue_full | draining | invalid | unsupported | not_found | bad_body
	field      string
	msg        string
	retryAfter int // seconds; >0 adds a Retry-After header
}

func (e *apiError) Error() string { return e.msg }
