package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the HTTP API:
//
//	POST /v1/solve            submit a job (202; 200 on a completed cache hit)
//	GET  /v1/jobs             list retained jobs
//	GET  /v1/jobs/{id}        job status + result
//	GET  /v1/jobs/{id}/stream server-sent progress events until terminal
//	GET  /metrics             metrics snapshot (JSON; ?format=text for humans)
//	GET  /healthz             process liveness (200 while the server runs)
//	GET  /readyz              admission readiness (503 while recovering or draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ok, reason := s.Readiness(); !ok {
			// "recovering": journal replay is rebuilding the queue — retry
			// shortly. "draining": shutdown has begun — go elsewhere.
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// errorBody is the JSON shape of every rejected submission: the terminal
// state REJECTED plus a typed error, so harness accounting sees exactly
// one terminal state per submission whether or not a job was created.
type errorBody struct {
	State State      `json:"state"` // always REJECTED
	Error *ErrorInfo `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeAPIError(w http.ResponseWriter, ae *apiError) {
	if ae.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
	}
	msg := ae.msg
	if ae.field != "" {
		msg = fmt.Sprintf("field %q: %s", ae.field, ae.msg)
	}
	writeJSON(w, ae.status, errorBody{
		State: StateRejected,
		Error: &ErrorInfo{Kind: ae.code, Message: msg},
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		s.mRejectedInvalid.Inc()
		writeAPIError(w, &apiError{status: 400, code: "bad_body", msg: "invalid JSON body: " + err.Error()})
		return
	}
	if t := r.Header.Get("X-Tenant"); t != "" {
		js.Tenant = t
	}
	j, ae := s.Submit(js)
	if ae != nil {
		writeAPIError(w, ae)
		return
	}
	status := http.StatusAccepted
	if j.currentState().Terminal() {
		status = http.StatusOK // exact cache hit, already complete
	}
	writeJSON(w, status, j.view())
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeAPIError(w, &apiError{status: 404, code: "not_found",
			msg: fmt.Sprintf("no job %q (terminal records are retained up to a cap)", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleStream serves the job's lifecycle as server-sent events: the
// recorded history first, then live state/retry events interleaved with
// periodic progress samples (span count + elapsed), ending with the
// terminal "done" event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeAPIError(w, &apiError{status: 404, code: "not_found", msg: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, &apiError{status: 500, code: "internal", msg: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	past, ch, cancel := j.subscribe()
	defer cancel()
	for _, e := range past {
		writeEvent(w, e)
		if e.Type == "done" {
			fl.Flush()
			return
		}
	}
	fl.Flush()

	tick := time.NewTicker(s.cfg.StreamInterval)
	defer tick.Stop()
	for {
		select {
		case e := <-ch:
			writeEvent(w, e)
			fl.Flush()
			if e.Type == "done" {
				return
			}
		case <-tick.C:
			if j.currentState() == StateRunning {
				writeEvent(w, j.progressEvent())
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeEvent(w http.ResponseWriter, e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, b)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.reg.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.WriteJSON(w)
}
