package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"phihpl"
	"phihpl/internal/journal"
	"phihpl/internal/metrics"
	"phihpl/internal/pool"
	"phihpl/internal/trace"
)

// Config sizes the server. Zero fields take the documented defaults.
type Config struct {
	QueueDepth  int // total queued jobs across tenants (default 64)
	Concurrency int // scheduler workers = max concurrently running jobs (default 2)

	TenantCap     int            // max running jobs per tenant (default max(1, Concurrency/2))
	TenantWeights map[string]int // WRR dequeue weights (default 1 per tenant)

	MaxN      int   // largest accepted problem size (default 4096)
	MaxGrid   int   // largest accepted P*Q (default 16)
	MemBudget int64 // running-jobs footprint budget in bytes (default 4 GiB)

	DefaultTimeout time.Duration // per-job deadline when the spec has none (default 1m)
	MaxTimeout     time.Duration // hard ceiling on any job deadline (default 5m)
	DefaultRetries int           // transient-error retries when the spec has none (default 2)
	MaxRetries     int           // largest accepted per-job retry budget (default 5)
	RetryBase      time.Duration // backoff base, doubled per attempt (default 50ms)

	MaxJobsRetained int           // terminal job records kept for GET (default 10000)
	StreamInterval  time.Duration // progress-event period on /stream (default 500ms)

	JournalPath  string        // write-ahead journal file; "" disables durability
	CompactEvery int           // journal records between compactions (default 4096; <0 disables)
	PreemptGrace time.Duration // window a cancelled solve gets to unwind before force-finalize (default 3s)

	// recoveryGate, when non-nil, delays journal replay until the channel
	// is closed. Test hook: it makes the "recovering" window observable
	// deterministically. Production leaves it nil.
	recoveryGate chan struct{}

	Metrics *metrics.Registry // served by /metrics (created if nil)
	Trace   *trace.Recorder   // optional: one span per job attempt

	// Runner overrides the solve dispatch (tests, chaos). nil = DefaultRunner,
	// which routes through the phihpl facade's ctx-aware solvers.
	Runner RunnerFunc
}

// RunnerFunc executes one job attempt. rec receives the job's spans.
type RunnerFunc func(ctx context.Context, sp Spec, rec *trace.Recorder) (phihpl.SolveResult, error)

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	defD := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.QueueDepth, 64)
	def(&c.Concurrency, 2)
	def(&c.TenantCap, max(1, c.Concurrency/2))
	def(&c.MaxN, 4096)
	def(&c.MaxGrid, 16)
	if c.MemBudget == 0 {
		c.MemBudget = 4 << 30
	}
	defD(&c.DefaultTimeout, time.Minute)
	defD(&c.MaxTimeout, 5*time.Minute)
	def(&c.DefaultRetries, 2)
	def(&c.MaxRetries, 5)
	defD(&c.RetryBase, 50*time.Millisecond)
	def(&c.MaxJobsRetained, 10000)
	defD(&c.StreamInterval, 500*time.Millisecond)
	def(&c.CompactEvery, 4096)
	defD(&c.PreemptGrace, 3*time.Second)
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Runner == nil {
		c.Runner = DefaultRunner
	}
	return c
}

// cacheEntry is one single-flight slot: the leader job computes, followers
// attach and receive the leader's outcome, and completed PASSED/residual-
// FAILED results stay for exact (bitwise-deterministic) cache hits.
// Entries are only touched with Server.mu held.
type cacheEntry struct {
	leader    *job
	followers []*job
	complete  bool
	state     State
	result    *ResultView
	errInfo   *ErrorInfo
}

// Server is the multi-tenant solve service. Create with New, expose with
// Handler, stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg    Config
	reg    *metrics.Registry
	runner RunnerFunc

	runCtx    context.Context // parent of every job attempt
	cancelRun context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	queues    map[string][]*job // FIFO per tenant
	order     []string          // tenant round-robin order (insertion)
	credit    map[string]int    // WRR credits
	rr        int               // next tenant index to consider
	queuedN   int
	running   int
	runTenant map[string]int
	memUsed   int64
	entries   map[string]*cacheEntry
	jobs      map[string]*job
	jobOrder  []string // insertion order, for retention eviction
	seq       int
	draining  bool
	closed    bool
	drainedCh chan struct{}

	// Durability (nil/zero when Config.JournalPath is empty).
	jn          *journal.Journal
	generation  int   // boot generation; bumped once per journal replay
	walAppends  int64 // records since the last compaction
	recovering  bool  // journal replay in progress: submissions get 503
	recoveredCh chan struct{}
	recovery    RecoveryStats

	wg sync.WaitGroup

	// counters/gauges are pre-created: the hot path never touches the
	// registry map.
	mSubmitted, mRejectedFull, mRejectedInvalid, mRejectedDraining *metrics.Counter
	mRejectedRecovering                                            *metrics.Counter
	mCacheHits, mCacheJoins                                        *metrics.Counter
	mPassed, mFailed, mAborted, mRetries, mPanics                  *metrics.Counter
	mRecoveredTerminal, mRecoveredInterrupted, mRecoveredRequeued  *metrics.Counter
	mPreempted, mPreemptLate, mJournalDropped                      *metrics.Counter
	gQueued, gRunning, gMem                                        *metrics.Gauge
	hJobNs, hWaitNs                                                *metrics.Histogram
}

// New builds the server and starts its scheduler workers. It panics if
// the configured journal cannot be opened; use Open where that error
// should be handled (cmd/hplserver does).
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds the server, opens the write-ahead journal when one is
// configured, starts the scheduler workers, and kicks off journal replay
// in the background. Until replay settles, the server reports
// "recovering": /readyz answers 503 and submissions are rejected with a
// Retry-After hint. A damaged journal never fails Open — the journal
// layer repairs what it can and counts what it dropped.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Metrics,
		runner:      cfg.Runner,
		queues:      map[string][]*job{},
		credit:      map[string]int{},
		runTenant:   map[string]int{},
		entries:     map[string]*cacheEntry{},
		jobs:        map[string]*job{},
		drainedCh:   make(chan struct{}),
		recoveredCh: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())

	r := s.reg
	s.mSubmitted = r.Counter("server.submitted")
	s.mRejectedFull = r.Counter("server.rejected_queue_full")
	s.mRejectedInvalid = r.Counter("server.rejected_invalid")
	s.mRejectedDraining = r.Counter("server.rejected_draining")
	s.mRejectedRecovering = r.Counter("server.rejected_recovering")
	s.mCacheHits = r.Counter("server.cache_hits")
	s.mCacheJoins = r.Counter("server.cache_inflight_joins")
	s.mPassed = r.Counter("server.jobs_passed")
	s.mFailed = r.Counter("server.jobs_failed")
	s.mAborted = r.Counter("server.jobs_aborted")
	s.mRetries = r.Counter("server.retries")
	s.mPanics = r.Counter("server.contained_panics")
	s.mRecoveredTerminal = r.Counter("server.recovered_terminal")
	s.mRecoveredInterrupted = r.Counter("server.recovered_interrupted")
	s.mRecoveredRequeued = r.Counter("server.recovered_requeued")
	s.mPreempted = r.Counter("server.preempted")
	s.mPreemptLate = r.Counter("server.preempt_late_returns")
	s.mJournalDropped = r.Counter("server.journal_dropped_records")
	s.gQueued = r.Gauge("server.queued")
	s.gRunning = r.Gauge("server.running")
	s.gMem = r.Gauge("server.mem_used_bytes")
	s.hJobNs = r.Histogram("server.job_ns")
	s.hWaitNs = r.Histogram("server.queue_wait_ns")

	if cfg.JournalPath != "" {
		jn, err := journal.Open(cfg.JournalPath, journal.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("server: open journal: %w", err)
		}
		s.jn = jn
		s.recovering = true
		go s.recoverFromJournal()
	} else {
		close(s.recoveredCh) // nothing to replay; ready immediately
	}

	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// tenantCounter bumps a per-tenant counter (get-or-create is mutexed in
// the registry; submission rate makes that cheap).
func (s *Server) tenantCounter(tenant, what string) {
	s.reg.Counter("server.tenant." + tenant + "." + what).Inc()
}

func (s *Server) weightFor(t string) int {
	if w := s.cfg.TenantWeights[t]; w > 0 {
		return w
	}
	return 1
}

// Submit validates and admits one job. On rejection the returned
// *apiError says why (and the submission is the client's only record —
// rejected submissions never become jobs).
func (s *Server) Submit(js JobSpec) (*job, *apiError) {
	sp, err := js.Validate(s.cfg)
	if err != nil {
		s.mRejectedInvalid.Inc()
		var bre *BadRequestError
		if errors.As(err, &bre) {
			return nil, &apiError{status: 400, code: bre.Code, field: bre.Field, msg: err.Error()}
		}
		return nil, &apiError{status: 400, code: "invalid", msg: err.Error()}
	}
	key := sp.CacheKey()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering {
		s.mRejectedRecovering.Inc()
		return nil, &apiError{status: 503, code: "recovering",
			msg: "server is replaying its journal; retry shortly", retryAfter: 1}
	}
	if s.draining || s.closed {
		s.mRejectedDraining.Inc()
		return nil, &apiError{status: 503, code: "draining", msg: "server is draining; not admitting jobs"}
	}

	// Single-flight: an exact completed result is returned immediately; an
	// in-flight identical job is joined without consuming a queue slot.
	if key != "" {
		if e := s.entries[key]; e != nil {
			s.seq++
			j := newJob(s.seq, sp)
			j.follower = !e.complete
			s.registerLocked(j)
			s.logLocked(walRecord{T: "accept", ID: j.id, Seq: j.seq, Spec: j.spec.wireSpec(), Follower: j.follower})
			s.mSubmitted.Inc()
			s.tenantCounter(sp.Tenant, "submitted")
			if e.complete {
				s.mCacheHits.Inc()
				s.finishLocked(j, e.state, e.result, e.errInfo, true)
			} else {
				s.mCacheJoins.Inc()
				e.followers = append(e.followers, j)
			}
			s.maybeCompactLocked()
			return j, nil
		}
	}

	if s.queuedN >= s.cfg.QueueDepth {
		s.mRejectedFull.Inc()
		s.tenantCounter(sp.Tenant, "rejected")
		return nil, &apiError{status: 429, code: "queue_full",
			msg:        fmt.Sprintf("queue full (%d jobs); retry later", s.queuedN),
			retryAfter: s.retryAfterLocked()}
	}

	s.seq++
	j := newJob(s.seq, sp)
	s.registerLocked(j)
	s.logLocked(walRecord{T: "accept", ID: j.id, Seq: j.seq, Spec: j.spec.wireSpec()})
	if key != "" {
		s.entries[key] = &cacheEntry{leader: j}
	}
	if _, ok := s.queues[sp.Tenant]; !ok && !containsStr(s.order, sp.Tenant) {
		s.order = append(s.order, sp.Tenant)
		s.credit[sp.Tenant] = s.weightFor(sp.Tenant)
	}
	s.queues[sp.Tenant] = append(s.queues[sp.Tenant], j)
	s.queuedN++
	s.gQueued.Set(float64(s.queuedN))
	s.mSubmitted.Inc()
	s.tenantCounter(sp.Tenant, "submitted")
	j.enqueuedAt = time.Now()
	s.maybeCompactLocked()
	s.cond.Broadcast()
	return j, nil
}

// retryAfterLocked estimates a Retry-After hint for a 429: roughly the
// queue depth over the concurrency, clamped to [1, 30] seconds. The
// clamp matters after crash recovery, when re-enqueued jobs can legally
// push queuedN past QueueDepth — the hint must stay sane instead of
// scaling with the overshoot.
func (s *Server) retryAfterLocked() int {
	retry := 1 + s.queuedN/max(1, s.cfg.Concurrency)
	if retry > 30 {
		retry = 30
	}
	return retry
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// registerLocked adds j to the job table, evicting the oldest terminal
// records past the retention cap so a long-running server stays bounded.
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobs) > s.cfg.MaxJobsRetained && len(s.jobOrder) > 0 {
		evicted := false
		for i, id := range s.jobOrder {
			old := s.jobs[id]
			if old == nil {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
			if old.currentState().Terminal() {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the table grow rather than drop state
		}
	}
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every retained job view (insertion order).
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.jobOrder...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// Registry exposes the metrics registry (for /metrics and tests).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Ready reports whether the server is admitting jobs.
func (s *Server) Ready() bool {
	ok, _ := s.Readiness()
	return ok
}

// Readiness reports whether the server admits jobs and, when it does
// not, why: "recovering" while journal replay is still rebuilding the
// queue, "draining" once shutdown has begun. /readyz serves this.
func (s *Server) Readiness() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.recovering:
		return false, "recovering"
	case s.draining || s.closed:
		return false, "draining"
	}
	return true, ""
}

// worker is one scheduler loop: pick an eligible job under the fairness
// and memory rules, run it with deadline + retry + panic isolation,
// release the slot.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.hWaitNs.Observe(time.Since(j.enqueuedAt).Nanoseconds())
		s.runJob(id, j)
		s.mu.Lock()
		s.running--
		s.runTenant[j.spec.Tenant]--
		s.memUsed -= j.memEst
		s.gRunning.Set(float64(s.running))
		s.gMem.Set(float64(s.memUsed))
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// next blocks until a job is runnable or the server closes (nil).
func (s *Server) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if j := s.pickLocked(); j != nil {
			s.running++
			s.runTenant[j.spec.Tenant]++
			s.memUsed += j.memEst
			s.queuedN--
			s.gQueued.Set(float64(s.queuedN))
			s.gRunning.Set(float64(s.running))
			s.gMem.Set(float64(s.memUsed))
			return j
		}
		s.cond.Wait()
	}
}

// pickLocked implements the weighted round-robin dequeue with per-tenant
// running caps and the memory admission gate. Two passes: if every
// queued tenant is out of credit, refill and try again — weights shape
// the ratio, they never starve.
func (s *Server) pickLocked() *job {
	for pass := 0; pass < 2; pass++ {
		n := len(s.order)
		for k := 0; k < n; k++ {
			t := s.order[(s.rr+k)%n]
			q := s.queues[t]
			if len(q) == 0 || s.credit[t] <= 0 {
				continue
			}
			if s.runTenant[t] >= s.cfg.TenantCap {
				continue
			}
			j := q[0]
			// Memory gate: defer the job while running work holds the
			// budget; always admit when idle so progress is guaranteed.
			if s.memUsed+j.memEst > s.cfg.MemBudget && s.running > 0 {
				continue
			}
			s.queues[t] = q[1:]
			s.credit[t]--
			s.rr = (s.rr + k + 1) % n
			return j
		}
		for _, t := range s.order {
			s.credit[t] = s.weightFor(t)
		}
	}
	return nil
}

// runJob executes one job to a terminal state: server-enforced deadline
// across all attempts, retry-with-backoff on transient typed errors, and
// a recover barrier so a panicking solve yields a FAILED job, never a
// dead worker.
//
// The attempts run on their own goroutine so the scheduler slot is not
// hostage to a wedged solve. The preemption ladder on deadline expiry
// (or drain cancellation): the context cancellation IS the cooperative
// request; if the solve has not unwound after PreemptGrace, the job is
// force-finalized ABORTED with the wedged goroutine's stack attached,
// and runJob returns so the worker releases the slot and the
// admission-gate memory. The abandoned goroutine's eventual return is
// discarded (setRunning/finish are terminal-guarded) and counted.
func (s *Server) runJob(worker int, j *job) {
	ctx, cancel := context.WithTimeout(s.runCtx, j.spec.Timeout)
	defer cancel()
	start := time.Now()
	var t0 float64
	if s.cfg.Trace != nil {
		t0 = s.cfg.Trace.Start()
	}

	type outcome struct {
		res phihpl.SolveResult
		err error
	}
	resCh := make(chan outcome, 1) // buffered: a late sender never blocks
	go func() {
		res, err := s.runAttempts(ctx, j)
		resCh <- outcome{res, err}
	}()

	var out outcome
	forced := false
	select {
	case out = <-resCh:
	case <-ctx.Done():
		grace := time.NewTimer(s.cfg.PreemptGrace)
		select {
		case out = <-resCh:
			grace.Stop()
		case <-grace.C:
			forced = true
		}
	}

	elapsed := time.Since(start)
	s.hJobNs.Observe(elapsed.Nanoseconds())
	if s.cfg.Trace != nil {
		s.cfg.Trace.Since(worker, "job."+string(j.spec.Mode)+"."+j.spec.Tenant, j.seq, t0)
	}

	if forced {
		s.forceFinalize(j)
		go func() { // reap the abandoned goroutine's eventual return
			<-resCh
			s.mPreemptLate.Inc()
		}()
		return
	}

	state, view, ei := s.classify(j, out.res, out.err, elapsed)
	s.mu.Lock()
	s.finishLocked(j, state, view, ei, false)
	s.maybeCompactLocked()
	s.mu.Unlock()
}

// runAttempts is the per-job retry loop (formerly inline in runJob), on
// its own goroutine so runJob can abandon it when it wedges.
func (s *Server) runAttempts(ctx context.Context, j *job) (phihpl.SolveResult, error) {
	var res phihpl.SolveResult
	var err error
	for attempt := 1; ; attempt++ {
		j.setRunning(attempt)
		s.mu.Lock()
		s.logLocked(walRecord{T: "run", ID: j.id, Attempt: attempt})
		s.mu.Unlock()
		res, err = s.protectedRun(ctx, j)
		if err == nil || !transientErr(err) || attempt > j.spec.Retries {
			break
		}
		if ctx.Err() != nil {
			err = ctx.Err()
			break
		}
		s.mRetries.Inc()
		j.noteRetry(attempt, err)
		backoff := s.cfg.RetryBase << uint(attempt-1)
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			err = ctx.Err()
		case <-timer.C:
			continue
		}
		break
	}
	return res, err
}

// forceFinalize is the last rung of the preemption ladder: deadline
// expired, cancellation requested, grace window passed, and the solve
// goroutine still has not returned. Go cannot kill a goroutine, so the
// job is finalized ABORTED here — with the candidate wedged stacks
// attached for diagnosis — and the goroutine is abandoned; the worker's
// return then releases the scheduler slot and admission-gate memory.
func (s *Server) forceFinalize(j *job) {
	s.mPreempted.Inc()
	ei := encodeError(&PreemptedError{
		Deadline: j.spec.Timeout,
		Grace:    s.cfg.PreemptGrace,
		Stack:    wedgedStacks(),
	})
	s.mu.Lock()
	s.finishLocked(j, StateAborted, nil, ei, false)
	s.maybeCompactLocked()
	s.mu.Unlock()
}

// protectedRun invokes the runner behind the server's own recover barrier.
// The facade already converts worker panics into typed *pool.PanicError;
// this catches panics on the scheduler goroutine itself (a buggy runner,
// validation edge) with the same type, so the error contract is uniform.
func (s *Server) protectedRun(ctx context.Context, j *job) (res phihpl.SolveResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &pool.PanicError{Worker: -1, Value: v, Stack: string(debug.Stack())}
		}
	}()
	return s.runner(ctx, j.spec, j.rec)
}

// classify maps a run outcome onto the job state machine and builds the
// client-facing result/error.
func (s *Server) classify(j *job, res phihpl.SolveResult, err error, elapsed time.Duration) (State, *ResultView, *ErrorInfo) {
	if err == nil {
		secs := res.Seconds
		if secs == 0 {
			secs = elapsed.Seconds()
		}
		view := &ResultView{
			N:        res.N,
			Residual: res.Residual,
			Passed:   res.Passed,
			Seconds:  secs,
			Refine:   res.Refine,
			FT:       res.FT,
		}
		if secs > 0 {
			view.GFLOPS = phihpl.LUFlops(res.N) / secs / 1e9
		}
		if res.Passed {
			return StatePassed, view, nil
		}
		return StateFailed, view, &ErrorInfo{Kind: "residual",
			Message: fmt.Sprintf("residual %g exceeds the HPL threshold", res.Residual)}
	}
	ei := encodeError(err)
	if ei.Kind == "panic" {
		s.mPanics.Inc()
	}
	switch ei.Kind {
	case "aborted", "preempted", "interrupted":
		return StateAborted, nil, ei
	}
	return StateFailed, nil, ei
}

// finishLocked makes j terminal, settles its cache entry (followers get
// the identical outcome; only completed solves are kept for future hits),
// journals the end records, and bumps the terminal counters. Callers
// hold s.mu. A job that is already terminal is left untouched: a wedged
// solve that was force-finalized must not overwrite the preemption
// outcome (or double-journal) when it finally returns.
func (s *Server) finishLocked(j *job, state State, view *ResultView, ei *ErrorInfo, cached bool) {
	if j.currentState().Terminal() {
		return
	}
	var followers []*job
	if j.key != "" {
		if e := s.entries[j.key]; e != nil && e.leader == j {
			followers = e.followers
			e.followers = nil
			// Keep only real solve outcomes: PASSED, or a residual FAILED
			// (both bitwise deterministic). Aborts, panics and transient
			// errors are evicted so a later identical submission re-runs.
			if state == StatePassed || (state == StateFailed && ei != nil && ei.Kind == "residual") {
				e.complete = true
				e.state, e.result, e.errInfo = state, view, ei
				s.logLocked(walRecord{T: "cache", Key: j.key, State: state, Result: view, Error: ei})
			} else {
				delete(s.entries, j.key)
			}
		}
	}
	j.finish(state, view, ei, cached)
	_, _, _, _, attempts := j.snapshot()
	s.logLocked(walRecord{T: "end", ID: j.id, State: state, Result: view, Error: ei, Cached: cached, Attempt: attempts})
	s.countTerminal(j.spec.Tenant, state)
	for _, f := range followers {
		f.finish(state, view, ei, true)
		_, _, _, _, fa := f.snapshot()
		s.logLocked(walRecord{T: "end", ID: f.id, State: state, Result: view, Error: ei, Cached: true, Attempt: fa})
		s.countTerminal(f.spec.Tenant, state)
	}
}

func (s *Server) countTerminal(tenant string, state State) {
	switch state {
	case StatePassed:
		s.mPassed.Inc()
		s.tenantCounter(tenant, "passed")
	case StateFailed:
		s.mFailed.Inc()
		s.tenantCounter(tenant, "failed")
	case StateAborted:
		s.mAborted.Inc()
		s.tenantCounter(tenant, "aborted")
	}
}

// Drain performs the graceful shutdown state machine: stop admitting
// (readyz flips unready), abort every queued job, let running jobs finish
// until ctx expires, then cancel them; finally stop the scheduler
// workers. It returns nil once the server is fully quiescent. Concurrent
// callers after the first wait for the same drain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		ch := s.drainedCh
		s.mu.Unlock()
		select {
		case <-ch:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.draining = true
	aborted := s.popAllQueuedLocked()
	ei := &ErrorInfo{Kind: "aborted", Message: "server draining: job aborted before it ran"}
	for _, j := range aborted {
		s.finishLocked(j, StateAborted, nil, ei, false)
	}
	s.mu.Unlock()

	// Let journal replay settle first (it is pure in-memory work and sees
	// s.draining, so recovered queued jobs abort rather than start).
	<-s.recoveredCh

	quiescent := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.running > 0 || s.queuedN > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(quiescent)
	}()
	select {
	case <-quiescent:
	case <-ctx.Done():
		// Drain deadline: cancel in-flight jobs. Cooperative runners observe
		// their context at scheduling boundaries and converge quickly; a
		// wedged one is force-finalized after PreemptGrace by the same
		// preemption ladder the per-job deadline uses, so quiescence is
		// bounded — the backstop below only guards against bugs in that
		// ladder itself.
		s.cancelRun()
		select {
		case <-quiescent:
		case <-time.After(s.cfg.PreemptGrace + 30*time.Second):
			return errors.New("server: drain incomplete: a job ignored cancellation")
		}
	}

	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.cancelRun()
	if s.jn != nil {
		_ = s.jn.Close()
	}
	close(s.drainedCh)
	return nil
}

// popAllQueuedLocked removes every queued job (drain path).
func (s *Server) popAllQueuedLocked() []*job {
	var out []*job
	for t, q := range s.queues {
		out = append(out, q...)
		s.queues[t] = nil
	}
	s.queuedN = 0
	s.gQueued.Set(0)
	s.cond.Broadcast()
	return out
}

// Close shuts down immediately: queued jobs abort, running jobs are
// cancelled now, workers stop. For tests and fatal paths; prefer Drain.
func (s *Server) Close() {
	s.cancelRun()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: Drain skips straight to cancellation
	_ = s.Drain(ctx)
}
